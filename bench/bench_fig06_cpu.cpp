// Fig 6 — processor micro-benchmark.
//
// A reference process performing a fixed CPU-intensive computation runs on
// virtual machines of varying speeds, alone and against CPU-bound and
// IO-bound competitors. Reported: delivered CPU fraction vs specified.
// Paper shape: tracks the specified fraction up to ~95% alone; under
// competition it caps near 45-55% above a specified 40%.
#include "bench_common.h"
#include "vos/cpu_scheduler.h"

using namespace mgbench;

namespace {

double delivered(double fraction, vos::CompetitionProfile profile) {
  sim::Simulator sim;
  vos::CpuScheduler sched(sim, 533e6, 10 * sim::kMillisecond, profile);
  const double cpu_seconds = 3.0;
  double wall = 0;
  sim.spawn("ref", [&] {
    auto task = sched.addTask("ref", fraction);
    const sim::SimTime t0 = sim.now();
    sched.computeSeconds(task, cpu_seconds);
    wall = sim::toSeconds(sim.now() - t0);
  });
  sim.run();
  return cpu_seconds / wall;
}

}  // namespace

int main() {
  printHeader("Processor micro-benchmark: delivered vs specified CPU fraction", "Fig 6");

  util::Table table({"specified_%", "no_competition_%", "cpu_competition_%", "io_competition_%"});
  bool shape_ok = true;
  for (int pct = 10; pct <= 100; pct += 10) {
    const double f = pct / 100.0;
    const double none = delivered(f, vos::CompetitionProfile::none());
    const double cpu = delivered(f, vos::CompetitionProfile::cpuBound());
    const double io = delivered(f, vos::CompetitionProfile::ioBound());
    table.row() << pct << none * 100 << cpu * 100 << io * 100;
    if (pct <= 90 && std::abs(none - f) > 0.05) shape_ok = false;   // tracks when alone
    if (pct >= 60 && cpu > 0.55) shape_ok = false;                  // caps under load
    if (pct <= 30 && std::abs(cpu - f) > 0.05) shape_ok = false;    // accurate below cap
  }
  table.print(std::cout, "Fig 6: fraction of CPU delivered");
  std::cout << "Shape check: accurate alone up to ~95%, capped ~45-55% under"
            << " competition above 40%: " << (shape_ok ? "PASS" : "FAIL") << "\n";
  return shape_ok ? 0 : 1;
}
