// Fig 5 — memory micro-benchmark.
//
// "A process constantly allocates memory until it generates an out of
// memory error. The test is repeated with various memory limits ... there
// is a clear linear correlation between the memory limit and the amount of
// memory accessible by the process. In each case, the process could
// allocate about 1KB less than the specified memory limitation."
#include "apps/microbench.h"
#include "bench_common.h"

using namespace mgbench;

int main() {
  printHeader("Memory micro-benchmark: limit vs max allocatable", "Fig 5");

  util::Table table({"limit_kb", "allocated_kb", "overhead_bytes"});
  bool linear = true;
  for (std::int64_t limit_kb : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1000}) {
    const std::int64_t limit = limit_kb * 1024;
    core::VirtualGridConfig cfg;
    cfg.addPhysical("phys0", 533e6);
    cfg.addHost("vm0", "1.1.1.1", 533e6, limit, "phys0");
    core::MicroGridPlatform platform(cfg);
    std::int64_t allocated = -1;
    platform.spawnOn("vm0", "memhog",
                     [&](vos::HostContext& ctx) { allocated = apps::memoryProbe(ctx, 256); });
    platform.run();
    const std::int64_t overhead = limit - allocated;
    table.row() << static_cast<long long>(limit_kb)
                << static_cast<double>(allocated) / 1024.0
                << static_cast<long long>(overhead);
    if (overhead != vos::MemoryManager::kProcessOverhead) linear = false;
  }
  table.print(std::cout, "Fig 5: specified memory limit vs maximum allocated");
  std::cout << "Shape check: linear with constant ~1KB process overhead: "
            << (linear ? "PASS" : "FAIL") << "\n";
  return linear ? 0 : 1;
}
