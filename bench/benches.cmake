# Experiment harnesses: one binary per table/figure of the paper, plus
# ablations and a kernel micro-benchmark. Binaries land in build/bench/.
function(mg_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    mg_core mg_fault mg_npb mg_apps mg_autopilot mg_vmpi mg_grid mg_gis mg_vos mg_net mg_sim
    mg_util mg_warnings)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

mg_add_bench(bench_fig05_memory)
mg_add_bench(bench_fig06_cpu)
mg_add_bench(bench_fig07_quanta)
mg_add_bench(bench_fig08_network)
mg_add_bench(bench_fig10_npb)
mg_add_bench(bench_fig11_quanta_sweep)
mg_add_bench(bench_fig12_cpu_scaling)
mg_add_bench(bench_fig14_vbns)
mg_add_bench(bench_fig15_emulation_rate)
mg_add_bench(bench_fig16_cactus)
mg_add_bench(bench_fig17_autopilot)
mg_add_bench(bench_ablation_netmodel)
mg_add_bench(bench_ablation_collectives)
mg_add_bench(bench_fault_resilience)

add_executable(bench_kernel_perf ${CMAKE_SOURCE_DIR}/bench/bench_kernel_perf.cpp)
target_link_libraries(bench_kernel_perf PRIVATE mg_sim mg_net mg_util benchmark::benchmark
  mg_warnings)
set_target_properties(bench_kernel_perf PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
