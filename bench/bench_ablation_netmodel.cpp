// Ablation A1 — packet-level vs flow-level network modeling.
//
// The paper flags NSE's cost and scalability as the key obstacle ("NSE
// performs detailed simulation, with high overhead ... does not scale up").
// This ablation runs the same workload with both network models and
// reports (a) the timing difference the cheaper model introduces and
// (b) the simulation cost (kernel events) of each.
#include "bench_common.h"
#include "net/flow_network.h"

using namespace mgbench;

int main() {
  printHeader("Network-model ablation: packet-level vs flow-level", "paper §2.4.2 / §4");

  const npb::Benchmark benches[] = {npb::Benchmark::MG, npb::Benchmark::IS, npb::Benchmark::EP};

  util::Table table({"benchmark", "flow_s", "packet_s", "diff_%", "flow_events", "packet_events"});
  bool ok = true;
  for (auto b : benches) {
    core::ReferencePlatform flow(core::topologies::alphaCluster());
    const double t_flow = runNpbOn(flow, b, npb::NpbClass::S, onePerHost(flow));
    const std::uint64_t ev_flow = flow.simulator().eventsExecuted();

    core::MicroGridPlatform packet(core::topologies::alphaCluster());
    const double t_packet = runNpbOn(packet, b, npb::NpbClass::S, onePerHost(packet));
    const std::uint64_t ev_packet = packet.simulator().eventsExecuted();

    const double diff = util::percentError(t_flow, t_packet);
    table.row() << npb::benchmarkName(b) << t_flow << t_packet << diff
                << static_cast<long long>(ev_flow) << static_cast<long long>(ev_packet);
    if (ev_packet <= ev_flow) ok = false;  // detail must cost something
    if (std::abs(diff) > 20.0) ok = false;
  }
  table.print(std::cout, "A1: timing agreement and event cost of the two models");
  std::cout << "Shape check: the packet model costs more events and agrees within\n"
            << "~20% on timed results: " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
