// Ablation A1 — packet-level vs flow-level vs hybrid network modeling.
//
// The paper flags NSE's cost and scalability as the key obstacle ("NSE
// performs detailed simulation, with high overhead ... does not scale up").
// Since the NetworkModel refactor the model is a runtime switch on ONE
// platform (mgrun --netmodel=packet|flow|hybrid), so this ablation holds
// everything else fixed — same MicroGridPlatform, same GRAM path, same
// quantum — and varies only the network model. It reports (a) the timing
// difference the cheaper models introduce and (b) the simulation cost
// (kernel events) of each.
#include "bench_common.h"
#include "net/flow_network.h"
#include "net/hybrid_network.h"

using namespace mgbench;

namespace {

double runWith(net::NetModelKind kind, npb::Benchmark b, std::uint64_t* events) {
  core::MicroGridOptions opts = platformOptionsFromEnv();
  opts.netmodel = kind;
  if (kind == net::NetModelKind::Hybrid) {
    // Escalate the gatekeeper/GIS control plane to packet detail; bulk MPI
    // traffic stays fluid.
    opts.netmodel_detail = {"port:1-4999"};
  }
  core::MicroGridPlatform p(core::topologies::alphaCluster(), opts);
  const double t = runNpbOn(p, b, npb::NpbClass::S, onePerHost(p));
  *events = p.simulator().eventsExecuted();
  return t;
}

}  // namespace

int main() {
  printHeader("Network-model ablation: packet vs flow vs hybrid", "paper §2.4.2 / §4");

  const npb::Benchmark benches[] = {npb::Benchmark::MG, npb::Benchmark::IS, npb::Benchmark::EP};

  util::Table table({"benchmark", "packet_s", "flow_s", "hybrid_s", "flow_diff_%",
                     "hybrid_diff_%", "packet_events", "flow_events", "hybrid_events"});
  bool ok = true;
  for (auto b : benches) {
    std::uint64_t ev_packet = 0, ev_flow = 0, ev_hybrid = 0;
    const double t_packet = runWith(net::NetModelKind::Packet, b, &ev_packet);
    const double t_flow = runWith(net::NetModelKind::Flow, b, &ev_flow);
    const double t_hybrid = runWith(net::NetModelKind::Hybrid, b, &ev_hybrid);

    const double flow_diff = util::percentError(t_packet, t_flow);
    const double hybrid_diff = util::percentError(t_packet, t_hybrid);
    table.row() << npb::benchmarkName(b) << t_packet << t_flow << t_hybrid << flow_diff
                << hybrid_diff << static_cast<long long>(ev_packet)
                << static_cast<long long>(ev_flow) << static_cast<long long>(ev_hybrid);
    if (ev_packet <= ev_flow) ok = false;  // detail must cost something
    if (std::abs(flow_diff) > 20.0) ok = false;
    if (std::abs(hybrid_diff) > 20.0) ok = false;
  }
  table.print(std::cout, "A1: timing agreement and event cost of the three models");
  std::cout << "Shape check: the packet model costs more events than flow and both\n"
            << "cheaper models agree within ~20% on timed results: " << (ok ? "PASS" : "FAIL")
            << "\n";
  return ok ? 0 : 1;
}
