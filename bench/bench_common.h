// Shared plumbing for the experiment harnesses: run workloads through the
// full GRAM submission path on a platform and report paper-style rows.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "apps/wavetoy.h"
#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "core/reference_platform.h"
#include "core/topologies.h"
#include "npb/npb.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace mgbench {

using namespace mg;

/// One GRAM allocation part per virtual host, `n` hosts (default: all).
inline std::vector<grid::AllocationPart> onePerHost(const core::Platform& platform, int n = -1) {
  std::vector<grid::AllocationPart> parts;
  for (const auto& h : platform.mapper().hosts()) {
    if (n >= 0 && static_cast<int>(parts.size()) == n) break;
    parts.push_back({h.hostname, 1});
  }
  return parts;
}

/// Worker count for the parallel lane engine, from MG_PARALLEL in the
/// environment (0 = classic sequential kernel). Harnesses route this into
/// MicroGridOptions so a perf sweep can flip worker counts without
/// rebuilding — and since the worker count cannot change observable output
/// (DESIGN.md §7), before/after rows stay comparable.
inline int parallelWorkersFromEnv() {
  const char* w = std::getenv("MG_PARALLEL");
  return w != nullptr ? std::atoi(w) : 0;
}

/// MicroGridOptions preconfigured from the environment.
inline core::MicroGridOptions platformOptionsFromEnv() {
  core::MicroGridOptions opts;
  opts.parallel_workers = parallelWorkersFromEnv();
  return opts;
}

/// When MG_METRICS=table or MG_METRICS=json is set in the environment, dump
/// the platform simulator's metrics snapshot to stdout (after a workload).
inline void maybeDumpMetrics(core::Platform& platform) {
  const char* fmt = std::getenv("MG_METRICS");
  if (!fmt) return;
  const std::string f = fmt;
  if (f == "json") {
    std::cout << platform.simulator().metrics().snapshotJson() << "\n";
  } else if (f == "table") {
    platform.simulator().metrics().snapshotTable().print(std::cout, "metrics");
  }
}

/// Run one NPB benchmark end-to-end (GIS + gatekeepers + co-allocation) and
/// return the longest per-rank time. Aborts the harness on failure.
inline double runNpbOn(core::Platform& platform, npb::Benchmark b, npb::NpbClass cls,
                       std::vector<grid::AllocationPart> parts) {
  grid::ExecutableRegistry registry;
  npb::ResultSink sink;
  npb::registerNpb(registry, sink);
  core::Launcher launcher(platform, registry);
  launcher.startServices();
  const std::string exe = "npb." + util::toLower(npb::benchmarkName(b));
  auto result = launcher.run(exe, npb::className(cls), std::move(parts));
  if (!result.ok || !sink.allVerified()) {
    std::cerr << "FATAL: " << exe << " run failed: " << result.error << "\n";
    std::exit(1);
  }
  maybeDumpMetrics(platform);
  return sink.maxSeconds();
}

/// Run WaveToy end-to-end; returns the longest per-rank time.
inline double runWaveToyOn(core::Platform& platform, int grid_edge, int timesteps,
                           std::vector<grid::AllocationPart> parts) {
  grid::ExecutableRegistry registry;
  apps::WaveToySink sink;
  apps::registerWaveToy(registry, sink);
  core::Launcher launcher(platform, registry);
  launcher.startServices();
  auto result = launcher.run("cactus.wavetoy",
                             std::to_string(grid_edge) + " " + std::to_string(timesteps),
                             std::move(parts));
  if (!result.ok || !sink.allVerified()) {
    std::cerr << "FATAL: wavetoy run failed: " << result.error << "\n";
    std::exit(1);
  }
  maybeDumpMetrics(platform);
  return sink.maxSeconds();
}

inline void printHeader(const std::string& title, const std::string& paper_ref) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << ")\n"
            << "==========================================================\n"
            // Timing provenance: a 4-worker wall-clock number on a 1-core
            // box is not a speedup claim, so every report leads with both.
            << "env: parallel_workers=" << parallelWorkersFromEnv()
            << " hardware_cores=" << std::thread::hardware_concurrency() << "\n";
}

}  // namespace mgbench
