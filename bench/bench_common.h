// Shared plumbing for the experiment harnesses: run workloads through the
// full GRAM submission path on a platform and report paper-style rows.
#pragma once

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "apps/wavetoy.h"
#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "core/reference_platform.h"
#include "core/topologies.h"
#include "npb/npb.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace mgbench {

using namespace mg;

/// One GRAM allocation part per virtual host, `n` hosts (default: all).
inline std::vector<grid::AllocationPart> onePerHost(const core::Platform& platform, int n = -1) {
  std::vector<grid::AllocationPart> parts;
  for (const auto& h : platform.mapper().hosts()) {
    if (n >= 0 && static_cast<int>(parts.size()) == n) break;
    parts.push_back({h.hostname, 1});
  }
  return parts;
}

/// When MG_METRICS=table or MG_METRICS=json is set in the environment, dump
/// the platform simulator's metrics snapshot to stdout (after a workload).
inline void maybeDumpMetrics(core::Platform& platform) {
  const char* fmt = std::getenv("MG_METRICS");
  if (!fmt) return;
  const std::string f = fmt;
  if (f == "json") {
    std::cout << platform.simulator().metrics().snapshotJson() << "\n";
  } else if (f == "table") {
    platform.simulator().metrics().snapshotTable().print(std::cout, "metrics");
  }
}

/// Run one NPB benchmark end-to-end (GIS + gatekeepers + co-allocation) and
/// return the longest per-rank time. Aborts the harness on failure.
inline double runNpbOn(core::Platform& platform, npb::Benchmark b, npb::NpbClass cls,
                       std::vector<grid::AllocationPart> parts) {
  grid::ExecutableRegistry registry;
  npb::ResultSink sink;
  npb::registerNpb(registry, sink);
  core::Launcher launcher(platform, registry);
  launcher.startServices();
  const std::string exe = "npb." + util::toLower(npb::benchmarkName(b));
  auto result = launcher.run(exe, npb::className(cls), std::move(parts));
  if (!result.ok || !sink.allVerified()) {
    std::cerr << "FATAL: " << exe << " run failed: " << result.error << "\n";
    std::exit(1);
  }
  maybeDumpMetrics(platform);
  return sink.maxSeconds();
}

/// Run WaveToy end-to-end; returns the longest per-rank time.
inline double runWaveToyOn(core::Platform& platform, int grid_edge, int timesteps,
                           std::vector<grid::AllocationPart> parts) {
  grid::ExecutableRegistry registry;
  apps::WaveToySink sink;
  apps::registerWaveToy(registry, sink);
  core::Launcher launcher(platform, registry);
  launcher.startServices();
  auto result = launcher.run("cactus.wavetoy",
                             std::to_string(grid_edge) + " " + std::to_string(timesteps),
                             std::move(parts));
  if (!result.ok || !sink.allVerified()) {
    std::cerr << "FATAL: wavetoy run failed: " << result.error << "\n";
    std::exit(1);
  }
  maybeDumpMetrics(platform);
  return sink.maxSeconds();
}

inline void printHeader(const std::string& title, const std::string& paper_ref) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref << ")\n"
            << "==========================================================\n";
}

}  // namespace mgbench
