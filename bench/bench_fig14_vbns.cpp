// Fig 13 + Fig 14 — NPB over the fictional vBNS coupled-cluster testbed:
// two processes at UCSD and two at UIUC, the path traversing LAN, OC3 and
// OC12 links and several routers; the major WAN bottleneck is varied
// 622 / 155 / 10 Mb/s.
//
// Paper result: "the performance of the NAS parallel benchmarks distributed
// over a wide-area coupled cluster is only mildly sensitive to network
// bandwidth. With the exception of EP, the latency effects dominate."
#include "bench_common.h"
#include "util/units.h"

using namespace mgbench;

int main() {
  printHeader("NPB over the vBNS distributed cluster testbed", "Fig 13 (topology) and Fig 14");

  // Fig 13: render the modeled topology.
  {
    auto cfg = core::topologies::vbns();
    const auto& topo = cfg.topology();
    util::Table links({"link", "from", "to", "bandwidth", "latency"});
    for (int l = 0; l < topo.linkCount(); ++l) {
      const auto& link = topo.link(l);
      links.row() << link.name << topo.node(link.a).name << topo.node(link.b).name
                  << util::formatBandwidth(link.bandwidth_bps)
                  << util::formatTime(sim::toSeconds(link.latency));
    }
    links.print(std::cout, "Fig 13: vBNS coupled-cluster topology (bottleneck at la-chi)");
  }

  const npb::Benchmark benches[] = {npb::Benchmark::LU, npb::Benchmark::BT, npb::Benchmark::MG,
                                    npb::Benchmark::EP};
  const double bottlenecks[] = {622e6, 155e6, 10e6};

  // Baseline: the same 4-process job on a single-site LAN cluster.
  std::vector<double> lan_times;
  for (auto b : benches) {
    core::MicroGridPlatform lan(core::topologies::alphaCluster(), platformOptionsFromEnv());
    lan_times.push_back(runNpbOn(lan, b, npb::NpbClass::S, onePerHost(lan)));
  }

  util::Table table({"benchmark", "LAN_s", "622Mb/s", "155Mb/s", "10Mb/s", "slowdown_622_vs_LAN"});
  bool ok = true;
  int bi = 0;
  for (auto b : benches) {
    std::vector<double> times;
    for (double bw : bottlenecks) {
      core::topologies::VbnsParams params;
      params.bottleneck_bps = bw;
      core::MicroGridPlatform emu(core::topologies::vbns(params), platformOptionsFromEnv());
      // 2 processes at UCSD, 2 at UIUC.
      std::vector<grid::AllocationPart> parts = {{"ucsd0.ucsd.edu", 1},
                                                 {"ucsd1.ucsd.edu", 1},
                                                 {"uiuc0.uiuc.edu", 1},
                                                 {"uiuc1.uiuc.edu", 1}};
      times.push_back(runNpbOn(emu, b, npb::NpbClass::S, parts));
    }
    const double lan = lan_times[static_cast<size_t>(bi++)];
    table.row() << npb::benchmarkName(b) << lan << times[0] << times[1] << times[2]
                << times[0] / lan;
    // Mild sensitivity 622 -> 155; EP nearly WAN-insensitive.
    if (times[1] > times[0] * 1.5) ok = false;
    if (b == npb::Benchmark::EP) {
      if (times[2] > times[0] * 1.3) ok = false;
      if (times[0] > lan * 1.3) ok = false;
    } else {
      // Latency dominates: crossing the WAN hurts even at full bandwidth.
      if (times[0] < lan * 1.1) ok = false;
    }
  }
  table.print(std::cout, "Fig 14: NPB Class S over vBNS, varying the WAN bottleneck");
  std::cout << "Shape check: latency dominates (all but EP slow down on the WAN\n"
            << "even at 622 Mb/s; 622->155 Mb/s changes little): " << (ok ? "PASS" : "FAIL")
            << "\n";
  return ok ? 0 : 1;
}
