// Fig 16 — CACTUS WaveToy on the modeled Alpha cluster, physical grid vs
// MicroGrid, for grid edges 50 and 250.
//
// Paper result: "These results show excellent match, within 5 to 7%."
#include "bench_common.h"

using namespace mgbench;

int main() {
  printHeader("CACTUS WaveToy: physical grid vs MicroGrid", "Fig 16");

  util::Table table({"grid_edge", "pgrid_s", "mgrid_s", "error_%"});
  bool ok = true;
  for (int edge : {50, 250}) {
    core::ReferencePlatform ref(core::topologies::alphaCluster());
    const double t_ref = runWaveToyOn(ref, edge, 60, onePerHost(ref));
    core::MicroGridPlatform emu(core::topologies::alphaCluster());
    const double t_emu = runWaveToyOn(emu, edge, 60, onePerHost(emu));
    const double err = util::percentError(t_ref, t_emu);
    table.row() << edge << t_ref << t_emu << err;
    if (std::abs(err) > 10.0) ok = false;
  }
  table.print(std::cout, "Fig 16: WaveToy execution time vs grid size");
  std::cout << "Shape check: MicroGrid within ~10% of the physical grid on both\n"
            << "problem sizes (paper: 5-7%): " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
