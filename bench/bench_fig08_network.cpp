// Fig 8 — NSE network modeling: MPI latency and bandwidth benchmarks on two
// virtual nodes connected by a 100 Mb Ethernet, compared between the
// "physical" system (reference flow model) and the MicroGrid (packet-level
// simulator carrying live vmpi traffic).
//
// Paper shape: "the simulated network has similar characteristics to the
// real system" — latency flat for small messages then linear in size;
// bandwidth rising with message size toward saturation. (The paper's
// bandwidth axis peaks near 70 MB/s, which is inconsistent with its stated
// 100 Mb link; we reproduce a correct ~11 MB/s ceiling — see DESIGN.md §5.)
#include "apps/microbench.h"
#include "bench_common.h"
#include "vmpi/comm.h"

using namespace mgbench;

namespace {

std::vector<apps::PingPongPoint> pingPongOn(core::Platform& platform,
                                            const std::vector<std::size_t>& sizes) {
  std::vector<std::string> hosts = {platform.mapper().hosts()[0].hostname,
                                    platform.mapper().hosts()[1].hostname};
  auto points = std::make_shared<std::vector<apps::PingPongPoint>>();
  for (int r = 0; r < 2; ++r) {
    platform.spawnOn(hosts[static_cast<size_t>(r)], "pingpong" + std::to_string(r),
                     [=](vos::HostContext& ctx) {
                       auto comm = vmpi::Comm::init(ctx, r, hosts);
                       auto pts = apps::pingPong(*comm, sizes);
                       if (r == 0) *points = pts;
                       comm->finalize();
                     });
  }
  platform.run();
  return *points;
}

}  // namespace

int main() {
  printHeader("NSE network modeling: MPI latency/bandwidth vs message size", "Fig 8");

  std::vector<std::size_t> sizes;
  for (std::size_t s = 4; s <= (1u << 18); s *= 4) sizes.push_back(s);

  auto cfg = core::topologies::alphaCluster();  // 100 Mb Ethernet
  core::ReferencePlatform ref(cfg);
  const auto ethernet = pingPongOn(ref, sizes);
  core::MicroGridPlatform mgp(cfg);
  const auto mgrid = pingPongOn(mgp, sizes);

  util::Table table({"bytes", "ethernet_latency_us", "mgrid_latency_us", "ethernet_MB/s",
                     "mgrid_MB/s", "latency_err_%"});
  bool ok = true;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto& e = ethernet[i];
    const auto& m = mgrid[i];
    const double err = util::percentError(e.latency_seconds, m.latency_seconds);
    table.row() << static_cast<long long>(e.message_bytes) << e.latency_seconds * 1e6
                << m.latency_seconds * 1e6 << e.bandwidth_mbytes_s << m.bandwidth_mbytes_s
                << err;
    if (std::abs(err) > 50.0) ok = false;  // same curve family
  }
  table.print(std::cout, "Fig 8: latency and bandwidth, Ethernet vs MicroGrid");

  // Shape checks: monotone latency, saturating bandwidth near the 100 Mb
  // payload ceiling (~11.6 MB/s) on both systems.
  const double peak_e = ethernet.back().bandwidth_mbytes_s;
  const double peak_m = mgrid.back().bandwidth_mbytes_s;
  if (!(peak_e > 8.0 && peak_e < 12.0)) ok = false;
  if (!(peak_m > 8.0 && peak_m < 12.0)) ok = false;
  if (!(ethernet.front().latency_seconds < ethernet.back().latency_seconds)) ok = false;
  if (!(mgrid.front().latency_seconds < mgrid.back().latency_seconds)) ok = false;
  std::cout << "Shape check: similar curves, saturation near the 100 Mb ceiling: "
            << (ok ? "PASS" : "FAIL") << "\n";

  // The packet path must stay allocation-free: every per-hop event capture
  // fits the EventFn small buffer.
  const auto fallbacks = mgp.simulator().metrics().counterValue("sim.kernel.eventfn_heap_fallbacks");
  std::cout << "EventFn heap fallbacks on the packet path: " << fallbacks
            << (fallbacks == 0 ? " (PASS)" : " (FAIL)") << "\n";
  if (fallbacks != 0) ok = false;
  return ok ? 0 : 1;
}
