// Fig 11 — the effect of the scheduling quantum on modeling accuracy,
// NPB Class S (small data sets "exacerbate the inaccuracies introduced by
// the quanta size").
//
// Paper result: benchmarks that synchronize frequently match better with
// shorter quanta; best matches were 2.5/5/2.5/10 ms for MG/BT/LU/EP with
// errors of 12% / 0.6% / 0.4% / 1.3%.
#include "bench_common.h"

using namespace mgbench;

int main() {
  printHeader("Scheduling-quantum sweep, NPB Class S", "Fig 11");

  const npb::Benchmark benches[] = {npb::Benchmark::MG, npb::Benchmark::BT, npb::Benchmark::LU,
                                    npb::Benchmark::EP};
  const double quanta_ms[] = {2.5, 5.0, 10.0, 30.0};

  util::Table table({"benchmark", "pgrid_s", "q=2.5ms", "q=5ms", "q=10ms", "q=30ms"});
  bool ok = true;
  for (auto b : benches) {
    core::ReferencePlatform ref(core::topologies::alphaCluster());
    const double t_ref = runNpbOn(ref, b, npb::NpbClass::S, onePerHost(ref));
    std::vector<double> times;
    for (double q : quanta_ms) {
      core::MicroGridOptions opts;
      opts.quantum = sim::fromSeconds(q * 1e-3);
      core::MicroGridPlatform emu(core::topologies::alphaCluster(), opts);
      times.push_back(runNpbOn(emu, b, npb::NpbClass::S, onePerHost(emu)));
    }
    table.row() << npb::benchmarkName(b) << t_ref << times[0] << times[1] << times[2]
                << times[3];
    // Smaller quanta should track the reference at least as well as the
    // coarsest ones.
    const double err_fine = std::abs(util::percentError(t_ref, times[0]));
    const double err_coarse = std::abs(util::percentError(t_ref, times[3]));
    if (err_fine > err_coarse + 2.0) ok = false;
    if (err_fine > 15.0) ok = false;
  }
  table.print(std::cout, "Fig 11: total run time (s) vs scheduler quantum, Class S");
  std::cout << "Shape check: finer quanta give equal-or-better matches, and the\n"
            << "finest quantum is within ~15% of the physical grid: " << (ok ? "PASS" : "FAIL")
            << "\n";
  return ok ? 0 : 1;
}
