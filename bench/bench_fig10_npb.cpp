// Fig 9 + Fig 10 — NPB Class A total run times across machine
// configurations: the Alpha cluster (4 x 533 MHz, 100 Mb Ethernet) and HPVM
// (4 x PII 300 MHz, 1.2 Gb Myrinet), physical vs MicroGrid.
//
// Paper result: "the MicroGrid matches IS, LU, and MG within 2%. For EP and
// BT, the match is slightly worse, but still quite good, within 4%."
#include "bench_common.h"

using namespace mgbench;

int main() {
  printHeader("NPB Class A: physical grid vs MicroGrid", "Fig 9 (configs) and Fig 10");

  util::Table configs({"name", "#procs", "type_procs", "network"});
  configs.row() << "Alpha Cluster" << 4 << "DEC21164, 533 MHz" << "100Mb Ethernet";
  configs.row() << "HPVM" << 4 << "PentiumII, 300 MHz" << "1.2Gb Myrinet";
  configs.print(std::cout, "Fig 9: virtual grid configurations studied");

  const npb::Benchmark benches[] = {npb::Benchmark::EP, npb::Benchmark::BT, npb::Benchmark::LU,
                                    npb::Benchmark::MG, npb::Benchmark::IS};

  bool ok = true;
  for (int config = 0; config < 2; ++config) {
    auto makeCfg = [&] {
      return config == 0 ? core::topologies::alphaCluster() : core::topologies::hpvm();
    };
    util::Table table({"benchmark", "pgrid_s", "mgrid_s", "error_%"});
    for (auto b : benches) {
      core::ReferencePlatform ref(makeCfg());
      const double t_ref = runNpbOn(ref, b, npb::NpbClass::A, onePerHost(ref));
      core::MicroGridPlatform emu(makeCfg(), platformOptionsFromEnv());
      const double t_emu = runNpbOn(emu, b, npb::NpbClass::A, onePerHost(emu));
      const double err = util::percentError(t_ref, t_emu);
      table.row() << npb::benchmarkName(b) << t_ref << t_emu << err;
      if (std::abs(err) > 10.0) ok = false;
    }
    table.print(std::cout, config == 0 ? "Fig 10 (left): NPB Class A on the Alpha cluster"
                                       : "Fig 10 (right): NPB Class A on HPVM");
  }
  std::cout << "Shape check: MicroGrid tracks the physical grid within ~10% on\n"
            << "every benchmark (paper: 2-4% on real hardware): " << (ok ? "PASS" : "FAIL")
            << "\n";
  return ok ? 0 : 1;
}
