// Ablation A3 — vmpi collective algorithm choice: binomial-tree
// reduce+broadcast vs ring reduce-scatter/allgather allreduce.
//
// Expectation: the tree wins at small message sizes (fewer latency-bound
// steps); the ring wins at large sizes (bandwidth-optimal, each byte
// crosses each link about twice regardless of process count).
#include "bench_common.h"
#include "vmpi/comm.h"

using namespace mgbench;

namespace {

double allreduceTime(std::size_t doubles, bool ring, int nhosts) {
  core::topologies::AlphaClusterParams params;
  params.hosts = nhosts;
  core::ReferencePlatform platform(core::topologies::alphaCluster(params));
  std::vector<std::string> hosts;
  for (const auto& h : platform.mapper().hosts()) hosts.push_back(h.hostname);
  auto elapsed = std::make_shared<double>(0);
  for (int r = 0; r < nhosts; ++r) {
    platform.spawnOn(hosts[static_cast<size_t>(r)], "rank" + std::to_string(r),
                     [=](vos::HostContext& ctx) {
                       auto comm = vmpi::Comm::init(ctx, r, hosts);
                       std::vector<double> data(doubles, r * 1.0);
                       comm->barrier();
                       const double t0 = comm->wtime();
                       for (int rep = 0; rep < 3; ++rep) {
                         if (ring) {
                           comm->allreduceRing(data.data(), data.size(), vmpi::Op::Sum);
                         } else {
                           comm->allreduce(data.data(), data.size(), vmpi::Op::Sum);
                         }
                       }
                       if (r == 0) *elapsed = (comm->wtime() - t0) / 3;
                       comm->finalize();
                     });
  }
  platform.run();
  return *elapsed;
}

}  // namespace

int main() {
  printHeader("Collective-algorithm ablation: tree vs ring allreduce", "DESIGN.md A3");

  const int nhosts = 8;
  util::Table table({"doubles", "tree_ms", "ring_ms", "ring/tree"});
  double small_ratio = 0, large_ratio = 0;
  for (std::size_t n : {std::size_t{16}, std::size_t{1024}, std::size_t{65536},
                        std::size_t{1048576}}) {
    const double tree = allreduceTime(n, false, nhosts);
    const double ring = allreduceTime(n, true, nhosts);
    table.row() << static_cast<long long>(n) << tree * 1e3 << ring * 1e3 << ring / tree;
    if (n == 16) small_ratio = ring / tree;
    if (n == 1048576) large_ratio = ring / tree;
  }
  table.print(std::cout, "A3: 8-process allreduce time vs vector size");
  const bool ok = small_ratio > 1.0 && large_ratio < 1.0;
  std::cout << "Shape check: tree wins small messages, ring wins large ones: "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
