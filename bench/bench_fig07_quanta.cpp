// Fig 7 — distribution of scheduler quanta sizes, normalized to mean 1.
//
// "The test consists of three sessions, producing about 9000 samples,
// corresponding to about 90 seconds of test." Paper statistics:
//   no competition:  mean 1.000, dev 0.002
//   CPU competition: mean 1.01,  dev 0.015
//   IO competition:  mean 0.978, dev 0.027
#include "bench_common.h"
#include "vos/cpu_scheduler.h"

using namespace mgbench;

namespace {

struct Row {
  const char* label;
  vos::CompetitionProfile profile;
  double paper_mean;
  double paper_dev;
};

}  // namespace

int main() {
  printHeader("Scheduler quanta-size distribution", "Fig 7");

  const Row rows[] = {
      {"no_competition", vos::CompetitionProfile::none(), 1.000, 0.002},
      {"cpu_competition", vos::CompetitionProfile::cpuBound(), 1.010, 0.015},
      {"io_competition", vos::CompetitionProfile::ioBound(), 0.978, 0.027},
  };

  util::Table table({"session", "samples", "mean", "dev", "paper_mean", "paper_dev"});
  bool ok = true;
  for (const Row& row : rows) {
    sim::Simulator sim;
    vos::CpuScheduler sched(sim, 533e6, 10 * sim::kMillisecond, row.profile);
    sim.spawn("load", [&] {
      auto task = sched.addTask("load", 1.0);
      sched.computeSeconds(task, 90.0);  // ~9000 quanta of 10 ms
    });
    sim.run();
    util::RunningStats stats;
    for (double q : sched.quantaLog()) stats.add(q);
    table.row() << row.label << static_cast<long long>(stats.count()) << stats.mean()
                << stats.stddev() << row.paper_mean << row.paper_dev;
    if (std::abs(stats.mean() - row.paper_mean) > 0.005) ok = false;
    if (std::abs(stats.stddev() - row.paper_dev) > row.paper_dev * 0.3 + 0.001) ok = false;

    // The Fig 7 histogram, rendered coarsely.
    util::Histogram hist(0.86, 1.14, 14);
    for (double q : sched.quantaLog()) hist.add(q);
    std::cout << row.label << " histogram (normalized slice -> frequency):\n";
    for (int b = 0; b < hist.bins(); ++b) {
      if (hist.count(b) == 0) continue;
      std::cout << util::format("  %.3f  %5.3f  ", hist.binCenter(b), hist.frequency(b));
      const int bar = static_cast<int>(hist.frequency(b) * 60);
      for (int i = 0; i < bar; ++i) std::cout << '#';
      std::cout << "\n";
    }
  }
  table.print(std::cout, "Fig 7: normalized time-slice distribution");
  std::cout << "Shape check: means/devs match the paper's sessions: " << (ok ? "PASS" : "FAIL")
            << "\n";
  return ok ? 0 : 1;
}
