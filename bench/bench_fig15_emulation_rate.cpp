// Fig 15 — total run times varying emulation rates.
//
// "The MicroGrid can be run at a variety of actual speeds, yet yield
// identical results in virtual Grid time." We run NPB Class A at 1x/2x/4x/8x
// slowdown and report virtual-time results normalized to 1x, plus the
// emulation (wall-clock) cost that buys the fidelity. (Class A, like the
// paper's runs: compute phases span many scheduler quanta, so the Fig 4
// credit rule's burst behaviour does not distort the comparison — see
// DESIGN.md §5.)
#include "bench_common.h"

using namespace mgbench;

int main() {
  printHeader("Virtual-time invariance across emulation rates", "Fig 15");

  const npb::Benchmark benches[] = {npb::Benchmark::MG, npb::Benchmark::BT, npb::Benchmark::LU,
                                    npb::Benchmark::EP};
  const double slowdowns[] = {1, 2, 4, 8};

  util::Table table(
      {"benchmark", "1x", "2x", "4x", "8x", "virtual_s@1x", "emulation_s@8x"});
  bool ok = true;
  for (auto b : benches) {
    std::vector<double> times;
    double emu_cost_8x = 0;
    for (double s : slowdowns) {
      core::MicroGridOptions opts;
      opts.slowdown = s;
      core::MicroGridPlatform emu(core::topologies::alphaCluster(), opts);
      times.push_back(runNpbOn(emu, b, npb::NpbClass::A, onePerHost(emu)));
      if (s == 8) emu_cost_8x = emu.emulationNow();
    }
    table.row() << npb::benchmarkName(b) << 1.0 << times[1] / times[0] << times[2] / times[0]
                << times[3] / times[0] << times[0] << emu_cost_8x;
    for (int i = 1; i < 4; ++i) {
      const double ratio = times[static_cast<size_t>(i)] / times[0];
      if (std::abs(ratio - 1.0) > 0.12) ok = false;
    }
  }
  table.print(std::cout, "Fig 15: normalized virtual run time vs emulation rate");
  std::cout << "Shape check: virtual results within ~12% of the 1x run at every\n"
            << "rate (paper: near-identical): " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
