// Fig 12 — extrapolation: total run times varying only the virtual CPU
// (1x/2x/4x/8x), holding network performance constant at 1 Mbps / 50 ms.
//
// Paper result: "significant speedups can be achieved solely based on
// increases in processor speed" — normalized ratios fall well below 1 as
// CPUs scale, with compute-bound EP benefiting the most.
#include "bench_common.h"

using namespace mgbench;

int main() {
  printHeader("Virtual-CPU scaling at fixed (slow) network", "Fig 12");

  const npb::Benchmark benches[] = {npb::Benchmark::MG, npb::Benchmark::BT, npb::Benchmark::LU,
                                    npb::Benchmark::EP};
  const double scales[] = {1, 2, 4, 8};

  util::Table table({"benchmark", "1x", "2x", "4x", "8x", "seconds@1x"});
  bool ok = true;
  for (auto b : benches) {
    std::vector<double> times;
    for (double s : scales) {
      core::topologies::AlphaClusterParams params;
      params.cpu_scale = s;
      params.bandwidth_bps = 1e6;          // 1 Mbps
      params.latency_seconds = 25e-3;      // 50 ms host-to-host
      core::MicroGridPlatform emu(core::topologies::alphaCluster(params));
      times.push_back(runNpbOn(emu, b, npb::NpbClass::S, onePerHost(emu)));
    }
    table.row() << npb::benchmarkName(b) << 1.0 << times[1] / times[0] << times[2] / times[0]
                << times[3] / times[0] << times[0];
    // Monotone speedup; EP (pure compute) should approach the ideal 1/8.
    for (int i = 1; i < 4; ++i) {
      if (times[static_cast<size_t>(i)] > times[static_cast<size_t>(i) - 1] * 1.02) ok = false;
    }
    if (b == npb::Benchmark::EP && times[3] / times[0] > 0.2) ok = false;
  }
  table.print(std::cout, "Fig 12: normalized run time vs virtual CPU speed");
  std::cout << "Shape check: monotone speedups; EP approaches the ideal 1/8: "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
