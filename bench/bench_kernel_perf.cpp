// Ablation A2 — simulation-kernel micro-benchmarks (google-benchmark):
// event throughput, process context-switch cost, channel operations, and
// packet-network forwarding rate. These bound how large a virtual Grid the
// tool can emulate per real second (the paper's scalability concern).
#include <benchmark/benchmark.h>

#include <array>
#include <functional>
#include <memory>

#include "net/flow_network.h"
#include "net/host_stack.h"
#include "net/packet_network.h"
#include "sim/channel.h"
#include "sim/simulator.h"

using namespace mg;

static void BM_EventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    long long sum = 0;
    for (int i = 0; i < 10000; ++i) {
      sim.scheduleAt(i, [&sum, i] { sum += i; });
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventDispatch)->Unit(benchmark::kMillisecond);

static void BM_ScheduleCancelChurn(benchmark::State& state) {
  // Timer churn: schedule far-future timeouts and cancel them before they
  // fire — the TCP-RTO / suspendFor pattern. Measures cancellation cost and
  // (in the arena kernel) that cancelled slots are recycled instead of
  // left as tombstones to pop later.
  for (auto _ : state) {
    sim::Simulator sim;
    long long sum = 0;
    for (int i = 0; i < 10000; ++i) {
      auto id = sim.scheduleAt(1000000 + i, [&sum, i] { sum += i; });
      sim.cancel(id);
    }
    sim.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_ScheduleCancelChurn)->Unit(benchmark::kMillisecond);

static void BM_SuspendForWake(benchmark::State& state) {
  // suspendFor with an early wake: every round arms a timeout and retires
  // it unexpired. Exercises the handoff path plus timeout cancellation.
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Process* sleeper = nullptr;
    int woken = 0;
    sim.spawn("sleeper", [&] {
      sleeper = &sim.currentProcess();
      for (int i = 0; i < 1000; ++i) {
        if (sim.suspendFor(1000000)) ++woken;
      }
    });
    sim.spawn("waker", [&] {
      for (int i = 0; i < 1000; ++i) {
        sim.delay(1);
        sim.wake(*sleeper);
      }
    });
    sim.run();
    benchmark::DoNotOptimize(woken);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SuspendForWake)->Unit(benchmark::kMillisecond);

static void BM_ProcessContextSwitch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim.spawn("p", [&] {
      for (int i = 0; i < 1000; ++i) sim.delay(1);
    });
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ProcessContextSwitch)->Unit(benchmark::kMillisecond);

static void BM_ChannelPingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    sim::Channel<int> a(sim), b(sim);
    sim.spawn("ping", [&] {
      for (int i = 0; i < 500; ++i) {
        a.send(i);
        b.recv();
      }
    });
    sim.spawn("pong", [&] {
      for (int i = 0; i < 500; ++i) {
        b.send(a.recv());
      }
    });
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ChannelPingPong)->Unit(benchmark::kMillisecond);

static void BM_PacketForwarding(benchmark::State& state) {
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulator sim;
    net::Topology topo;
    net::NodeId prev = topo.addHost("h0");
    for (int i = 1; i <= hops; ++i) {
      net::NodeId next = (i == hops) ? topo.addHost("h" + std::to_string(i))
                                     : topo.addRouter("r" + std::to_string(i));
      topo.addLink("l" + std::to_string(i), prev, next, 1e9, 1000);
      prev = next;
    }
    net::PacketNetwork net(sim, std::move(topo), {});
    net.attachHost(prev, [](net::Packet&&) {});
    for (int i = 0; i < 1000; ++i) {
      net::Packet p;
      p.src = 0;
      p.dst = prev;
      p.payload.resize(64);
      net.send(std::move(p));
    }
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * 1000 * hops);
  state.SetLabel(std::to_string(hops) + " hops");
}
BENCHMARK(BM_PacketForwarding)->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

static void BM_ParallelLaneChurn(benchmark::State& state) {
  // The sharded kernel under churn: four wire lanes each burn through an
  // independent self-rescheduling event chain with periodic cross-lane
  // handoffs, under the conservative engine at Arg(0) workers. On multicore
  // hardware throughput scales with the worker count; the per-lane journals
  // (and so items processed) are identical at every count. On a single core
  // the sweep measures pure engine overhead instead — reports must cite the
  // physical core count next to these numbers (see printHeader).
  const int workers = static_cast<int>(state.range(0));
  constexpr int kLanes = 4;
  constexpr int kStepsPerLane = 2500;
  for (auto _ : state) {
    sim::Simulator sim;
    sim.configureParallel(kLanes + 1, workers, /*lookahead=*/10);
    struct alignas(64) Cell {  // one accumulator per lane: no false sharing
      long long v = 0;
    };
    std::array<Cell, kLanes + 1> cells{};
    std::vector<std::unique_ptr<std::function<void(int)>>> chains;
    for (int lane = 1; lane <= kLanes; ++lane) {
      chains.push_back(std::make_unique<std::function<void(int)>>());
      auto* chain = chains.back().get();
      *chain = [&sim, &cells, chain, lane](int step) {
        cells[static_cast<std::size_t>(lane)].v += step;
        if (step >= kStepsPerLane) return;
        sim.scheduleAfter(3, [chain, step] { (*chain)(step + 1); });
        if (step % 100 == 0) {
          // Cross-lane handoff at >= lookahead, like a cut-link packet.
          const int other = (lane % kLanes) + 1;
          sim.scheduleOnLane(other, sim.now() + 10,
                             [&cells, other] { ++cells[static_cast<std::size_t>(other)].v; });
        }
      };
      sim.scheduleOnLane(lane, lane, [chain] { (*chain)(0); });
    }
    sim.run();
    long long sum = 0;
    for (const auto& c : cells) sum += c.v;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kLanes * kStepsPerLane);
  state.SetLabel(std::to_string(workers) + " worker(s)");
}
BENCHMARK(BM_ParallelLaneChurn)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

static void BM_TcpThroughputSim(benchmark::State& state) {
  // Cost of simulating a 1 MB TCP transfer (the NSE-overhead concern).
  for (auto _ : state) {
    sim::Simulator sim;
    net::Topology topo;
    auto a = topo.addHost("a");
    auto b = topo.addHost("b");
    topo.addLink("l", a, b, 100e6, sim::fromSeconds(0.1e-3));
    net::PacketNetwork net(sim, std::move(topo), {});
    net::HostStack sa(net, a), sb(net, b);
    sim.spawn("server", [&] {
      auto listener = sb.tcp().listen(80);
      auto conn = listener->accept();
      std::vector<std::uint8_t> sink(1 << 20);
      conn->recvExact(sink.data(), sink.size());
    });
    sim.spawn("client", [&] {
      auto conn = sa.tcp().connect(b, 80);
      std::vector<std::uint8_t> data(1 << 20, 0xab);
      conn->send(data.data(), data.size());
      conn->close();
    });
    sim.run();
  }
  state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_TcpThroughputSim)->Unit(benchmark::kMillisecond);

static void BM_FlowChurn(benchmark::State& state) {
  // Fluid-model flow churn on a star of clusters: 8 edge switches under one
  // core, 16 hosts each. Every host keeps one flow alive to a host in the
  // next cluster over, re-starting it on completion — so every completion
  // re-shares and every start re-shares, the exact pattern flow-heavy grid
  // workloads (stage-in/stage-out) generate. Arg(0) runs the full-recompute
  // oracle, Arg(1) the component-scoped incremental engine; the
  // visits_per_recompute counter is the scoping win (and what CI gates on).
  const bool incremental = state.range(0) != 0;
  constexpr int kClusters = 8;
  constexpr int kHostsPer = 16;
  constexpr int kRounds = 40;  // completion-chained churn per iteration
  std::int64_t recomputes = 0, visits = 0;
  for (auto _ : state) {
    sim::Simulator sim;
    net::Topology topo;
    const auto core = topo.addRouter("core");
    std::array<net::NodeId, kClusters * kHostsPer> hosts{};
    for (int c = 0; c < kClusters; ++c) {
      const auto sw = topo.addRouter("sw" + std::to_string(c));
      topo.addLink("up" + std::to_string(c), sw, core, 1e9, sim::fromSeconds(0.2e-3));
      for (int h = 0; h < kHostsPer; ++h) {
        const int idx = c * kHostsPer + h;
        hosts[static_cast<std::size_t>(idx)] = topo.addHost("h" + std::to_string(idx));
        topo.addLink("eth" + std::to_string(idx), hosts[static_cast<std::size_t>(idx)], sw,
                     100e6, sim::fromSeconds(0.05e-3));
      }
    }
    net::FlowNetworkOptions opts;
    opts.incremental = incremental;
    net::FlowNetwork fn(sim, std::move(topo), opts);
    auto& eng = fn.engine();
    std::function<void(int, int)> restart = [&](int idx, int rounds_left) {
      if (rounds_left <= 0) return;
      const int dst = (idx + kHostsPer) % (kClusters * kHostsPer);
      eng.startBits(hosts[static_cast<std::size_t>(idx)], hosts[static_cast<std::size_t>(dst)],
                    2e6, 0, [&restart, idx, rounds_left] { restart(idx, rounds_left - 1); }, {});
    };
    sim.scheduleAt(0, [&] {
      for (int idx = 0; idx < kClusters * kHostsPer; ++idx) restart(idx, kRounds);
    });
    sim.run();
    const net::FlowNetworkStats stats = fn.stats();
    recomputes += stats.share_recomputes;
    visits += stats.recompute_flow_visits;
  }
  state.SetItemsProcessed(recomputes);
  state.counters["visits_per_recompute"] =
      benchmark::Counter(static_cast<double>(visits) / static_cast<double>(recomputes));
}
BENCHMARK(BM_FlowChurn)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
