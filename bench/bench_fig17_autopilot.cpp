// Fig 17 — internal validation with Autopilot sensors.
//
// The same instrumented NPB runs execute on the physical grid and the
// MicroGrid; a periodic function of each benchmark's iteration counter is
// sampled over virtual time and the traces are compared as the root mean
// square percentage difference ("skew"). Paper values: EP 3.08%, BT 2.02%,
// MG 8.33%. The MicroGrid run uses a reduced rate (theirs: 0.04) — the
// virtual-time sampler compensates exactly as the paper's 1 s vs 25 s
// sampling did.
#include "bench_common.h"

using namespace mgbench;

namespace {

util::Trace traceOf(core::Platform& platform, npb::Benchmark b, const std::string& sensor) {
  autopilot::SensorRegistry board;
  auto sampler = std::make_shared<autopilot::Sampler>(board);
  npb::setSensorBoard(&board);

  grid::ExecutableRegistry registry;
  npb::ResultSink sink;
  npb::registerNpb(registry, sink);
  core::Launcher launcher(platform, registry);
  launcher.startServices();

  platform.spawnOn(platform.mapper().hosts().front().hostname, "autopilot",
                   [sampler](vos::HostContext& ctx) { sampler->run(ctx, 1.0); });
  auto result = launcher.run("npb." + util::toLower(npb::benchmarkName(b)), "A",
                             onePerHost(platform), {}, "", [sampler] { sampler->stop(); });
  npb::setSensorBoard(nullptr);
  if (!result.ok) {
    std::cerr << "FATAL: instrumented run failed: " << result.error << "\n";
    std::exit(1);
  }
  return sampler->trace(sensor);
}

}  // namespace

int main() {
  printHeader("Autopilot internal validation: sensor-trace skew", "Fig 17");

  struct Row {
    npb::Benchmark bench;
    double paper_skew;
  };
  const Row rows[] = {{npb::Benchmark::EP, 3.08}, {npb::Benchmark::BT, 2.02},
                      {npb::Benchmark::MG, 8.33}};

  util::Table table({"benchmark", "pgrid_samples", "mgrid_samples", "rms_skew_%", "paper_%"});
  bool ok = true;
  for (const Row& row : rows) {
    const std::string sensor = npb::benchmarkName(row.bench) + ".progress";
    core::ReferencePlatform ref(core::topologies::alphaCluster());
    const util::Trace ref_trace = traceOf(ref, row.bench, sensor);
    core::MicroGridOptions opts;
    opts.slowdown = 4.0;  // sample "every 25 seconds" in emulation terms
    core::MicroGridPlatform emu(core::topologies::alphaCluster(), opts);
    const util::Trace emu_trace = traceOf(emu, row.bench, sensor);
    const double skew = util::rmsPercentSkew(ref_trace, emu_trace);
    table.row() << npb::benchmarkName(row.bench) << static_cast<long long>(ref_trace.size())
                << static_cast<long long>(emu_trace.size()) << skew << row.paper_skew;
    if (skew > 20.0) ok = false;
  }
  table.print(std::cout, "Fig 17: RMS percentage skew between internal traces");
  std::cout << "Shape check: traces follow the same structure with single-digit\n"
            << "to low-double-digit skew (paper: 2-8.3%): " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
