// Degraded-grid resilience — NPB EP and MG over the vBNS coupled-cluster
// testbed while the WAN bottleneck degrades (loss + latency + bandwidth) and
// one UIUC host crashes mid-run, then restarts.
//
// Not a figure from the paper: the paper's §4 "future directions" calls for
// modeling "the full dynamics of resource behavior"; this harness exercises
// the fault subsystem end-to-end and reports completion rate, resubmissions,
// GRAM retries, and virtual-time overhead against a healthy baseline.
#include "bench_common.h"

#include "fault/fault_injector.h"

using namespace mgbench;

namespace {

struct FaultedRun {
  core::LaunchResult result;
  bool verified = false;
  std::int64_t gram_retries = 0;
  std::int64_t faults_injected = 0;
  std::string availability;
};

/// Run one NPB kernel over vBNS through the full GRAM path. When
/// `healthy_seconds` > 0 a fault schedule derived from that baseline is
/// injected: WAN degrade at 10% of the healthy runtime, a host crash at 40%
/// restoring at 70%, so the crash is guaranteed to land mid-first-attempt.
FaultedRun runVbnsNpb(npb::Benchmark b, double healthy_seconds) {
  auto cfg = core::topologies::vbns();
  core::MicroGridPlatform platform(cfg);
  grid::ExecutableRegistry registry;
  npb::ResultSink sink;
  npb::registerNpb(registry, sink);
  core::Launcher launcher(platform, registry);
  launcher.startServices(&cfg, "vbns");

  std::unique_ptr<fault::FaultInjector> injector;
  if (healthy_seconds > 0) {
    const double t = healthy_seconds;
    fault::FaultPlan plan;
    fault::FaultEvent degrade;
    degrade.at = 0.1 * t;
    degrade.kind = fault::FaultKind::LinkDegrade;
    degrade.name = "wan-degrade";
    degrade.target = "la-chi";
    degrade.loss = 0.005;
    degrade.latency_mult = 3.0;
    degrade.bandwidth_mult = 0.25;
    degrade.duration = 0.6 * t;
    plan.add(degrade);
    fault::FaultEvent crash;
    crash.at = 0.4 * t;
    crash.kind = fault::FaultKind::HostCrash;
    crash.name = "uiuc1-crash";
    crash.target = "uiuc1.uiuc.edu";
    crash.duration = 0.3 * t;
    plan.add(crash);

    injector = std::make_unique<fault::FaultInjector>(platform, std::move(plan));
    injector->onHostCrash([&launcher](const std::string& h) { launcher.markHostDown(h); });
    injector->onHostRestart([&launcher](const std::string& h) { launcher.markHostUp(h); });
    injector->arm();

    core::LaunchOptions lopts;
    lopts.max_resubmits = 4;
    lopts.retry.attempts = 6;
    launcher.setLaunchOptions(lopts);
  }

  const std::string exe = "npb." + util::toLower(npb::benchmarkName(b));
  std::vector<grid::AllocationPart> parts = {{"ucsd0.ucsd.edu", 1},
                                             {"ucsd1.ucsd.edu", 1},
                                             {"uiuc0.uiuc.edu", 1},
                                             {"uiuc1.uiuc.edu", 1}};
  FaultedRun out;
  out.result = launcher.run(exe, npb::className(npb::NpbClass::S), std::move(parts));
  out.verified = sink.allVerified();
  const auto& m = platform.simulator().metrics();
  out.gram_retries = m.counterValue("grid.gram.retries");
  if (injector) {
    out.faults_injected = injector->injected();
    out.availability = injector->renderReport();
  }
  maybeDumpMetrics(platform);
  return out;
}

}  // namespace

int main() {
  printHeader("NPB over a degraded vBNS grid: WAN degrade + host crash",
              "fault subsystem; healthy baseline from Fig 13's testbed");

  const npb::Benchmark benches[] = {npb::Benchmark::EP, npb::Benchmark::MG};
  util::Table table({"benchmark", "healthy_s", "faulted_s", "overhead", "resubmits",
                     "gram_retries", "faults", "completed"});
  int completed = 0, total = 0;
  bool ok = true;
  std::string availability;
  for (auto b : benches) {
    const FaultedRun healthy = runVbnsNpb(b, 0);
    if (!healthy.result.ok || !healthy.verified) {
      std::cerr << "FATAL: healthy baseline failed: " << healthy.result.error << "\n";
      return 1;
    }
    const FaultedRun faulted = runVbnsNpb(b, healthy.result.virtual_seconds);
    ++total;
    const bool done = faulted.result.ok && faulted.verified;
    if (done) ++completed;
    const double overhead =
        faulted.result.virtual_seconds / healthy.result.virtual_seconds;
    table.row() << npb::benchmarkName(b) << healthy.result.virtual_seconds
                << faulted.result.virtual_seconds << overhead << faulted.result.resubmits
                << static_cast<long long>(faulted.gram_retries)
                << static_cast<long long>(faulted.faults_injected) << (done ? "yes" : "NO");
    availability = faulted.availability;  // same schedule shape for each kernel
    // The crash lands mid-first-attempt, so recovery requires at least one
    // resubmission and costs virtual time.
    if (!done || faulted.result.resubmits < 1 || overhead < 1.0) ok = false;
  }
  table.print(std::cout, "NPB Class S over vBNS: healthy vs. degraded (WAN degrade + crash)");
  std::cout << availability;
  std::cout << "Completion rate under faults: " << completed << "/" << total << "\n";
  std::cout << "Shape check: every degraded run completes after >=1 resubmission\n"
            << "and pays a virtual-time overhead over the healthy baseline: "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
