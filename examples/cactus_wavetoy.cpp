// CACTUS WaveToy on a virtual Grid described by a config file — the paper's
// full-application scenario (§3.5), with the grid description loadable from
// disk or built from the Alpha-cluster preset.
//
//   $ ./examples/cactus_wavetoy [grid_edge] [timesteps] [config.ini]
//
// Config-file format: see core/virtual_grid.h.
#include <cstdlib>
#include <iostream>

#include "apps/wavetoy.h"
#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "core/reference_platform.h"
#include "core/topologies.h"
#include "util/stats.h"

using namespace mg;

namespace {

double runOn(core::Platform& platform, int edge, int steps) {
  grid::ExecutableRegistry registry;
  apps::WaveToySink sink;
  apps::registerWaveToy(registry, sink);
  core::Launcher launcher(platform, registry);
  launcher.startServices();
  std::vector<grid::AllocationPart> parts;
  for (const auto& h : platform.mapper().hosts()) parts.push_back({h.hostname, 1});
  auto result = launcher.run("cactus.wavetoy",
                             std::to_string(edge) + " " + std::to_string(steps), parts);
  if (!result.ok || !sink.allVerified()) {
    std::cerr << "wavetoy failed: " << result.error << "\n";
    std::exit(1);
  }
  std::cout << "  final field energy " << sink.results().front().energy << " (verified)\n";
  return sink.maxSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  const int edge = argc > 1 ? std::atoi(argv[1]) : 50;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 60;
  core::VirtualGridConfig cfg = argc > 3
                                    ? core::VirtualGridConfig::fromConfig(
                                          util::Config::parseFile(argv[3]))
                                    : core::topologies::alphaCluster();

  std::cout << "WaveToy, grid edge " << edge << ", " << steps << " timesteps, "
            << cfg.mapper().hosts().size() << " virtual hosts\n\n";

  std::cout << "physical-grid model:\n";
  core::ReferencePlatform ref(cfg);
  const double t_ref = runOn(ref, edge, steps);
  std::cout << "  execution time " << t_ref << " s\n\n";

  std::cout << "MicroGrid emulation:\n";
  core::MicroGridPlatform emu(cfg);
  const double t_emu = runOn(emu, edge, steps);
  std::cout << "  execution time " << t_emu << " s  (error "
            << util::percentError(t_ref, t_emu) << "%; paper Fig 16 saw 5-7%)\n";
  return 0;
}
