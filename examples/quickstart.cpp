// Quickstart: build a small virtual Grid, publish it in the GIS, start the
// Globus-like services, and submit a parallel job through the gatekeepers —
// the whole MicroGrid pipeline in ~80 lines.
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "core/virtual_grid.h"
#include "vmpi/comm.h"

using namespace mg;

int main() {
  // 1. Describe a virtual Grid: two 266 MHz virtual hosts sharing one
  //    533 MHz physical machine, joined by a 100 Mb Ethernet switch.
  core::VirtualGridConfig cfg;
  cfg.addPhysical("workstation", 533e6);
  cfg.addHost("vm0.example.org", "1.11.11.1", 266e6, 1ll << 30, "workstation");
  cfg.addHost("vm1.example.org", "1.11.11.2", 266e6, 1ll << 30, "workstation");
  cfg.addRouter("switch0");
  cfg.addLink("eth0", "vm0.example.org", "switch0", 100e6, 50e-6);
  cfg.addLink("eth1", "vm1.example.org", "switch0", 100e6, 50e-6);

  // 2. The simulation rate follows from the virtual/physical mapping
  //    (paper §2.3): here 533 / (266+266) ~= 1.0 before headroom.
  const auto rate = core::SimulationRate::compute(cfg);
  std::cout << "max feasible simulation rate: " << rate.max_feasible << "\n";

  // 3. Bring up the MicroGrid emulation platform.
  core::MicroGridPlatform platform(cfg);
  std::cout << "chosen rate: " << platform.rate() << "\n";

  // 4. Register an application. Jobs are ordinary functions of a
  //    JobContext; this one forms a vmpi communicator and reduces.
  grid::ExecutableRegistry registry;
  auto greeting_count = std::make_shared<int>(0);
  registry.add("hello.grid", [greeting_count](grid::JobContext& jc) {
    auto comm = vmpi::Comm::init(jc);
    jc.os.compute(50e6);  // pretend to work
    double ranks = comm->rank();
    comm->allreduce(&ranks, 1, vmpi::Op::Sum);
    if (comm->rank() == 0) {
      std::cout << "  [" << jc.os.hostname() << "] hello from " << comm->size()
                << " ranks, ranksum=" << ranks << ", virtual time " << jc.os.wallTime()
                << " s\n";
      ++*greeting_count;
    }
    comm->finalize();
    return 0;
  });

  // 5. Start the GIS server and a gatekeeper per host, publishing the
  //    Fig 3 records, then submit a co-allocated 2-rank job.
  core::Launcher launcher(platform, registry);
  launcher.startServices(&cfg, "Quickstart_Configuration");
  auto result =
      launcher.run("hello.grid", "", {{"vm0.example.org", 1}, {"vm1.example.org", 1}});

  std::cout << "job " << (result.ok ? "succeeded" : ("failed: " + result.error)) << " in "
            << result.virtual_seconds << " virtual seconds\n"
            << "GIS entries published: " << launcher.directory().size() << "\n";
  return result.ok && *greeting_count == 1 ? 0 : 1;
}
