// grid_economy — the grid-economy subsystem end-to-end: one synthetic
// open-loop workload placed by each broker policy on the same generated
// grid, then a fault run showing broker-level resubmission.
//
// Phase 1 replays the identical job stream (same seed) under the Cost,
// Deadline, and Locality policies on fresh platforms and prints a
// comparison table. The run fails if the policies do not produce
// measurably different deadline-miss rates — the broker must matter.
//
// Phase 2 reruns the Deadline policy while crashing one cluster mid-run
// (its GIS record expires, PR-2 style) and restarting it later: every job
// still finishes, some via resubmission to surviving clusters.
//
//   $ ./examples/grid_economy
//   $ ./examples/grid_economy --jobs 50000 --workload examples/workloads/econ_smoke.ini
//
// Options:
//   --workload FILE  [workload]/[grid] sections (default: built-in scenario)
//   --jobs N         override the job count
#include <iostream>
#include <string>

#include "core/microgrid_platform.h"
#include "econ/economy.h"
#include "obs/metrics.h"
#include "util/config.h"
#include "util/error.h"
#include "util/table.h"

using namespace mg;

namespace {

struct Options {
  std::string workload_path;
  std::int64_t jobs = 0;
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw mg::UsageError("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--workload") {
      opt.workload_path = next();
    } else if (flag == "--jobs") {
      opt.jobs = std::stoll(next());
    } else {
      throw mg::UsageError("unknown flag " + flag + " (see the header of grid_economy.cpp)");
    }
  }
  return opt;
}

/// Built-in scenario: 20k jobs on an 8-cluster grid at ~50% mean
/// utilization, so queues form at the diurnal peak and drain at night.
void defaultScenario(econ::WorkloadSpec& w, econ::EconGridSpec& g) {
  w.jobs = 20000;
  w.users = 4000;
  w.seed = 42;
  w.rate = 3.0;
  w.day_period_s = 3600;
  w.runtime_mu = 3.5;
  w.max_cpus = 32;
  g.clusters = 8;
  g.hosts_per_cluster = 32;
  g.cores_per_host = 4;
}

econ::EconReport runPolicy(const econ::EconGrid& grid, const econ::WorkloadSpec& spec,
                           econ::BrokerPolicy policy, double crash_at = 0, double restart_at = 0,
                           const std::string& crash_cluster = "") {
  core::MicroGridOptions mopts;
  mopts.netmodel = net::NetModelKind::Flow;
  mopts.rate_override = 1.0;
  core::MicroGridPlatform platform(grid.grid, mopts);
  econ::EconOptions eopts;
  eopts.workload = spec;
  eopts.policy = policy;
  econ::GridEconomy economy(platform, grid, eopts);
  economy.arm();
  if (!crash_cluster.empty()) {
    economy.scheduleCrash(crash_cluster, crash_at);
    economy.scheduleRestart(crash_cluster, restart_at);
  }
  platform.run();
  return economy.report();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parseArgs(argc, argv);

    econ::WorkloadSpec spec;
    econ::EconGridSpec gspec;
    if (opt.workload_path.empty()) {
      defaultScenario(spec, gspec);
    } else {
      const util::Config raw = util::Config::parseFile(opt.workload_path);
      spec = econ::WorkloadSpec::fromConfig(raw);
      gspec = econ::EconGridSpec::fromConfig(raw);
    }
    if (opt.jobs > 0) spec.jobs = opt.jobs;
    const econ::EconGrid grid = econ::makeEconGrid(gspec);

    std::cout << "grid economy: " << gspec.clusters << " cluster(s), "
              << gspec.clusters * gspec.hosts_per_cluster * gspec.cores_per_host
              << " core(s), " << spec.jobs << " job(s), seed " << spec.seed << "\n\n";

    // ---- Phase 1: the same day under each placement policy ----
    util::Table table({"policy", "miss_rate", "slowdown_p50", "mean_wait_s", "spent", "failed"});
    double lo_miss = 1e300, hi_miss = -1e300;
    for (const econ::BrokerPolicy p :
         {econ::BrokerPolicy::Cost, econ::BrokerPolicy::Deadline, econ::BrokerPolicy::Locality}) {
      const econ::EconReport r = runPolicy(grid, spec, p);
      if (r.completed + r.failed + r.rejected_budget + r.rejected_unplaceable != r.submitted) {
        std::cerr << "FAIL: " << econ::brokerPolicyName(p) << " lost jobs\n";
        return 1;
      }
      table.addRow({econ::brokerPolicyName(p), obs::formatDouble(r.missRate()),
                    obs::formatDouble(r.slowdown_p50), obs::formatDouble(r.mean_wait_s),
                    obs::formatDouble(r.budget_spent), std::to_string(r.failed)});
      lo_miss = std::min(lo_miss, r.missRate());
      hi_miss = std::max(hi_miss, r.missRate());
    }
    std::cout << table.render() << "\n";
    // The acceptance gate: switching policy must move the miss rate.
    if (hi_miss - lo_miss < 1e-3) {
      std::cerr << "FAIL: policies produced indistinguishable deadline-miss rates\n";
      return 1;
    }
    std::cout << "policy effect on miss rate: " << obs::formatDouble(lo_miss) << " .. "
              << obs::formatDouble(hi_miss) << " (PASS)\n\n";

    // ---- Phase 2: crash a cluster mid-run, jobs resubmit elsewhere ----
    const std::string victim = grid.clusters.at(1).name;
    std::cout << "fault run: crashing " << victim << " at t=600s, restart at t=1800s\n";
    const econ::EconReport f =
        runPolicy(grid, spec, econ::BrokerPolicy::Deadline, 600, 1800, victim);
    std::cout << f.render();
    if (f.completed + f.failed + f.rejected_budget + f.rejected_unplaceable != f.submitted) {
      std::cerr << "FAIL: fault run lost jobs\n";
      return 1;
    }
    if (f.resubmits == 0) {
      std::cerr << "FAIL: expected resubmissions after the cluster crash\n";
      return 1;
    }
    std::cout << "fault run: " << f.resubmits << " resubmission(s), " << f.failed
              << " job(s) exhausted retries (PASS)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "grid_economy: " << e.what() << "\n";
    return 2;
  }
}
