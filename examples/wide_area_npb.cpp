// Wide-area experiment: run an NPB kernel over the Fig 13 vBNS
// coupled-cluster testbed (two processes at UCSD, two at UIUC) and compare
// against a single-site run — the paper's motivating "can Grid applications
// tolerate the WAN?" question.
//
//   $ ./examples/wide_area_npb [ep|is|mg|lu|bt]
#include <cstdlib>
#include <iostream>

#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "core/topologies.h"
#include "npb/npb.h"
#include "util/strings.h"

using namespace mg;

namespace {

double runOn(core::VirtualGridConfig cfg, npb::Benchmark bench,
             std::vector<grid::AllocationPart> parts) {
  core::MicroGridPlatform platform(cfg);
  grid::ExecutableRegistry registry;
  npb::ResultSink sink;
  npb::registerNpb(registry, sink);
  core::Launcher launcher(platform, registry);
  launcher.startServices();
  auto result = launcher.run("npb." + util::toLower(npb::benchmarkName(bench)), "S",
                             std::move(parts));
  if (!result.ok) {
    std::cerr << "run failed: " << result.error << "\n";
    std::exit(1);
  }
  return sink.maxSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  const npb::Benchmark bench =
      argc > 1 ? npb::benchmarkFromString(argv[1]) : npb::Benchmark::MG;
  std::cout << "NPB " << npb::benchmarkName(bench) << " (Class S), 4 processes\n\n";

  // Single-site baseline: the Alpha cluster.
  auto lan_cfg = core::topologies::alphaCluster();
  std::vector<grid::AllocationPart> lan_parts;
  for (const auto& h : lan_cfg.mapper().hosts()) lan_parts.push_back({h.hostname, 1});
  const double t_lan = runOn(lan_cfg, bench, lan_parts);
  std::cout << "single-site LAN cluster:         " << t_lan << " s\n";

  // Wide-area: 2 + 2 across the vBNS.
  for (double bottleneck : {622e6, 10e6}) {
    core::topologies::VbnsParams params;
    params.bottleneck_bps = bottleneck;
    const double t = runOn(core::topologies::vbns(params), bench,
                           {{"ucsd0.ucsd.edu", 1},
                            {"ucsd1.ucsd.edu", 1},
                            {"uiuc0.uiuc.edu", 1},
                            {"uiuc1.uiuc.edu", 1}});
    std::cout << "UCSD+UIUC over vBNS @" << bottleneck / 1e6 << " Mb/s: " << t << " s  ("
              << t / t_lan << "x the LAN time)\n";
  }
  std::cout << "\nAs the paper found, latency — not bandwidth — dominates: Grid\n"
               "applications need to be latency tolerant to run wide-area.\n";
  return 0;
}
