// Capacity planning / what-if study (the paper's Fig 12 use case): use the
// MicroGrid to extrapolate how an application would behave on machines that
// do not exist — faster CPUs on the same network, or the same CPUs on a
// faster network — without touching real hardware.
//
//   $ ./examples/capacity_planning
#include <iostream>

#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "core/topologies.h"
#include "npb/npb.h"
#include "util/strings.h"
#include "util/table.h"

using namespace mg;

namespace {

double timeFor(double cpu_scale, double bandwidth_bps) {
  core::topologies::AlphaClusterParams params;
  params.cpu_scale = cpu_scale;
  params.bandwidth_bps = bandwidth_bps;
  core::MicroGridPlatform platform(core::topologies::alphaCluster(params));
  grid::ExecutableRegistry registry;
  npb::ResultSink sink;
  npb::registerNpb(registry, sink);
  core::Launcher launcher(platform, registry);
  launcher.startServices();
  std::vector<grid::AllocationPart> parts;
  for (const auto& h : platform.mapper().hosts()) parts.push_back({h.hostname, 1});
  auto result = launcher.run("npb.mg", "S", parts);
  if (!result.ok) {
    std::cerr << "run failed: " << result.error << "\n";
    std::exit(1);
  }
  return sink.maxSeconds();
}

}  // namespace

int main() {
  std::cout << "What-if study: NPB MG (Class S) on hypothetical hardware\n"
            << "(the paper's 'extrapolate likely performance on systems not\n"
            << "directly available, or those of the future')\n\n";

  const double baseline = timeFor(1.0, 100e6);

  util::Table table({"scenario", "time_s", "speedup"});
  table.row() << "today: 533MHz CPUs, 100Mb net" << baseline << 1.0;
  for (double s : {2.0, 4.0, 8.0}) {
    const double t = timeFor(s, 100e6);
    table.row() << util::format("%.0fx faster CPUs, same net", s) << t << baseline / t;
  }
  const double t_net = timeFor(1.0, 1e9);
  table.row() << "same CPUs, gigabit net" << t_net << baseline / t_net;
  const double t_both = timeFor(8.0, 1e9);
  table.row() << "8x CPUs + gigabit net" << t_both << baseline / t_both;
  table.print(std::cout);

  std::cout << "Reading: CPU scaling alone hits a communication wall; upgrading\n"
               "the network only pays off once the CPUs outrun it.\n";
  return 0;
}
