// mgrun — command-line driver: run a packaged workload on a virtual Grid
// described by a config file, on either platform.
//
//   $ ./examples/mgrun --list-executables
//   $ ./examples/mgrun --config examples/grids/alpha4.ini \
//         --exe npb.mg --args A --parts vm0.ucsd.edu:1,vm1.ucsd.edu:1
//   $ ./examples/mgrun --platform pgrid --exe cactus.wavetoy --args "50 60"
//
// Options:
//   --config FILE      virtual-grid description (default: Alpha cluster preset)
//   --platform P       mgrid (default) or pgrid (reference model)
//   --exe NAME         registered executable (see --list-executables)
//   --args "..."       arguments passed to the job
//   --parts H:N,...    allocation parts (default: one rank per host)
//   --quantum MS       scheduler quantum in milliseconds (default 10)
//   --slowdown N       run the emulation N times slower (default 1)
//   --netmodel M       network model (mgrid only): packet (default, per-hop
//                      store-and-forward), flow (max-min fair fluid flows,
//                      one event per flow state change — orders of magnitude
//                      fewer events on large grids), or hybrid (flows by
//                      default, packet detail where --netmodel-detail says)
//   --netmodel-detail P,P,...  hybrid escalation selectors: host:GLOB (or a
//                      bare hostname glob), port:N, port:LO-HI; repeatable
//   --parallel N       drive the kernel with N worker threads (mgrid only;
//                      the topology is sharded along its latency cut — any N
//                      produces byte-identical metrics/trace/profile output,
//                      N only changes wall-clock speed)
//   --faults FILE      fault schedule ([fault ...] sections; mgrid only).
//                      [fault ...] sections in --config are picked up too.
//   --explore FILE     model-checking mode (mgrid only, sequential): FILE
//                      holds [explore] options and [candidate ...] fault
//                      sections (DESIGN.md §11). Instead of one run, every
//                      fault schedule composable from the candidates is
//                      replayed and checked against the simulator's
//                      invariants; [fault ...] sections from --config /
//                      --faults are injected in every schedule. Prints the
//                      branch log and stats; on a violation, prints the
//                      delta-debugged minimal reproducing fault plan as INI
//                      (replayable via --faults) and exits 3.
//   --explore-budget N stop after N schedules (overrides [explore] budget)
//   --resubmits N      resubmit a failed job up to N times (default: 2 when
//                      faults are present, else 0)
//   --metrics FMT      dump the simulator metrics snapshot after the run
//                      (FMT is table, json, or csv)
//   --timeline FILE    sample time-resolved series during the run (link
//                      utilization, CPU occupancy, queue depths, kernel
//                      rates; DESIGN.md §10) and write them after it — CSV,
//                      or the JSON document form when FILE ends in .json.
//                      Byte-identical across reruns and --parallel counts.
//                      mgrid only.
//   --timeline-interval S  sampling interval in emulation seconds
//                      (default 0.1)
//   --progress[=S]     live heartbeat on stderr every S wall seconds
//                      (default 2): sim time, sim-s/wall-s, events/sec,
//                      pending events — plus a stall watchdog that dumps
//                      per-lane state when the kernel goes quiet. stdout is
//                      byte-identical with --progress on or off.
//   --trace-out FILE   record causal spans and write a Chrome/Perfetto trace
//                      (load FILE at ui.perfetto.dev or chrome://tracing);
//                      with --timeline the sampled series ride along as
//                      counter tracks
//   --profile FMT      per-(host, layer) virtual-time profile after the run
//                      (FMT is table or json; implies span recording)
//   --verbose          print per-rank results
//
// Workload mode (the grid economy; see examples/workloads/*.ini):
//   --workload FILE    run an open-loop synthetic workload through the
//                      broker/batch-queue economy instead of one GRAM job.
//                      FILE holds [workload] and [grid] sections; the grid
//                      is generated, the run uses the flow network model,
//                      and the report is byte-identical across reruns.
//   --broker P         placement policy: cost | deadline (default) | locality
//   --jobs N           override the [workload] job count
//
// A bare (non-flag) argument is taken as the config file, so
// `mgrun --trace-out=ep.json examples/grids/alpha4.ini` works.
#include <fstream>
#include <iostream>
#include <memory>

#include "apps/wavetoy.h"
#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "core/reference_platform.h"
#include "core/topologies.h"
#include "econ/economy.h"
#include "fault/fault_injector.h"
#include "mc/explorer.h"
#include "mc/scenario.h"
#include "npb/npb.h"
#include "obs/progress.h"
#include "obs/sampler.h"
#include "obs/sim_profiler.h"
#include "obs/trace_export.h"
#include "sim/telemetry.h"
#include "util/strings.h"

using namespace mg;

namespace {

struct Options {
  std::string config_path;
  std::string platform = "mgrid";
  std::string exe = "npb.mg";
  std::string args = "S";
  std::string parts;
  double quantum_ms = 10.0;
  double slowdown = 1.0;
  std::string netmodel;  // "", "packet", "flow", or "hybrid"
  std::vector<std::string> netmodel_detail;
  int parallel = 0;  // 0 = classic sequential kernel
  std::string faults_path;
  std::string explore_path;  // model-checking mode when non-empty
  int explore_budget = 0;    // 0 = use the [explore] section's budget
  int resubmits = -1;   // -1: default (2 with faults, 0 without)
  std::string metrics;    // "", "table", "json", or "csv"
  std::string trace_out;  // Chrome trace_event JSON output path
  std::string profile;    // "", "table", or "json"
  std::string timeline_out;          // time-series output path ("" = off)
  double timeline_interval_s = 0.1;  // sampling interval (emulation seconds)
  double progress_s = 0;             // heartbeat interval; 0 = no monitor
  bool verbose = false;
  bool list = false;
  std::string workload_path;  // economy mode when non-empty
  std::string broker;         // "", "cost", "deadline", or "locality"
  std::int64_t jobs = 0;      // 0 = use the [workload] section's count
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw mg::UsageError("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--config") {
      opt.config_path = next();
    } else if (flag == "--platform") {
      opt.platform = next();
    } else if (flag == "--exe") {
      opt.exe = next();
    } else if (flag == "--args") {
      opt.args = next();
    } else if (flag == "--parts") {
      opt.parts = next();
    } else if (flag == "--quantum") {
      opt.quantum_ms = std::stod(next());
    } else if (flag == "--slowdown") {
      opt.slowdown = std::stod(next());
    } else if (flag == "--netmodel" || flag.rfind("--netmodel=", 0) == 0) {
      opt.netmodel = (flag == "--netmodel") ? next() : flag.substr(11);
    } else if (flag == "--netmodel-detail" || flag.rfind("--netmodel-detail=", 0) == 0) {
      const std::string val = (flag == "--netmodel-detail") ? next() : flag.substr(18);
      for (const auto& p : util::splitTrim(val, ',')) opt.netmodel_detail.push_back(p);
    } else if (flag == "--parallel" || flag.rfind("--parallel=", 0) == 0) {
      opt.parallel = std::stoi((flag == "--parallel") ? next() : flag.substr(11));
      if (opt.parallel < 1) throw mg::UsageError("--parallel wants a worker count >= 1");
    } else if (flag == "--faults" || flag.rfind("--faults=", 0) == 0) {
      opt.faults_path = (flag == "--faults") ? next() : flag.substr(9);
    } else if (flag == "--explore" || flag.rfind("--explore=", 0) == 0) {
      opt.explore_path = (flag == "--explore") ? next() : flag.substr(10);
    } else if (flag == "--explore-budget" || flag.rfind("--explore-budget=", 0) == 0) {
      opt.explore_budget = std::stoi((flag == "--explore-budget") ? next() : flag.substr(17));
      if (opt.explore_budget < 1) throw mg::UsageError("--explore-budget wants a count >= 1");
    } else if (flag == "--resubmits") {
      opt.resubmits = std::stoi(next());
    } else if (flag == "--metrics" || flag.rfind("--metrics=", 0) == 0) {
      opt.metrics = (flag == "--metrics") ? next() : flag.substr(10);
      if (opt.metrics != "table" && opt.metrics != "json" && opt.metrics != "csv") {
        throw mg::UsageError("--metrics must be table, json, or csv");
      }
    } else if (flag == "--trace-out" || flag.rfind("--trace-out=", 0) == 0) {
      opt.trace_out = (flag == "--trace-out") ? next() : flag.substr(12);
    } else if (flag == "--timeline" || flag.rfind("--timeline=", 0) == 0) {
      opt.timeline_out = (flag == "--timeline") ? next() : flag.substr(11);
    } else if (flag == "--timeline-interval" || flag.rfind("--timeline-interval=", 0) == 0) {
      opt.timeline_interval_s =
          std::stod((flag == "--timeline-interval") ? next() : flag.substr(20));
      if (opt.timeline_interval_s <= 0) {
        throw mg::UsageError("--timeline-interval wants seconds > 0");
      }
    } else if (flag == "--progress") {
      opt.progress_s = 2.0;
    } else if (flag.rfind("--progress=", 0) == 0) {
      opt.progress_s = std::stod(flag.substr(11));
      if (opt.progress_s <= 0) throw mg::UsageError("--progress wants seconds > 0");
    } else if (flag == "--profile" || flag.rfind("--profile=", 0) == 0) {
      opt.profile = (flag == "--profile") ? next() : flag.substr(10);
      if (opt.profile != "table" && opt.profile != "json") {
        throw mg::UsageError("--profile must be table or json");
      }
    } else if (flag == "--workload" || flag.rfind("--workload=", 0) == 0) {
      opt.workload_path = (flag == "--workload") ? next() : flag.substr(11);
    } else if (flag == "--broker" || flag.rfind("--broker=", 0) == 0) {
      opt.broker = (flag == "--broker") ? next() : flag.substr(9);
    } else if (flag == "--jobs" || flag.rfind("--jobs=", 0) == 0) {
      opt.jobs = std::stoll((flag == "--jobs") ? next() : flag.substr(7));
      if (opt.jobs < 1) throw mg::UsageError("--jobs wants a count >= 1");
    } else if (flag == "--verbose") {
      opt.verbose = true;
    } else if (flag == "--list-executables") {
      opt.list = true;
    } else if (flag.rfind("--", 0) != 0) {
      opt.config_path = flag;
    } else {
      throw mg::UsageError("unknown flag " + flag + " (see the header of mgrun.cpp)");
    }
  }
  return opt;
}

void printMetrics(obs::MetricsRegistry& metrics, const std::string& fmt) {
  if (fmt == "json") {
    std::cout << metrics.snapshotJson() << "\n";
  } else if (fmt == "csv") {
    std::cout << metrics.snapshotCsv();
  } else if (fmt == "table") {
    metrics.snapshotTable().print(std::cout, "metrics");
  }
}

/// Build a telemetry sampler over the simulator's recorder, with the bucket
/// width matched to the interval so early buckets hold one sample each. The
/// caller registers probes, then calls start().
std::unique_ptr<obs::TelemetrySampler> makeSampler(sim::Simulator& sim, double interval_s) {
  sim.timeline().setBaseWidth(sim::fromSeconds(interval_s));
  obs::TelemetrySampler::Options sopts;
  sopts.interval_ns = sim::fromSeconds(interval_s);
  return std::make_unique<obs::TelemetrySampler>(sim.timeline(), sim::telemetryHost(sim), sopts);
}

void writeTimeline(const obs::TimeSeriesRecorder& timeline, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw mg::UsageError("cannot open --timeline file " + path);
  const bool json = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  out << (json ? timeline.json() : timeline.csv());
  std::cout << "wrote timeline (" << timeline.seriesCount() << " series, "
            << timeline.sampleCount() << " samples) to " << path << "\n";
}

std::vector<grid::AllocationPart> parseParts(const std::string& spec,
                                             const core::VirtualGridConfig& cfg) {
  std::vector<grid::AllocationPart> parts;
  if (spec.empty()) {
    for (const auto& h : cfg.mapper().hosts()) parts.push_back({h.hostname, 1});
  } else {
    for (const auto& item : util::splitTrim(spec, ',')) {
      const auto colon = item.rfind(':');
      if (colon == std::string::npos) throw mg::UsageError("--parts wants host:count");
      parts.push_back({item.substr(0, colon), std::stoi(item.substr(colon + 1))});
    }
  }
  return parts;
}

std::unique_ptr<obs::ProgressMonitor> startProgress(sim::Simulator& sim, double interval_s,
                                                    std::function<double()> fraction) {
  sim.pulse().enable(true);
  obs::ProgressOptions popts;
  popts.interval_s = interval_s;
  popts.events = &sim.metrics().counter("sim.kernel.events_executed");
  popts.fraction = std::move(fraction);
  auto monitor = std::make_unique<obs::ProgressMonitor>(sim.pulse(), popts);
  monitor->start();
  return monitor;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parseArgs(argc, argv);

    grid::ExecutableRegistry registry;
    npb::ResultSink npb_sink;
    apps::WaveToySink wavetoy_sink;
    npb::registerNpb(registry, npb_sink);
    apps::registerWaveToy(registry, wavetoy_sink);
    if (opt.list) {
      std::cout << "registered executables:\n";
      for (const auto& name : registry.names()) std::cout << "  " << name << "\n";
      return 0;
    }

    if (!opt.workload_path.empty()) {
      // Economy mode: generate the grid, synthesize the workload, run the
      // broker/batch-queue pipeline event-driven at simulation rate 1.
      const util::Config raw = util::Config::parseFile(opt.workload_path);
      econ::EconOptions eopts;
      eopts.workload = econ::WorkloadSpec::fromConfig(raw);
      if (opt.jobs > 0) eopts.workload.jobs = opt.jobs;
      if (!opt.broker.empty()) eopts.policy = econ::parseBrokerPolicy(opt.broker);
      const econ::EconGrid grid = econ::makeEconGrid(econ::EconGridSpec::fromConfig(raw));

      core::MicroGridOptions mopts;
      mopts.netmodel = net::NetModelKind::Flow;
      mopts.rate_override = 1.0;  // kernel time == virtual time
      mopts.parallel_workers = opt.parallel;
      core::MicroGridPlatform platform(grid.grid, mopts);
      std::cout << "grid economy: " << grid.clusters.size() << " cluster(s), "
                << eopts.workload.jobs << " job(s), policy "
                << econ::brokerPolicyName(eopts.policy) << ", seed " << eopts.workload.seed
                << "\n";

      econ::GridEconomy economy(platform, grid, eopts);
      economy.arm();

      std::unique_ptr<obs::TelemetrySampler> sampler;
      if (!opt.timeline_out.empty()) {
        sampler = makeSampler(platform.simulator(), opt.timeline_interval_s);
        platform.registerTelemetry(*sampler);
        economy.registerTelemetry(*sampler);
        sampler->start();
      }
      std::unique_ptr<obs::ProgressMonitor> monitor;
      if (opt.progress_s > 0) {
        const obs::Counter& completed =
            platform.simulator().metrics().counter("econ.jobs.completed");
        const double total = static_cast<double>(eopts.workload.jobs);
        monitor = startProgress(platform.simulator(), opt.progress_s,
                                [&completed, total]() -> double {
                                  return total > 0 ? static_cast<double>(completed.value()) / total
                                                   : -1.0;
                                });
      }

      platform.run();
      if (monitor) monitor->stop();
      std::cout << economy.report().render();
      printMetrics(platform.simulator().metrics(), opt.metrics);
      if (sampler) {
        sampler->finish();
        writeTimeline(platform.simulator().timeline(), opt.timeline_out);
      }
      return 0;
    }

    fault::FaultPlan plan;
    core::VirtualGridConfig cfg = core::topologies::alphaCluster();
    if (!opt.config_path.empty()) {
      const util::Config raw = util::Config::parseFile(opt.config_path);
      cfg = core::VirtualGridConfig::fromConfig(raw);
      plan.merge(fault::FaultPlan::fromConfig(raw));
    }
    if (!opt.faults_path.empty()) plan.merge(fault::FaultPlan::fromFile(opt.faults_path));

    if (!opt.explore_path.empty()) {
      // Model-checking mode: enumerate and replay every fault schedule
      // composable from the [candidate ...] menu, invariants checked per
      // branch. Each schedule rebuilds the platform from scratch, so this
      // runs the sequential kernel regardless of --parallel.
      if (opt.platform != "mgrid") throw mg::UsageError("--explore needs --platform mgrid");
      if (opt.parallel > 0) {
        throw mg::UsageError("--explore replays the sequential kernel (drop --parallel)");
      }
      auto spec = mc::Explorer::parseSpec(util::Config::parseFile(opt.explore_path));
      if (opt.explore_budget > 0) spec.options.budget = opt.explore_budget;
      spec.options.base = plan;  // fixed faults ride along in every schedule

      mc::LauncherScenarioSpec lspec;
      lspec.grid = cfg;
      lspec.config_name = "mgrun";
      lspec.executable = opt.exe;
      lspec.arguments = opt.args;
      lspec.parts = parseParts(opt.parts, cfg);
      lspec.max_resubmits = opt.resubmits >= 0 ? opt.resubmits : 2;
      lspec.platform.quantum = sim::fromSeconds(opt.quantum_ms * 1e-3);
      if (!opt.netmodel.empty()) {
        lspec.platform.netmodel = net::parseNetModelKind(opt.netmodel);
      }
      lspec.registrar = [&npb_sink, &wavetoy_sink](grid::ExecutableRegistry& r) {
        npb::registerNpb(r, npb_sink);
        apps::registerWaveToy(r, wavetoy_sink);
      };

      std::cout << "exploring " << spec.candidates.size() << " candidate fault(s) for "
                << opt.exe << " '" << opt.args << "'";
      if (spec.options.budget > 0) std::cout << ", budget " << spec.options.budget;
      std::cout << "\n";
      mc::Explorer explorer(mc::launcherScenario(std::move(lspec)), spec.candidates,
                            spec.options);
      const mc::ExploreResult res = explorer.explore();
      for (const auto& line : res.branch_log) std::cout << line << "\n";
      std::cout << res.renderStats();
      if (res.violation_found) {
        std::cout << "violation: " << res.first_violation << "\n"
                  << "minimal reproducing fault plan (replay with --faults):\n"
                  << res.minimal_plan.toIni();
        return 3;
      }
      std::cout << "no invariant violations found\n";
      return 0;
    }

    std::unique_ptr<core::Platform> platform;
    core::MicroGridPlatform* mgrid = nullptr;
    if (opt.platform == "mgrid") {
      core::MicroGridOptions mopts;
      mopts.quantum = sim::fromSeconds(opt.quantum_ms * 1e-3);
      mopts.slowdown = opt.slowdown;
      mopts.parallel_workers = opt.parallel;
      if (!opt.netmodel.empty()) mopts.netmodel = net::parseNetModelKind(opt.netmodel);
      if (!opt.netmodel_detail.empty() && mopts.netmodel != net::NetModelKind::Hybrid) {
        throw mg::UsageError("--netmodel-detail needs --netmodel hybrid");
      }
      mopts.netmodel_detail = opt.netmodel_detail;
      auto p = std::make_unique<core::MicroGridPlatform>(cfg, mopts);
      std::cout << "MicroGrid platform, simulation rate " << p->rate() << ", quantum "
                << opt.quantum_ms << " ms\n";
      if (mopts.netmodel != net::NetModelKind::Packet) {
        std::cout << "network model: " << net::netModelKindName(mopts.netmodel);
        if (!mopts.netmodel_detail.empty()) {
          std::cout << ", detail: " << util::join(mopts.netmodel_detail, ",");
        }
        std::cout << "\n";
      }
      if (opt.parallel > 0) {
        const int lanes = p->simulator().laneCount();
        std::cout << "parallel: " << opt.parallel << " worker(s), " << (lanes - 1)
                  << " wire partition(s)\n";
      }
      mgrid = p.get();
      platform = std::move(p);
    } else if (opt.platform == "pgrid") {
      if (opt.parallel > 0) throw mg::UsageError("--parallel needs --platform mgrid");
      if (!opt.netmodel.empty()) {
        throw mg::UsageError("--netmodel needs --platform mgrid (pgrid is always flow-level)");
      }
      platform = std::make_unique<core::ReferencePlatform>(cfg);
      std::cout << "reference (physical grid) platform\n";
    } else {
      throw mg::UsageError("--platform must be mgrid or pgrid");
    }

    std::vector<grid::AllocationPart> parts = parseParts(opt.parts, cfg);

    if (!opt.trace_out.empty() || !opt.profile.empty()) {
      platform->simulator().spans().setEnabled(true);
    }
    if (!opt.timeline_out.empty() && mgrid == nullptr) {
      throw mg::UsageError("--timeline needs --platform mgrid");
    }

    core::Launcher launcher(*platform, registry);
    launcher.startServices(&cfg, "mgrun");

    std::unique_ptr<fault::FaultInjector> injector;
    if (!plan.empty()) {
      if (mgrid == nullptr) {
        throw mg::UsageError("fault injection needs --platform mgrid");
      }
      injector = std::make_unique<fault::FaultInjector>(*mgrid, plan);
      injector->onHostCrash([&launcher](const std::string& h) { launcher.markHostDown(h); });
      injector->onHostRestart([&launcher](const std::string& h) { launcher.markHostUp(h); });
      injector->arm();
      std::cout << "fault plan armed: " << plan.size() << " event(s)\n";
    }
    core::LaunchOptions lopts;
    lopts.max_resubmits = opt.resubmits >= 0 ? opt.resubmits : (plan.empty() ? 0 : 2);
    launcher.setLaunchOptions(lopts);

    std::unique_ptr<obs::TelemetrySampler> sampler;
    if (!opt.timeline_out.empty()) {
      sampler = makeSampler(mgrid->simulator(), opt.timeline_interval_s);
      mgrid->registerTelemetry(*sampler);
      sampler->start();
    }
    std::unique_ptr<obs::ProgressMonitor> monitor;
    if (opt.progress_s > 0) {
      monitor = startProgress(platform->simulator(), opt.progress_s, {});
    }

    std::cout << "submitting " << opt.exe << " '" << opt.args << "' across " << parts.size()
              << " part(s)...\n";
    const auto result = launcher.run(opt.exe, opt.args, parts);
    if (monitor) monitor->stop();
    if (sampler) sampler->finish();
    if (injector) {
      std::cout << injector->renderReport();
      if (result.resubmits > 0) {
        std::cout << "job resubmitted " << result.resubmits << " time(s); first error: "
                  << result.attempt_errors.front() << "\n";
      }
    }

    printMetrics(platform->simulator().metrics(), opt.metrics);

    if (!opt.trace_out.empty()) {
      std::ofstream out(opt.trace_out, std::ios::binary | std::ios::trunc);
      if (!out) throw mg::UsageError("cannot open --trace-out file " + opt.trace_out);
      // Sampled series ride along as Perfetto counter tracks.
      out << obs::chromeTraceJson(platform->simulator().spans(),
                                  sampler ? &platform->simulator().timeline() : nullptr);
      std::cout << "wrote " << platform->simulator().spans().size() << " span(s) to "
                << opt.trace_out << "\n";
    }
    if (sampler) writeTimeline(platform->simulator().timeline(), opt.timeline_out);
    if (!opt.profile.empty()) {
      const obs::SimProfiler prof(platform->simulator().spans());
      if (opt.profile == "json") {
        std::cout << prof.json() << "\n";
      } else {
        prof.table().print(std::cout, "profile");
      }
    }

    if (!result.ok) {
      std::cerr << "job failed: " << result.error << "\n";
      return 1;
    }
    std::cout << "job completed in " << result.virtual_seconds << " virtual seconds\n";
    for (const auto& r : npb_sink.results()) {
      if (opt.verbose) {
        std::cout << "  " << r.benchmark << "." << r.npb_class << " rank " << r.rank << ": "
                  << r.seconds << " s, " << r.bytes_sent << " bytes sent, "
                  << (r.verified ? "verified" : "NOT VERIFIED") << "\n";
      }
    }
    if (!npb_sink.results().empty()) {
      std::cout << "benchmark time (max over ranks): " << npb_sink.maxSeconds() << " s, "
                << (npb_sink.allVerified() ? "all ranks verified" : "VERIFICATION FAILED")
                << "\n";
      return npb_sink.allVerified() ? 0 : 1;
    }
    if (!wavetoy_sink.results().empty()) {
      std::cout << "wavetoy time (max over ranks): " << wavetoy_sink.maxSeconds() << " s, "
                << (wavetoy_sink.allVerified() ? "verified" : "VERIFICATION FAILED") << "\n";
      return wavetoy_sink.allVerified() ? 0 : 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "mgrun: " << e.what() << "\n";
    return 2;
  }
}
