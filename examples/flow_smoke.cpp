// flow_smoke — scalability and determinism smoke for the fluid network
// model (CI: the flow-smoke job).
//
// Generates a two-level tree grid (hosts under edge switches under one
// core router), runs a deterministic socket workload across it on a
// MicroGridPlatform with the selected --netmodel, and prints the metrics
// snapshot. Two runs with the same arguments must produce byte-identical
// output (the fluid model keeps the simulator's determinism guarantee), and
// at --compare-packet the flow model must cost at least 10x fewer kernel
// events than packet mode on the same workload — the scaling headroom the
// paper's "NSE does not scale up to large simulations" remark asks for.
//
//   $ ./examples/flow_smoke --hosts 10000
//   $ ./examples/flow_smoke --hosts 1000 --compare-packet
//
// Options:
//   --hosts N          virtual hosts in the generated tree (default 10000)
//   --pairs K          concurrent sender/receiver pairs (default 64)
//   --messages M       messages per pair (default 8)
//   --bytes B          payload bytes per message (default 262144)
//   --netmodel MODEL   packet | flow (default) | hybrid
//   --compare-packet   rerun the workload in packet mode and require a
//                      >= 10x kernel-event advantage for the flow model
//   --full-recompute   disable incremental sharing: every recompute visits
//                      every active flow (the correctness oracle; results
//                      are bit-identical, only the visit counters differ)
//   --timeline FILE    sample the platform's time-resolved series during the
//                      primary run and write them as CSV (DESIGN.md §10);
//                      feeds the EXPERIMENTS.md link-utilization table
//   --timeline-interval S  sampling interval in sim seconds (default 0.1)
//   --quiet            suppress the metrics snapshot (timing summary only)
//
// Wall-clock seconds go to stderr (stdout stays byte-stable for the CI
// determinism cmp); the soak job reads them for the flow_smoke_100k timing.
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/microgrid_platform.h"
#include "obs/sampler.h"
#include "sim/telemetry.h"
#include "util/error.h"
#include "util/strings.h"

using namespace mg;

namespace {

struct Options {
  int hosts = 10000;
  int pairs = 64;
  int messages = 8;
  std::int64_t bytes = 262144;
  std::string netmodel = "flow";
  bool compare_packet = false;
  bool full_recompute = false;
  std::string timeline;              // CSV output path ("" = off)
  double timeline_interval_s = 0.1;  // sampling interval (sim seconds)
  bool quiet = false;
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) throw mg::UsageError("missing value for " + flag);
      return argv[++i];
    };
    if (flag == "--hosts") {
      opt.hosts = std::stoi(next());
    } else if (flag == "--pairs") {
      opt.pairs = std::stoi(next());
    } else if (flag == "--messages") {
      opt.messages = std::stoi(next());
    } else if (flag == "--bytes") {
      opt.bytes = std::stoll(next());
    } else if (flag == "--netmodel") {
      opt.netmodel = next();
    } else if (flag == "--compare-packet") {
      opt.compare_packet = true;
    } else if (flag == "--full-recompute") {
      opt.full_recompute = true;
    } else if (flag == "--timeline") {
      opt.timeline = next();
    } else if (flag == "--timeline-interval") {
      opt.timeline_interval_s = std::stod(next());
      if (opt.timeline_interval_s <= 0) {
        throw mg::UsageError("--timeline-interval wants seconds > 0");
      }
    } else if (flag == "--quiet") {
      opt.quiet = true;
    } else {
      throw mg::UsageError("unknown flag " + flag + " (see the header of flow_smoke.cpp)");
    }
  }
  if (opt.hosts < 4) throw mg::UsageError("--hosts wants at least 4");
  if (opt.pairs < 1 || opt.pairs > opt.hosts / 2) {
    throw mg::UsageError("--pairs must be in [1, hosts/2]");
  }
  return opt;
}

/// Hosts under 64-port edge switches, switches under one core router —
/// cross-switch traffic takes 4 hops, so the packet model pays per segment
/// per hop while the fluid model pays per flow.
core::VirtualGridConfig makeTree(int hosts) {
  constexpr int kFanout = 64;
  constexpr double kHostOps = 500e6;
  core::VirtualGridConfig cfg;
  cfg.addRouter("core");
  const int switches = (hosts + kFanout - 1) / kFanout;
  for (int s = 0; s < switches; ++s) {
    const std::string sw = "sw" + std::to_string(s);
    cfg.addRouter(sw);
    cfg.addLink("up" + std::to_string(s), sw, "core", 1e9, 200e-6);
    cfg.addPhysical("pm" + std::to_string(s), kFanout * kHostOps);
  }
  for (int h = 0; h < hosts; ++h) {
    const std::string name = "h" + std::to_string(h);
    const std::string ip =
        "10." + std::to_string(h / 65536) + "." + std::to_string((h / 256) % 256) + "." +
        std::to_string(h % 256);
    cfg.addHost(name, ip, kHostOps, 1 << 28, "pm" + std::to_string(h / kFanout));
    cfg.addLink("eth" + std::to_string(h), name, "sw" + std::to_string(h / kFanout), 100e6,
                50e-6);
  }
  return cfg;
}

struct RunResult {
  double virtual_seconds = 0;
  std::uint64_t events = 0;
  std::int64_t bytes_received = 0;
  std::int64_t share_recomputes = 0;
  std::int64_t flow_visits = 0;
  double wall_seconds = 0;
  std::string metrics_json;
};

RunResult runWorkload(const core::VirtualGridConfig& cfg, const Options& opt,
                      net::NetModelKind kind, const std::string& timeline_path = {}) {
  core::MicroGridOptions mopts;
  mopts.netmodel = kind;
  mopts.flow.incremental = !opt.full_recompute;
  if (kind == net::NetModelKind::Hybrid) {
    // Escalate the first half of the pair ports so both paths carry traffic.
    mopts.netmodel_detail = {"port:7000-" + std::to_string(7000 + std::max(0, opt.pairs / 2 - 1))};
  }
  core::MicroGridPlatform platform(cfg, mopts);

  // Pair p streams from a host on switch p to a host half the grid away:
  // every flow crosses the core, so link sharing actually happens.
  auto total = std::make_shared<std::int64_t>(0);
  const int stride = opt.hosts / opt.pairs;
  for (int p = 0; p < opt.pairs; ++p) {
    const std::string src = "h" + std::to_string(p * stride);
    const std::string dst = "h" + std::to_string((p * stride + opt.hosts / 2) % opt.hosts);
    const auto port = static_cast<std::uint16_t>(7000 + p);
    platform.spawnOn(dst, "rx." + std::to_string(p), [port, total](vos::HostContext& ctx) {
      auto listener = ctx.listen(port);
      auto sock = listener->accept();
      std::vector<std::uint8_t> buf(1 << 16);
      for (;;) {
        const std::size_t n = sock->recv(buf.data(), buf.size());
        if (n == 0) break;
        *total += static_cast<std::int64_t>(n);
      }
      sock->close();
    });
    platform.spawnOn(src, "tx." + std::to_string(p),
                     [port, dst, &opt](vos::HostContext& ctx) {
                       // Receivers bind at t=0 too; one virtual millisecond
                       // keeps connect() past every listen().
                       ctx.sleep(1e-3);
                       auto sock = ctx.connect(dst, port);
                       std::vector<std::uint8_t> msg(static_cast<std::size_t>(opt.bytes));
                       for (std::size_t i = 0; i < msg.size(); ++i) {
                         msg[i] = static_cast<std::uint8_t>(i * 131 % 251);
                       }
                       for (int m = 0; m < opt.messages; ++m) {
                         sock->send(msg.data(), msg.size());
                       }
                       sock->close();
                     });
  }

  std::unique_ptr<obs::TelemetrySampler> sampler;
  if (!timeline_path.empty()) {
    sim::Simulator& sim = platform.simulator();
    sim.timeline().setBaseWidth(sim::fromSeconds(opt.timeline_interval_s));
    obs::TelemetrySampler::Options sopts;
    sopts.interval_ns = sim::fromSeconds(opt.timeline_interval_s);
    sampler =
        std::make_unique<obs::TelemetrySampler>(sim.timeline(), sim::telemetryHost(sim), sopts);
    platform.registerTelemetry(*sampler);
    sampler->start();
  }

  RunResult r;
  const auto wall_begin = std::chrono::steady_clock::now();
  r.virtual_seconds = platform.run();
  r.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_begin).count();

  if (sampler) {
    sampler->finish();
    const obs::TimeSeriesRecorder& tl = platform.simulator().timeline();
    std::ofstream out(timeline_path, std::ios::binary | std::ios::trunc);
    if (!out) throw mg::UsageError("cannot open --timeline file " + timeline_path);
    out << tl.csv();
    std::cout << "wrote timeline (" << tl.seriesCount() << " series, " << tl.sampleCount()
              << " samples) to " << timeline_path << "\n";
  }
  r.events = platform.simulator().eventsExecuted();
  r.bytes_received = *total;
  r.share_recomputes = platform.simulator().metrics().counter("net.flow.share_recomputes").value();
  r.flow_visits = platform.simulator().metrics().counter("net.flow.recompute_flow_visits").value();
  r.metrics_json = platform.simulator().metrics().snapshotJson();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opt = parseArgs(argc, argv);
    const net::NetModelKind kind = net::parseNetModelKind(opt.netmodel);
    const core::VirtualGridConfig cfg = makeTree(opt.hosts);

    const std::int64_t expected =
        static_cast<std::int64_t>(opt.pairs) * opt.messages * opt.bytes;
    std::cout << "flow_smoke: hosts=" << opt.hosts << " netmodel="
              << net::netModelKindName(kind) << " pairs=" << opt.pairs << " messages="
              << opt.messages << " bytes=" << opt.bytes << "\n";

    const RunResult run = runWorkload(cfg, opt, kind, opt.timeline);
    std::cout << "transferred " << run.bytes_received << " byte(s) in " << run.virtual_seconds
              << " virtual seconds, " << run.events << " kernel event(s)\n";
    if (run.bytes_received != expected) {
      std::cerr << "FAIL: expected " << expected << " byte(s)\n";
      return 1;
    }
    if (run.share_recomputes > 0) {
      std::cout << "recompute scope: " << run.flow_visits << " flow visit(s) over "
                << run.share_recomputes << " recompute(s) ("
                << (opt.full_recompute ? "full" : "incremental") << ")\n";
    }
    // Wall clock is nondeterministic: stderr only, so stdout stays cmp-able.
    std::cerr << "wall_seconds=" << run.wall_seconds << "\n";
    if (!opt.quiet) std::cout << run.metrics_json << "\n";

    if (opt.compare_packet) {
      const RunResult pkt = runWorkload(cfg, opt, net::NetModelKind::Packet);
      if (pkt.bytes_received != expected) {
        std::cerr << "FAIL: packet run lost data\n";
        return 1;
      }
      const double ratio =
          static_cast<double>(pkt.events) / static_cast<double>(run.events);
      std::cout << "packet mode: " << pkt.events << " kernel event(s) in "
                << pkt.virtual_seconds << " virtual seconds\n"
                << "event ratio (packet/" << net::netModelKindName(kind) << "): " << ratio
                << "\n";
      if (ratio < 10.0) {
        std::cerr << "FAIL: expected >= 10x fewer events in the fluid model\n";
        return 1;
      }
      std::cout << "event-cost gate (>= 10x): PASS\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "flow_smoke: " << e.what() << "\n";
    return 2;
  }
}
