# Empty dependencies file for mgrun.
# This may be replaced when dependencies are built.
