file(REMOVE_RECURSE
  "CMakeFiles/mgrun.dir/mgrun.cpp.o"
  "CMakeFiles/mgrun.dir/mgrun.cpp.o.d"
  "mgrun"
  "mgrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mgrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
