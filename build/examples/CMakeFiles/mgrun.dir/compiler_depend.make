# Empty compiler generated dependencies file for mgrun.
# This may be replaced when dependencies are built.
