file(REMOVE_RECURSE
  "CMakeFiles/cactus_wavetoy.dir/cactus_wavetoy.cpp.o"
  "CMakeFiles/cactus_wavetoy.dir/cactus_wavetoy.cpp.o.d"
  "cactus_wavetoy"
  "cactus_wavetoy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cactus_wavetoy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
