# Empty compiler generated dependencies file for cactus_wavetoy.
# This may be replaced when dependencies are built.
