
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/capacity_planning.cpp" "examples/CMakeFiles/capacity_planning.dir/capacity_planning.cpp.o" "gcc" "examples/CMakeFiles/capacity_planning.dir/capacity_planning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/npb/CMakeFiles/mg_npb.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/mg_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/autopilot/CMakeFiles/mg_autopilot.dir/DependInfo.cmake"
  "/root/repo/build/src/vmpi/CMakeFiles/mg_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/mg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/gis/CMakeFiles/mg_gis.dir/DependInfo.cmake"
  "/root/repo/build/src/vos/CMakeFiles/mg_vos.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
