file(REMOVE_RECURSE
  "CMakeFiles/wide_area_npb.dir/wide_area_npb.cpp.o"
  "CMakeFiles/wide_area_npb.dir/wide_area_npb.cpp.o.d"
  "wide_area_npb"
  "wide_area_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_area_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
