# Empty dependencies file for wide_area_npb.
# This may be replaced when dependencies are built.
