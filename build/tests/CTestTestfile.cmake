# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/vos_test[1]_include.cmake")
include("/root/repo/build/tests/gis_test[1]_include.cmake")
include("/root/repo/build/tests/vmpi_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/npb_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
