# Empty compiler generated dependencies file for vmpi_test.
# This may be replaced when dependencies are built.
