# Empty dependencies file for gis_test.
# This may be replaced when dependencies are built.
