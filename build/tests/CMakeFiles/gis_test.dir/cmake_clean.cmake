file(REMOVE_RECURSE
  "CMakeFiles/gis_test.dir/gis_test.cpp.o"
  "CMakeFiles/gis_test.dir/gis_test.cpp.o.d"
  "gis_test"
  "gis_test.pdb"
  "gis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
