file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_cactus.dir/bench/bench_fig16_cactus.cpp.o"
  "CMakeFiles/bench_fig16_cactus.dir/bench/bench_fig16_cactus.cpp.o.d"
  "bench/bench_fig16_cactus"
  "bench/bench_fig16_cactus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_cactus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
