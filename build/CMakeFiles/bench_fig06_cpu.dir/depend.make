# Empty dependencies file for bench_fig06_cpu.
# This may be replaced when dependencies are built.
