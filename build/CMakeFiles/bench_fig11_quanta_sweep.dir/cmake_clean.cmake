file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_quanta_sweep.dir/bench/bench_fig11_quanta_sweep.cpp.o"
  "CMakeFiles/bench_fig11_quanta_sweep.dir/bench/bench_fig11_quanta_sweep.cpp.o.d"
  "bench/bench_fig11_quanta_sweep"
  "bench/bench_fig11_quanta_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_quanta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
