file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_npb.dir/bench/bench_fig10_npb.cpp.o"
  "CMakeFiles/bench_fig10_npb.dir/bench/bench_fig10_npb.cpp.o.d"
  "bench/bench_fig10_npb"
  "bench/bench_fig10_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
