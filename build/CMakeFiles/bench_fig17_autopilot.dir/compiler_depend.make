# Empty compiler generated dependencies file for bench_fig17_autopilot.
# This may be replaced when dependencies are built.
