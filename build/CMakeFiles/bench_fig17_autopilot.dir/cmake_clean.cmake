file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_autopilot.dir/bench/bench_fig17_autopilot.cpp.o"
  "CMakeFiles/bench_fig17_autopilot.dir/bench/bench_fig17_autopilot.cpp.o.d"
  "bench/bench_fig17_autopilot"
  "bench/bench_fig17_autopilot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_autopilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
