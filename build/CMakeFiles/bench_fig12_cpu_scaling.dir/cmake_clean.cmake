file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_cpu_scaling.dir/bench/bench_fig12_cpu_scaling.cpp.o"
  "CMakeFiles/bench_fig12_cpu_scaling.dir/bench/bench_fig12_cpu_scaling.cpp.o.d"
  "bench/bench_fig12_cpu_scaling"
  "bench/bench_fig12_cpu_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cpu_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
