# Empty dependencies file for bench_fig14_vbns.
# This may be replaced when dependencies are built.
