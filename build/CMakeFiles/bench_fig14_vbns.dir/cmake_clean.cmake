file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_vbns.dir/bench/bench_fig14_vbns.cpp.o"
  "CMakeFiles/bench_fig14_vbns.dir/bench/bench_fig14_vbns.cpp.o.d"
  "bench/bench_fig14_vbns"
  "bench/bench_fig14_vbns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_vbns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
