file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_netmodel.dir/bench/bench_ablation_netmodel.cpp.o"
  "CMakeFiles/bench_ablation_netmodel.dir/bench/bench_ablation_netmodel.cpp.o.d"
  "bench/bench_ablation_netmodel"
  "bench/bench_ablation_netmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_netmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
