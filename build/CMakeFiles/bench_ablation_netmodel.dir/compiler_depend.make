# Empty compiler generated dependencies file for bench_ablation_netmodel.
# This may be replaced when dependencies are built.
