# Empty dependencies file for bench_fig05_memory.
# This may be replaced when dependencies are built.
