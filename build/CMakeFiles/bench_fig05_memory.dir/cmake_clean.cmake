file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_memory.dir/bench/bench_fig05_memory.cpp.o"
  "CMakeFiles/bench_fig05_memory.dir/bench/bench_fig05_memory.cpp.o.d"
  "bench/bench_fig05_memory"
  "bench/bench_fig05_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
