file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_quanta.dir/bench/bench_fig07_quanta.cpp.o"
  "CMakeFiles/bench_fig07_quanta.dir/bench/bench_fig07_quanta.cpp.o.d"
  "bench/bench_fig07_quanta"
  "bench/bench_fig07_quanta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_quanta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
