# Empty dependencies file for bench_fig07_quanta.
# This may be replaced when dependencies are built.
