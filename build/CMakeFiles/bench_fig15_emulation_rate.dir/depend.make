# Empty dependencies file for bench_fig15_emulation_rate.
# This may be replaced when dependencies are built.
