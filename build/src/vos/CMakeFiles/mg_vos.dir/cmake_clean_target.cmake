file(REMOVE_RECURSE
  "libmg_vos.a"
)
