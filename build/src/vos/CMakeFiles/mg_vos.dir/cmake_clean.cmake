file(REMOVE_RECURSE
  "CMakeFiles/mg_vos.dir/cpu_scheduler.cpp.o"
  "CMakeFiles/mg_vos.dir/cpu_scheduler.cpp.o.d"
  "CMakeFiles/mg_vos.dir/memory.cpp.o"
  "CMakeFiles/mg_vos.dir/memory.cpp.o.d"
  "CMakeFiles/mg_vos.dir/virtual_host.cpp.o"
  "CMakeFiles/mg_vos.dir/virtual_host.cpp.o.d"
  "CMakeFiles/mg_vos.dir/wire.cpp.o"
  "CMakeFiles/mg_vos.dir/wire.cpp.o.d"
  "libmg_vos.a"
  "libmg_vos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_vos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
