
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vos/cpu_scheduler.cpp" "src/vos/CMakeFiles/mg_vos.dir/cpu_scheduler.cpp.o" "gcc" "src/vos/CMakeFiles/mg_vos.dir/cpu_scheduler.cpp.o.d"
  "/root/repo/src/vos/memory.cpp" "src/vos/CMakeFiles/mg_vos.dir/memory.cpp.o" "gcc" "src/vos/CMakeFiles/mg_vos.dir/memory.cpp.o.d"
  "/root/repo/src/vos/virtual_host.cpp" "src/vos/CMakeFiles/mg_vos.dir/virtual_host.cpp.o" "gcc" "src/vos/CMakeFiles/mg_vos.dir/virtual_host.cpp.o.d"
  "/root/repo/src/vos/wire.cpp" "src/vos/CMakeFiles/mg_vos.dir/wire.cpp.o" "gcc" "src/vos/CMakeFiles/mg_vos.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
