# Empty dependencies file for mg_vos.
# This may be replaced when dependencies are built.
