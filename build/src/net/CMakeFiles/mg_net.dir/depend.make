# Empty dependencies file for mg_net.
# This may be replaced when dependencies are built.
