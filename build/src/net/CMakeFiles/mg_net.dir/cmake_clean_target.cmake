file(REMOVE_RECURSE
  "libmg_net.a"
)
