file(REMOVE_RECURSE
  "CMakeFiles/mg_net.dir/flow_network.cpp.o"
  "CMakeFiles/mg_net.dir/flow_network.cpp.o.d"
  "CMakeFiles/mg_net.dir/packet_network.cpp.o"
  "CMakeFiles/mg_net.dir/packet_network.cpp.o.d"
  "CMakeFiles/mg_net.dir/tcp.cpp.o"
  "CMakeFiles/mg_net.dir/tcp.cpp.o.d"
  "CMakeFiles/mg_net.dir/topology.cpp.o"
  "CMakeFiles/mg_net.dir/topology.cpp.o.d"
  "CMakeFiles/mg_net.dir/udp.cpp.o"
  "CMakeFiles/mg_net.dir/udp.cpp.o.d"
  "libmg_net.a"
  "libmg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
