file(REMOVE_RECURSE
  "CMakeFiles/mg_gis.dir/directory.cpp.o"
  "CMakeFiles/mg_gis.dir/directory.cpp.o.d"
  "CMakeFiles/mg_gis.dir/filter.cpp.o"
  "CMakeFiles/mg_gis.dir/filter.cpp.o.d"
  "CMakeFiles/mg_gis.dir/record.cpp.o"
  "CMakeFiles/mg_gis.dir/record.cpp.o.d"
  "CMakeFiles/mg_gis.dir/schema.cpp.o"
  "CMakeFiles/mg_gis.dir/schema.cpp.o.d"
  "CMakeFiles/mg_gis.dir/service.cpp.o"
  "CMakeFiles/mg_gis.dir/service.cpp.o.d"
  "libmg_gis.a"
  "libmg_gis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_gis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
