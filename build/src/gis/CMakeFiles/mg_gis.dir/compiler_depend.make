# Empty compiler generated dependencies file for mg_gis.
# This may be replaced when dependencies are built.
