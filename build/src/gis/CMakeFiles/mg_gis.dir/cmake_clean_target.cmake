file(REMOVE_RECURSE
  "libmg_gis.a"
)
