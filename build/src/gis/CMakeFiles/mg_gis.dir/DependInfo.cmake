
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gis/directory.cpp" "src/gis/CMakeFiles/mg_gis.dir/directory.cpp.o" "gcc" "src/gis/CMakeFiles/mg_gis.dir/directory.cpp.o.d"
  "/root/repo/src/gis/filter.cpp" "src/gis/CMakeFiles/mg_gis.dir/filter.cpp.o" "gcc" "src/gis/CMakeFiles/mg_gis.dir/filter.cpp.o.d"
  "/root/repo/src/gis/record.cpp" "src/gis/CMakeFiles/mg_gis.dir/record.cpp.o" "gcc" "src/gis/CMakeFiles/mg_gis.dir/record.cpp.o.d"
  "/root/repo/src/gis/schema.cpp" "src/gis/CMakeFiles/mg_gis.dir/schema.cpp.o" "gcc" "src/gis/CMakeFiles/mg_gis.dir/schema.cpp.o.d"
  "/root/repo/src/gis/service.cpp" "src/gis/CMakeFiles/mg_gis.dir/service.cpp.o" "gcc" "src/gis/CMakeFiles/mg_gis.dir/service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vos/CMakeFiles/mg_vos.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
