file(REMOVE_RECURSE
  "CMakeFiles/mg_apps.dir/microbench.cpp.o"
  "CMakeFiles/mg_apps.dir/microbench.cpp.o.d"
  "CMakeFiles/mg_apps.dir/wavetoy.cpp.o"
  "CMakeFiles/mg_apps.dir/wavetoy.cpp.o.d"
  "libmg_apps.a"
  "libmg_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
