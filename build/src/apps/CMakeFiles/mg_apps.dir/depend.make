# Empty dependencies file for mg_apps.
# This may be replaced when dependencies are built.
