file(REMOVE_RECURSE
  "libmg_apps.a"
)
