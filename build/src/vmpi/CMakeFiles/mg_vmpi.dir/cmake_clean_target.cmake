file(REMOVE_RECURSE
  "libmg_vmpi.a"
)
