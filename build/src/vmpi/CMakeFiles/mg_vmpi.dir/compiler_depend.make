# Empty compiler generated dependencies file for mg_vmpi.
# This may be replaced when dependencies are built.
