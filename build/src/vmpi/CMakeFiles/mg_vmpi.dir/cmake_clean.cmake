file(REMOVE_RECURSE
  "CMakeFiles/mg_vmpi.dir/comm.cpp.o"
  "CMakeFiles/mg_vmpi.dir/comm.cpp.o.d"
  "libmg_vmpi.a"
  "libmg_vmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_vmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
