file(REMOVE_RECURSE
  "CMakeFiles/mg_sim.dir/simulator.cpp.o"
  "CMakeFiles/mg_sim.dir/simulator.cpp.o.d"
  "libmg_sim.a"
  "libmg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
