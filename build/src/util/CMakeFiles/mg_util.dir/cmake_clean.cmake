file(REMOVE_RECURSE
  "CMakeFiles/mg_util.dir/config.cpp.o"
  "CMakeFiles/mg_util.dir/config.cpp.o.d"
  "CMakeFiles/mg_util.dir/log.cpp.o"
  "CMakeFiles/mg_util.dir/log.cpp.o.d"
  "CMakeFiles/mg_util.dir/rng.cpp.o"
  "CMakeFiles/mg_util.dir/rng.cpp.o.d"
  "CMakeFiles/mg_util.dir/stats.cpp.o"
  "CMakeFiles/mg_util.dir/stats.cpp.o.d"
  "CMakeFiles/mg_util.dir/strings.cpp.o"
  "CMakeFiles/mg_util.dir/strings.cpp.o.d"
  "CMakeFiles/mg_util.dir/table.cpp.o"
  "CMakeFiles/mg_util.dir/table.cpp.o.d"
  "CMakeFiles/mg_util.dir/units.cpp.o"
  "CMakeFiles/mg_util.dir/units.cpp.o.d"
  "libmg_util.a"
  "libmg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
