file(REMOVE_RECURSE
  "CMakeFiles/mg_npb.dir/bt.cpp.o"
  "CMakeFiles/mg_npb.dir/bt.cpp.o.d"
  "CMakeFiles/mg_npb.dir/cost_model.cpp.o"
  "CMakeFiles/mg_npb.dir/cost_model.cpp.o.d"
  "CMakeFiles/mg_npb.dir/ep.cpp.o"
  "CMakeFiles/mg_npb.dir/ep.cpp.o.d"
  "CMakeFiles/mg_npb.dir/is.cpp.o"
  "CMakeFiles/mg_npb.dir/is.cpp.o.d"
  "CMakeFiles/mg_npb.dir/lu.cpp.o"
  "CMakeFiles/mg_npb.dir/lu.cpp.o.d"
  "CMakeFiles/mg_npb.dir/mg_kernel.cpp.o"
  "CMakeFiles/mg_npb.dir/mg_kernel.cpp.o.d"
  "CMakeFiles/mg_npb.dir/npb.cpp.o"
  "CMakeFiles/mg_npb.dir/npb.cpp.o.d"
  "libmg_npb.a"
  "libmg_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
