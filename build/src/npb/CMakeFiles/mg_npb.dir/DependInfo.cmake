
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/npb/bt.cpp" "src/npb/CMakeFiles/mg_npb.dir/bt.cpp.o" "gcc" "src/npb/CMakeFiles/mg_npb.dir/bt.cpp.o.d"
  "/root/repo/src/npb/cost_model.cpp" "src/npb/CMakeFiles/mg_npb.dir/cost_model.cpp.o" "gcc" "src/npb/CMakeFiles/mg_npb.dir/cost_model.cpp.o.d"
  "/root/repo/src/npb/ep.cpp" "src/npb/CMakeFiles/mg_npb.dir/ep.cpp.o" "gcc" "src/npb/CMakeFiles/mg_npb.dir/ep.cpp.o.d"
  "/root/repo/src/npb/is.cpp" "src/npb/CMakeFiles/mg_npb.dir/is.cpp.o" "gcc" "src/npb/CMakeFiles/mg_npb.dir/is.cpp.o.d"
  "/root/repo/src/npb/lu.cpp" "src/npb/CMakeFiles/mg_npb.dir/lu.cpp.o" "gcc" "src/npb/CMakeFiles/mg_npb.dir/lu.cpp.o.d"
  "/root/repo/src/npb/mg_kernel.cpp" "src/npb/CMakeFiles/mg_npb.dir/mg_kernel.cpp.o" "gcc" "src/npb/CMakeFiles/mg_npb.dir/mg_kernel.cpp.o.d"
  "/root/repo/src/npb/npb.cpp" "src/npb/CMakeFiles/mg_npb.dir/npb.cpp.o" "gcc" "src/npb/CMakeFiles/mg_npb.dir/npb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vmpi/CMakeFiles/mg_vmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/mg_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/vos/CMakeFiles/mg_vos.dir/DependInfo.cmake"
  "/root/repo/build/src/autopilot/CMakeFiles/mg_autopilot.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
