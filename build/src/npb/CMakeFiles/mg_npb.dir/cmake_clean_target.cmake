file(REMOVE_RECURSE
  "libmg_npb.a"
)
