# Empty compiler generated dependencies file for mg_npb.
# This may be replaced when dependencies are built.
