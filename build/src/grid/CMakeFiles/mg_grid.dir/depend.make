# Empty dependencies file for mg_grid.
# This may be replaced when dependencies are built.
