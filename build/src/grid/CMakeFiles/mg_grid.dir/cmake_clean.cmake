file(REMOVE_RECURSE
  "CMakeFiles/mg_grid.dir/coallocator.cpp.o"
  "CMakeFiles/mg_grid.dir/coallocator.cpp.o.d"
  "CMakeFiles/mg_grid.dir/gram.cpp.o"
  "CMakeFiles/mg_grid.dir/gram.cpp.o.d"
  "CMakeFiles/mg_grid.dir/rsl.cpp.o"
  "CMakeFiles/mg_grid.dir/rsl.cpp.o.d"
  "libmg_grid.a"
  "libmg_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
