
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/coallocator.cpp" "src/grid/CMakeFiles/mg_grid.dir/coallocator.cpp.o" "gcc" "src/grid/CMakeFiles/mg_grid.dir/coallocator.cpp.o.d"
  "/root/repo/src/grid/gram.cpp" "src/grid/CMakeFiles/mg_grid.dir/gram.cpp.o" "gcc" "src/grid/CMakeFiles/mg_grid.dir/gram.cpp.o.d"
  "/root/repo/src/grid/rsl.cpp" "src/grid/CMakeFiles/mg_grid.dir/rsl.cpp.o" "gcc" "src/grid/CMakeFiles/mg_grid.dir/rsl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vos/CMakeFiles/mg_vos.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mg_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
