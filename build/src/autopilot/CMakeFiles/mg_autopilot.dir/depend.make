# Empty dependencies file for mg_autopilot.
# This may be replaced when dependencies are built.
