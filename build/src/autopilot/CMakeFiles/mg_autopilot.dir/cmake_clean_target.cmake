file(REMOVE_RECURSE
  "libmg_autopilot.a"
)
