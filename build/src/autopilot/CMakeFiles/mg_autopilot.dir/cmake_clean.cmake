file(REMOVE_RECURSE
  "CMakeFiles/mg_autopilot.dir/autopilot.cpp.o"
  "CMakeFiles/mg_autopilot.dir/autopilot.cpp.o.d"
  "libmg_autopilot.a"
  "libmg_autopilot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_autopilot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
