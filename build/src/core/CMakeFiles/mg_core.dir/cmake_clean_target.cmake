file(REMOVE_RECURSE
  "libmg_core.a"
)
