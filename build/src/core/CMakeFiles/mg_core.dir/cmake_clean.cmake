file(REMOVE_RECURSE
  "CMakeFiles/mg_core.dir/launcher.cpp.o"
  "CMakeFiles/mg_core.dir/launcher.cpp.o.d"
  "CMakeFiles/mg_core.dir/microgrid_platform.cpp.o"
  "CMakeFiles/mg_core.dir/microgrid_platform.cpp.o.d"
  "CMakeFiles/mg_core.dir/reference_platform.cpp.o"
  "CMakeFiles/mg_core.dir/reference_platform.cpp.o.d"
  "CMakeFiles/mg_core.dir/topologies.cpp.o"
  "CMakeFiles/mg_core.dir/topologies.cpp.o.d"
  "CMakeFiles/mg_core.dir/virtual_grid.cpp.o"
  "CMakeFiles/mg_core.dir/virtual_grid.cpp.o.d"
  "libmg_core.a"
  "libmg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
