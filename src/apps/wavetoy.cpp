#include "apps/wavetoy.h"

#include <algorithm>
#include <cmath>

#include "npb/kernel_common.h"
#include "util/error.h"

namespace mg::apps {

namespace {
using npb::detail::SlabField;
constexpr int kMaxExecutedEdge = 32;
}  // namespace

WaveToyResult runWaveToy(vmpi::Comm& comm, vos::HostContext& ctx, const WaveToyParams& params) {
  if (params.grid_edge < 2 || params.timesteps < 1) {
    throw mg::UsageError("wavetoy needs grid_edge >= 2 and timesteps >= 1");
  }
  WaveToyResult result;
  result.rank = comm.rank();
  result.nprocs = comm.size();
  result.grid_edge = params.grid_edge;
  const int p = comm.size();
  const int rank = comm.rank();

  // Executed (reduced) grid; compute charge and wire sizes use the
  // requested edge.
  int n = std::min(params.grid_edge, kMaxExecutedEdge);
  n -= n % p;  // make the slab decomposition exact
  if (n < p) n = p;
  const int nz = n / p;
  const bool has_down = rank > 0;
  const bool has_up = rank + 1 < p;
  const std::int64_t bytes0 = comm.bytesSent();

  const double edge = params.grid_edge;
  const double ops_per_step = edge * edge * edge * params.ops_per_point / p;
  const auto wire_face = static_cast<std::size_t>(edge * edge * 8);

  SlabField u(n, nz), u_prev(n, nz), u_next(n, nz);
  // Initial condition: a Gaussian pulse centered in the cube.
  const double c2dt2 = 0.1;  // (c*dt/dx)^2, comfortably under the CFL bound
  for (int z = 0; z < nz; ++z) {
    const int gz = rank * nz + z;
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const double dx = (x - n / 2.0) / n;
        const double dy = (y - n / 2.0) / n;
        const double dz = (gz - n / 2.0) / n;
        const double g = std::exp(-40.0 * (dx * dx + dy * dy + dz * dz));
        u.at(x, y, z) = g;
        u_prev.at(x, y, z) = g;  // zero initial velocity
      }
    }
  }

  auto energy = [&] {
    double e = 0;
    for (int z = 0; z < nz; ++z) {
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) e += u.at(x, y, z) * u.at(x, y, z);
      }
    }
    comm.allreduce(&e, 1, vmpi::Op::Sum);
    return e;
  };

  comm.barrier();
  const double t0 = comm.wtime();
  const double initial_energy = energy();

  for (int step = 0; step < params.timesteps; ++step) {
    npb::detail::exchangeHalo(comm, u, 500, wire_face);
    ctx.compute(ops_per_step);
    for (int z = 0; z < nz; ++z) {
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          const double xm = x > 0 ? u.at(x - 1, y, z) : 0.0;
          const double xp = x + 1 < n ? u.at(x + 1, y, z) : 0.0;
          const double ym = y > 0 ? u.at(x, y - 1, z) : 0.0;
          const double yp = y + 1 < n ? u.at(x, y + 1, z) : 0.0;
          const double zm = (z > 0 || has_down) ? u.at(x, y, z - 1) : 0.0;
          const double zp = (z + 1 < nz || has_up) ? u.at(x, y, z + 1) : 0.0;
          const double lap = xm + xp + ym + yp + zm + zp - 6.0 * u.at(x, y, z);
          u_next.at(x, y, z) = 2.0 * u.at(x, y, z) - u_prev.at(x, y, z) + c2dt2 * lap;
        }
      }
    }
    std::swap(u_prev, u);
    std::swap(u, u_next);
  }

  const double final_energy = energy();
  result.seconds = comm.wtime() - t0;
  // Leapfrog with reflecting boundaries keeps the field bounded; blow-up
  // would mean a broken halo exchange or CFL violation.
  result.verified =
      std::isfinite(final_energy) && final_energy < 4.0 * initial_energy + 1.0;
  result.energy = final_energy;
  result.bytes_sent = comm.bytesSent() - bytes0;
  return result;
}

double WaveToySink::maxSeconds() const {
  double m = 0;
  for (const auto& r : results_) m = std::max(m, r.seconds);
  return m;
}

bool WaveToySink::allVerified() const {
  if (results_.empty()) return false;
  return std::all_of(results_.begin(), results_.end(),
                     [](const WaveToyResult& r) { return r.verified; });
}

void registerWaveToy(grid::ExecutableRegistry& registry, WaveToySink& sink) {
  registry.add("cactus.wavetoy", [&sink](grid::JobContext& jc) {
    WaveToyParams params;
    if (!jc.args.empty()) params.grid_edge = std::stoi(jc.args[0]);
    if (jc.args.size() > 1) params.timesteps = std::stoi(jc.args[1]);
    auto comm = vmpi::Comm::init(jc);
    WaveToyResult r = runWaveToy(*comm, jc.os, params);
    sink.record(r);
    comm->finalize();
    return r.verified ? 0 : 1;
  });
}

}  // namespace mg::apps
