// The paper's micro-benchmark programs (§3.2), as reusable routines driven
// by the bench harnesses:
//
//  * memoryProbe   — Fig 5: allocate until out-of-memory, report the max.
//  * cpuReference  — Fig 6: a fixed CPU-bound computation; the caller
//                    derives the delivered fraction from its wall time.
//  * pingPong      — Fig 8: MPI-style latency/bandwidth curves vs message
//                    size between two hosts.
#pragma once

#include <cstdint>
#include <vector>

#include "vmpi/comm.h"
#include "vos/context.h"

namespace mg::apps {

/// Allocate `chunk`-byte blocks until OutOfMemoryError; returns bytes
/// successfully allocated (the Fig 5 y-axis). Frees everything afterwards.
std::int64_t memoryProbe(vos::HostContext& ctx, std::int64_t chunk = 1024);

/// Burn exactly `ops` operations; returns the virtual wall time it took.
double cpuReference(vos::HostContext& ctx, double ops);

struct PingPongPoint {
  std::size_t message_bytes = 0;
  double latency_seconds = 0;      // one-way (half round trip)
  double bandwidth_mbytes_s = 0;   // message_bytes / one-way time
};

/// Run on exactly two ranks. Rank 0 returns one point per size; rank 1
/// returns an empty vector. `repeats` round trips are averaged per size.
std::vector<PingPongPoint> pingPong(vmpi::Comm& comm, const std::vector<std::size_t>& sizes,
                                    int repeats = 5);

}  // namespace mg::apps
