#include "apps/microbench.h"

#include "util/error.h"
#include "vos/memory.h"

namespace mg::apps {

std::int64_t memoryProbe(vos::HostContext& ctx, std::int64_t chunk) {
  std::int64_t allocated = 0;
  try {
    for (;;) {
      ctx.allocateMemory(chunk);
      allocated += chunk;
    }
  } catch (const vos::OutOfMemoryError&) {
  }
  ctx.freeMemory(allocated);
  return allocated;
}

double cpuReference(vos::HostContext& ctx, double ops) {
  const double t0 = ctx.wallTime();
  ctx.compute(ops);
  return ctx.wallTime() - t0;
}

std::vector<PingPongPoint> pingPong(vmpi::Comm& comm, const std::vector<std::size_t>& sizes,
                                    int repeats) {
  if (comm.size() != 2) throw mg::UsageError("pingPong needs exactly two ranks");
  std::vector<PingPongPoint> points;
  std::size_t max_size = 1;
  for (auto s : sizes) max_size = std::max(max_size, s);
  std::vector<std::uint8_t> buf(max_size, 0x5a);

  for (std::size_t size : sizes) {
    comm.barrier();
    if (comm.rank() == 0) {
      // Warm-up round trip, then timed repeats.
      comm.send(1, 1, buf.data(), size);
      comm.recv(1, 1, buf.data(), max_size);
      const double t0 = comm.wtime();
      for (int r = 0; r < repeats; ++r) {
        comm.send(1, 1, buf.data(), size);
        comm.recv(1, 1, buf.data(), max_size);
      }
      const double per_oneway = (comm.wtime() - t0) / repeats / 2.0;
      PingPongPoint pt;
      pt.message_bytes = size;
      pt.latency_seconds = per_oneway;
      pt.bandwidth_mbytes_s = static_cast<double>(size) / per_oneway / 1e6;
      points.push_back(pt);
    } else {
      for (int r = 0; r < repeats + 1; ++r) {
        comm.recv(0, 1, buf.data(), max_size);
        comm.send(0, 1, buf.data(), size);
      }
    }
  }
  return points;
}

}  // namespace mg::apps
