// WaveToy — the CACTUS application stand-in (paper §3.5).
//
// CACTUS is a parallel PDE problem-solving environment; its WaveToy thorn
// solves the 3D scalar wave equation. This implementation uses the same
// structure: a leapfrog finite-difference update over a slab-decomposed
// cube with ghost-plane exchanges every timestep, parameterized by the grid
// edge ("Grid Size (one edge)" in Fig 16: 50 and 250).
//
// The executed grid is capped; compute and wire sizes are charged for the
// requested edge (same substitution scheme as the NPB kernels).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/registry.h"
#include "vmpi/comm.h"
#include "vos/context.h"

namespace mg::apps {

struct WaveToyParams {
  int grid_edge = 50;   // requested (charged) global edge
  int timesteps = 60;
  /// Operations charged per grid point per timestep. Calibrated well above
  /// the bare 7-point stencil cost to model the CACTUS framework's
  /// per-point thorn-scheduling overhead; this also keeps per-step compute
  /// above the 10 ms scheduler quantum at grid edge 50, as the real CACTUS
  /// runs were (the paper measured 5-7% error there, which requires
  /// super-quantum steps — see Fig 11).
  double ops_per_point = 800.0;
};

struct WaveToyResult {
  int rank = 0;
  int nprocs = 0;
  int grid_edge = 0;
  double seconds = 0;      // virtual wall time of the evolution loop
  bool verified = false;   // energy stayed bounded and field is finite
  double energy = 0;       // final field energy (deterministic checksum)
  std::int64_t bytes_sent = 0;
};

/// Run on an initialized communicator; all ranks participate.
WaveToyResult runWaveToy(vmpi::Comm& comm, vos::HostContext& ctx, const WaveToyParams& params);

/// Collects per-rank results from GRAM-launched runs.
class WaveToySink {
 public:
  void record(WaveToyResult r) { results_.push_back(std::move(r)); }
  const std::vector<WaveToyResult>& results() const { return results_; }
  void clear() { results_.clear(); }
  double maxSeconds() const;
  bool allVerified() const;

 private:
  std::vector<WaveToyResult> results_;
};

/// Register executable "cactus.wavetoy" (arguments: grid_edge [timesteps]).
void registerWaveToy(grid::ExecutableRegistry& registry, WaveToySink& sink);

}  // namespace mg::apps
