// The pluggable network-model interface (DESIGN.md §8).
//
// Transports (HostStack/TCP/UDP), the platforms, and fault injection talk to
// a NetworkModel, not to a concrete simulator: the same wiring runs at
// packet-level detail (PacketNetwork), as a max-min fair fluid model
// (FlowNetwork), or as a hybrid that escalates selected traffic to packet
// detail (HybridNetwork). The base class owns everything the models share —
// the topology, the fault-aware routing table, per-node transport handlers,
// the time_scale rescaling, and the link/node fault surface with its
// barrier-deferred mutation discipline — so a fault injected through
// setLinkUp() behaves identically no matter which model is live.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "net/partition.h"
#include "net/topology.h"
#include "obs/sampler.h"
#include "sim/simulator.h"

namespace mg::net {

/// Which network model a platform wires in (mgrun --netmodel=...).
enum class NetModelKind { Packet, Flow, Hybrid };

/// Parse "packet" / "flow" / "hybrid"; throws ConfigError otherwise.
NetModelKind parseNetModelKind(const std::string& s);
const char* netModelKindName(NetModelKind k);

/// A link's mutable performance parameters, for fault injection
/// (link_degrade / restore). Changing them recomputes routing, since the
/// Dijkstra weights depend on latency and bandwidth.
struct LinkParams {
  double bandwidth_bps = 0;
  sim::SimTime latency = 0;
  double loss_rate = 0;
};

class FlowEngine;

class NetworkModel {
 public:
  using PacketHandler = std::function<void(Packet&&)>;

  /// `time_scale` is kernel-clock nanoseconds per network nanosecond; the
  /// MicroGrid platform passes 1/rate so virtual-time behaviour is preserved
  /// at any emulation rate.
  NetworkModel(sim::Simulator& sim, Topology topo, double time_scale);
  virtual ~NetworkModel() = default;
  NetworkModel(const NetworkModel&) = delete;
  NetworkModel& operator=(const NetworkModel&) = delete;

  virtual NetModelKind kind() const = 0;

  sim::Simulator& simulator() { return sim_; }
  const Topology& topology() const { return topo_; }
  const RoutingTable& routing() const { return routing_; }

  /// Install the transport dispatch for a host node. One handler per node;
  /// replacing is allowed (tests), unhandled packets are dropped.
  void attachHost(NodeId node, PacketHandler handler);

  /// Inject a packet at its source node; delivery invokes the destination
  /// node's handler at the model's notion of the right simulated time.
  virtual void send(Packet&& pkt) = 0;

  // --- fault surface (src/fault drives these) ---
  //
  // Topology mutations touch state that every model reader depends on —
  // routing tables, link up/down flags, queue or flow state — so under
  // parallel execution they defer to the next barrier, where no worker runs.
  // Without a parallel engine runAtBarrier() applies the op immediately, so
  // classic sequential behaviour is unchanged. Each mutation fires exactly
  // once per actual state change (a same-state call is a no-op), invokes the
  // model-specific hook, then recomputes routes.

  /// Administratively set a link up or down.
  void setLinkUp(LinkId link, bool up);

  /// Mark a node up or down (host crash / restart). A down node neither
  /// receives traffic nor forwards (routing recomputes around it).
  void setNodeUp(NodeId node, bool up);
  bool nodeUp(NodeId node) const { return topo_.node(node).up; }

  LinkParams linkParams(LinkId link) const;
  void applyLinkParams(LinkId link, const LinkParams& params);

  /// Convert a network-time duration to kernel-clock time (multiplies by
  /// time_scale). Transports use this for their protocol timers so that RTO
  /// and friends stay correct in rescaled emulations.
  sim::SimTime scaleDuration(sim::SimTime t) const { return scaled(t); }
  double timeScale() const { return time_scale_; }

  // --- parallel execution surface ---
  //
  // Only the packet model shards its wire pipeline across event lanes; the
  // fluid models keep every event on the process lane, so their defaults
  // (no-op plan, zero lookahead, lane 0) make any model safe to drop into
  // the platform's parallel setup path.

  virtual void setPartitionPlan(const PartitionPlan& plan);
  virtual sim::SimTime wireLookahead() const { return 0; }
  virtual int laneOf(NodeId node) const {
    (void)node;
    return 0;
  }
  const PartitionPlan& partitionPlan() const { return plan_; }

  // --- model-selection surface ---

  /// The fluid engine, when this model has one (Flow/Hybrid); nullptr for
  /// the pure packet model.
  virtual FlowEngine* flows() { return nullptr; }

  /// Should traffic between src and dst on destination port `port` be
  /// modeled at packet-level detail? Packet: always; Flow: never; Hybrid:
  /// per the --netmodel-detail selector. Platforms use this to pick the
  /// socket implementation per connection.
  virtual bool escalate(NodeId src, NodeId dst, std::uint16_t port) const {
    (void)src;
    (void)dst;
    (void)port;
    return true;
  }

  // --- telemetry surface (DESIGN.md §10) ---

  /// Register this model's time-resolved probes on `sampler`: per-link busy
  /// utilization and whatever per-model health series apply (active flows,
  /// wire throughput). Probe reads happen at sampler ticks — sequentially or
  /// at parallel barriers, never mid-phase — so implementations may read
  /// cross-lane state freely. Base: nothing.
  virtual void registerTelemetry(obs::TelemetrySampler& sampler) { (void)sampler; }

  // --- state-capture surface (DESIGN.md §11) ---

  /// Fold the model's observable state into a canonical digest: the base
  /// folds every link's up flag and live parameters plus every node's up
  /// flag; models append their own dynamic state (queues, in-flight
  /// packets, RNG streams, fluid flows). Strictly read-only; call between
  /// events, never from inside a parallel phase.
  virtual void saveState(obs::StateWriter& w) const;

 protected:
  friend class FlowEngine;

  // Model-specific reactions, invoked at the barrier after the state flip
  // and before the routing recompute. Fluid models react with *scoped* work:
  // down/params hooks touch only the contention component containing the
  // changed element (net.flow.recompute_flows histogram records the scope),
  // and up hooks are no-ops for flows (a restored element carries none).
  virtual void onLinkDown(LinkId link) { (void)link; }
  virtual void onLinkUp(LinkId link) { (void)link; }
  virtual void onNodeDown(NodeId node) { (void)node; }
  virtual void onNodeUp(NodeId node) { (void)node; }
  virtual void onLinkParamsChanged(LinkId link) { (void)link; }
  /// Synchronous, model-specific validation of a params change (throws on
  /// error, before anything is scheduled).
  virtual void validateLinkParams(LinkId link, const LinkParams& params) const {
    (void)link;
    (void)params;
  }

  void recomputeRoutes();
  sim::SimTime scaled(sim::SimTime t) const {
    if (unit_time_scale_) return t;
    return scaledSlow(t);
  }

  sim::Simulator& sim_;
  Topology topo_;
  RoutingTable routing_;
  std::vector<PacketHandler> handlers_;
  obs::Counter& c_route_recomputes_;
  PartitionPlan plan_;

 private:
  sim::SimTime scaledSlow(sim::SimTime t) const;

  double time_scale_ = 1.0;
  // True when time_scale == 1.0 exactly: scaled() is then the identity and
  // skips the int -> double -> llround round-trip on every hop.
  bool unit_time_scale_ = false;
};

}  // namespace mg::net
