#include "net/partition.h"

#include <algorithm>
#include <numeric>

namespace mg::net {

namespace {

// Tiny union-find over node ids (path halving + size union).
struct Dsu {
  std::vector<int> parent, size;
  explicit Dsu(int n) : parent(static_cast<std::size_t>(n)), size(static_cast<std::size_t>(n), 1) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  void unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size[static_cast<std::size_t>(a)] < size[static_cast<std::size_t>(b)]) std::swap(a, b);
    parent[static_cast<std::size_t>(b)] = a;
    size[static_cast<std::size_t>(a)] += size[static_cast<std::size_t>(b)];
  }
};

// Components after contracting every link with latency < tau.
int componentsAt(const Topology& topo, sim::SimTime tau, Dsu& dsu) {
  for (LinkId l = 0; l < topo.linkCount(); ++l) {
    if (topo.link(l).latency < tau) dsu.unite(topo.link(l).a, topo.link(l).b);
  }
  int components = 0;
  for (NodeId n = 0; n < topo.nodeCount(); ++n) {
    if (dsu.find(n) == n) ++components;
  }
  return components;
}

}  // namespace

PartitionPlan planPartitions(const Topology& topo, int max_partitions) {
  PartitionPlan plan;
  if (max_partitions < 2 || topo.nodeCount() < 2 || topo.linkCount() == 0) return plan;

  // Candidate thresholds: the distinct link latencies, largest first. The
  // largest tau keeping >= 2 components maximizes the cut latency (and so
  // the lookahead) while still yielding a usable cut.
  std::vector<sim::SimTime> taus;
  taus.reserve(static_cast<std::size_t>(topo.linkCount()));
  for (LinkId l = 0; l < topo.linkCount(); ++l) taus.push_back(topo.link(l).latency);
  std::sort(taus.begin(), taus.end(), std::greater<>());
  taus.erase(std::unique(taus.begin(), taus.end()), taus.end());

  sim::SimTime tau = -1;
  Dsu dsu(0);
  for (sim::SimTime candidate : taus) {
    if (candidate <= 0) break;  // a zero-latency cut gives zero lookahead
    Dsu probe(topo.nodeCount());
    if (componentsAt(topo, candidate, probe) >= 2) {
      tau = candidate;
      dsu = std::move(probe);
      break;
    }
  }
  if (tau < 0) return plan;

  // Deterministic component labels: roots ordered by smallest member id.
  std::vector<int> root_order;  // root node ids in first-seen (= min id) order
  std::vector<int> comp_of(static_cast<std::size_t>(topo.nodeCount()), -1);
  std::vector<int> comp_size;
  for (NodeId n = 0; n < topo.nodeCount(); ++n) {
    const int root = dsu.find(n);
    if (comp_of[static_cast<std::size_t>(root)] < 0) {
      comp_of[static_cast<std::size_t>(root)] = static_cast<int>(root_order.size());
      root_order.push_back(root);
      comp_size.push_back(0);
    }
    comp_of[static_cast<std::size_t>(n)] = comp_of[static_cast<std::size_t>(root)];
    ++comp_size[static_cast<std::size_t>(comp_of[static_cast<std::size_t>(n)])];
  }
  const int ncomp = static_cast<int>(root_order.size());

  // Bucket components into at most max_partitions partitions: biggest
  // component first (ties by min node id, i.e. label order) into the
  // currently-smallest bucket (ties to the lowest bucket index). Pure
  // function of the topology — never of worker count or fault state.
  const int buckets = std::min(max_partitions, ncomp);
  std::vector<int> order(static_cast<std::size_t>(ncomp));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return comp_size[static_cast<std::size_t>(a)] > comp_size[static_cast<std::size_t>(b)];
  });
  std::vector<int> bucket_of(static_cast<std::size_t>(ncomp), 0);
  std::vector<int> bucket_load(static_cast<std::size_t>(buckets), 0);
  for (int comp : order) {
    int best = 0;
    for (int b = 1; b < buckets; ++b) {
      if (bucket_load[static_cast<std::size_t>(b)] < bucket_load[static_cast<std::size_t>(best)]) {
        best = b;
      }
    }
    bucket_of[static_cast<std::size_t>(comp)] = best;
    bucket_load[static_cast<std::size_t>(best)] += comp_size[static_cast<std::size_t>(comp)];
  }

  plan.partition_of.resize(static_cast<std::size_t>(topo.nodeCount()));
  for (NodeId n = 0; n < topo.nodeCount(); ++n) {
    plan.partition_of[static_cast<std::size_t>(n)] =
        bucket_of[static_cast<std::size_t>(comp_of[static_cast<std::size_t>(n)])];
  }
  plan.partitions = buckets;
  if (plan.partitions < 2) return PartitionPlan{};

  plan.cut_latency = -1;
  for (LinkId l = 0; l < topo.linkCount(); ++l) {
    const Link& lk = topo.link(l);
    if (plan.partitionOf(lk.a) != plan.partitionOf(lk.b)) {
      plan.cut_links.push_back(l);
      if (plan.cut_latency < 0 || lk.latency < plan.cut_latency) plan.cut_latency = lk.latency;
    }
  }
  if (plan.cut_links.empty()) return PartitionPlan{};  // bucketing fused the cut away
  return plan;
}

}  // namespace mg::net
