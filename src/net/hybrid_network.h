// Hybrid network model: fluid flows by default, full packet simulation for
// the traffic the user asked to see in detail.
//
// The MicroGrid paper's tension is fidelity vs. scale: the packet model
// reproduces transport dynamics but costs O(hops) events per MTU, the flow
// model costs O(1) events per message but abstracts away queueing and loss.
// HybridNetwork keeps both wired to the same topology, routing table and
// fault plumbing, and picks per message: traffic matching the detail
// selector (--netmodel-detail=host:GLOB / port:LO-HI patterns) rides the
// packet path, everything else is fluid. Both paths share metrics, spans
// and the trace bus, so observability output is uniform.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "net/flow_network.h"
#include "net/packet_network.h"

namespace mg::net {

/// Glob match with `*` (any run) and `?` (any one char); case-sensitive.
bool globMatch(std::string_view pattern, std::string_view text);

/// Compiled --netmodel-detail patterns. Accepted forms:
///   host:GLOB   escalate traffic whose src or dst node name matches GLOB
///   port:N      escalate traffic to destination port N
///   port:LO-HI  escalate destination ports in [LO, HI]
///   GLOB        shorthand for host:GLOB
/// A message escalates if any pattern matches. Node globs are precompiled
/// to a per-node bitset so the per-send test is O(ports) with no string
/// work.
class DetailSelector {
 public:
  DetailSelector() = default;
  DetailSelector(const Topology& topo, const std::vector<std::string>& patterns);

  bool matches(NodeId src, NodeId dst, std::uint16_t dst_port) const;
  bool empty() const { return !any_; }

 private:
  std::vector<char> node_detail_;                        // per-node flag
  std::vector<std::pair<int, int>> port_ranges_;         // inclusive
  bool any_ = false;
};

struct HybridNetworkOptions {
  PacketNetworkOptions packet;
  /// Fluid-path tuning; its time_scale is ignored (the packet option's
  /// time_scale governs the whole model).
  FlowNetworkOptions flow;
  /// Detail selector patterns (see DetailSelector).
  std::vector<std::string> detail;
};

class HybridNetwork : public PacketNetwork {
 public:
  HybridNetwork(sim::Simulator& sim, Topology topo, HybridNetworkOptions opts = {});

  NetModelKind kind() const override { return NetModelKind::Hybrid; }

  /// Escalated traffic goes through the packet machinery (queues, loss,
  /// per-hop events); the rest becomes fluid flows.
  void send(Packet&& pkt) override;

  bool escalate(NodeId src, NodeId dst, std::uint16_t dst_port) const override {
    return selector_.matches(src, dst, dst_port);
  }

  FlowEngine* flows() override { return &engine_; }
  FlowEngine& engine() { return engine_; }
  const DetailSelector& selector() const { return selector_; }

  /// Both halves report: escalated traffic under net.packet.*, fluid flows
  /// under net.flow.* (the per-link series stay distinct by prefix).
  void registerTelemetry(obs::TelemetrySampler& sampler) override {
    PacketNetwork::registerTelemetry(sampler);
    engine_.registerTelemetry(sampler);
  }

  void saveState(obs::StateWriter& w) const override {
    PacketNetwork::saveState(w);
    engine_.saveState(w);
  }

 protected:
  // Faults hit both halves: packet queues purge, fluid flows abort/re-share.
  void onLinkDown(LinkId link) override;
  void onLinkUp(LinkId link) override;
  void onNodeDown(NodeId node) override;
  void onNodeUp(NodeId node) override;
  void onLinkParamsChanged(LinkId link) override;

 private:
  DetailSelector selector_;
  FlowEngine engine_;
};

}  // namespace mg::net
