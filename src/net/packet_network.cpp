#include "net/packet_network.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace mg::net {

PacketNetwork::PacketNetwork(sim::Simulator& sim, Topology topo, PacketNetworkOptions opts)
    : NetworkModel(sim, std::move(topo), opts.time_scale),
      opts_(opts),
      c_sent_(sim.metrics().counter("net.packet.sent")),
      c_delivered_(sim.metrics().counter("net.packet.delivered")),
      c_dropped_queue_(sim.metrics().counter("net.packet.dropped_queue")),
      c_dropped_loss_(sim.metrics().counter("net.packet.dropped_loss")),
      c_dropped_down_(sim.metrics().counter("net.packet.dropped_down")),
      c_dropped_link_down_(sim.metrics().counter("net.packet.drop_link_down")),
      c_dropped_node_down_(sim.metrics().counter("net.packet.drop_node_down")),
      c_bytes_delivered_(sim.metrics().counter("net.packet.bytes_delivered")),
      c_wire_bytes_(sim.metrics().counter("net.packet.wire_bytes_sent")),
      trace_(sim.traceBus().channel("net.packet")) {
  rngs_.emplace_back(opts.seed);
  flight_.emplace_back();
  link_queues_.resize(static_cast<size_t>(topo_.linkCount()) * 2);
}

void PacketNetwork::setPartitionPlan(const PartitionPlan& plan) {
  if (plan.partitions <= 1) return;
  if (sim_.laneCount() < plan.partitions + 1) {
    throw UsageError("setPartitionPlan: simulator has too few lanes for the plan");
  }
  if (static_cast<std::size_t>(topo_.nodeCount()) != plan.partition_of.size()) {
    throw UsageError("setPartitionPlan: plan does not match this topology");
  }
  plan_ = plan;
  laned_ = true;
  // Decorrelated deterministic loss streams, one per wire lane. Derived from
  // the configured seed and the lane index only — never from worker count.
  while (rngs_.size() < static_cast<std::size_t>(plan.partitions) + 1) {
    rngs_.emplace_back(opts_.seed ^ (0x9e3779b97f4a7c15ull * rngs_.size()));
  }
  flight_.resize(static_cast<std::size_t>(plan.partitions) + 1);
}

sim::SimTime PacketNetwork::wireLookahead() const {
  if (!laned_) return 0;
  return scaled(std::min(opts_.host_stack_delay, plan_.cut_latency));
}

double PacketNetwork::linkBusyKernelSeconds(LinkId link, sim::SimTime t) const {
  double ns = 0;
  for (std::size_t dir = 0; dir < 2; ++dir) {
    const LinkQueue& q = link_queues_[static_cast<std::size_t>(link) * 2 + dir];
    ns += static_cast<double>(q.busy_ns);
    // Open transmit interval, closed against the sample time. A barrier-time
    // sample can predate a busy edge set later in the same epoch — clamp,
    // keeping the cumulative sum monotone (the rate probe differences it).
    if (q.busy && t > q.busy_since) ns += static_cast<double>(t - q.busy_since);
  }
  return ns * 1e-9;
}

void PacketNetwork::registerTelemetry(obs::TelemetrySampler& sampler) {
  sampler.addCounterRate("net.packet.delivered_per_s", c_delivered_);
  sampler.addCounterRate("net.packet.wire_bytes_per_s", c_wire_bytes_);
  for (LinkId l = 0; l < topo_.linkCount(); ++l) {
    sampler.addRate("net.packet.link_util." + topo_.link(l).name,
                    [this, l](std::int64_t t) { return linkBusyKernelSeconds(l, t); });
  }
}

PacketNetworkStats PacketNetwork::stats() const {
  PacketNetworkStats s;
  s.packets_sent = c_sent_.value();
  s.packets_delivered = c_delivered_.value();
  s.packets_dropped_queue = c_dropped_queue_.value();
  s.packets_dropped_loss = c_dropped_loss_.value();
  s.packets_dropped_down = c_dropped_down_.value();
  s.packets_dropped_link_down = c_dropped_link_down_.value();
  s.packets_dropped_node_down = c_dropped_node_down_.value();
  s.route_recomputes = c_route_recomputes_.value();
  s.bytes_delivered = c_bytes_delivered_.value();
  s.wire_bytes_sent = c_wire_bytes_.value();
  return s;
}

std::uint32_t PacketNetwork::parkInFlight(Packet&& pkt) {
  FlightPool& pool = flight_[static_cast<std::size_t>(sim_.currentLane())];
  if (pool.free.empty()) {
    pool.slots.push_back(std::move(pkt));
    return static_cast<std::uint32_t>(pool.slots.size() - 1);
  }
  const std::uint32_t slot = pool.free.back();
  pool.free.pop_back();
  pool.slots[slot] = std::move(pkt);
  return slot;
}

Packet PacketNetwork::takeInFlight(std::uint32_t slot) {
  FlightPool& pool = flight_[static_cast<std::size_t>(sim_.currentLane())];
  Packet pkt = std::move(pool.slots[slot]);
  pool.free.push_back(slot);
  return pkt;
}

void PacketNetwork::send(Packet&& pkt) {
  if (pkt.src < 0 || pkt.src >= topo_.nodeCount() || pkt.dst < 0 || pkt.dst >= topo_.nodeCount()) {
    throw UsageError("packet endpoint out of range");
  }
  c_sent_.inc();
  if (laned_ && pkt.src != pkt.dst) {
    // Cross onto the source's wire partition. The sender-side stack delay is
    // >= wireLookahead() by construction, so the crossing respects the
    // engine's horizon; the Packet rides inside the event closure because
    // flight slots are lane-local.
    Packet p = std::move(pkt);
    const int lane = laneOf(p.src);
    sim_.scheduleOnLane(lane, sim_.now() + scaled(opts_.host_stack_delay),
                        [this, p = std::move(p)]() mutable { forward(p.src, std::move(p)); });
    return;
  }
  // Sender-side protocol stack cost. The packet parks in a flight slot so
  // the event captures 8 bytes, not a Packet.
  const std::uint32_t slot = parkInFlight(std::move(pkt));
  sim_.scheduleAfter(scaled(opts_.host_stack_delay), [this, slot] {
    Packet p = takeInFlight(slot);
    forward(p.src, std::move(p));
  });
}

void PacketNetwork::forward(NodeId at, Packet&& pkt) {
  if (at == pkt.dst) {
    deliverLocal(std::move(pkt));
    return;
  }
  LinkId lid = routing_.nextLink(at, pkt.dst);
  if (lid == kNoLink || !topo_.link(lid).up) {
    c_dropped_down_.inc();
    if (trace_.enabled()) trace_.record(sim_.now(), "drop_down", static_cast<double>(pkt.wireBytes()));
    sim_.spans().endWith(pkt.span, "dropped", "no_route");
    return;
  }
  enqueue(lid, at, std::move(pkt));
}

PacketNetwork::LinkQueue& PacketNetwork::queueFor(LinkId link, NodeId from) {
  const Link& l = topo_.link(link);
  const int dir = (from == l.a) ? 0 : 1;
  return link_queues_.at(static_cast<size_t>(link) * 2 + static_cast<size_t>(dir));
}

void PacketNetwork::enqueue(LinkId link, NodeId from, Packet&& pkt) {
  const Link& l = topo_.link(link);
  LinkQueue& q = queueFor(link, from);
  if (q.queued_bytes + pkt.wireBytes() > l.queue_bytes) {
    c_dropped_queue_.inc();
    if (trace_.enabled()) trace_.record(sim_.now(), "drop_queue", static_cast<double>(pkt.wireBytes()), l.name);
    MG_LOG_TRACE("net") << "drop (queue full) on " << l.name;
    sim_.spans().endWith(pkt.span, "dropped", "queue");
    return;
  }
  q.queued_bytes += pkt.wireBytes();
  q.queue.push_back(std::move(pkt));
  if (!q.busy) startTransmit(link, from);
}

void PacketNetwork::startTransmit(LinkId link, NodeId from) {
  LinkQueue& q = queueFor(link, from);
  if (q.queue.empty()) {
    if (q.busy) q.busy_ns += sim_.now() - q.busy_since;  // occupancy 1 -> 0
    q.busy = false;
    return;
  }
  if (!q.busy) q.busy_since = sim_.now();  // occupancy 0 -> 1
  q.busy = true;
  const Link& l = topo_.link(link);
  Packet& head = q.queue.front();
  const double tx_seconds = static_cast<double>(head.wireBytes()) * 8.0 / l.bandwidth_bps;
  const sim::SimTime tx = sim::fromSeconds(tx_seconds);
  c_wire_bytes_.inc(head.wireBytes());
  // One hop = serialization + propagation + the far-end processing delay,
  // recorded as a child of the packet's transit span on the link's track.
  if (sim_.spans().enabled() && head.span != 0) {
    head.hop_span = sim_.spans().beginChildOf(head.span, "net.packet", "hop", l.name);
  }
  sim_.scheduleAfter(scaled(tx), [this, link, from] {
    LinkQueue& lq = queueFor(link, from);
    Packet pkt = std::move(lq.queue.front());
    lq.queue.pop_front();
    lq.queued_bytes -= pkt.wireBytes();
    const Link& lk = topo_.link(link);
    // Link may have gone down while the packet was in flight on the wire.
    if (!lk.up) {
      c_dropped_down_.inc();
      c_dropped_link_down_.inc();
      if (trace_.enabled()) trace_.record(sim_.now(), "drop_link_down", static_cast<double>(pkt.wireBytes()), lk.name);
      sim_.spans().endWith(pkt.hop_span, "dropped", "link_down");
      sim_.spans().endWith(pkt.span, "dropped", "link_down");
    } else if (lk.loss_rate > 0 &&
               rngs_[static_cast<std::size_t>(sim_.currentLane())].uniform() < lk.loss_rate) {
      c_dropped_loss_.inc();
      if (trace_.enabled()) trace_.record(sim_.now(), "drop_loss", static_cast<double>(pkt.wireBytes()), lk.name);
      sim_.spans().endWith(pkt.hop_span, "dropped", "loss");
      sim_.spans().endWith(pkt.span, "dropped", "loss");
    } else {
      const NodeId to = topo_.peer(link, from);
      const bool at_destination = (to == pkt.dst);
      const sim::SimTime hop_delay =
          lk.latency + (at_destination ? opts_.host_stack_delay
                                       : opts_.router_forward_delay);
      if (laned_ && at_destination) {
        // Final hop: the whole arrival (hop-span close + delivery) executes
        // on the process lane. latency + host_stack_delay >= wireLookahead()
        // covers the crossing whether or not this link is a cut link.
        Packet p = std::move(pkt);
        sim_.scheduleOnLane(0, sim_.now() + scaled(hop_delay),
                            [this, p = std::move(p)]() mutable {
                              sim_.spans().end(p.hop_span);
                              p.hop_span = 0;
                              deliverLocal(std::move(p));
                            });
      } else if (laned_ && laneOf(to) != sim_.currentLane()) {
        // Mid-route partition crossing: only cut links connect different
        // partitions, and every cut link's latency >= the plan's
        // cut_latency >= wireLookahead().
        Packet p = std::move(pkt);
        sim_.scheduleOnLane(laneOf(to), sim_.now() + scaled(hop_delay),
                            [this, to, p = std::move(p)]() mutable {
                              sim_.spans().end(p.hop_span);
                              p.hop_span = 0;
                              forward(to, std::move(p));
                            });
      } else {
        const std::uint32_t slot = parkInFlight(std::move(pkt));
        sim_.scheduleAfter(scaled(hop_delay), [this, to, slot] {
          Packet p = takeInFlight(slot);
          sim_.spans().end(p.hop_span);
          p.hop_span = 0;
          if (to == p.dst) {
            deliverLocal(std::move(p));
          } else {
            forward(to, std::move(p));
          }
        });
      }
    }
    startTransmit(link, from);
  });
}

void PacketNetwork::deliverLocal(Packet&& pkt) {
  if (!topo_.node(pkt.dst).up) {
    // Crashed hosts receive nothing: the silent blackhole that makes peers'
    // SYN/RTO timers (rather than an oracle) detect the failure.
    c_dropped_down_.inc();
    c_dropped_node_down_.inc();
    if (trace_.enabled()) trace_.record(sim_.now(), "drop_node_down", static_cast<double>(pkt.wireBytes()), topo_.node(pkt.dst).name);
    sim_.spans().endWith(pkt.span, "dropped", "node_down");
    return;
  }
  // Final disposition of the transit span: the payload reached the
  // destination stack (whether or not a transport is attached).
  sim_.spans().end(pkt.span);
  PacketHandler& h = handlers_.at(static_cast<size_t>(pkt.dst));
  if (!h) {
    MG_LOG_TRACE("net") << "packet to unattached node " << topo_.node(pkt.dst).name;
    return;
  }
  c_delivered_.inc();
  c_bytes_delivered_.inc(static_cast<std::int64_t>(pkt.payload.size()));
  if (trace_.enabled()) trace_.record(sim_.now(), "deliver", static_cast<double>(pkt.payload.size()));
  h(std::move(pkt));
}

void PacketNetwork::dropQueued(LinkId link, obs::Counter& cause) {
  for (int dir = 0; dir < 2; ++dir) dropQueuedDir(link, dir, cause);
}

void PacketNetwork::dropQueuedDir(LinkId link, int dir, obs::Counter& cause) {
  LinkQueue& q = link_queues_.at(static_cast<size_t>(link) * 2 + static_cast<size_t>(dir));
  // The head packet may be mid-transmission; its completion event still
  // references queue.front(), so leave it (the completion path drops it
  // because the link is down). Everything behind it is dropped here.
  const size_t keep = q.busy ? 1 : 0;
  while (q.queue.size() > keep) {
    q.queued_bytes -= q.queue.back().wireBytes();
    sim_.spans().endWith(q.queue.back().span, "dropped", "purged");
    q.queue.pop_back();
    c_dropped_down_.inc();
    cause.inc();
  }
}

void PacketNetwork::onLinkDown(LinkId link) { dropQueued(link, c_dropped_link_down_); }

void PacketNetwork::onNodeDown(NodeId node) {
  // Packets queued *toward* the dead node are lost (they could only
  // blackhole at delivery). The outbound direction is deliberately left to
  // drain: those packets were already handed to the NIC before the crash
  // instant — they carry the dying kernel's last-gasp RSTs, which is how
  // established peers learn of the crash promptly. The links themselves
  // stay up: a crashed host's cable is still plugged in.
  for (LinkId lid : topo_.linksAt(node)) {
    const Link& l = topo_.link(lid);
    const NodeId peer = (l.a == node) ? l.b : l.a;
    const int dir_in = (peer == l.a) ? 0 : 1;  // peer -> node
    dropQueuedDir(lid, dir_in, c_dropped_node_down_);
  }
}

void PacketNetwork::saveState(obs::StateWriter& w) const {
  NetworkModel::saveState(w);
  w.u64("net.packet.queues", link_queues_.size());
  for (std::size_t q = 0; q < link_queues_.size(); ++q) {
    const LinkQueue& lq = link_queues_[q];
    if (lq.queue.empty() && !lq.busy && lq.busy_ns == 0) continue;  // cold queue
    w.u64("q", q);
    w.u64("depth", lq.queue.size());
    w.i64("bytes", lq.queued_bytes);
    w.boolean("busy", lq.busy);
    w.i64("busy_since", lq.busy_since);
    w.i64("busy_ns", lq.busy_ns);
  }
  w.u64("net.packet.lanes", rngs_.size());
  for (const util::Rng& rng : rngs_) {
    for (std::uint64_t word : rng.fingerprint()) w.u64("rng", word);
  }
  for (std::size_t lane = 0; lane < flight_.size(); ++lane) {
    const FlightPool& pool = flight_[lane];
    w.u64("flight.in_use", pool.slots.size() - pool.free.size());
  }
}

void PacketNetwork::validateLinkParams(LinkId link, const net::LinkParams& params) const {
  // Per-segment serialization time divides by bandwidth, so the packet
  // pipeline (and the hybrid model, which inherits this check for its
  // escalated traffic) cannot express a fully-starved link; only the pure
  // fluid model accepts bandwidth 0 (flows stall until restore).
  if (params.bandwidth_bps <= 0) {
    throw UsageError("packet model needs positive link bandwidth");
  }
  if (laned_ && plan_.partitionOf(topo_.link(link).a) != plan_.partitionOf(topo_.link(link).b) &&
      params.latency < plan_.cut_latency) {
    // Degrading a cut link below the planned cut latency would invalidate
    // the engine's lookahead. The partition plan is a pure function of the
    // static topology, so this is a configuration error, not a race.
    throw UsageError("cannot degrade a cut link's latency below the partition lookahead");
  }
}

}  // namespace mg::net
