#include "net/hybrid_network.h"

#include <algorithm>
#include <charconv>

#include "util/error.h"

namespace mg::net {

bool globMatch(std::string_view pattern, std::string_view text) {
  // Iterative matcher with single-star backtracking: on mismatch past a
  // '*', re-anchor the star to swallow one more character.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == '?' || pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

namespace {

int parsePort(std::string_view s, const std::string& pattern) {
  int v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || ptr != s.data() + s.size() || v < 0 || v > 65535) {
    throw ConfigError("bad port in --netmodel-detail pattern: " + pattern);
  }
  return v;
}

}  // namespace

DetailSelector::DetailSelector(const Topology& topo, const std::vector<std::string>& patterns) {
  node_detail_.assign(static_cast<std::size_t>(topo.nodeCount()), 0);
  for (const std::string& pattern : patterns) {
    if (pattern.empty()) throw ConfigError("empty --netmodel-detail pattern");
    std::string_view body = pattern;
    if (body.starts_with("port:")) {
      body.remove_prefix(5);
      const std::size_t dash = body.find('-');
      int lo, hi;
      if (dash == std::string_view::npos) {
        lo = hi = parsePort(body, pattern);
      } else {
        lo = parsePort(body.substr(0, dash), pattern);
        hi = parsePort(body.substr(dash + 1), pattern);
      }
      if (lo > hi) throw ConfigError("empty port range in --netmodel-detail pattern: " + pattern);
      port_ranges_.emplace_back(lo, hi);
      any_ = true;
      continue;
    }
    if (body.starts_with("host:")) body.remove_prefix(5);
    bool matched = false;
    for (NodeId n = 0; n < topo.nodeCount(); ++n) {
      if (globMatch(body, topo.node(n).name)) {
        node_detail_[static_cast<std::size_t>(n)] = 1;
        matched = true;
      }
    }
    if (!matched) {
      throw ConfigError("--netmodel-detail host pattern matches no node: " + pattern);
    }
    any_ = true;
  }
}

bool DetailSelector::matches(NodeId src, NodeId dst, std::uint16_t dst_port) const {
  if (!any_) return false;
  if (!node_detail_.empty() &&
      (node_detail_[static_cast<std::size_t>(src)] || node_detail_[static_cast<std::size_t>(dst)])) {
    return true;
  }
  for (const auto& [lo, hi] : port_ranges_) {
    if (dst_port >= lo && dst_port <= hi) return true;
  }
  return false;
}

HybridNetwork::HybridNetwork(sim::Simulator& sim, Topology topo, HybridNetworkOptions opts)
    : PacketNetwork(sim, std::move(topo), opts.packet),
      selector_(topology(), opts.detail),
      engine_(*this,
              [&opts] {
                FlowNetworkOptions f = opts.flow;
                f.time_scale = opts.packet.time_scale;
                return f;
              }()) {}

void HybridNetwork::send(Packet&& pkt) {
  if (escalate(pkt.src, pkt.dst, pkt.dst_port)) {
    PacketNetwork::send(std::move(pkt));
  } else {
    engine_.sendPacket(std::move(pkt));
  }
}

void HybridNetwork::onLinkDown(LinkId link) {
  PacketNetwork::onLinkDown(link);
  engine_.abortFlowsOnLink(link, "link_down");
}

void HybridNetwork::onLinkUp(LinkId link) {
  // Up transitions touch only the packet side: a restored link carries no
  // fluid flows (they were aborted on the way down) and routes are fixed at
  // flow start, so no active flow's share can change.
  PacketNetwork::onLinkUp(link);
}

void HybridNetwork::onNodeDown(NodeId node) {
  PacketNetwork::onNodeDown(node);
  engine_.abortFlowsAtNode(node, "node_down");
}

void HybridNetwork::onNodeUp(NodeId node) {
  PacketNetwork::onNodeUp(node);
}

void HybridNetwork::onLinkParamsChanged(LinkId link) {
  PacketNetwork::onLinkParamsChanged(link);
  // Re-share only the contention component touching the changed link; a
  // degrade under escalated packet traffic never reaches the fluid engine.
  engine_.onLinkChanged(link);
}

}  // namespace mg::net
