#include "net/topology.h"

#include <algorithm>
#include <queue>

#include "util/error.h"
#include "util/strings.h"

namespace mg::net {

NodeId Topology::addHost(std::string name) {
  if (findNode(name) != kNoNode) throw ConfigError("duplicate node '" + name + "'");
  nodes_.push_back(Node{std::move(name), NodeKind::Host});
  adjacency_.emplace_back();
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  node_index_.emplace(nodes_.back().name, id);
  return id;
}

NodeId Topology::addRouter(std::string name) {
  if (findNode(name) != kNoNode) throw ConfigError("duplicate node '" + name + "'");
  nodes_.push_back(Node{std::move(name), NodeKind::Router});
  adjacency_.emplace_back();
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  node_index_.emplace(nodes_.back().name, id);
  return id;
}

LinkId Topology::addLink(std::string name, NodeId a, NodeId b, double bandwidth_bps,
                         sim::SimTime latency, std::int64_t queue_bytes, double loss_rate) {
  if (a < 0 || a >= nodeCount() || b < 0 || b >= nodeCount()) {
    throw ConfigError("link '" + name + "' references unknown node");
  }
  if (a == b) throw ConfigError("link '" + name + "' is a self-loop");
  if (bandwidth_bps <= 0) throw ConfigError("link '" + name + "' needs positive bandwidth");
  if (latency < 0) throw ConfigError("link '" + name + "' has negative latency");
  if (loss_rate < 0 || loss_rate >= 1.0) throw ConfigError("link '" + name + "' loss rate out of [0,1)");
  Link l;
  l.name = std::move(name);
  l.a = a;
  l.b = b;
  l.bandwidth_bps = bandwidth_bps;
  l.latency = latency;
  l.queue_bytes = queue_bytes;
  l.loss_rate = loss_rate;
  links_.push_back(std::move(l));
  LinkId id = static_cast<LinkId>(links_.size() - 1);
  adjacency_[static_cast<size_t>(a)].push_back(id);
  adjacency_[static_cast<size_t>(b)].push_back(id);
  // emplace keeps the first id on a duplicate name (the old scan order).
  link_index_.emplace(links_.back().name, id);
  return id;
}

NodeId Topology::findNode(const std::string& name) const {
  auto it = node_index_.find(name);
  return it == node_index_.end() ? kNoNode : it->second;
}

LinkId Topology::findLink(const std::string& name) const {
  auto it = link_index_.find(name);
  return it == link_index_.end() ? kNoLink : it->second;
}

NodeId Topology::peer(LinkId id, NodeId from) const {
  const Link& l = link(id);
  if (l.a == from) return l.b;
  if (l.b == from) return l.a;
  throw UsageError("node is not an endpoint of link '" + l.name + "'");
}

Topology Topology::fromConfig(const util::Config& cfg) {
  Topology topo;
  for (const auto* sec : cfg.sectionsOfType("node")) {
    const std::string kind = util::toLower(sec->getString("kind", "host"));
    if (kind == "router") {
      topo.addRouter(sec->name());
    } else if (kind == "host") {
      topo.addHost(sec->name());
    } else {
      throw ConfigError("node '" + sec->name() + "' has unknown kind '" + kind + "'");
    }
  }
  for (const auto* sec : cfg.sectionsOfType("link")) {
    NodeId a = topo.findNode(sec->getString("a"));
    NodeId b = topo.findNode(sec->getString("b"));
    if (a == kNoNode || b == kNoNode) {
      throw ConfigError("link '" + sec->name() + "' references unknown node");
    }
    topo.addLink(sec->name(), a, b, sec->getBandwidth("bandwidth"),
                 sim::fromSeconds(sec->getTime("latency")),
                 sec->has("queue") ? sec->getSize("queue") : 256 * 1024,
                 sec->getDouble("loss", 0.0));
  }
  return topo;
}

// ---------------------------------------------------------------------------
// RoutingTable
// ---------------------------------------------------------------------------

namespace {
constexpr double kMtuBits = 1500.0 * 8.0;
}

RoutingTable::RoutingTable(const Topology& topo) { recompute(topo); }

void RoutingTable::recompute(const Topology& topo) {
  std::lock_guard<std::mutex> lock(build_mu_);
  topo_ = &topo;
  n_ = topo.nodeCount();
  storage_.clear();
  // std::atomic is neither copyable nor movable, so resize via a fresh vector.
  std::vector<std::atomic<const Column*>> fresh(static_cast<size_t>(n_));
  for (auto& slot : fresh) slot.store(nullptr, std::memory_order_relaxed);
  cols_.swap(fresh);
}

const RoutingTable::Column& RoutingTable::columnFor(NodeId dst) const {
  const Column* col = cols_[static_cast<size_t>(dst)].load(std::memory_order_acquire);
  if (col) return *col;

  std::lock_guard<std::mutex> lock(build_mu_);
  col = cols_[static_cast<size_t>(dst)].load(std::memory_order_relaxed);
  if (col) return *col;

  const Topology& topo = *topo_;
  // One Dijkstra per destination, relaxing toward the destination so that
  // column(dst).next[from] is the first link on the shortest from->dst path.
  // Links are symmetric, so shortest paths to dst equal reversed paths
  // from dst.
  std::vector<double> dist(static_cast<size_t>(n_), std::numeric_limits<double>::infinity());
  std::vector<LinkId> via(static_cast<size_t>(n_), kNoLink);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<size_t>(dst)] = 0;
  pq.emplace(0.0, dst);
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<size_t>(u)]) continue;
    // Down nodes do not forward: no path may transit them. They do keep a
    // first hop *out* (dist/via assigned when a live neighbor relaxes into
    // them), so a crashing host's already-queued packets — its last-gasp
    // RSTs — can still leave.
    if (!topo.node(u).up && u != dst) continue;
    for (LinkId lid : topo.linksAt(u)) {
      const Link& l = topo.link(lid);
      if (!l.up) continue;
      const NodeId v = topo.peer(lid, u);
      const double w = sim::toSeconds(l.latency) + kMtuBits / l.bandwidth_bps;
      const double nd = d + w;
      auto& dv = dist[static_cast<size_t>(v)];
      // Strictly-better, or equal-cost tie broken toward the lower
      // upstream node id for determinism.
      if (nd < dv - 1e-15 || (nd <= dv + 1e-15 && via[static_cast<size_t>(v)] != kNoLink &&
                              u < topo.peer(via[static_cast<size_t>(v)], v))) {
        dv = std::min(dv, nd);
        via[static_cast<size_t>(v)] = lid;
        pq.emplace(nd, v);
      }
    }
  }
  via[static_cast<size_t>(dst)] = kNoLink;

  auto built = std::make_unique<Column>();
  built->next = std::move(via);
  const Column* ptr = built.get();
  storage_.push_back(std::move(built));
  cols_[static_cast<size_t>(dst)].store(ptr, std::memory_order_release);
  return *ptr;
}

int RoutingTable::columnsBuilt() const {
  std::lock_guard<std::mutex> lock(build_mu_);
  return static_cast<int>(storage_.size());
}

LinkId RoutingTable::nextLink(NodeId from, NodeId dst) const {
  if (from < 0 || from >= n_ || dst < 0 || dst >= n_) throw UsageError("route endpoint out of range");
  if (from == dst) return kNoLink;
  return columnFor(dst).next[static_cast<size_t>(from)];
}

std::vector<LinkId> RoutingTable::path(NodeId src, NodeId dst) const {
  std::vector<LinkId> out;
  NodeId at = src;
  while (at != dst) {
    LinkId lid = nextLink(at, dst);
    if (lid == kNoLink) return {};
    out.push_back(lid);
    at = topo_->peer(lid, at);
    if (out.size() > static_cast<size_t>(n_)) {
      throw UsageError("routing loop detected");  // cannot happen with Dijkstra next-hops
    }
  }
  return out;
}

sim::SimTime RoutingTable::pathLatency(const Topology& topo, NodeId src, NodeId dst) const {
  if (src == dst) return 0;
  auto p = path(src, dst);
  if (p.empty()) return -1;
  sim::SimTime total = 0;
  for (LinkId lid : p) total += topo.link(lid).latency;
  return total;
}

double RoutingTable::bottleneckBandwidth(const Topology& topo, NodeId src, NodeId dst) const {
  if (src == dst) return 0;
  auto p = path(src, dst);
  if (p.empty()) return 0;
  double bw = std::numeric_limits<double>::infinity();
  for (LinkId lid : p) bw = std::min(bw, topo.link(lid).bandwidth_bps);
  return bw;
}

}  // namespace mg::net
