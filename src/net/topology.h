// Network topology: a graph of nodes (hosts and routers) connected by
// full-duplex links with bandwidth, propagation latency, queue capacity and
// an optional random loss rate. Static shortest-path routing tables are
// computed with Dijkstra over a latency+serialization weight.
//
// This is the structural half of the paper's NSE substitute: "The VINT/NSE
// simulation system allows definition of an arbitrary network configuration."
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/time.h"
#include "util/config.h"

namespace mg::net {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

constexpr NodeId kNoNode = -1;
constexpr LinkId kNoLink = -1;

enum class NodeKind { Host, Router };

struct Node {
  std::string name;
  NodeKind kind = NodeKind::Host;
  bool up = true;  // a crashed host / failed router neither sends nor receives
};

/// A full-duplex link: both directions have independent queues in the
/// PacketNetwork but share these parameters.
struct Link {
  std::string name;
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  double bandwidth_bps = 0;
  sim::SimTime latency = 0;
  std::int64_t queue_bytes = 256 * 1024;  // drop-tail buffer per direction
  double loss_rate = 0.0;                 // random per-packet loss (failure injection)
  bool up = true;
};

class Topology {
 public:
  NodeId addHost(std::string name);
  NodeId addRouter(std::string name);
  LinkId addLink(std::string name, NodeId a, NodeId b, double bandwidth_bps,
                 sim::SimTime latency, std::int64_t queue_bytes = 256 * 1024,
                 double loss_rate = 0.0);

  const Node& node(NodeId id) const { return nodes_.at(static_cast<size_t>(id)); }
  const Link& link(LinkId id) const { return links_.at(static_cast<size_t>(id)); }
  Link& mutableLink(LinkId id) { return links_.at(static_cast<size_t>(id)); }
  Node& mutableNode(NodeId id) { return nodes_.at(static_cast<size_t>(id)); }

  int nodeCount() const { return static_cast<int>(nodes_.size()); }
  int linkCount() const { return static_cast<int>(links_.size()); }

  /// Node id by name; kNoNode if absent. O(1) via the name index (generated
  /// 100k-host grids call this once per addHost/addLink — a linear scan
  /// here made topology construction quadratic).
  NodeId findNode(const std::string& name) const;
  /// Link id by name; kNoLink if absent (first of that name when
  /// duplicates exist, matching the historical scan order).
  LinkId findLink(const std::string& name) const;

  /// Links incident to a node.
  const std::vector<LinkId>& linksAt(NodeId id) const { return adjacency_.at(static_cast<size_t>(id)); }

  /// The other endpoint of a link.
  NodeId peer(LinkId id, NodeId from) const;

  /// Build a topology from config sections:
  ///   [node r0]      kind = router
  ///   [node h0]      kind = host        (kind defaults to host)
  ///   [link l0]      a = h0
  ///                  b = r0
  ///                  bandwidth = 100Mbps
  ///                  latency = 0.1ms
  ///                  queue = 256KB       (optional)
  ///                  loss = 0.0          (optional)
  static Topology fromConfig(const util::Config& cfg);

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
  std::unordered_map<std::string, NodeId> node_index_;
  std::unordered_map<std::string, LinkId> link_index_;
};

/// All-pairs next-hop routing, recomputable when links change state.
///
/// Routes are materialized lazily, one destination *column* at a time, on
/// the first lookup toward that destination: a 100k-node grid whose traffic
/// touches a handful of destinations pays for a handful of Dijkstra runs,
/// not n of them (and n * n table cells). Column reads after publication are
/// a single acquire load, so wire lanes can look up routes concurrently;
/// the build path is serialized by a mutex and publishes with a release
/// store. recompute() (barrier-only under parallel execution) drops every
/// column, so fault-driven topology changes invalidate all cached routes.
class RoutingTable {
 public:
  /// Routes are computed over all `up` links, skipping down nodes (a crashed
  /// host / failed router does not forward — paths never transit it). Weight
  /// of a link is its latency plus the serialization time of one MTU-sized
  /// packet, so routing prefers fast, short links; ties break toward lower
  /// node ids (determinism).
  explicit RoutingTable(const Topology& topo);

  /// Invalidate after link/node state changes. Must not race with lookups
  /// (callers run it at a barrier or in single-threaded setup).
  void recompute(const Topology& topo);

  /// The link to take from `from` toward `dst`; kNoLink if unreachable.
  LinkId nextLink(NodeId from, NodeId dst) const;

  /// Full path (sequence of links) from src to dst; empty if unreachable or
  /// src == dst.
  std::vector<LinkId> path(NodeId src, NodeId dst) const;

  /// End-to-end propagation latency along path(src, dst); -1 if unreachable.
  sim::SimTime pathLatency(const Topology& topo, NodeId src, NodeId dst) const;

  /// Minimum bandwidth along path(src, dst); 0 if unreachable.
  double bottleneckBandwidth(const Topology& topo, NodeId src, NodeId dst) const;

  /// Destination columns materialized since the last recompute (scale
  /// diagnostics: how many Dijkstra runs the traffic pattern actually paid
  /// for).
  int columnsBuilt() const;

 private:
  // next[from] = link to take from `from` toward the column's destination.
  struct Column {
    std::vector<LinkId> next;
  };

  const Column& columnFor(NodeId dst) const;

  int n_ = 0;
  const Topology* topo_ = nullptr;
  // cols_[dst] is null until first use; unique_ptr keeps Column addresses
  // stable while other columns are built.
  mutable std::vector<std::atomic<const Column*>> cols_;
  mutable std::vector<std::unique_ptr<Column>> storage_;
  mutable std::mutex build_mu_;
};

}  // namespace mg::net
