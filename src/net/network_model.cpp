#include "net/network_model.h"

#include <cmath>

#include "util/error.h"
#include "util/strings.h"

namespace mg::net {

NetModelKind parseNetModelKind(const std::string& s) {
  const std::string v = util::toLower(s);
  if (v == "packet") return NetModelKind::Packet;
  if (v == "flow") return NetModelKind::Flow;
  if (v == "hybrid") return NetModelKind::Hybrid;
  throw ConfigError("unknown network model '" + s + "' (expected packet, flow or hybrid)");
}

const char* netModelKindName(NetModelKind k) {
  switch (k) {
    case NetModelKind::Packet:
      return "packet";
    case NetModelKind::Flow:
      return "flow";
    case NetModelKind::Hybrid:
      return "hybrid";
  }
  return "?";
}

NetworkModel::NetworkModel(sim::Simulator& sim, Topology topo, double time_scale)
    : sim_(sim),
      topo_(std::move(topo)),
      routing_(topo_),
      c_route_recomputes_(sim.metrics().counter("net.route.recomputes")),
      time_scale_(time_scale) {
  if (time_scale_ <= 0) throw UsageError("time_scale must be positive");
  unit_time_scale_ = (time_scale_ == 1.0);
  handlers_.resize(static_cast<size_t>(topo_.nodeCount()));
}

sim::SimTime NetworkModel::scaledSlow(sim::SimTime t) const {
  return static_cast<sim::SimTime>(std::llround(static_cast<double>(t) * time_scale_));
}

void NetworkModel::attachHost(NodeId node, PacketHandler handler) {
  handlers_.at(static_cast<size_t>(node)) = std::move(handler);
}

void NetworkModel::recomputeRoutes() {
  routing_.recompute(topo_);
  c_route_recomputes_.inc();
}

void NetworkModel::setLinkUp(LinkId link, bool up) {
  sim_.runAtBarrier([this, link, up] {
    Link& l = topo_.mutableLink(link);
    if (l.up == up) return;
    l.up = up;
    if (up) {
      onLinkUp(link);
    } else {
      onLinkDown(link);
    }
    recomputeRoutes();
  });
}

void NetworkModel::setNodeUp(NodeId node, bool up) {
  sim_.runAtBarrier([this, node, up] {
    Node& n = topo_.mutableNode(node);
    if (n.up == up) return;
    n.up = up;
    if (up) {
      onNodeUp(node);
    } else {
      onNodeDown(node);
    }
    recomputeRoutes();
  });
}

LinkParams NetworkModel::linkParams(LinkId link) const {
  const Link& l = topo_.link(link);
  return LinkParams{l.bandwidth_bps, l.latency, l.loss_rate};
}

void NetworkModel::applyLinkParams(LinkId link, const LinkParams& params) {
  // Validate synchronously (the caller's error), mutate at the barrier.
  // Zero bandwidth is a legal *degraded* state (fluid flows stall on it and
  // routing steers new paths around it); models that cannot represent it
  // reject it in validateLinkParams (the packet model divides by bandwidth
  // per segment).
  if (params.bandwidth_bps < 0) throw UsageError("link bandwidth must be non-negative");
  if (params.latency < 0 || params.loss_rate < 0 || params.loss_rate >= 1.0) {
    throw UsageError("bad link parameters");
  }
  validateLinkParams(link, params);
  sim_.runAtBarrier([this, link, params] {
    Link& l = topo_.mutableLink(link);
    l.bandwidth_bps = params.bandwidth_bps;
    l.latency = params.latency;
    l.loss_rate = params.loss_rate;
    onLinkParamsChanged(link);
    recomputeRoutes();
  });
}

void NetworkModel::setPartitionPlan(const PartitionPlan& plan) {
  (void)plan;
  throw UsageError(std::string("network model '") + netModelKindName(kind()) +
                   "' does not shard across event lanes");
}

void NetworkModel::saveState(obs::StateWriter& w) const {
  w.u64("net.links", topo_.linkCount());
  for (LinkId l = 0; l < topo_.linkCount(); ++l) {
    const Link& link = topo_.link(l);
    w.str("link", link.name);
    w.boolean("up", link.up);
    w.f64("bw", link.bandwidth_bps);
    w.i64("lat", link.latency);
    w.f64("loss", link.loss_rate);
  }
  w.u64("net.nodes", topo_.nodeCount());
  for (NodeId n = 0; n < topo_.nodeCount(); ++n) {
    const Node& node = topo_.node(n);
    w.str("node", node.name);
    w.boolean("up", node.up);
  }
}

}  // namespace mg::net
