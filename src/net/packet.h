// The on-wire unit of the packet-level simulator.
//
// Header-size constants follow TCP/IPv4 over Ethernet so that protocol
// efficiency (goodput vs raw link rate) falls out of the model rather than
// being an input: a 100 Mbps Ethernet saturates near 11.6 MB/s of payload,
// as a real MPI-over-TCP run does.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"

namespace mg::net {

/// IP payload limit per packet (Ethernet MTU).
constexpr std::int64_t kMtuBytes = 1500;
/// IPv4 + TCP headers.
constexpr std::int64_t kTcpIpHeaderBytes = 40;
/// IPv4 + UDP headers.
constexpr std::int64_t kUdpIpHeaderBytes = 28;
/// Ethernet framing per packet: preamble(8) + header(14) + FCS(4) + IFG(12).
constexpr std::int64_t kEthernetOverheadBytes = 38;
/// Maximum TCP payload per packet.
constexpr std::int64_t kTcpMss = kMtuBytes - kTcpIpHeaderBytes;  // 1460

enum class Protocol : std::uint8_t { Tcp, Udp };

/// TCP flag bits.
enum TcpFlags : std::uint8_t {
  kFlagSyn = 1,
  kFlagAck = 2,
  kFlagFin = 4,
  kFlagRst = 8,
};

struct Packet {
  NodeId src = kNoNode;
  NodeId dst = kNoNode;
  Protocol protocol = Protocol::Tcp;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;

  // TCP fields (ignored for UDP).
  std::uint8_t flags = 0;
  std::uint64_t seq = 0;  // first payload byte's stream offset
  std::uint64_t ack = 0;  // next expected stream offset (valid with kFlagAck)
  std::int64_t window = 0;  // advertised receive window, bytes

  // UDP fields.
  std::uint32_t datagram_id = 0;   // which datagram a fragment belongs to
  std::uint16_t fragment = 0;      // fragment index within the datagram
  std::uint16_t fragment_count = 1;

  std::vector<std::uint8_t> payload;

  // Causal-trace context (obs::SpanId; 0 = untraced). `span` is the
  // per-packet transit span opened by the sending transport and closed by
  // the network at final disposition (delivery or drop); it carries the
  // sender's causality across hosts. `hop_span` is the currently-open
  // per-hop child span, owned by the link layer.
  std::uint64_t span = 0;
  std::uint64_t hop_span = 0;

  /// IP-layer size: headers plus payload.
  std::int64_t ipBytes() const {
    const std::int64_t hdr = (protocol == Protocol::Tcp) ? kTcpIpHeaderBytes : kUdpIpHeaderBytes;
    return hdr + static_cast<std::int64_t>(payload.size());
  }

  /// Bytes occupying link queues and transmission time (adds framing).
  std::int64_t wireBytes() const { return ipBytes() + kEthernetOverheadBytes; }
};

}  // namespace mg::net
