// A TCP-like reliable byte-stream transport over the packet network.
//
// Implements the mechanisms that shape Grid traffic behaviour at the scale
// the paper models: 3-way handshake, cumulative ACKs, sliding window with
// slow start / congestion avoidance, RTO + fast retransmit, receiver flow
// control with zero-window probing, and FIN/RST teardown. Omissions relative
// to a kernel TCP (SACK, delayed ACK, Nagle, timestamps) are deliberate:
// they trade a little realism for determinism and clarity, and none change
// the latency/bandwidth shapes the validation experiments measure.
//
// All app-facing calls (connect/accept/send/recv) block the calling
// simulated process; protocol machinery runs in event context.
#pragma once

#include <compare>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>

#include "net/network_model.h"
#include "sim/channel.h"
#include "sim/condition.h"

namespace mg::net {

/// Peer reset the connection or the transport hit an unrecoverable error.
class ConnectionReset : public mg::Error {
 public:
  explicit ConnectionReset(const std::string& what) : mg::Error("connection reset: " + what) {}
};

/// connect() could not establish: refused (RST) or retries exhausted.
class ConnectionRefused : public mg::Error {
 public:
  explicit ConnectionRefused(const std::string& what) : mg::Error("connection refused: " + what) {}
};

struct TcpOptions {
  std::int64_t send_buffer = 1 << 20;   // bytes
  std::int64_t recv_buffer = 1 << 20;   // bytes
  std::int64_t initial_cwnd = 2 * kTcpMss;
  std::int64_t initial_ssthresh = 64 * 1024;
  sim::SimTime min_rto = 200 * sim::kMillisecond;  // virtual time
  sim::SimTime max_rto = 10 * sim::kSecond;
  sim::SimTime syn_timeout = 1 * sim::kSecond;
  int syn_retries = 5;
  sim::SimTime persist_interval = 500 * sim::kMillisecond;
};

class TcpStack;

/// One established (or in-progress) connection endpoint.
class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  ~TcpConnection() = default;
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Blocking send of exactly n bytes (copies into the send buffer, waiting
  /// for space). Throws ConnectionReset on error, UsageError after close().
  void send(const void* data, std::size_t n);

  /// Blocking receive of 1..max bytes; returns 0 at orderly EOF.
  std::size_t recv(void* buf, std::size_t max);

  /// Blocking receive of exactly n bytes; throws ConnectionReset if the
  /// stream ends early.
  void recvExact(void* buf, std::size_t n);

  /// Queue an orderly close (FIN after all buffered data). Idempotent.
  void close();

  NodeId localNode() const { return local_node_; }
  NodeId remoteNode() const { return remote_node_; }
  std::uint16_t localPort() const { return local_port_; }
  std::uint16_t remotePort() const { return remote_port_; }
  bool established() const;

  std::int64_t bytesSent() const { return bytes_sent_; }
  std::int64_t bytesReceived() const { return bytes_received_; }
  std::int64_t retransmits() const { return retransmits_; }

 private:
  friend class TcpStack;
  enum class State { SynSent, SynReceived, Established, Closed };

  TcpConnection(TcpStack& stack, NodeId remote_node, std::uint16_t local_port,
                std::uint16_t remote_port, const TcpOptions& opts);

  // -- protocol engine (event context) --
  void onPacket(Packet&& pkt);
  void onAck(std::uint64_t ack, std::int64_t window, bool pure_ack);
  void onData(Packet&& pkt);
  void startConnect();
  void sendSyn(bool is_retry);
  void sendSynAck();
  void sendPureAck();
  void sendFinSegment();
  void sendSegment(std::uint64_t seq, std::size_t len, bool is_retransmit);
  void pump();
  void armRto();
  void cancelRto();
  void onRtoFire();
  void armPersist();
  void onPersistFire();
  void enterError(const std::string& what);
  void maybeFinish();

  std::int64_t effectiveWindow() const;
  std::int64_t advertisedWindow() const;
  std::uint64_t dataEnd() const { return snd_una_ + send_buf_.size(); }
  Packet makePacket(std::uint8_t flags) const;
  void updateRttEstimate(sim::SimTime sample);
  sim::SimTime kernelTime(sim::SimTime virtual_time) const;

  TcpStack& stack_;
  sim::Simulator& sim_;
  TcpOptions opts_;

  NodeId local_node_;
  NodeId remote_node_;
  std::uint16_t local_port_;
  std::uint16_t remote_port_;

  State state_ = State::Closed;
  bool error_ = false;
  std::string error_what_;
  int syn_attempts_ = 0;

  // Send side. send_buf_ holds stream bytes [snd_una_, snd_una_+size).
  std::deque<std::uint8_t> send_buf_;
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  double cwnd_ = 0;
  double ssthresh_ = 0;
  std::int64_t peer_window_ = kTcpMss;
  int dup_acks_ = 0;
  // NewReno-style recovery: while in recovery, each partial ACK retransmits
  // the next hole instead of waiting out an RTO (burst losses would
  // otherwise stall 200 ms per hole).
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;
  bool fin_queued_ = false;
  bool fin_sent_ = false;
  bool fin_acked_ = false;
  std::uint64_t fin_seq_ = 0;
  bool local_closed_ = false;  // app called close()

  // RTT estimation (Karn: one sample at a time, never from retransmits).
  bool rtt_pending_ = false;
  std::uint64_t rtt_seq_ = 0;
  sim::SimTime rtt_sent_at_ = 0;
  sim::SimTime srtt_ = 0;
  sim::SimTime rttvar_ = 0;
  sim::SimTime rto_ = 0;  // kernel-clock units

  sim::EventId rto_event_ = 0;
  sim::EventId persist_event_ = 0;

  // Receive side.
  std::deque<std::uint8_t> recv_buf_;
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::vector<std::uint8_t>> out_of_order_;
  std::int64_t out_of_order_bytes_ = 0;
  bool peer_fin_ = false;
  std::uint64_t peer_fin_seq_ = 0;
  std::int64_t last_advertised_window_ = 0;

  sim::Condition established_cond_;
  sim::Condition readable_;
  sim::Condition writable_;

  std::int64_t bytes_sent_ = 0;
  std::int64_t bytes_received_ = 0;
  std::int64_t retransmits_ = 0;
};

/// A passive listening socket; accept() yields connections in SYN order.
class TcpListener {
 public:
  /// Block until a connection completes the handshake.
  std::shared_ptr<TcpConnection> accept();

  /// Accept with timeout; nullptr on expiry.
  std::shared_ptr<TcpConnection> acceptFor(sim::SimTime timeout);

  std::uint16_t port() const { return port_; }
  void close();

 private:
  friend class TcpStack;
  TcpListener(TcpStack& stack, std::uint16_t port);

  TcpStack& stack_;
  std::uint16_t port_;
  bool closed_ = false;
  std::unique_ptr<sim::Channel<std::shared_ptr<TcpConnection>>> backlog_;
};

/// The per-host TCP endpoint table. Packets are fed in by HostStack.
class TcpStack {
 public:
  TcpStack(NetworkModel& net, NodeId node, TcpOptions opts = {});
  ~TcpStack();
  TcpStack(const TcpStack&) = delete;
  TcpStack& operator=(const TcpStack&) = delete;

  /// Start listening; throws UsageError if the port is taken.
  std::shared_ptr<TcpListener> listen(std::uint16_t port);

  /// Blocking active open; throws ConnectionRefused on failure.
  std::shared_ptr<TcpConnection> connect(NodeId dst, std::uint16_t port);

  /// Transport dispatch (called by HostStack).
  void onPacket(Packet&& pkt);

  /// A passive connection completed its handshake; hand it to the listener.
  void connectionEstablished(TcpConnection& conn);

  /// Host crash: send an RST to every live peer, error every connection
  /// (blocked senders/receivers unwind with ConnectionReset) and close all
  /// listeners. The RSTs are scheduled before the node is marked down, so
  /// they escape onto the wire like a dying kernel's last gasp.
  void abortAll(const std::string& why);

  NodeId node() const { return node_; }
  NetworkModel& network() { return net_; }
  sim::Simulator& simulator() { return net_.simulator(); }
  const TcpOptions& options() const { return opts_; }

  /// Connections still in the endpoint table — everything that is neither
  /// fully closed (FINs exchanged and drained) nor reset. The explorer's
  /// "all sockets closed or reset" invariant reads this after a run drains.
  std::size_t openConnections() const { return connections_.size(); }
  std::size_t openListeners() const { return listeners_.size(); }

  /// Fold the endpoint table into `w` (DESIGN.md §11): connection keys with
  /// their transport-machine state (seq/ack/window/cwnd, buffered bytes,
  /// FIN flags, RTO estimate) plus the open listener ports. Read-only.
  void saveState(obs::StateWriter& w) const;

 private:
  friend class TcpConnection;
  friend class TcpListener;

  struct ConnKey {
    std::uint16_t local_port;
    NodeId remote_node;
    std::uint16_t remote_port;
    auto operator<=>(const ConnKey&) const = default;
  };

  void sendRst(const Packet& cause);
  void removeConnection(const TcpConnection& conn);
  void removeListener(std::uint16_t port);
  std::uint16_t allocateEphemeralPort();

  NetworkModel& net_;
  NodeId node_;
  TcpOptions opts_;
  // Host-wide transport counters: every stack on a simulator resolves the
  // same `net.tcp.*` registry entries, so these aggregate across hosts.
  obs::Counter& c_connections_;
  obs::Counter& c_segments_;
  obs::Counter& c_retransmits_;
  obs::Counter& c_bytes_sent_;
  obs::Counter& c_bytes_received_;
  std::map<ConnKey, std::shared_ptr<TcpConnection>> connections_;
  std::map<std::uint16_t, TcpListener*> listeners_;
  std::uint16_t next_ephemeral_ = 49152;
};

}  // namespace mg::net
