#include "net/flow_network.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace mg::net {

FlowNetwork::FlowNetwork(sim::Simulator& sim, Topology topo, FlowNetworkOptions opts)
    : sim_(sim),
      topo_(std::move(topo)),
      routing_(topo_),
      opts_(opts),
      c_transfers_(sim.metrics().counter("net.flow.transfers")),
      c_bytes_(sim.metrics().counter("net.flow.bytes")),
      trace_(sim.traceBus().channel("net.flow")) {
  if (opts_.time_scale <= 0) throw UsageError("time_scale must be positive");
  link_free_at_.assign(static_cast<size_t>(topo_.linkCount()) * 2, 0);
}

FlowNetworkStats FlowNetwork::stats() const {
  return FlowNetworkStats{c_transfers_.value(), c_bytes_.value()};
}

sim::SimTime FlowNetwork::estimate(NodeId src, NodeId dst, std::int64_t bytes) const {
  if (src == dst) return opts_.per_message_overhead;
  auto p = routing_.path(src, dst);
  if (p.empty()) throw ConfigError("no route between nodes");
  const double wire_bits = static_cast<double>(bytes) * opts_.byte_overhead * 8.0;
  sim::SimTime latency = 0;
  double bottleneck = std::numeric_limits<double>::infinity();
  for (LinkId lid : p) {
    const Link& l = topo_.link(lid);
    latency += l.latency;
    bottleneck = std::min(bottleneck, l.bandwidth_bps);
  }
  return opts_.per_message_overhead + latency + sim::fromSeconds(wire_bits / bottleneck);
}

sim::SimTime FlowNetwork::transfer(NodeId src, NodeId dst, std::int64_t bytes) {
  const double inv_scale = 1.0 / opts_.time_scale;
  const sim::SimTime now_net =
      static_cast<sim::SimTime>(std::llround(static_cast<double>(sim_.now()) * inv_scale));
  const sim::SimTime end_kernel = reserveTransfer(src, dst, bytes);
  const sim::SimTime wait = std::max<sim::SimTime>(0, end_kernel - sim_.now());
  sim_.delay(wait);
  const sim::SimTime end_net =
      static_cast<sim::SimTime>(std::llround(static_cast<double>(end_kernel) * inv_scale));
  return end_net - now_net;
}

sim::SimTime FlowNetwork::reserveTransfer(NodeId src, NodeId dst, std::int64_t bytes) {
  if (bytes < 0) throw UsageError("negative transfer size");
  c_transfers_.inc();
  c_bytes_.inc(bytes);
  if (trace_.enabled()) trace_.record(sim_.now(), "transfer", static_cast<double>(bytes));
  const double inv_scale = 1.0 / opts_.time_scale;
  const sim::SimTime now_net =
      static_cast<sim::SimTime>(std::llround(static_cast<double>(sim_.now()) * inv_scale));

  sim::SimTime end_net;
  if (src == dst) {
    end_net = now_net + opts_.per_message_overhead;
  } else {
    auto p = routing_.path(src, dst);
    if (p.empty()) throw ConfigError("no route between nodes");
    const double wire_bits = static_cast<double>(bytes) * opts_.byte_overhead * 8.0;
    // The flow streams across all path links concurrently; each directed
    // link serializes flows FIFO. start chains forward so a queued upstream
    // link delays the whole flow.
    sim::SimTime start = now_net;
    sim::SimTime latest_finish = now_net;
    sim::SimTime total_latency = 0;
    NodeId at = src;
    for (LinkId lid : p) {
      const Link& l = topo_.link(lid);
      const int dir = (l.a == at) ? 0 : 1;
      sim::SimTime& free_at = link_free_at_[static_cast<size_t>(lid) * 2 + static_cast<size_t>(dir)];
      const sim::SimTime begin = std::max(start, free_at);
      const sim::SimTime ser = sim::fromSeconds(wire_bits / l.bandwidth_bps);
      free_at = begin + ser;
      latest_finish = std::max(latest_finish, begin + ser);
      total_latency += l.latency;
      start = begin;
      at = topo_.peer(lid, at);
    }
    end_net = latest_finish + total_latency + opts_.per_message_overhead;
  }

  return static_cast<sim::SimTime>(std::llround(static_cast<double>(end_net) * opts_.time_scale));
}

}  // namespace mg::net
