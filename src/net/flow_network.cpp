#include "net/flow_network.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "sim/condition.h"
#include "util/error.h"
#include "util/log.h"

namespace mg::net {
namespace {

// Rates within this relative tolerance keep their scheduled drain event;
// cancelling + rescheduling for sub-ulp share jitter would churn the event
// heap for no modeled effect.
constexpr double kRateEpsilon = 1e-12;

bool rateChanged(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) > kRateEpsilon * scale;
}

}  // namespace

FlowEngine::FlowEngine(NetworkModel& model, FlowNetworkOptions opts)
    : model_(model),
      sim_(model.simulator()),
      opts_(opts),
      c_started_(sim_.metrics().counter("net.flow.started")),
      c_completed_(sim_.metrics().counter("net.flow.completed")),
      c_aborted_(sim_.metrics().counter("net.flow.aborted")),
      c_bytes_(sim_.metrics().counter("net.flow.payload_bytes")),
      c_recomputes_(sim_.metrics().counter("net.flow.share_recomputes")),
      c_visited_(sim_.metrics().counter("net.flow.recompute_flow_visits")),
      c_stalled_(sim_.metrics().counter("net.flow.stalls")),
      c_dropped_down_(sim_.metrics().counter("net.flow.dropped_down")),
      g_active_(sim_.metrics().gauge("net.flow.active")),
      g_peak_(sim_.metrics().gauge("net.flow.active_peak")),
      h_scope_(sim_.metrics().histogram("net.flow.recompute_flows", 0, 4096, 64)),
      trace_(sim_.traceBus().channel("net.flow")) {
  if (opts_.byte_overhead < 1.0) throw ConfigError("flow byte_overhead must be >= 1");
  const auto links = static_cast<std::size_t>(model_.topology().linkCount());
  dlink_flows_.resize(links * 2);
  dlink_mark_.assign(links * 2, 0);
  cap_.assign(links * 2, 0.0);
  cnt_.assign(links * 2, 0);
  round_mark_.assign(links * 2, 0);
  link_active_.assign(links, 0);
  link_busy_since_.assign(links, 0);
  link_busy_s_.assign(links, 0.0);
  g_link_busy_.assign(links, nullptr);
  g_link_util_.assign(links, nullptr);
}

double FlowEngine::nowNetSeconds() const {
  return sim::toSeconds(sim_.now()) / model_.timeScale();
}

sim::SimTime FlowEngine::estimate(NodeId src, NodeId dst, std::int64_t payload_bytes) const {
  if (payload_bytes < 0) throw UsageError("negative transfer size");
  if (src == dst) return opts_.per_message_overhead;
  const Topology& topo = model_.topology();
  if (src < 0 || src >= topo.nodeCount() || dst < 0 || dst >= topo.nodeCount()) {
    throw UsageError("flow endpoint out of range");
  }
  const std::vector<LinkId> path = model_.routing().path(src, dst);
  if (path.empty()) throw ConfigError("no route between nodes");
  sim::SimTime latency = 0;
  double bottleneck = std::numeric_limits<double>::infinity();
  for (LinkId lid : path) {
    const Link& l = topo.link(lid);
    latency += l.latency;
    bottleneck = std::min(bottleneck, l.bandwidth_bps);
  }
  if (bottleneck <= 0.0) throw ConfigError("route has zero capacity (degraded link)");
  const double wire_bits = static_cast<double>(payload_bytes) * opts_.byte_overhead * 8.0;
  return opts_.per_message_overhead + latency + sim::fromSeconds(wire_bits / bottleneck);
}

FlowId FlowEngine::start(NodeId src, NodeId dst, std::int64_t payload_bytes,
                         CompleteFn on_complete, AbortFn on_abort, DrainFn on_drain) {
  if (payload_bytes < 0) throw UsageError("negative transfer size");
  const double wire_bits = static_cast<double>(payload_bytes) * opts_.byte_overhead * 8.0;
  return startBits(src, dst, wire_bits, payload_bytes, std::move(on_complete),
                   std::move(on_abort), 0, std::move(on_drain));
}

FlowId FlowEngine::startBits(NodeId src, NodeId dst, double wire_bits,
                             std::int64_t payload_bytes, CompleteFn on_complete,
                             AbortFn on_abort, obs::SpanId span, DrainFn on_drain) {
  const Topology& topo = model_.topology();
  if (src < 0 || src >= topo.nodeCount() || dst < 0 || dst >= topo.nodeCount()) {
    throw UsageError("flow endpoint out of range");
  }
  c_started_.inc();
  c_bytes_.inc(payload_bytes);
  if (trace_.enabled()) trace_.record(sim_.now(), "start", static_cast<double>(payload_bytes));

  if (src == dst) {
    // Loopback never touches the wire: per-message software overhead only.
    // No link capacity is held, so the drain boundary is immediate.
    if (on_drain) sim_.scheduleAt(sim_.now(), std::move(on_drain));
    sim_.scheduleAfter(model_.scaleDuration(opts_.per_message_overhead),
                       [this, cb = std::move(on_complete)] {
                         c_completed_.inc();
                         if (cb) cb();
                       });
    return kNoFlow;
  }

  const std::vector<LinkId> path = model_.routing().path(src, dst);
  if (path.empty()) throw ConfigError("no route between nodes");

  Flow f;
  f.src = src;
  f.dst = dst;
  f.on_complete = std::move(on_complete);
  f.on_abort = std::move(on_abort);
  f.dlinks.reserve(path.size());
  f.nodes.reserve(path.size() + 1);
  NodeId at = src;
  f.nodes.push_back(at);
  for (LinkId lid : path) {
    const Link& l = topo.link(lid);
    const int dir = (at == l.a) ? 0 : 1;
    f.dlinks.push_back(static_cast<std::uint32_t>(lid) * 2 + static_cast<std::uint32_t>(dir));
    f.latency += l.latency;
    at = topo.peer(lid, at);
    f.nodes.push_back(at);
  }

  if (wire_bits <= 0.0) {
    // Zero-length payloads (EOF markers, bare signals) ride the latency +
    // overhead path without ever occupying link capacity.
    if (on_drain) sim_.scheduleAt(sim_.now(), std::move(on_drain));
    sim_.scheduleAfter(model_.scaleDuration(f.latency + opts_.per_message_overhead),
                       [this, cb = std::move(f.on_complete)] {
                         c_completed_.inc();
                         if (cb) cb();
                       });
    return kNoFlow;
  }

  f.on_drain = std::move(on_drain);
  f.remaining_bits = wire_bits;
  const sim::SimTime now = sim_.now();
  f.last_integrated = now;
  if (span != 0) {
    f.span = span;
  } else if (sim_.spans().enabled()) {
    f.span = sim_.spans().begin("net.flow", "flow", topo.node(src).name);
    f.owns_span = true;
  }

  const FlowId id = next_id_++;
  auto [it, inserted] = flows_.emplace(id, std::move(f));
  indexFlow(id, it->second, now);
  if (static_cast<std::int64_t>(flows_.size()) > peak_active_) {
    peak_active_ = static_cast<std::int64_t>(flows_.size());
  }
  publishActiveGauges();
  // Only the new flow's contention component can change rates.
  beginComponent();
  for (std::uint32_t d : it->second.dlinks) seedDlink(d);
  recomputeComponent();
  return id;
}

void FlowEngine::sendPacket(Packet&& pkt) {
  const Topology& topo = model_.topology();
  if (pkt.src < 0 || pkt.src >= topo.nodeCount() || pkt.dst < 0 || pkt.dst >= topo.nodeCount()) {
    throw UsageError("packet endpoint out of range");
  }
  if (pkt.src != pkt.dst && model_.routing().nextLink(pkt.src, pkt.dst) == kNoLink) {
    c_dropped_down_.inc();
    if (trace_.enabled()) trace_.record(sim_.now(), "drop_down", static_cast<double>(pkt.wireBytes()));
    sim_.spans().endWith(pkt.span, "dropped", "no_route");
    return;
  }
  auto p = std::make_shared<Packet>(std::move(pkt));
  const double wire_bits = static_cast<double>(p->wireBytes()) * 8.0;
  const auto payload_bytes = static_cast<std::int64_t>(p->payload.size());
  const obs::SpanId span = p->span;
  startBits(
      p->src, p->dst, wire_bits, payload_bytes,
      [this, p]() mutable { deliverPacket(std::move(*p)); },
      [this, p](const std::string& why) {
        c_dropped_down_.inc();
        if (trace_.enabled()) trace_.record(sim_.now(), "drop_down", static_cast<double>(p->wireBytes()));
        sim_.spans().endWith(p->span, "dropped", why);
      },
      span);
}

void FlowEngine::deliverPacket(Packet&& pkt) {
  const Topology& topo = model_.topology();
  if (!topo.node(pkt.dst).up) {
    // Same blackhole semantics as the packet model: crashed hosts receive
    // nothing, so peers learn of the failure from their own timers.
    c_dropped_down_.inc();
    if (trace_.enabled()) trace_.record(sim_.now(), "drop_node_down", static_cast<double>(pkt.wireBytes()), topo.node(pkt.dst).name);
    sim_.spans().endWith(pkt.span, "dropped", "node_down");
    return;
  }
  sim_.spans().end(pkt.span);
  pkt.span = 0;
  NetworkModel::PacketHandler& h = model_.handlers_.at(static_cast<std::size_t>(pkt.dst));
  if (!h) {
    MG_LOG_TRACE("net") << "flow packet to unattached node " << topo.node(pkt.dst).name;
    return;
  }
  if (trace_.enabled()) trace_.record(sim_.now(), "deliver", static_cast<double>(pkt.payload.size()));
  h(std::move(pkt));
}

void FlowEngine::integrateFlow(Flow& f, sim::SimTime now) {
  if (now == f.last_integrated) return;
  const double dt = sim::toSeconds(now - f.last_integrated) / model_.timeScale();
  f.last_integrated = now;
  if (dt <= 0.0 || f.rate_bps <= 0.0) return;
  f.remaining_bits = std::max(0.0, f.remaining_bits - f.rate_bps * dt);
}

void FlowEngine::indexFlow(FlowId id, Flow& f, sim::SimTime now) {
  for (std::uint32_t d : f.dlinks) {
    dlink_flows_[d].push_back(IndexEntry{id, &f});
    const std::size_t lid = d >> 1;
    if (link_active_[lid]++ == 0) {
      link_busy_since_[lid] = now;
      publishLinkGauges(lid, now);
    }
  }
}

void FlowEngine::unindexFlow(FlowId id, const Flow& f, sim::SimTime now) {
  for (std::uint32_t d : f.dlinks) {
    auto& v = dlink_flows_[d];
    v.erase(std::find_if(v.begin(), v.end(),
                         [id](const IndexEntry& e) { return e.id == id; }));
    const std::size_t lid = d >> 1;
    if (--link_active_[lid] == 0) {
      link_busy_s_[lid] += sim::toSeconds(now - link_busy_since_[lid]) / model_.timeScale();
      publishLinkGauges(lid, now);
    }
  }
}

void FlowEngine::beginComponent() {
  ++comp_epoch_;
  comp_.clear();
  comp_dlinks_.clear();
}

void FlowEngine::seedDlink(std::uint32_t d) {
  if (dlink_mark_[d] == comp_epoch_) return;
  dlink_mark_[d] = comp_epoch_;
  comp_dlinks_.push_back(d);
}

void FlowEngine::recomputeComponent() {
  c_recomputes_.inc();
  if (opts_.incremental) {
    // Close the component: alternate link→flows (reverse index) and
    // flow→links (routes) until no new element appears. comp_dlinks_
    // doubles as the BFS worklist.
    for (std::size_t i = 0; i < comp_dlinks_.size(); ++i) {
      for (const IndexEntry& e : dlink_flows_[comp_dlinks_[i]]) {
        Flow& f = *e.flow;
        if (f.mark == comp_epoch_) continue;
        f.mark = comp_epoch_;
        comp_.push_back(e);
        for (std::uint32_t d : f.dlinks) seedDlink(d);
      }
    }
    std::sort(comp_.begin(), comp_.end(),
              [](const IndexEntry& a, const IndexEntry& b) { return a.id < b.id; });
  } else {
    // Full-recompute oracle: every active flow, every loaded dlink.
    // Produces bit-identical rates (progressive filling never moves
    // bandwidth between components), just without the scoping win. A fresh
    // epoch discards the caller's seeds (they are a subset of the full set).
    beginComponent();
    for (auto& [fid, f] : flows_) {
      comp_.push_back(IndexEntry{fid, &f});
      for (std::uint32_t d : f.dlinks) seedDlink(d);
    }
  }
  c_visited_.inc(static_cast<std::int64_t>(comp_.size()));
  h_scope_.add(static_cast<double>(comp_.size()));
  if (comp_.empty()) return;
  shareComponent();
  rescheduleComponent();
}

void FlowEngine::shareComponent() {
  const Topology& topo = model_.topology();
  // Progressive filling over directed links. Each direction of a link is an
  // independent full-bandwidth resource, matching the packet model's two
  // per-direction transmit queues.
  for (const IndexEntry& e : comp_) {
    Flow* f = e.flow;
    f->fixed = false;
    f->new_rate = 0;
    for (std::uint32_t d : f->dlinks) ++cnt_[d];
  }
  heap_.clear();
  for (std::uint32_t d : comp_dlinks_) {
    if (cnt_[d] == 0) continue;  // seed link carrying no flows
    cap_[d] = topo.link(static_cast<LinkId>(d >> 1)).bandwidth_bps;
    heap_.emplace_back(cap_[d] / cnt_[d], d);
  }
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>());

  // Each round pops the bottleneck: the directed link with the smallest
  // fair share, ties toward the lowest dlink id — pair ordering under
  // greater<> gives exactly that lexicographic minimum. Entries go stale
  // when a later round changes their link's cap/cnt; a stale entry is
  // detected by recomputing the share (bitwise — same operands divide to
  // the same double) and skipped, because a fresh entry for the current
  // state was pushed when the state was created.
  int remaining = static_cast<int>(comp_.size());
  while (remaining > 0 && !heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const auto [share, best] = heap_.back();
    heap_.pop_back();
    if (cnt_[best] <= 0) continue;               // fully released link
    if (share != cap_[best] / cnt_[best]) continue;  // stale entry
    // Fix every unfixed flow crossing the bottleneck at its fair share,
    // then release its claim on the rest of its route. The per-link result
    // is order-independent: every fixed flow subtracts the same share.
    ++round_epoch_;
    dirty_.clear();
    for (const IndexEntry& e : dlink_flows_[best]) {
      Flow& f = *e.flow;
      if (f.fixed) continue;
      f.fixed = true;
      f.new_rate = share;
      --remaining;
      for (std::uint32_t d : f.dlinks) {
        cap_[d] = std::max(0.0, cap_[d] - share);
        --cnt_[d];
        if (round_mark_[d] != round_epoch_) {
          round_mark_[d] = round_epoch_;
          dirty_.push_back(d);
        }
      }
    }
    for (std::uint32_t d : dirty_) {
      if (cnt_[d] <= 0) continue;
      heap_.emplace_back(cap_[d] / cnt_[d], d);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    }
  }

  // Restore the all-zero invariant for the next component.
  for (std::uint32_t d : comp_dlinks_) {
    cap_[d] = 0.0;
    cnt_[d] = 0;
  }
}

void FlowEngine::rescheduleComponent() {
  const sim::SimTime now = sim_.now();
  // Ascending FlowId (comp_ is sorted): same-time drain events keep the
  // kernel's insertion order stable across incremental and full modes.
  for (const IndexEntry& e : comp_) {
    Flow& f = *e.flow;
    if (f.new_rate <= 0.0) {
      // Every path to a positive share runs through a zero-capacity link:
      // park the flow instead of scheduling an infinite drain. It keeps its
      // route (and so its place in the contention component), and resumes
      // when onLinkChanged() re-shares the component with capacity back.
      if (f.stalled) continue;
      integrateFlow(f, now);
      if (f.drain_event != 0) {
        sim_.cancel(f.drain_event);
        f.drain_event = 0;
      }
      f.rate_bps = 0.0;
      f.stalled = true;
      c_stalled_.inc();
      if (trace_.enabled()) trace_.record(now, "stall", f.remaining_bits);
      continue;
    }
    if (f.drain_event != 0 && !rateChanged(f.new_rate, f.rate_bps)) continue;
    integrateFlow(f, now);
    if (f.drain_event != 0) sim_.cancel(f.drain_event);
    if (f.stalled) {
      f.stalled = false;
      if (trace_.enabled()) trace_.record(now, "resume", f.remaining_bits);
    }
    f.rate_bps = f.new_rate;
    const double drain_s = f.remaining_bits / f.rate_bps;
    const FlowId fid = e.id;
    f.drain_event = sim_.scheduleAfter(model_.scaleDuration(sim::fromSeconds(drain_s)),
                                       [this, fid] { finishDrain(fid); });
  }
}

void FlowEngine::finishDrain(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  const sim::SimTime now = sim_.now();
  Flow f = std::move(it->second);
  integrateFlow(f, now);
  unindexFlow(id, f, now);
  flows_.erase(it);
  c_completed_.inc();
  publishActiveGauges();
  if (trace_.enabled()) trace_.record(now, "complete", f.remaining_bits);
  // The last bit leaves the source when the drain finishes; it still has to
  // propagate (path latency) and clear the receive stack (per-message
  // overhead) before the receiver sees the message.
  const sim::SimTime tail = f.latency + opts_.per_message_overhead;
  sim_.scheduleAfter(model_.scaleDuration(tail),
                     [this, cb = std::move(f.on_complete), span = f.span, owns = f.owns_span] {
                       if (owns) sim_.spans().end(span);
                       if (cb) cb();
                     });
  // Chain before re-sharing: a pipelined sender's next chunk starts at this
  // exact instant and should be part of the same recompute. The chained
  // start runs its own scoped recompute, so seeds are collected only after
  // it returns (beginComponent() state is not reentrant).
  if (f.on_drain) f.on_drain();
  beginComponent();
  for (std::uint32_t d : f.dlinks) seedDlink(d);
  recomputeComponent();
}

void FlowEngine::abortMatching(const std::function<bool(const Flow&)>& pred,
                               const std::string& reason) {
  const sim::SimTime now = sim_.now();
  abort_seeds_.clear();
  bool any = false;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (!pred(it->second)) {
      ++it;
      continue;
    }
    const FlowId id = it->first;
    Flow f = std::move(it->second);
    it = flows_.erase(it);
    any = true;
    integrateFlow(f, now);
    unindexFlow(id, f, now);
    c_aborted_.inc();
    if (trace_.enabled()) trace_.record(now, "abort", f.remaining_bits);
    if (f.drain_event != 0) sim_.cancel(f.drain_event);
    if (f.owns_span) sim_.spans().endWith(f.span, "aborted", reason);
    if (f.on_abort) {
      // Deliver the abort in event context, never from inside a barrier op.
      sim_.scheduleAt(now, [cb = std::move(f.on_abort), reason] { cb(reason); });
    }
    abort_seeds_.insert(abort_seeds_.end(), f.dlinks.begin(), f.dlinks.end());
  }
  if (!any) return;
  publishActiveGauges();
  assert(indexConsistent());
  // The removed flows may have bridged several components; the multi-seed
  // closure re-shares their (disjoint) union, which progressive filling
  // handles identically to sharing each part alone.
  beginComponent();
  for (std::uint32_t d : abort_seeds_) seedDlink(d);
  recomputeComponent();
}

void FlowEngine::abortFlowsOnLink(LinkId link, const std::string& reason) {
  abortMatching(
      [link](const Flow& f) {
        for (std::uint32_t d : f.dlinks) {
          if (static_cast<LinkId>(d >> 1) == link) return true;
        }
        return false;
      },
      reason);
}

void FlowEngine::abortFlowsAtNode(NodeId node, const std::string& reason) {
  // Endpoint or transit: a crashed router stops forwarding, so flows routed
  // through it die exactly as their packets would.
  abortMatching(
      [node](const Flow& f) {
        for (NodeId n : f.nodes) {
          if (n == node) return true;
        }
        return false;
      },
      reason);
}

void FlowEngine::onLinkChanged(LinkId link) {
  if (flows_.empty()) return;
  assert(indexConsistent());
  beginComponent();
  seedDlink(static_cast<std::uint32_t>(link) * 2);
  seedDlink(static_cast<std::uint32_t>(link) * 2 + 1);
  recomputeComponent();
}

double FlowEngine::currentRateBps(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate_bps;
}

bool FlowEngine::isStalled(FlowId id) const {
  auto it = flows_.find(id);
  return it != flows_.end() && it->second.stalled;
}

double FlowEngine::linkBusySeconds(std::size_t lid, sim::SimTime now) const {
  double busy = link_busy_s_[lid];
  if (link_active_[lid] > 0) {
    busy += sim::toSeconds(now - link_busy_since_[lid]) / model_.timeScale();
  }
  return busy;
}

double FlowEngine::linkUtilization(LinkId link) const {
  const double elapsed = nowNetSeconds();
  if (elapsed <= 0.0) return 0.0;
  return linkBusySeconds(static_cast<std::size_t>(link), sim_.now()) / elapsed;
}

void FlowEngine::registerTelemetry(obs::TelemetrySampler& sampler) {
  sampler.addLevel("net.flow.active",
                   [this](std::int64_t) { return static_cast<double>(flows_.size()); });
  sampler.addCounterRate("net.flow.completed_per_s", c_completed_);
  sampler.addCounterRate("net.flow.bytes_per_s", c_bytes_);
  const Topology& topo = model_.topology();
  for (LinkId l = 0; l < topo.linkCount(); ++l) {
    // Cumulative busy time in *kernel* seconds (linkBusySeconds reports
    // network seconds), so the sampled rate is the fraction of kernel time
    // the link carried >= 1 flow — utilization on the same clock as every
    // other series. A sample tick can land before an open busy interval's
    // start (the epoch ran ahead of the tick time at a barrier); clamping
    // `now` up to busy_since keeps the cumulative sum monotone.
    sampler.addRate("net.flow.link_util." + topo.link(l).name, [this, l](std::int64_t t) {
      const auto lid = static_cast<std::size_t>(l);
      sim::SimTime now = t;
      if (link_active_[lid] > 0 && link_busy_since_[lid] > now) now = link_busy_since_[lid];
      return linkBusySeconds(lid, now) * model_.timeScale();
    });
  }
}

void FlowEngine::publishLinkGauges(std::size_t lid, sim::SimTime now) {
  if (g_link_busy_[lid] == nullptr) {
    const std::string& name = model_.topology().link(static_cast<LinkId>(lid)).name;
    g_link_busy_[lid] = &sim_.metrics().gauge("net.flow.link_busy_s." + name);
    g_link_util_[lid] = &sim_.metrics().gauge("net.flow.link_util." + name);
  }
  const double busy = linkBusySeconds(lid, now);
  g_link_busy_[lid]->set(busy);
  const double elapsed = nowNetSeconds();
  if (elapsed > 0.0) g_link_util_[lid]->set(busy / elapsed);
}

bool FlowEngine::indexConsistent() const {
  // Every flow listed exactly once per route dlink, no orphan index
  // entries, per-link active counts equal to crossing-flow occurrences.
  std::size_t total_entries = 0;
  std::vector<int> active(link_active_.size(), 0);
  for (const auto& [id, f] : flows_) {
    if (f.drain_event != 0 && f.stalled) return false;
    for (std::uint32_t d : f.dlinks) {
      const auto& v = dlink_flows_[d];
      const auto match = [id = id](const IndexEntry& e) { return e.id == id; };
      if (std::count_if(v.begin(), v.end(), match) != 1) return false;
      ++active[d >> 1];
      ++total_entries;
    }
  }
  std::size_t indexed = 0;
  for (const auto& v : dlink_flows_) {
    indexed += v.size();
    for (const IndexEntry& e : v) {
      auto it = flows_.find(e.id);
      if (it == flows_.end() || &it->second != e.flow) return false;
    }
  }
  if (indexed != total_entries) return false;
  for (std::size_t lid = 0; lid < active.size(); ++lid) {
    if (active[lid] != link_active_[lid]) return false;
  }
  return true;
}

void FlowEngine::publishActiveGauges() {
  g_active_.set(static_cast<double>(flows_.size()));
  g_peak_.set(static_cast<double>(peak_active_));
}

FlowNetworkStats FlowEngine::stats() const {
  FlowNetworkStats s;
  s.flows_started = c_started_.value();
  s.flows_completed = c_completed_.value();
  s.flows_aborted = c_aborted_.value();
  s.payload_bytes = c_bytes_.value();
  s.share_recomputes = c_recomputes_.value();
  s.recompute_flow_visits = c_visited_.value();
  s.flows_stalled = c_stalled_.value();
  s.dropped_down = c_dropped_down_.value();
  s.active_flows = static_cast<std::int64_t>(flows_.size());
  s.peak_active_flows = peak_active_;
  return s;
}

void FlowEngine::saveState(obs::StateWriter& w) const {
  w.u64("net.flow.active", flows_.size());
  w.u64("net.flow.next_id", next_id_);
  for (const auto& [id, f] : flows_) {
    w.u64("flow", id);
    w.i64("src", f.src);
    w.i64("dst", f.dst);
    w.f64("remaining", f.remaining_bits);
    w.f64("rate", f.rate_bps);
    w.i64("integrated", f.last_integrated);
    w.boolean("stalled", f.stalled);
  }
}

FlowNetwork::FlowNetwork(sim::Simulator& sim, Topology topo, FlowNetworkOptions opts)
    : NetworkModel(sim, std::move(topo), opts.time_scale), engine_(*this, opts) {}

void FlowNetwork::send(Packet&& pkt) { engine_.sendPacket(std::move(pkt)); }

sim::SimTime FlowNetwork::transfer(NodeId src, NodeId dst, std::int64_t bytes) {
  const sim::SimTime begin = sim_.now();
  sim::Condition done(sim_);
  bool finished = false;
  std::string abort_why;
  engine_.start(
      src, dst, bytes,
      [&] {
        finished = true;
        done.notifyAll();
      },
      [&](const std::string& why) {
        abort_why = why;
        finished = true;
        done.notifyAll();
      });
  while (!finished) done.wait();
  if (!abort_why.empty()) throw mg::Error("flow aborted: " + abort_why);
  const double inv = 1.0 / timeScale();
  return static_cast<sim::SimTime>(std::llround(static_cast<double>(sim_.now() - begin) * inv));
}

}  // namespace mg::net
