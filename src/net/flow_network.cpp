#include "net/flow_network.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/condition.h"
#include "util/error.h"
#include "util/log.h"

namespace mg::net {
namespace {

// Rates within this relative tolerance keep their scheduled drain event;
// cancelling + rescheduling for sub-ulp share jitter would churn the event
// heap for no modeled effect.
constexpr double kRateEpsilon = 1e-12;

bool rateChanged(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) > kRateEpsilon * scale;
}

}  // namespace

FlowEngine::FlowEngine(NetworkModel& model, FlowNetworkOptions opts)
    : model_(model),
      sim_(model.simulator()),
      opts_(opts),
      c_started_(sim_.metrics().counter("net.flow.started")),
      c_completed_(sim_.metrics().counter("net.flow.completed")),
      c_aborted_(sim_.metrics().counter("net.flow.aborted")),
      c_bytes_(sim_.metrics().counter("net.flow.payload_bytes")),
      c_recomputes_(sim_.metrics().counter("net.flow.share_recomputes")),
      c_dropped_down_(sim_.metrics().counter("net.flow.dropped_down")),
      g_active_(sim_.metrics().gauge("net.flow.active")),
      g_peak_(sim_.metrics().gauge("net.flow.active_peak")),
      trace_(sim_.traceBus().channel("net.flow")) {
  if (opts_.byte_overhead < 1.0) throw ConfigError("flow byte_overhead must be >= 1");
  const auto links = static_cast<std::size_t>(model_.topology().linkCount());
  cap_.assign(links * 2, 0.0);
  cnt_.assign(links * 2, 0);
  busy_mark_.assign(links, -1);
  link_busy_s_.assign(links, 0.0);
  g_link_busy_.assign(links, nullptr);
  g_link_util_.assign(links, nullptr);
}

double FlowEngine::nowNetSeconds() const {
  return sim::toSeconds(sim_.now()) / model_.timeScale();
}

sim::SimTime FlowEngine::estimate(NodeId src, NodeId dst, std::int64_t payload_bytes) const {
  if (payload_bytes < 0) throw UsageError("negative transfer size");
  if (src == dst) return opts_.per_message_overhead;
  const Topology& topo = model_.topology();
  if (src < 0 || src >= topo.nodeCount() || dst < 0 || dst >= topo.nodeCount()) {
    throw UsageError("flow endpoint out of range");
  }
  const std::vector<LinkId> path = model_.routing().path(src, dst);
  if (path.empty()) throw ConfigError("no route between nodes");
  sim::SimTime latency = 0;
  double bottleneck = std::numeric_limits<double>::infinity();
  for (LinkId lid : path) {
    const Link& l = topo.link(lid);
    latency += l.latency;
    bottleneck = std::min(bottleneck, l.bandwidth_bps);
  }
  const double wire_bits = static_cast<double>(payload_bytes) * opts_.byte_overhead * 8.0;
  return opts_.per_message_overhead + latency + sim::fromSeconds(wire_bits / bottleneck);
}

FlowId FlowEngine::start(NodeId src, NodeId dst, std::int64_t payload_bytes,
                         CompleteFn on_complete, AbortFn on_abort, DrainFn on_drain) {
  if (payload_bytes < 0) throw UsageError("negative transfer size");
  const double wire_bits = static_cast<double>(payload_bytes) * opts_.byte_overhead * 8.0;
  return startBits(src, dst, wire_bits, payload_bytes, std::move(on_complete),
                   std::move(on_abort), 0, std::move(on_drain));
}

FlowId FlowEngine::startBits(NodeId src, NodeId dst, double wire_bits,
                             std::int64_t payload_bytes, CompleteFn on_complete,
                             AbortFn on_abort, obs::SpanId span, DrainFn on_drain) {
  const Topology& topo = model_.topology();
  if (src < 0 || src >= topo.nodeCount() || dst < 0 || dst >= topo.nodeCount()) {
    throw UsageError("flow endpoint out of range");
  }
  c_started_.inc();
  c_bytes_.inc(payload_bytes);
  if (trace_.enabled()) trace_.record(sim_.now(), "start", static_cast<double>(payload_bytes));

  if (src == dst) {
    // Loopback never touches the wire: per-message software overhead only.
    // No link capacity is held, so the drain boundary is immediate.
    if (on_drain) sim_.scheduleAt(sim_.now(), std::move(on_drain));
    sim_.scheduleAfter(model_.scaleDuration(opts_.per_message_overhead),
                       [this, cb = std::move(on_complete)] {
                         c_completed_.inc();
                         if (cb) cb();
                       });
    return kNoFlow;
  }

  const std::vector<LinkId> path = model_.routing().path(src, dst);
  if (path.empty()) throw ConfigError("no route between nodes");

  Flow f;
  f.src = src;
  f.dst = dst;
  f.on_complete = std::move(on_complete);
  f.on_abort = std::move(on_abort);
  f.dlinks.reserve(path.size());
  f.nodes.reserve(path.size() + 1);
  NodeId at = src;
  f.nodes.push_back(at);
  for (LinkId lid : path) {
    const Link& l = topo.link(lid);
    const int dir = (at == l.a) ? 0 : 1;
    f.dlinks.push_back(static_cast<std::uint32_t>(lid) * 2 + static_cast<std::uint32_t>(dir));
    f.latency += l.latency;
    at = topo.peer(lid, at);
    f.nodes.push_back(at);
  }

  if (wire_bits <= 0.0) {
    // Zero-length payloads (EOF markers, bare signals) ride the latency +
    // overhead path without ever occupying link capacity.
    if (on_drain) sim_.scheduleAt(sim_.now(), std::move(on_drain));
    sim_.scheduleAfter(model_.scaleDuration(f.latency + opts_.per_message_overhead),
                       [this, cb = std::move(f.on_complete)] {
                         c_completed_.inc();
                         if (cb) cb();
                       });
    return kNoFlow;
  }

  f.on_drain = std::move(on_drain);
  f.remaining_bits = wire_bits;
  if (span != 0) {
    f.span = span;
  } else if (sim_.spans().enabled()) {
    f.span = sim_.spans().begin("net.flow", "flow", topo.node(src).name);
    f.owns_span = true;
  }

  const FlowId id = next_id_++;
  integrateTo(sim_.now());
  flows_.emplace(id, std::move(f));
  if (static_cast<std::int64_t>(flows_.size()) > peak_active_) {
    peak_active_ = static_cast<std::int64_t>(flows_.size());
  }
  publishActiveGauges();
  shareOut();
  return id;
}

void FlowEngine::sendPacket(Packet&& pkt) {
  const Topology& topo = model_.topology();
  if (pkt.src < 0 || pkt.src >= topo.nodeCount() || pkt.dst < 0 || pkt.dst >= topo.nodeCount()) {
    throw UsageError("packet endpoint out of range");
  }
  if (pkt.src != pkt.dst && model_.routing().nextLink(pkt.src, pkt.dst) == kNoLink) {
    c_dropped_down_.inc();
    if (trace_.enabled()) trace_.record(sim_.now(), "drop_down", static_cast<double>(pkt.wireBytes()));
    sim_.spans().endWith(pkt.span, "dropped", "no_route");
    return;
  }
  auto p = std::make_shared<Packet>(std::move(pkt));
  const double wire_bits = static_cast<double>(p->wireBytes()) * 8.0;
  const auto payload_bytes = static_cast<std::int64_t>(p->payload.size());
  const obs::SpanId span = p->span;
  startBits(
      p->src, p->dst, wire_bits, payload_bytes,
      [this, p]() mutable { deliverPacket(std::move(*p)); },
      [this, p](const std::string& why) {
        c_dropped_down_.inc();
        if (trace_.enabled()) trace_.record(sim_.now(), "drop_down", static_cast<double>(p->wireBytes()));
        sim_.spans().endWith(p->span, "dropped", why);
      },
      span);
}

void FlowEngine::deliverPacket(Packet&& pkt) {
  const Topology& topo = model_.topology();
  if (!topo.node(pkt.dst).up) {
    // Same blackhole semantics as the packet model: crashed hosts receive
    // nothing, so peers learn of the failure from their own timers.
    c_dropped_down_.inc();
    if (trace_.enabled()) trace_.record(sim_.now(), "drop_node_down", static_cast<double>(pkt.wireBytes()), topo.node(pkt.dst).name);
    sim_.spans().endWith(pkt.span, "dropped", "node_down");
    return;
  }
  sim_.spans().end(pkt.span);
  pkt.span = 0;
  NetworkModel::PacketHandler& h = model_.handlers_.at(static_cast<std::size_t>(pkt.dst));
  if (!h) {
    MG_LOG_TRACE("net") << "flow packet to unattached node " << topo.node(pkt.dst).name;
    return;
  }
  if (trace_.enabled()) trace_.record(sim_.now(), "deliver", static_cast<double>(pkt.payload.size()));
  h(std::move(pkt));
}

void FlowEngine::integrateTo(sim::SimTime now) {
  if (now == last_update_ || flows_.empty()) {
    last_update_ = now;
    return;
  }
  const double dt = sim::toSeconds(now - last_update_) / model_.timeScale();
  last_update_ = now;
  if (dt <= 0.0) return;
  ++epoch_;
  const double elapsed = nowNetSeconds();
  for (auto& [id, f] : flows_) {
    f.remaining_bits = std::max(0.0, f.remaining_bits - f.rate_bps * dt);
    for (std::uint32_t d : f.dlinks) {
      const std::size_t lid = d >> 1;
      if (busy_mark_[lid] == epoch_) continue;
      busy_mark_[lid] = epoch_;
      link_busy_s_[lid] += dt;
      if (g_link_busy_[lid] == nullptr) {
        const std::string& name = model_.topology().link(static_cast<LinkId>(lid)).name;
        g_link_busy_[lid] = &sim_.metrics().gauge("net.flow.link_busy_s." + name);
        g_link_util_[lid] = &sim_.metrics().gauge("net.flow.link_util." + name);
      }
      g_link_busy_[lid]->set(link_busy_s_[lid]);
      if (elapsed > 0.0) g_link_util_[lid]->set(link_busy_s_[lid] / elapsed);
    }
  }
}

void FlowEngine::shareOut() {
  c_recomputes_.inc();
  if (flows_.empty()) return;

  // Progressive filling over directed links. Each direction of a link is an
  // independent full-bandwidth resource, matching the packet model's two
  // per-direction transmit queues.
  touched_.clear();
  for (auto& [id, f] : flows_) {
    f.fixed = false;
    f.new_rate = 0;
    for (std::uint32_t d : f.dlinks) {
      if (cnt_[d] == 0) {
        cap_[d] = model_.topology().link(static_cast<LinkId>(d >> 1)).bandwidth_bps;
        touched_.push_back(d);
      }
      ++cnt_[d];
    }
  }

  int remaining = static_cast<int>(flows_.size());
  while (remaining > 0) {
    // Bottleneck: the directed link with the smallest fair share; ties break
    // toward the lowest directed-link index for determinism.
    double best_share = std::numeric_limits<double>::infinity();
    std::uint32_t best_dlink = 0;
    bool found = false;
    for (std::uint32_t d : touched_) {
      if (cnt_[d] <= 0) continue;
      const double share = cap_[d] / cnt_[d];
      if (!found || share < best_share || (share == best_share && d < best_dlink)) {
        best_share = share;
        best_dlink = d;
        found = true;
      }
    }
    if (!found) break;
    // Fix every unfixed flow crossing the bottleneck at its fair share, then
    // release its claim on the rest of its route.
    for (auto& [id, f] : flows_) {
      if (f.fixed) continue;
      bool crosses = false;
      for (std::uint32_t d : f.dlinks) {
        if (d == best_dlink) {
          crosses = true;
          break;
        }
      }
      if (!crosses) continue;
      f.fixed = true;
      f.new_rate = best_share;
      --remaining;
      for (std::uint32_t d : f.dlinks) {
        cap_[d] = std::max(0.0, cap_[d] - best_share);
        --cnt_[d];
      }
    }
  }

  for (std::uint32_t d : touched_) {
    cap_[d] = 0.0;
    cnt_[d] = 0;
  }

  // Reschedule drains only where the share actually moved.
  for (auto& [id, f] : flows_) {
    if (f.drain_event != 0 && !rateChanged(f.new_rate, f.rate_bps)) continue;
    if (f.drain_event != 0) sim_.cancel(f.drain_event);
    f.rate_bps = f.new_rate;
    const double drain_s = f.remaining_bits / f.rate_bps;
    const FlowId fid = id;
    f.drain_event = sim_.scheduleAfter(model_.scaleDuration(sim::fromSeconds(drain_s)),
                                       [this, fid] { finishDrain(fid); });
  }
}

void FlowEngine::finishDrain(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  integrateTo(sim_.now());
  Flow f = std::move(it->second);
  flows_.erase(it);
  c_completed_.inc();
  publishActiveGauges();
  if (trace_.enabled()) trace_.record(sim_.now(), "complete", f.remaining_bits);
  // The last bit leaves the source when the drain finishes; it still has to
  // propagate (path latency) and clear the receive stack (per-message
  // overhead) before the receiver sees the message.
  const sim::SimTime tail = f.latency + opts_.per_message_overhead;
  sim_.scheduleAfter(model_.scaleDuration(tail),
                     [this, cb = std::move(f.on_complete), span = f.span, owns = f.owns_span] {
                       if (owns) sim_.spans().end(span);
                       if (cb) cb();
                     });
  // Chain before re-sharing: a pipelined sender's next chunk starts at this
  // exact instant and should be part of the same recompute.
  if (f.on_drain) f.on_drain();
  shareOut();
}

void FlowEngine::abortMatching(const std::function<bool(const Flow&)>& pred,
                               const std::string& reason) {
  integrateTo(sim_.now());
  bool any = false;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (!pred(it->second)) {
      ++it;
      continue;
    }
    Flow f = std::move(it->second);
    it = flows_.erase(it);
    any = true;
    c_aborted_.inc();
    if (trace_.enabled()) trace_.record(sim_.now(), "abort", f.remaining_bits);
    if (f.drain_event != 0) sim_.cancel(f.drain_event);
    if (f.owns_span) sim_.spans().endWith(f.span, "aborted", reason);
    if (f.on_abort) {
      // Deliver the abort in event context, never from inside a barrier op.
      sim_.scheduleAt(sim_.now(), [cb = std::move(f.on_abort), reason] { cb(reason); });
    }
  }
  if (any) {
    publishActiveGauges();
    shareOut();
  }
}

void FlowEngine::abortFlowsOnLink(LinkId link, const std::string& reason) {
  abortMatching(
      [link](const Flow& f) {
        for (std::uint32_t d : f.dlinks) {
          if (static_cast<LinkId>(d >> 1) == link) return true;
        }
        return false;
      },
      reason);
}

void FlowEngine::abortFlowsAtNode(NodeId node, const std::string& reason) {
  // Endpoint or transit: a crashed router stops forwarding, so flows routed
  // through it die exactly as their packets would.
  abortMatching(
      [node](const Flow& f) {
        for (NodeId n : f.nodes) {
          if (n == node) return true;
        }
        return false;
      },
      reason);
}

void FlowEngine::reshare() {
  if (flows_.empty()) return;
  integrateTo(sim_.now());
  shareOut();
}

double FlowEngine::currentRateBps(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate_bps;
}

double FlowEngine::linkUtilization(LinkId link) const {
  const double elapsed = nowNetSeconds();
  if (elapsed <= 0.0) return 0.0;
  return link_busy_s_.at(static_cast<std::size_t>(link)) / elapsed;
}

void FlowEngine::publishActiveGauges() {
  g_active_.set(static_cast<double>(flows_.size()));
  g_peak_.set(static_cast<double>(peak_active_));
}

FlowNetworkStats FlowEngine::stats() const {
  FlowNetworkStats s;
  s.flows_started = c_started_.value();
  s.flows_completed = c_completed_.value();
  s.flows_aborted = c_aborted_.value();
  s.payload_bytes = c_bytes_.value();
  s.share_recomputes = c_recomputes_.value();
  s.dropped_down = c_dropped_down_.value();
  s.active_flows = static_cast<std::int64_t>(flows_.size());
  s.peak_active_flows = peak_active_;
  return s;
}

FlowNetwork::FlowNetwork(sim::Simulator& sim, Topology topo, FlowNetworkOptions opts)
    : NetworkModel(sim, std::move(topo), opts.time_scale), engine_(*this, opts) {}

void FlowNetwork::send(Packet&& pkt) { engine_.sendPacket(std::move(pkt)); }

sim::SimTime FlowNetwork::transfer(NodeId src, NodeId dst, std::int64_t bytes) {
  const sim::SimTime begin = sim_.now();
  sim::Condition done(sim_);
  bool finished = false;
  std::string abort_why;
  engine_.start(
      src, dst, bytes,
      [&] {
        finished = true;
        done.notifyAll();
      },
      [&](const std::string& why) {
        abort_why = why;
        finished = true;
        done.notifyAll();
      });
  while (!finished) done.wait();
  if (!abort_why.empty()) throw mg::Error("flow aborted: " + abort_why);
  const double inv = 1.0 / timeScale();
  return static_cast<sim::SimTime>(std::llround(static_cast<double>(sim_.now() - begin) * inv));
}

}  // namespace mg::net
