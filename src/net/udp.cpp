#include "net/udp.h"

#include <algorithm>

namespace mg::net {

// ------------------------------------------------------------- UdpSocket --

UdpSocket::UdpSocket(UdpStack& stack, std::uint16_t port)
    : stack_(stack), port_(port), inbox_(std::make_unique<sim::Channel<Datagram>>(stack.simulator())) {}

UdpSocket::~UdpSocket() { close(); }

Datagram UdpSocket::recvFrom() {
  if (closed_) throw UsageError("recv on closed udp socket");
  return inbox_->recv();
}

std::optional<Datagram> UdpSocket::recvFromFor(sim::SimTime timeout) {
  if (closed_) throw UsageError("recv on closed udp socket");
  return inbox_->recvFor(timeout);
}

void UdpSocket::sendTo(NodeId dst, std::uint16_t dst_port, std::vector<std::uint8_t> data) {
  if (closed_) throw UsageError("send on closed udp socket");
  stack_.sendFrom(port_, dst, dst_port, std::move(data));
}

void UdpSocket::close() {
  if (closed_) return;
  closed_ = true;
  stack_.unbind(port_);
  inbox_->close();
}

// -------------------------------------------------------------- UdpStack --

UdpStack::UdpStack(NetworkModel& net, NodeId node)
    : net_(net),
      node_(node),
      c_datagrams_sent_(net.simulator().metrics().counter("net.udp.datagrams_sent")),
      c_datagrams_delivered_(net.simulator().metrics().counter("net.udp.datagrams_delivered")),
      c_dropped_incomplete_(net.simulator().metrics().counter("net.udp.datagrams_dropped_incomplete")) {}

std::shared_ptr<UdpSocket> UdpStack::bind(std::uint16_t port) {
  if (sockets_.count(port)) throw UsageError("udp port already bound");
  auto sock = std::shared_ptr<UdpSocket>(new UdpSocket(*this, port));
  sockets_[port] = sock.get();
  return sock;
}

void UdpStack::sendTo(NodeId dst, std::uint16_t dst_port, std::vector<std::uint8_t> data) {
  for (int tries = 0; tries < 16384; ++tries) {
    std::uint16_t p = next_ephemeral_;
    next_ephemeral_ = (next_ephemeral_ == 65535) ? 49152 : next_ephemeral_ + 1;
    if (!sockets_.count(p)) {
      sendFrom(p, dst, dst_port, std::move(data));
      return;
    }
  }
  throw UsageError("udp ephemeral ports exhausted");
}

void UdpStack::sendFrom(std::uint16_t src_port, NodeId dst, std::uint16_t dst_port,
                        std::vector<std::uint8_t> data) {
  if (data.size() > kMaxDatagram) throw UsageError("datagram exceeds 65507 bytes");
  constexpr std::size_t kFragPayload = static_cast<std::size_t>(kMtuBytes - kUdpIpHeaderBytes);
  const std::size_t nfrag = data.empty() ? 1 : (data.size() + kFragPayload - 1) / kFragPayload;
  const std::uint32_t id = next_datagram_id_++;
  c_datagrams_sent_.inc();
  for (std::size_t f = 0; f < nfrag; ++f) {
    Packet p;
    p.src = node_;
    p.dst = dst;
    p.protocol = Protocol::Udp;
    p.src_port = src_port;
    p.dst_port = dst_port;
    p.datagram_id = id;
    p.fragment = static_cast<std::uint16_t>(f);
    p.fragment_count = static_cast<std::uint16_t>(nfrag);
    const std::size_t begin = f * kFragPayload;
    const std::size_t end = std::min(data.size(), begin + kFragPayload);
    p.payload.assign(data.begin() + static_cast<std::ptrdiff_t>(begin),
                     data.begin() + static_cast<std::ptrdiff_t>(end));
    net_.send(std::move(p));
  }
}

void UdpStack::onPacket(Packet&& pkt) {
  auto sit = sockets_.find(pkt.dst_port);
  if (sit == sockets_.end()) return;  // no ICMP modeling; silently dropped

  if (pkt.fragment_count <= 1) {
    c_datagrams_delivered_.inc();
    sit->second->inbox_->trySend(Datagram{pkt.src, pkt.src_port, std::move(pkt.payload)});
    return;
  }

  const ReassemblyKey key{pkt.src, pkt.src_port, pkt.datagram_id};
  Reassembly& r = reassembly_[key];
  if (r.fragments.empty()) {
    r.started = simulator().now();
    r.fragment_count = pkt.fragment_count;
    // Garbage-collect if the datagram never completes.
    simulator().scheduleAfter(net_.scaleDuration(kReassemblyTimeout), [this, key] {
      auto it = reassembly_.find(key);
      if (it != reassembly_.end()) {
        c_dropped_incomplete_.inc();
        reassembly_.erase(it);
      }
    });
  }
  r.fragments[pkt.fragment] = std::move(pkt.payload);
  if (r.fragments.size() == r.fragment_count) {
    Datagram d{pkt.src, pkt.src_port, {}};
    for (auto& [idx, frag] : r.fragments) {
      d.data.insert(d.data.end(), frag.begin(), frag.end());
    }
    reassembly_.erase(key);
    auto sit2 = sockets_.find(pkt.dst_port);
    if (sit2 != sockets_.end()) {
      c_datagrams_delivered_.inc();
      sit2->second->inbox_->trySend(std::move(d));
    }
  }
}

void UdpStack::unbind(std::uint16_t port) { sockets_.erase(port); }

}  // namespace mg::net
