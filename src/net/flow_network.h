// Analytic flow-level network model with max-min fair bandwidth sharing.
//
// Every transfer is a *fluid flow*: it streams across all links of its
// (fixed-at-start) route simultaneously, and concurrent flows sharing a
// directed link split its bandwidth max-min fairly (progressive filling,
// the classic water-filling allocation SimGrid's surf and MONARC-style grid
// simulators use). Kernel events exist only at flow *state changes* — start,
// drain, completion, fault — never per packet per hop, which is what lets
// the fluid model scale orders of magnitude past the packet simulator
// (DESIGN.md §8, the paper's "does not scale up to large simulations"
// bottleneck).
//
// Recomputation is *exact-incremental* (DESIGN.md §8 "Incremental
// sharing"): a link→flows reverse index identifies the connected component
// of the bipartite flow–link contention graph containing a changed flow or
// link, and only that component is re-shared. Max-min shares are
// component-local — progressive filling never moves bandwidth between
// disconnected components — so the scoped recompute produces bit-identical
// rates to a full pass (the `incremental = false` oracle mode, kept for the
// property test). Per-flow `last_integrated` stamps make byte accounting
// lazy: a flow's remaining_bits advance only when its own rate changes, so
// untouched components cost nothing per recompute.
//
// Fault-aware like the packet model: a link or node going down aborts the
// flows crossing it (their owners observe TCP-dying-gasp-style resets) and
// re-shares the survivors; link degrades re-share in place. A link degraded
// to zero bandwidth *stalls* the flows whose bottleneck it is (no drain
// event, rate 0) until capacity returns. Routing comes from the shared
// fault-aware RoutingTable; flows do not re-route mid-flight.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/network_model.h"
#include "util/stats.h"

namespace mg::net {

struct FlowNetworkOptions {
  /// Kernel-clock nanoseconds per network nanosecond (see PacketNetwork).
  double time_scale = 1.0;
  /// Fixed per-message software/protocol overhead (both endpoints total).
  sim::SimTime per_message_overhead = 60 * sim::kMicrosecond;
  /// Wire bytes per payload byte (headers + framing); 1538/1460 for
  /// TCP/IPv4 over Ethernet at full-MSS segments.
  double byte_overhead = 1538.0 / 1460.0;
  /// Component-scoped recompute (the default). `false` re-runs progressive
  /// filling over *all* flows on every change — the slow full-recompute
  /// oracle the incremental engine is property-tested against; results are
  /// bit-identical either way.
  bool incremental = true;
};

/// Identifies an active flow; kNoFlow for flows that never entered the
/// shared-link stage (same-node or zero-byte transfers).
using FlowId = std::int64_t;
constexpr FlowId kNoFlow = 0;

/// Snapshot view over the `net.flow.*` registry counters/gauges.
struct FlowNetworkStats {
  std::int64_t flows_started = 0;
  std::int64_t flows_completed = 0;
  std::int64_t flows_aborted = 0;     // killed by link/node faults
  std::int64_t payload_bytes = 0;     // offered payload (at start)
  std::int64_t share_recomputes = 0;  // max-min recompute passes
  std::int64_t recompute_flow_visits = 0;  // flows visited across all passes
  std::int64_t flows_stalled = 0;     // transitions into the zero-rate park
  std::int64_t dropped_down = 0;      // packet-as-flow sends lost to faults
  std::int64_t active_flows = 0;      // current
  std::int64_t peak_active_flows = 0;
};

/// The max-min fair fluid engine. Owned by FlowNetwork (all traffic) and
/// HybridNetwork (non-escalated traffic); platforms reach it through
/// NetworkModel::flows() to run socket-level transfers as single events.
class FlowEngine {
 public:
  using CompleteFn = std::function<void()>;
  using AbortFn = std::function<void(const std::string& reason)>;
  /// Fires when the last bit leaves the source (link capacity released),
  /// before the latency + overhead delivery tail. Lets pipelined senders
  /// chain their next chunk at the drain boundary — exactly when the wire
  /// frees up — instead of waiting a full one-way delivery.
  using DrainFn = std::function<void()>;

  FlowEngine(NetworkModel& model, FlowNetworkOptions opts);
  FlowEngine(const FlowEngine&) = delete;
  FlowEngine& operator=(const FlowEngine&) = delete;

  /// Start a flow of `payload_bytes` (wire size = payload * byte_overhead).
  /// on_complete fires in event context when the last bit has drained plus
  /// path latency plus per-message overhead; on_abort fires instead if a
  /// link or node on the flow's route goes down mid-transfer. Throws
  /// ConfigError if the nodes are not connected.
  FlowId start(NodeId src, NodeId dst, std::int64_t payload_bytes, CompleteFn on_complete,
               AbortFn on_abort = {}, DrainFn on_drain = {});

  /// Low-level variant with explicit wire bits (the packet-as-flow path
  /// knows its exact framing). `span`, when nonzero, is an externally owned
  /// transit span: the engine neither creates nor closes one.
  FlowId startBits(NodeId src, NodeId dst, double wire_bits, std::int64_t payload_bytes,
                   CompleteFn on_complete, AbortFn on_abort, obs::SpanId span = 0,
                   DrainFn on_drain = {});

  /// Model one packet as a flow of its wire size; delivery invokes the
  /// destination node's handler (NetworkModel::attachHost). Unroutable or
  /// fault-killed packets are dropped under `net.flow.dropped_down`.
  void sendPacket(Packet&& pkt);

  /// Modeled duration of an uncontended transfer (no flow started):
  /// per_message_overhead + path latency + wire_bits / bottleneck. Throws
  /// ConfigError when the route exists but has been degraded to zero
  /// capacity (an uncontended transfer would never finish).
  sim::SimTime estimate(NodeId src, NodeId dst, std::int64_t payload_bytes) const;

  /// Fault hooks (the owning model calls these from NetworkModel's barrier
  /// hooks, after the topology flip).
  void abortFlowsOnLink(LinkId link, const std::string& reason);
  void abortFlowsAtNode(NodeId node, const std::string& reason);
  /// Link performance parameters changed (degrade / restore): re-share the
  /// contention component touching this link. Stalled flows crossing it
  /// resume here when capacity returns. Link/node *up* transitions need no
  /// call: a freshly restored element carries no flows (all were aborted on
  /// the way down) and existing routes never change mid-flight.
  void onLinkChanged(LinkId link);

  /// Time-resolved probes (DESIGN.md §10): net.flow.active (level),
  /// net.flow.completed_per_s / bytes_per_s (rates), and one
  /// net.flow.link_util.<name> utilization rate per topology link (fraction
  /// of kernel time the link carried >= 1 flow, from the busy-time accrual).
  void registerTelemetry(obs::TelemetrySampler& sampler);

  int activeFlows() const { return static_cast<int>(flows_.size()); }
  /// A flow's current max-min rate in bits/s; 0 when the id is not active
  /// (fairness oracles in tests).
  double currentRateBps(FlowId id) const;
  /// True when the flow is parked at rate 0 (every path through its
  /// bottleneck link degraded to zero capacity).
  bool isStalled(FlowId id) const;
  /// Fraction of network time a link has carried at least one flow.
  double linkUtilization(LinkId link) const;
  /// Exhaustive O(F·L) audit of the link→flow reverse index and busy
  /// accounting invariants; used by debug asserts after aborts and by
  /// consistency tests.
  bool indexConsistent() const;
  const FlowNetworkOptions& options() const { return opts_; }
  FlowNetworkStats stats() const;

  /// Fold every active flow's dynamic state (remaining bits, rate, stall
  /// flag, integration stamp) into `w` in ascending FlowId order
  /// (DESIGN.md §11). Read-only.
  void saveState(obs::StateWriter& w) const;

 private:
  struct Flow {
    NodeId src = kNoNode;
    NodeId dst = kNoNode;
    std::vector<std::uint32_t> dlinks;  // directed links: link*2 + dir
    std::vector<NodeId> nodes;          // path nodes incl. endpoints
    sim::SimTime latency = 0;           // path latency at start (network time)
    double remaining_bits = 0;
    double rate_bps = 0;
    sim::SimTime last_integrated = 0;  // kernel time bits were last accrued
    sim::EventId drain_event = 0;
    bool stalled = false;  // parked at rate 0, no drain event
    CompleteFn on_complete;
    AbortFn on_abort;
    DrainFn on_drain;
    obs::SpanId span = 0;
    bool owns_span = false;
    // Scratch for the recompute pass.
    double new_rate = 0;
    bool fixed = false;
    std::int64_t mark = 0;  // component-BFS visit epoch
  };

  /// Advance one flow's remaining_bits to `now` at its current (constant
  /// since the last recompute that touched it) rate.
  void integrateFlow(Flow& f, sim::SimTime now);
  /// Insert / remove a flow in the link→flows reverse index, maintaining
  /// the per-link active counts and busy-time accrual transitions.
  void indexFlow(FlowId id, Flow& f, sim::SimTime now);
  void unindexFlow(FlowId id, const Flow& f, sim::SimTime now);
  /// Start a fresh component collection; seedDlink() plants BFS roots.
  void beginComponent();
  void seedDlink(std::uint32_t d);
  /// Close the component under flow↔link adjacency (or take every active
  /// flow when incremental mode is off), run progressive filling over it,
  /// and reschedule the drains whose rates moved. Increments
  /// net.flow.share_recomputes and records the visit scope.
  void recomputeComponent();
  /// Progressive filling over comp_/comp_dlinks_ via the min-share heap;
  /// fills each flow's new_rate.
  void shareComponent();
  /// Apply new_rate to comp flows in ascending FlowId order: integrate,
  /// park zero-rate flows as stalled, reschedule drain events.
  void rescheduleComponent();
  void finishDrain(FlowId id);
  void abortMatching(const std::function<bool(const Flow&)>& pred, const std::string& reason);
  void deliverPacket(Packet&& pkt);
  void publishActiveGauges();
  void publishLinkGauges(std::size_t lid, sim::SimTime now);
  double linkBusySeconds(std::size_t lid, sim::SimTime now) const;
  double nowNetSeconds() const;

  NetworkModel& model_;
  sim::Simulator& sim_;
  FlowNetworkOptions opts_;

  std::map<FlowId, Flow> flows_;  // ordered: deterministic iteration
  FlowId next_id_ = 1;

  // Link→flows reverse index, per directed link (link*2 + dir). Each entry
  // carries the Flow* (std::map nodes are pointer-stable until erase) so the
  // hot recompute paths never pay a map lookup. Insertion order within a
  // dlink is load order; recompute determinism never depends on it
  // (component flows are sorted by id before use).
  struct IndexEntry {
    FlowId id;
    Flow* flow;
  };
  std::vector<std::vector<IndexEntry>> dlink_flows_;

  // Component-collection scratch (sized links*2; epoch-marked so clearing
  // is O(component), not O(links)).
  std::vector<std::int64_t> dlink_mark_;
  std::int64_t comp_epoch_ = 0;
  std::vector<IndexEntry> comp_;  // component flows, ascending id
  std::vector<std::uint32_t> comp_dlinks_;
  std::vector<std::uint32_t> abort_seeds_;

  // Progressive-filling scratch, sized links*2: residual capacity and
  // unfixed-flow counts (all zero outside shareComponent), the (share,
  // dlink) min-heap, and per-round dirty-link dedup marks.
  std::vector<double> cap_;
  std::vector<int> cnt_;
  std::vector<std::pair<double, std::uint32_t>> heap_;
  std::vector<std::uint32_t> dirty_;
  std::vector<std::int64_t> round_mark_;
  std::int64_t round_epoch_ = 0;

  // Per-link busy accounting: accrual happens at occupancy *transitions*
  // (first flow arrives / last flow leaves), not per recompute. A link is
  // busy while >= 1 flow crosses it in either direction — stalled flows
  // hold their route, so they count. Gauges materialize lazily, covering
  // only links that actually saw fluid traffic.
  std::vector<int> link_active_;            // flows currently crossing (undirected)
  std::vector<sim::SimTime> link_busy_since_;  // kernel time of the 0→1 edge
  std::vector<double> link_busy_s_;         // closed-span network seconds
  std::vector<obs::Gauge*> g_link_busy_;
  std::vector<obs::Gauge*> g_link_util_;

  obs::Counter& c_started_;
  obs::Counter& c_completed_;
  obs::Counter& c_aborted_;
  obs::Counter& c_bytes_;
  obs::Counter& c_recomputes_;
  obs::Counter& c_visited_;
  obs::Counter& c_stalled_;
  obs::Counter& c_dropped_down_;
  obs::Gauge& g_active_;
  obs::Gauge& g_peak_;
  util::Histogram& h_scope_;
  obs::TraceBus::Channel& trace_;
  std::int64_t peak_active_ = 0;
};

/// The pure fluid model: every send/transfer goes through the FlowEngine.
class FlowNetwork : public NetworkModel {
 public:
  FlowNetwork(sim::Simulator& sim, Topology topo, FlowNetworkOptions opts = {});

  NetModelKind kind() const override { return NetModelKind::Flow; }

  /// Datagram-as-flow: the packet is delivered whole to the destination
  /// handler when its flow completes.
  void send(Packet&& pkt) override;

  bool escalate(NodeId, NodeId, std::uint16_t) const override { return false; }
  FlowEngine* flows() override { return &engine_; }
  FlowEngine& engine() { return engine_; }

  const FlowNetworkOptions& options() const { return engine_.options(); }
  FlowNetworkStats stats() const { return engine_.stats(); }

  /// Modeled duration of an uncontended transfer.
  sim::SimTime estimate(NodeId src, NodeId dst, std::int64_t bytes) const {
    return engine_.estimate(src, dst, bytes);
  }

  /// Blocking transfer of `bytes` payload from src to dst (process
  /// context). Returns the network-time duration the transfer took
  /// (unscaled). Throws ConfigError if the nodes are not connected and
  /// mg::Error if a fault aborts the flow mid-transfer.
  sim::SimTime transfer(NodeId src, NodeId dst, std::int64_t bytes);

  void registerTelemetry(obs::TelemetrySampler& sampler) override {
    engine_.registerTelemetry(sampler);
  }

  void saveState(obs::StateWriter& w) const override {
    NetworkModel::saveState(w);
    engine_.saveState(w);
  }

 protected:
  void onLinkDown(LinkId link) override { engine_.abortFlowsOnLink(link, "link_down"); }
  // Up transitions are no-ops for the fluid engine: a restored link or node
  // carries no flows (everything crossing it was aborted when it went
  // down), routes are fixed at flow start, and progressive filling never
  // reads up/down flags — so no active flow's rate can change.
  void onLinkUp(LinkId) override {}
  void onNodeDown(NodeId node) override { engine_.abortFlowsAtNode(node, "node_down"); }
  void onNodeUp(NodeId) override {}
  void onLinkParamsChanged(LinkId link) override { engine_.onLinkChanged(link); }

 private:
  FlowEngine engine_;
};

}  // namespace mg::net
