// Analytic flow-level network model.
//
// Serves two roles (DESIGN.md §2-§3):
//  * the "physical grid" reference model — message time is latency plus
//    serialization at the path bottleneck plus per-message software
//    overhead, with per-link FIFO contention;
//  * the scalability ablation the paper's future work calls for (packet-
//    level NSE "does not scale up to large simulations well").
//
// transfer() blocks the calling simulated process for the modeled duration.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "sim/simulator.h"

namespace mg::net {

struct FlowNetworkOptions {
  /// Kernel-clock nanoseconds per network nanosecond (see PacketNetwork).
  double time_scale = 1.0;
  /// Fixed per-message software/protocol overhead (both endpoints total).
  sim::SimTime per_message_overhead = 60 * sim::kMicrosecond;
  /// Wire bytes per payload byte (headers + framing); 1538/1460 for
  /// TCP/IPv4 over Ethernet at full-MSS segments.
  double byte_overhead = 1538.0 / 1460.0;
};

/// Snapshot view over the `net.flow.*` registry counters.
struct FlowNetworkStats {
  std::int64_t transfers = 0;
  std::int64_t bytes = 0;
};

class FlowNetwork {
 public:
  FlowNetwork(sim::Simulator& sim, Topology topo, FlowNetworkOptions opts = {});

  const Topology& topology() const { return topo_; }
  const RoutingTable& routing() const { return routing_; }
  FlowNetworkStats stats() const;

  /// Blocking transfer of `bytes` payload from src to dst. Returns the
  /// network-time duration the transfer took (unscaled). Throws ConfigError
  /// if the nodes are not connected.
  sim::SimTime transfer(NodeId src, NodeId dst, std::int64_t bytes);

  /// Reserve link capacity for a transfer starting now, without blocking.
  /// Returns the absolute kernel-clock completion time (schedule delivery
  /// there). Throws ConfigError if the nodes are not connected.
  sim::SimTime reserveTransfer(NodeId src, NodeId dst, std::int64_t bytes);

  /// Modeled duration of an uncontended transfer (no reservation made).
  sim::SimTime estimate(NodeId src, NodeId dst, std::int64_t bytes) const;

 private:
  sim::Simulator& sim_;
  Topology topo_;
  RoutingTable routing_;
  FlowNetworkOptions opts_;
  obs::Counter& c_transfers_;
  obs::Counter& c_bytes_;
  obs::TraceBus::Channel& trace_;
  // Per-link, per-direction earliest availability, in network time.
  std::vector<sim::SimTime> link_free_at_;
};

}  // namespace mg::net
