// Analytic flow-level network model with max-min fair bandwidth sharing.
//
// Every transfer is a *fluid flow*: it streams across all links of its
// (fixed-at-start) route simultaneously, and concurrent flows sharing a
// directed link split its bandwidth max-min fairly (progressive filling,
// the classic water-filling allocation SimGrid's surf and MONARC-style grid
// simulators use). Kernel events exist only at flow *state changes* — start,
// drain, completion, fault — never per packet per hop, which is what lets
// the fluid model scale orders of magnitude past the packet simulator
// (DESIGN.md §8, the paper's "does not scale up to large simulations"
// bottleneck).
//
// Fault-aware like the packet model: a link or node going down aborts the
// flows crossing it (their owners observe TCP-dying-gasp-style resets) and
// re-shares the survivors; link degrades re-share in place. Routing comes
// from the shared fault-aware RoutingTable; flows do not re-route mid-
// flight.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "net/network_model.h"

namespace mg::net {

struct FlowNetworkOptions {
  /// Kernel-clock nanoseconds per network nanosecond (see PacketNetwork).
  double time_scale = 1.0;
  /// Fixed per-message software/protocol overhead (both endpoints total).
  sim::SimTime per_message_overhead = 60 * sim::kMicrosecond;
  /// Wire bytes per payload byte (headers + framing); 1538/1460 for
  /// TCP/IPv4 over Ethernet at full-MSS segments.
  double byte_overhead = 1538.0 / 1460.0;
};

/// Identifies an active flow; kNoFlow for flows that never entered the
/// shared-link stage (same-node or zero-byte transfers).
using FlowId = std::int64_t;
constexpr FlowId kNoFlow = 0;

/// Snapshot view over the `net.flow.*` registry counters/gauges.
struct FlowNetworkStats {
  std::int64_t flows_started = 0;
  std::int64_t flows_completed = 0;
  std::int64_t flows_aborted = 0;     // killed by link/node faults
  std::int64_t payload_bytes = 0;     // offered payload (at start)
  std::int64_t share_recomputes = 0;  // max-min recompute passes
  std::int64_t dropped_down = 0;      // packet-as-flow sends lost to faults
  std::int64_t active_flows = 0;      // current
  std::int64_t peak_active_flows = 0;
};

/// The max-min fair fluid engine. Owned by FlowNetwork (all traffic) and
/// HybridNetwork (non-escalated traffic); platforms reach it through
/// NetworkModel::flows() to run socket-level transfers as single events.
class FlowEngine {
 public:
  using CompleteFn = std::function<void()>;
  using AbortFn = std::function<void(const std::string& reason)>;
  /// Fires when the last bit leaves the source (link capacity released),
  /// before the latency + overhead delivery tail. Lets pipelined senders
  /// chain their next chunk at the drain boundary — exactly when the wire
  /// frees up — instead of waiting a full one-way delivery.
  using DrainFn = std::function<void()>;

  FlowEngine(NetworkModel& model, FlowNetworkOptions opts);
  FlowEngine(const FlowEngine&) = delete;
  FlowEngine& operator=(const FlowEngine&) = delete;

  /// Start a flow of `payload_bytes` (wire size = payload * byte_overhead).
  /// on_complete fires in event context when the last bit has drained plus
  /// path latency plus per-message overhead; on_abort fires instead if a
  /// link or node on the flow's route goes down mid-transfer. Throws
  /// ConfigError if the nodes are not connected.
  FlowId start(NodeId src, NodeId dst, std::int64_t payload_bytes, CompleteFn on_complete,
               AbortFn on_abort = {}, DrainFn on_drain = {});

  /// Low-level variant with explicit wire bits (the packet-as-flow path
  /// knows its exact framing). `span`, when nonzero, is an externally owned
  /// transit span: the engine neither creates nor closes one.
  FlowId startBits(NodeId src, NodeId dst, double wire_bits, std::int64_t payload_bytes,
                   CompleteFn on_complete, AbortFn on_abort, obs::SpanId span = 0,
                   DrainFn on_drain = {});

  /// Model one packet as a flow of its wire size; delivery invokes the
  /// destination node's handler (NetworkModel::attachHost). Unroutable or
  /// fault-killed packets are dropped under `net.flow.dropped_down`.
  void sendPacket(Packet&& pkt);

  /// Modeled duration of an uncontended transfer (no flow started):
  /// per_message_overhead + path latency + wire_bits / bottleneck.
  sim::SimTime estimate(NodeId src, NodeId dst, std::int64_t payload_bytes) const;

  /// Fault hooks (the owning model calls these from NetworkModel's barrier
  /// hooks, after the topology flip).
  void abortFlowsOnLink(LinkId link, const std::string& reason);
  void abortFlowsAtNode(NodeId node, const std::string& reason);
  /// Link capacity/latency changed (degrade, restore, link-up): re-share.
  void reshare();

  int activeFlows() const { return static_cast<int>(flows_.size()); }
  /// A flow's current max-min rate in bits/s; 0 when the id is not active
  /// (fairness oracles in tests).
  double currentRateBps(FlowId id) const;
  /// Fraction of network time a link has carried at least one flow.
  double linkUtilization(LinkId link) const;
  const FlowNetworkOptions& options() const { return opts_; }
  FlowNetworkStats stats() const;

 private:
  struct Flow {
    NodeId src = kNoNode;
    NodeId dst = kNoNode;
    std::vector<std::uint32_t> dlinks;  // directed links: link*2 + dir
    std::vector<NodeId> nodes;          // path nodes incl. endpoints
    sim::SimTime latency = 0;           // path latency at start (network time)
    double remaining_bits = 0;
    double rate_bps = 0;
    sim::EventId drain_event = 0;
    CompleteFn on_complete;
    AbortFn on_abort;
    DrainFn on_drain;
    obs::SpanId span = 0;
    bool owns_span = false;
    // Scratch for shareOut().
    double new_rate = 0;
    bool fixed = false;
  };

  /// Advance remaining_bits and per-link busy time to `now` at the current
  /// rates (rates are constant between recomputes, so this is exact).
  void integrateTo(sim::SimTime now);
  /// Progressive filling over the active flows; reschedules the drain event
  /// of every flow whose rate changed.
  void shareOut();
  void recompute();
  void finishDrain(FlowId id);
  void abortMatching(const std::function<bool(const Flow&)>& pred, const std::string& reason);
  void deliverPacket(Packet&& pkt);
  void publishActiveGauges();
  double nowNetSeconds() const;

  NetworkModel& model_;
  sim::Simulator& sim_;
  FlowNetworkOptions opts_;

  std::map<FlowId, Flow> flows_;  // ordered: deterministic iteration
  FlowId next_id_ = 1;
  sim::SimTime last_update_ = 0;  // kernel time of last integration

  // Scratch arrays for shareOut()/integrateTo(), sized links*2 (directed)
  // or links (undirected), reset per pass via the epoch mark.
  std::vector<double> cap_;
  std::vector<int> cnt_;
  std::vector<std::uint32_t> touched_;
  std::vector<std::int64_t> busy_mark_;
  std::int64_t epoch_ = 0;

  // Per-link busy accounting (network seconds carrying >= 1 flow), with
  // lazily created registry gauges so --metrics output covers only links
  // that actually saw fluid traffic.
  std::vector<double> link_busy_s_;
  std::vector<obs::Gauge*> g_link_busy_;
  std::vector<obs::Gauge*> g_link_util_;

  obs::Counter& c_started_;
  obs::Counter& c_completed_;
  obs::Counter& c_aborted_;
  obs::Counter& c_bytes_;
  obs::Counter& c_recomputes_;
  obs::Counter& c_dropped_down_;
  obs::Gauge& g_active_;
  obs::Gauge& g_peak_;
  obs::TraceBus::Channel& trace_;
  std::int64_t peak_active_ = 0;
};

/// The pure fluid model: every send/transfer goes through the FlowEngine.
class FlowNetwork : public NetworkModel {
 public:
  FlowNetwork(sim::Simulator& sim, Topology topo, FlowNetworkOptions opts = {});

  NetModelKind kind() const override { return NetModelKind::Flow; }

  /// Datagram-as-flow: the packet is delivered whole to the destination
  /// handler when its flow completes.
  void send(Packet&& pkt) override;

  bool escalate(NodeId, NodeId, std::uint16_t) const override { return false; }
  FlowEngine* flows() override { return &engine_; }
  FlowEngine& engine() { return engine_; }

  const FlowNetworkOptions& options() const { return engine_.options(); }
  FlowNetworkStats stats() const { return engine_.stats(); }

  /// Modeled duration of an uncontended transfer.
  sim::SimTime estimate(NodeId src, NodeId dst, std::int64_t bytes) const {
    return engine_.estimate(src, dst, bytes);
  }

  /// Blocking transfer of `bytes` payload from src to dst (process
  /// context). Returns the network-time duration the transfer took
  /// (unscaled). Throws ConfigError if the nodes are not connected and
  /// mg::Error if a fault aborts the flow mid-transfer.
  sim::SimTime transfer(NodeId src, NodeId dst, std::int64_t bytes);

 protected:
  void onLinkDown(LinkId link) override { engine_.abortFlowsOnLink(link, "link_down"); }
  void onLinkUp(LinkId) override { engine_.reshare(); }
  void onNodeDown(NodeId node) override { engine_.abortFlowsAtNode(node, "node_down"); }
  void onNodeUp(NodeId) override { engine_.reshare(); }
  void onLinkParamsChanged(LinkId) override { engine_.reshare(); }

 private:
  FlowEngine engine_;
};

}  // namespace mg::net
