// The online packet-level network simulator (the paper's VINT/NSE role):
// packets travel hop-by-hop over drop-tail queued links and are delivered to
// the destination host's transport dispatch at the right simulated time.
//
// A `time_scale` multiplies every network duration when scheduling onto the
// kernel clock. The MicroGrid platform runs the network at 1/rate so that
// virtual-time behaviour is preserved at any emulation rate (paper Fig 15).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "net/packet.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mg::net {

struct PacketNetworkOptions {
  /// Kernel-clock nanoseconds per network nanosecond.
  double time_scale = 1.0;
  /// Per-packet processing delay at each intermediate router.
  sim::SimTime router_forward_delay = 10 * sim::kMicrosecond;
  /// Per-packet host protocol-stack overhead (send and receive side each).
  sim::SimTime host_stack_delay = 15 * sim::kMicrosecond;
  /// Seed for the loss process.
  std::uint64_t seed = 0xC0FFEE;
};

/// Snapshot view over the `net.packet.*` registry counters (the counters are
/// the source of truth; this struct exists so call sites keep their
/// `stats().packets_sent` shape).
struct PacketNetworkStats {
  std::int64_t packets_sent = 0;       // injected by transports
  std::int64_t packets_delivered = 0;  // handed to a destination transport
  std::int64_t packets_dropped_queue = 0;
  std::int64_t packets_dropped_loss = 0;
  std::int64_t packets_dropped_down = 0;  // link down or no route
  // Fault-specific sub-causes of packets_dropped_down (which stays the
  // aggregate), plus the Dijkstra recompute count.
  std::int64_t packets_dropped_link_down = 0;
  std::int64_t packets_dropped_node_down = 0;
  std::int64_t route_recomputes = 0;
  std::int64_t bytes_delivered = 0;  // payload bytes
  std::int64_t wire_bytes_sent = 0;  // includes headers/framing/retransmits
};

class PacketNetwork {
 public:
  using PacketHandler = std::function<void(Packet&&)>;

  PacketNetwork(sim::Simulator& sim, Topology topo, PacketNetworkOptions opts = {});

  sim::Simulator& simulator() { return sim_; }
  const Topology& topology() const { return topo_; }
  const RoutingTable& routing() const { return routing_; }
  PacketNetworkStats stats() const;
  const PacketNetworkOptions& options() const { return opts_; }

  /// Install the transport dispatch for a host node. One handler per node;
  /// replacing is allowed (tests), unhandled packets are dropped.
  void attachHost(NodeId node, PacketHandler handler);

  /// Inject a packet at its source node. Takes the full path through link
  /// queues; delivery invokes the destination node's handler.
  void send(Packet&& pkt);

  /// Administratively set a link up or down and recompute routes (exactly
  /// once per actual state change; a same-state call is a no-op). Packets
  /// already queued on a downed link are dropped and counted under
  /// `net.packet.drop_link_down`.
  void setLinkUp(LinkId link, bool up);

  /// Mark a node up or down (host crash / restart). A down node neither
  /// receives packets (dropped at delivery, `net.packet.drop_node_down`)
  /// nor forwards (routing recomputes around it); packets queued toward it
  /// are dropped, while its own already-queued outbound packets drain (the
  /// dying kernel's last-gasp RSTs must reach established peers).
  void setNodeUp(NodeId node, bool up);
  bool nodeUp(NodeId node) const { return topo_.node(node).up; }

  /// A link's mutable performance parameters, for fault injection
  /// (link_degrade / restore). Changing them recomputes routing, since the
  /// Dijkstra weights depend on latency and bandwidth.
  struct LinkParams {
    double bandwidth_bps = 0;
    sim::SimTime latency = 0;
    double loss_rate = 0;
  };
  LinkParams linkParams(LinkId link) const;
  void applyLinkParams(LinkId link, const LinkParams& params);

  /// Convert a network-time duration to kernel-clock time (multiplies by
  /// time_scale). Transports use this for their protocol timers so that RTO
  /// and friends stay correct in rescaled emulations.
  sim::SimTime scaleDuration(sim::SimTime t) const { return scaled(t); }

 private:
  // Per-direction link queue state. Direction 0 = a->b, 1 = b->a.
  struct LinkQueue {
    std::deque<Packet> queue;
    std::int64_t queued_bytes = 0;
    bool busy = false;
  };

  LinkQueue& queueFor(LinkId link, NodeId from);
  void dropQueued(LinkId link, obs::Counter& cause);
  void dropQueuedDir(LinkId link, int dir, obs::Counter& cause);
  void recomputeRoutes();
  void forward(NodeId at, Packet&& pkt);
  void enqueue(LinkId link, NodeId from, Packet&& pkt);
  void startTransmit(LinkId link, NodeId from);
  void deliverLocal(Packet&& pkt);
  sim::SimTime scaled(sim::SimTime t) const;
  std::uint32_t parkInFlight(Packet&& pkt);
  Packet takeInFlight(std::uint32_t slot);

  sim::Simulator& sim_;
  Topology topo_;
  RoutingTable routing_;
  PacketNetworkOptions opts_;
  // net.packet.* counter handles, resolved once against sim_.metrics().
  obs::Counter& c_sent_;
  obs::Counter& c_delivered_;
  obs::Counter& c_dropped_queue_;
  obs::Counter& c_dropped_loss_;
  obs::Counter& c_dropped_down_;
  // Fault-specific sub-causes of dropped_down (which stays the aggregate).
  obs::Counter& c_dropped_link_down_;
  obs::Counter& c_dropped_node_down_;
  obs::Counter& c_route_recomputes_;
  obs::Counter& c_bytes_delivered_;
  obs::Counter& c_wire_bytes_;
  obs::TraceBus::Channel& trace_;
  util::Rng rng_;
  std::vector<PacketHandler> handlers_;
  // linkqueues_[link * 2 + direction]
  std::vector<LinkQueue> link_queues_;
  // True when time_scale == 1.0 exactly: scaled() is then the identity and
  // skips the int -> double -> llround round-trip on every hop.
  bool unit_time_scale_ = false;
  // In-flight packet records: packets traversing a latency/stack-delay leg
  // park here so the completion event captures only a slot index (which
  // keeps it inside EventFn's inline buffer — no allocation per hop). Slots
  // are recycled through a free list; the pool's size is the high-water mark
  // of concurrently in-flight packets, and a recycled slot's payload buffer
  // is re-stolen by the next move-assign rather than reallocated.
  std::vector<Packet> flight_;
  std::vector<std::uint32_t> flight_free_;
};

}  // namespace mg::net
