// The online packet-level network simulator (the paper's VINT/NSE role):
// packets travel hop-by-hop over drop-tail queued links and are delivered to
// the destination host's transport dispatch at the right simulated time.
//
// A `time_scale` multiplies every network duration when scheduling onto the
// kernel clock. The MicroGrid platform runs the network at 1/rate so that
// virtual-time behaviour is preserved at any emulation rate (paper Fig 15).
//
// Parallel execution (DESIGN.md §7): setPartitionPlan() shards the wire
// pipeline across the simulator's event lanes — node n's queues and hop
// events live on lane partitionOf(n)+1, while transports, handlers, and
// deliverLocal stay on the process lane (lane 0). Every lane crossing rides
// a physical delay that is at least wireLookahead() long: the sender-side
// host stack delay into the wire (send), a cut link's latency between wire
// partitions, and latency + receiver stack delay back to lane 0 (final hop),
// so the conservative engine never needs to violate its horizon. Loss draws
// use one RNG stream per lane; each stream's consumption order is fixed by
// its own lane's deterministic event order, making drops independent of the
// worker count.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "net/network_model.h"
#include "net/packet.h"
#include "net/partition.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace mg::net {

struct PacketNetworkOptions {
  /// Kernel-clock nanoseconds per network nanosecond.
  double time_scale = 1.0;
  /// Per-packet processing delay at each intermediate router.
  sim::SimTime router_forward_delay = 10 * sim::kMicrosecond;
  /// Per-packet host protocol-stack overhead (send and receive side each).
  sim::SimTime host_stack_delay = 15 * sim::kMicrosecond;
  /// Seed for the loss process.
  std::uint64_t seed = 0xC0FFEE;
};

/// Snapshot view over the `net.packet.*` registry counters (the counters are
/// the source of truth; this struct exists so call sites keep their
/// `stats().packets_sent` shape).
struct PacketNetworkStats {
  std::int64_t packets_sent = 0;       // injected by transports
  std::int64_t packets_delivered = 0;  // handed to a destination transport
  std::int64_t packets_dropped_queue = 0;
  std::int64_t packets_dropped_loss = 0;
  std::int64_t packets_dropped_down = 0;  // link down or no route
  // Fault-specific sub-causes of packets_dropped_down (which stays the
  // aggregate), plus the Dijkstra recompute count.
  std::int64_t packets_dropped_link_down = 0;
  std::int64_t packets_dropped_node_down = 0;
  std::int64_t route_recomputes = 0;
  std::int64_t bytes_delivered = 0;  // payload bytes
  std::int64_t wire_bytes_sent = 0;  // includes headers/framing/retransmits
};

class PacketNetwork : public NetworkModel {
 public:
  PacketNetwork(sim::Simulator& sim, Topology topo, PacketNetworkOptions opts = {});

  NetModelKind kind() const override { return NetModelKind::Packet; }

  PacketNetworkStats stats() const;
  const PacketNetworkOptions& options() const { return opts_; }

  /// Inject a packet at its source node. Takes the full path through link
  /// queues; delivery invokes the destination node's handler.
  void send(Packet&& pkt) override;

  /// Kept for call-site compatibility; identical to net::LinkParams.
  using LinkParams = net::LinkParams;

  // --- parallel execution ---

  /// Shard the wire pipeline by the given partition plan. Requires the
  /// simulator to have been configured with plan.partitions + 1 lanes (lane
  /// 0 stays the process lane) and must be called before any packet flows.
  /// A single-partition plan is a no-op (classic single-lane operation).
  void setPartitionPlan(const PartitionPlan& plan) override;

  /// The lane carrying a node's wire events: partition + 1 when sharded,
  /// 0 otherwise.
  int laneOf(NodeId node) const override {
    return laned_ ? plan_.partitionOf(node) + 1 : 0;
  }

  /// The conservative lookahead the wire pipeline guarantees between lanes:
  /// scaled(min(host_stack_delay, min cut-link latency)). 0 when unsharded
  /// (or when the plan/options give no positive bound — the platform then
  /// falls back to sequential execution).
  sim::SimTime wireLookahead() const override;

  /// Time-resolved probes (DESIGN.md §10): delivered/wire-byte rates plus
  /// one net.packet.link_util.<name> series per link — the summed duplex
  /// utilization (1.0 = one direction saturated, 2.0 = both), from the
  /// per-direction busy-time accrual. Probe reads happen at sampler ticks
  /// (sequential or barrier), where the wire lanes are idle, so reading the
  /// sharded queues is race-free.
  void registerTelemetry(obs::TelemetrySampler& sampler) override;

  /// Base link/node state plus the packet machinery: per-direction queue
  /// occupancy and busy accounting, in-flight pool occupancy, and every
  /// lane's loss-process RNG stream.
  void saveState(obs::StateWriter& w) const override;

 protected:
  // Fault hooks (NetworkModel runs them at the barrier, between the state
  // flip and the routing recompute). Packets already queued on a downed
  // link are dropped and counted under `net.packet.drop_link_down`; packets
  // queued *toward* a downed node are dropped under
  // `net.packet.drop_node_down` while its own outbound packets drain (the
  // dying kernel's last-gasp RSTs must reach established peers).
  void onLinkDown(LinkId link) override;
  void onNodeDown(NodeId node) override;
  void validateLinkParams(LinkId link, const net::LinkParams& params) const override;

 private:
  // Per-direction link queue state. Direction 0 = a->b, 1 = b->a.
  // Busy-time accrues at occupancy transitions (transmit starts on an idle
  // direction / queue drains empty), per direction, on whichever lane owns
  // the queue — cut links drive their two directions from different lanes,
  // so a per-link aggregate only exists at barrier-synchronized reads.
  struct LinkQueue {
    std::deque<Packet> queue;
    std::int64_t queued_bytes = 0;
    bool busy = false;
    sim::SimTime busy_since = 0;  // kernel time of the idle->busy edge
    sim::SimTime busy_ns = 0;     // closed busy spans, kernel ns
  };

  LinkQueue& queueFor(LinkId link, NodeId from);
  /// Cumulative kernel-seconds both directions spent transmitting, open
  /// intervals closed against sample time `t` (clamped non-negative).
  double linkBusyKernelSeconds(LinkId link, sim::SimTime t) const;
  void dropQueued(LinkId link, obs::Counter& cause);
  void dropQueuedDir(LinkId link, int dir, obs::Counter& cause);
  void forward(NodeId at, Packet&& pkt);
  void enqueue(LinkId link, NodeId from, Packet&& pkt);
  void startTransmit(LinkId link, NodeId from);
  void deliverLocal(Packet&& pkt);
  std::uint32_t parkInFlight(Packet&& pkt);
  Packet takeInFlight(std::uint32_t slot);

  PacketNetworkOptions opts_;
  // net.packet.* counter handles, resolved once against sim_.metrics().
  obs::Counter& c_sent_;
  obs::Counter& c_delivered_;
  obs::Counter& c_dropped_queue_;
  obs::Counter& c_dropped_loss_;
  obs::Counter& c_dropped_down_;
  // Fault-specific sub-causes of dropped_down (which stays the aggregate).
  obs::Counter& c_dropped_link_down_;
  obs::Counter& c_dropped_node_down_;
  obs::Counter& c_bytes_delivered_;
  obs::Counter& c_wire_bytes_;
  obs::TraceBus::Channel& trace_;
  // One loss-process RNG stream per lane (index = lane). rngs_[0] is seeded
  // with opts.seed exactly as the classic single-stream network was; wire
  // lanes get deterministically derived streams in setPartitionPlan().
  std::vector<util::Rng> rngs_;
  // linkqueues_[link * 2 + direction]
  std::vector<LinkQueue> link_queues_;
  // In-flight packet records: packets traversing a latency/stack-delay leg
  // park here so the completion event captures only a slot index (which
  // keeps it inside EventFn's inline buffer — no allocation per hop). Slots
  // are recycled through a free list; the pool's size is the high-water mark
  // of concurrently in-flight packets, and a recycled slot's payload buffer
  // is re-stolen by the next move-assign rather than reallocated.
  //
  // One pool per lane: a park and its matching take always happen on the
  // same lane (cross-lane legs carry the Packet inside the event closure
  // instead), so pools are single-threaded by the lane-drain discipline.
  struct FlightPool {
    std::vector<Packet> slots;
    std::vector<std::uint32_t> free;
  };
  std::vector<FlightPool> flight_;
  // True when setPartitionPlan installed a multi-partition plan.
  bool laned_ = false;
};

}  // namespace mg::net
