// Per-host transport bundle: one TCP stack and one UDP stack sharing the
// node's single attachment point on the packet network.
#pragma once

#include <memory>

#include "net/tcp.h"
#include "net/udp.h"

namespace mg::net {

class HostStack {
 public:
  HostStack(NetworkModel& net, NodeId node, TcpOptions tcp_opts = {})
      : tcp_(net, node, tcp_opts), udp_(net, node) {
    net.attachHost(node, [this](Packet&& pkt) {
      if (pkt.protocol == Protocol::Tcp) {
        tcp_.onPacket(std::move(pkt));
      } else {
        udp_.onPacket(std::move(pkt));
      }
    });
  }
  HostStack(const HostStack&) = delete;
  HostStack& operator=(const HostStack&) = delete;

  TcpStack& tcp() { return tcp_; }
  UdpStack& udp() { return udp_; }
  NodeId node() const { return tcp_.node(); }

 private:
  TcpStack tcp_;
  UdpStack udp_;
};

}  // namespace mg::net
