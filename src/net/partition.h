// Topology partitioning for parallel wire simulation (DESIGN.md §7).
//
// planPartitions() cuts the topology along its highest-latency links: it
// finds the largest latency threshold tau such that contracting every link
// with latency < tau leaves at least two connected components, then buckets
// the components into at most `max_partitions` partitions. Every link whose
// endpoints land in different partitions (a *cut link*) has latency >= tau
// by construction — that latency is the conservative lookahead that lets
// partitions simulate independently inside each synchronization window.
//
// The plan is a pure function of the topology (component bucketing breaks
// ties on smallest node id), so every run of a configuration — at any worker
// count — partitions identically; this is one of the two pillars of the
// parallel determinism guarantee (the other is the barrier merge order).
#pragma once

#include <vector>

#include "net/topology.h"

namespace mg::net {

struct PartitionPlan {
  /// partition_of[node] in [0, partitions). Empty when partitions == 1.
  std::vector<int> partition_of;
  int partitions = 1;
  /// The latency threshold: every cut link has latency >= cut_latency.
  sim::SimTime cut_latency = 0;
  /// Links whose endpoints are in different partitions.
  std::vector<LinkId> cut_links;

  int partitionOf(NodeId node) const {
    if (partitions <= 1 || node < 0 || static_cast<std::size_t>(node) >= partition_of.size()) {
      return 0;
    }
    return partition_of[static_cast<std::size_t>(node)];
  }
};

/// Compute the latency-cut partition plan. Returns a single-partition plan
/// (partitions == 1) when the topology has no useful cut: fewer than two
/// components at every threshold, or max_partitions < 2. Down links still
/// connect for planning purposes — the plan must not depend on transient
/// fault state, only on structure.
PartitionPlan planPartitions(const Topology& topo, int max_partitions);

}  // namespace mg::net
