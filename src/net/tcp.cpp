#include "net/tcp.h"

#include <algorithm>
#include <cstring>

#include "util/log.h"

namespace mg::net {

// ===========================================================================
// TcpConnection
// ===========================================================================

TcpConnection::TcpConnection(TcpStack& stack, NodeId remote_node, std::uint16_t local_port,
                             std::uint16_t remote_port, const TcpOptions& opts)
    : stack_(stack),
      sim_(stack.simulator()),
      opts_(opts),
      local_node_(stack.node()),
      remote_node_(remote_node),
      local_port_(local_port),
      remote_port_(remote_port),
      established_cond_(sim_),
      readable_(sim_),
      writable_(sim_) {
  cwnd_ = static_cast<double>(opts_.initial_cwnd);
  ssthresh_ = static_cast<double>(opts_.initial_ssthresh);
  rto_ = kernelTime(opts_.min_rto * 5);  // conservative until the first RTT sample
  last_advertised_window_ = opts_.recv_buffer;
}

sim::SimTime TcpConnection::kernelTime(sim::SimTime virtual_time) const {
  return stack_.network().scaleDuration(virtual_time);
}

bool TcpConnection::established() const { return state_ == State::Established && !error_; }

Packet TcpConnection::makePacket(std::uint8_t flags) const {
  Packet p;
  p.src = local_node_;
  p.dst = remote_node_;
  p.protocol = Protocol::Tcp;
  p.src_port = local_port_;
  p.dst_port = remote_port_;
  p.flags = flags;
  p.ack = rcv_nxt_;
  p.window = advertisedWindow();
  return p;
}

std::int64_t TcpConnection::advertisedWindow() const {
  const std::int64_t used = static_cast<std::int64_t>(recv_buf_.size()) + out_of_order_bytes_;
  return std::max<std::int64_t>(0, opts_.recv_buffer - used);
}

std::int64_t TcpConnection::effectiveWindow() const {
  return std::max<std::int64_t>(0, std::min<std::int64_t>(static_cast<std::int64_t>(cwnd_), peer_window_));
}

// --------------------------------------------------------------- app calls --

void TcpConnection::send(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  if (local_closed_) throw UsageError("send after close");
  std::size_t remaining = n;
  while (remaining > 0) {
    if (error_) throw ConnectionReset(error_what_);
    const std::int64_t space =
        opts_.send_buffer - static_cast<std::int64_t>(send_buf_.size());
    if (space <= 0) {
      writable_.wait();
      continue;
    }
    const std::size_t take = std::min(remaining, static_cast<std::size_t>(space));
    send_buf_.insert(send_buf_.end(), p, p + take);
    p += take;
    remaining -= take;
    bytes_sent_ += static_cast<std::int64_t>(take);
    stack_.c_bytes_sent_.inc(static_cast<std::int64_t>(take));
    pump();
  }
}

std::size_t TcpConnection::recv(void* buf, std::size_t max) {
  if (max == 0) return 0;
  while (recv_buf_.empty()) {
    if (error_) throw ConnectionReset(error_what_);
    if (peer_fin_ && rcv_nxt_ >= peer_fin_seq_) return 0;  // orderly EOF
    readable_.wait();
  }
  const std::size_t n = std::min(max, recv_buf_.size());
  auto* out = static_cast<std::uint8_t*>(buf);
  std::copy_n(recv_buf_.begin(), n, out);
  recv_buf_.erase(recv_buf_.begin(), recv_buf_.begin() + static_cast<std::ptrdiff_t>(n));
  bytes_received_ += static_cast<std::int64_t>(n);
  stack_.c_bytes_received_.inc(static_cast<std::int64_t>(n));
  // Window-update ACK: tell a sender stalled on a closed window that space
  // has opened (replaces the receiver half of the persist machinery).
  if (last_advertised_window_ < kTcpMss && advertisedWindow() >= kTcpMss) {
    sendPureAck();
  }
  return n;
}

void TcpConnection::recvExact(void* buf, std::size_t n) {
  auto* out = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const std::size_t r = recv(out + got, n - got);
    if (r == 0) throw ConnectionReset("stream ended mid-message");
    got += r;
  }
}

void TcpConnection::close() {
  if (local_closed_) return;
  local_closed_ = true;
  if (error_ || state_ == State::Closed) return;
  fin_queued_ = true;
  pump();
}

// ------------------------------------------------------------ segment I/O --

void TcpConnection::startConnect() {
  state_ = State::SynSent;
  syn_attempts_ = 0;
  sendSyn(false);
}

void TcpConnection::sendSyn(bool is_retry) {
  if (is_retry) {
    ++retransmits_;
    stack_.c_retransmits_.inc();
  }
  ++syn_attempts_;
  Packet p = makePacket(kFlagSyn);
  stack_.network().send(std::move(p));
  auto self = shared_from_this();
  const sim::SimTime backoff = kernelTime(opts_.syn_timeout) * (1ll << (syn_attempts_ - 1));
  rto_event_ = sim_.scheduleAfter(backoff, [self] {
    if (self->state_ != State::SynSent) return;
    if (self->syn_attempts_ >= self->opts_.syn_retries) {
      self->enterError("connect timed out");
    } else {
      self->sendSyn(true);
    }
  });
}

void TcpConnection::sendSynAck() {
  Packet p = makePacket(kFlagSyn | kFlagAck);
  stack_.network().send(std::move(p));
}

void TcpConnection::sendPureAck() {
  Packet p = makePacket(kFlagAck);
  last_advertised_window_ = p.window;
  stack_.network().send(std::move(p));
}

void TcpConnection::sendFinSegment() {
  Packet p = makePacket(kFlagFin | kFlagAck);
  p.seq = fin_seq_;
  stack_.network().send(std::move(p));
}

void TcpConnection::sendSegment(std::uint64_t seq, std::size_t len, bool is_retransmit) {
  Packet p = makePacket(kFlagAck);
  p.seq = seq;
  p.payload.resize(len);
  const std::size_t off = static_cast<std::size_t>(seq - snd_una_);
  std::copy_n(send_buf_.begin() + static_cast<std::ptrdiff_t>(off), len, p.payload.begin());
  last_advertised_window_ = p.window;
  stack_.c_segments_.inc();
  if (is_retransmit) {
    ++retransmits_;
    stack_.c_retransmits_.inc();
  } else if (!rtt_pending_) {
    // Karn's rule: sample only fresh segments, one at a time.
    rtt_pending_ = true;
    rtt_seq_ = seq + len;
    rtt_sent_at_ = sim_.now();
  }
  // Each data segment sent with causal context gets a transit span
  // (send -> delivery/drop) parented to the current context — the vmpi send,
  // or the ACK-clock event chain rooted there. The network closes it at
  // final disposition. Context-free segments (server control replies from
  // daemons outside any job) stay untraced, like SYN/ACK control packets, so
  // every recorded net.* span has a live parent.
  obs::SpanRecorder& spans = sim_.spans();
  if (spans.enabled() && spans.current() != 0) {
    p.span = spans.begin("net.tcp", "segment",
                         stack_.network().topology().node(local_node_).name);
    spans.annotate(p.span, "seq", std::to_string(seq));
    spans.annotate(p.span, "len", std::to_string(len));
    if (is_retransmit) spans.annotate(p.span, "retransmit", "1");
  }
  stack_.network().send(std::move(p));
}

void TcpConnection::pump() {
  if (state_ != State::Established || error_) return;
  const std::uint64_t limit = snd_una_ + static_cast<std::uint64_t>(effectiveWindow());
  const std::uint64_t end = dataEnd();
  while (snd_nxt_ < end && snd_nxt_ < limit) {
    const std::uint64_t avail = end - snd_nxt_;
    const std::uint64_t room = limit - snd_nxt_;
    const std::size_t len = static_cast<std::size_t>(
        std::min<std::uint64_t>({static_cast<std::uint64_t>(kTcpMss), avail, room}));
    // Sender-side silly-window avoidance: a short segment is only worth
    // sending when it drains the buffer (the app may be waiting on the
    // reply) or nothing is in flight (keep the ACK clock ticking).
    const bool full_segment = len == static_cast<std::size_t>(kTcpMss);
    const bool drains_buffer = len == avail;
    const bool pipe_idle = snd_una_ == snd_nxt_;
    if (!full_segment && !drains_buffer && !pipe_idle) break;
    sendSegment(snd_nxt_, len, false);
    snd_nxt_ += len;
  }
  if (fin_queued_ && !fin_sent_ && snd_nxt_ == end) {
    fin_seq_ = snd_nxt_;
    fin_sent_ = true;
    sendFinSegment();
  }
  const bool outstanding = (snd_una_ < snd_nxt_) || (fin_sent_ && !fin_acked_);
  if (outstanding && rto_event_ == 0) armRto();
  if (peer_window_ == 0 && snd_nxt_ < end && snd_una_ == snd_nxt_) armPersist();
}

// ------------------------------------------------------------------ timers --

void TcpConnection::armRto() {
  cancelRto();
  auto self = shared_from_this();
  rto_event_ = sim_.scheduleAfter(rto_, [self] {
    self->rto_event_ = 0;
    self->onRtoFire();
  });
}

void TcpConnection::cancelRto() {
  if (rto_event_ != 0) {
    sim_.cancel(rto_event_);
    rto_event_ = 0;
  }
}

void TcpConnection::onRtoFire() {
  if (error_ || state_ != State::Established) return;
  const bool data_outstanding = snd_una_ < snd_nxt_;
  const bool fin_outstanding = fin_sent_ && !fin_acked_;
  if (!data_outstanding && !fin_outstanding) return;
  // Loss response: multiplicative decrease and go-back-N from snd_una_.
  const double flight = static_cast<double>(snd_nxt_ - snd_una_);
  ssthresh_ = std::max(flight / 2.0, 2.0 * kTcpMss);
  cwnd_ = kTcpMss;
  dup_acks_ = 0;
  in_recovery_ = false;
  rtt_pending_ = false;  // Karn: discard sample that spans a retransmit
  rto_ = std::min(rto_ * 2, kernelTime(opts_.max_rto));
  if (data_outstanding) {
    snd_nxt_ = snd_una_;  // go-back-N; later segments resend as cwnd reopens
    const std::uint64_t end = dataEnd();
    const std::uint64_t limit = snd_una_ + static_cast<std::uint64_t>(effectiveWindow());
    if (snd_nxt_ < end && snd_nxt_ < limit) {
      const std::size_t len = static_cast<std::size_t>(std::min<std::uint64_t>(
          {static_cast<std::uint64_t>(kTcpMss), end - snd_nxt_, limit - snd_nxt_}));
      sendSegment(snd_nxt_, len, true);
      snd_nxt_ += len;
    }
  } else {
    sendFinSegment();
    ++retransmits_;
    stack_.c_retransmits_.inc();
  }
  armRto();
}

void TcpConnection::armPersist() {
  if (persist_event_ != 0) return;
  auto self = shared_from_this();
  persist_event_ = sim_.scheduleAfter(kernelTime(opts_.persist_interval), [self] {
    self->persist_event_ = 0;
    self->onPersistFire();
  });
}

void TcpConnection::onPersistFire() {
  if (error_ || state_ != State::Established) return;
  if (peer_window_ > 0) {
    pump();
    return;
  }
  if (snd_nxt_ >= dataEnd()) return;  // nothing left to probe for
  // 1-byte window probe; the receiver ACKs with its current window even if
  // it cannot accept the byte.
  sendSegment(snd_nxt_, 1, true);
  armPersist();
}

// --------------------------------------------------------- receive engine --

void TcpConnection::onPacket(Packet&& pkt) {
  if (pkt.flags & kFlagRst) {
    enterError("RST from peer");
    return;
  }

  switch (state_) {
    case State::SynSent:
      if ((pkt.flags & kFlagSyn) && (pkt.flags & kFlagAck)) {
        state_ = State::Established;
        peer_window_ = pkt.window;
        cancelRto();
        sendPureAck();
        established_cond_.notifyAll();
        pump();
      }
      return;
    case State::SynReceived:
      if (pkt.flags & kFlagSyn) {
        // Our SYN|ACK was lost; repeat it.
        sendSynAck();
        return;
      }
      if (pkt.flags & kFlagAck) {
        state_ = State::Established;
        peer_window_ = pkt.window;
        stack_.connectionEstablished(*this);
        // Data may ride on the completing ACK; fall through.
        if (!pkt.payload.empty() || (pkt.flags & kFlagFin)) break;
        return;
      }
      return;
    case State::Established:
      if (pkt.flags & kFlagSyn) {
        // Peer never saw our final ACK of its SYN|ACK; re-ACK.
        sendPureAck();
        return;
      }
      break;
    case State::Closed:
      return;
  }

  if (pkt.flags & kFlagAck) {
    onAck(pkt.ack, pkt.window, pkt.payload.empty() && !(pkt.flags & kFlagFin));
  }
  if (!pkt.payload.empty() || (pkt.flags & kFlagFin)) {
    onData(std::move(pkt));
  }
}

void TcpConnection::onAck(std::uint64_t ack, std::int64_t window, bool pure_ack) {
  peer_window_ = window;
  if (ack > snd_una_) {
    const std::uint64_t newly_acked = ack - snd_una_;
    send_buf_.erase(send_buf_.begin(),
                    send_buf_.begin() + static_cast<std::ptrdiff_t>(
                                            std::min<std::uint64_t>(newly_acked, send_buf_.size())));
    snd_una_ = ack;
    if (snd_nxt_ < snd_una_) snd_nxt_ = snd_una_;
    dup_acks_ = 0;
    if (rtt_pending_ && ack >= rtt_seq_) {
      rtt_pending_ = false;
      updateRttEstimate(sim_.now() - rtt_sent_at_);
    }
    if (in_recovery_) {
      if (ack >= recover_) {
        in_recovery_ = false;  // every pre-loss segment accounted for
      } else if (snd_una_ < snd_nxt_) {
        // Partial ACK: the next hole is at snd_una_; retransmit it now.
        const std::size_t len = static_cast<std::size_t>(std::min<std::uint64_t>(
            static_cast<std::uint64_t>(kTcpMss), snd_nxt_ - snd_una_));
        sendSegment(snd_una_, len, true);
      }
    } else {
      // Congestion window growth (frozen during recovery).
      if (cwnd_ < ssthresh_) {
        cwnd_ += kTcpMss;  // slow start: one MSS per ACK
      } else {
        cwnd_ += static_cast<double>(kTcpMss) * kTcpMss / cwnd_;  // CA: ~MSS per RTT
      }
      cwnd_ = std::min(cwnd_, static_cast<double>(opts_.send_buffer));
    }
    if (fin_sent_ && ack > fin_seq_) fin_acked_ = true;
    cancelRto();
    if (snd_una_ < snd_nxt_ || (fin_sent_ && !fin_acked_)) armRto();
    writable_.notifyAll();
    pump();
    maybeFinish();
  } else if (ack == snd_una_ && snd_una_ < snd_nxt_ && pure_ack) {
    if (++dup_acks_ == 3 && !in_recovery_) {
      // Fast retransmit of the first unacked segment, then NewReno recovery.
      in_recovery_ = true;
      recover_ = snd_nxt_;
      ssthresh_ = std::max(static_cast<double>(snd_nxt_ - snd_una_) / 2.0, 2.0 * kTcpMss);
      cwnd_ = ssthresh_;
      rtt_pending_ = false;
      const std::size_t len = static_cast<std::size_t>(std::min<std::uint64_t>(
          static_cast<std::uint64_t>(kTcpMss), snd_nxt_ - snd_una_));
      sendSegment(snd_una_, len, true);
      armRto();
    }
  } else if (peer_window_ > 0) {
    // Window update without new data acked.
    pump();
  }
}

void TcpConnection::onData(Packet&& pkt) {
  bool advanced = false;
  if (!pkt.payload.empty()) {
    const std::uint64_t seq = pkt.seq;
    const std::uint64_t seg_end = seq + pkt.payload.size();
    if (seg_end <= rcv_nxt_) {
      // Stale retransmission: just re-ACK below.
    } else if (seq <= rcv_nxt_) {
      // In-order (possibly with a stale prefix). Accept what fits.
      const std::size_t skip = static_cast<std::size_t>(rcv_nxt_ - seq);
      const std::int64_t capacity = advertisedWindow();
      const std::size_t fresh = pkt.payload.size() - skip;
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::int64_t>(static_cast<std::int64_t>(fresh), capacity));
      if (take > 0) {
        recv_buf_.insert(recv_buf_.end(), pkt.payload.begin() + static_cast<std::ptrdiff_t>(skip),
                         pkt.payload.begin() + static_cast<std::ptrdiff_t>(skip + take));
        rcv_nxt_ += take;
        advanced = true;
        // Drain any now-contiguous out-of-order segments.
        for (auto it = out_of_order_.begin(); it != out_of_order_.end();) {
          if (it->first > rcv_nxt_) break;
          const auto& data = it->second;
          const std::uint64_t oend = it->first + data.size();
          if (oend > rcv_nxt_) {
            const std::size_t oskip = static_cast<std::size_t>(rcv_nxt_ - it->first);
            recv_buf_.insert(recv_buf_.end(), data.begin() + static_cast<std::ptrdiff_t>(oskip),
                             data.end());
            rcv_nxt_ = oend;
          }
          out_of_order_bytes_ -= static_cast<std::int64_t>(data.size());
          it = out_of_order_.erase(it);
        }
      }
    } else {
      // Out of order: hold if it fits in the window.
      if (out_of_order_bytes_ + static_cast<std::int64_t>(pkt.payload.size()) <=
              advertisedWindow() &&
          out_of_order_.find(pkt.seq) == out_of_order_.end()) {
        out_of_order_bytes_ += static_cast<std::int64_t>(pkt.payload.size());
        out_of_order_.emplace(pkt.seq, std::move(pkt.payload));
      }
    }
  }
  if (pkt.flags & kFlagFin) {
    if (!peer_fin_) {
      peer_fin_ = true;
      peer_fin_seq_ = pkt.seq;
    }
  }
  if (peer_fin_ && rcv_nxt_ == peer_fin_seq_) {
    rcv_nxt_ = peer_fin_seq_ + 1;  // FIN consumes one sequence number
    advanced = true;
  }
  sendPureAck();
  if (advanced) readable_.notifyAll();
  maybeFinish();
}

void TcpConnection::updateRttEstimate(sim::SimTime sample) {
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const sim::SimTime err = std::abs(srtt_ - sample);
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = std::clamp(srtt_ + 4 * rttvar_, kernelTime(opts_.min_rto), kernelTime(opts_.max_rto));
}

void TcpConnection::enterError(const std::string& what) {
  if (error_) return;
  error_ = true;
  error_what_ = what;
  state_ = State::Closed;
  cancelRto();
  if (persist_event_ != 0) {
    sim_.cancel(persist_event_);
    persist_event_ = 0;
  }
  established_cond_.notifyAll();
  readable_.notifyAll();
  writable_.notifyAll();
  stack_.removeConnection(*this);
}

void TcpConnection::maybeFinish() {
  // Fully closed in both directions: retire from the stack's table.
  if (fin_acked_ && peer_fin_ && recv_buf_.empty() && state_ == State::Established) {
    state_ = State::Closed;
    cancelRto();
    readable_.notifyAll();
    stack_.removeConnection(*this);
  }
}

// ===========================================================================
// TcpListener
// ===========================================================================

TcpListener::TcpListener(TcpStack& stack, std::uint16_t port)
    : stack_(stack),
      port_(port),
      backlog_(std::make_unique<sim::Channel<std::shared_ptr<TcpConnection>>>(stack.simulator())) {}

std::shared_ptr<TcpConnection> TcpListener::accept() {
  if (closed_) throw UsageError("accept on closed listener");
  return backlog_->recv();
}

std::shared_ptr<TcpConnection> TcpListener::acceptFor(sim::SimTime timeout) {
  if (closed_) throw UsageError("accept on closed listener");
  auto v = backlog_->recvFor(timeout);
  return v ? *v : nullptr;
}

void TcpListener::close() {
  if (closed_) return;
  closed_ = true;
  stack_.removeListener(port_);
  backlog_->close();
}

// ===========================================================================
// TcpStack
// ===========================================================================

TcpStack::TcpStack(NetworkModel& net, NodeId node, TcpOptions opts)
    : net_(net),
      node_(node),
      opts_(opts),
      c_connections_(net.simulator().metrics().counter("net.tcp.connections")),
      c_segments_(net.simulator().metrics().counter("net.tcp.segments_sent")),
      c_retransmits_(net.simulator().metrics().counter("net.tcp.retransmits")),
      c_bytes_sent_(net.simulator().metrics().counter("net.tcp.bytes_sent")),
      c_bytes_received_(net.simulator().metrics().counter("net.tcp.bytes_received")) {}

TcpStack::~TcpStack() = default;

std::shared_ptr<TcpListener> TcpStack::listen(std::uint16_t port) {
  if (listeners_.count(port)) throw UsageError("port already listening");
  auto listener = std::shared_ptr<TcpListener>(new TcpListener(*this, port));
  listeners_[port] = listener.get();
  return listener;
}

std::uint16_t TcpStack::allocateEphemeralPort() {
  for (int tries = 0; tries < 16384; ++tries) {
    std::uint16_t p = next_ephemeral_;
    next_ephemeral_ = (next_ephemeral_ == 65535) ? 49152 : next_ephemeral_ + 1;
    bool taken = false;
    for (const auto& [key, conn] : connections_) {
      if (key.local_port == p) {
        taken = true;
        break;
      }
    }
    if (!taken && !listeners_.count(p)) return p;
  }
  throw UsageError("ephemeral ports exhausted");
}

std::shared_ptr<TcpConnection> TcpStack::connect(NodeId dst, std::uint16_t port) {
  const std::uint16_t lport = allocateEphemeralPort();
  auto conn = std::shared_ptr<TcpConnection>(new TcpConnection(*this, dst, lport, port, opts_));
  connections_[ConnKey{lport, dst, port}] = conn;
  conn->startConnect();
  while (conn->state_ != TcpConnection::State::Established && !conn->error_) {
    conn->established_cond_.wait();
  }
  if (conn->error_) throw ConnectionRefused(conn->error_what_);
  c_connections_.inc();
  return conn;
}

void TcpStack::onPacket(Packet&& pkt) {
  const ConnKey key{pkt.dst_port, pkt.src, pkt.src_port};
  auto it = connections_.find(key);
  if (it != connections_.end()) {
    // Keep the connection alive across the callback even if it retires.
    auto conn = it->second;
    conn->onPacket(std::move(pkt));
    return;
  }
  if ((pkt.flags & kFlagSyn) && !(pkt.flags & kFlagAck)) {
    auto lit = listeners_.find(pkt.dst_port);
    if (lit != listeners_.end() && !lit->second->closed_) {
      auto conn = std::shared_ptr<TcpConnection>(
          new TcpConnection(*this, pkt.src, pkt.dst_port, pkt.src_port, opts_));
      conn->state_ = TcpConnection::State::SynReceived;
      conn->peer_window_ = pkt.window;
      connections_[key] = conn;
      conn->sendSynAck();
      return;
    }
  }
  if (!(pkt.flags & kFlagRst)) sendRst(pkt);
}

void TcpStack::connectionEstablished(TcpConnection& conn) {
  auto lit = listeners_.find(conn.local_port_);
  if (lit == listeners_.end() || lit->second->closed_) return;
  c_connections_.inc();
  const ConnKey key{conn.local_port_, conn.remote_node_, conn.remote_port_};
  auto it = connections_.find(key);
  if (it != connections_.end()) lit->second->backlog_->trySend(it->second);
}

void TcpStack::sendRst(const Packet& cause) {
  Packet rst;
  rst.src = node_;
  rst.dst = cause.src;
  rst.protocol = Protocol::Tcp;
  rst.src_port = cause.dst_port;
  rst.dst_port = cause.src_port;
  rst.flags = kFlagRst;
  net_.send(std::move(rst));
}

void TcpStack::removeConnection(const TcpConnection& conn) {
  connections_.erase(ConnKey{conn.local_port_, conn.remote_node_, conn.remote_port_});
}

void TcpStack::removeListener(std::uint16_t port) { listeners_.erase(port); }

void TcpStack::saveState(obs::StateWriter& w) const {
  w.u64("net.tcp.open", connections_.size());
  for (const auto& [key, conn] : connections_) {
    w.u64("lport", key.local_port);
    w.i64("rnode", key.remote_node);
    w.u64("rport", key.remote_port);
    w.u64("state", static_cast<std::uint64_t>(conn->state_));
    w.boolean("error", conn->error_);
    w.u64("snd_una", conn->snd_una_);
    w.u64("snd_nxt", conn->snd_nxt_);
    w.u64("rcv_nxt", conn->rcv_nxt_);
    w.f64("cwnd", conn->cwnd_);
    w.f64("ssthresh", conn->ssthresh_);
    w.i64("peer_window", conn->peer_window_);
    w.u64("send_buf", conn->send_buf_.size());
    w.u64("recv_buf", conn->recv_buf_.size());
    w.i64("ooo_bytes", conn->out_of_order_bytes_);
    w.boolean("fin_queued", conn->fin_queued_);
    w.boolean("fin_sent", conn->fin_sent_);
    w.boolean("fin_acked", conn->fin_acked_);
    w.boolean("peer_fin", conn->peer_fin_);
    w.i64("rto", conn->rto_);
    w.i64("srtt", conn->srtt_);
  }
  w.u64("net.tcp.listeners", listeners_.size());
  for (const auto& [port, l] : listeners_) w.u64("port", port);
}

void TcpStack::abortAll(const std::string& why) {
  // enterError mutates connections_ via removeConnection; iterate a copy.
  std::vector<std::shared_ptr<TcpConnection>> conns;
  conns.reserve(connections_.size());
  for (const auto& [key, conn] : connections_) conns.push_back(conn);
  for (const auto& conn : conns) {
    if (conn->error_ || conn->state_ == TcpConnection::State::Closed) continue;
    Packet rst;
    rst.src = node_;
    rst.dst = conn->remote_node_;
    rst.protocol = Protocol::Tcp;
    rst.src_port = conn->local_port_;
    rst.dst_port = conn->remote_port_;
    rst.flags = kFlagRst;
    net_.send(std::move(rst));
    conn->enterError(why);
  }
  connections_.clear();
  std::vector<TcpListener*> listeners;
  listeners.reserve(listeners_.size());
  for (const auto& [port, l] : listeners_) listeners.push_back(l);
  for (TcpListener* l : listeners) l->close();
  listeners_.clear();
}

}  // namespace mg::net
