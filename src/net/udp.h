// A UDP-like datagram transport: unreliable, unordered, message-oriented.
// Datagrams larger than the MTU are fragmented; loss of any fragment loses
// the whole datagram (as IP fragmentation behaves). The GIS and grid
// services use TCP, but UDP exercises the loss/fragmentation paths of the
// network model and supports probe-style tooling.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "net/network_model.h"
#include "sim/channel.h"

namespace mg::net {

struct Datagram {
  NodeId src_node = kNoNode;
  std::uint16_t src_port = 0;
  std::vector<std::uint8_t> data;
};

class UdpStack;

/// A bound datagram socket.
class UdpSocket {
 public:
  ~UdpSocket();
  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  /// Blocking receive of one datagram.
  Datagram recvFrom();

  /// Receive with timeout; nullopt on expiry.
  std::optional<Datagram> recvFromFor(sim::SimTime timeout);

  /// Send from this socket's port.
  void sendTo(NodeId dst, std::uint16_t dst_port, std::vector<std::uint8_t> data);

  std::uint16_t port() const { return port_; }
  void close();

 private:
  friend class UdpStack;
  UdpSocket(UdpStack& stack, std::uint16_t port);

  UdpStack& stack_;
  std::uint16_t port_;
  bool closed_ = false;
  std::unique_ptr<sim::Channel<Datagram>> inbox_;
};

/// The per-host UDP endpoint table.
class UdpStack {
 public:
  /// Maximum datagram payload (IPv4 limit minus headers).
  static constexpr std::size_t kMaxDatagram = 65507;
  /// Reassembly timeout for incomplete datagrams.
  static constexpr sim::SimTime kReassemblyTimeout = 30 * sim::kSecond;

  UdpStack(NetworkModel& net, NodeId node);
  UdpStack(const UdpStack&) = delete;
  UdpStack& operator=(const UdpStack&) = delete;

  /// Bind a socket; throws UsageError if the port is taken.
  std::shared_ptr<UdpSocket> bind(std::uint16_t port);

  /// Send a datagram from an ephemeral source port.
  void sendTo(NodeId dst, std::uint16_t dst_port, std::vector<std::uint8_t> data);

  /// Transport dispatch (called by HostStack).
  void onPacket(Packet&& pkt);

  NodeId node() const { return node_; }
  NetworkModel& network() { return net_; }
  sim::Simulator& simulator() { return net_.simulator(); }

  std::int64_t datagramsDroppedIncomplete() const { return c_dropped_incomplete_.value(); }

 private:
  friend class UdpSocket;
  void sendFrom(std::uint16_t src_port, NodeId dst, std::uint16_t dst_port,
                std::vector<std::uint8_t> data);
  void unbind(std::uint16_t port);

  struct ReassemblyKey {
    NodeId src_node;
    std::uint16_t src_port;
    std::uint32_t datagram_id;
    auto operator<=>(const ReassemblyKey&) const = default;
  };
  struct Reassembly {
    std::map<std::uint16_t, std::vector<std::uint8_t>> fragments;
    std::uint16_t fragment_count = 0;
    sim::SimTime started = 0;
  };

  NetworkModel& net_;
  NodeId node_;
  // Aggregated `net.udp.*` registry counters (shared across stacks).
  obs::Counter& c_datagrams_sent_;
  obs::Counter& c_datagrams_delivered_;
  obs::Counter& c_dropped_incomplete_;
  std::map<std::uint16_t, UdpSocket*> sockets_;
  std::map<ReassemblyKey, Reassembly> reassembly_;
  std::uint32_t next_datagram_id_ = 1;
  std::uint16_t next_ephemeral_ = 49152;
};

}  // namespace mg::net
