// Mesa-style condition variable for simulated processes.
//
// Usage follows the classic pattern — always re-check the predicate:
//
//   while (queue.empty()) cond.wait();
//
// Waiters are woken in FIFO order, preserving determinism.
#pragma once

#include <algorithm>
#include <deque>

#include "sim/simulator.h"

namespace mg::sim {

class Condition {
 public:
  explicit Condition(Simulator& sim) : sim_(sim) {}
  Condition(const Condition&) = delete;
  Condition& operator=(const Condition&) = delete;

  /// Block the calling process until notified. Re-check your predicate.
  void wait() {
    Process& p = sim_.currentProcess();
    WaiterGuard guard(*this, p);
    sim_.suspend();
  }

  /// Block until notified or timeout. True if notified, false on timeout.
  bool waitFor(SimTime timeout) {
    Process& p = sim_.currentProcess();
    WaiterGuard guard(*this, p);
    return sim_.suspendFor(timeout);
  }

  /// Wake the longest-waiting process, if any.
  void notifyOne() {
    if (waiters_.empty()) return;
    Process* p = waiters_.front();
    waiters_.pop_front();
    sim_.wake(*p);
  }

  /// Wake every waiting process.
  void notifyAll() {
    std::deque<Process*> ws;
    ws.swap(waiters_);
    for (Process* p : ws) sim_.wake(*p);
  }

  size_t waiterCount() const { return waiters_.size(); }

  Simulator& simulator() { return sim_; }

 private:
  // Registers the waiter and removes it on scope exit — including when the
  // wait is unwound by ProcessKilled or expires by timeout, so the deque
  // never holds a process that is no longer waiting here.
  class WaiterGuard {
   public:
    WaiterGuard(Condition& c, Process& p) : c_(c), p_(p) { c_.waiters_.push_back(&p_); }
    ~WaiterGuard() {
      auto& w = c_.waiters_;
      w.erase(std::remove(w.begin(), w.end(), &p_), w.end());
    }

   private:
    Condition& c_;
    Process& p_;
  };

  Simulator& sim_;
  std::deque<Process*> waiters_;
};

}  // namespace mg::sim
