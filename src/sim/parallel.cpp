#include "sim/parallel.h"

#include <limits>

#include "obs/lane.h"

namespace mg::sim {

namespace {
constexpr SimTime kInfTime = std::numeric_limits<SimTime>::max();
}

ParallelEngine::ParallelEngine(Simulator& sim, int workers, SimTime lookahead)
    : sim_(sim),
      workers_(workers),
      lookahead_(lookahead),
      c_epochs_(sim.metrics().counter("sim.parallel.epochs")),
      c_mailbox_msgs_(sim.metrics().counter("sim.parallel.mailbox_msgs")),
      c_barrier_ops_(sim.metrics().counter("sim.parallel.barrier_ops")),
      c_horizon_stalls_(sim.metrics().counter("sim.parallel.horizon_stalls")),
      c_horizon_violations_(sim.metrics().counter("sim.parallel.horizon_violations")) {
  // The coordinator (whoever calls run()) is worker #0; spawn the rest.
  for (int i = 1; i < workers_; ++i) {
    threads_.emplace_back([this] { workerLoop(); });
  }
}

ParallelEngine::~ParallelEngine() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ParallelEngine::workerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_work_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    drainClaimedLanes();
    {
      std::lock_guard<std::mutex> lk(m_);
      if (--active_ == 0) cv_done_.notify_one();
    }
  }
}

void ParallelEngine::drainClaimedLanes() {
  // Dynamic claiming: lanes within a phase are independent, so *which*
  // thread drains a lane is unobservable — this is what makes the worker
  // count a pure speed knob.
  for (;;) {
    const std::size_t i = claim_.fetch_add(1, std::memory_order_relaxed);
    if (i >= due_.size()) return;
    detail::EventLane* lane = due_[i];
    detail::t_lane_ctx = {&sim_, lane};
    obs::setCurrentLane(static_cast<int>(lane->index));
    drainLane(*lane);
    detail::t_lane_ctx = {};
    obs::setCurrentLane(0);
  }
}

void ParallelEngine::drainLane(detail::EventLane& lane) {
  // horizon_ is fixed for the phase; events scheduled into this lane by its
  // own execution join the drain when they land inside the window, exactly
  // as in the sequential kernel.
  while (!lane.heap.empty() && lane.heap.front().time < horizon_) {
    sim_.dispatchTopOn(lane);
  }
}

void ParallelEngine::mergeAtBarrier() {
  auto& lanes = sim_.lanes_;
  // Observability journals first: a barrier op's direct records then land
  // after everything the phase journaled, at the op's (later) time.
  sim_.spans_.commitParallelPhase();
  sim_.trace_.commitParallelPhase();
  sim_.timeline_.commitParallelPhase();
  if (sim_.pulse_.enabled()) sim_.pulse_.noteBarrier();
  // Outboxes in (source lane, push order): both fixed by per-lane execution
  // order, so the merged (time, seq) keys are worker-count-independent.
  for (auto& l : lanes) {
    for (detail::EventLane::CrossMsg& msg : l->outbox) {
      detail::EventLane& dst = *lanes[msg.dst_lane];
      SimTime t = msg.time;
      if (t < dst.now) {
        // The sender undercut the lookahead: the destination already passed
        // t. Clamp (never lose the event) and count the breach.
        c_horizon_violations_.inc();
        t = dst.now;
      }
      sim_.scheduleOn(dst, t, std::move(msg.fn), msg.span_ctx);
      c_mailbox_msgs_.inc();
    }
    l->outbox.clear();
  }
  // Global mutations (routing recomputes, link/node flips, queue purges)
  // deferred by runAtBarrier(), in the same deterministic order.
  for (auto& l : lanes) {
    for (std::function<void()>& op : l->barrier_ops) {
      op();
      c_barrier_ops_.inc();
    }
    l->barrier_ops.clear();
  }
}

SimTime ParallelEngine::run(SimTime limit, bool bounded) {
  auto& lanes = sim_.lanes_;
  const bool multi_lane = lanes.size() > 1;
  for (;;) {
    sim_.reapIfNeeded();
    SimTime t_min = kInfTime;
    for (auto& l : lanes) {
      if (!l->heap.empty() && l->heap.front().time < t_min) t_min = l->heap.front().time;
    }
    if (t_min == kInfTime) break;
    if (bounded && t_min > limit) break;

    SimTime horizon = kInfTime;
    if (multi_lane && t_min <= kInfTime - lookahead_) horizon = t_min + lookahead_;
    if (bounded && horizon > limit) horizon = limit + 1;  // events <= limit run

    due_.clear();
    int stalled = 0;
    for (auto& l : lanes) {
      if (l->heap.empty()) continue;
      if (l->heap.front().time < horizon) {
        due_.push_back(l.get());
      } else {
        ++stalled;
      }
    }
    horizon_ = horizon;
    c_epochs_.inc();
    if (stalled > 0) c_horizon_stalls_.inc(stalled);

    // Phase semantics (outbox parking, barrier-op deferral) apply whenever
    // there is more than one lane — even if a single thread drains them —
    // so the event-merge order is identical for every worker count.
    if (multi_lane) phase_active_.store(true, std::memory_order_release);

    if (threads_.empty() || due_.size() <= 1) {
      // Drain sequentially in lane order (no wakeups to pay for).
      for (detail::EventLane* lane : due_) {
        detail::t_lane_ctx = {&sim_, lane};
        obs::setCurrentLane(static_cast<int>(lane->index));
        drainLane(*lane);
        detail::t_lane_ctx = {};
        obs::setCurrentLane(0);
      }
    } else {
      claim_.store(0, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lk(m_);
        active_ = static_cast<int>(threads_.size());
        ++epoch_;
      }
      cv_work_.notify_all();
      drainClaimedLanes();  // the coordinator claims lanes too
      {
        std::unique_lock<std::mutex> lk(m_);
        cv_done_.wait(lk, [&] { return active_ == 0; });
      }
    }

    if (multi_lane) {
      phase_active_.store(false, std::memory_order_release);
      mergeAtBarrier();
    }
  }

  SimTime end = 0;
  if (bounded) {
    end = limit;
  } else {
    for (auto& l : lanes) end = std::max(end, l->now);
  }
  for (auto& l : lanes) l->now = end;
  return end;
}

}  // namespace mg::sim
