#include "sim/telemetry.h"

namespace mg::sim {

obs::TelemetrySampler::Host telemetryHost(Simulator& sim) {
  obs::TelemetrySampler::Host host;
  host.now = [&sim] { return sim.now(); };
  host.schedule_at = [&sim](std::int64_t t, std::function<void()> fn) {
    sim.scheduleAt(t, EventFn(std::move(fn)));
  };
  host.in_parallel_phase = [&sim] { return sim.inParallelPhase(); };
  host.run_at_barrier = [&sim](std::function<void()> op) { sim.runAtBarrier(std::move(op)); };
  host.pending_events = [&sim] { return sim.pendingEventCount(); };
  return host;
}

void registerKernelProbes(obs::TelemetrySampler& sampler, Simulator& sim) {
  sampler.addCounterRate("sim.events_per_s",
                         sim.metrics().counter("sim.kernel.events_executed"));
  sampler.addLevel("sim.pending_events", [&sim](std::int64_t) {
    return static_cast<double>(sim.pendingEventCount());
  });
  sampler.addLevel("sim.arena_slots", [&sim](std::int64_t) {
    return static_cast<double>(sim.eventArenaSlots());
  });
}

}  // namespace mg::sim
