// Conservative parallel execution of the event kernel (DESIGN.md §7).
//
// The ParallelEngine drives the Simulator's event lanes in synchronous
// epochs (a CMB-style conservative window scheme):
//
//   1. The coordinator computes T = min over lanes of the next event time
//      and the safe horizon H = T + lookahead. Every cross-lane interaction
//      carries at least `lookahead` of simulated delay (host stack delay for
//      process<->wire crossings, the cut-link latency for wire<->wire), so
//      every event with time < H is already in its lane's heap: lanes are
//      independent within the window.
//   2. Worker threads claim due lanes from a shared index (dynamic — which
//      thread drains which lane is unobservable) and each drains its lane's
//      heap up to H. Cross-lane sends park in the producing lane's outbox;
//      observability from worker lanes goes to per-lane journals.
//   3. Barrier: the coordinator merges outboxes into destination heaps in
//      (source lane, push order), runs queued barrier ops (routing
//      recomputes, link flips) in the same order, and commits span/trace
//      journals sorted by (time, lane, journal order). Every merge rule is a
//      function of per-lane execution order — which is deterministic — so
//      the worker count never changes observable output.
//
// The engine is created by Simulator::configureParallel and owned by the
// Simulator; Simulator::run()/runUntil() delegate here when it exists.
// Counters: sim.parallel.epochs, sim.parallel.mailbox_msgs,
// sim.parallel.barrier_ops, sim.parallel.horizon_stalls (a nonempty lane
// whose next event lay beyond the horizon), sim.parallel.horizon_violations
// (a cross-lane message that undercut the lookahead; clamped, never lost).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/simulator.h"

namespace mg::sim {

class ParallelEngine {
 public:
  /// `workers` >= 1 counts the coordinator: N means the coordinator plus
  /// N-1 spawned threads. `lookahead` must be positive when the simulator
  /// has more than one lane.
  ParallelEngine(Simulator& sim, int workers, SimTime lookahead);
  ~ParallelEngine();
  ParallelEngine(const ParallelEngine&) = delete;
  ParallelEngine& operator=(const ParallelEngine&) = delete;

  /// Run epochs until every lane is empty (bounded == false) or until all
  /// events with time <= limit have executed (bounded == true). Returns the
  /// final simulation time and syncs every lane's clock to it.
  SimTime run(SimTime limit, bool bounded);

  /// True between a phase's publication and its barrier: worker threads may
  /// be executing lane events concurrently.
  bool inPhase() const { return phase_active_.load(std::memory_order_acquire); }

  int workerCount() const { return workers_; }
  SimTime lookahead() const { return lookahead_; }

 private:
  void workerLoop();
  /// Claim and drain due lanes until the shared index is exhausted.
  void drainClaimedLanes();
  /// Execute one lane's events with time < horizon_.
  void drainLane(detail::EventLane& lane);
  /// Merge outboxes + barrier ops + observability journals. Coordinator
  /// only, with all workers idle.
  void mergeAtBarrier();

  Simulator& sim_;
  int workers_;
  SimTime lookahead_;

  std::vector<std::thread> threads_;
  std::mutex m_;
  std::condition_variable cv_work_;   // coordinator -> workers: epoch ready
  std::condition_variable cv_done_;   // workers -> coordinator: all drained
  std::uint64_t epoch_ = 0;           // bumped per published phase
  int active_ = 0;                    // workers still draining this phase
  bool stop_ = false;                 // set by destructor

  // Phase state, written by the coordinator before publication and read by
  // workers after (the mutex orders it).
  SimTime horizon_ = 0;
  std::vector<detail::EventLane*> due_;
  std::atomic<std::size_t> claim_{0};
  std::atomic<bool> phase_active_{false};

  obs::Counter& c_epochs_;
  obs::Counter& c_mailbox_msgs_;
  obs::Counter& c_barrier_ops_;
  obs::Counter& c_horizon_stalls_;
  obs::Counter& c_horizon_violations_;
};

}  // namespace mg::sim
