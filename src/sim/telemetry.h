// Binds an obs::TelemetrySampler to the simulation kernel (DESIGN.md §10).
//
// obs sits below sim in the layering, so TelemetrySampler talks to the
// kernel through a Host struct of callables; telemetryHost() is the one
// place those bindings live. The sampler's tick runs as a lane-0 event; its
// probe reads defer to runAtBarrier() during parallel phases, which is what
// keeps `--parallel=N` byte-identical (see obs/sampler.h).
//
// registerKernelProbes() adds the kernel's own series: events executed per
// second, pending events, and event-arena occupancy — the "is the simulator
// itself healthy" view next to the per-resource probes the net/vos/econ
// layers register.
#pragma once

#include "obs/sampler.h"
#include "sim/simulator.h"

namespace mg::sim {

/// The sampler's kernel surface bound to `sim`. The Simulator must outlive
/// any sampler built on the returned host.
obs::TelemetrySampler::Host telemetryHost(Simulator& sim);

/// Kernel health probes: sim.events_per_s (rate of
/// sim.kernel.events_executed), sim.pending_events, sim.arena_slots.
void registerKernelProbes(obs::TelemetrySampler& sampler, Simulator& sim);

}  // namespace mg::sim
