// Simulation time: signed 64-bit nanoseconds.
//
// Integer time makes event ordering exact and runs reproducible across
// platforms; doubles are converted at the API boundary only.
#pragma once

#include <cstdint>

namespace mg::sim {

using SimTime = std::int64_t;  // nanoseconds

constexpr SimTime kNanosecond = 1;
constexpr SimTime kMicrosecond = 1000;
constexpr SimTime kMillisecond = 1000 * kMicrosecond;
constexpr SimTime kSecond = 1000 * kMillisecond;

/// Convert seconds (double) to SimTime, rounding to the nearest nanosecond.
constexpr SimTime fromSeconds(double s) {
  return static_cast<SimTime>(s * static_cast<double>(kSecond) + (s >= 0 ? 0.5 : -0.5));
}

/// Convert SimTime to seconds.
constexpr double toSeconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

}  // namespace mg::sim
