// The discrete-event simulation kernel.
//
// A Simulator owns a time-ordered event queue and a set of cooperative
// Processes. Exactly one thing runs at a time: either the kernel (dispatching
// events) or one process (between two of its blocking calls). Processes are
// backed by OS threads but are scheduled strictly one-at-a-time by a handoff
// protocol, so simulation semantics are single-threaded and deterministic:
// the same configuration and seed give bit-identical runs.
//
// Events live in a slab arena: fixed records recycled through a free list,
// ordered by a 4-ary min-heap of slot indices. cancel() removes the record
// from the heap in place (O(log n)) and frees the slot immediately, so the
// cancel-heavy suspendFor/TCP-RTO workloads leave no tombstones behind and
// the arena's footprint tracks the number of *pending* events, not the
// number ever scheduled. Event bodies are sim::EventFn small-buffer
// callables; the hot paths capture at most 48 bytes and never touch the
// heap (`sim.kernel.eventfn_heap_fallbacks` counts the exceptions).
//
// Process code blocks via Simulator::delay / suspend / suspendFor (usually
// indirectly, through Channel, Condition, or the vos socket layer). At
// shutdown every unfinished process is unwound with a ProcessKilled
// exception; process code must let it propagate (never swallow with
// catch(...)) and must not issue new blocking calls while unwinding.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace_bus.h"
#include "sim/event_fn.h"
#include "sim/time.h"
#include "util/error.h"

namespace mg::sim {

class Simulator;

/// Thrown inside a process when the simulator tears it down. Not derived
/// from mg::Error so that generic error handling does not accidentally
/// swallow it.
struct ProcessKilled {};

/// A cooperative simulated process. Created via Simulator::spawn.
///
/// Lifetime: the Simulator reaps finished Process objects at safe points in
/// run()/runUntil(), so a stored `Process*` is only valid while the process
/// is unfinished (a blocked or running process is never reaped). Long-lived
/// bookkeeping that may outlast a process should store its id() and use
/// Simulator::processFinished / killProcessById instead.
class Process {
 public:
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  bool finished() const { return finished_; }

 private:
  friend class Simulator;
  Process(Simulator& sim, std::uint64_t id, std::string name, std::function<void()> body);

  void threadMain();
  /// Kernel side: transfer control to the process; returns when it yields.
  void resumeFromKernel();
  /// Process side: return control to the kernel; returns when resumed.
  void yieldToKernel();

  Simulator& sim_;
  std::uint64_t id_;
  std::string name_;
  std::function<void()> body_;

  // Handoff state: a pair of binary semaphores and the backing thread.
  struct Impl;
  std::unique_ptr<Impl> impl_;

  bool finished_ = false;
  bool kill_ = false;
  // True while the process is suspended waiting for wake()/timeout.
  bool suspended_ = false;
  // True when a resume event for this process is already queued.
  bool wake_pending_ = false;
  // Set by the timeout path so suspendFor can report expiry.
  bool timed_out_ = false;
  // Monotonic counter distinguishing separate suspend episodes, so a stale
  // timeout event cannot wake a later suspend.
  std::uint64_t wait_epoch_ = 0;
  // Pending suspendFor timeout event, cancelled in place on wake so expired
  // timers neither linger in the queue nor stretch run()'s end time.
  std::uint64_t timeout_event_ = 0;
  // Pending resume event (spawn/delay/wake), at most one thanks to
  // wake_pending_. Cancelled when the process finishes: the event captures
  // this Process, which reaping is about to free.
  std::uint64_t resume_event_ = 0;
  // Ambient span context (obs::SpanId), saved when the process yields and
  // restored around the next slice, so a process resumes inside the span it
  // blocked in — even when the resume came from a foreign context's wake().
  std::uint64_t span_ctx_ = 0;
};

/// Opaque handle for a scheduled event: arena slot plus a generation tag
/// that detects slot reuse, so cancelling a stale handle is a safe no-op.
/// Never 0 (callers use 0 as "no event").
using EventId = std::uint64_t;

/// The event-driven simulation core.
class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now). Events at equal times run
  /// in scheduling order.
  EventId scheduleAt(SimTime t, EventFn fn);

  /// Schedule `fn` after `delay` (>= 0).
  EventId scheduleAfter(SimTime delay, EventFn fn);

  /// Cancel a pending event: the record leaves the heap and its arena slot
  /// is recycled immediately (the capture's destructors run here).
  /// Cancelling an already-run or unknown event is a no-op (callers often
  /// race benignly with their own timeouts).
  void cancel(EventId id);

  /// Create a process whose body starts at the current time.
  Process& spawn(std::string name, std::function<void()> body);

  /// Run until the event queue is empty. Returns the final time.
  SimTime run();

  /// Run events with time <= t, then set now to t.
  void runUntil(SimTime t);

  /// Kill all unfinished processes and join their threads. Called by run()
  /// completion is NOT implied — daemons stay blocked until shutdown() or
  /// destruction.
  void shutdown();

  /// Kill one process: it unwinds synchronously with ProcessKilled, exactly
  /// as in shutdown(), and this call returns once the unwind completes. The
  /// fault layer uses this for host crashes. A process must not kill itself;
  /// killing a finished process is a no-op.
  void killProcess(Process& p);

  /// killProcess by id: a safe no-op when the process has already finished
  /// (and possibly been reaped). Preferred by bookkeeping that stores ids
  /// across process lifetimes (host crash lists, vmpi daemon tracking).
  void killProcessById(std::uint64_t id);

  /// True when the process has finished (or never existed). Safe for any id,
  /// including reaped ones — unlike dereferencing a stale Process*.
  bool processFinished(std::uint64_t id) const;

  // --- process-context API (callable only from inside a process) ---

  /// Block the calling process for `d` simulated time.
  void delay(SimTime d);

  /// Block the calling process until another entity calls wake() on it.
  void suspend();

  /// Block until wake() or until `timeout` elapses. True if woken, false on
  /// timeout.
  bool suspendFor(SimTime timeout);

  /// The currently running process. Throws UsageError from kernel context.
  Process& currentProcess();

  /// True when called from inside a process.
  bool inProcessContext() const { return current_ != nullptr; }

  // --- any-context API ---

  /// Wake a suspended process (schedules its resume at the current time).
  /// No-op if the process is not suspended or already has a wake pending;
  /// see Condition for the standard mesa-style recheck idiom.
  void wake(Process& p);

  /// Number of processes that have not finished. O(1).
  int liveProcessCount() const { return live_process_count_; }

  /// Names of processes currently suspended; useful for diagnosing deadlock
  /// when run() returns while work was expected.
  std::vector<std::string> suspendedProcessNames() const;

  /// Total events executed (kernel throughput metric for bench_kernel_perf).
  std::uint64_t eventsExecuted() const {
    return static_cast<std::uint64_t>(events_executed_.value());
  }

  /// Events currently scheduled (pending, not cancelled). Cancellation
  /// shrinks this immediately — there are no tombstones.
  std::size_t pendingEventCount() const { return heap_.size(); }

  /// Slots in the event arena: the high-water mark of *concurrently* pending
  /// events. Bounded for schedule+cancel churn because cancelled and
  /// executed slots are recycled through the free list.
  std::size_t eventArenaSlots() const { return slab_.size(); }

  /// The run-wide metrics registry: every layer attached to this simulator
  /// registers its counters here (names: `layer.component.counter`).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// The run-wide deterministic trace bus (disabled by default; enable
  /// channels via traceBus().setEnabled("net", true) etc.).
  obs::TraceBus& traceBus() { return trace_; }
  const obs::TraceBus& traceBus() const { return trace_; }

  /// The run-wide causal span recorder (disabled by default; enable with
  /// spans().setEnabled(true) before the run). The kernel propagates the
  /// current-span context through event dispatch, spawn inheritance, and
  /// per-process save/restore around slices.
  obs::SpanRecorder& spans() { return spans_; }
  const obs::SpanRecorder& spans() const { return spans_; }

 private:
  friend class Process;

  // Per-slot cancellation bookkeeping, kept apart from the fat EventFn slab
  // so the heap_pos writes done while sifting stay in a dense 8-byte-stride
  // table (one cache line covers 8 slots) instead of touching 64-byte
  // records. `heap_pos` is the slot's index in heap_ while pending, -1 once
  // executed/cancelled/free. `generation` tags the slot so stale EventIds
  // miss after reuse.
  struct SlotMeta {
    std::uint32_t generation = 1;
    std::int32_t heap_pos = -1;
  };

  // A 24-byte heap entry carrying the full ordering key: (time, seq) is a
  // total order because seq is unique.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool entryBefore(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;  // FIFO among equal times
  }

  static EventId makeId(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) | slot;
  }

  void placeEntry(std::size_t pos, const HeapEntry& e);
  void siftUp(std::size_t pos, const HeapEntry& e);
  void siftDown(std::size_t pos, const HeapEntry& e);
  void heapPush(const HeapEntry& e);
  void heapRemoveAt(std::int32_t pos);
  std::uint32_t allocSlot();
  void freeSlot(std::uint32_t slot);
  /// Pop the due root event, free its slot, and run it.
  void dispatchTop();

  void runProcessSlice(Process& p);
  void scheduleResume(Process& p);
  void reapFinishedProcesses();

  // Declared before the counter/channel handles below, which point into it.
  obs::MetricsRegistry metrics_;
  obs::TraceBus trace_;
  obs::SpanRecorder spans_{&metrics_};

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_process_id_ = 1;
  bool shutting_down_ = false;
  // True when this simulator installed the util::log sim-time source.
  bool owns_log_time_source_ = false;

  obs::Counter& events_executed_ = metrics_.counter("sim.kernel.events_executed");
  obs::Counter& eventfn_heap_fallbacks_ = metrics_.counter("sim.kernel.eventfn_heap_fallbacks");
  obs::Counter& processes_spawned_ = metrics_.counter("sim.process.spawned");
  obs::Counter& process_wakes_ = metrics_.counter("sim.process.wakes");
  obs::Counter& process_kills_ = metrics_.counter("sim.process.kills");
  obs::TraceBus::Channel& proc_trace_ = trace_.channel("sim.process");

  // Event arena + key heap (see file comment). slab_, meta_, and slot_span_
  // are parallel arrays indexed by slot; slot_span_ carries the scheduler's
  // span context to the event's dispatch (0 whenever tracing is off).
  std::vector<EventFn> slab_;
  std::vector<SlotMeta> meta_;
  std::vector<obs::SpanId> slot_span_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<HeapEntry> heap_;

  std::vector<std::unique_ptr<Process>> processes_;
  std::unordered_map<std::uint64_t, Process*> live_processes_;  // by id
  int live_process_count_ = 0;
  // Finished-but-unreaped count; when it crosses the reap threshold the next
  // safe point compacts processes_.
  int finished_unreaped_ = 0;
  Process* current_ = nullptr;
};

}  // namespace mg::sim
