// The discrete-event simulation kernel.
//
// A Simulator owns time-ordered event queues and a set of cooperative
// Processes. Events are partitioned into *lanes* (detail::EventLane): lane 0
// is the process lane — every cooperative process, transport, and grid
// service runs there — and lanes 1..P-1 hold the wire partitions of the
// packet network when parallel execution is configured. Without
// configureParallel() there is exactly one lane and the kernel behaves as a
// classic sequential simulator: either the kernel (dispatching events) or
// one process (between two of its blocking calls) runs at a time, backed by
// a strict one-at-a-time handoff protocol, so simulation semantics are
// deterministic: the same configuration and seed give bit-identical runs.
//
// With configureParallel(), run()/runUntil() delegate to a ParallelEngine
// that executes lanes on worker threads under conservative lookahead
// synchronization (see sim/parallel.h). The engine's contract: the set of
// lanes and every event's (lane, time, per-lane seq) are functions of the
// configuration alone, never of the worker count, so `--parallel=N` is a
// pure speed knob — metrics, span trees, and trace output are byte-identical
// for any N.
//
// Events live in per-lane slab arenas: fixed records recycled through a free
// list, ordered by a 4-ary min-heap of slot indices. cancel() removes the
// record from the heap in place (O(log n)) and frees the slot immediately,
// so the cancel-heavy suspendFor/TCP-RTO workloads leave no tombstones
// behind and the arena's footprint tracks the number of *pending* events.
// Event bodies are sim::EventFn small-buffer callables; the hot paths
// capture at most 48 bytes and never touch the heap
// (`sim.kernel.eventfn_heap_fallbacks` counts the exceptions).
//
// Process code blocks via Simulator::delay / suspend / suspendFor (usually
// indirectly, through Channel, Condition, or the vos socket layer). All
// process APIs are lane-0-only ("partition-safe"): calling them from a wire
// lane during a parallel phase throws UsageError instead of corrupting the
// process table. At shutdown every unfinished process is unwound with a
// ProcessKilled exception; process code must let it propagate (never swallow
// with catch(...)) and must not issue new blocking calls while unwinding.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/state_capture.h"
#include "obs/span.h"
#include "obs/timeline.h"
#include "obs/trace_bus.h"
#include "sim/event_fn.h"
#include "sim/time.h"
#include "util/error.h"

namespace mg::sim {

class Simulator;
class ParallelEngine;

/// Thrown inside a process when the simulator tears it down. Not derived
/// from mg::Error so that generic error handling does not accidentally
/// swallow it.
struct ProcessKilled {};

namespace detail {

/// One partition's event storage: slab arena + 4-ary min-heap + clock.
/// Lane 0 is the process lane; lanes 1.. are wire partitions. Each lane is
/// drained by exactly one thread per parallel phase (which thread is
/// unobservable), and only the coordinator touches lanes between phases.
struct EventLane {
  // Per-slot cancellation bookkeeping, kept apart from the fat EventFn slab
  // so the heap_pos writes done while sifting stay in a dense 8-byte-stride
  // table. `heap_pos` is the slot's index in heap while pending, -1 once
  // executed/cancelled/free. `generation` tags the slot so stale EventIds
  // miss after reuse.
  struct SlotMeta {
    std::uint32_t generation = 1;
    std::int32_t heap_pos = -1;
  };

  // A 24-byte heap entry carrying the full ordering key: (time, seq) is a
  // total order because seq is unique within the lane.
  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  static bool entryBefore(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;  // FIFO among equal times
  }

  /// A cross-lane event produced during a parallel phase, parked in the
  /// producing lane's outbox and merged into the destination lane's heap at
  /// the next barrier, in (source lane, push order) — a deterministic rule
  /// because each lane's push order is fixed by its own execution.
  struct CrossMsg {
    std::uint32_t dst_lane;
    SimTime time;
    std::uint64_t span_ctx;  // scheduler's span context, carried across
    EventFn fn;
  };

  std::uint32_t index = 0;
  SimTime now = 0;
  std::uint64_t next_seq = 0;
  std::vector<EventFn> slab;
  std::vector<SlotMeta> meta;
  std::vector<std::uint64_t> slot_span;  // obs::SpanId per slot
  std::vector<std::uint32_t> free_slots;
  std::vector<HeapEntry> heap;
  // Phase-separated mailboxes: written only by this lane's drainer thread
  // during a phase, drained only by the coordinator at the barrier — the
  // barrier's synchronization is what makes plain vectors race-free.
  std::vector<CrossMsg> outbox;
  std::vector<std::function<void()>> barrier_ops;

  void placeEntry(std::size_t pos, const HeapEntry& e);
  void siftUp(std::size_t pos, const HeapEntry& e);
  void siftDown(std::size_t pos, const HeapEntry& e);
  void heapPush(const HeapEntry& e);
  void heapRemoveAt(std::int32_t pos);
  std::uint32_t allocSlot();
  void freeSlot(std::uint32_t slot);
};

/// Which (simulator, lane) the calling thread is draining. Worker threads
/// set this around each lane drain; process threads and everything else see
/// {nullptr, nullptr} and resolve to lane 0 of whatever simulator they ask.
struct LaneCtx {
  const Simulator* sim = nullptr;
  EventLane* lane = nullptr;
};
inline thread_local LaneCtx t_lane_ctx;

}  // namespace detail

/// A cooperative simulated process. Created via Simulator::spawn.
///
/// Lifetime: the Simulator reaps finished Process objects at safe points in
/// run()/runUntil(), so a stored `Process*` is only valid while the process
/// is unfinished (a blocked or running process is never reaped). Long-lived
/// bookkeeping that may outlast a process should store its id() and use
/// Simulator::processFinished / killProcessById instead.
class Process {
 public:
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  bool finished() const { return finished_; }

 private:
  friend class Simulator;
  Process(Simulator& sim, std::uint64_t id, std::string name, std::function<void()> body);

  void threadMain();
  /// Kernel side: transfer control to the process; returns when it yields.
  void resumeFromKernel();
  /// Process side: return control to the kernel; returns when resumed.
  void yieldToKernel();

  Simulator& sim_;
  std::uint64_t id_;
  std::string name_;
  std::function<void()> body_;

  // Handoff state: a pair of binary semaphores and the backing thread.
  struct Impl;
  std::unique_ptr<Impl> impl_;

  bool finished_ = false;
  bool kill_ = false;
  // True while the process is suspended waiting for wake()/timeout.
  bool suspended_ = false;
  // True when a resume event for this process is already queued.
  bool wake_pending_ = false;
  // Set by the timeout path so suspendFor can report expiry.
  bool timed_out_ = false;
  // Monotonic counter distinguishing separate suspend episodes, so a stale
  // timeout event cannot wake a later suspend.
  std::uint64_t wait_epoch_ = 0;
  // Pending suspendFor timeout event, cancelled in place on wake so expired
  // timers neither linger in the queue nor stretch run()'s end time.
  std::uint64_t timeout_event_ = 0;
  // Pending resume event (spawn/delay/wake), at most one thanks to
  // wake_pending_. Cancelled when the process finishes: the event captures
  // this Process, which reaping is about to free.
  std::uint64_t resume_event_ = 0;
  // Ambient span context (obs::SpanId), saved when the process yields and
  // restored around the next slice, so a process resumes inside the span it
  // blocked in — even when the resume came from a foreign context's wake().
  std::uint64_t span_ctx_ = 0;
};

/// Opaque handle for a scheduled event: (generation << 32) | (lane << 26) |
/// slot. The generation tag detects slot reuse, so cancelling a stale handle
/// is a safe no-op; the lane field routes cancel() to the owning partition.
/// Never 0 (callers use 0 as "no event" — cross-lane schedules during a
/// parallel phase also return 0, they are fire-and-forget).
using EventId = std::uint64_t;

/// The event-driven simulation core.
class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time: the draining lane's clock on a worker thread,
  /// lane 0's clock everywhere else (process threads, setup code).
  SimTime now() const { return laneOfCaller().now; }

  /// Schedule `fn` at absolute time `t` (>= now) on the caller's lane.
  /// Events at equal times run in scheduling order.
  EventId scheduleAt(SimTime t, EventFn fn);

  /// Schedule `fn` after `delay` (>= 0) on the caller's lane.
  EventId scheduleAfter(SimTime delay, EventFn fn);

  /// Schedule onto an explicit lane (0 = process lane, 1.. = wire
  /// partitions). Same-lane calls behave like scheduleAt. Cross-lane calls
  /// during a parallel phase park the event in the caller lane's outbox
  /// (merged deterministically at the next barrier) and return 0; outside a
  /// phase they push directly and return a real id. Cross-lane events must
  /// respect the engine's lookahead — `t` at least one lookahead past the
  /// epoch start; violations are counted in `sim.parallel.horizon_violations`
  /// and clamped to the destination lane's clock.
  EventId scheduleOnLane(int lane, SimTime t, EventFn fn);

  /// Cancel a pending event: the record leaves the heap and its arena slot
  /// is recycled immediately (the capture's destructors run here).
  /// Cancelling an already-run or unknown event is a no-op (callers often
  /// race benignly with their own timeouts). During a parallel phase only
  /// the caller's own lane's events may be cancelled.
  void cancel(EventId id);

  /// Create a process whose body starts at the current time. Lane-0 only.
  Process& spawn(std::string name, std::function<void()> body);

  /// Run until every lane's event queue is empty. Returns the final time.
  /// Delegates to the parallel engine when configureParallel() was called.
  SimTime run();

  /// Run events with time <= t, then set now to t.
  void runUntil(SimTime t);

  /// Kill all unfinished processes and join their threads. Called by run()
  /// completion is NOT implied — daemons stay blocked until shutdown() or
  /// destruction.
  void shutdown();

  /// Kill one process: it unwinds synchronously with ProcessKilled, exactly
  /// as in shutdown(), and this call returns once the unwind completes. The
  /// fault layer uses this for host crashes. A process must not kill itself;
  /// killing a finished process is a no-op. Lane-0 only (partition-safe:
  /// a wire-lane caller gets UsageError, not a corrupted process table).
  void killProcess(Process& p);

  /// killProcess by id: a safe no-op when the process has already finished
  /// (and possibly been reaped). Preferred by bookkeeping that stores ids
  /// across process lifetimes (host crash lists, vmpi daemon tracking).
  void killProcessById(std::uint64_t id);

  /// True when the process has finished (or never existed). Safe for any id,
  /// including reaped ones — unlike dereferencing a stale Process*.
  bool processFinished(std::uint64_t id) const;

  // --- process-context API (callable only from inside a process) ---

  /// Block the calling process for `d` simulated time.
  void delay(SimTime d);

  /// Block the calling process until another entity calls wake() on it.
  void suspend();

  /// Block until wake() or until `timeout` elapses. True if woken, false on
  /// timeout.
  bool suspendFor(SimTime timeout);

  /// The currently running process. Throws UsageError from kernel context.
  Process& currentProcess();

  /// True when called from inside a process.
  bool inProcessContext() const { return current_ != nullptr; }

  // --- any-context API ---

  /// Wake a suspended process (schedules its resume at the current time).
  /// No-op if the process is not suspended or already has a wake pending;
  /// see Condition for the standard mesa-style recheck idiom. Lane-0 only.
  void wake(Process& p);

  /// Number of processes that have not finished. O(1).
  int liveProcessCount() const { return live_process_count_; }

  /// Names of processes currently suspended; useful for diagnosing deadlock
  /// when run() returns while work was expected.
  std::vector<std::string> suspendedProcessNames() const;

  // --- parallel execution ---

  /// Split the kernel into `lanes` partitions (lane 0 = processes, 1.. =
  /// wire) driven by `workers` threads under conservative synchronization:
  /// each epoch executes events in [T, T + lookahead) where T is the global
  /// minimum next-event time. Must be called before run() and at most once;
  /// `lookahead` must be positive when lanes > 1. With lanes == 1 the engine
  /// still runs (so `--parallel=N` exercises one code path for every N) but
  /// each epoch simply drains the single lane.
  void configureParallel(int lanes, int workers, SimTime lookahead);

  /// Number of event lanes (1 unless configureParallel created more).
  int laneCount() const { return static_cast<int>(lanes_.size()); }

  /// The calling thread's lane index (0 outside worker drains).
  int currentLane() const { return static_cast<int>(laneOfCaller().index); }

  /// True while worker threads may be executing a parallel phase. Global
  /// mutations of state shared across lanes must go through runAtBarrier().
  bool inParallelPhase() const;

  /// Run `op` at the next barrier (between epochs, when no worker runs) —
  /// immediately when no phase is active. Used for routing recomputes,
  /// link/node state flips, and queue purges: anything that touches more
  /// than the caller's own lane. Ops run in (lane, enqueue order).
  void runAtBarrier(std::function<void()> op);

  /// The parallel engine, or nullptr when unconfigured.
  ParallelEngine* parallelEngine() { return engine_.get(); }

  /// Throws UsageError when called from a wire lane during a parallel
  /// phase. Process and scheduling APIs that touch cross-lane state call
  /// this; layers with their own lane-0-only invariants (vos scheduler,
  /// vmpi daemon bookkeeping) may call it too.
  void requireProcessLane(const char* what) const;

  /// Total events executed (kernel throughput metric for bench_kernel_perf).
  std::uint64_t eventsExecuted() const {
    return static_cast<std::uint64_t>(events_executed_.value());
  }

  /// Events currently scheduled (pending, not cancelled) across all lanes.
  /// Cancellation shrinks this immediately — there are no tombstones.
  std::size_t pendingEventCount() const;

  /// Slots in the event arenas: the high-water mark of *concurrently*
  /// pending events, summed over lanes. Bounded for schedule+cancel churn
  /// because cancelled and executed slots are recycled through free lists.
  std::size_t eventArenaSlots() const;

  /// Fold the kernel's observable state into a canonical digest (DESIGN.md
  /// §11): per-lane clocks and sequence counters, every pending event's
  /// (time, seq) ordering key in heap order (sorted, so the fold is
  /// independent of the heap's internal layout), and the live process table
  /// sorted by id. Strictly read-only; call between events (never from a
  /// parallel phase).
  void saveState(obs::StateWriter& w) const;

  /// The run-wide metrics registry: every layer attached to this simulator
  /// registers its counters here (names: `layer.component.counter`).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// The run-wide deterministic trace bus (disabled by default; enable
  /// channels via traceBus().setEnabled("net", true) etc.).
  obs::TraceBus& traceBus() { return trace_; }
  const obs::TraceBus& traceBus() const { return trace_; }

  /// The run-wide causal span recorder (disabled by default; enable with
  /// spans().setEnabled(true) before the run). The kernel propagates the
  /// current-span context through event dispatch, spawn inheritance, and
  /// per-process save/restore around slices.
  obs::SpanRecorder& spans() { return spans_; }
  const obs::SpanRecorder& spans() const { return spans_; }

  /// The run-wide telemetry timeline (fed by an obs::TelemetrySampler; see
  /// sim/telemetry.h). Follows the same lane-journal discipline as spans()
  /// and traceBus(), committed at every parallel barrier.
  obs::TimeSeriesRecorder& timeline() { return timeline_; }
  const obs::TimeSeriesRecorder& timeline() const { return timeline_; }

  /// The live-monitor publication board (mgrun --progress). Disabled by
  /// default: one relaxed bool load per dispatched event; enable() turns on
  /// per-event lane-clock/pending publication for an obs::ProgressMonitor.
  obs::RunPulse& pulse() { return pulse_; }
  const obs::RunPulse& pulse() const { return pulse_; }

 private:
  friend class Process;
  friend class ParallelEngine;

  static constexpr int kLaneBits = 6;                    // up to 64 lanes
  static constexpr int kSlotBits = 26;                   // 64M slots per lane
  static constexpr std::uint32_t kMaxSlots = 1u << kSlotBits;
  static EventId makeId(std::uint32_t lane, std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(generation) << 32) |
           (static_cast<EventId>(lane) << kSlotBits) | slot;
  }

  detail::EventLane& laneOfCaller() {
    const detail::LaneCtx& c = detail::t_lane_ctx;
    if (c.sim == this && c.lane != nullptr) return *c.lane;
    return *lanes_.front();
  }
  const detail::EventLane& laneOfCaller() const {
    return const_cast<Simulator*>(this)->laneOfCaller();
  }

  EventId scheduleOn(detail::EventLane& lane, SimTime t, EventFn fn, std::uint64_t span_ctx);
  /// Pop `lane`'s due root event, free its slot, and run it on the calling
  /// thread with the scheduler's span context restored.
  void dispatchTopOn(detail::EventLane& lane);

  void runProcessSlice(Process& p);
  void scheduleResume(Process& p);
  void reapFinishedProcesses();
  /// Compact processes_ if enough finished ones piled up. Safe points only
  /// (between events classically, between epochs under the engine).
  void reapIfNeeded();
  SimTime runClassic(SimTime limit, bool bounded);

  // Declared before the counter/channel handles below, which point into it.
  obs::MetricsRegistry metrics_;
  obs::TraceBus trace_;
  obs::SpanRecorder spans_{&metrics_};
  obs::TimeSeriesRecorder timeline_;
  obs::RunPulse pulse_;

  std::uint64_t next_process_id_ = 1;
  bool shutting_down_ = false;
  // True when this simulator installed the util::log sim-time source.
  bool owns_log_time_source_ = false;

  obs::Counter& events_executed_ = metrics_.counter("sim.kernel.events_executed");
  obs::Counter& eventfn_heap_fallbacks_ = metrics_.counter("sim.kernel.eventfn_heap_fallbacks");
  obs::Counter& processes_spawned_ = metrics_.counter("sim.process.spawned");
  obs::Counter& process_wakes_ = metrics_.counter("sim.process.wakes");
  obs::Counter& process_kills_ = metrics_.counter("sim.process.kills");
  obs::TraceBus::Channel& proc_trace_ = trace_.channel("sim.process");

  // lanes_[0] always exists; configureParallel appends wire lanes.
  // unique_ptr keeps lane addresses stable across the vector's growth (the
  // thread-local LaneCtx and in-flight EventFns may hold lane pointers).
  std::vector<std::unique_ptr<detail::EventLane>> lanes_;
  std::unique_ptr<ParallelEngine> engine_;

  std::vector<std::unique_ptr<Process>> processes_;
  std::unordered_map<std::uint64_t, Process*> live_processes_;  // by id
  int live_process_count_ = 0;
  // Finished-but-unreaped count; when it crosses the reap threshold the next
  // safe point compacts processes_.
  int finished_unreaped_ = 0;
  Process* current_ = nullptr;
};

}  // namespace mg::sim
