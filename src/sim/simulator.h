// The discrete-event simulation kernel.
//
// A Simulator owns a time-ordered event queue and a set of cooperative
// Processes. Exactly one thing runs at a time: either the kernel (dispatching
// events) or one process (between two of its blocking calls). Processes are
// backed by OS threads but are scheduled strictly one-at-a-time by a handoff
// protocol, so simulation semantics are single-threaded and deterministic:
// the same configuration and seed give bit-identical runs.
//
// Process code blocks via Simulator::delay / suspend / suspendFor (usually
// indirectly, through Channel, Condition, or the vos socket layer). At
// shutdown every unfinished process is unwound with a ProcessKilled
// exception; process code must let it propagate (never swallow with
// catch(...)) and must not issue new blocking calls while unwinding.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_bus.h"
#include "sim/time.h"
#include "util/error.h"

namespace mg::sim {

class Simulator;

/// Thrown inside a process when the simulator tears it down. Not derived
/// from mg::Error so that generic error handling does not accidentally
/// swallow it.
struct ProcessKilled {};

/// A cooperative simulated process. Created via Simulator::spawn.
class Process {
 public:
  ~Process();
  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  const std::string& name() const { return name_; }
  std::uint64_t id() const { return id_; }
  bool finished() const { return finished_; }

 private:
  friend class Simulator;
  Process(Simulator& sim, std::uint64_t id, std::string name, std::function<void()> body);

  void threadMain();
  /// Kernel side: transfer control to the process; returns when it yields.
  void resumeFromKernel();
  /// Process side: return control to the kernel; returns when resumed.
  void yieldToKernel();

  Simulator& sim_;
  std::uint64_t id_;
  std::string name_;
  std::function<void()> body_;

  // Handoff state, guarded by mutex_. `turn_` says who may run.
  struct Impl;
  std::unique_ptr<Impl> impl_;

  bool finished_ = false;
  bool kill_ = false;
  // True while the process is suspended waiting for wake()/timeout.
  bool suspended_ = false;
  // True when a resume event for this process is already queued.
  bool wake_pending_ = false;
  // Set by the timeout path so suspendFor can report expiry.
  bool timed_out_ = false;
  // Monotonic counter distinguishing separate suspend episodes, so a stale
  // timeout event cannot wake a later suspend.
  std::uint64_t wait_epoch_ = 0;
  // Pending suspendFor timeout event, cancelled eagerly on wake so expired
  // timers do not linger in the queue and stretch run()'s end time.
  std::uint64_t timeout_event_ = 0;
};

using EventId = std::uint64_t;

/// The event-driven simulation core.
class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time.
  SimTime now() const { return now_; }

  /// Schedule `fn` at absolute time `t` (>= now). Events at equal times run
  /// in scheduling order.
  EventId scheduleAt(SimTime t, std::function<void()> fn);

  /// Schedule `fn` after `delay` (>= 0).
  EventId scheduleAfter(SimTime delay, std::function<void()> fn);

  /// Cancel a pending event. Cancelling an already-run or unknown event is a
  /// no-op (callers often race benignly with their own timeouts).
  void cancel(EventId id);

  /// Create a process whose body starts at the current time.
  Process& spawn(std::string name, std::function<void()> body);

  /// Run until the event queue is empty. Returns the final time.
  SimTime run();

  /// Run events with time <= t, then set now to t.
  void runUntil(SimTime t);

  /// Kill all unfinished processes and join their threads. Called by run()
  /// completion is NOT implied — daemons stay blocked until shutdown() or
  /// destruction.
  void shutdown();

  /// Kill one process: it unwinds synchronously with ProcessKilled, exactly
  /// as in shutdown(), and this call returns once the unwind completes. The
  /// fault layer uses this for host crashes. A process must not kill itself;
  /// killing a finished process is a no-op.
  void killProcess(Process& p);

  // --- process-context API (callable only from inside a process) ---

  /// Block the calling process for `d` simulated time.
  void delay(SimTime d);

  /// Block the calling process until another entity calls wake() on it.
  void suspend();

  /// Block until wake() or until `timeout` elapses. True if woken, false on
  /// timeout.
  bool suspendFor(SimTime timeout);

  /// The currently running process. Throws UsageError from kernel context.
  Process& currentProcess();

  /// True when called from inside a process.
  bool inProcessContext() const { return current_ != nullptr; }

  // --- any-context API ---

  /// Wake a suspended process (schedules its resume at the current time).
  /// No-op if the process is not suspended or already has a wake pending;
  /// see Condition for the standard mesa-style recheck idiom.
  void wake(Process& p);

  /// Number of processes that have not finished.
  int liveProcessCount() const;

  /// Names of processes currently suspended; useful for diagnosing deadlock
  /// when run() returns while work was expected.
  std::vector<std::string> suspendedProcessNames() const;

  /// Total events executed (kernel throughput metric for bench_kernel_perf).
  std::uint64_t eventsExecuted() const {
    return static_cast<std::uint64_t>(events_executed_.value());
  }

  /// The run-wide metrics registry: every layer attached to this simulator
  /// registers its counters here (names: `layer.component.counter`).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  /// The run-wide deterministic trace bus (disabled by default; enable
  /// channels via traceBus().setEnabled("net", true) etc.).
  obs::TraceBus& traceBus() { return trace_; }
  const obs::TraceBus& traceBus() const { return trace_; }

 private:
  friend class Process;

  struct QueuedEvent {
    SimTime time;
    std::uint64_t seq;
    EventId id;
  };
  struct EventOrder {
    bool operator()(const QueuedEvent& a, const QueuedEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;  // FIFO among equal times
    }
  };

  void runProcessSlice(Process& p);
  void scheduleResume(Process& p);

  // Declared before the counter/channel handles below, which point into it.
  obs::MetricsRegistry metrics_;
  obs::TraceBus trace_;

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_event_id_ = 1;
  std::uint64_t next_process_id_ = 1;
  bool shutting_down_ = false;
  // True when this simulator installed the util::log sim-time source.
  bool owns_log_time_source_ = false;

  obs::Counter& events_executed_ = metrics_.counter("sim.kernel.events_executed");
  obs::Counter& processes_spawned_ = metrics_.counter("sim.process.spawned");
  obs::Counter& process_wakes_ = metrics_.counter("sim.process.wakes");
  obs::Counter& process_kills_ = metrics_.counter("sim.process.kills");
  obs::TraceBus::Channel& proc_trace_ = trace_.channel("sim.process");

  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, EventOrder> queue_;
  // Pending (non-cancelled) event bodies, keyed by id. Lazy cancellation:
  // cancelled ids are simply absent when popped.
  std::unordered_map<EventId, std::function<void()>> pending_;

  std::vector<std::unique_ptr<Process>> processes_;
  Process* current_ = nullptr;
};

}  // namespace mg::sim
