#include "sim/simulator.h"

#include <algorithm>
#include <semaphore>
#include <thread>

#include "util/log.h"

namespace mg::sim {

// ---------------------------------------------------------------------------
// Process: one OS thread, strictly alternating with the kernel thread.
//
// The handoff is a pair of binary semaphores: releasing the peer's semaphore
// is a single futex wake of exactly one waiter, with no mutex round-trip and
// no broadcast. Strict alternation (exactly one side runs at a time) keeps
// each semaphore's count in {0, 1} by construction.
// ---------------------------------------------------------------------------

struct Process::Impl {
  std::binary_semaphore run{0};   // kernel -> process: you may run
  std::binary_semaphore idle{0};  // process -> kernel: I have yielded
  std::thread thread;
};

Process::Process(Simulator& sim, std::uint64_t id, std::string name, std::function<void()> body)
    : sim_(sim), id_(id), name_(std::move(name)), body_(std::move(body)), impl_(std::make_unique<Impl>()) {
  impl_->thread = std::thread([this] { threadMain(); });
}

Process::~Process() {
  if (impl_->thread.joinable()) impl_->thread.join();
}

void Process::threadMain() {
  // Wait for the first resume before running the body.
  impl_->run.acquire();
  if (!kill_) {
    try {
      body_();
    } catch (const ProcessKilled&) {
      // Normal teardown path.
    } catch (const std::exception& e) {
      MG_LOG_ERROR("sim") << "process '" << name_ << "' died with exception: " << e.what();
    }
  }
  finished_ = true;
  impl_->idle.release();
}

void Process::resumeFromKernel() {
  impl_->run.release();
  impl_->idle.acquire();
  if (finished_ && impl_->thread.joinable()) impl_->thread.join();
}

void Process::yieldToKernel() {
  impl_->idle.release();
  impl_->run.acquire();
  if (kill_) throw ProcessKilled{};
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

namespace {
// Compact processes_ once this many finished Process objects accumulate.
constexpr int kProcessReapThreshold = 16;
}  // namespace

Simulator::Simulator() {
  owns_log_time_source_ = util::setLogSimTimeSource([this] { return now_; });
  spans_.setTimeSource([this] { return now_; });
}

Simulator::~Simulator() {
  shutdown();
  if (owns_log_time_source_) util::clearLogSimTimeSource();
}

// --------------------------------------------------- event arena + heap ---

void Simulator::placeEntry(std::size_t pos, const HeapEntry& e) {
  heap_[pos] = e;
  meta_[e.slot].heap_pos = static_cast<std::int32_t>(pos);
}

void Simulator::siftUp(std::size_t pos, const HeapEntry& e) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!entryBefore(e, heap_[parent])) break;
    placeEntry(pos, heap_[parent]);
    pos = parent;
  }
  placeEntry(pos, e);
}

void Simulator::siftDown(std::size_t pos, const HeapEntry& e) {
  const std::size_t n = heap_.size();
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (entryBefore(heap_[c], heap_[best])) best = c;
    }
    if (!entryBefore(heap_[best], e)) break;
    placeEntry(pos, heap_[best]);
    pos = best;
  }
  placeEntry(pos, e);
}

void Simulator::heapPush(const HeapEntry& e) {
  heap_.push_back(e);  // placeholder; siftUp writes the final position
  siftUp(heap_.size() - 1, e);
}

void Simulator::heapRemoveAt(std::int32_t pos) {
  const std::size_t p = static_cast<std::size_t>(pos);
  const HeapEntry moved = heap_.back();
  heap_.pop_back();
  if (p == heap_.size()) return;  // removed the tail
  if (p > 0 && entryBefore(moved, heap_[(p - 1) / 4])) {
    siftUp(p, moved);
  } else {
    siftDown(p, moved);
  }
}

std::uint32_t Simulator::allocSlot() {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slab_.emplace_back();
  meta_.emplace_back();
  slot_span_.push_back(0);
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void Simulator::freeSlot(std::uint32_t slot) {
  SlotMeta& m = meta_[slot];
  if (++m.generation == 0) m.generation = 1;  // keep ids nonzero on wrap
  m.heap_pos = -1;
  free_slots_.push_back(slot);
}

EventId Simulator::scheduleAt(SimTime t, EventFn fn) {
  if (t < now_) throw UsageError("scheduleAt in the past");
  if (fn.onHeap()) eventfn_heap_fallbacks_.inc();
  const std::uint32_t slot = allocSlot();
  slab_[slot] = std::move(fn);
  // Unconditional store: when tracing is off current() is pinned at 0, and
  // one 8-byte write is cheaper than a mispredictable branch here.
  slot_span_[slot] = spans_.current();
  heapPush(HeapEntry{t, next_seq_++, slot});
  return makeId(slot, meta_[slot].generation);
}

EventId Simulator::scheduleAfter(SimTime delay, EventFn fn) {
  if (delay < 0) throw UsageError("negative delay");
  return scheduleAt(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id);
  const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= slab_.size()) return;
  SlotMeta& m = meta_[slot];
  if (m.generation != generation || m.heap_pos < 0) return;
  slab_[slot] = EventFn();  // run capture destructors now, not at some later pop
  heapRemoveAt(m.heap_pos);
  freeSlot(slot);
}

void Simulator::dispatchTop() {
  const std::uint32_t slot = heap_.front().slot;
  now_ = heap_.front().time;
  // Move the body out before freeing: the body may schedule (growing the
  // slab) or cancel, and its slot must be reusable while it runs.
  EventFn fn = std::move(slab_[slot]);
  const obs::SpanId ctx = slot_span_[slot];
  heapRemoveAt(0);
  freeSlot(slot);
  events_executed_.inc();
  if (spans_.enabled()) {
    // Events run in the span context of whoever scheduled them.
    const obs::SpanId prev = spans_.current();
    spans_.setCurrent(ctx);
    fn();
    spans_.setCurrent(prev);
  } else {
    fn();
  }
}

SimTime Simulator::run() {
  while (!heap_.empty()) {
    if (finished_unreaped_ >= kProcessReapThreshold) reapFinishedProcesses();
    dispatchTop();
  }
  return now_;
}

void Simulator::runUntil(SimTime t) {
  if (t < now_) throw UsageError("runUntil in the past");
  while (!heap_.empty() && heap_.front().time <= t) {
    if (finished_unreaped_ >= kProcessReapThreshold) reapFinishedProcesses();
    dispatchTop();
  }
  now_ = t;
}

// ------------------------------------------------------------- processes ---

Process& Simulator::spawn(std::string name, std::function<void()> body) {
  if (shutting_down_) throw UsageError("spawn during shutdown");
  // Not make_unique: the constructor is private and Simulator is a friend.
  std::unique_ptr<Process> proc(new Process(*this, next_process_id_++, std::move(name), std::move(body)));
  Process& ref = *proc;
  ref.span_ctx_ = spans_.current();  // children start in the spawner's span
  processes_.push_back(std::move(proc));
  live_processes_.emplace(ref.id(), &ref);
  ++live_process_count_;
  processes_spawned_.inc();
  if (proc_trace_.enabled()) proc_trace_.record(now_, "spawn", static_cast<double>(ref.id()), ref.name());
  scheduleResume(ref);
  return ref;
}

void Simulator::scheduleResume(Process& p) {
  p.wake_pending_ = true;
  p.resume_event_ = scheduleAt(now_, [this, proc = &p] {
    proc->resume_event_ = 0;
    proc->wake_pending_ = false;
    runProcessSlice(*proc);
  });
}

void Simulator::runProcessSlice(Process& p) {
  if (p.finished_) return;
  Process* prev = current_;
  current_ = &p;
  p.suspended_ = false;
  if (spans_.enabled()) {
    // Swap in the process's saved span context for the slice: the process
    // resumes inside the span it blocked in, not in the waker's span.
    const obs::SpanId prev_span = spans_.current();
    spans_.setCurrent(p.span_ctx_);
    p.resumeFromKernel();
    p.span_ctx_ = spans_.current();
    spans_.setCurrent(prev_span);
  } else {
    p.resumeFromKernel();
  }
  current_ = prev;
  if (p.finished_) {
    // Exactly once per process: the slice that returned finished.
    live_processes_.erase(p.id_);
    --live_process_count_;
    ++finished_unreaped_;
  }
}

void Simulator::reapFinishedProcesses() {
  // Safe point only: called from the run loop between events, when no
  // process is mid-slice. Finished processes have had their threads joined
  // (resumeFromKernel joins on the finishing handoff), so destruction is
  // immediate. Live Process objects keep their addresses (unique_ptr).
  //
  // A process killed with a queued resume (a wake raced the kill) or a
  // pending suspendFor timeout (the unwind skipped the post-yield cancel)
  // is NOT reaped yet: those events captured this Process and fire as
  // no-ops, exactly as they did before reaping existed — freeing under them
  // would dangle, and cancelling them would perturb deterministic event
  // counts. The process is collected on a later pass, once they drain.
  std::erase_if(processes_, [](const std::unique_ptr<Process>& p) {
    return p->finished_ && p->timeout_event_ == 0 && p->resume_event_ == 0;
  });
  // Count newly-finished processes from zero again; stragglers with pending
  // events are retried on the next threshold crossing (or at shutdown),
  // keeping this amortized O(1) per event.
  finished_unreaped_ = 0;
}

void Simulator::shutdown() {
  shutting_down_ = true;
  // Kill in creation order; each killed process unwinds synchronously.
  for (auto& p : processes_) {
    if (!p->finished_) {
      p->kill_ = true;
      process_kills_.inc();
      if (proc_trace_.enabled()) proc_trace_.record(now_, "kill", static_cast<double>(p->id()), p->name());
      runProcessSlice(*p);
    }
  }
  processes_.clear();
  live_processes_.clear();
  live_process_count_ = 0;
  finished_unreaped_ = 0;
  shutting_down_ = false;
}

void Simulator::killProcess(Process& p) {
  if (p.finished_) return;
  if (current_ == &p) throw UsageError("a process cannot kill itself");
  p.kill_ = true;
  process_kills_.inc();
  if (proc_trace_.enabled()) proc_trace_.record(now_, "kill", static_cast<double>(p.id()), p.name());
  runProcessSlice(p);
}

void Simulator::killProcessById(std::uint64_t id) {
  const auto it = live_processes_.find(id);
  if (it == live_processes_.end()) return;  // finished (possibly reaped)
  killProcess(*it->second);
}

bool Simulator::processFinished(std::uint64_t id) const {
  return live_processes_.find(id) == live_processes_.end();
}

void Simulator::delay(SimTime d) {
  if (d < 0) throw UsageError("negative delay");
  Process& p = currentProcess();
  p.resume_event_ = scheduleAt(now_ + d, [this, proc = &p] {
    proc->resume_event_ = 0;
    proc->wake_pending_ = false;
    runProcessSlice(*proc);
  });
  p.wake_pending_ = true;
  p.suspended_ = true;
  p.yieldToKernel();
}

void Simulator::suspend() {
  Process& p = currentProcess();
  ++p.wait_epoch_;
  p.suspended_ = true;
  p.timed_out_ = false;
  p.yieldToKernel();
}

bool Simulator::suspendFor(SimTime timeout) {
  if (timeout < 0) throw UsageError("negative timeout");
  Process& p = currentProcess();
  const std::uint64_t epoch = ++p.wait_epoch_;
  p.suspended_ = true;
  p.timed_out_ = false;
  p.timeout_event_ = scheduleAt(now_ + timeout, [this, proc = &p, epoch] {
    // Stale if the process was woken (epoch bumped) or already running.
    if (proc->wait_epoch_ != epoch || !proc->suspended_) return;
    proc->timeout_event_ = 0;
    proc->timed_out_ = true;
    proc->wake_pending_ = false;
    runProcessSlice(*proc);
  });
  p.yieldToKernel();
  if (p.timeout_event_ != 0) {
    cancel(p.timeout_event_);
    p.timeout_event_ = 0;
  }
  return !p.timed_out_;
}

Process& Simulator::currentProcess() {
  if (!current_) throw UsageError("blocking call outside process context");
  return *current_;
}

void Simulator::wake(Process& p) {
  if (p.finished_ || !p.suspended_ || p.wake_pending_) return;
  process_wakes_.inc();
  if (proc_trace_.enabled()) proc_trace_.record(now_, "wake", static_cast<double>(p.id()), p.name());
  ++p.wait_epoch_;  // invalidate any pending suspendFor timeout
  if (p.timeout_event_ != 0) {
    cancel(p.timeout_event_);
    p.timeout_event_ = 0;
  }
  scheduleResume(p);
}

std::vector<std::string> Simulator::suspendedProcessNames() const {
  std::vector<std::string> names;
  for (const auto& p : processes_) {
    if (!p->finished_ && p->suspended_) names.push_back(p->name());
  }
  return names;
}

}  // namespace mg::sim
