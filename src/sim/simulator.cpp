#include "sim/simulator.h"

#include <algorithm>
#include <semaphore>
#include <thread>

#include "sim/parallel.h"
#include "util/log.h"

namespace mg::sim {

// ---------------------------------------------------------------------------
// Process: one OS thread, strictly alternating with the kernel thread.
//
// The handoff is a pair of binary semaphores: releasing the peer's semaphore
// is a single futex wake of exactly one waiter, with no mutex round-trip and
// no broadcast. Strict alternation (exactly one side runs at a time) keeps
// each semaphore's count in {0, 1} by construction. Under the parallel
// engine the "kernel side" is whichever worker thread is draining lane 0
// that epoch; the semaphore pair carries the happens-before edge, so the
// process thread always sees lane 0's latest state.
// ---------------------------------------------------------------------------

struct Process::Impl {
  std::binary_semaphore run{0};   // kernel -> process: you may run
  std::binary_semaphore idle{0};  // process -> kernel: I have yielded
  std::thread thread;
};

Process::Process(Simulator& sim, std::uint64_t id, std::string name, std::function<void()> body)
    : sim_(sim), id_(id), name_(std::move(name)), body_(std::move(body)), impl_(std::make_unique<Impl>()) {
  impl_->thread = std::thread([this] { threadMain(); });
}

Process::~Process() {
  if (impl_->thread.joinable()) impl_->thread.join();
}

void Process::threadMain() {
  // Wait for the first resume before running the body.
  impl_->run.acquire();
  if (!kill_) {
    try {
      body_();
    } catch (const ProcessKilled&) {
      // Normal teardown path.
    } catch (const std::exception& e) {
      MG_LOG_ERROR("sim") << "process '" << name_ << "' died with exception: " << e.what();
    }
  }
  finished_ = true;
  impl_->idle.release();
}

void Process::resumeFromKernel() {
  impl_->run.release();
  impl_->idle.acquire();
  if (finished_ && impl_->thread.joinable()) impl_->thread.join();
}

void Process::yieldToKernel() {
  impl_->idle.release();
  impl_->run.acquire();
  if (kill_) throw ProcessKilled{};
}

// ---------------------------------------------------------------------------
// EventLane: slab arena + 4-ary min-heap (see the header comment).
// ---------------------------------------------------------------------------

namespace detail {

void EventLane::placeEntry(std::size_t pos, const HeapEntry& e) {
  heap[pos] = e;
  meta[e.slot].heap_pos = static_cast<std::int32_t>(pos);
}

void EventLane::siftUp(std::size_t pos, const HeapEntry& e) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 4;
    if (!entryBefore(e, heap[parent])) break;
    placeEntry(pos, heap[parent]);
    pos = parent;
  }
  placeEntry(pos, e);
}

void EventLane::siftDown(std::size_t pos, const HeapEntry& e) {
  const std::size_t n = heap.size();
  for (;;) {
    const std::size_t first = 4 * pos + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (entryBefore(heap[c], heap[best])) best = c;
    }
    if (!entryBefore(heap[best], e)) break;
    placeEntry(pos, heap[best]);
    pos = best;
  }
  placeEntry(pos, e);
}

void EventLane::heapPush(const HeapEntry& e) {
  heap.push_back(e);  // placeholder; siftUp writes the final position
  siftUp(heap.size() - 1, e);
}

void EventLane::heapRemoveAt(std::int32_t pos) {
  const std::size_t p = static_cast<std::size_t>(pos);
  const HeapEntry moved = heap.back();
  heap.pop_back();
  if (p == heap.size()) return;  // removed the tail
  if (p > 0 && entryBefore(moved, heap[(p - 1) / 4])) {
    siftUp(p, moved);
  } else {
    siftDown(p, moved);
  }
}

std::uint32_t EventLane::allocSlot() {
  if (!free_slots.empty()) {
    const std::uint32_t slot = free_slots.back();
    free_slots.pop_back();
    return slot;
  }
  slab.emplace_back();
  meta.emplace_back();
  slot_span.push_back(0);
  return static_cast<std::uint32_t>(slab.size() - 1);
}

void EventLane::freeSlot(std::uint32_t slot) {
  SlotMeta& m = meta[slot];
  if (++m.generation == 0) m.generation = 1;  // keep ids nonzero on wrap
  m.heap_pos = -1;
  free_slots.push_back(slot);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

namespace {
// Compact processes_ once this many finished Process objects accumulate.
constexpr int kProcessReapThreshold = 16;
}  // namespace

Simulator::Simulator() {
  lanes_.push_back(std::make_unique<detail::EventLane>());
  owns_log_time_source_ = util::setLogSimTimeSource([this] { return now(); });
  spans_.setTimeSource([this] { return now(); });
}

Simulator::~Simulator() {
  shutdown();
  engine_.reset();  // joins worker threads before lanes_ is torn down
  if (owns_log_time_source_) util::clearLogSimTimeSource();
}

// ----------------------------------------------------------- scheduling ---

EventId Simulator::scheduleOn(detail::EventLane& lane, SimTime t, EventFn fn,
                              std::uint64_t span_ctx) {
  if (t < lane.now) throw UsageError("scheduleAt in the past");
  if (fn.onHeap()) eventfn_heap_fallbacks_.inc();
  const std::uint32_t slot = lane.allocSlot();
  if (slot >= kMaxSlots) throw UsageError("event arena exhausted (2^26 slots per lane)");
  lane.slab[slot] = std::move(fn);
  // Unconditional store: when tracing is off the context is pinned at 0, and
  // one 8-byte write is cheaper than a mispredictable branch here.
  lane.slot_span[slot] = span_ctx;
  lane.heapPush(detail::EventLane::HeapEntry{t, lane.next_seq++, slot});
  return makeId(lane.index, slot, lane.meta[slot].generation);
}

EventId Simulator::scheduleAt(SimTime t, EventFn fn) {
  return scheduleOn(laneOfCaller(), t, std::move(fn), spans_.current());
}

EventId Simulator::scheduleAfter(SimTime delay, EventFn fn) {
  if (delay < 0) throw UsageError("negative delay");
  detail::EventLane& lane = laneOfCaller();
  return scheduleOn(lane, lane.now + delay, std::move(fn), spans_.current());
}

EventId Simulator::scheduleOnLane(int lane, SimTime t, EventFn fn) {
  if (lane < 0 || lane >= laneCount()) throw UsageError("scheduleOnLane: no such lane");
  detail::EventLane& target = *lanes_[static_cast<std::size_t>(lane)];
  detail::EventLane& cur = laneOfCaller();
  if (&target == &cur) return scheduleOn(target, t, std::move(fn), spans_.current());
  if (engine_ != nullptr && engine_->inPhase()) {
    // Cross-lane during a phase: park in the caller lane's outbox. The
    // barrier merges outboxes in (source lane, push order) — deterministic
    // because each lane's own execution order is.
    cur.outbox.push_back(detail::EventLane::CrossMsg{static_cast<std::uint32_t>(lane), t,
                                                     spans_.current(), std::move(fn)});
    return 0;
  }
  return scheduleOn(target, t, std::move(fn), spans_.current());
}

void Simulator::cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id) & (kMaxSlots - 1);
  const std::uint32_t lane_idx = (static_cast<std::uint32_t>(id) >> kSlotBits) &
                                 ((1u << kLaneBits) - 1);
  const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
  if (lane_idx >= lanes_.size()) return;
  detail::EventLane& lane = *lanes_[lane_idx];
  if (engine_ != nullptr && engine_->inPhase() && &lane != &laneOfCaller()) {
    throw UsageError("cross-lane cancel during a parallel phase");
  }
  if (slot >= lane.slab.size()) return;
  detail::EventLane::SlotMeta& m = lane.meta[slot];
  if (m.generation != generation || m.heap_pos < 0) return;
  lane.slab[slot] = EventFn();  // run capture destructors now, not at some later pop
  lane.heapRemoveAt(m.heap_pos);
  lane.freeSlot(slot);
}

void Simulator::dispatchTopOn(detail::EventLane& lane) {
  const std::uint32_t slot = lane.heap.front().slot;
  lane.now = lane.heap.front().time;
  // Move the body out before freeing: the body may schedule (growing the
  // slab) or cancel, and its slot must be reusable while it runs.
  EventFn fn = std::move(lane.slab[slot]);
  const std::uint64_t ctx = lane.slot_span[slot];
  lane.heapRemoveAt(0);
  lane.freeSlot(slot);
  events_executed_.inc();
  if (pulse_.enabled()) {
    pulse_.beatLane(static_cast<int>(lane.index), lane.now,
                    static_cast<std::int64_t>(lane.heap.size()));
  }
  if (spans_.enabled()) {
    // Events run in the span context of whoever scheduled them.
    const obs::SpanId prev = spans_.current();
    spans_.setCurrent(ctx);
    fn();
    spans_.setCurrent(prev);
  } else {
    fn();
  }
}

// ---------------------------------------------------------------- running ---

SimTime Simulator::runClassic(SimTime limit, bool bounded) {
  detail::EventLane& lane = *lanes_.front();
  while (!lane.heap.empty() && (!bounded || lane.heap.front().time <= limit)) {
    reapIfNeeded();
    dispatchTopOn(lane);
  }
  if (bounded) lane.now = limit;
  return lane.now;
}

SimTime Simulator::run() {
  if (engine_ != nullptr) return engine_->run(0, /*bounded=*/false);
  return runClassic(0, /*bounded=*/false);
}

void Simulator::runUntil(SimTime t) {
  if (t < lanes_.front()->now) throw UsageError("runUntil in the past");
  if (engine_ != nullptr) {
    engine_->run(t, /*bounded=*/true);
    return;
  }
  runClassic(t, /*bounded=*/true);
}

std::size_t Simulator::pendingEventCount() const {
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane->heap.size();
  return n;
}

std::size_t Simulator::eventArenaSlots() const {
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane->slab.size();
  return n;
}

void Simulator::saveState(obs::StateWriter& w) const {
  w.u64("sim.lanes", lanes_.size());
  for (const auto& lane : lanes_) {
    w.u64("lane", lane->index);
    w.i64("now", lane->now);
    w.u64("next_seq", lane->next_seq);
    w.u64("pending", lane->heap.size());
    // The heap is only partially ordered; sort a copy of the ordering keys
    // so the digest does not depend on the internal layout (which varies
    // with the cancel history even between equivalent states).
    std::vector<detail::EventLane::HeapEntry> entries = lane->heap;
    std::sort(entries.begin(), entries.end(), detail::EventLane::entryBefore);
    for (const auto& e : entries) {
      w.i64("ev.t", e.time);
      w.u64("ev.seq", e.seq);
    }
  }
  std::vector<const Process*> procs;
  procs.reserve(live_processes_.size());
  for (const auto& [id, p] : live_processes_) procs.push_back(p);
  std::sort(procs.begin(), procs.end(),
            [](const Process* a, const Process* b) { return a->id_ < b->id_; });
  w.u64("sim.live_processes", procs.size());
  for (const Process* p : procs) {
    w.u64("proc.id", p->id_);
    w.str("proc.name", p->name_);
    w.boolean("proc.suspended", p->suspended_);
    w.boolean("proc.wake_pending", p->wake_pending_);
    w.u64("proc.wait_epoch", p->wait_epoch_);
  }
}

// ----------------------------------------------------------- parallelism ---

void Simulator::configureParallel(int lanes, int workers, SimTime lookahead) {
  if (engine_ != nullptr) throw UsageError("configureParallel called twice");
  if (lanes < 1 || lanes > (1 << kLaneBits)) throw UsageError("lane count out of range");
  if (workers < 1) throw UsageError("worker count must be >= 1");
  if (lanes > 1 && lookahead <= 0) {
    throw UsageError("parallel lanes need a positive lookahead");
  }
  for (int i = 1; i < lanes; ++i) {
    auto lane = std::make_unique<detail::EventLane>();
    lane->index = static_cast<std::uint32_t>(i);
    lane->now = lanes_.front()->now;
    lanes_.push_back(std::move(lane));
  }
  spans_.configureLanes(lanes);
  trace_.configureLanes(lanes);
  timeline_.configureLanes(lanes);
  pulse_.configureLanes(lanes);
  // Deliberately no worker-count instrument: the metrics snapshot must be
  // byte-identical at every worker count. The lane count is a function of
  // the configuration (topology), so it may be recorded.
  metrics_.gauge("sim.parallel.lanes").set(static_cast<double>(lanes));
  engine_ = std::make_unique<ParallelEngine>(*this, workers, lookahead);
}

bool Simulator::inParallelPhase() const {
  return engine_ != nullptr && engine_->inPhase();
}

void Simulator::runAtBarrier(std::function<void()> op) {
  if (inParallelPhase()) {
    laneOfCaller().barrier_ops.push_back(std::move(op));
    return;
  }
  op();
}

void Simulator::requireProcessLane(const char* what) const {
  const detail::LaneCtx& c = detail::t_lane_ctx;
  if (c.sim == this && c.lane != nullptr && c.lane->index != 0) {
    throw UsageError(std::string(what) + " is lane-0-only (called from wire lane " +
                     std::to_string(c.lane->index) + ")");
  }
}

// ------------------------------------------------------------- processes ---

Process& Simulator::spawn(std::string name, std::function<void()> body) {
  if (shutting_down_) throw UsageError("spawn during shutdown");
  requireProcessLane("spawn");
  // Not make_unique: the constructor is private and Simulator is a friend.
  std::unique_ptr<Process> proc(new Process(*this, next_process_id_++, std::move(name), std::move(body)));
  Process& ref = *proc;
  ref.span_ctx_ = spans_.current();  // children start in the spawner's span
  processes_.push_back(std::move(proc));
  live_processes_.emplace(ref.id(), &ref);
  ++live_process_count_;
  processes_spawned_.inc();
  if (proc_trace_.enabled()) proc_trace_.record(now(), "spawn", static_cast<double>(ref.id()), ref.name());
  scheduleResume(ref);
  return ref;
}

void Simulator::scheduleResume(Process& p) {
  p.wake_pending_ = true;
  p.resume_event_ = scheduleOn(*lanes_.front(), lanes_.front()->now,
                               [this, proc = &p] {
                                 proc->resume_event_ = 0;
                                 proc->wake_pending_ = false;
                                 runProcessSlice(*proc);
                               },
                               spans_.current());
}

void Simulator::runProcessSlice(Process& p) {
  if (p.finished_) return;
  Process* prev = current_;
  current_ = &p;
  p.suspended_ = false;
  if (spans_.enabled()) {
    // Swap in the process's saved span context for the slice: the process
    // resumes inside the span it blocked in, not in the waker's span.
    const obs::SpanId prev_span = spans_.current();
    spans_.setCurrent(p.span_ctx_);
    p.resumeFromKernel();
    p.span_ctx_ = spans_.current();
    spans_.setCurrent(prev_span);
  } else {
    p.resumeFromKernel();
  }
  current_ = prev;
  if (p.finished_) {
    // Exactly once per process: the slice that returned finished.
    live_processes_.erase(p.id_);
    --live_process_count_;
    ++finished_unreaped_;
  }
}

void Simulator::reapIfNeeded() {
  if (finished_unreaped_ >= kProcessReapThreshold) reapFinishedProcesses();
}

void Simulator::reapFinishedProcesses() {
  // Safe point only: called from the run loop between events (or between
  // epochs under the parallel engine), when no process is mid-slice.
  // Finished processes have had their threads joined (resumeFromKernel joins
  // on the finishing handoff), so destruction is immediate. Live Process
  // objects keep their addresses (unique_ptr).
  //
  // A process killed with a queued resume (a wake raced the kill) or a
  // pending suspendFor timeout (the unwind skipped the post-yield cancel)
  // is NOT reaped yet: those events captured this Process and fire as
  // no-ops, exactly as they did before reaping existed — freeing under them
  // would dangle, and cancelling them would perturb deterministic event
  // counts. The process is collected on a later pass, once they drain.
  std::erase_if(processes_, [](const std::unique_ptr<Process>& p) {
    return p->finished_ && p->timeout_event_ == 0 && p->resume_event_ == 0;
  });
  // Count newly-finished processes from zero again; stragglers with pending
  // events are retried on the next threshold crossing (or at shutdown),
  // keeping this amortized O(1) per event.
  finished_unreaped_ = 0;
}

void Simulator::shutdown() {
  shutting_down_ = true;
  // Kill in creation order; each killed process unwinds synchronously.
  for (auto& p : processes_) {
    if (!p->finished_) {
      p->kill_ = true;
      process_kills_.inc();
      if (proc_trace_.enabled()) proc_trace_.record(now(), "kill", static_cast<double>(p->id()), p->name());
      runProcessSlice(*p);
    }
  }
  processes_.clear();
  live_processes_.clear();
  live_process_count_ = 0;
  finished_unreaped_ = 0;
  shutting_down_ = false;
}

void Simulator::killProcess(Process& p) {
  if (p.finished_) return;
  if (current_ == &p) throw UsageError("a process cannot kill itself");
  requireProcessLane("killProcess");
  p.kill_ = true;
  process_kills_.inc();
  if (proc_trace_.enabled()) proc_trace_.record(now(), "kill", static_cast<double>(p.id()), p.name());
  runProcessSlice(p);
}

void Simulator::killProcessById(std::uint64_t id) {
  requireProcessLane("killProcessById");  // even the map lookup is lane-0 state
  const auto it = live_processes_.find(id);
  if (it == live_processes_.end()) return;  // finished (possibly reaped)
  killProcess(*it->second);
}

bool Simulator::processFinished(std::uint64_t id) const {
  return live_processes_.find(id) == live_processes_.end();
}

void Simulator::delay(SimTime d) {
  if (d < 0) throw UsageError("negative delay");
  requireProcessLane("delay");
  Process& p = currentProcess();
  detail::EventLane& lane0 = *lanes_.front();
  p.resume_event_ = scheduleOn(lane0, lane0.now + d,
                               [this, proc = &p] {
                                 proc->resume_event_ = 0;
                                 proc->wake_pending_ = false;
                                 runProcessSlice(*proc);
                               },
                               spans_.current());
  p.wake_pending_ = true;
  p.suspended_ = true;
  p.yieldToKernel();
}

void Simulator::suspend() {
  requireProcessLane("suspend");
  Process& p = currentProcess();
  ++p.wait_epoch_;
  p.suspended_ = true;
  p.timed_out_ = false;
  p.yieldToKernel();
}

bool Simulator::suspendFor(SimTime timeout) {
  if (timeout < 0) throw UsageError("negative timeout");
  requireProcessLane("suspendFor");
  Process& p = currentProcess();
  const std::uint64_t epoch = ++p.wait_epoch_;
  p.suspended_ = true;
  p.timed_out_ = false;
  detail::EventLane& lane0 = *lanes_.front();
  p.timeout_event_ = scheduleOn(lane0, lane0.now + timeout,
                                [this, proc = &p, epoch] {
                                  // Stale if the process was woken (epoch bumped) or already
                                  // running.
                                  if (proc->wait_epoch_ != epoch || !proc->suspended_) return;
                                  proc->timeout_event_ = 0;
                                  proc->timed_out_ = true;
                                  proc->wake_pending_ = false;
                                  runProcessSlice(*proc);
                                },
                                spans_.current());
  p.yieldToKernel();
  if (p.timeout_event_ != 0) {
    cancel(p.timeout_event_);
    p.timeout_event_ = 0;
  }
  return !p.timed_out_;
}

Process& Simulator::currentProcess() {
  if (!current_) throw UsageError("blocking call outside process context");
  return *current_;
}

void Simulator::wake(Process& p) {
  if (p.finished_ || !p.suspended_ || p.wake_pending_) return;
  requireProcessLane("wake");
  process_wakes_.inc();
  if (proc_trace_.enabled()) proc_trace_.record(now(), "wake", static_cast<double>(p.id()), p.name());
  ++p.wait_epoch_;  // invalidate any pending suspendFor timeout
  if (p.timeout_event_ != 0) {
    cancel(p.timeout_event_);
    p.timeout_event_ = 0;
  }
  scheduleResume(p);
}

std::vector<std::string> Simulator::suspendedProcessNames() const {
  std::vector<std::string> names;
  for (const auto& p : processes_) {
    if (!p->finished_ && p->suspended_) names.push_back(p->name());
  }
  return names;
}

}  // namespace mg::sim
