#include "sim/simulator.h"

#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/log.h"

namespace mg::sim {

// ---------------------------------------------------------------------------
// Process: one OS thread, strictly alternating with the kernel thread.
// ---------------------------------------------------------------------------

struct Process::Impl {
  std::mutex mutex;
  std::condition_variable cv;
  enum class Turn { Kernel, Proc } turn = Turn::Kernel;
  std::thread thread;
};

Process::Process(Simulator& sim, std::uint64_t id, std::string name, std::function<void()> body)
    : sim_(sim), id_(id), name_(std::move(name)), body_(std::move(body)), impl_(std::make_unique<Impl>()) {
  impl_->thread = std::thread([this] { threadMain(); });
}

Process::~Process() {
  if (impl_->thread.joinable()) impl_->thread.join();
}

void Process::threadMain() {
  // Wait for the first resume before running the body.
  {
    std::unique_lock lock(impl_->mutex);
    impl_->cv.wait(lock, [&] { return impl_->turn == Impl::Turn::Proc; });
  }
  if (!kill_) {
    try {
      body_();
    } catch (const ProcessKilled&) {
      // Normal teardown path.
    } catch (const std::exception& e) {
      MG_LOG_ERROR("sim") << "process '" << name_ << "' died with exception: " << e.what();
    }
  }
  finished_ = true;
  std::unique_lock lock(impl_->mutex);
  impl_->turn = Impl::Turn::Kernel;
  impl_->cv.notify_all();
}

void Process::resumeFromKernel() {
  {
    std::unique_lock lock(impl_->mutex);
    impl_->turn = Impl::Turn::Proc;
    impl_->cv.notify_all();
    impl_->cv.wait(lock, [&] { return impl_->turn == Impl::Turn::Kernel; });
  }
  if (finished_ && impl_->thread.joinable()) impl_->thread.join();
}

void Process::yieldToKernel() {
  std::unique_lock lock(impl_->mutex);
  impl_->turn = Impl::Turn::Kernel;
  impl_->cv.notify_all();
  impl_->cv.wait(lock, [&] { return impl_->turn == Impl::Turn::Proc; });
  if (kill_) throw ProcessKilled{};
}

// ---------------------------------------------------------------------------
// Simulator
// ---------------------------------------------------------------------------

Simulator::Simulator() {
  owns_log_time_source_ = util::setLogSimTimeSource([this] { return now_; });
}

Simulator::~Simulator() {
  shutdown();
  if (owns_log_time_source_) util::clearLogSimTimeSource();
}

EventId Simulator::scheduleAt(SimTime t, std::function<void()> fn) {
  if (t < now_) throw UsageError("scheduleAt in the past");
  EventId id = next_event_id_++;
  queue_.push(QueuedEvent{t, next_seq_++, id});
  pending_.emplace(id, std::move(fn));
  return id;
}

EventId Simulator::scheduleAfter(SimTime delay, std::function<void()> fn) {
  if (delay < 0) throw UsageError("negative delay");
  return scheduleAt(now_ + delay, std::move(fn));
}

void Simulator::cancel(EventId id) { pending_.erase(id); }

Process& Simulator::spawn(std::string name, std::function<void()> body) {
  if (shutting_down_) throw UsageError("spawn during shutdown");
  // Not make_unique: the constructor is private and Simulator is a friend.
  std::unique_ptr<Process> proc(new Process(*this, next_process_id_++, std::move(name), std::move(body)));
  Process& ref = *proc;
  processes_.push_back(std::move(proc));
  processes_spawned_.inc();
  if (proc_trace_.enabled()) proc_trace_.record(now_, "spawn", static_cast<double>(ref.id()), ref.name());
  scheduleResume(ref);
  return ref;
}

void Simulator::scheduleResume(Process& p) {
  p.wake_pending_ = true;
  scheduleAt(now_, [this, proc = &p] {
    proc->wake_pending_ = false;
    runProcessSlice(*proc);
  });
}

void Simulator::runProcessSlice(Process& p) {
  if (p.finished_) return;
  Process* prev = current_;
  current_ = &p;
  p.suspended_ = false;
  p.resumeFromKernel();
  current_ = prev;
}

SimTime Simulator::run() {
  while (!queue_.empty()) {
    QueuedEvent ev = queue_.top();
    queue_.pop();
    auto it = pending_.find(ev.id);
    if (it == pending_.end()) continue;  // cancelled
    std::function<void()> fn = std::move(it->second);
    pending_.erase(it);
    now_ = ev.time;
    events_executed_.inc();
    fn();
  }
  return now_;
}

void Simulator::runUntil(SimTime t) {
  if (t < now_) throw UsageError("runUntil in the past");
  while (!queue_.empty() && queue_.top().time <= t) {
    QueuedEvent ev = queue_.top();
    queue_.pop();
    auto it = pending_.find(ev.id);
    if (it == pending_.end()) continue;
    std::function<void()> fn = std::move(it->second);
    pending_.erase(it);
    now_ = ev.time;
    events_executed_.inc();
    fn();
  }
  now_ = t;
}

void Simulator::shutdown() {
  shutting_down_ = true;
  // Kill in creation order; each killed process unwinds synchronously.
  for (auto& p : processes_) {
    if (!p->finished_) {
      p->kill_ = true;
      process_kills_.inc();
      if (proc_trace_.enabled()) proc_trace_.record(now_, "kill", static_cast<double>(p->id()), p->name());
      runProcessSlice(*p);
    }
  }
  processes_.clear();
  shutting_down_ = false;
}

void Simulator::killProcess(Process& p) {
  if (p.finished_) return;
  if (current_ == &p) throw UsageError("a process cannot kill itself");
  p.kill_ = true;
  process_kills_.inc();
  if (proc_trace_.enabled()) proc_trace_.record(now_, "kill", static_cast<double>(p.id()), p.name());
  runProcessSlice(p);
}

void Simulator::delay(SimTime d) {
  if (d < 0) throw UsageError("negative delay");
  Process& p = currentProcess();
  scheduleAt(now_ + d, [this, proc = &p] {
    proc->wake_pending_ = false;
    runProcessSlice(*proc);
  });
  p.wake_pending_ = true;
  p.suspended_ = true;
  p.yieldToKernel();
}

void Simulator::suspend() {
  Process& p = currentProcess();
  ++p.wait_epoch_;
  p.suspended_ = true;
  p.timed_out_ = false;
  p.yieldToKernel();
}

bool Simulator::suspendFor(SimTime timeout) {
  if (timeout < 0) throw UsageError("negative timeout");
  Process& p = currentProcess();
  const std::uint64_t epoch = ++p.wait_epoch_;
  p.suspended_ = true;
  p.timed_out_ = false;
  p.timeout_event_ = scheduleAt(now_ + timeout, [this, proc = &p, epoch] {
    // Stale if the process was woken (epoch bumped) or already running.
    if (proc->wait_epoch_ != epoch || !proc->suspended_) return;
    proc->timeout_event_ = 0;
    proc->timed_out_ = true;
    proc->wake_pending_ = false;
    runProcessSlice(*proc);
  });
  p.yieldToKernel();
  if (p.timeout_event_ != 0) {
    cancel(p.timeout_event_);
    p.timeout_event_ = 0;
  }
  return !p.timed_out_;
}

Process& Simulator::currentProcess() {
  if (!current_) throw UsageError("blocking call outside process context");
  return *current_;
}

void Simulator::wake(Process& p) {
  if (p.finished_ || !p.suspended_ || p.wake_pending_) return;
  process_wakes_.inc();
  if (proc_trace_.enabled()) proc_trace_.record(now_, "wake", static_cast<double>(p.id()), p.name());
  ++p.wait_epoch_;  // invalidate any pending suspendFor timeout
  if (p.timeout_event_ != 0) {
    cancel(p.timeout_event_);
    p.timeout_event_ = 0;
  }
  scheduleResume(p);
}

int Simulator::liveProcessCount() const {
  int n = 0;
  for (const auto& p : processes_) {
    if (!p->finished_) ++n;
  }
  return n;
}

std::vector<std::string> Simulator::suspendedProcessNames() const {
  std::vector<std::string> names;
  for (const auto& p : processes_) {
    if (!p->finished_ && p->suspended_) names.push_back(p->name());
  }
  return names;
}

}  // namespace mg::sim
