// Fixed-capacity small-buffer callable for kernel events.
//
// scheduleAt/scheduleAfter fire millions of tiny closures per emulated
// second; wrapping each in std::function costs a heap allocation whenever
// the capture outgrows libstdc++'s 16-byte inline buffer (two shared_ptrs
// already overflow it). EventFn widens the inline buffer to 48 bytes —
// sized for the fattest hot-path capture in the tree, the reference
// platform's [self, peer, buf] triple of shared_ptrs — so the steady-state
// packet and timer paths never allocate. Captures that still don't fit fall
// back to the heap; the kernel counts those under
// `sim.kernel.eventfn_heap_fallbacks` so regressions are observable.
//
// Move-only, like the events it carries: an event body runs at most once and
// is never copied. Inline storage requires the callable to be nothrow move
// constructible (all standard captures — shared_ptr, string, vector — are),
// otherwise it is heap-allocated regardless of size.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mg::sim {

class EventFn {
 public:
  /// Inline capture capacity, bytes. Three pointers-worth of captures plus
  /// room for one by-value Packet-slot index or epoch counter.
  static constexpr std::size_t kInlineCapacity = 48;

  EventFn() noexcept : ops_(nullptr) {}

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    if constexpr (fitsInline<D>()) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(storage_)) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { moveFrom(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  /// Invoke the callable. Must not be empty.
  void operator()() { ops_->invoke(storage_); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True when the capture did not fit inline (heap fallback was taken).
  bool onHeap() const noexcept { return ops_ != nullptr && ops_->heap; }

 private:
  struct Ops {
    void (*invoke)(void* p);
    // Move-construct into dst's storage from src's storage, then destroy src.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void* p);
    bool heap;
  };

  template <typename D>
  static constexpr bool fitsInline() {
    return sizeof(D) <= kInlineCapacity && alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  static D* inlinePtr(void* p) {
    return std::launder(reinterpret_cast<D*>(p));
  }
  template <typename D>
  static D* heapPtr(void* p) {
    return *std::launder(reinterpret_cast<D**>(p));
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*inlinePtr<D>(p))(); },
      [](void* dst, void* src) {
        D* s = inlinePtr<D>(src);
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* p) { inlinePtr<D>(p)->~D(); },
      /*heap=*/false};

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* p) { (*heapPtr<D>(p))(); },
      [](void* dst, void* src) {
        *reinterpret_cast<D**>(dst) = heapPtr<D>(src);
      },
      [](void* p) { delete heapPtr<D>(p); },
      /*heap=*/true};

  void moveFrom(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_;
};

}  // namespace mg::sim
