// Typed bounded/unbounded mailbox for process-to-process messaging inside
// one simulation. vos sockets and the grid services are built on channels.
#pragma once

#include <deque>
#include <limits>
#include <optional>
#include <utility>

#include "sim/condition.h"
#include "sim/simulator.h"
#include "util/error.h"

namespace mg::sim {

/// Thrown by recv() when the channel is closed and drained.
class ChannelClosed : public mg::Error {
 public:
  ChannelClosed() : mg::Error("channel closed") {}
};

template <typename T>
class Channel {
 public:
  explicit Channel(Simulator& sim, size_t capacity = std::numeric_limits<size_t>::max())
      : sim_(sim), capacity_(capacity), readable_(sim), writable_(sim) {
    if (capacity_ == 0) throw mg::UsageError("channel capacity must be >= 1");
  }

  /// Blocking send; waits while the channel is full. Throws ChannelClosed if
  /// the channel is (or becomes) closed.
  void send(T value) {
    while (!closed_ && items_.size() >= capacity_) writable_.wait();
    if (closed_) throw ChannelClosed{};
    items_.push_back(std::move(value));
    readable_.notifyOne();
  }

  /// Non-blocking send; false when full or closed.
  bool trySend(T value) {
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(value));
    readable_.notifyOne();
    return true;
  }

  /// Blocking receive; waits while empty. Throws ChannelClosed when the
  /// channel is closed and all queued items have been drained.
  T recv() {
    while (items_.empty()) {
      if (closed_) throw ChannelClosed{};
      readable_.wait();
    }
    T v = std::move(items_.front());
    items_.pop_front();
    writable_.notifyOne();
    return v;
  }

  /// Receive with timeout; nullopt on expiry. Throws ChannelClosed when
  /// closed and drained.
  std::optional<T> recvFor(SimTime timeout) {
    const SimTime deadline = sim_.now() + timeout;
    while (items_.empty()) {
      if (closed_) throw ChannelClosed{};
      const SimTime remaining = deadline - sim_.now();
      if (remaining <= 0 || !readable_.waitFor(remaining)) {
        if (!items_.empty()) break;  // raced with a send at the deadline
        return std::nullopt;
      }
    }
    T v = std::move(items_.front());
    items_.pop_front();
    writable_.notifyOne();
    return v;
  }

  /// Non-blocking receive.
  std::optional<T> tryRecv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    writable_.notifyOne();
    return v;
  }

  /// Close the channel: senders and (once drained) receivers get
  /// ChannelClosed. Idempotent.
  void close() {
    if (closed_) return;
    closed_ = true;
    readable_.notifyAll();
    writable_.notifyAll();
  }

  bool closed() const { return closed_; }
  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

 private:
  Simulator& sim_;
  size_t capacity_;
  bool closed_ = false;
  std::deque<T> items_;
  Condition readable_;
  Condition writable_;
};

}  // namespace mg::sim
