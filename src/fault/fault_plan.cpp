#include "fault/fault_plan.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"

namespace mg::fault {

FaultKind faultKindFromString(const std::string& s) {
  const std::string t = util::toLower(s);
  if (t == "link_down") return FaultKind::LinkDown;
  if (t == "link_up") return FaultKind::LinkUp;
  if (t == "link_degrade") return FaultKind::LinkDegrade;
  if (t == "host_crash") return FaultKind::HostCrash;
  if (t == "host_restart") return FaultKind::HostRestart;
  if (t == "cpu_brownout") return FaultKind::CpuBrownout;
  if (t == "partition") return FaultKind::Partition;
  if (t == "heal") return FaultKind::Heal;
  throw ConfigError("unknown fault kind '" + s + "'");
}

std::string faultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::LinkDown: return "link_down";
    case FaultKind::LinkUp: return "link_up";
    case FaultKind::LinkDegrade: return "link_degrade";
    case FaultKind::HostCrash: return "host_crash";
    case FaultKind::HostRestart: return "host_restart";
    case FaultKind::CpuBrownout: return "cpu_brownout";
    case FaultKind::Partition: return "partition";
    case FaultKind::Heal: return "heal";
  }
  return "?";
}

namespace {

/// The keys each fault kind accepts (beyond the universal at/kind).
std::vector<std::string_view> allowedKeys(FaultKind k) {
  switch (k) {
    case FaultKind::LinkDown: return {"target", "duration"};
    case FaultKind::LinkUp: return {"target"};
    case FaultKind::LinkDegrade:
      return {"target", "loss", "latency_mult", "bandwidth_mult", "duration"};
    case FaultKind::HostCrash: return {"target", "duration"};
    case FaultKind::HostRestart: return {"target"};
    case FaultKind::CpuBrownout: return {"target", "factor", "duration"};
    case FaultKind::Partition: return {"nodes", "duration"};
    case FaultKind::Heal: return {"target"};
  }
  return {};
}

}  // namespace

FaultEvent FaultPlan::parseEvent(const util::ConfigSection& sec,
                                 std::initializer_list<std::string_view> extra_allowed) {
  FaultEvent ev;
  ev.name = sec.name();
  ev.at = sec.getTime("at");
  if (ev.at < 0) throw ConfigError("fault '" + ev.name + "' has negative time");
  ev.kind = faultKindFromString(sec.getString("kind"));

  // Reject unknown keys loudly: a misspelled `duration` would otherwise
  // silently turn a transient fault into a permanent one.
  const std::vector<std::string_view> allowed = allowedKeys(ev.kind);
  for (const std::string& key : sec.keys()) {
    if (key == "at" || key == "kind") continue;
    const bool known =
        std::find(allowed.begin(), allowed.end(), key) != allowed.end() ||
        std::find(extra_allowed.begin(), extra_allowed.end(), key) != extra_allowed.end();
    if (!known) {
      std::string msg = "fault '" + ev.name + "': unknown key '" + key + "' for kind " +
                        faultKindName(ev.kind) + " (accepted: at, kind";
      for (std::string_view a : allowed) msg += ", " + std::string(a);
      for (std::string_view a : extra_allowed) msg += ", " + std::string(a);
      throw ConfigError(msg + ")");
    }
  }

  const bool needs_target = ev.kind != FaultKind::Partition && ev.kind != FaultKind::Heal;
  if (needs_target) {
    ev.target = sec.getString("target");
  } else {
    ev.target = sec.getString("target", "");
  }
  if (sec.has("nodes")) {
    for (const auto& n : util::splitTrim(sec.getString("nodes"), ',')) {
      if (!n.empty()) ev.nodes.push_back(n);
    }
  }
  if (ev.kind == FaultKind::Partition && ev.nodes.empty()) {
    throw ConfigError("partition fault '" + ev.name + "' needs a nodes list");
  }
  if (sec.has("loss")) ev.loss = sec.getDouble("loss");
  ev.latency_mult = sec.getDouble("latency_mult", 1.0);
  ev.bandwidth_mult = sec.getDouble("bandwidth_mult", 1.0);
  ev.factor = sec.getDouble("factor", 1.0);
  if (sec.has("duration")) {
    ev.duration = sec.getTime("duration");
    if (ev.duration <= 0) throw ConfigError("fault '" + ev.name + "' has non-positive duration");
    const bool restorable = ev.kind == FaultKind::LinkDown || ev.kind == FaultKind::LinkDegrade ||
                            ev.kind == FaultKind::HostCrash ||
                            ev.kind == FaultKind::CpuBrownout ||
                            ev.kind == FaultKind::Partition;
    if (!restorable) {
      throw ConfigError("fault '" + ev.name + "' of kind " + faultKindName(ev.kind) +
                        " cannot take a duration");
    }
  }
  if (ev.kind == FaultKind::CpuBrownout && (ev.factor <= 0 || ev.factor > 1.0)) {
    throw ConfigError("brownout fault '" + ev.name + "' needs factor in (0, 1]");
  }
  if (ev.kind == FaultKind::LinkDegrade) {
    // bandwidth_mult = 0 is legal: it stalls fluid flows (and starves the
    // packet queues) until a restore; negative capacity is meaningless.
    if (ev.bandwidth_mult < 0) {
      throw ConfigError("degrade fault '" + ev.name + "' has negative bandwidth_mult");
    }
    if (ev.latency_mult < 0) {
      throw ConfigError("degrade fault '" + ev.name + "' has negative latency_mult");
    }
    if (ev.loss < 0 && ev.latency_mult == 1.0 && ev.bandwidth_mult == 1.0) {
      throw ConfigError("degrade fault '" + ev.name + "' changes nothing");
    }
  }
  return ev;
}

FaultPlan FaultPlan::fromConfig(const util::Config& cfg) {
  FaultPlan plan;
  for (const auto* sec : cfg.sectionsOfType("fault")) {
    plan.events_.push_back(parseEvent(*sec));
  }
  // Stable: same-time events keep file order (determinism).
  std::stable_sort(plan.events_.begin(), plan.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

FaultPlan FaultPlan::fromFile(const std::string& path) {
  return fromConfig(util::Config::parseFile(path));
}

void FaultPlan::add(FaultEvent ev) {
  events_.push_back(std::move(ev));
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
}

void FaultPlan::merge(const FaultPlan& other) {
  for (const auto& ev : other.events_) events_.push_back(ev);
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
}

std::string FaultPlan::toIni() const {
  std::string out;
  for (const FaultEvent& ev : events_) {
    if (!out.empty()) out += "\n";
    out += "[fault " + ev.name + "]\n";
    out += "at = " + obs::formatDouble(ev.at) + "s\n";
    out += "kind = " + faultKindName(ev.kind) + "\n";
    if (!ev.target.empty()) out += "target = " + ev.target + "\n";
    if (!ev.nodes.empty()) {
      out += "nodes = ";
      for (std::size_t i = 0; i < ev.nodes.size(); ++i) {
        if (i > 0) out += ", ";
        out += ev.nodes[i];
      }
      out += "\n";
    }
    if (ev.kind == FaultKind::LinkDegrade) {
      if (ev.loss >= 0) out += "loss = " + obs::formatDouble(ev.loss) + "\n";
      if (ev.latency_mult != 1.0) {
        out += "latency_mult = " + obs::formatDouble(ev.latency_mult) + "\n";
      }
      if (ev.bandwidth_mult != 1.0) {
        out += "bandwidth_mult = " + obs::formatDouble(ev.bandwidth_mult) + "\n";
      }
    }
    if (ev.kind == FaultKind::CpuBrownout) {
      out += "factor = " + obs::formatDouble(ev.factor) + "\n";
    }
    if (ev.duration > 0) out += "duration = " + obs::formatDouble(ev.duration) + "s\n";
  }
  return out;
}

}  // namespace mg::fault
