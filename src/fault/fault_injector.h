// Executes a FaultPlan against a MicroGridPlatform, deterministically, from
// simulator events. Every injected fault increments `fault.*` registry
// counters and is emitted on the `fault.injector` TraceBus channel, so fault
// runs are observable through the same machinery as everything else.
//
// The injector only touches platform mechanisms (crashHost, setLinkUp, ...).
// Middleware reactions — expiring the crashed host's GIS record, respawning
// its gatekeeper on restart — are wired in by the launcher through the
// onHostCrash / onHostRestart callbacks, keeping src/fault free of grid
// dependencies.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/microgrid_platform.h"
#include "fault/fault_plan.h"
#include "obs/state_capture.h"

namespace mg::fault {

class FaultInjector {
 public:
  /// Validates every event's target against the platform's topology and
  /// host table; throws ConfigError on an unknown link or host.
  FaultInjector(core::MicroGridPlatform& platform, FaultPlan plan);

  /// Middleware hooks, invoked right after the platform-level crash /
  /// restart has been applied. Set before arm().
  void onHostCrash(std::function<void(const std::string&)> cb) { on_crash_ = std::move(cb); }
  void onHostRestart(std::function<void(const std::string&)> cb) { on_restart_ = std::move(cb); }

  /// Schedule every event on the simulator clock (virtual time -> kernel
  /// time). Call once, before the platform runs.
  void arm();

  const FaultPlan& plan() const { return plan_; }

  /// Faults applied so far (inverse events from `duration` included).
  std::int64_t injected() const;

  /// Degenerate events deterministically skipped so far: crash of an
  /// already-down host, restart of a host that is up, link_down on a downed
  /// link (and link_up on an up one), a partition whose cut is already
  /// empty, a heal with nothing to mend, a brownout on a dead host. Ignored
  /// events count here (`fault.ignored`), never in injected(), schedule no
  /// inverse, and leave the availability accounting untouched — so the
  /// report stays consistent for any schedule the explorer composes.
  std::int64_t ignored() const;

  /// Availability / MTTR summary over the hosts the plan touched.
  struct HostReport {
    std::string host;
    int crashes = 0;
    double downtime_seconds = 0;   // total virtual time spent down
    double availability = 1.0;     // 1 - downtime / elapsed
    double mttr_seconds = 0;       // downtime / crashes
    bool down_at_horizon = false;  // still down at the observation horizon
  };
  /// Compute the report as of the current virtual time. `elapsed_seconds`
  /// overrides the observation window when positive (e.g. a bench's total
  /// runtime); by default the platform's current virtual time is used.
  std::vector<HostReport> report(double elapsed_seconds = 0) const;

  /// Render report() as an aligned text table.
  std::string renderReport(double elapsed_seconds = 0) const;

  /// State capture (DESIGN.md §11): availability bookkeeping (per-host
  /// crash counts and open downtime intervals) and the live partition cuts,
  /// registered under "fault". Two schedules that leave different fault
  /// bookkeeping behind must never collapse to one digest.
  void registerStateCapture(obs::StateCaptureRegistry& reg);

 private:
  void fire(const FaultEvent& ev);
  void applied(const FaultEvent& ev);
  void skipped(const FaultEvent& ev, const std::string& why);
  void validate(const FaultEvent& ev) const;
  obs::Counter& kindCounter(FaultKind k);

  core::MicroGridPlatform& platform_;
  FaultPlan plan_;
  bool armed_ = false;
  std::function<void(const std::string&)> on_crash_;
  std::function<void(const std::string&)> on_restart_;

  obs::Counter& c_injected_;
  obs::Counter& c_ignored_;
  obs::TraceBus::Channel& trace_;
  std::map<std::string, obs::Counter*> kind_counters_;

  // Partition id -> links taken down, for heal.
  std::map<std::string, std::vector<net::LinkId>> partitions_;

  struct HostStat {
    int crashes = 0;
    double down_since = -1;  // virtual seconds; -1 while up
    double downtime = 0;
  };
  std::map<std::string, HostStat> host_stats_;
};

}  // namespace mg::fault
