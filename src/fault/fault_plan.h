// A FaultPlan is a deterministic schedule of fault events parsed from the
// same INI dialect as grid configs:
//
//   [fault wan-outage]
//   at       = 12s            # virtual time
//   kind     = link_down
//   target   = la-chi
//   duration = 5s             # optional: auto-restore (link_up) afterwards
//
//   [fault degrade]
//   at             = 3s
//   kind           = link_degrade
//   target         = la-chi
//   loss           = 0.02     # absolute loss rate (omit to keep)
//   latency_mult   = 4        # multiplies current latency
//   bandwidth_mult = 0.25     # multiplies current bandwidth
//   duration       = 10s      # optional: restore saved parameters
//
//   [fault crash]
//   at       = 20s
//   kind     = host_crash
//   target   = vm1.ucsd.edu
//   duration = 8s             # optional: host_restart afterwards
//
//   [fault brownout]
//   at     = 5s
//   kind   = cpu_brownout
//   target = vm0.ucsd.edu
//   factor = 0.3              # CPU scaled to 30%
//   duration = 4s             # optional: restore full speed
//
//   [fault split]
//   at    = 9s
//   kind  = partition
//   nodes = vm0.ucsd.edu, vm1.ucsd.edu   # this set vs. the rest
//
//   [fault mend]
//   at     = 15s
//   kind   = heal
//   target = split            # name of the partition to heal (empty: all)
//
// Events are kept stable-sorted by `at`, so same-time events fire in file
// order — part of the byte-determinism guarantee for fault runs.
#pragma once

#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "util/config.h"

namespace mg::fault {

enum class FaultKind {
  LinkDown,
  LinkUp,
  LinkDegrade,
  HostCrash,
  HostRestart,
  CpuBrownout,
  Partition,
  Heal,
};

FaultKind faultKindFromString(const std::string& s);
std::string faultKindName(FaultKind k);

struct FaultEvent {
  double at = 0;  // virtual seconds
  FaultKind kind = FaultKind::LinkDown;
  std::string name;    // section name; doubles as the partition id
  std::string target;  // link name, hostname, or partition id (heal)
  std::vector<std::string> nodes;  // partition: the isolated node set
  double loss = -1;            // link_degrade: absolute loss rate; < 0 keeps
  double latency_mult = 1.0;   // link_degrade multipliers
  double bandwidth_mult = 1.0;
  double factor = 1.0;         // cpu_brownout: fraction of full speed
  double duration = 0;         // > 0: schedule the inverse event afterwards

  bool operator==(const FaultEvent&) const = default;
};

class FaultPlan {
 public:
  /// Collect every [fault ...] section of a parsed config.
  static FaultPlan fromConfig(const util::Config& cfg);

  /// Parse the file at `path` and collect its [fault ...] sections.
  static FaultPlan fromFile(const std::string& path);

  /// Programmatic construction (tests); keeps the schedule sorted.
  void add(FaultEvent ev);

  /// Merge another plan's events into this one (e.g. --faults file on top
  /// of the grid config's own [fault] sections).
  void merge(const FaultPlan& other);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Parse one [fault ...] section. Keys outside the kind's accepted set are
  /// rejected with a message naming the key and the accepted keys —
  /// misspelling `duration` must not silently yield a permanent fault.
  /// `extra_allowed` lets embedding dialects (the explorer's [candidate ...]
  /// sections carry a `times` list) pass their own keys through.
  static FaultEvent parseEvent(const util::ConfigSection& sec,
                               std::initializer_list<std::string_view> extra_allowed = {});

  /// Serialize as the same INI dialect fromConfig parses: one
  /// `[fault <name>]` section per event, schedule order, keys in canonical
  /// order, values via round-trip double formatting. An empty plan yields
  /// an empty string; parse(toIni(p)) == p for any valid plan — the
  /// explorer's minimal-reproduction output format.
  std::string toIni() const;

 private:
  std::vector<FaultEvent> events_;  // stable-sorted by `at`
};

}  // namespace mg::fault
