#include "fault/fault_injector.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "obs/span.h"
#include "util/log.h"
#include "util/strings.h"
#include "util/table.h"

namespace mg::fault {

namespace {

bool isLinkKind(FaultKind k) {
  return k == FaultKind::LinkDown || k == FaultKind::LinkUp || k == FaultKind::LinkDegrade;
}

bool isHostKind(FaultKind k) {
  return k == FaultKind::HostCrash || k == FaultKind::HostRestart ||
         k == FaultKind::CpuBrownout;
}

// Deliberate, environment-gated bug for the explorer's mutation check
// (DESIGN.md §11): with MG_MC_MUTATION=1, a restart that follows its crash by
// less than 2 virtual seconds "forgets" to close the downtime interval, so the
// availability report claims the host is still down while the platform says
// it is alive. The model checker must find a schedule exposing this; it must
// never be set outside that test.
bool mutationEnabled() {
  static const bool on = [] {
    const char* v = std::getenv("MG_MC_MUTATION");
    return v != nullptr && *v != '\0' && *v != '0';
  }();
  return on;
}

}  // namespace

FaultInjector::FaultInjector(core::MicroGridPlatform& platform, FaultPlan plan)
    : platform_(platform),
      plan_(std::move(plan)),
      c_injected_(platform.simulator().metrics().counter("fault.injected")),
      c_ignored_(platform.simulator().metrics().counter("fault.ignored")),
      trace_(platform.simulator().traceBus().channel("fault.injector")) {
  // Register every per-kind counter up front so the metrics registry's
  // contents do not depend on which faults actually fire (determinism of the
  // --metrics=json output across plans).
  for (FaultKind k : {FaultKind::LinkDown, FaultKind::LinkUp, FaultKind::LinkDegrade,
                      FaultKind::HostCrash, FaultKind::HostRestart, FaultKind::CpuBrownout,
                      FaultKind::Partition, FaultKind::Heal}) {
    kind_counters_[faultKindName(k)] =
        &platform.simulator().metrics().counter("fault." + faultKindName(k));
  }
  for (const auto& ev : plan_.events()) validate(ev);
}

void FaultInjector::validate(const FaultEvent& ev) const {
  const net::Topology& topo = platform_.network().topology();
  if (isLinkKind(ev.kind) && topo.findLink(ev.target) == net::kNoLink) {
    throw ConfigError("fault '" + ev.name + "': unknown link '" + ev.target + "'");
  }
  if (isHostKind(ev.kind) && !platform_.mapper().contains(ev.target)) {
    throw ConfigError("fault '" + ev.name + "': unknown host '" + ev.target + "'");
  }
  if (ev.kind == FaultKind::Partition) {
    for (const auto& n : ev.nodes) {
      if (topo.findNode(n) == net::kNoNode) {
        throw ConfigError("fault '" + ev.name + "': unknown node '" + n + "'");
      }
    }
  }
  if (ev.kind == FaultKind::Heal && !ev.target.empty()) {
    const auto& evs = plan_.events();
    const bool known = std::any_of(evs.begin(), evs.end(), [&](const FaultEvent& other) {
      return other.kind == FaultKind::Partition && other.name == ev.target;
    });
    if (!known) {
      throw ConfigError("heal fault '" + ev.name + "': no partition named '" + ev.target + "'");
    }
  }
}

obs::Counter& FaultInjector::kindCounter(FaultKind k) {
  return *kind_counters_.at(faultKindName(k));
}

void FaultInjector::arm() {
  if (armed_) throw mg::UsageError("FaultInjector::arm called twice");
  armed_ = true;
  sim::Simulator& sim = platform_.simulator();
  for (const auto& ev : plan_.events()) {
    const sim::SimTime t = platform_.virtualTime().toKernel(ev.at);
    sim.scheduleAt(std::max(t, sim.now()), [this, ev] { fire(ev); });
  }
}

void FaultInjector::applied(const FaultEvent& ev) {
  c_injected_.inc();
  kindCounter(ev.kind).inc();
  const std::string& what = ev.target.empty() ? ev.name : ev.target;
  trace_.record(platform_.simulator().now(), faultKindName(ev.kind), ev.at, what);
  obs::SpanRecorder& spans = platform_.simulator().spans();
  if (spans.enabled()) {
    // Faults show up as instant markers on the affected track, so a crash
    // lines up visually with the spans it aborts.
    const obs::SpanId mark = spans.instant("fault.injector", faultKindName(ev.kind), ev.target);
    spans.annotate(mark, "plan", ev.name);
  }
  MG_LOG_INFO("fault") << faultKindName(ev.kind) << " " << what << " (plan '" << ev.name
                       << "', t=" << ev.at << "vs)";
}

void FaultInjector::skipped(const FaultEvent& ev, const std::string& why) {
  c_ignored_.inc();
  const std::string& what = ev.target.empty() ? ev.name : ev.target;
  trace_.record(platform_.simulator().now(), "ignored_" + faultKindName(ev.kind), ev.at, what);
  MG_LOG_INFO("fault") << "ignored " << faultKindName(ev.kind) << " " << what << " (plan '"
                       << ev.name << "', t=" << ev.at << "vs): " << why;
}

void FaultInjector::fire(const FaultEvent& ev) {
  sim::Simulator& sim = platform_.simulator();
  net::NetworkModel& net = platform_.network();
  const net::Topology& topo = net.topology();
  const double now = platform_.virtualNow();

  // Synthesize the inverse event `duration` virtual seconds later. The
  // inverse goes through fire() itself, so it is counted and traced like any
  // other injected fault.
  auto scheduleInverse = [&](FaultEvent inverse) {
    inverse.at = ev.at + ev.duration;
    inverse.duration = 0;
    sim.scheduleAfter(platform_.virtualTime().toKernel(ev.duration),
                      [this, inverse] { fire(inverse); });
  };

  // Every case decides explicitly: apply (mutate state, count, schedule the
  // inverse) or ignore (count under fault.ignored, trace "ignored_<kind>",
  // and crucially schedule NO inverse — a skipped crash must not spawn a
  // phantom restart). The rules are pure functions of pre-event state, so any
  // schedule the explorer composes — crash of a dead host, restart of a live
  // one, link_down twice at the same timestamp — has one deterministic
  // outcome and a consistent availability report.
  switch (ev.kind) {
    case FaultKind::LinkDown: {
      const net::LinkId lid = topo.findLink(ev.target);
      if (!topo.link(lid).up) {
        skipped(ev, "link already down");
        return;
      }
      net.setLinkUp(lid, false);
      if (ev.duration > 0) {
        FaultEvent inv = ev;
        inv.kind = FaultKind::LinkUp;
        scheduleInverse(inv);
      }
      break;
    }
    case FaultKind::LinkUp: {
      const net::LinkId lid = topo.findLink(ev.target);
      if (topo.link(lid).up) {
        skipped(ev, "link already up");
        return;
      }
      net.setLinkUp(lid, true);
      break;
    }
    case FaultKind::LinkDegrade: {
      const net::LinkId lid = topo.findLink(ev.target);
      const net::LinkParams saved = net.linkParams(lid);
      net::LinkParams p = saved;
      if (ev.loss >= 0) p.loss_rate = ev.loss;
      p.latency = static_cast<sim::SimTime>(static_cast<double>(p.latency) * ev.latency_mult);
      p.bandwidth_bps *= ev.bandwidth_mult;
      net.applyLinkParams(lid, p);
      if (ev.duration > 0) {
        // Restoring saved parameters needs the closure, not a plain inverse
        // event; it is still counted as a link_degrade application.
        FaultEvent inv = ev;
        inv.at = ev.at + ev.duration;
        inv.duration = 0;
        sim.scheduleAfter(platform_.virtualTime().toKernel(ev.duration),
                          [this, inv, lid, saved] {
                            platform_.network().applyLinkParams(lid, saved);
                            applied(inv);
                          });
      }
      break;
    }
    case FaultKind::HostCrash: {
      if (!platform_.hostAlive(ev.target)) {
        skipped(ev, "host already down");
        return;
      }
      platform_.crashHost(ev.target);
      if (on_crash_) on_crash_(ev.target);
      HostStat& st = host_stats_[ev.target];
      ++st.crashes;
      st.down_since = now;
      if (ev.duration > 0) {
        FaultEvent inv = ev;
        inv.kind = FaultKind::HostRestart;
        scheduleInverse(inv);
      }
      break;
    }
    case FaultKind::HostRestart: {
      if (platform_.hostAlive(ev.target)) {
        skipped(ev, "host already up");
        return;
      }
      platform_.restartHost(ev.target);
      if (on_restart_) on_restart_(ev.target);
      HostStat& st = host_stats_[ev.target];
      if (st.down_since >= 0) {
        if (mutationEnabled() && now - st.down_since < 2.0) {
          // Seeded bug (see mutationEnabled above): the downtime interval is
          // left open, so report() keeps charging it forever.
        } else {
          st.downtime += now - st.down_since;
          st.down_since = -1;
        }
      }
      break;
    }
    case FaultKind::CpuBrownout: {
      if (!platform_.hostAlive(ev.target)) {
        skipped(ev, "host is down");
        return;
      }
      platform_.setHostCpuFactor(ev.target, ev.factor);
      if (ev.duration > 0) {
        FaultEvent inv = ev;
        inv.kind = FaultKind::CpuBrownout;
        inv.factor = 1.0;
        scheduleInverse(inv);
      }
      break;
    }
    case FaultKind::Partition: {
      std::set<net::NodeId> inside;
      for (const auto& n : ev.nodes) inside.insert(topo.findNode(n));
      std::vector<net::LinkId> cut;
      for (net::LinkId l = 0; l < topo.linkCount(); ++l) {
        const net::Link& link = topo.link(l);
        const bool a_in = inside.count(link.a) > 0;
        const bool b_in = inside.count(link.b) > 0;
        if (a_in == b_in || !link.up) continue;
        net.setLinkUp(l, false);
        cut.push_back(l);
      }
      if (cut.empty()) {
        // Every crossing link was already down (e.g. the same partition fired
        // twice): nothing to heal later, so no partitions_ entry either.
        skipped(ev, "cut is already empty");
        return;
      }
      std::vector<net::LinkId>& entry = partitions_[ev.name];
      entry.insert(entry.end(), cut.begin(), cut.end());
      if (ev.duration > 0) {
        FaultEvent inv = ev;
        inv.kind = FaultKind::Heal;
        inv.target = ev.name;
        scheduleInverse(inv);
      }
      break;
    }
    case FaultKind::Heal: {
      auto healOne = [&](const std::string& id) {
        auto it = partitions_.find(id);
        if (it == partitions_.end()) return;
        for (net::LinkId l : it->second) net.setLinkUp(l, true);
        partitions_.erase(it);
      };
      const bool mends = ev.target.empty() ? !partitions_.empty()
                                           : partitions_.count(ev.target) > 0;
      if (!mends) {
        skipped(ev, "nothing to heal");
        return;
      }
      if (ev.target.empty()) {
        while (!partitions_.empty()) healOne(partitions_.begin()->first);
      } else {
        healOne(ev.target);
      }
      break;
    }
  }
  applied(ev);
}

std::int64_t FaultInjector::injected() const { return c_injected_.value(); }

std::int64_t FaultInjector::ignored() const { return c_ignored_.value(); }

std::vector<FaultInjector::HostReport> FaultInjector::report(double elapsed_seconds) const {
  const double elapsed = elapsed_seconds > 0 ? elapsed_seconds : platform_.virtualNow();
  std::vector<HostReport> out;
  for (const auto& [host, st] : host_stats_) {
    HostReport r;
    r.host = host;
    r.crashes = st.crashes;
    r.downtime_seconds = st.downtime;
    if (st.down_since >= 0) {
      r.down_at_horizon = true;
      if (elapsed > st.down_since) {
        r.downtime_seconds += elapsed - st.down_since;  // still down at the horizon
      }
    }
    r.availability = elapsed > 0 ? 1.0 - r.downtime_seconds / elapsed : 1.0;
    r.mttr_seconds = st.crashes > 0 ? r.downtime_seconds / st.crashes : 0;
    out.push_back(std::move(r));
  }
  return out;
}

void FaultInjector::registerStateCapture(obs::StateCaptureRegistry& reg) {
  reg.add("fault", [this](obs::StateWriter& w) {
    w.u64("hosts", host_stats_.size());
    for (const auto& [host, st] : host_stats_) {
      w.key(host);
      w.i64("crashes", st.crashes);
      w.f64("down_since", st.down_since);
      w.f64("downtime", st.downtime);
    }
    w.u64("partitions", partitions_.size());
    for (const auto& [name, links] : partitions_) {
      w.key(name);
      w.u64("cut_links", links.size());
    }
    w.i64("injected", c_injected_.value());
    w.i64("ignored", c_ignored_.value());
  });
}

std::string FaultInjector::renderReport(double elapsed_seconds) const {
  util::Table t({"host", "crashes", "downtime (vs)", "availability", "MTTR (vs)"});
  for (const auto& r : report(elapsed_seconds)) {
    t.row() << r.host << r.crashes << r.downtime_seconds << r.availability << r.mttr_seconds;
  }
  std::string out = util::format("faults injected: %lld\n",
                                 static_cast<long long>(injected()));
  if (t.rowCount() > 0) out += t.render();
  return out;
}

}  // namespace mg::fault
