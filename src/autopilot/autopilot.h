// Autopilot-style instrumentation (paper §3.6).
//
// The paper validates internal behaviour by attaching Autopilot sensors to
// program variables and comparing the sampled traces between a physical run
// and a MicroGrid run. Here:
//
//  * SensorRegistry — the board of named sensor values. Application code
//    updates values (registering on first write); monitoring code reads
//    them. Everything runs inside one deterministic simulation, so plain
//    doubles suffice.
//  * Sampler — a daemon process that snapshots every sensor at a fixed
//    virtual-time interval into per-sensor traces.
//
// The Fig 17 metric (root-mean-square percentage difference between the
// normalized traces) lives in util::rmsPercentSkew.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/stats.h"
#include "vos/context.h"

namespace mg::autopilot {

class SensorRegistry {
 public:
  /// Update (creating on first write) a sensor value. Application side.
  void set(const std::string& name, double value);

  /// Increment a counter sensor.
  void increment(const std::string& name, double delta = 1.0);

  bool has(const std::string& name) const;
  double get(const std::string& name) const;
  std::vector<std::string> names() const;
  void clear() { values_.clear(); }

 private:
  std::map<std::string, double> values_;
};

class Sampler {
 public:
  explicit Sampler(SensorRegistry& registry) : registry_(registry) {}

  /// The daemon body: spawn it as a process on a monitoring host, e.g.
  ///   platform.spawnOn(host, "autopilot", [&](auto& ctx) {
  ///     sampler.run(ctx, 1.0);
  ///   });
  /// Samples every `interval_virtual_seconds` until stop() (or simulation
  /// teardown).
  void run(vos::HostContext& ctx, double interval_virtual_seconds);

  /// Ask the daemon to exit at its next tick.
  void stop() { stopped_ = true; }

  /// The recorded (virtual time, value) series of one sensor.
  const util::Trace& trace(const std::string& sensor) const;
  std::vector<std::string> sensors() const;
  void clearTraces() { traces_.clear(); }

 private:
  SensorRegistry& registry_;
  bool stopped_ = false;
  std::map<std::string, util::Trace> traces_;
};

}  // namespace mg::autopilot
