#include "autopilot/autopilot.h"

#include "util/error.h"

namespace mg::autopilot {

void SensorRegistry::set(const std::string& name, double value) { values_[name] = value; }

void SensorRegistry::increment(const std::string& name, double delta) { values_[name] += delta; }

bool SensorRegistry::has(const std::string& name) const { return values_.count(name) > 0; }

double SensorRegistry::get(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) throw mg::UsageError("no such sensor: " + name);
  return it->second;
}

std::vector<std::string> SensorRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

void Sampler::run(vos::HostContext& ctx, double interval_virtual_seconds) {
  if (interval_virtual_seconds <= 0) throw mg::UsageError("sampling interval must be positive");
  while (!stopped_) {
    ctx.sleep(interval_virtual_seconds);
    const double t = ctx.wallTime();
    for (const auto& name : registry_.names()) {
      traces_[name].emplace_back(t, registry_.get(name));
    }
  }
}

const util::Trace& Sampler::trace(const std::string& sensor) const {
  auto it = traces_.find(sensor);
  if (it == traces_.end()) throw mg::UsageError("no trace for sensor: " + sensor);
  return it->second;
}

std::vector<std::string> Sampler::sensors() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : traces_) out.push_back(k);
  return out;
}

}  // namespace mg::autopilot
