#include "vmpi/comm.h"

#include <algorithm>
#include <cstring>

#include "grid/coallocator.h"
#include "net/tcp.h"
#include "obs/span.h"
#include "util/log.h"

namespace mg::vmpi {

namespace {

// Internal collective tags live below user tag space.
constexpr int kTagBarrier = -2;
constexpr int kTagBcast = -3;
constexpr int kTagReduce = -4;
constexpr int kTagGather = -5;
constexpr int kTagScatter = -6;
constexpr int kTagAlltoall = -7;
constexpr int kTagRingRs = -8;
constexpr int kTagRingAg = -9;

constexpr std::size_t kHeaderBytes = 24;

// Virtual seconds allowed for the whole mesh bootstrap. A healthy mesh
// completes in milliseconds; a dead peer burns its SYN retries (~31 s) once
// and then the job fails fast instead of retrying for ~1000 s.
constexpr double kMeshDeadlineSeconds = 60.0;

void packHeader(std::uint8_t* hdr, int source, int tag, std::uint64_t payload, std::uint64_t pad) {
  auto put32 = [&](std::size_t off, std::uint32_t v) {
    hdr[off] = static_cast<std::uint8_t>(v >> 24);
    hdr[off + 1] = static_cast<std::uint8_t>(v >> 16);
    hdr[off + 2] = static_cast<std::uint8_t>(v >> 8);
    hdr[off + 3] = static_cast<std::uint8_t>(v);
  };
  auto put64 = [&](std::size_t off, std::uint64_t v) {
    put32(off, static_cast<std::uint32_t>(v >> 32));
    put32(off + 4, static_cast<std::uint32_t>(v));
  };
  put32(0, static_cast<std::uint32_t>(source));
  put32(4, static_cast<std::uint32_t>(tag));
  put64(8, payload);
  put64(16, pad);
}

void unpackHeader(const std::uint8_t* hdr, int& source, int& tag, std::uint64_t& payload,
                  std::uint64_t& pad) {
  auto get32 = [&](std::size_t off) {
    return (static_cast<std::uint32_t>(hdr[off]) << 24) |
           (static_cast<std::uint32_t>(hdr[off + 1]) << 16) |
           (static_cast<std::uint32_t>(hdr[off + 2]) << 8) | static_cast<std::uint32_t>(hdr[off + 3]);
  };
  auto get64 = [&](std::size_t off) {
    return (static_cast<std::uint64_t>(get32(off)) << 32) | get32(off + 4);
  };
  source = static_cast<std::int32_t>(get32(0));
  tag = static_cast<std::int32_t>(get32(4));
  payload = get64(8);
  pad = get64(16);
}

}  // namespace

struct Request::Impl {
  explicit Impl(sim::Simulator& sim) : cond(sim) {}
  bool done = false;
  Status status;
  std::string error;
  sim::Condition cond;
  std::vector<std::uint8_t> send_copy;  // keeps isend data alive
};

// ----------------------------------------------------------------- setup --

std::unique_ptr<Comm> Comm::init(grid::JobContext& jc) {
  const int size = jc.envInt("MG_JOB_SIZE");
  const auto hosts_env = jc.envOr("MG_JOB_HOSTS", "");
  if (hosts_env.empty()) throw mg::Error("vmpi: missing MG_JOB_HOSTS");
  const int rank = jc.envInt("MG_RANK_BASE") + jc.envInt("MG_LOCAL_INDEX");
  std::vector<std::string> rank_hosts;
  for (const auto& part : grid::parseJobHosts(hosts_env)) {
    for (int i = 0; i < part.count; ++i) rank_hosts.push_back(part.host);
  }
  if (static_cast<int>(rank_hosts.size()) != size) {
    throw mg::Error("vmpi: MG_JOB_HOSTS inconsistent with MG_JOB_SIZE");
  }
  const auto port_base = static_cast<std::uint16_t>(
      std::stoi(jc.envOr("MG_PORT_BASE", std::to_string(grid::kVmpiPortBase))));
  return init(jc.os, rank, std::move(rank_hosts), port_base);
}

std::unique_ptr<Comm> Comm::init(vos::HostContext& ctx, int rank,
                                 std::vector<std::string> rank_hosts, std::uint16_t port_base) {
  if (rank < 0 || rank >= static_cast<int>(rank_hosts.size())) {
    throw mg::UsageError("vmpi: rank out of range");
  }
  std::unique_ptr<Comm> comm(new Comm(ctx, rank, std::move(rank_hosts), port_base));
  comm->connectMesh();
  return comm;
}

Comm::Comm(vos::HostContext& ctx, int rank, std::vector<std::string> rank_hosts,
           std::uint16_t port_base)
    : ctx_(ctx),
      rank_(rank),
      rank_hosts_(std::move(rank_hosts)),
      port_base_(port_base),
      inbox_cond_(ctx.simulator()),
      c_messages_(ctx.simulator().metrics().counter("vmpi.comm.messages_sent")),
      c_bytes_(ctx.simulator().metrics().counter("vmpi.comm.bytes_sent")),
      c_collectives_(ctx.simulator().metrics().counter("vmpi.comm.collectives")) {}

Comm::~Comm() {
  // Receiver daemons and isend/irecv helpers capture `this`: any still alive
  // would touch freed memory when they next run, so they die with the Comm.
  killDaemons();
  if (finalized_) return;
  // Abnormal teardown: an exception is unwinding this rank. Release the
  // sockets and listener port best-effort so a resubmitted job can rebind;
  // close() is non-blocking and a no-op on already-errored connections.
  for (auto& sock : sockets_) {
    if (!sock) continue;
    try {
      sock->close();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
  if (listener_) {
    try {
      listener_->close();
    } catch (...) {  // NOLINT(bugprone-empty-catch)
    }
  }
}

void Comm::trackDaemon(sim::Process& p) {
  // Keep the list from growing one entry per isend over a long job.
  if (daemons_.size() > 64) {
    sim::Simulator& sim = ctx_.simulator();
    daemons_.erase(std::remove_if(daemons_.begin(), daemons_.end(),
                                  [&sim](std::uint64_t d) { return sim.processFinished(d); }),
                   daemons_.end());
  }
  daemons_.push_back(p.id());
}

void Comm::killDaemons() {
  // Partition safety: daemon teardown mutates the process table, which is
  // lane-0 state (killProcessById re-checks, but failing here names the
  // vmpi entry point instead of the kernel internals).
  ctx_.simulator().requireProcessLane("vmpi Comm::killDaemons");
  // Swap first: a killed daemon's unwind must not see a half-iterated list.
  std::vector<std::uint64_t> daemons;
  daemons.swap(daemons_);
  for (std::uint64_t id : daemons) ctx_.simulator().killProcessById(id);
}

void Comm::connectMesh() {
  const int n = size();
  sockets_.assign(static_cast<std::size_t>(n), nullptr);
  listener_ = ctx_.listen(static_cast<std::uint16_t>(port_base_ + rank_));

  // Deterministic mesh build: connect to lower ranks (they listen first in
  // rank order thanks to retries), accept from higher ranks. The shared
  // virtual-time deadline turns a crashed peer into a prompt error.
  const double deadline = ctx_.wallTime() + kMeshDeadlineSeconds;
  for (int peer = 0; peer < rank_; ++peer) {
    std::shared_ptr<vos::StreamSocket> sock;
    for (;;) {
      try {
        sock = ctx_.connect(rank_hosts_[static_cast<std::size_t>(peer)],
                            static_cast<std::uint16_t>(port_base_ + peer));
        break;
      } catch (const mg::Error&) {
        if (ctx_.wallTime() >= deadline) {
          throw mg::Error("vmpi: peer rank " + std::to_string(peer) + " on " +
                          rank_hosts_[static_cast<std::size_t>(peer)] +
                          " unreachable during startup");
        }
        ctx_.sleep(0.002);  // the peer's listener is not up yet
      }
    }
    const std::uint8_t hello[4] = {
        static_cast<std::uint8_t>(rank_ >> 24),
        static_cast<std::uint8_t>(rank_ >> 16),
        static_cast<std::uint8_t>(rank_ >> 8),
        static_cast<std::uint8_t>(rank_),
    };
    sock->send(hello, 4);
    sockets_[static_cast<std::size_t>(peer)] = sock;
    startReceiver(peer, sock);
  }
  for (int expected = rank_ + 1; expected < n; ++expected) {
    const double remaining = deadline - ctx_.wallTime();
    auto sock = remaining > 0 ? listener_->acceptFor(remaining) : nullptr;
    if (!sock) {
      throw mg::Error("vmpi: timed out waiting for " + std::to_string(n - expected) +
                      " higher rank(s) during startup");
    }
    std::uint8_t hello[4];
    sock->recvExact(hello, 4);
    const int peer = (hello[0] << 24) | (hello[1] << 16) | (hello[2] << 8) | hello[3];
    if (peer <= rank_ || peer >= n || sockets_[static_cast<std::size_t>(peer)]) {
      throw mg::Error("vmpi: bad mesh handshake from rank " + std::to_string(peer));
    }
    sockets_[static_cast<std::size_t>(peer)] = sock;
    startReceiver(peer, sock);
  }
}

vos::StreamSocket& Comm::socketTo(int peer) {
  if (peer < 0 || peer >= size() || peer == rank_) throw mg::UsageError("vmpi: bad peer rank");
  auto& sock = sockets_[static_cast<std::size_t>(peer)];
  if (!sock) throw mg::Error("vmpi: no connection to rank " + std::to_string(peer));
  return *sock;
}

void Comm::startReceiver(int peer, std::shared_ptr<vos::StreamSocket> sock) {
  trackDaemon(ctx_.spawnProcess(
      "vmpi-rx." + std::to_string(rank_) + "." + std::to_string(peer),
      [this, peer, sock](vos::HostContext&) {
        try {
          std::vector<std::uint8_t> discard(64 * 1024);
          for (;;) {
            std::uint8_t hdr[kHeaderBytes];
            sock->recvExact(hdr, kHeaderBytes);
            Message msg;
            std::uint64_t payload = 0, pad = 0;
            unpackHeader(hdr, msg.source, msg.tag, payload, pad);
            msg.payload.resize(payload);
            if (payload > 0) sock->recvExact(msg.payload.data(), payload);
            while (pad > 0) {
              const std::size_t chunk = std::min<std::uint64_t>(pad, discard.size());
              sock->recvExact(discard.data(), chunk);
              pad -= chunk;
            }
            inbox_.push_back(std::move(msg));
            inbox_cond_.notifyAll();
          }
        } catch (const net::ConnectionReset&) {
          // Abnormal teardown: RST or mid-stream failure, i.e. the peer host
          // crashed. Wake blocked receivers so they fail instead of waiting
          // forever.
          if (!finalized_ && peer_error_.empty()) {
            peer_error_ = "vmpi: peer rank " + std::to_string(peer) + " unreachable";
            inbox_cond_.notifyAll();
          }
        } catch (const mg::Error&) {
          // Peer closed the connection (finalize or teardown).
        }
      }));
}

// ---------------------------------------------------------- point to point --

double Comm::wtime() const { return ctx_.wallTime(); }

void Comm::send(int dest, int tag, const void* data, std::size_t bytes, std::size_t wire_bytes) {
  if (finalized_) throw mg::UsageError("vmpi: send after finalize");
  // Spans the whole buffered send, including any block on TCP window space,
  // so send-side backpressure shows up in the profiler per host.
  obs::ScopedSpan span(ctx_.simulator().spans(), "vmpi.comm", "send", ctx_.hostname());
  if (span.active()) {
    span.annotate("dest", std::to_string(dest));
    span.annotate("tag", std::to_string(tag));
    span.annotate("bytes", std::to_string(std::max(bytes, wire_bytes)));
  }
  ++messages_sent_;
  bytes_sent_ += static_cast<std::int64_t>(std::max(bytes, wire_bytes));
  c_messages_.inc();
  c_bytes_.inc(static_cast<std::int64_t>(std::max(bytes, wire_bytes)));
  if (dest == rank_) {
    Message msg;
    msg.source = rank_;
    msg.tag = tag;
    msg.payload.assign(static_cast<const std::uint8_t*>(data),
                       static_cast<const std::uint8_t*>(data) + bytes);
    inbox_.push_back(std::move(msg));
    inbox_cond_.notifyAll();
    return;
  }
  const std::uint64_t pad =
      (wire_bytes > bytes) ? static_cast<std::uint64_t>(wire_bytes - bytes) : 0;
  std::uint8_t hdr[kHeaderBytes];
  packHeader(hdr, rank_, tag, bytes, pad);
  vos::StreamSocket& sock = socketTo(dest);
  try {
    sock.send(hdr, kHeaderBytes);
    if (bytes > 0) sock.send(data, bytes);
    if (pad > 0) {
      static const std::vector<std::uint8_t> zeros(64 * 1024, 0);
      std::uint64_t left = pad;
      while (left > 0) {
        const std::size_t chunk = std::min<std::uint64_t>(left, zeros.size());
        sock.send(zeros.data(), chunk);
        left -= chunk;
      }
    }
  } catch (const net::ConnectionReset&) {
    throw mg::Error("vmpi: peer rank " + std::to_string(dest) + " unreachable");
  }
}

bool Comm::matchFromInbox(int source, int tag, void* buf, std::size_t max_bytes, Status& status) {
  for (auto it = inbox_.begin(); it != inbox_.end(); ++it) {
    // kAnyTag only matches user messages (tag >= 0); internal collective
    // traffic uses negative tags and is its own logical communicator.
    const bool tag_ok = (tag == kAnyTag) ? (it->tag >= 0) : (it->tag == tag);
    if ((source == kAnySource || it->source == source) && tag_ok) {
      if (it->payload.size() > max_bytes) {
        throw mg::Error("vmpi: message of " + std::to_string(it->payload.size()) +
                        " bytes exceeds receive buffer of " + std::to_string(max_bytes));
      }
      if (!it->payload.empty()) std::memcpy(buf, it->payload.data(), it->payload.size());
      status.source = it->source;
      status.tag = it->tag;
      status.bytes = it->payload.size();
      inbox_.erase(it);
      return true;
    }
  }
  return false;
}

Status Comm::recv(int source, int tag, void* buf, std::size_t max_bytes) {
  if (finalized_) throw mg::UsageError("vmpi: recv after finalize");
  // Spans the blocking match wait — the MPI wait time the paper's NPB gaps
  // are explained by.
  obs::ScopedSpan span(ctx_.simulator().spans(), "vmpi.comm", "recv", ctx_.hostname());
  if (span.active()) {
    span.annotate("source", std::to_string(source));
    span.annotate("tag", std::to_string(tag));
  }
  Status status;
  while (!matchFromInbox(source, tag, buf, max_bytes, status)) {
    // Any dead peer aborts the rank: the NPB-style programs here are
    // tightly coupled, so a missing peer means the job cannot finish.
    if (!peer_error_.empty()) throw mg::Error(peer_error_);
    inbox_cond_.wait();
  }
  return status;
}

Request Comm::isend(int dest, int tag, const void* data, std::size_t bytes,
                    std::size_t wire_bytes) {
  Request req;
  req.impl_ = std::make_shared<Request::Impl>(ctx_.simulator());
  req.impl_->send_copy.assign(static_cast<const std::uint8_t*>(data),
                              static_cast<const std::uint8_t*>(data) + bytes);
  auto impl = req.impl_;
  trackDaemon(ctx_.spawnProcess(
      "vmpi-isend", [this, impl, dest, tag, bytes, wire_bytes](vos::HostContext&) {
        try {
          send(dest, tag, impl->send_copy.data(), bytes, wire_bytes);
        } catch (const mg::Error& e) {
          impl->error = e.what();
        }
        impl->done = true;
        impl->cond.notifyAll();
      }));
  return req;
}

Request Comm::irecv(int source, int tag, void* buf, std::size_t max_bytes) {
  Request req;
  req.impl_ = std::make_shared<Request::Impl>(ctx_.simulator());
  auto impl = req.impl_;
  trackDaemon(ctx_.spawnProcess(
      "vmpi-irecv", [this, impl, source, tag, buf, max_bytes](vos::HostContext&) {
        try {
          impl->status = recv(source, tag, buf, max_bytes);
        } catch (const mg::Error& e) {
          impl->error = e.what();
        }
        impl->done = true;
        impl->cond.notifyAll();
      }));
  return req;
}

Status Comm::wait(Request& req) {
  if (!req.valid()) throw mg::UsageError("vmpi: wait on invalid request");
  auto impl = req.impl_;
  while (!impl->done) impl->cond.wait();
  req.impl_.reset();
  if (!impl->error.empty()) throw mg::Error(impl->error);
  return impl->status;
}

void Comm::waitAll(std::vector<Request>& reqs) {
  for (auto& r : reqs) wait(r);
  reqs.clear();
}

Status Comm::sendRecv(int dest, int send_tag, const void* send_data, std::size_t send_bytes,
                      int source, int recv_tag, void* recv_buf, std::size_t recv_max,
                      std::size_t send_wire_bytes) {
  Request sreq = isend(dest, send_tag, send_data, send_bytes, send_wire_bytes);
  Status st = recv(source, recv_tag, recv_buf, recv_max);
  wait(sreq);
  return st;
}

// ------------------------------------------------------------- collectives --

void Comm::barrier() {
  obs::ScopedSpan span(ctx_.simulator().spans(), "vmpi.coll", "barrier", ctx_.hostname());
  c_collectives_.inc();
  const int n = size();
  std::uint8_t token = 1, got = 0;
  for (int k = 1; k < n; k <<= 1) {
    const int to = (rank_ + k) % n;
    const int from = (rank_ - k % n + n) % n;
    sendRecv(to, kTagBarrier, &token, 1, from, kTagBarrier, &got, 1);
  }
}

void Comm::bcast(void* data, std::size_t bytes, int root) {
  obs::ScopedSpan span(ctx_.simulator().spans(), "vmpi.coll", "bcast", ctx_.hostname());
  c_collectives_.inc();
  const int n = size();
  if (n == 1) return;
  const int vr = (rank_ - root + n) % n;
  int mask = 1;
  while (mask < n) {
    if (vr & mask) {
      const int src = (vr - mask + root) % n;
      recv(src, kTagBcast, data, bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < n) {
      const int dst = (vr + mask + root) % n;
      send(dst, kTagBcast, data, bytes);
    }
    mask >>= 1;
  }
}

void Comm::applyOp(double* acc, const double* in, std::size_t n, Op op) {
  switch (op) {
    case Op::Sum:
      for (std::size_t i = 0; i < n; ++i) acc[i] += in[i];
      break;
    case Op::Max:
      for (std::size_t i = 0; i < n; ++i) acc[i] = std::max(acc[i], in[i]);
      break;
    case Op::Min:
      for (std::size_t i = 0; i < n; ++i) acc[i] = std::min(acc[i], in[i]);
      break;
  }
}

void Comm::applyOp(std::int64_t* acc, const std::int64_t* in, std::size_t n, Op op) {
  switch (op) {
    case Op::Sum:
      for (std::size_t i = 0; i < n; ++i) acc[i] += in[i];
      break;
    case Op::Max:
      for (std::size_t i = 0; i < n; ++i) acc[i] = std::max(acc[i], in[i]);
      break;
    case Op::Min:
      for (std::size_t i = 0; i < n; ++i) acc[i] = std::min(acc[i], in[i]);
      break;
  }
}

namespace {
// Binomial-tree reduction shared by the typed overloads.
template <typename T, typename Fn>
void binomialReduce(Comm& comm, int rank, int n, T* data, std::size_t count, int root, Fn combine,
                    int tag, Comm* self) {
  (void)self;
  const int vr = (rank - root + n) % n;
  std::vector<T> tmp(count);
  int mask = 1;
  while (mask < n) {
    if ((vr & mask) == 0) {
      const int vsrc = vr | mask;
      if (vsrc < n) {
        const int src = (vsrc + root) % n;
        comm.recv(src, tag, tmp.data(), count * sizeof(T));
        combine(data, tmp.data(), count);
      }
    } else {
      const int dst = ((vr & ~mask) + root) % n;
      comm.send(dst, tag, data, count * sizeof(T));
      break;
    }
    mask <<= 1;
  }
}
}  // namespace

void Comm::reduce(double* data, std::size_t n, Op op, int root) {
  obs::ScopedSpan span(ctx_.simulator().spans(), "vmpi.coll", "reduce", ctx_.hostname());
  c_collectives_.inc();
  binomialReduce(
      *this, rank_, size(), data, n, root,
      [op](double* acc, const double* in, std::size_t c) { applyOp(acc, in, c, op); }, kTagReduce,
      this);
}

void Comm::allreduce(double* data, std::size_t n, Op op) {
  reduce(data, n, op, 0);
  bcast(data, n * sizeof(double), 0);
}

void Comm::allreduce(std::int64_t* data, std::size_t n, Op op) {
  obs::ScopedSpan span(ctx_.simulator().spans(), "vmpi.coll", "allreduce", ctx_.hostname());
  c_collectives_.inc();
  binomialReduce(
      *this, rank_, size(), data, n, 0,
      [op](std::int64_t* acc, const std::int64_t* in, std::size_t c) { applyOp(acc, in, c, op); },
      kTagReduce, this);
  bcast(data, n * sizeof(std::int64_t), 0);
}

void Comm::allreduceRing(double* data, std::size_t n, Op op) {
  obs::ScopedSpan span(ctx_.simulator().spans(), "vmpi.coll", "allreduce_ring", ctx_.hostname());
  c_collectives_.inc();
  const int p = size();
  if (p == 1) return;
  // Chunk boundaries: chunk c covers [bounds[c], bounds[c+1]).
  std::vector<std::size_t> bounds(static_cast<std::size_t>(p) + 1);
  for (int c = 0; c <= p; ++c) {
    bounds[static_cast<std::size_t>(c)] = n * static_cast<std::size_t>(c) / static_cast<std::size_t>(p);
  }
  auto chunkPtr = [&](int c) { return data + bounds[static_cast<std::size_t>(c)]; };
  auto chunkLen = [&](int c) {
    return bounds[static_cast<std::size_t>(c) + 1] - bounds[static_cast<std::size_t>(c)];
  };
  const int next = (rank_ + 1) % p;
  const int prev = (rank_ - 1 + p) % p;
  std::vector<double> tmp(n ? (n / static_cast<std::size_t>(p) + 1) : 1);

  // Reduce-scatter phase.
  for (int step = 0; step < p - 1; ++step) {
    const int send_chunk = (rank_ - step + p) % p;
    const int recv_chunk = (rank_ - step - 1 + p) % p;
    sendRecv(next, kTagRingRs, chunkPtr(send_chunk), chunkLen(send_chunk) * sizeof(double), prev,
             kTagRingRs, tmp.data(), tmp.size() * sizeof(double));
    applyOp(chunkPtr(recv_chunk), tmp.data(), chunkLen(recv_chunk), op);
  }
  // Allgather phase.
  for (int step = 0; step < p - 1; ++step) {
    const int send_chunk = (rank_ + 1 - step + p) % p;
    const int recv_chunk = (rank_ - step + p) % p;
    sendRecv(next, kTagRingAg, chunkPtr(send_chunk), chunkLen(send_chunk) * sizeof(double), prev,
             kTagRingAg, tmp.data(), tmp.size() * sizeof(double));
    std::memcpy(chunkPtr(recv_chunk), tmp.data(), chunkLen(recv_chunk) * sizeof(double));
  }
}

void Comm::gather(const void* send, std::size_t bytes, void* recv_buf, int root) {
  obs::ScopedSpan span(ctx_.simulator().spans(), "vmpi.coll", "gather", ctx_.hostname());
  c_collectives_.inc();
  if (rank_ == root) {
    auto* out = static_cast<std::uint8_t*>(recv_buf);
    std::memcpy(out + static_cast<std::size_t>(rank_) * bytes, send, bytes);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      recv(r, kTagGather, out + static_cast<std::size_t>(r) * bytes, bytes);
    }
  } else {
    this->send(root, kTagGather, send, bytes);
  }
}

void Comm::scatter(const void* send, std::size_t bytes, void* recv_buf, int root) {
  obs::ScopedSpan span(ctx_.simulator().spans(), "vmpi.coll", "scatter", ctx_.hostname());
  c_collectives_.inc();
  if (rank_ == root) {
    const auto* in = static_cast<const std::uint8_t*>(send);
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      this->send(r, kTagScatter, in + static_cast<std::size_t>(r) * bytes, bytes);
    }
    std::memcpy(recv_buf, in + static_cast<std::size_t>(root) * bytes, bytes);
  } else {
    recv(root, kTagScatter, recv_buf, bytes);
  }
}

std::vector<std::vector<std::uint8_t>> Comm::alltoallv(
    const std::vector<std::vector<std::uint8_t>>& send_blocks) {
  obs::ScopedSpan span(ctx_.simulator().spans(), "vmpi.coll", "alltoallv", ctx_.hostname());
  c_collectives_.inc();
  const int p = size();
  if (static_cast<int>(send_blocks.size()) != p) {
    throw mg::UsageError("vmpi: alltoallv needs one block per rank");
  }
  std::vector<std::vector<std::uint8_t>> recv_blocks(static_cast<std::size_t>(p));
  recv_blocks[static_cast<std::size_t>(rank_)] = send_blocks[static_cast<std::size_t>(rank_)];
  for (int shift = 1; shift < p; ++shift) {
    const int to = (rank_ + shift) % p;
    const int from = (rank_ - shift + p) % p;
    // Exchange sizes first, then payloads.
    std::uint64_t send_size = send_blocks[static_cast<std::size_t>(to)].size();
    std::uint64_t recv_size = 0;
    sendRecv(to, kTagAlltoall, &send_size, sizeof send_size, from, kTagAlltoall, &recv_size,
             sizeof recv_size);
    recv_blocks[static_cast<std::size_t>(from)].resize(recv_size);
    sendRecv(to, kTagAlltoall, send_blocks[static_cast<std::size_t>(to)].data(), send_size, from,
             kTagAlltoall, recv_blocks[static_cast<std::size_t>(from)].data(), recv_size);
  }
  return recv_blocks;
}

void Comm::finalize() {
  if (finalized_) return;
  barrier();
  finalized_ = true;
  for (auto& sock : sockets_) {
    if (sock) sock->close();
  }
  if (listener_) listener_->close();
}

}  // namespace mg::vmpi
