// vmpi: an MPI-like message-passing library over the virtual socket layer.
//
// The NAS Parallel Benchmarks and CACTUS are MPI programs; vmpi provides the
// subset they need — blocking and nonblocking point-to-point with
// (source, tag) matching, and tree/ring collectives — implemented entirely
// on vos::StreamSocket, so the same benchmark binary runs on the reference
// platform and inside the MicroGrid emulation.
//
// Rank bootstrap follows the Globus model: the co-allocator (grid/
// coallocator.h) plants MG_JOB_* environment variables, and Comm::init
// derives rank, size, and peer addresses from them.
//
// Messages carry an optional `wire_bytes` override: the payload is padded on
// the wire to that size. The NPB mini-kernels use it to transmit full
// class-sized messages while computing on reduced arrays (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "grid/registry.h"
#include "obs/metrics.h"
#include "sim/condition.h"
#include "vos/context.h"

namespace mg::vmpi {

constexpr int kAnySource = -1;
constexpr int kAnyTag = -1;

struct Status {
  int source = -1;
  int tag = -1;
  std::size_t bytes = 0;  // payload bytes received (before truncation check)
};

enum class Op { Sum, Max, Min };

class Comm;

/// Handle for a nonblocking operation; wait() through the owning Comm.
class Request {
 public:
  Request() = default;
  bool valid() const { return impl_ != nullptr; }

 private:
  friend class Comm;
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

class Comm {
 public:
  /// Bootstrap from a GRAM job environment (MG_JOB_SIZE, MG_JOB_HOSTS,
  /// MG_RANK_BASE, MG_LOCAL_INDEX, MG_PORT_BASE).
  static std::unique_ptr<Comm> init(grid::JobContext& jc);

  /// Direct construction (tests, examples): rank_hosts[r] is the virtual
  /// hostname running rank r. Every rank must call this, once.
  static std::unique_ptr<Comm> init(vos::HostContext& ctx, int rank,
                                    std::vector<std::string> rank_hosts,
                                    std::uint16_t port_base = 5000);

  /// Without finalize() (an error is unwinding the rank), the destructor
  /// closes sockets and the listener best-effort so a resubmitted job can
  /// rebind the ports.
  ~Comm();
  Comm(const Comm&) = delete;
  Comm& operator=(const Comm&) = delete;

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(rank_hosts_.size()); }
  vos::HostContext& context() { return ctx_; }

  /// MPI_Wtime: virtual seconds.
  double wtime() const;

  // --- point to point ---

  /// Blocking send. `wire_bytes`, when larger than `bytes`, pads the
  /// transmission to model a bigger message.
  void send(int dest, int tag, const void* data, std::size_t bytes, std::size_t wire_bytes = 0);

  /// Blocking receive with matching; kAnySource / kAnyTag wildcards.
  /// Throws if the matched message exceeds `max_bytes`.
  Status recv(int source, int tag, void* buf, std::size_t max_bytes);

  /// Nonblocking variants.
  Request isend(int dest, int tag, const void* data, std::size_t bytes,
                std::size_t wire_bytes = 0);
  Request irecv(int source, int tag, void* buf, std::size_t max_bytes);
  Status wait(Request& req);
  void waitAll(std::vector<Request>& reqs);

  /// Exchange with one partner without deadlock.
  Status sendRecv(int dest, int send_tag, const void* send_data, std::size_t send_bytes,
                  int source, int recv_tag, void* recv_buf, std::size_t recv_max,
                  std::size_t send_wire_bytes = 0);

  // --- collectives (all ranks must participate, in matching order) ---

  void barrier();
  void bcast(void* data, std::size_t bytes, int root);
  void reduce(double* data, std::size_t n, Op op, int root);
  void allreduce(double* data, std::size_t n, Op op);
  void allreduce(std::int64_t* data, std::size_t n, Op op);
  /// Ring algorithm (the A3 collectives ablation compares it with the
  /// default reduce+bcast).
  void allreduceRing(double* data, std::size_t n, Op op);
  /// Gather equal-size blocks to root (root's result holds size()*bytes).
  void gather(const void* send, std::size_t bytes, void* recv, int root);
  void scatter(const void* send, std::size_t bytes, void* recv, int root);
  /// Personalized all-to-all with per-destination sizes. send_blocks[d] goes
  /// to rank d; returns the block received from each rank.
  std::vector<std::vector<std::uint8_t>> alltoallv(
      const std::vector<std::vector<std::uint8_t>>& send_blocks);

  /// Close all connections; receiver daemons drain and exit.
  void finalize();

  /// Per-communicator (per-rank) totals. The simulator-wide aggregates over
  /// all ranks live in the `vmpi.comm.*` registry counters.
  std::int64_t bytesSent() const { return bytes_sent_; }
  std::int64_t messagesSent() const { return messages_sent_; }

 private:
  struct Message {
    int source;
    int tag;
    std::vector<std::uint8_t> payload;
  };

  Comm(vos::HostContext& ctx, int rank, std::vector<std::string> rank_hosts,
       std::uint16_t port_base);
  void connectMesh();
  vos::StreamSocket& socketTo(int peer);
  void startReceiver(int peer, std::shared_ptr<vos::StreamSocket> sock);
  void trackDaemon(sim::Process& p);
  void killDaemons();
  bool matchFromInbox(int source, int tag, void* buf, std::size_t max_bytes, Status& status);
  static void applyOp(double* acc, const double* in, std::size_t n, Op op);
  static void applyOp(std::int64_t* acc, const std::int64_t* in, std::size_t n, Op op);

  vos::HostContext& ctx_;
  int rank_;
  std::vector<std::string> rank_hosts_;
  std::uint16_t port_base_;
  std::shared_ptr<vos::Listener> listener_;
  std::vector<std::shared_ptr<vos::StreamSocket>> sockets_;  // by peer rank
  std::deque<Message> inbox_;
  sim::Condition inbox_cond_;
  // Set by a receiver daemon when a peer's stream dies abnormally (host
  // crash / RST). Blocking recv() surfaces it instead of waiting forever.
  std::string peer_error_;
  // Every daemon process this Comm spawned (receivers, isend/irecv helpers).
  // They capture `this`, so any still alive must be killed before the Comm
  // dies. Stored by id, not Process*: the kernel reaps finished Process
  // objects, and killProcessById is a safe no-op for reaped ids.
  std::vector<std::uint64_t> daemons_;
  bool finalized_ = false;
  std::int64_t bytes_sent_ = 0;
  std::int64_t messages_sent_ = 0;
  // Simulator-wide vmpi.comm.* aggregates (every rank resolves the same
  // registry entries).
  obs::Counter& c_messages_;
  obs::Counter& c_bytes_;
  obs::Counter& c_collectives_;
};

}  // namespace mg::vmpi
