#include "gis/directory.h"

#include <limits>

#include "util/strings.h"

namespace mg::gis {

Scope scopeFromString(const std::string& s) {
  const std::string t = util::toLower(s);
  if (t == "base") return Scope::Base;
  if (t == "one" || t == "onelevel") return Scope::OneLevel;
  if (t == "sub" || t == "subtree") return Scope::Subtree;
  throw ParseError("unknown search scope '" + s + "'");
}

std::string scopeToString(Scope s) {
  switch (s) {
    case Scope::Base: return "base";
    case Scope::OneLevel: return "one";
    case Scope::Subtree: return "sub";
  }
  return "sub";
}

void Directory::add(Record record) {
  if (find(record.dn()) != nullptr) {
    throw ConfigError("GIS entry already exists: " + record.dn().str());
  }
  records_.push_back(std::move(record));
}

void Directory::upsert(Record record) {
  for (auto& r : records_) {
    if (r.dn() == record.dn()) {
      r = std::move(record);
      return;
    }
  }
  records_.push_back(std::move(record));
}

bool Directory::remove(const Dn& dn) {
  for (auto it = records_.begin(); it != records_.end(); ++it) {
    if (it->dn() == dn) {
      records_.erase(it);
      return true;
    }
  }
  return false;
}

const Record* Directory::find(const Dn& dn) const {
  for (const auto& r : records_) {
    if (r.dn() == dn) return &r;
  }
  return nullptr;
}

bool Directory::expired(const Record& r, double now) {
  if (!r.has(kAttrExpires)) return false;
  try {
    return std::stod(r.get(kAttrExpires)) <= now;
  } catch (const std::exception&) {
    return false;  // an unparseable expiry never expires
  }
}

std::vector<Record> Directory::search(const Dn& base, Scope scope, const Filter& filter) const {
  // No timestamp: nothing is ever considered expired.
  return search(base, scope, filter, -std::numeric_limits<double>::infinity());
}

std::vector<Record> Directory::search(const Dn& base, Scope scope, const Filter& filter,
                                      double now) const {
  std::vector<Record> out;
  for (const auto& r : records_) {
    if (expired(r, now)) continue;
    bool in_scope = false;
    switch (scope) {
      case Scope::Base:
        in_scope = (r.dn() == base);
        break;
      case Scope::OneLevel:
        in_scope = (r.dn().depth() == base.depth() + 1) && r.dn().isWithin(base);
        break;
      case Scope::Subtree:
        in_scope = r.dn().isWithin(base);
        break;
    }
    if (in_scope && filter.matches(r)) out.push_back(r);
  }
  return out;
}

std::string Directory::toLdif() const {
  std::string out;
  for (const auto& r : records_) {
    out += r.toLdif();
    out += "\n";
  }
  return out;
}

Directory Directory::fromLdif(const std::string& text) {
  Directory dir;
  std::string block;
  auto flush = [&] {
    if (!util::trim(block).empty()) dir.upsert(Record::fromLdif(block));
    block.clear();
  };
  for (const auto& line : util::split(text, '\n')) {
    if (util::trim(line).empty()) {
      flush();
    } else {
      block += line;
      block += '\n';
    }
  }
  flush();
  return dir;
}

}  // namespace mg::gis
