// LDAP-style search filters:
//
//   (attr=value)      equality (value may contain '*' wildcards)
//   (attr=*)          presence
//   (&(f1)(f2)...)    conjunction
//   (|(f1)(f2)...)    disjunction
//   (!(f))            negation
//
// Attribute names are case-insensitive; '*' matching is the util::globMatch
// semantics. Matching a multi-valued attribute succeeds if any value matches.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gis/record.h"

namespace mg::gis {

class Filter {
 public:
  /// Parse a filter expression; throws ParseError.
  static Filter parse(const std::string& text);

  /// A filter matching every record.
  static Filter matchAll();

  bool matches(const Record& record) const;

  std::string str() const;

 private:
  enum class Kind { Equals, Presence, And, Or, Not, True };

  Kind kind_ = Kind::True;
  std::string attr_;
  std::string pattern_;
  std::vector<Filter> children_;

  static Filter parseNode(const std::string& text, std::size_t& pos);
};

}  // namespace mg::gis
