// GIS records: LDAP-style entries with distinguished names and
// case-insensitive attributes.
//
// Paper §2.2.2 virtualizes the Globus Grid Information Service by
// "extending the standard GIS LDAP records with fields containing
// virtualization-specific information" — extension by addition, so the
// virtual entries remain subtype-compatible with plain ones. Record models
// such an entry; the Fig 3 schema helpers live in gis/schema.h.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "util/error.h"

namespace mg::gis {

/// One relative distinguished name component, e.g. hn=vm.ucsd.edu.
struct Rdn {
  std::string attr;   // lower-cased
  std::string value;  // verbatim
  bool operator==(const Rdn&) const = default;
};

/// A distinguished name: ordered RDNs, most-specific first, e.g.
/// "hn=vm.ucsd.edu, ou=CSAG, o=Grid".
class Dn {
 public:
  Dn() = default;
  explicit Dn(std::vector<Rdn> rdns) : rdns_(std::move(rdns)) {}

  /// Parse "a=b, c=d"; throws ParseError on malformed input.
  static Dn parse(const std::string& text);

  const std::vector<Rdn>& rdns() const { return rdns_; }
  bool empty() const { return rdns_.empty(); }
  std::size_t depth() const { return rdns_.size(); }

  /// The parent DN (everything but the first RDN); empty DN at the root.
  Dn parent() const;

  /// True when `this` equals `ancestor` or lies beneath it.
  bool isWithin(const Dn& ancestor) const;

  /// Child DN: prepend one RDN to this DN.
  Dn child(const std::string& attr, const std::string& value) const;

  std::string str() const;

  bool operator==(const Dn&) const = default;

 private:
  std::vector<Rdn> rdns_;
};

/// An entry: DN plus a case-insensitive attribute multimap.
class Record {
 public:
  Record() = default;
  explicit Record(Dn dn) : dn_(std::move(dn)) {}

  const Dn& dn() const { return dn_; }
  void setDn(Dn dn) { dn_ = std::move(dn); }

  /// Append a value (attributes are multi-valued, LDAP-style).
  void add(const std::string& attr, const std::string& value);

  /// Replace all values of an attribute with one value.
  void set(const std::string& attr, const std::string& value);

  /// Remove every value of an attribute; no-op if absent.
  void unset(const std::string& attr);

  bool has(const std::string& attr) const;

  /// First value; throws mg::Error if absent.
  const std::string& get(const std::string& attr) const;

  /// First value or fallback.
  std::string get(const std::string& attr, const std::string& fallback) const;

  /// All values of an attribute, in insertion order.
  std::vector<std::string> getAll(const std::string& attr) const;

  /// All (attr, value) pairs in insertion order.
  const std::vector<std::pair<std::string, std::string>>& attributes() const { return attrs_; }

  /// LDIF-like rendering: "dn: ...\nattr: value\n...".
  std::string toLdif() const;

  /// Parse one LDIF-like block (inverse of toLdif).
  static Record fromLdif(const std::string& text);

 private:
  Dn dn_;
  std::vector<std::pair<std::string, std::string>> attrs_;  // attr lower-cased
};

}  // namespace mg::gis
