#include "gis/record.h"

#include <algorithm>
#include <sstream>

#include "util/strings.h"

namespace mg::gis {

Dn Dn::parse(const std::string& text) {
  std::vector<Rdn> rdns;
  if (util::trim(text).empty()) return Dn{};
  for (const auto& part : util::splitTrim(text, ',')) {
    const auto eq = part.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw ParseError("malformed RDN '" + part + "' in DN '" + text + "'");
    }
    Rdn rdn;
    rdn.attr = util::toLower(std::string(util::trim(part.substr(0, eq))));
    rdn.value = std::string(util::trim(part.substr(eq + 1)));
    if (rdn.value.empty()) throw ParseError("empty RDN value in DN '" + text + "'");
    rdns.push_back(std::move(rdn));
  }
  return Dn{std::move(rdns)};
}

Dn Dn::parent() const {
  if (rdns_.empty()) return Dn{};
  return Dn{std::vector<Rdn>(rdns_.begin() + 1, rdns_.end())};
}

bool Dn::isWithin(const Dn& ancestor) const {
  if (ancestor.rdns_.size() > rdns_.size()) return false;
  const std::size_t offset = rdns_.size() - ancestor.rdns_.size();
  for (std::size_t i = 0; i < ancestor.rdns_.size(); ++i) {
    if (!(rdns_[offset + i] == ancestor.rdns_[i])) return false;
  }
  return true;
}

Dn Dn::child(const std::string& attr, const std::string& value) const {
  std::vector<Rdn> rdns;
  rdns.reserve(rdns_.size() + 1);
  rdns.push_back(Rdn{util::toLower(attr), value});
  rdns.insert(rdns.end(), rdns_.begin(), rdns_.end());
  return Dn{std::move(rdns)};
}

std::string Dn::str() const {
  std::string out;
  for (std::size_t i = 0; i < rdns_.size(); ++i) {
    if (i) out += ", ";
    out += rdns_[i].attr + "=" + rdns_[i].value;
  }
  return out;
}

void Record::add(const std::string& attr, const std::string& value) {
  attrs_.emplace_back(util::toLower(attr), value);
}

void Record::set(const std::string& attr, const std::string& value) {
  const std::string key = util::toLower(attr);
  attrs_.erase(std::remove_if(attrs_.begin(), attrs_.end(),
                              [&](const auto& p) { return p.first == key; }),
               attrs_.end());
  attrs_.emplace_back(key, value);
}

void Record::unset(const std::string& attr) {
  const std::string key = util::toLower(attr);
  attrs_.erase(std::remove_if(attrs_.begin(), attrs_.end(),
                              [&](const auto& p) { return p.first == key; }),
               attrs_.end());
}

bool Record::has(const std::string& attr) const {
  const std::string key = util::toLower(attr);
  for (const auto& [a, v] : attrs_) {
    if (a == key) return true;
  }
  return false;
}

const std::string& Record::get(const std::string& attr) const {
  const std::string key = util::toLower(attr);
  for (const auto& [a, v] : attrs_) {
    if (a == key) return v;
  }
  throw mg::Error("record " + dn_.str() + " has no attribute '" + attr + "'");
}

std::string Record::get(const std::string& attr, const std::string& fallback) const {
  return has(attr) ? get(attr) : fallback;
}

std::vector<std::string> Record::getAll(const std::string& attr) const {
  const std::string key = util::toLower(attr);
  std::vector<std::string> out;
  for (const auto& [a, v] : attrs_) {
    if (a == key) out.push_back(v);
  }
  return out;
}

std::string Record::toLdif() const {
  std::string out = "dn: " + dn_.str() + "\n";
  for (const auto& [a, v] : attrs_) out += a + ": " + v + "\n";
  return out;
}

Record Record::fromLdif(const std::string& text) {
  Record rec;
  bool have_dn = false;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;
    const auto colon = trimmed.find(':');
    if (colon == std::string::npos) throw ParseError("malformed LDIF line '" + line + "'");
    const std::string attr(util::trim(trimmed.substr(0, colon)));
    const std::string value(util::trim(trimmed.substr(colon + 1)));
    if (util::iequals(attr, "dn")) {
      rec.setDn(Dn::parse(value));
      have_dn = true;
    } else {
      rec.add(attr, value);
    }
  }
  if (!have_dn) throw ParseError("LDIF block has no dn line");
  return rec;
}

}  // namespace mg::gis
