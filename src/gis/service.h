// The GIS as a network service: a server process on a virtual host plus a
// client API, speaking a framed text protocol over virtual sockets (the
// stand-in for MDS over LDAP).
//
// Requests (one frame each):
//   SEARCH\n<base dn>\n<scope>\n<filter>
//   ADD\n<ldif block>
//   REMOVE\n<dn>
// Responses:
//   OK\n<payload>      (search payload: blank-line-separated LDIF blocks)
//   ERR\n<message>
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "gis/directory.h"
#include "vos/context.h"

namespace mg::gis {

/// The standard MDS port.
inline constexpr std::uint16_t kGisPort = 2135;

/// Serve `dir` on ctx's host. Blocks forever (spawn it as a dedicated
/// process); each client connection is handled by its own process.
void serveDirectory(vos::HostContext& ctx, Directory& dir, std::uint16_t port = kGisPort);

/// Client side. Connects lazily on first use; one connection per client.
class GisClient {
 public:
  GisClient(vos::HostContext& ctx, std::string server_host, std::uint16_t port = kGisPort);

  /// Remote scoped, filtered search.
  std::vector<Record> search(const std::string& base, Scope scope, const std::string& filter);

  /// Remote insert-or-replace.
  void add(const Record& record);

  /// Remote removal; true if the entry existed.
  bool remove(const Dn& dn);

  void close();

 private:
  std::string request(const std::string& payload);

  vos::HostContext& ctx_;
  std::string server_host_;
  std::uint16_t port_;
  std::shared_ptr<vos::StreamSocket> sock_;
};

}  // namespace mg::gis
