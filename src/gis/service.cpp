#include "gis/service.h"

#include "util/log.h"
#include "util/strings.h"
#include "vos/wire.h"

namespace mg::gis {

namespace {

std::string handleRequest(Directory& dir, const std::string& request) {
  try {
    const auto nl = request.find('\n');
    const std::string verb = (nl == std::string::npos) ? request : request.substr(0, nl);
    const std::string body = (nl == std::string::npos) ? "" : request.substr(nl + 1);
    if (verb == "SEARCH") {
      const auto lines = util::split(body, '\n');
      if (lines.size() < 3) return "ERR\nSEARCH needs base, scope, filter";
      const Dn base = Dn::parse(lines[0]);
      const Scope scope = scopeFromString(lines[1]);
      // The filter may itself contain no newlines; everything after the
      // scope line is the filter expression.
      std::string filter_text = lines[2];
      for (std::size_t i = 3; i < lines.size(); ++i) filter_text += "\n" + lines[i];
      const Filter filter = Filter::parse(filter_text);
      std::string payload;
      for (const auto& rec : dir.search(base, scope, filter)) {
        payload += rec.toLdif();
        payload += "\n";
      }
      return "OK\n" + payload;
    }
    if (verb == "ADD") {
      dir.upsert(Record::fromLdif(body));
      return "OK\n";
    }
    if (verb == "REMOVE") {
      return dir.remove(Dn::parse(body)) ? "OK\nremoved" : "OK\n";
    }
    return "ERR\nunknown verb '" + verb + "'";
  } catch (const mg::Error& e) {
    return std::string("ERR\n") + e.what();
  }
}

}  // namespace

void serveDirectory(vos::HostContext& ctx, Directory& dir, std::uint16_t port) {
  auto listener = ctx.listen(port);
  MG_LOG_INFO("gis") << "GIS server listening on " << ctx.hostname() << ":" << port;
  for (;;) {
    auto sock = listener->accept();
    ctx.spawnProcess("gis-handler", [sock, &dir](vos::HostContext&) {
      try {
        for (;;) {
          const std::string request = vos::recvFrame(*sock);
          vos::sendFrame(*sock, handleRequest(dir, request));
        }
      } catch (const mg::Error&) {
        // Client hung up; the connection is done.
      }
      sock->close();
    });
  }
}

GisClient::GisClient(vos::HostContext& ctx, std::string server_host, std::uint16_t port)
    : ctx_(ctx), server_host_(std::move(server_host)), port_(port) {}

std::string GisClient::request(const std::string& payload) {
  if (!sock_) sock_ = ctx_.connect(server_host_, port_);
  vos::sendFrame(*sock_, payload);
  const std::string reply = vos::recvFrame(*sock_);
  const auto nl = reply.find('\n');
  const std::string status = (nl == std::string::npos) ? reply : reply.substr(0, nl);
  const std::string body = (nl == std::string::npos) ? "" : reply.substr(nl + 1);
  if (status != "OK") throw mg::Error("GIS error: " + body);
  return body;
}

std::vector<Record> GisClient::search(const std::string& base, Scope scope,
                                      const std::string& filter) {
  const std::string body =
      request("SEARCH\n" + base + "\n" + scopeToString(scope) + "\n" + filter);
  std::vector<Record> out;
  std::string block;
  auto flush = [&] {
    if (!util::trim(block).empty()) out.push_back(Record::fromLdif(block));
    block.clear();
  };
  for (const auto& line : util::split(body, '\n')) {
    if (util::trim(line).empty()) {
      flush();
    } else {
      block += line;
      block += '\n';
    }
  }
  flush();
  return out;
}

void GisClient::add(const Record& record) { request("ADD\n" + record.toLdif()); }

bool GisClient::remove(const Dn& dn) { return request("REMOVE\n" + dn.str()) == "removed"; }

void GisClient::close() {
  if (sock_) {
    sock_->close();
    sock_.reset();
  }
}

}  // namespace mg::gis
