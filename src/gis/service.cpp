#include "gis/service.h"

#include "util/log.h"
#include "util/strings.h"
#include "vos/wire.h"

namespace mg::gis {

namespace {

/// gis.service.* registry handles, resolved once per server.
struct ServiceCounters {
  explicit ServiceCounters(obs::MetricsRegistry& m)
      : searches(m.counter("gis.service.searches")),
        adds(m.counter("gis.service.adds")),
        removes(m.counter("gis.service.removes")),
        errors(m.counter("gis.service.errors")) {}
  obs::Counter& searches;
  obs::Counter& adds;
  obs::Counter& removes;
  obs::Counter& errors;
};

std::string handleRequest(Directory& dir, const std::string& request, ServiceCounters& counters,
                          double now) {
  try {
    const auto nl = request.find('\n');
    const std::string verb = (nl == std::string::npos) ? request : request.substr(0, nl);
    const std::string body = (nl == std::string::npos) ? "" : request.substr(nl + 1);
    if (verb == "SEARCH") {
      counters.searches.inc();
      const auto lines = util::split(body, '\n');
      if (lines.size() < 3) return "ERR\nSEARCH needs base, scope, filter";
      const Dn base = Dn::parse(lines[0]);
      const Scope scope = scopeFromString(lines[1]);
      // The filter may itself contain no newlines; everything after the
      // scope line is the filter expression.
      std::string filter_text = lines[2];
      for (std::size_t i = 3; i < lines.size(); ++i) filter_text += "\n" + lines[i];
      const Filter filter = Filter::parse(filter_text);
      std::string payload;
      // Searches see the directory as of the virtual present: expired
      // (crashed-host) records are invisible.
      for (const auto& rec : dir.search(base, scope, filter, now)) {
        payload += rec.toLdif();
        payload += "\n";
      }
      return "OK\n" + payload;
    }
    if (verb == "ADD") {
      counters.adds.inc();
      dir.upsert(Record::fromLdif(body));
      return "OK\n";
    }
    if (verb == "REMOVE") {
      counters.removes.inc();
      return dir.remove(Dn::parse(body)) ? "OK\nremoved" : "OK\n";
    }
    counters.errors.inc();
    return "ERR\nunknown verb '" + verb + "'";
  } catch (const mg::Error& e) {
    counters.errors.inc();
    return std::string("ERR\n") + e.what();
  }
}

}  // namespace

void serveDirectory(vos::HostContext& ctx, Directory& dir, std::uint16_t port) {
  auto listener = ctx.listen(port);
  auto counters = std::make_shared<ServiceCounters>(ctx.simulator().metrics());
  MG_LOG_INFO("gis") << "GIS server listening on " << ctx.hostname() << ":" << port;
  for (;;) {
    auto sock = listener->accept();
    ctx.spawnProcess("gis-handler", [sock, &dir, counters](vos::HostContext& hctx) {
      try {
        for (;;) {
          const std::string request = vos::recvFrame(*sock, hctx.simulator().metrics());
          vos::sendFrame(*sock, handleRequest(dir, request, *counters, hctx.wallTime()),
                         hctx.simulator().metrics());
        }
      } catch (const mg::Error&) {
        // Client hung up; the connection is done.
      }
      sock->close();
    });
  }
}

GisClient::GisClient(vos::HostContext& ctx, std::string server_host, std::uint16_t port)
    : ctx_(ctx), server_host_(std::move(server_host)), port_(port) {}

std::string GisClient::request(const std::string& payload) {
  if (!sock_) sock_ = ctx_.connect(server_host_, port_);
  vos::sendFrame(*sock_, payload, ctx_.simulator().metrics());
  const std::string reply = vos::recvFrame(*sock_, ctx_.simulator().metrics());
  const auto nl = reply.find('\n');
  const std::string status = (nl == std::string::npos) ? reply : reply.substr(0, nl);
  const std::string body = (nl == std::string::npos) ? "" : reply.substr(nl + 1);
  if (status != "OK") throw mg::Error("GIS error: " + body);
  return body;
}

std::vector<Record> GisClient::search(const std::string& base, Scope scope,
                                      const std::string& filter) {
  const std::string body =
      request("SEARCH\n" + base + "\n" + scopeToString(scope) + "\n" + filter);
  std::vector<Record> out;
  std::string block;
  auto flush = [&] {
    if (!util::trim(block).empty()) out.push_back(Record::fromLdif(block));
    block.clear();
  };
  for (const auto& line : util::split(body, '\n')) {
    if (util::trim(line).empty()) {
      flush();
    } else {
      block += line;
      block += '\n';
    }
  }
  flush();
  return out;
}

void GisClient::add(const Record& record) { request("ADD\n" + record.toLdif()); }

bool GisClient::remove(const Dn& dn) { return request("REMOVE\n" + dn.str()) == "removed"; }

void GisClient::close() {
  if (sock_) {
    sock_->close();
    sock_.reset();
  }
}

}  // namespace mg::gis
