// The Fig 3 virtual-resource schema: GIS host and network records extended
// with virtualization attributes:
//
//   hn=vm.ucsd.edu, ou=Concurrent Systems Architecture Group, ...
//     Is_Virtual_Resource=Yes
//     Configuration_Name=Slow_CPU_Configuration
//     Mapped_Physical_Resource=csag-226-67.ucsd.edu
//     CpuSpeed=...
//     MemorySize=100MBytes
//
//   nn=1.11.11.0, nn=1.11.0.0, ou=..., Is_Virtual_Resource=Yes
//     Configuration_Name=Slow_CPU_Configuration
//     nwType=LAN
//     speed=100Mbps 50ms
//
// "The added fields are designed to support easy identification and grouping
// of the virtual Grid entries (there may be information on many virtual
// Grids in a single GIS server)" — Configuration_Name is that grouping key.
#pragma once

#include <string>
#include <vector>

#include "gis/directory.h"
#include "vos/virtual_host.h"

namespace mg::gis {

/// Attribute names (canonical spellings from the paper; lookups are
/// case-insensitive anyway).
inline constexpr const char* kAttrIsVirtual = "Is_Virtual_Resource";
inline constexpr const char* kAttrConfigName = "Configuration_Name";
inline constexpr const char* kAttrMappedPhysical = "Mapped_Physical_Resource";
inline constexpr const char* kAttrCpuSpeed = "CpuSpeed";
inline constexpr const char* kAttrMemorySize = "MemorySize";
inline constexpr const char* kAttrNwType = "nwType";
inline constexpr const char* kAttrSpeed = "speed";

/// Build a Fig 3 virtual host record under `org_base`
/// (dn: hn=<hostname>, <org_base>).
Record makeVirtualHostRecord(const Dn& org_base, const vos::VirtualHostInfo& host,
                             const std::string& config_name);

/// Build a Fig 3 virtual network record (dn: nn=<network>, <org_base>).
Record makeVirtualNetworkRecord(const Dn& org_base, const std::string& network_name,
                                const std::string& config_name, const std::string& nw_type,
                                double bandwidth_bps, double latency_seconds);

/// All virtual host records belonging to one named virtual grid
/// configuration.
std::vector<Record> virtualHostsForConfig(const Directory& dir, const Dn& base,
                                          const std::string& config_name);

/// All virtual network records for a configuration.
std::vector<Record> virtualNetworksForConfig(const Directory& dir, const Dn& base,
                                             const std::string& config_name);

/// Reconstruct a VirtualHostInfo from a Fig 3 host record (inverse of
/// makeVirtualHostRecord; node id is not stored in the GIS and comes back
/// as kNoNode).
vos::VirtualHostInfo hostInfoFromRecord(const Record& record);

/// Parse a Fig 3 "speed" value: "<bandwidth> <latency>", e.g. "100Mbps 50ms".
struct NetworkSpeed {
  double bandwidth_bps = 0;
  double latency_seconds = 0;
};
NetworkSpeed parseNetworkSpeed(const std::string& value);

}  // namespace mg::gis
