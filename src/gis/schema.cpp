#include "gis/schema.h"

#include "util/strings.h"
#include "util/units.h"

namespace mg::gis {

Record makeVirtualHostRecord(const Dn& org_base, const vos::VirtualHostInfo& host,
                             const std::string& config_name) {
  Record r(org_base.child("hn", host.hostname));
  r.add("objectclass", "GridComputeResource");
  r.add(kAttrIsVirtual, "Yes");
  r.add(kAttrConfigName, config_name);
  r.add(kAttrMappedPhysical, host.physical_host);
  r.add("hostName", host.hostname);
  r.add("ipAddress", host.virtual_ip);
  r.add(kAttrCpuSpeed, util::format("%.6gMops", host.cpu_ops / 1e6));
  r.add(kAttrMemorySize, util::format("%lldKBytes", static_cast<long long>(host.memory_bytes / 1024)));
  return r;
}

Record makeVirtualNetworkRecord(const Dn& org_base, const std::string& network_name,
                                const std::string& config_name, const std::string& nw_type,
                                double bandwidth_bps, double latency_seconds) {
  Record r(org_base.child("nn", network_name));
  r.add("objectclass", "GridNetwork");
  r.add(kAttrIsVirtual, "Yes");
  r.add(kAttrConfigName, config_name);
  r.add(kAttrNwType, nw_type);
  r.add(kAttrSpeed, util::formatBandwidth(bandwidth_bps) + " " + util::formatTime(latency_seconds));
  return r;
}

namespace {
std::vector<Record> forConfig(const Directory& dir, const Dn& base, const std::string& config_name,
                              const char* objectclass) {
  const Filter f = Filter::parse("(&(objectclass=" + std::string(objectclass) + ")(" +
                                 std::string(kAttrIsVirtual) + "=Yes)(" +
                                 std::string(kAttrConfigName) + "=" + config_name + "))");
  return dir.search(base, Scope::Subtree, f);
}
}  // namespace

std::vector<Record> virtualHostsForConfig(const Directory& dir, const Dn& base,
                                          const std::string& config_name) {
  return forConfig(dir, base, config_name, "GridComputeResource");
}

std::vector<Record> virtualNetworksForConfig(const Directory& dir, const Dn& base,
                                             const std::string& config_name) {
  return forConfig(dir, base, config_name, "GridNetwork");
}

vos::VirtualHostInfo hostInfoFromRecord(const Record& record) {
  vos::VirtualHostInfo info;
  info.hostname = record.get("hostName");
  info.virtual_ip = record.get("ipAddress", "");
  info.physical_host = record.get(kAttrMappedPhysical, "");
  info.cpu_ops = util::parseComputeRate(record.get(kAttrCpuSpeed));
  info.memory_bytes = util::parseSize(record.get(kAttrMemorySize));
  return info;
}

NetworkSpeed parseNetworkSpeed(const std::string& value) {
  const auto parts = util::splitWhitespace(value);
  if (parts.size() != 2) {
    throw ParseError("network speed must be '<bandwidth> <latency>', got '" + value + "'");
  }
  NetworkSpeed s;
  s.bandwidth_bps = util::parseBandwidth(parts[0]);
  s.latency_seconds = util::parseTime(parts[1]);
  return s;
}

}  // namespace mg::gis
