#include "gis/filter.h"

#include "util/strings.h"

namespace mg::gis {

namespace {
void skipSpace(const std::string& s, std::size_t& pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
}
}  // namespace

Filter Filter::matchAll() { return Filter{}; }

Filter Filter::parse(const std::string& text) {
  std::size_t pos = 0;
  skipSpace(text, pos);
  if (pos == text.size()) return matchAll();
  Filter f = parseNode(text, pos);
  skipSpace(text, pos);
  if (pos != text.size()) throw ParseError("trailing characters in filter '" + text + "'");
  return f;
}

Filter Filter::parseNode(const std::string& text, std::size_t& pos) {
  skipSpace(text, pos);
  if (pos >= text.size() || text[pos] != '(') {
    throw ParseError("expected '(' at position " + std::to_string(pos) + " in '" + text + "'");
  }
  ++pos;  // consume '('
  skipSpace(text, pos);
  if (pos >= text.size()) throw ParseError("unterminated filter '" + text + "'");

  Filter f;
  const char op = text[pos];
  if (op == '&' || op == '|') {
    f.kind_ = (op == '&') ? Kind::And : Kind::Or;
    ++pos;
    skipSpace(text, pos);
    while (pos < text.size() && text[pos] == '(') {
      f.children_.push_back(parseNode(text, pos));
      skipSpace(text, pos);
    }
    if (f.children_.empty()) throw ParseError("empty boolean filter in '" + text + "'");
  } else if (op == '!') {
    f.kind_ = Kind::Not;
    ++pos;
    f.children_.push_back(parseNode(text, pos));
    skipSpace(text, pos);
  } else {
    // (attr=pattern)
    const std::size_t eq = text.find('=', pos);
    const std::size_t close = text.find(')', pos);
    if (eq == std::string::npos || close == std::string::npos || eq > close) {
      throw ParseError("malformed comparison in filter '" + text + "'");
    }
    f.attr_ = util::toLower(std::string(util::trim(text.substr(pos, eq - pos))));
    f.pattern_ = std::string(util::trim(text.substr(eq + 1, close - eq - 1)));
    if (f.attr_.empty()) throw ParseError("empty attribute in filter '" + text + "'");
    f.kind_ = (f.pattern_ == "*") ? Kind::Presence : Kind::Equals;
    pos = close;
  }
  skipSpace(text, pos);
  if (pos >= text.size() || text[pos] != ')') {
    throw ParseError("expected ')' at position " + std::to_string(pos) + " in '" + text + "'");
  }
  ++pos;  // consume ')'
  return f;
}

bool Filter::matches(const Record& record) const {
  switch (kind_) {
    case Kind::True:
      return true;
    case Kind::Presence:
      return record.has(attr_);
    case Kind::Equals: {
      for (const auto& v : record.getAll(attr_)) {
        if (util::globMatch(pattern_, v)) return true;
      }
      return false;
    }
    case Kind::And:
      for (const auto& c : children_) {
        if (!c.matches(record)) return false;
      }
      return true;
    case Kind::Or:
      for (const auto& c : children_) {
        if (c.matches(record)) return true;
      }
      return false;
    case Kind::Not:
      return !children_.front().matches(record);
  }
  return false;
}

std::string Filter::str() const {
  switch (kind_) {
    case Kind::True:
      return "";
    case Kind::Presence:
      return "(" + attr_ + "=*)";
    case Kind::Equals:
      return "(" + attr_ + "=" + pattern_ + ")";
    case Kind::Not:
      return "(!" + children_.front().str() + ")";
    case Kind::And:
    case Kind::Or: {
      std::string out = "(";
      out += (kind_ == Kind::And) ? '&' : '|';
      for (const auto& c : children_) out += c.str();
      out += ")";
      return out;
    }
  }
  return "";
}

}  // namespace mg::gis
