// The GIS directory: an in-memory LDAP-like tree of records with scoped,
// filtered search. "All of these records are placed in the existing GIS
// servers — no additional servers or daemons are needed" (paper §2.2.2):
// virtual and physical entries live side by side in one Directory.
#pragma once

#include <optional>
#include <vector>

#include "gis/filter.h"
#include "gis/record.h"

namespace mg::gis {

enum class Scope {
  Base,      // only the entry at the base DN
  OneLevel,  // direct children of the base DN
  Subtree,   // the base and everything beneath it
};

Scope scopeFromString(const std::string& s);
std::string scopeToString(Scope s);

/// Staleness attribute: a record carrying `Record_Expires: <virtual seconds,
/// decimal>` is excluded from searches whose `now` is at or past that time.
/// The launcher stamps it on the records of crashed hosts so placement
/// decisions stop seeing them (MDS-style TTL expiry).
inline constexpr const char* kAttrExpires = "Record_Expires";

class Directory {
 public:
  /// Insert a record; throws mg::ConfigError if the DN already exists.
  void add(Record record);

  /// Insert or replace by DN.
  void upsert(Record record);

  /// Remove by DN; false if absent.
  bool remove(const Dn& dn);

  /// Exact-DN lookup.
  const Record* find(const Dn& dn) const;

  /// Scoped, filtered search. Results are in insertion order (stable and
  /// deterministic). When `now` is given, records whose kAttrExpires time is
  /// at or before it are treated as absent.
  std::vector<Record> search(const Dn& base, Scope scope, const Filter& filter) const;
  std::vector<Record> search(const Dn& base, Scope scope, const Filter& filter, double now) const;

  /// True if the record has expired relative to `now` (virtual seconds).
  static bool expired(const Record& r, double now);

  std::size_t size() const { return records_.size(); }

  /// Serialize the whole directory as blank-line-separated LDIF blocks.
  std::string toLdif() const;

  /// Parse a multi-block LDIF dump.
  static Directory fromLdif(const std::string& text);

 private:
  std::vector<Record> records_;
};

}  // namespace mg::gis
