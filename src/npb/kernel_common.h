// Shared helpers for the mini NPB kernels.
#pragma once

#include "npb/cost_model.h"
#include "npb/npb.h"

namespace mg::npb::detail {

/// Rank 0 publishes a periodic function of the iteration counter to the
/// installed Autopilot board (no-op without one).
inline void publishProgress(const vmpi::Comm& comm, const char* bench, int counter) {
  if (comm.rank() != 0) return;
  if (auto* board = sensorBoard()) {
    board->set(std::string(bench) + ".progress", static_cast<double>(counter % 8));
  }
}

/// Fill in the common fields of a KernelResult.
inline KernelResult makeResult(Benchmark b, NpbClass cls, const vmpi::Comm& comm) {
  KernelResult r;
  r.benchmark = benchmarkName(b);
  r.npb_class = className(cls);
  r.rank = comm.rank();
  r.nprocs = comm.size();
  return r;
}

/// A 3D slab field with one ghost plane on each z side. Index (x, y, z)
/// with z in [-1, nz_local]; interior z in [0, nz_local).
class SlabField {
 public:
  SlabField(int n, int nz_local)
      : n_(n), nz_(nz_local), data_(static_cast<size_t>(n) * n * (nz_local + 2), 0.0) {}

  double& at(int x, int y, int z) {
    return data_[static_cast<size_t>(z + 1) * n_ * n_ + static_cast<size_t>(y) * n_ +
                 static_cast<size_t>(x)];
  }
  const double& at(int x, int y, int z) const {
    return data_[static_cast<size_t>(z + 1) * n_ * n_ + static_cast<size_t>(y) * n_ +
                 static_cast<size_t>(x)];
  }

  /// Pointer to the start of plane z (n*n doubles).
  double* plane(int z) { return &at(0, 0, z); }
  const double* plane(int z) const { return &at(0, 0, z); }

  int n() const { return n_; }
  int nz() const { return nz_; }
  std::size_t planeBytes() const { return static_cast<size_t>(n_) * n_ * sizeof(double); }

 private:
  int n_;
  int nz_;
  std::vector<double> data_;
};

/// Pack/unpack an x-range [x0, x1) of plane z into a contiguous buffer
/// (used by the chunked wavefront pipelines of LU and BT).
inline void packPlaneRange(const SlabField& f, int z, int x0, int x1,
                           std::vector<double>& out) {
  out.clear();
  for (int y = 0; y < f.n(); ++y) {
    for (int x = x0; x < x1; ++x) out.push_back(f.at(x, y, z));
  }
}

inline void unpackPlaneRange(SlabField& f, int z, int x0, int x1, const std::vector<double>& in) {
  std::size_t i = 0;
  for (int y = 0; y < f.n(); ++y) {
    for (int x = x0; x < x1; ++x) f.at(x, y, z) = in[i++];
  }
}

/// Exchange ghost planes with the z neighbors (non-periodic slab
/// decomposition). `wire_plane_bytes` models the class-sized face.
inline void exchangeHalo(vmpi::Comm& comm, SlabField& f, int tag, std::size_t wire_plane_bytes) {
  const int rank = comm.rank();
  const int p = comm.size();
  const std::size_t bytes = f.planeBytes();
  const int up = rank + 1;
  const int down = rank - 1;
  // Send top plane up / receive bottom ghost, then the reverse, using
  // nonblocking sends to avoid cycles.
  std::vector<vmpi::Request> reqs;
  if (up < p) reqs.push_back(comm.isend(up, tag, f.plane(f.nz() - 1), bytes, wire_plane_bytes));
  if (down >= 0) reqs.push_back(comm.isend(down, tag, f.plane(0), bytes, wire_plane_bytes));
  if (down >= 0) comm.recv(down, tag, f.plane(-1), bytes);
  if (up < p) comm.recv(up, tag, f.plane(f.nz()), bytes);
  comm.waitAll(reqs);
}

}  // namespace mg::npb::detail
