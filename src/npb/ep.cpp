// EP — embarrassingly parallel.
//
// Generates Gaussian pairs with the Marsaglia polar method from the NPB
// linear congruential generator (each rank jumps ahead to its subsequence),
// tallies them into max-norm annuli, and combines the results with one
// allreduce at the end. Communication-free until the final reduction — the
// pure-compute calibration point of the suite.
#include <cmath>

#include "npb/kernel_common.h"
#include "util/rng.h"

namespace mg::npb {

KernelResult runEp(vmpi::Comm& comm, vos::HostContext& ctx, NpbClass cls) {
  const KernelCost cost = costFor(Benchmark::EP, cls);
  KernelResult result = detail::makeResult(Benchmark::EP, cls, comm);
  const int p = comm.size();
  const std::int64_t bytes0 = comm.bytesSent();
  const std::int64_t msgs0 = comm.messagesSent();

  comm.barrier();
  const double t0 = comm.wtime();

  // Each rank owns an independent subsequence (2 randoms per pair).
  const std::int64_t pairs = cost.executed_pairs_per_rank;
  util::NpbRandom rng;
  rng.jump(util::NpbRandom::kDefaultSeed,
           static_cast<std::uint64_t>(comm.rank()) * static_cast<std::uint64_t>(2 * pairs));

  double sx = 0, sy = 0;
  std::int64_t q[10] = {0};
  std::int64_t accepted = 0;

  const int batches = 16;
  const double ops_per_batch = cost.total_ops / p / batches;
  const std::int64_t pairs_per_batch = pairs / batches;
  for (int batch = 0; batch < batches; ++batch) {
    detail::publishProgress(comm, "EP", batch);
    for (std::int64_t i = 0; i < pairs_per_batch; ++i) {
      const double x = 2.0 * rng.next() - 1.0;
      const double y = 2.0 * rng.next() - 1.0;
      const double t = x * x + y * y;
      if (t <= 1.0 && t > 0.0) {
        const double f = std::sqrt(-2.0 * std::log(t) / t);
        const double gx = x * f;
        const double gy = y * f;
        const double m = std::max(std::fabs(gx), std::fabs(gy));
        const int bin = std::min(9, static_cast<int>(m));
        ++q[bin];
        ++accepted;
        sx += gx;
        sy += gy;
      }
    }
    // Charge the class's share of work for this batch.
    ctx.compute(ops_per_batch);
  }

  double sums[2] = {sx, sy};
  comm.allreduce(sums, 2, vmpi::Op::Sum);
  std::int64_t counts[11];
  for (int i = 0; i < 10; ++i) counts[i] = q[i];
  counts[10] = accepted;
  comm.allreduce(counts, 11, vmpi::Op::Sum);

  result.seconds = comm.wtime() - t0;

  // Verification: the acceptance rate of the polar method is pi/4, and the
  // annulus counts must account for every accepted pair.
  std::int64_t bin_total = 0;
  for (int i = 0; i < 10; ++i) bin_total += counts[i];
  const double acceptance =
      static_cast<double>(counts[10]) / (static_cast<double>(pairs) * p);
  result.verified = (bin_total == counts[10]) && std::fabs(acceptance - 0.785398) < 0.01 &&
                    std::isfinite(sums[0]) && std::isfinite(sums[1]);
  result.checksum = sums[0] + sums[1];
  result.bytes_sent = comm.bytesSent() - bytes0;
  result.messages_sent = comm.messagesSent() - msgs0;
  return result;
}

}  // namespace mg::npb
