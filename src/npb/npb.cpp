#include "npb/npb.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"

namespace mg::npb {

NpbClass classFromString(const std::string& s) {
  const std::string t = util::toLower(s);
  if (t == "s" || t == "classs" || t == "class_s") return NpbClass::S;
  if (t == "a" || t == "classa" || t == "class_a") return NpbClass::A;
  throw mg::ParseError("unknown NPB class '" + s + "' (supported: S, A)");
}

std::string className(NpbClass c) { return c == NpbClass::S ? "S" : "A"; }

Benchmark benchmarkFromString(const std::string& s) {
  const std::string t = util::toLower(s);
  if (t == "ep") return Benchmark::EP;
  if (t == "is") return Benchmark::IS;
  if (t == "mg") return Benchmark::MG;
  if (t == "lu") return Benchmark::LU;
  if (t == "bt") return Benchmark::BT;
  throw mg::ParseError("unknown NPB benchmark '" + s + "'");
}

std::string benchmarkName(Benchmark b) {
  switch (b) {
    case Benchmark::EP: return "EP";
    case Benchmark::IS: return "IS";
    case Benchmark::MG: return "MG";
    case Benchmark::LU: return "LU";
    case Benchmark::BT: return "BT";
  }
  return "?";
}

KernelResult runBenchmark(Benchmark b, vmpi::Comm& comm, vos::HostContext& ctx, NpbClass cls) {
  switch (b) {
    case Benchmark::EP: return runEp(comm, ctx, cls);
    case Benchmark::IS: return runIs(comm, ctx, cls);
    case Benchmark::MG: return runMg(comm, ctx, cls);
    case Benchmark::LU: return runLu(comm, ctx, cls);
    case Benchmark::BT: return runBt(comm, ctx, cls);
  }
  throw mg::UsageError("unknown benchmark");
}

double ResultSink::maxSeconds() const {
  double m = 0;
  for (const auto& r : results_) m = std::max(m, r.seconds);
  return m;
}

bool ResultSink::allVerified() const {
  if (results_.empty()) return false;
  return std::all_of(results_.begin(), results_.end(),
                     [](const KernelResult& r) { return r.verified; });
}

namespace {
autopilot::SensorRegistry* g_sensor_board = nullptr;
}  // namespace

void setSensorBoard(autopilot::SensorRegistry* board) { g_sensor_board = board; }
autopilot::SensorRegistry* sensorBoard() { return g_sensor_board; }

void registerNpb(grid::ExecutableRegistry& registry, ResultSink& sink) {
  for (Benchmark b :
       {Benchmark::EP, Benchmark::IS, Benchmark::MG, Benchmark::LU, Benchmark::BT}) {
    registry.add("npb." + util::toLower(benchmarkName(b)),
                 [b, &sink](grid::JobContext& jc) {
                   const NpbClass cls = classFromString(jc.args.empty() ? "S" : jc.args[0]);
                   auto comm = vmpi::Comm::init(jc);
                   KernelResult r = runBenchmark(b, *comm, jc.os, cls);
                   sink.record(r);
                   comm->finalize();
                   return r.verified ? 0 : 1;
                 });
  }
}

}  // namespace mg::npb
