#include "npb/cost_model.h"

#include "util/error.h"

namespace mg::npb {

KernelCost costFor(Benchmark b, NpbClass c) {
  KernelCost k;
  const bool a = (c == NpbClass::A);
  switch (b) {
    case Benchmark::EP:
      // 2^24 (S) / 2^28 (A) pairs, ~100 ops per pair incl. transcendental.
      k.total_ops = a ? 2.1e11 : 1.3e10;
      k.class_iterations = 1;
      k.executed_iterations = 1;
      k.executed_pairs_per_rank = 1 << 16;
      return k;
    case Benchmark::IS:
      // 10 ranking iterations over 2^16 (S) / 2^23 (A) keys.
      k.total_ops = a ? 6.4e10 : 2.0e9;
      k.class_iterations = 10;
      k.executed_iterations = 10;
      k.class_keys = a ? (1ll << 23) : (1ll << 16);
      k.executed_keys_per_rank = 1 << 13;
      return k;
    case Benchmark::MG:
      // 4 V-cycles on 32^3 (S) / 256^3 (A).
      k.total_ops = a ? 1.1e11 : 6.0e9;
      k.class_iterations = 4;
      k.executed_iterations = 4;
      k.class_grid = a ? 256 : 32;
      k.executed_grid = 32;
      return k;
    case Benchmark::LU:
      // SSOR: 50 (S) / 250 (A) iterations on 12^3 / 64^3. The mini-kernel
      // executes fewer sweeps and charges proportionally more per sweep; the
      // pipeline message pattern repeats per executed iteration.
      k.total_ops = a ? 5.3e11 : 1.8e10;
      k.class_iterations = a ? 250 : 50;
      k.executed_iterations = a ? 50 : 20;
      k.class_grid = a ? 64 : 12;
      k.executed_grid = 24;
      return k;
    case Benchmark::BT:
      // ADI: 200 (S: 60) iterations on 64^3 (S: 12^3).
      k.total_ops = a ? 7.9e11 : 2.5e10;
      k.class_iterations = a ? 200 : 60;
      k.executed_iterations = a ? 40 : 20;
      k.class_grid = a ? 64 : 12;
      k.executed_grid = 24;
      return k;
  }
  throw mg::UsageError("unknown benchmark");
}

}  // namespace mg::npb
