// BT — block tridiagonal / ADI.
//
// Alternating-direction-implicit structure: each iteration solves
// tridiagonal systems along x, then y (both local under slab
// decomposition), then z, where the line solves span ranks and run as a
// forward-elimination / back-substitution pipeline with boundary-plane
// exchanges in both directions. Per-iteration communication is therefore
// four boundary planes (two sweeps, two directions), with class-scaled
// wire sizes (BT carries 5 components per point).
#include <cmath>

#include "npb/kernel_common.h"

namespace mg::npb {

namespace {

using detail::SlabField;

/// Thomas-algorithm line solve along x (or y when `along_y`): solves
/// (2+eps) u_i - u_{i-1} - u_{i+1} = rhs_i on each line of each plane.
void localLineSolves(SlabField& u, const SlabField& rhs, bool along_y) {
  const int n = u.n();
  const int nz = u.nz();
  std::vector<double> c(static_cast<size_t>(n)), d(static_cast<size_t>(n));
  const double diag = 3.0;
  for (int z = 0; z < nz; ++z) {
    for (int line = 0; line < n; ++line) {
      // Forward elimination.
      for (int i = 0; i < n; ++i) {
        const double r = along_y ? rhs.at(line, i, z) : rhs.at(i, line, z);
        if (i == 0) {
          c[0] = -1.0 / diag;
          d[0] = r / diag;
        } else {
          const double m = diag + c[static_cast<size_t>(i) - 1];
          c[static_cast<size_t>(i)] = -1.0 / m;
          d[static_cast<size_t>(i)] = (r + d[static_cast<size_t>(i) - 1]) / m;
        }
      }
      // Back substitution.
      double prev = d[static_cast<size_t>(n) - 1];
      (along_y ? u.at(line, n - 1, z) : u.at(n - 1, line, z)) = prev;
      for (int i = n - 2; i >= 0; --i) {
        prev = d[static_cast<size_t>(i)] - c[static_cast<size_t>(i)] * prev;
        (along_y ? u.at(line, i, z) : u.at(i, line, z)) = prev;
      }
    }
  }
}

/// z-direction relaxation over x in [x0, x1) using ghost planes.
void zRelaxRange(SlabField& u, const SlabField& rhs, int x0, int x1, bool has_down, bool has_up,
                 bool forward) {
  const int n = u.n();
  const int nz = u.nz();
  const double diag = 3.0;
  for (int zi = 0; zi < nz; ++zi) {
    const int z = forward ? zi : nz - 1 - zi;
    for (int y = 0; y < n; ++y) {
      for (int x = x0; x < x1; ++x) {
        const double zm = (z > 0 || has_down) ? u.at(x, y, z - 1) : 0.0;
        const double zp = (z + 1 < nz || has_up) ? u.at(x, y, z + 1) : 0.0;
        u.at(x, y, z) = (rhs.at(x, y, z) + zm + zp) / diag;
      }
    }
  }
}

}  // namespace

KernelResult runBt(vmpi::Comm& comm, vos::HostContext& ctx, NpbClass cls) {
  const KernelCost cost = costFor(Benchmark::BT, cls);
  KernelResult result = detail::makeResult(Benchmark::BT, cls, comm);
  const int p = comm.size();
  const int rank = comm.rank();
  const int n = cost.executed_grid;
  if (n % p != 0) throw mg::UsageError("BT needs process count dividing the grid edge");
  const int nz = n / p;
  const bool has_down = rank > 0;
  const bool has_up = rank + 1 < p;
  const std::int64_t bytes0 = comm.bytesSent();
  const std::int64_t msgs0 = comm.messagesSent();

  // Wavefront chunking of the z solves along x (as in LU).
  const int chunks = 8;
  const auto wire_chunk = static_cast<std::size_t>(cost.class_grid) *
                          static_cast<std::size_t>(cost.class_grid) * 5 * 8 /
                          static_cast<std::size_t>(chunks);

  SlabField u(n, nz), rhs(n, nz), work(n, nz), snapshot(n, nz);
  for (int z = 0; z < nz; ++z) {
    const int gz = rank * nz + z;
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        rhs.at(x, y, z) = std::cos((x + 2 * y + 3 * gz) * 0.11);
      }
    }
  }
  // ADI fixed point: each directional solve uses rhs + gamma * u_prev, a
  // contraction (gamma/diag < 1), so the iteration converges.
  const double gamma = 0.4;
  auto buildWork = [&] {
    for (int z = 0; z < nz; ++z) {
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) {
          work.at(x, y, z) = rhs.at(x, y, z) + gamma * u.at(x, y, z);
        }
      }
    }
  };

  comm.barrier();
  const double t0 = comm.wtime();

  // Three sweeps per iteration (x, y, z); z costs double (two directions).
  const double ops_per_iter = cost.total_ops / cost.class_iterations / p;
  const double charge_scale =
      static_cast<double>(cost.class_iterations) / cost.executed_iterations;

  double first_delta = -1, last_delta = 0;
  for (int iter = 0; iter < cost.executed_iterations; ++iter) {
    detail::publishProgress(comm, "BT", iter);
    for (int z = 0; z < nz; ++z) {
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) snapshot.at(x, y, z) = u.at(x, y, z);
      }
    }
    // x and y solves are local.
    ctx.compute(ops_per_iter * charge_scale * 0.3);
    buildWork();
    localLineSolves(u, work, /*along_y=*/false);
    ctx.compute(ops_per_iter * charge_scale * 0.3);
    buildWork();
    localLineSolves(u, work, /*along_y=*/true);

    // z solve: forward-elimination pipeline up, back-substitution down,
    // chunked along x so ranks overlap (wavefront blocking).
    buildWork();
    std::vector<double> chunk_buf;
    auto pipelinedZ = [&](bool forward, int tag) {
      for (int c = 0; c < chunks; ++c) {
        const int x0 = n * c / chunks;
        const int x1 = n * (c + 1) / chunks;
        const int from = forward ? rank - 1 : rank + 1;
        const int to = forward ? rank + 1 : rank - 1;
        const int ghost_z = forward ? -1 : nz;
        const int boundary_z = forward ? nz - 1 : 0;
        if (from >= 0 && from < p) {
          chunk_buf.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(x1 - x0));
          comm.recv(from, tag, chunk_buf.data(), chunk_buf.size() * sizeof(double));
          detail::unpackPlaneRange(u, ghost_z, x0, x1, chunk_buf);
        }
        ctx.compute(ops_per_iter * charge_scale * 0.2 / chunks);
        zRelaxRange(u, work, x0, x1, has_down, has_up, forward);
        if (to >= 0 && to < p) {
          detail::packPlaneRange(u, boundary_z, x0, x1, chunk_buf);
          comm.send(to, tag, chunk_buf.data(), chunk_buf.size() * sizeof(double), wire_chunk);
        }
      }
    };
    pipelinedZ(/*forward=*/true, 400);
    pipelinedZ(/*forward=*/false, 401);

    // Iteration delta: total movement of the field this round.
    double delta = 0;
    for (int z = 0; z < nz; ++z) {
      for (int y = 0; y < n; ++y) {
        for (int x = 0; x < n; ++x) delta += std::fabs(u.at(x, y, z) - snapshot.at(x, y, z));
      }
    }
    comm.allreduce(&delta, 1, vmpi::Op::Sum);
    if (first_delta < 0) first_delta = delta;
    last_delta = delta;
  }

  result.seconds = comm.wtime() - t0;
  result.verified = std::isfinite(last_delta) && last_delta < 0.5 * first_delta;
  result.checksum = last_delta;
  result.bytes_sent = comm.bytesSent() - bytes0;
  result.messages_sent = comm.messagesSent() - msgs0;
  return result;
}

}  // namespace mg::npb
