// LU — SSOR with pipelined wavefront sweeps.
//
// Symmetric successive over-relaxation on the slab-decomposed cube. The
// sweeps have a true z dependency across ranks, so — like the real
// benchmark's wavefront blocking — each sweep is chunked along x: a rank
// relaxes one x-chunk of its whole slab, forwards that chunk's boundary
// plane upward, and moves to the next chunk while its successor starts.
// This overlaps the pipeline (efficiency ~ 1/(1+(p-1)/C)) and generates the
// stream of small boundary messages that makes LU latency-sensitive.
#include <cmath>

#include "npb/kernel_common.h"

namespace mg::npb {

namespace {

using detail::SlabField;

/// SSOR relaxation over x in [x0, x1), all y, all local z (bottom-up when
/// `forward`, top-down otherwise).
double ssorSweepRange(SlabField& u, const SlabField& b, int x0, int x1, bool has_down,
                      bool has_up, bool forward) {
  const int n = u.n();
  const int nz = u.nz();
  const double omega = 1.2;
  double delta = 0;
  for (int zi = 0; zi < nz; ++zi) {
    const int z = forward ? zi : nz - 1 - zi;
    for (int y = 0; y < n; ++y) {
      for (int x = x0; x < x1; ++x) {
        const double xm = x > 0 ? u.at(x - 1, y, z) : 0.0;
        const double xp = x + 1 < n ? u.at(x + 1, y, z) : 0.0;
        const double ym = y > 0 ? u.at(x, y - 1, z) : 0.0;
        const double yp = y + 1 < n ? u.at(x, y + 1, z) : 0.0;
        const double zm = (z > 0 || has_down) ? u.at(x, y, z - 1) : 0.0;
        const double zp = (z + 1 < nz || has_up) ? u.at(x, y, z + 1) : 0.0;
        const double gs = (xm + xp + ym + yp + zm + zp + b.at(x, y, z)) / 6.0;
        const double nu = (1 - omega) * u.at(x, y, z) + omega * gs;
        delta += std::fabs(nu - u.at(x, y, z));
        u.at(x, y, z) = nu;
      }
    }
  }
  return delta;
}

}  // namespace

KernelResult runLu(vmpi::Comm& comm, vos::HostContext& ctx, NpbClass cls) {
  const KernelCost cost = costFor(Benchmark::LU, cls);
  KernelResult result = detail::makeResult(Benchmark::LU, cls, comm);
  const int p = comm.size();
  const int rank = comm.rank();
  const int n = cost.executed_grid;
  if (n % p != 0) throw mg::UsageError("LU needs process count dividing the grid edge");
  const int nz = n / p;
  const bool has_down = rank > 0;
  const bool has_up = rank + 1 < p;
  const std::int64_t bytes0 = comm.bytesSent();
  const std::int64_t msgs0 = comm.messagesSent();

  // Wavefront chunking along x.
  const int chunks = 8;
  // Real LU carries 5 solution components per boundary point; each chunk
  // message is its share of the class face.
  const auto wire_chunk = static_cast<std::size_t>(cost.class_grid) *
                          static_cast<std::size_t>(cost.class_grid) * 5 * 8 /
                          static_cast<std::size_t>(chunks);

  SlabField u(n, nz), b(n, nz);
  for (int z = 0; z < nz; ++z) {
    const int gz = rank * nz + z;
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        b.at(x, y, z) = std::sin((x + 1) * 0.7) * std::cos((y + 1) * 0.3) * std::sin((gz + 1) * 0.5);
      }
    }
  }

  comm.barrier();
  const double t0 = comm.wtime();

  const double ops_per_sweep = cost.total_ops / cost.class_iterations / 2.0 / p;
  // The executed iterations stand in for the class's; charge the remainder.
  const double charge_scale =
      static_cast<double>(cost.class_iterations) / cost.executed_iterations;

  // One chunked, pipelined sweep in the given direction.
  std::vector<double> chunk_buf;
  auto pipelinedSweep = [&](bool forward, int tag) {
    double delta = 0;
    for (int c = 0; c < chunks; ++c) {
      const int x0 = n * c / chunks;
      const int x1 = n * (c + 1) / chunks;
      const int from = forward ? rank - 1 : rank + 1;
      const int to = forward ? rank + 1 : rank - 1;
      const int ghost_z = forward ? -1 : nz;
      const int boundary_z = forward ? nz - 1 : 0;
      if (from >= 0 && from < p) {
        chunk_buf.resize(static_cast<std::size_t>(n) * static_cast<std::size_t>(x1 - x0));
        comm.recv(from, tag, chunk_buf.data(), chunk_buf.size() * sizeof(double));
        detail::unpackPlaneRange(u, ghost_z, x0, x1, chunk_buf);
      }
      ctx.compute(ops_per_sweep * charge_scale / chunks);
      delta += ssorSweepRange(u, b, x0, x1, has_down, has_up, forward);
      if (to >= 0 && to < p) {
        detail::packPlaneRange(u, boundary_z, x0, x1, chunk_buf);
        comm.send(to, tag, chunk_buf.data(), chunk_buf.size() * sizeof(double), wire_chunk);
      }
    }
    return delta;
  };

  double first_delta = -1, last_delta = 0;
  for (int iter = 0; iter < cost.executed_iterations; ++iter) {
    detail::publishProgress(comm, "LU", iter);
    double delta = pipelinedSweep(/*forward=*/true, 300);
    delta += pipelinedSweep(/*forward=*/false, 301);
    comm.allreduce(&delta, 1, vmpi::Op::Sum);
    if (first_delta < 0) first_delta = delta;
    last_delta = delta;
  }

  result.seconds = comm.wtime() - t0;
  // SSOR converges: the update magnitude must shrink substantially.
  result.verified = std::isfinite(last_delta) && last_delta < 0.5 * first_delta;
  result.checksum = last_delta;
  result.bytes_sent = comm.bytesSent() - bytes0;
  result.messages_sent = comm.messagesSent() - msgs0;
  return result;
}

}  // namespace mg::npb
