// The class cost model: how much work and traffic each benchmark class
// represents, and how far the executed mini-problem is scaled down.
//
// Totals are chosen so that a 4-process run on the modeled Alpha cluster
// (4 x 533 Mops) lands in the paper's Fig 10 / Fig 11 time ranges; the
// *ratios* (compute per message, bytes per message, message counts) follow
// the NPB 2.3 problem shapes:
//
//   class S grids: EP 2^24 pairs, MG 32^3, IS 2^16 keys, LU/BT 12^3
//   class A grids: EP 2^28 pairs, MG 256^3, IS 2^23 keys, LU/BT 64^3
#pragma once

#include <cstdint>

#include "npb/npb.h"

namespace mg::npb {

struct KernelCost {
  /// Modeled operations across all ranks for the whole run.
  double total_ops = 0;
  /// Iterations the real benchmark performs (ops are charged for these).
  int class_iterations = 1;
  /// Iterations the mini-kernel actually executes (message pattern repeats
  /// this many times; per-iteration charge is scaled up accordingly).
  int executed_iterations = 1;
  /// Class problem edge (grid benchmarks) — message sizes derive from it.
  int class_grid = 0;
  /// Edge of the executed (reduced) global grid.
  int executed_grid = 0;
  /// Class key count (IS).
  std::int64_t class_keys = 0;
  /// Keys actually sorted per rank (IS).
  std::int64_t executed_keys_per_rank = 0;
  /// Random pairs actually generated per rank (EP).
  std::int64_t executed_pairs_per_rank = 0;
};

/// The cost table. Throws for unsupported combinations.
KernelCost costFor(Benchmark b, NpbClass c);

}  // namespace mg::npb
