// Mini NAS Parallel Benchmarks over vmpi.
//
// The paper validates the MicroGrid with NPB 2.3 (EP, BT, LU, MG, IS).
// These kernels reproduce each benchmark's computation/communication
// *pattern* with real (scaled-down) numerics:
//
//   EP — embarrassingly parallel Gaussian-pair generation (NPB LCG,
//        jump-ahead per rank), one allreduce at the end;
//   IS — bucket sort with an all-to-all key exchange per iteration;
//   MG — V-cycle multigrid on a 3D slab decomposition, halo exchanges at
//        every smoothing step;
//   LU — SSOR with pipelined wavefront sweeps (plane-by-plane pipeline);
//   BT — ADI: local x/y line solves plus pipelined z sweeps.
//
// Absolute times come from the class cost model (npb/cost_model.h): each
// kernel executes a reduced problem but *charges* the full class's
// operations and transmits class-sized messages via vmpi's wire_bytes
// override. DESIGN.md §2 records this substitution.
#pragma once

#include <string>
#include <vector>

#include "autopilot/autopilot.h"
#include "grid/registry.h"
#include "vmpi/comm.h"
#include "vos/context.h"

namespace mg::npb {

enum class NpbClass { S, A };
NpbClass classFromString(const std::string& s);
std::string className(NpbClass c);

enum class Benchmark { EP, IS, MG, LU, BT };
Benchmark benchmarkFromString(const std::string& s);
std::string benchmarkName(Benchmark b);

/// One rank's outcome.
struct KernelResult {
  std::string benchmark;
  std::string npb_class;
  int rank = 0;
  int nprocs = 0;
  double seconds = 0;    // virtual wall time of the timed section
  bool verified = false;
  double checksum = 0;   // deterministic result signature
  std::int64_t bytes_sent = 0;
  std::int64_t messages_sent = 0;
};

/// Run one benchmark on an initialized communicator (all ranks call this).
KernelResult runBenchmark(Benchmark b, vmpi::Comm& comm, vos::HostContext& ctx, NpbClass cls);

KernelResult runEp(vmpi::Comm& comm, vos::HostContext& ctx, NpbClass cls);
KernelResult runIs(vmpi::Comm& comm, vos::HostContext& ctx, NpbClass cls);
KernelResult runMg(vmpi::Comm& comm, vos::HostContext& ctx, NpbClass cls);
KernelResult runLu(vmpi::Comm& comm, vos::HostContext& ctx, NpbClass cls);
KernelResult runBt(vmpi::Comm& comm, vos::HostContext& ctx, NpbClass cls);

/// Collects per-rank results from jobs launched through GRAM.
class ResultSink {
 public:
  void record(KernelResult r) { results_.push_back(std::move(r)); }
  const std::vector<KernelResult>& results() const { return results_; }
  void clear() { results_.clear(); }

  /// Longest per-rank time of the last run (the reported "execution time").
  double maxSeconds() const;
  bool allVerified() const;

 private:
  std::vector<KernelResult> results_;
};

/// Register executables "npb.ep" .. "npb.bt" (argument: class letter).
/// The sink must outlive the registry's use.
void registerNpb(grid::ExecutableRegistry& registry, ResultSink& sink);

/// Optional Autopilot instrumentation (paper §3.6): when a board is
/// installed, rank 0 of each kernel publishes "<BENCH>.progress", a periodic
/// function of its iteration counters, for a Sampler to record. Pass
/// nullptr to detach. Not owned.
void setSensorBoard(autopilot::SensorRegistry* board);
autopilot::SensorRegistry* sensorBoard();

}  // namespace mg::npb
