// IS — integer sort.
//
// Bucket sort of uniformly distributed integer keys: each iteration
// histograms the local keys, exchanges them all-to-all by destination
// bucket range, and sorts what it received. The all-to-all is the pattern
// of interest; its wire size is scaled to the class key volume.
#include <algorithm>
#include <cstring>

#include "npb/kernel_common.h"
#include "util/rng.h"

namespace mg::npb {

namespace {
constexpr std::int64_t kKeyRange = 1 << 16;
}

KernelResult runIs(vmpi::Comm& comm, vos::HostContext& ctx, NpbClass cls) {
  const KernelCost cost = costFor(Benchmark::IS, cls);
  KernelResult result = detail::makeResult(Benchmark::IS, cls, comm);
  const int p = comm.size();
  const int rank = comm.rank();
  const std::int64_t bytes0 = comm.bytesSent();
  const std::int64_t msgs0 = comm.messagesSent();

  // Deterministic per-rank keys.
  const std::int64_t n = cost.executed_keys_per_rank;
  util::NpbRandom rng;
  rng.jump(util::NpbRandom::kDefaultSeed,
           static_cast<std::uint64_t>(rank) * static_cast<std::uint64_t>(n));
  std::vector<std::int32_t> keys(static_cast<size_t>(n));
  for (auto& k : keys) k = static_cast<std::int32_t>(rng.next() * kKeyRange);

  // The class's wire volume per destination block.
  const std::int64_t class_block_bytes =
      cost.class_keys * 4 / static_cast<std::int64_t>(p) / static_cast<std::int64_t>(p);

  comm.barrier();
  const double t0 = comm.wtime();

  const double ops_per_iter = cost.total_ops / cost.class_iterations / p;
  std::vector<std::int32_t> local;
  for (int iter = 0; iter < cost.executed_iterations; ++iter) {
    detail::publishProgress(comm, "IS", iter);
    // Rank the keys (histogram + partition).
    ctx.compute(ops_per_iter);
    std::vector<std::vector<std::int32_t>> outgoing(static_cast<size_t>(p));
    for (std::int32_t k : keys) {
      const auto dest = static_cast<size_t>(static_cast<std::int64_t>(k) * p / kKeyRange);
      outgoing[dest].push_back(k);
    }
    // Personalized exchange with class-sized wire volumes.
    local = std::move(outgoing[static_cast<size_t>(rank)]);
    for (int shift = 1; shift < p; ++shift) {
      const int to = (rank + shift) % p;
      const int from = (rank - shift + p) % p;
      const auto& block = outgoing[static_cast<size_t>(to)];
      std::uint64_t send_count = block.size();
      std::uint64_t recv_count = 0;
      comm.sendRecv(to, 100, &send_count, sizeof send_count, from, 100, &recv_count,
                    sizeof recv_count);
      std::vector<std::int32_t> incoming(recv_count);
      comm.sendRecv(to, 101, block.data(), block.size() * 4, from, 101, incoming.data(),
                    incoming.size() * 4, static_cast<std::size_t>(class_block_bytes));
      local.insert(local.end(), incoming.begin(), incoming.end());
    }
    std::sort(local.begin(), local.end());
  }

  result.seconds = comm.wtime() - t0;

  // Verification: locally sorted, globally partitioned (my max <= next
  // rank's min), and no key lost.
  bool ok = std::is_sorted(local.begin(), local.end());
  const std::int32_t my_min =
      local.empty() ? static_cast<std::int32_t>(kKeyRange) : local.front();
  const std::int32_t my_max = local.empty() ? -1 : local.back();
  // Each rank passes its minimum down so rank r can check max_r <= min_{r+1}.
  std::int32_t next_min = static_cast<std::int32_t>(kKeyRange);
  vmpi::Request boundary_send;
  if (rank > 0) boundary_send = comm.isend(rank - 1, 102, &my_min, sizeof my_min);
  if (rank + 1 < p) comm.recv(rank + 1, 102, &next_min, sizeof next_min);
  if (boundary_send.valid()) comm.wait(boundary_send);
  if (rank + 1 < p && my_max > next_min) ok = false;
  std::int64_t totals[2] = {static_cast<std::int64_t>(local.size()), ok ? 0 : 1};
  comm.allreduce(totals, 2, vmpi::Op::Sum);
  result.verified = (totals[0] == n * p) && (totals[1] == 0);
  double checksum = 0;
  for (size_t i = 0; i < local.size(); i += 97) checksum += local[i];
  result.checksum = checksum;
  result.bytes_sent = comm.bytesSent() - bytes0;
  result.messages_sent = comm.messagesSent() - msgs0;
  return result;
}

}  // namespace mg::npb
