// MG — multigrid.
//
// A two-level V-cycle on a 3D Poisson problem with slab (1D z)
// decomposition. Every smoothing sweep exchanges ghost planes with both z
// neighbors, giving the frequent medium-size halo traffic that makes MG the
// most network-sensitive of the suite (the paper's Fig 17 shows its largest
// internal skew). Ghost-plane wire size is scaled to the class face.
#include <cmath>

#include "npb/kernel_common.h"

namespace mg::npb {

namespace {

using detail::SlabField;

/// One damped-Jacobi sweep of u for the Poisson problem -lap(u) = b.
/// Non-periodic boundaries: missing neighbors are treated as zero.
void jacobiSweep(SlabField& u, const SlabField& b, SlabField& scratch, bool has_down,
                 bool has_up) {
  const int n = u.n();
  const int nz = u.nz();
  const double w = 0.8;
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const double xm = x > 0 ? u.at(x - 1, y, z) : 0.0;
        const double xp = x + 1 < n ? u.at(x + 1, y, z) : 0.0;
        const double ym = y > 0 ? u.at(x, y - 1, z) : 0.0;
        const double yp = y + 1 < n ? u.at(x, y + 1, z) : 0.0;
        const double zm = (z > 0 || has_down) ? u.at(x, y, z - 1) : 0.0;
        const double zp = (z + 1 < nz || has_up) ? u.at(x, y, z + 1) : 0.0;
        const double gs = (xm + xp + ym + yp + zm + zp + b.at(x, y, z)) / 6.0;
        scratch.at(x, y, z) = (1 - w) * u.at(x, y, z) + w * gs;
      }
    }
  }
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) u.at(x, y, z) = scratch.at(x, y, z);
    }
  }
}

/// Squared residual norm of the local slab.
double residualNormSq(const SlabField& u, const SlabField& b, bool has_down, bool has_up) {
  const int n = u.n();
  const int nz = u.nz();
  double sum = 0;
  for (int z = 0; z < nz; ++z) {
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const double xm = x > 0 ? u.at(x - 1, y, z) : 0.0;
        const double xp = x + 1 < n ? u.at(x + 1, y, z) : 0.0;
        const double ym = y > 0 ? u.at(x, y - 1, z) : 0.0;
        const double yp = y + 1 < n ? u.at(x, y + 1, z) : 0.0;
        const double zm = (z > 0 || has_down) ? u.at(x, y, z - 1) : 0.0;
        const double zp = (z + 1 < nz || has_up) ? u.at(x, y, z + 1) : 0.0;
        const double r = b.at(x, y, z) - (6.0 * u.at(x, y, z) - xm - xp - ym - yp - zm - zp);
        sum += r * r;
      }
    }
  }
  return sum;
}

}  // namespace

KernelResult runMg(vmpi::Comm& comm, vos::HostContext& ctx, NpbClass cls) {
  const KernelCost cost = costFor(Benchmark::MG, cls);
  KernelResult result = detail::makeResult(Benchmark::MG, cls, comm);
  const int p = comm.size();
  const int rank = comm.rank();
  const int n = cost.executed_grid;
  if (n % p != 0) throw mg::UsageError("MG needs process count dividing the grid edge");
  const int nz = n / p;
  if (nz % 2 != 0 && p > 1) throw mg::UsageError("MG local slab must have even depth");
  const bool has_down = rank > 0;
  const bool has_up = rank + 1 < p;
  const std::int64_t bytes0 = comm.bytesSent();
  const std::int64_t msgs0 = comm.messagesSent();

  // Class-scaled ghost face: class_grid^2 doubles.
  const auto wire_face =
      static_cast<std::size_t>(cost.class_grid) * static_cast<std::size_t>(cost.class_grid) * 8;

  SlabField u(n, nz), b(n, nz), scratch(n, nz);
  SlabField uc(n / 2, nz / 2 == 0 ? 1 : nz / 2), bc(n / 2, nz / 2 == 0 ? 1 : nz / 2),
      scratch_c(n / 2, nz / 2 == 0 ? 1 : nz / 2);
  // Deterministic source term: +1/-1 spikes spread through the cube.
  for (int z = 0; z < nz; ++z) {
    const int gz = rank * nz + z;
    for (int y = 0; y < n; ++y) {
      for (int x = 0; x < n; ++x) {
        const int h = (x * 313 + y * 127 + gz * 719) % 97;
        b.at(x, y, z) = (h == 0) ? 1.0 : (h == 1 ? -1.0 : 0.0);
      }
    }
  }

  comm.barrier();
  const double t0 = comm.wtime();

  // Per-cycle smoothing structure: 2 fine pre-smooth, 2 coarse, 2 fine
  // post-smooth = 6 charged sweeps per cycle.
  const double ops_per_sweep = cost.total_ops / cost.class_iterations / 6.0 / p;

  double initial = 0, current = 0;
  {
    double norm = residualNormSq(u, b, has_down, has_up);
    comm.allreduce(&norm, 1, vmpi::Op::Sum);
    initial = std::sqrt(norm);
  }

  for (int cycle = 0; cycle < cost.executed_iterations; ++cycle) {
    detail::publishProgress(comm, "MG", cycle);
    // Pre-smooth on the fine level.
    for (int s = 0; s < 2; ++s) {
      detail::exchangeHalo(comm, u, 200, wire_face);
      ctx.compute(ops_per_sweep);
      jacobiSweep(u, b, scratch, has_down, has_up);
    }
    // Restrict the residual to the coarse level (injection).
    detail::exchangeHalo(comm, u, 201, wire_face);
    for (int z = 0; z < uc.nz(); ++z) {
      for (int y = 0; y < uc.n(); ++y) {
        for (int x = 0; x < uc.n(); ++x) {
          const int fx = 2 * x, fy = 2 * y, fz = 2 * z;
          const double r =
              b.at(fx, fy, fz) - (6.0 * u.at(fx, fy, fz) - (fx > 0 ? u.at(fx - 1, fy, fz) : 0) -
                                  (fx + 1 < n ? u.at(fx + 1, fy, fz) : 0) -
                                  (fy > 0 ? u.at(fx, fy - 1, fz) : 0) -
                                  (fy + 1 < n ? u.at(fx, fy + 1, fz) : 0) -
                                  ((fz > 0 || has_down) ? u.at(fx, fy, fz - 1) : 0) -
                                  ((fz + 1 < nz || has_up) ? u.at(fx, fy, fz + 1) : 0));
          bc.at(x, y, z) = r;
          uc.at(x, y, z) = 0;
        }
      }
    }
    // Coarse smoothing (quarter-size faces on the wire).
    for (int s = 0; s < 2; ++s) {
      detail::exchangeHalo(comm, uc, 202, wire_face / 4);
      ctx.compute(ops_per_sweep);
      jacobiSweep(uc, bc, scratch_c, has_down, has_up);
    }
    // Prolongate (injection) and post-smooth.
    for (int z = 0; z < uc.nz(); ++z) {
      for (int y = 0; y < uc.n(); ++y) {
        for (int x = 0; x < uc.n(); ++x) {
          u.at(2 * x, 2 * y, 2 * z) += uc.at(x, y, z);
        }
      }
    }
    for (int s = 0; s < 2; ++s) {
      detail::exchangeHalo(comm, u, 203, wire_face);
      ctx.compute(ops_per_sweep);
      jacobiSweep(u, b, scratch, has_down, has_up);
    }
    double norm = residualNormSq(u, b, has_down, has_up);
    comm.allreduce(&norm, 1, vmpi::Op::Sum);
    current = std::sqrt(norm);
  }

  result.seconds = comm.wtime() - t0;
  result.verified = std::isfinite(current) && current < initial;
  result.checksum = current;
  result.bytes_sent = comm.bytesSent() - bytes0;
  result.messages_sent = comm.messagesSent() - msgs0;
  return result;
}

}  // namespace mg::npb
