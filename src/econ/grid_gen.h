// Generated multi-cluster grids for economy experiments.
//
// makeEconGrid() builds a VirtualGridConfig the usual way — a WAN core
// router, one switch + head node + worker hosts per cluster — plus the
// economic metadata the broker trades on: per-cluster core speed, posted
// price, and queue policy. Speeds and prices are deliberately misaligned
// (fast clusters are disproportionately expensive), so cost-optimizing and
// deadline-optimizing brokers genuinely pick different clusters and the
// policy-comparison table in examples/grid_economy.cpp has something to say.
#pragma once

#include <string>
#include <vector>

#include "core/virtual_grid.h"
#include "econ/batch_queue.h"
#include "util/config.h"

namespace mg::econ {

/// One generated cluster and its economic posture.
struct EconCluster {
  std::string name;       // "c3"
  std::string head;       // head-node hostname ("c3-head"); transfers land here
  int site = 0;           // data-site index == cluster index
  int slots = 0;          // worker hosts x cores per host
  double core_ops = 1e9;  // per-core speed
  double price_per_cpu_s = 1.0;
  QueuePolicy policy = QueuePolicy::EasyBackfill;
};

/// Shape of the generated grid. Parse an INI [grid] section to override:
///
///   [grid]
///   clusters = 8
///   hosts_per_cluster = 32
///   cores_per_host = 4
///   wan_bandwidth = 10Gbps
///   wan_latency = 20ms
///   lan_bandwidth = 1Gbps
///   lan_latency = 0.1ms
///   base_core_ops = 1GHz
///   timeshared_every = 4   ; every Nth cluster is time-shared (0 = none)
struct EconGridSpec {
  int clusters = 8;
  int hosts_per_cluster = 32;
  int cores_per_host = 4;
  double wan_bandwidth_bps = 10e9;
  double wan_latency_s = 0.02;
  double lan_bandwidth_bps = 1e9;
  double lan_latency_s = 1e-4;
  double base_core_ops = 1e9;
  int timeshared_every = 4;

  static EconGridSpec fromConfig(const util::Config& cfg);
  void validate() const;
};

struct EconGrid {
  core::VirtualGridConfig grid;
  std::vector<EconCluster> clusters;
};

EconGrid makeEconGrid(const EconGridSpec& spec);

}  // namespace mg::econ
