#include "econ/economy.h"

#include <algorithm>
#include <cmath>

#include "net/flow_network.h"
#include "obs/sampler.h"
#include "util/error.h"

namespace mg::econ {

namespace {
constexpr const char* kGisBase = "ou=MicroGrid, o=Grid";
/// Bounded-slowdown runtime floor (the standard 10 s threshold, so
/// sub-second jobs don't dominate the quantiles).
constexpr double kSlowdownFloorS = 10.0;
}  // namespace

// ---------------------------------------------------------------------------
// PsPool: GPS processor sharing in virtual-work time.
// ---------------------------------------------------------------------------

double GridEconomy::PsPool::rate() const {
  return load > 0 ? std::min(1.0, static_cast<double>(cores) / load) : 0.0;
}

void GridEconomy::PsPool::integrate(double now_s) {
  if (now_s > last_s) v += (now_s - last_s) * rate();
  last_s = now_s;
}

void GridEconomy::PsPool::add(std::int64_t id, int cpus, double work_s, double now_s) {
  integrate(now_s);
  const double fv = v + work_s;
  by_finish[{fv, id}] = cpus;
  finish_v[id] = fv;
  load += cpus;
}

bool GridEconomy::PsPool::remove(std::int64_t id, double now_s) {
  auto it = finish_v.find(id);
  if (it == finish_v.end()) return false;
  integrate(now_s);
  auto bit = by_finish.find({it->second, id});
  load -= bit->second;
  by_finish.erase(bit);
  finish_v.erase(it);
  return true;
}

bool GridEconomy::PsPool::nextFinish(double& when_s, std::int64_t& id) const {
  if (by_finish.empty()) return false;
  const auto& [key, cpus] = *by_finish.begin();
  (void)cpus;
  when_s = last_s + (key.first - v) / rate();
  id = key.second;
  return true;
}

// ---------------------------------------------------------------------------
// GridEconomy
// ---------------------------------------------------------------------------

GridEconomy::GridEconomy(core::MicroGridPlatform& platform, const EconGrid& grid,
                         const EconOptions& opts)
    : platform_(platform),
      sim_(platform.simulator()),
      opts_(opts),
      gen_(opts.workload, static_cast<int>(grid.clusters.size())),
      broker_(Broker::Options{opts.policy, opts.workload.ref_core_ops, 1e9}),
      gis_base_(gis::Dn::parse(kGisBase)),
      slowdown_hist_(1.0, 201.0, 2000),
      user_slowdown_sum_(static_cast<std::size_t>(opts.workload.users), 0.0),
      user_jobs_(static_cast<std::size_t>(opts.workload.users), 0),
      c_submitted_(sim_.metrics().counter("econ.jobs.submitted")),
      c_completed_(sim_.metrics().counter("econ.jobs.completed")),
      c_misses_(sim_.metrics().counter("econ.jobs.deadline_misses")),
      c_rejected_budget_(sim_.metrics().counter("econ.jobs.rejected_budget")),
      c_rejected_unplaceable_(sim_.metrics().counter("econ.jobs.rejected_unplaceable")),
      c_resubmits_(sim_.metrics().counter("econ.jobs.resubmits")),
      c_backfills_(sim_.metrics().counter("econ.queue.backfill_starts")),
      c_transfers_(sim_.metrics().counter("econ.data.transfers")),
      c_failed_(sim_.metrics().counter("econ.jobs.failed")) {
  for (const EconCluster& m : grid.clusters) {
    BatchQueue::Options q;
    q.slots = m.slots;
    q.policy = m.policy;
    q.backfill_window = opts_.backfill_window;
    q.oversubscribe = opts_.oversubscribe;
    auto [it, inserted] = clusters_.emplace(m.name, Cluster(m, q));
    if (!inserted) throw ConfigError("econ: duplicate cluster name " + m.name);
    it->second.head_node = platform_.mapper().resolve(m.head).node;
  }
  // Data-site index -> that cluster's head node, in site order.
  broker_.setTransferEstimator(
      [this](int from_site, const ClusterView& to, std::int64_t bytes) {
        auto tit = clusters_.find(to.name);
        if (tit == clusters_.end()) return 1e9;
        net::NodeId src = net::kNoNode;
        for (const auto& [name, c] : clusters_) {
          if (c.meta.site == from_site) {
            src = c.head_node;
            break;
          }
        }
        if (src == net::kNoNode) return 1e9;
        net::FlowEngine* fe = platform_.network().flows();
        if (!fe) return static_cast<double>(bytes) * 8.0 / 1e9;
        try {
          const sim::SimTime net_t = fe->estimate(src, tit->second.head_node, bytes);
          return platform_.virtualTime().toVirtualSeconds(
              platform_.network().scaleDuration(net_t));
        } catch (const Error&) {
          return 1e9;  // currently unroutable; effectively infeasible
        }
      });
}

void GridEconomy::registerTelemetry(obs::TelemetrySampler& sampler) {
  sampler.addLevel("econ.active_jobs",
                   [this](std::int64_t) { return static_cast<double>(active_.size()); });
  sampler.addCounterRate("econ.submitted_per_s", c_submitted_);
  sampler.addCounterRate("econ.completed_per_s", c_completed_);
  for (auto& [name, cluster] : clusters_) {
    const Cluster* c = &cluster;
    sampler.addLevel("econ.queue.depth." + name,
                     [c](std::int64_t) { return static_cast<double>(c->queue.depth()); });
    sampler.addLevel("econ.queue.backlog_s." + name,
                     [c](std::int64_t) { return c->queue.backlogSeconds(); });
    sampler.addLevel("econ.running." + name,
                     [c](std::int64_t) { return static_cast<double>(c->queue.runningCount()); });
    // The broker's picture of the same cluster — stale by up to one GIS
    // refresh interval (plus TTL effects when the cluster crashed).
    sampler.addLevel("econ.broker.view_backlog_s." + name, [this, name = name](std::int64_t) {
      const auto& views = broker_.views();
      auto it = views.find(name);
      return it == views.end() ? 0.0 : it->second.backlog_s;
    });
  }
}

void GridEconomy::registerStateCapture(obs::StateCaptureRegistry& reg) {
  reg.add("econ", [this](obs::StateWriter& w) {
    w.u64("econ.clusters", clusters_.size());
    for (const auto& [name, c] : clusters_) {
      w.str("cluster", name);
      w.boolean("alive", c.alive);
      w.i64("queue_depth", c.queue.depth());
      w.i64("running", c.queue.runningCount());
      w.f64("backlog_s", c.queue.backlogSeconds());
      w.i64("ps_load", c.ps.load);
      w.f64("ps_v", c.ps.v);
    }
    w.u64("econ.active", active_.size());
    for (const auto& [id, a] : active_) {
      w.i64("job", id);
      w.str("cluster", a.cluster);
      w.boolean("running", a.running);
      w.boolean("backing_off", a.backing_off);
      w.i64("resubmits", a.resubmits);
      w.f64("start_s", a.start_s);
    }
    w.boolean("have_next", have_next_);
    if (have_next_) w.f64("next_submit_s", next_job_.submit_s);
  });
}

void GridEconomy::arm() {
  if (armed_) throw UsageError("GridEconomy::arm called twice");
  armed_ = true;
  publishGis();
  broker_.refreshFromGis(gis_, gis_base_, 0.0);
  have_next_ = gen_.next(next_job_);
  scheduleNextArrival();
  sim_.scheduleAt(kernelAt(opts_.gis_refresh_s), [this] { refreshLoop(); });
}

void GridEconomy::scheduleNextArrival() {
  if (!have_next_) return;
  const sim::SimTime t = std::max(sim_.now(), kernelAt(next_job_.submit_s));
  sim_.scheduleAt(t, [this] {
    Job job = next_job_;
    have_next_ = gen_.next(next_job_);
    scheduleNextArrival();
    handleArrival(job, 0);
  });
}

void GridEconomy::handleArrival(Job job, int resubmits) {
  if (resubmits == 0) {
    c_submitted_.inc();
    ++rpt_.submitted;
  }
  placeJob(job, resubmits);
}

void GridEconomy::placeJob(Job job, int resubmits) {
  const Placement p = broker_.place(job, now_s());
  if (!p.placed) {
    if (p.reject_reason && std::string(p.reject_reason) == "budget") {
      c_rejected_budget_.inc();
      ++rpt_.rejected_budget;
    } else {
      c_rejected_unplaceable_.inc();
      ++rpt_.rejected_unplaceable;
    }
    active_.erase(job.id);
    return;
  }
  Cluster& c = clusters_.at(p.cluster);
  Active& a = active_[job.id];
  a.job = job;
  a.cluster = p.cluster;
  a.runtime_c = job.runtime_s * (opts_.workload.ref_core_ops / c.meta.core_ops);
  a.start_s = -1;
  a.resubmits = resubmits;
  a.running = false;
  a.backing_off = false;
  a.finish_event = 0;
  const double est_c = job.est_runtime_s * (opts_.workload.ref_core_ops / c.meta.core_ops);
  broker_.noteScheduled(p.cluster, job.cpus, est_c * job.cpus);

  if (opts_.flow_transfers && job.input_bytes > 0 && job.data_site >= 0 &&
      job.data_site != c.meta.site) {
    startTransfer(job, c, resubmits);
  } else {
    enqueue(job, c, resubmits);
  }
}

void GridEconomy::startTransfer(const Job& job, Cluster& c, int resubmits) {
  net::FlowEngine* fe = platform_.network().flows();
  net::NodeId src = net::kNoNode;
  for (const auto& [name, cl] : clusters_) {
    if (cl.meta.site == job.data_site) {
      src = cl.head_node;
      break;
    }
  }
  if (!fe || src == net::kNoNode || src == c.head_node) {
    enqueue(job, c, resubmits);
    return;
  }
  const std::int64_t id = job.id;
  try {
    fe->start(
        src, c.head_node, job.input_bytes,
        [this, id] {
          auto it = active_.find(id);
          if (it == active_.end() || it->second.backing_off) return;
          auto cit = clusters_.find(it->second.cluster);
          if (cit == clusters_.end() || !cit->second.alive) {
            resubmit(id, "cluster_down");
            return;
          }
          enqueue(it->second.job, cit->second, it->second.resubmits);
        },
        [this, id](const std::string& reason) { resubmit(id, reason); });
    c_transfers_.inc();
    ++rpt_.transfers;
    rpt_.transfer_bytes += job.input_bytes;
  } catch (const Error&) {
    // Source or destination currently unroutable: treat like an abort.
    resubmit(id, "transfer_unroutable");
  }
}

void GridEconomy::enqueue(const Job& job, Cluster& c, int resubmits) {
  (void)resubmits;
  QueuedJob q;
  q.id = job.id;
  q.cpus = job.cpus;
  q.est_runtime_s = job.est_runtime_s * (opts_.workload.ref_core_ops / c.meta.core_ops);
  q.submit_s = now_s();
  c.queue.submit(q, q.submit_s);
  pump(c);
}

void GridEconomy::pump(Cluster& c) {
  for (const StartedJob& s : c.queue.dispatch(now_s())) startJob(c, s);
}

void GridEconomy::startJob(Cluster& c, const StartedJob& s) {
  auto it = active_.find(s.job.id);
  if (it == active_.end()) return;
  Active& a = it->second;
  const double now = now_s();
  a.start_s = now;
  a.running = true;
  if (s.backfilled) {
    c_backfills_.inc();
    ++rpt_.backfill_starts;
  }
  if (c.meta.policy == QueuePolicy::TimeShared) {
    c.ps.add(a.job.id, a.job.cpus, a.runtime_c, now);
    armPsEvent(c);
  } else {
    const std::int64_t id = a.job.id;
    a.finish_event = sim_.scheduleAt(std::max(sim_.now(), kernelAt(now + a.runtime_c)),
                                     [this, id, name = c.meta.name] {
                                       auto cit = clusters_.find(name);
                                       if (cit != clusters_.end()) finishJob(cit->second, id);
                                     });
  }
}

void GridEconomy::armPsEvent(Cluster& c) {
  if (c.ps_event != 0) {
    sim_.cancel(c.ps_event);
    c.ps_event = 0;
  }
  double when = 0;
  std::int64_t id = 0;
  if (!c.ps.nextFinish(when, id)) return;
  // +1 ns past the converted finish time, so the guard below never spins on
  // float/integer rounding.
  const sim::SimTime t = std::max(sim_.now(), kernelAt(when) + 1);
  c.ps_event = sim_.scheduleAt(t, [this, name = c.meta.name] {
    auto cit = clusters_.find(name);
    if (cit == clusters_.end()) return;
    Cluster& cl = cit->second;
    cl.ps_event = 0;
    double w = 0;
    std::int64_t jid = 0;
    while (cl.ps.nextFinish(w, jid) && kernelAt(w) < sim_.now()) finishJob(cl, jid);
    armPsEvent(cl);
  });
}

void GridEconomy::finishJob(Cluster& c, std::int64_t id) {
  auto it = active_.find(id);
  if (it == active_.end()) return;
  const Active a = it->second;
  active_.erase(it);
  const double now = now_s();
  if (c.meta.policy == QueuePolicy::TimeShared) c.ps.remove(id, now);
  c.queue.finish(id);

  const double wait = std::max(0.0, a.start_s - a.job.submit_s);
  const double run = std::max(1e-9, now - a.start_s);
  const double slowdown = std::max(1.0, (wait + run) / std::max(run, kSlowdownFloorS));
  slowdown_hist_.add(slowdown);
  wait_sum_ += wait;
  if (a.job.user < user_jobs_.size()) {
    user_slowdown_sum_[a.job.user] += slowdown;
    user_jobs_[a.job.user] += 1;
  }
  rpt_.budget_offered += a.job.budget;
  rpt_.budget_spent += c.meta.price_per_cpu_s * a.job.cpus * a.runtime_c;
  if (now > a.job.deadline_s) {
    c_misses_.inc();
    ++rpt_.deadline_misses;
  }
  c_completed_.inc();
  ++rpt_.completed;
  ++rpt_.per_cluster[c.meta.name];
  rpt_.makespan_s = std::max(rpt_.makespan_s, now);
  pump(c);
}

void GridEconomy::resubmit(std::int64_t id, const std::string& reason) {
  (void)reason;
  auto it = active_.find(id);
  if (it == active_.end()) return;
  Active& a = it->second;
  if (a.backing_off) return;  // already on its way back through the broker
  // Undo any queue/pool residue on the old cluster (covers flow-abort while
  // queued and crash requeues alike; cluster may already be rebuilt).
  auto cit = clusters_.find(a.cluster);
  if (cit != clusters_.end()) {
    cit->second.queue.cancel(id);
    if (a.running) {
      if (cit->second.meta.policy == QueuePolicy::TimeShared) {
        if (cit->second.ps.remove(id, now_s())) armPsEvent(cit->second);
      }
      cit->second.queue.finish(id);
    }
  }
  if (a.finish_event != 0) {
    sim_.cancel(a.finish_event);
    a.finish_event = 0;
  }
  a.running = false;
  a.start_s = -1;
  if (a.resubmits >= opts_.max_resubmits) {
    c_failed_.inc();
    ++rpt_.failed;
    active_.erase(it);
    return;
  }
  a.resubmits += 1;
  a.backing_off = true;
  c_resubmits_.inc();
  ++rpt_.resubmits;
  const double backoff =
      opts_.resubmit_backoff_s * static_cast<double>(std::int64_t{1} << (a.resubmits - 1));
  const Job job = a.job;
  const int n = a.resubmits;
  sim_.scheduleAt(std::max(sim_.now(), kernelAt(now_s() + backoff)),
                  [this, job, n] { placeJob(job, n); });
}

void GridEconomy::publishGis() {
  const double now = now_s();
  for (auto& [name, c] : clusters_) {
    ClusterView v;
    v.name = name;
    v.head_host = c.meta.head;
    v.site = c.meta.site;
    v.slots = c.meta.slots;
    v.free_slots = c.queue.freeSlots();
    v.queue_depth = c.queue.depth();
    v.backlog_s = c.queue.estimateWait(1, now);
    v.price_per_cpu_s = c.meta.price_per_cpu_s;
    v.core_ops = c.meta.core_ops;
    v.alive = c.alive;
    gis::Record r = makeQueueRecord(gis_base_, v);
    // A dead cluster's record expires immediately: the broker's next
    // TTL-honoring search simply stops seeing it (the PR 2 mechanism).
    if (!c.alive) r.set(gis::kAttrExpires, obs::formatDouble(now));
    gis_.upsert(std::move(r));
  }
}

void GridEconomy::refreshLoop() {
  publishGis();
  broker_.refreshFromGis(gis_, gis_base_, now_s());
  if (!have_next_ && active_.empty()) return;  // drained: let the run end
  sim_.scheduleAt(kernelAt(now_s() + opts_.gis_refresh_s), [this] { refreshLoop(); });
}

void GridEconomy::scheduleCrash(const std::string& cluster, double at_s) {
  if (clusters_.find(cluster) == clusters_.end()) {
    throw ConfigError("econ: unknown cluster " + cluster);
  }
  sim_.scheduleAt(kernelAt(at_s), [this, cluster] { crashCluster(cluster); });
}

void GridEconomy::scheduleRestart(const std::string& cluster, double at_s) {
  if (clusters_.find(cluster) == clusters_.end()) {
    throw ConfigError("econ: unknown cluster " + cluster);
  }
  sim_.scheduleAt(kernelAt(at_s), [this, cluster] { restartCluster(cluster); });
}

void GridEconomy::crashCluster(const std::string& name) {
  Cluster& c = clusters_.at(name);
  if (!c.alive) return;
  c.alive = false;
  // Node-down aborts every flow through the head; each abort callback lands
  // in resubmit() before we collect the rest below.
  platform_.crashHost(c.meta.head);
  broker_.noteDown(name);
  publishGis();

  std::vector<std::int64_t> affected;
  for (const auto& [id, a] : active_) {
    if (a.cluster == name) affected.push_back(id);
  }
  // Reset the queue/pool wholesale; resubmit() then treats each job as
  // already evicted.
  c.queue = BatchQueue(c.queue.options());
  if (c.ps_event != 0) {
    sim_.cancel(c.ps_event);
    c.ps_event = 0;
  }
  c.ps = PsPool{};
  c.ps.cores = c.meta.slots;
  c.ps.last_s = now_s();
  for (std::int64_t id : affected) resubmit(id, "cluster_down");
}

void GridEconomy::restartCluster(const std::string& name) {
  Cluster& c = clusters_.at(name);
  if (c.alive) return;
  c.alive = true;
  platform_.restartHost(c.meta.head);
  publishGis();
  broker_.refreshFromGis(gis_, gis_base_, now_s());
}

EconReport GridEconomy::report() {
  rpt_.slowdown_p50 = slowdown_hist_.quantile(0.50);
  rpt_.slowdown_p95 = slowdown_hist_.quantile(0.95);
  rpt_.slowdown_p99 = slowdown_hist_.quantile(0.99);
  rpt_.mean_wait_s = rpt_.completed ? wait_sum_ / static_cast<double>(rpt_.completed) : 0;
  rpt_.throughput_jobs_s =
      rpt_.makespan_s > 0 ? static_cast<double>(rpt_.completed) / rpt_.makespan_s : 0;
  // Jain fairness over per-user mean slowdown: (sum x)^2 / (n * sum x^2).
  // Pure sums, so the result is independent of completion order.
  double sx = 0, sxx = 0;
  std::int64_t n = 0;
  for (std::size_t u = 0; u < user_jobs_.size(); ++u) {
    if (user_jobs_[u] == 0) continue;
    const double x = user_slowdown_sum_[u] / user_jobs_[u];
    sx += x;
    sxx += x * x;
    ++n;
  }
  rpt_.fairness = (n > 0 && sxx > 0) ? (sx * sx) / (static_cast<double>(n) * sxx) : 1.0;
  return rpt_;
}

std::string EconReport::render() const {
  std::string out = "== grid economy report ==\n";
  util::Table t({"metric", "value"});
  auto add = [&t](const std::string& k, const std::string& v) { t.addRow({k, v}); };
  add("jobs.submitted", std::to_string(submitted));
  add("jobs.completed", std::to_string(completed));
  add("jobs.deadline_misses", std::to_string(deadline_misses));
  add("jobs.deadline_miss_rate", obs::formatDouble(missRate()));
  add("jobs.rejected_budget", std::to_string(rejected_budget));
  add("jobs.rejected_unplaceable", std::to_string(rejected_unplaceable));
  add("jobs.failed", std::to_string(failed));
  add("jobs.resubmits", std::to_string(resubmits));
  add("queue.backfill_starts", std::to_string(backfill_starts));
  add("data.transfers", std::to_string(transfers));
  add("data.transfer_bytes", std::to_string(transfer_bytes));
  add("time.makespan_s", obs::formatDouble(makespan_s));
  add("rate.throughput_jobs_s", obs::formatDouble(throughput_jobs_s));
  add("slowdown.p50", obs::formatDouble(slowdown_p50));
  add("slowdown.p95", obs::formatDouble(slowdown_p95));
  add("slowdown.p99", obs::formatDouble(slowdown_p99));
  add("wait.mean_s", obs::formatDouble(mean_wait_s));
  add("fairness.jain", obs::formatDouble(fairness));
  add("budget.offered", obs::formatDouble(budget_offered));
  add("budget.spent", obs::formatDouble(budget_spent));
  out += t.render();
  if (!per_cluster.empty()) {
    out += "\n-- completed jobs per cluster --\n";
    util::Table pc({"cluster", "completed"});
    for (const auto& [name, count] : per_cluster) pc.addRow({name, std::to_string(count)});
    out += pc.render();
  }
  return out;
}

}  // namespace mg::econ
