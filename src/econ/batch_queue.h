// Batch queue scheduling policies (the "local resource manager" the broker
// and the GRAM batch jobmanager share).
//
// A BatchQueue is a pure policy object: it owns slot accounting and queue
// order but no clock and no events. Callers feed it time explicitly —
// submit(job, now), finish(id), dispatch(now) — and it answers with the jobs
// that may start. That keeps the same code exact in both worlds it serves:
// the event-driven million-job economy simulation (src/econ/economy.*) and
// the full-fidelity GRAM gatekeeper batch mode (src/grid/gram.*).
//
// Three policies:
//  * Fcfs          — strict arrival order; head-of-line blocking and all.
//  * EasyBackfill  — FCFS plus EASY (aggressive) backfilling: the queue head
//                    gets a shadow-time reservation computed from running
//                    jobs' user estimates, and later jobs may jump ahead only
//                    if they cannot delay that reservation. The scan is
//                    capped at `backfill_window` candidates so dispatch stays
//                    O(window + running), not O(depth), at million-job scale.
//  * TimeShared    — admit up to `oversubscribe` x slots cores and let the
//                    caller stretch runtimes (processor sharing); queue past
//                    that point, FCFS.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

namespace mg::econ {

enum class QueuePolicy { Fcfs, EasyBackfill, TimeShared };
QueuePolicy parseQueuePolicy(const std::string& s);
const char* queuePolicyName(QueuePolicy p);

/// What the queue needs to know about a job. `est_runtime_s` is the user's
/// estimate (reservations use it; actual completion is the caller's business).
struct QueuedJob {
  std::int64_t id = 0;
  int cpus = 1;
  double est_runtime_s = 0;
  double submit_s = 0;
};

struct StartedJob {
  QueuedJob job;
  bool backfilled = false;  // started ahead of an older queued job
};

class BatchQueue {
 public:
  struct Options {
    int slots = 8;  // schedulable cores
    QueuePolicy policy = QueuePolicy::EasyBackfill;
    int backfill_window = 64;  // queued jobs examined beyond the head
    int oversubscribe = 4;     // TimeShared admission cap multiplier
  };

  explicit BatchQueue(const Options& opt);

  /// Widest job this queue can ever run; wider submissions are the caller's
  /// error to reject.
  int maxWidth() const;

  /// Enqueue. Does not start anything — call dispatch() after.
  void submit(const QueuedJob& job, double now);

  /// Remove a still-queued job. False if unknown or already running.
  bool cancel(std::int64_t id);

  /// Release the cores of a running job. False if the id is not running.
  bool finish(std::int64_t id);

  /// Start every job the policy allows at `now`, in deterministic order.
  std::vector<StartedJob> dispatch(double now);

  int freeSlots() const { return opt_.slots - used_; }
  int usedSlots() const { return used_; }
  int depth() const { return static_cast<int>(queue_.size()); }
  int runningCount() const { return static_cast<int>(running_.size()); }
  const Options& options() const { return opt_; }

  /// Estimated seconds until a hypothetical (cpus, est_runtime_s) arrival
  /// would start: remaining running work plus queued work, normalized by
  /// slot count. Zero when it would start immediately. A heuristic for
  /// broker ranking, not a promise.
  double estimateWait(int cpus, double now) const;

  /// Queued work in cpu-seconds / slots — the "backlog depth" metric.
  double backlogSeconds() const;

 private:
  struct Running {
    int cpus = 0;
    double expected_end_s = 0;  // start + user estimate; reservations use this
  };

  bool tryStart(const QueuedJob& job, double now);

  Options opt_;
  int used_ = 0;
  std::deque<QueuedJob> queue_;
  std::map<std::int64_t, Running> running_;
};

}  // namespace mg::econ
