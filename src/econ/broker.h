// The grid broker: deadline/budget-constrained placement over live GIS state.
//
// Each cluster's batch queue publishes a GridBatchQueue record into the GIS
// (slots, free slots, queue depth, backlog, price, core speed). The broker
// periodically refreshes a cached view from those records — MDS-style, so
// between refreshes its picture is a little stale, exactly like a real
// Globus broker's — and places each incoming job by one of three policies:
//
//   Cost      minimize estimated spend among budget-feasible clusters
//   Deadline  minimize estimated finish time among budget-feasible clusters
//   Locality  prefer the cluster already holding the job's input data
//
// Estimated finish = transfer (if the input lives elsewhere) + queue wait
// (the published backlog) + runtime scaled by the cluster's core speed.
// Jobs whose cheapest feasible run still exceeds their budget are rejected
// up front. All tie-breaks are by cluster name, so placement is a pure
// deterministic function of (job, cached view).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "econ/workload.h"
#include "gis/directory.h"

namespace mg::econ {

enum class BrokerPolicy { Cost, Deadline, Locality };
BrokerPolicy parseBrokerPolicy(const std::string& s);
const char* brokerPolicyName(BrokerPolicy p);

/// objectclass of the per-cluster queue advertisement record.
inline constexpr const char* kQueueObjectClass = "GridBatchQueue";

/// One cluster's advertised state, as the broker sees it.
struct ClusterView {
  std::string name;
  std::string head_host;      // gatekeeper / head-node host name
  int site = -1;              // data-site index (matches Job::data_site)
  int slots = 0;              // total schedulable cores
  int free_slots = 0;
  int queue_depth = 0;
  double backlog_s = 0;       // published wait estimate (cpu-seconds / slots)
  double price_per_cpu_s = 1; // currency per cpu-second
  double core_ops = 1e9;      // per-core speed (ops/sec)
  bool alive = true;
};

/// Serialize a view as "cn=<name>, <base>" (inverse: queueViewFromRecord).
gis::Record makeQueueRecord(const gis::Dn& base, const ClusterView& view);
ClusterView queueViewFromRecord(const gis::Record& record);

struct Placement {
  bool placed = false;
  std::string cluster;          // chosen cluster (when placed)
  double est_finish_s = 0;      // broker's finish estimate (absolute)
  double est_cost = 0;          // broker's spend estimate
  const char* reject_reason = nullptr;  // "budget" or "no_fit" when !placed
};

class Broker {
 public:
  struct Options {
    BrokerPolicy policy = BrokerPolicy::Deadline;
    /// Reference core speed job runtimes are quoted against (must match the
    /// workload's ref_core_ops).
    double ref_core_ops = 1e9;
    /// Fallback transfer model when no estimator is injected: bytes / rate.
    double transfer_rate_bps = 1e9;
  };

  /// Seconds a cross-site transfer of `bytes` from `from_site` to the named
  /// cluster takes. Injected by the economy driver so the broker can price
  /// data movement with the flow network without linking against it.
  using TransferEstimator =
      std::function<double(int from_site, const ClusterView& to, std::int64_t bytes)>;

  explicit Broker(const Options& opt);

  void setTransferEstimator(TransferEstimator fn) { estimate_transfer_ = std::move(fn); }

  /// Replace the cached cluster views wholesale (driver-side refresh).
  void updateView(std::vector<ClusterView> views);

  /// Rebuild the cache from GridBatchQueue records under `base`, honoring
  /// Record_Expires TTLs (a crashed cluster's stale record vanishes).
  void refreshFromGis(const gis::Directory& dir, const gis::Dn& base, double now);

  /// Choose a cluster for `job` at virtual time `now`.
  Placement place(const Job& job, double now) const;

  /// Optimistically debit a placement from the cached view so the jobs that
  /// arrive before the next refresh don't all herd onto the same cluster.
  void noteScheduled(const std::string& cluster, int cpus, double est_cpu_seconds);

  /// Drop a cluster from the cache immediately (observed failure).
  void noteDown(const std::string& cluster);

  const std::map<std::string, ClusterView>& views() const { return views_; }
  const Options& options() const { return opt_; }

 private:
  double transferSeconds(const Job& job, const ClusterView& v) const;

  Options opt_;
  TransferEstimator estimate_transfer_;
  std::map<std::string, ClusterView> views_;  // name -> view (ordered: determinism)
};

}  // namespace mg::econ
