// The grid economy driver: an event-driven million-job day in the life.
//
// GridEconomy wires the three econ layers onto a MicroGridPlatform:
//
//   WorkloadGenerator --arrivals--> Broker --placement--> BatchQueue (per
//   cluster) --dispatch--> compute (scheduled finish events, or a GPS
//   processor-sharing pool on time-shared clusters) --> metrics/report
//
// Everything runs as kernel events — never processes — because sim
// processes are OS threads and a million jobs must cost a million *events*,
// not a million threads. Data staging is a real fluid flow on the
// platform's network (so transfers contend, and a mid-transfer fault aborts
// and triggers resubmission); each cluster advertises its queue state into
// a GIS directory on a refresh interval, and the broker places from that
// (slightly stale, MDS-style) picture.
//
// Fault path: crashCluster() crashes the head host on the platform, stamps
// the cluster's GIS record with Record_Expires (the PR 2 TTL mechanism), and
// requeues the cluster's in-flight jobs through the broker with doubling
// backoff — the same resubmission discipline the launcher uses.
//
// Determinism: all state lives in ordered containers, the workload is a pure
// function of its seed, fairness is computed from order-independent per-user
// sums, and the report renders through obs::formatDouble — so two runs with
// the same spec produce byte-identical reports.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/microgrid_platform.h"
#include "econ/batch_queue.h"
#include "econ/broker.h"
#include "econ/grid_gen.h"
#include "econ/workload.h"
#include "gis/directory.h"
#include "obs/metrics.h"
#include "util/stats.h"

namespace mg::econ {

struct EconOptions {
  WorkloadSpec workload;
  BrokerPolicy policy = BrokerPolicy::Deadline;
  /// Seconds between GIS refreshes of the broker's cluster view.
  double gis_refresh_s = 30;
  /// Resubmission: first backoff doubles each attempt; jobs exceeding
  /// max_resubmits are dropped as failed.
  double resubmit_backoff_s = 5;
  int max_resubmits = 5;
  /// Model input staging as fluid flows on the platform network (off = jobs
  /// enqueue immediately, for pure scheduling studies).
  bool flow_transfers = true;
  /// Slot-accounting knobs forwarded to every cluster's BatchQueue.
  int backfill_window = 64;
  int oversubscribe = 4;
};

/// End-of-run accounting, in the availability-report style.
struct EconReport {
  std::int64_t submitted = 0;
  std::int64_t completed = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t rejected_budget = 0;
  std::int64_t rejected_unplaceable = 0;
  std::int64_t failed = 0;  // exhausted resubmission attempts
  std::int64_t resubmits = 0;
  std::int64_t backfill_starts = 0;
  std::int64_t transfers = 0;
  std::int64_t transfer_bytes = 0;
  double makespan_s = 0;  // last completion time (virtual)
  double throughput_jobs_s = 0;
  double slowdown_p50 = 0, slowdown_p95 = 0, slowdown_p99 = 0;
  double mean_wait_s = 0;
  double fairness = 0;  // Jain index over per-user mean slowdown
  double budget_offered = 0;
  double budget_spent = 0;
  std::map<std::string, std::int64_t> per_cluster;  // completed per cluster

  double missRate() const {
    return completed ? static_cast<double>(deadline_misses) / completed : 0;
  }
  /// Byte-stable multi-section text report.
  std::string render() const;
};

class GridEconomy {
 public:
  GridEconomy(core::MicroGridPlatform& platform, const EconGrid& grid, const EconOptions& opts);

  /// Schedule the arrival chain and the GIS refresh loop. Call once, before
  /// platform.simulator().run().
  void arm();

  /// Crash a cluster mid-run at virtual time `at_s`: head host dies, its
  /// GIS record expires, queued/running jobs resubmit elsewhere.
  void scheduleCrash(const std::string& cluster, double at_s);
  void scheduleRestart(const std::string& cluster, double at_s);

  /// Finalize and return the report (call after run() completes).
  EconReport report();

  Broker& broker() { return broker_; }
  const gis::Directory& directory() const { return gis_; }

  /// Time-resolved probes (DESIGN.md §10): econ.active_jobs,
  /// econ.submitted_per_s / econ.completed_per_s, per-cluster queue depth /
  /// backlog / running counts, and the broker's (GIS-stale) per-cluster
  /// backlog view — the gap between econ.queue.backlog_s.<c> and
  /// econ.broker.view_backlog_s.<c> is the staleness the MDS-style refresh
  /// interval buys. Everything here is process-lane state.
  void registerTelemetry(obs::TelemetrySampler& sampler);

  /// State capture (DESIGN.md §11): per-cluster queue/pool occupancy and
  /// aliveness, every in-flight job's phase, and the workload generator
  /// cursor, registered under "econ". Read-only at capture time.
  void registerStateCapture(obs::StateCaptureRegistry& reg);

 private:
  /// GPS processor-sharing pool: running jobs' cores share `cores`
  /// max-min-uniformly; completions are tracked in virtual-work time V(t)
  /// with dV/dt = min(1, cores / sum(cpus)), so any membership change costs
  /// one event reschedule, not one per running job.
  struct PsPool {
    int cores = 1;
    int load = 0;      // sum of running cpus
    double v = 0;      // virtual work accumulated
    double last_s = 0; // virtual time of last integration
    // (v at finish, job id) -> cpus. Ordered: first key is next to finish.
    std::map<std::pair<double, std::int64_t>, int> by_finish;
    std::map<std::int64_t, double> finish_v;  // id -> its finish V (for remove)

    void integrate(double now_s);
    double rate() const;
    void add(std::int64_t id, int cpus, double work_s, double now_s);
    bool remove(std::int64_t id, double now_s);
    /// Virtual time of the earliest completion; false when idle.
    bool nextFinish(double& when_s, std::int64_t& id) const;
  };

  struct Cluster {
    EconCluster meta;
    BatchQueue queue;
    PsPool ps;          // used when meta.policy == TimeShared
    net::NodeId head_node = net::kNoNode;
    bool alive = true;
    sim::EventId ps_event = 0;  // pending PS-finish event (0 = none)

    Cluster(const EconCluster& m, const BatchQueue::Options& qopt) : meta(m), queue(qopt) {
      ps.cores = m.slots;
    }
  };

  /// A job somewhere between placement and completion.
  struct Active {
    Job job;
    std::string cluster;
    double runtime_c = 0;  // runtime scaled to the cluster's core speed
    double start_s = -1;   // dispatch time; < 0 while queued/transferring
    int resubmits = 0;
    bool running = false;
    bool backing_off = false;  // a resubmission is already scheduled
    sim::EventId finish_event = 0;  // space-shared finish (0 = none/PS)
  };

  void scheduleNextArrival();
  void handleArrival(Job job, int resubmits);
  void placeJob(Job job, int resubmits);
  void startTransfer(const Job& job, Cluster& c, int resubmits);
  void enqueue(const Job& job, Cluster& c, int resubmits);
  void pump(Cluster& c);
  void startJob(Cluster& c, const StartedJob& s);
  void finishJob(Cluster& c, std::int64_t id);
  void armPsEvent(Cluster& c);
  void resubmit(std::int64_t id, const std::string& reason);
  void publishGis();
  void refreshLoop();
  void crashCluster(const std::string& name);
  void restartCluster(const std::string& name);

  double now_s() const { return platform_.virtualNow(); }
  sim::SimTime kernelAt(double virtual_s) const {
    return platform_.virtualTime().toKernel(virtual_s);
  }

  core::MicroGridPlatform& platform_;
  sim::Simulator& sim_;
  EconOptions opts_;
  WorkloadGenerator gen_;
  Broker broker_;
  gis::Directory gis_;
  gis::Dn gis_base_;
  std::map<std::string, Cluster> clusters_;  // name-ordered
  std::map<std::int64_t, Active> active_;    // in-flight jobs by id
  bool armed_ = false;
  bool have_next_ = false;
  Job next_job_;

  // Accumulators (order-independent; per-user sums for Jain fairness).
  EconReport rpt_;
  util::Histogram slowdown_hist_;
  double wait_sum_ = 0;
  std::vector<double> user_slowdown_sum_;
  std::vector<std::int32_t> user_jobs_;

  obs::Counter& c_submitted_;
  obs::Counter& c_completed_;
  obs::Counter& c_misses_;
  obs::Counter& c_rejected_budget_;
  obs::Counter& c_rejected_unplaceable_;
  obs::Counter& c_resubmits_;
  obs::Counter& c_backfills_;
  obs::Counter& c_transfers_;
  obs::Counter& c_failed_;
};

}  // namespace mg::econ
