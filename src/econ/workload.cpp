#include "econ/workload.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"
#include "util/strings.h"

namespace mg::econ {

ArrivalProcess parseArrivalProcess(const std::string& s) {
  const std::string t = util::toLower(s);
  if (t == "poisson") return ArrivalProcess::Poisson;
  if (t == "pareto") return ArrivalProcess::Pareto;
  throw ConfigError("unknown arrival process '" + s + "' (poisson or pareto)");
}

const char* arrivalProcessName(ArrivalProcess p) {
  switch (p) {
    case ArrivalProcess::Poisson: return "poisson";
    case ArrivalProcess::Pareto: return "pareto";
  }
  return "?";
}

void WorkloadSpec::validate() const {
  if (jobs < 1) throw ConfigError("workload: jobs must be >= 1");
  if (users < 1) throw ConfigError("workload: users must be >= 1");
  if (rate <= 0) throw ConfigError("workload: rate must be positive");
  if (day_amplitude < 0 || day_amplitude > 1) {
    throw ConfigError("workload: day_amplitude must be in [0, 1]");
  }
  if (day_period_s <= 0) throw ConfigError("workload: day_period must be positive");
  if (pareto_alpha <= 1.0) {
    throw ConfigError("workload: pareto_alpha must be > 1 (finite mean interarrival)");
  }
  if (max_cpus < 1) throw ConfigError("workload: max_cpus must be >= 1");
  if (data_fraction < 0 || data_fraction > 1) {
    throw ConfigError("workload: data_fraction must be in [0, 1]");
  }
  if (deadline_lo <= 0 || deadline_hi < deadline_lo) {
    throw ConfigError("workload: deadline factors need 0 < lo <= hi");
  }
  if (budget_lo <= 0 || budget_hi < budget_lo) {
    throw ConfigError("workload: budget factors need 0 < lo <= hi");
  }
  if (ref_core_ops <= 0) throw ConfigError("workload: ref_core_ops must be positive");
}

WorkloadSpec WorkloadSpec::fromConfig(const util::Config& cfg) {
  WorkloadSpec spec;
  const auto sections = cfg.sectionsOfType("workload");
  if (sections.empty()) return spec;
  const util::ConfigSection& s = *sections.front();
  spec.jobs = s.getInt("jobs", spec.jobs);
  spec.users = s.getInt("users", spec.users);
  spec.seed = static_cast<std::uint64_t>(s.getInt("seed", static_cast<std::int64_t>(spec.seed)));
  if (s.has("arrival")) spec.arrival = parseArrivalProcess(s.getString("arrival"));
  spec.rate = s.getDouble("rate", spec.rate);
  spec.day_amplitude = s.getDouble("day_amplitude", spec.day_amplitude);
  spec.day_period_s = s.getDouble("day_period", spec.day_period_s);
  spec.pareto_alpha = s.getDouble("pareto_alpha", spec.pareto_alpha);
  spec.runtime_mu = s.getDouble("runtime_mu", spec.runtime_mu);
  spec.runtime_sigma = s.getDouble("runtime_sigma", spec.runtime_sigma);
  spec.max_cpus = static_cast<int>(s.getInt("max_cpus", spec.max_cpus));
  spec.data_fraction = s.getDouble("data_fraction", spec.data_fraction);
  spec.data_mu = s.getDouble("data_mu", spec.data_mu);
  spec.data_sigma = s.getDouble("data_sigma", spec.data_sigma);
  spec.deadline_lo = s.getDouble("deadline_lo", spec.deadline_lo);
  spec.deadline_hi = s.getDouble("deadline_hi", spec.deadline_hi);
  spec.budget_lo = s.getDouble("budget_lo", spec.budget_lo);
  spec.budget_hi = s.getDouble("budget_hi", spec.budget_hi);
  spec.validate();
  return spec;
}

namespace {

/// Stable 64-bit mix (SplitMix64 finalizer) — derives per-user archetypes
/// from the user id without per-user state.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// User archetypes: weights sum to 16. Interactive users submit narrow,
/// short, tight-deadline jobs; batch users the bulk mix; HPC users wide,
/// long jobs with generous deadlines and budgets.
struct Archetype {
  double runtime_scale;   // multiplies the lognormal median
  int max_cpus_shift;     // widths up to spec.max_cpus >> shift
  double deadline_scale;  // multiplies the deadline factor
  double budget_scale;
};
constexpr Archetype kInteractive{0.1, 4, 0.6, 1.0};
constexpr Archetype kBatch{1.0, 2, 1.0, 1.0};
constexpr Archetype kHpc{4.0, 0, 1.6, 2.0};

const Archetype& archetypeOf(std::uint64_t user_hash) {
  const std::uint64_t r = user_hash % 16;
  if (r < 6) return kInteractive;  // 6/16
  if (r < 14) return kBatch;       // 8/16
  return kHpc;                     // 2/16
}

}  // namespace

WorkloadGenerator::WorkloadGenerator(const WorkloadSpec& spec, int data_sites)
    : spec_(spec),
      data_sites_(data_sites),
      arrivals_(spec.seed ^ 0xa5a5a5a5a5a5a5a5ull),
      attrs_(spec.seed ^ 0x5c5c5c5c5c5c5c5cull) {
  spec_.validate();
}

double WorkloadGenerator::intensityAt(double t) const {
  // Sinusoidal diurnal modulation around 1.0, floored away from zero so the
  // renewal clock always advances.
  const double wave =
      1.0 + spec_.day_amplitude * std::sin(2.0 * M_PI * t / spec_.day_period_s);
  return std::max(wave, 0.05);
}

double WorkloadGenerator::nextInterarrival() {
  // Draw a unit-rate renewal gap, then scale by mean interarrival over the
  // instantaneous intensity: a cheap deterministic time-warp that yields the
  // target mean rate with the diurnal shape (exact for Poisson thinning in
  // the limit of slow modulation, which a day-scale wave is).
  double gap;
  if (spec_.arrival == ArrivalProcess::Poisson) {
    gap = arrivals_.exponential(1.0);
  } else {
    // Pareto with mean 1: xm = (alpha-1)/alpha.
    const double a = spec_.pareto_alpha;
    gap = arrivals_.pareto((a - 1.0) / a, a);
  }
  return gap / (spec_.rate * intensityAt(clock_));
}

bool WorkloadGenerator::next(Job& out) {
  if (produced_ >= spec_.jobs) return false;
  clock_ += nextInterarrival();

  out = Job{};
  out.id = ++produced_;
  out.submit_s = clock_;
  out.user = static_cast<std::uint32_t>(attrs_.below(static_cast<std::uint64_t>(spec_.users)));
  const Archetype& a = archetypeOf(mix64(spec_.seed ^ (0x9e01ull + out.user)));

  // Runtime: lognormal, archetype-scaled, floored at 1 s. The user estimate
  // is an overestimate (1-3x) in the classic trace style; EASY backfilling
  // leans on it, completion uses the actual.
  out.runtime_s =
      std::max(1.0, a.runtime_scale * attrs_.lognormal(spec_.runtime_mu, spec_.runtime_sigma));
  out.est_runtime_s = out.runtime_s * attrs_.uniform(1.0, 3.0);

  // Width: a power of two, geometric-ish toward narrow jobs.
  int max_cpus = std::max(1, spec_.max_cpus >> a.max_cpus_shift);
  int width = 1;
  while (width * 2 <= max_cpus && attrs_.uniform() < 0.45) width *= 2;
  out.cpus = width;

  if (data_sites_ > 0 && attrs_.uniform() < spec_.data_fraction) {
    out.input_bytes =
        static_cast<std::int64_t>(attrs_.lognormal(spec_.data_mu, spec_.data_sigma)) + 1;
    out.data_site = static_cast<int>(attrs_.below(static_cast<std::uint64_t>(data_sites_)));
  }

  const double deadline_factor =
      a.deadline_scale * attrs_.uniform(spec_.deadline_lo, spec_.deadline_hi);
  out.deadline_s = out.submit_s + deadline_factor * out.est_runtime_s;

  // Budget: a multiple of the reference cost of the work itself.
  const double ref_cost = spec_.ref_price * out.runtime_s * out.cpus;
  out.budget = a.budget_scale * attrs_.uniform(spec_.budget_lo, spec_.budget_hi) * ref_cost;
  return true;
}

}  // namespace mg::econ
