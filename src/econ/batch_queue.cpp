#include "econ/batch_queue.h"

#include <algorithm>

#include "util/error.h"
#include "util/strings.h"

namespace mg::econ {

QueuePolicy parseQueuePolicy(const std::string& s) {
  const std::string t = util::toLower(s);
  if (t == "fcfs") return QueuePolicy::Fcfs;
  if (t == "easy" || t == "backfill" || t == "easy-backfill") return QueuePolicy::EasyBackfill;
  if (t == "timeshared" || t == "time-shared" || t == "ps") return QueuePolicy::TimeShared;
  throw ConfigError("unknown queue policy '" + s + "' (fcfs, easy, timeshared)");
}

const char* queuePolicyName(QueuePolicy p) {
  switch (p) {
    case QueuePolicy::Fcfs: return "fcfs";
    case QueuePolicy::EasyBackfill: return "easy";
    case QueuePolicy::TimeShared: return "timeshared";
  }
  return "?";
}

BatchQueue::BatchQueue(const Options& opt) : opt_(opt) {
  if (opt_.slots < 1) throw ConfigError("batch queue: slots must be >= 1");
  if (opt_.backfill_window < 1) throw ConfigError("batch queue: backfill_window must be >= 1");
  if (opt_.oversubscribe < 1) throw ConfigError("batch queue: oversubscribe must be >= 1");
}

int BatchQueue::maxWidth() const {
  return opt_.policy == QueuePolicy::TimeShared ? opt_.slots * opt_.oversubscribe : opt_.slots;
}

void BatchQueue::submit(const QueuedJob& job, double now) {
  (void)now;
  queue_.push_back(job);
}

bool BatchQueue::cancel(std::int64_t id) {
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->id == id) {
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

bool BatchQueue::finish(std::int64_t id) {
  auto it = running_.find(id);
  if (it == running_.end()) return false;
  used_ -= it->second.cpus;
  running_.erase(it);
  return true;
}

bool BatchQueue::tryStart(const QueuedJob& job, double now) {
  const int capacity =
      opt_.policy == QueuePolicy::TimeShared ? opt_.slots * opt_.oversubscribe : opt_.slots;
  if (used_ + job.cpus > capacity) return false;
  used_ += job.cpus;
  running_[job.id] = Running{job.cpus, now + job.est_runtime_s};
  return true;
}

std::vector<StartedJob> BatchQueue::dispatch(double now) {
  std::vector<StartedJob> started;

  // FCFS prefix: start in arrival order until the head no longer fits.
  while (!queue_.empty() && tryStart(queue_.front(), now)) {
    started.push_back({queue_.front(), false});
    queue_.pop_front();
  }
  if (queue_.empty() || opt_.policy != QueuePolicy::EasyBackfill) return started;

  // EASY backfilling. The blocked head holds a reservation at its shadow
  // time: walk running jobs in expected-end order, accumulating freed cores
  // until the head fits. Cores free at that instant beyond the head's need
  // are the "extra" pool a backfill job may borrow indefinitely; anything
  // else it borrows must be returned by the shadow time.
  const QueuedJob& head = queue_.front();
  std::vector<const Running*> by_end;
  by_end.reserve(running_.size());
  for (const auto& [id, r] : running_) by_end.push_back(&r);
  std::sort(by_end.begin(), by_end.end(), [](const Running* a, const Running* b) {
    return a->expected_end_s < b->expected_end_s;
  });

  double shadow = now;
  int avail = opt_.slots - used_;
  std::size_t i = 0;
  while (avail < head.cpus && i < by_end.size()) {
    avail += by_end[i]->cpus;
    shadow = by_end[i]->expected_end_s;
    ++i;
  }
  // avail >= head.cpus here unless the head is wider than the machine, which
  // submit-side validation rules out; guard anyway so a bad est can't wedge.
  const int extra = std::max(0, avail - head.cpus);

  int scanned = 0;
  for (auto it = std::next(queue_.begin());
       it != queue_.end() && scanned < opt_.backfill_window && used_ < opt_.slots;) {
    ++scanned;
    const QueuedJob& cand = *it;
    const bool fits_now = cand.cpus <= opt_.slots - used_;
    const bool ends_before_shadow = now + cand.est_runtime_s <= shadow;
    const bool within_extra = cand.cpus <= extra;
    if (fits_now && (ends_before_shadow || within_extra)) {
      tryStart(cand, now);
      started.push_back({cand, true});
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return started;
}

double BatchQueue::estimateWait(int cpus, double now) const {
  if (cpus <= opt_.slots - used_ && queue_.empty()) return 0;
  // Remaining running work plus queued work, spread over the slots: a fluid
  // approximation of how long the machine needs to drain ahead of us.
  double cpu_seconds = 0;
  for (const auto& [id, r] : running_) {
    cpu_seconds += std::max(0.0, r.expected_end_s - now) * r.cpus;
  }
  for (const QueuedJob& q : queue_) cpu_seconds += q.est_runtime_s * q.cpus;
  return cpu_seconds / opt_.slots;
}

double BatchQueue::backlogSeconds() const {
  double cpu_seconds = 0;
  for (const QueuedJob& q : queue_) cpu_seconds += q.est_runtime_s * q.cpus;
  return cpu_seconds / opt_.slots;
}

}  // namespace mg::econ
