#include "econ/grid_gen.h"

#include "util/error.h"

namespace mg::econ {

EconGridSpec EconGridSpec::fromConfig(const util::Config& cfg) {
  EconGridSpec spec;
  const auto sections = cfg.sectionsOfType("grid");
  if (sections.empty()) return spec;
  const util::ConfigSection& s = *sections.front();
  spec.clusters = static_cast<int>(s.getInt("clusters", spec.clusters));
  spec.hosts_per_cluster = static_cast<int>(s.getInt("hosts_per_cluster", spec.hosts_per_cluster));
  spec.cores_per_host = static_cast<int>(s.getInt("cores_per_host", spec.cores_per_host));
  if (s.has("wan_bandwidth")) spec.wan_bandwidth_bps = s.getBandwidth("wan_bandwidth");
  if (s.has("wan_latency")) spec.wan_latency_s = s.getTime("wan_latency");
  if (s.has("lan_bandwidth")) spec.lan_bandwidth_bps = s.getBandwidth("lan_bandwidth");
  if (s.has("lan_latency")) spec.lan_latency_s = s.getTime("lan_latency");
  if (s.has("base_core_ops")) spec.base_core_ops = s.getComputeRate("base_core_ops");
  spec.timeshared_every = static_cast<int>(s.getInt("timeshared_every", spec.timeshared_every));
  spec.validate();
  return spec;
}

void EconGridSpec::validate() const {
  if (clusters < 1) throw ConfigError("grid: clusters must be >= 1");
  if (hosts_per_cluster < 1) throw ConfigError("grid: hosts_per_cluster must be >= 1");
  if (cores_per_host < 1) throw ConfigError("grid: cores_per_host must be >= 1");
  if (wan_bandwidth_bps <= 0 || lan_bandwidth_bps <= 0) {
    throw ConfigError("grid: bandwidths must be positive");
  }
  if (wan_latency_s < 0 || lan_latency_s < 0) {
    throw ConfigError("grid: latencies must be non-negative");
  }
  if (base_core_ops <= 0) throw ConfigError("grid: base_core_ops must be positive");
  if (timeshared_every < 0) throw ConfigError("grid: timeshared_every must be >= 0");
}

EconGrid makeEconGrid(const EconGridSpec& spec) {
  spec.validate();
  EconGrid out;
  out.grid.addRouter("wan");

  for (int i = 0; i < spec.clusters; ++i) {
    const std::string cname = std::string("c") + std::to_string(i);
    // Speed tiers cycle {0.75, 1.0, 1.25, 1.5}x; price grows with the
    // *square* of speed, so per-unit-of-work cost rises with speed and the
    // cost-vs-deadline trade-off is real.
    const double speed = 0.75 + 0.25 * (i % 4);
    const double core_ops = spec.base_core_ops * speed;
    const double price = 0.5 * speed * speed;

    const double host_ops = core_ops * spec.cores_per_host;
    // One physical machine per cluster, with 2x headroom over its virtual
    // load so any derived simulation rate stays >= 1.
    const double phys_ops = host_ops * (spec.hosts_per_cluster + 1) * 2;
    const std::string phys = cname + "-phys";
    out.grid.addPhysical(phys, phys_ops);

    const std::string sw = cname + "-sw";
    out.grid.addRouter(sw);
    out.grid.addLink(cname + "-uplink", sw, "wan", spec.wan_bandwidth_bps, spec.wan_latency_s);

    const std::string head = cname + "-head";
    out.grid.addHost(head, "10." + std::to_string(i) + ".250.1", host_ops,
                     std::int64_t{1} << 30, phys);
    out.grid.addLink(cname + "-headlink", head, sw, spec.lan_bandwidth_bps, spec.lan_latency_s);

    for (int h = 0; h < spec.hosts_per_cluster; ++h) {
      const std::string host = cname + "-n" + std::to_string(h);
      const std::string ip = "10." + std::to_string(i) + "." + std::to_string(h / 200) + "." +
                             std::to_string(h % 200 + 1);
      out.grid.addHost(host, ip, host_ops, std::int64_t{1} << 30, phys);
      out.grid.addLink(cname + "-l" + std::to_string(h), host, sw, spec.lan_bandwidth_bps,
                       spec.lan_latency_s);
    }

    EconCluster c;
    c.name = cname;
    c.head = head;
    c.site = i;
    c.slots = spec.hosts_per_cluster * spec.cores_per_host;
    c.core_ops = core_ops;
    c.price_per_cpu_s = price;
    c.policy = (spec.timeshared_every > 0 && i % spec.timeshared_every == spec.timeshared_every - 1)
                   ? QueuePolicy::TimeShared
                   : QueuePolicy::EasyBackfill;
    out.clusters.push_back(std::move(c));
  }
  return out;
}

}  // namespace mg::econ
