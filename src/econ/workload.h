// Open-loop synthetic grid workloads (ROADMAP item 3, "heavy traffic from
// millions of users").
//
// A WorkloadGenerator turns a WorkloadSpec into a deterministic stream of
// Jobs: arrival times follow a Poisson or heavy-tailed (Pareto) renewal
// process modulated by a day/night sinusoid, and each job's owner, shape
// (CPUs), runtime, input data, deadline and budget are drawn from seeded
// util::Rng streams. The stream is a pure function of (spec, seed): two
// generators with equal specs emit byte-identical job sequences, which is
// what lets million-job economy runs rerun bit-for-bit.
//
// Jobs are generated lazily (next()), so a million-job day costs a few
// dozen bytes of state, not a materialized array. Per-user behaviour is
// derived by hashing the user id into one of a few archetypes (interactive,
// batch, HPC), so "millions of synthetic users" need no per-user storage.
#pragma once

#include <cstdint>
#include <string>

#include "util/config.h"
#include "util/rng.h"

namespace mg::econ {

/// One synthetic job. Runtimes are in *reference-core seconds*: the time the
/// job needs on a core of WorkloadSpec::ref_core_ops; a faster cluster core
/// shrinks it proportionally.
struct Job {
  std::int64_t id = 0;
  std::uint32_t user = 0;
  double submit_s = 0;        // virtual seconds since run start
  int cpus = 1;               // cores requested (gang-scheduled)
  double est_runtime_s = 0;   // the user's (over)estimate, for backfilling
  double runtime_s = 0;       // actual service demand per core
  double deadline_s = 0;      // absolute virtual time the user wants it done by
  double budget = 0;          // currency units the user will spend
  std::int64_t input_bytes = 0;  // data staged to the chosen cluster
  int data_site = -1;         // index of the site holding the input (-1: none)
};

enum class ArrivalProcess { Poisson, Pareto };
ArrivalProcess parseArrivalProcess(const std::string& s);
const char* arrivalProcessName(ArrivalProcess p);

/// Parameters of the synthetic stream. Defaults describe a balanced
/// "day in the life" mix; parse an INI [workload] section to override:
///
///   [workload]
///   jobs = 1000000
///   users = 100000
///   seed = 42
///   arrival = poisson          ; or pareto (heavy-tailed interarrivals)
///   rate = 12.5                ; mean jobs per virtual second
///   day_amplitude = 0.6        ; 0 = flat, 1 = full day/night swing
///   day_period = 86400         ; seconds per diurnal cycle
///   pareto_alpha = 1.5         ; interarrival tail (arrival = pareto)
///   runtime_mu = 4.0           ; lognormal log-mean of runtime seconds
///   runtime_sigma = 1.2        ; lognormal log-stddev
///   max_cpus = 64              ; job widths are powers of two up to this
///   data_fraction = 0.3        ; fraction of jobs with remote input data
///   data_mu = 16.5             ; lognormal log-mean of input bytes (~15 MB)
///   data_sigma = 1.0
///   deadline_lo = 2.0          ; deadline = submit + factor * est_runtime,
///   deadline_hi = 8.0          ;   factor ~ U[lo, hi]
///   budget_lo = 0.8            ; budget = factor * reference cost
///   budget_hi = 3.0
struct WorkloadSpec {
  std::int64_t jobs = 100000;
  std::int64_t users = 100000;
  std::uint64_t seed = 42;
  ArrivalProcess arrival = ArrivalProcess::Poisson;
  double rate = 12.5;
  double day_amplitude = 0.6;
  double day_period_s = 86400;
  double pareto_alpha = 1.5;
  double runtime_mu = 4.0;
  double runtime_sigma = 1.2;
  int max_cpus = 64;
  double data_fraction = 0.3;
  double data_mu = 16.5;
  double data_sigma = 1.0;
  double deadline_lo = 2.0;
  double deadline_hi = 8.0;
  double budget_lo = 0.8;
  double budget_hi = 3.0;
  /// Reference core speed runtimes are quoted against (ops/second).
  double ref_core_ops = 1e9;
  /// Reference price used to scale budgets (currency per cpu-second).
  double ref_price = 1.0;

  /// Read a [workload] section; missing keys keep their defaults. Throws
  /// ConfigError on out-of-range values.
  static WorkloadSpec fromConfig(const util::Config& cfg);
  void validate() const;
};

class WorkloadGenerator {
 public:
  /// `data_sites` is how many distinct dataset locations exist (jobs with
  /// input data are assigned one uniformly); pass 0 to disable data staging
  /// regardless of spec.data_fraction.
  WorkloadGenerator(const WorkloadSpec& spec, int data_sites);

  /// Emit the next job; false once spec.jobs have been produced. Arrival
  /// times are non-decreasing.
  bool next(Job& out);

  std::int64_t produced() const { return produced_; }
  const WorkloadSpec& spec() const { return spec_; }

 private:
  double nextInterarrival();
  double intensityAt(double t) const;

  WorkloadSpec spec_;
  int data_sites_;
  util::Rng arrivals_;  // interarrival draws only
  util::Rng attrs_;     // everything else, one stream, fixed draw order
  double clock_ = 0;
  std::int64_t produced_ = 0;
};

}  // namespace mg::econ
