#include "econ/broker.h"

#include <algorithm>
#include <cmath>

#include "gis/filter.h"
#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"

namespace mg::econ {

BrokerPolicy parseBrokerPolicy(const std::string& s) {
  const std::string t = util::toLower(s);
  if (t == "cost") return BrokerPolicy::Cost;
  if (t == "deadline") return BrokerPolicy::Deadline;
  if (t == "locality") return BrokerPolicy::Locality;
  throw ConfigError("unknown broker policy '" + s + "' (cost, deadline, locality)");
}

const char* brokerPolicyName(BrokerPolicy p) {
  switch (p) {
    case BrokerPolicy::Cost: return "cost";
    case BrokerPolicy::Deadline: return "deadline";
    case BrokerPolicy::Locality: return "locality";
  }
  return "?";
}

gis::Record makeQueueRecord(const gis::Dn& base, const ClusterView& view) {
  gis::Record r(base.child("cn", view.name));
  r.add("objectclass", kQueueObjectClass);
  r.add("Head_Host", view.head_host);
  r.add("Site", std::to_string(view.site));
  r.add("Slots", std::to_string(view.slots));
  r.add("Free_Slots", std::to_string(view.free_slots));
  r.add("Queue_Depth", std::to_string(view.queue_depth));
  r.add("Backlog_Seconds", obs::formatDouble(view.backlog_s));
  r.add("Price", obs::formatDouble(view.price_per_cpu_s));
  r.add("Core_Ops", obs::formatDouble(view.core_ops));
  return r;
}

ClusterView queueViewFromRecord(const gis::Record& record) {
  ClusterView v;
  if (!record.dn().rdns().empty()) v.name = record.dn().rdns().front().value;
  v.head_host = record.get("Head_Host", "");
  v.site = std::stoi(record.get("Site", "-1"));
  v.slots = std::stoi(record.get("Slots", "0"));
  v.free_slots = std::stoi(record.get("Free_Slots", "0"));
  v.queue_depth = std::stoi(record.get("Queue_Depth", "0"));
  v.backlog_s = std::stod(record.get("Backlog_Seconds", "0"));
  v.price_per_cpu_s = std::stod(record.get("Price", "1"));
  v.core_ops = std::stod(record.get("Core_Ops", "1e9"));
  return v;
}

Broker::Broker(const Options& opt) : opt_(opt) {
  if (opt_.ref_core_ops <= 0) throw ConfigError("broker: ref_core_ops must be positive");
  if (opt_.transfer_rate_bps <= 0) {
    throw ConfigError("broker: transfer_rate_bps must be positive");
  }
}

void Broker::updateView(std::vector<ClusterView> views) {
  views_.clear();
  for (ClusterView& v : views) {
    std::string name = v.name;
    views_.emplace(std::move(name), std::move(v));
  }
}

void Broker::refreshFromGis(const gis::Directory& dir, const gis::Dn& base, double now) {
  const auto records = dir.search(base, gis::Scope::Subtree,
                                  gis::Filter::parse(std::string("(objectclass=") +
                                                     kQueueObjectClass + ")"),
                                  now);
  std::vector<ClusterView> views;
  views.reserve(records.size());
  for (const gis::Record& r : records) views.push_back(queueViewFromRecord(r));
  updateView(std::move(views));
}

double Broker::transferSeconds(const Job& job, const ClusterView& v) const {
  if (job.input_bytes <= 0 || job.data_site < 0 || job.data_site == v.site) return 0;
  if (estimate_transfer_) return estimate_transfer_(job.data_site, v, job.input_bytes);
  return static_cast<double>(job.input_bytes) * 8.0 / opt_.transfer_rate_bps;
}

Placement Broker::place(const Job& job, double now) const {
  // Evaluate every alive cluster the job physically fits on; views_ is
  // name-ordered, so equal-score candidates resolve the same way every run.
  struct Candidate {
    const ClusterView* view;
    double finish_s;
    double cost;
    double transfer_s;
  };
  std::vector<Candidate> fits;
  bool any_fit = false;
  for (const auto& [name, v] : views_) {
    if (!v.alive || job.cpus > v.slots) continue;
    any_fit = true;
    const double runtime_s = job.runtime_s * (opt_.ref_core_ops / v.core_ops);
    const double est_runtime_s = job.est_runtime_s * (opt_.ref_core_ops / v.core_ops);
    const double wait_s = (v.free_slots >= job.cpus && v.queue_depth == 0) ? 0 : v.backlog_s;
    const double transfer_s = transferSeconds(job, v);
    const double cost = v.price_per_cpu_s * job.cpus * runtime_s;
    if (cost > job.budget) continue;  // budget-infeasible here
    fits.push_back({&v, now + transfer_s + wait_s + est_runtime_s, cost, transfer_s});
  }
  if (fits.empty()) {
    Placement p;
    p.reject_reason = any_fit ? "budget" : "no_fit";
    return p;
  }

  auto better = [&](const Candidate& a, const Candidate& b) {
    switch (opt_.policy) {
      case BrokerPolicy::Cost:
        if (a.cost != b.cost) return a.cost < b.cost;
        if (a.finish_s != b.finish_s) return a.finish_s < b.finish_s;
        break;
      case BrokerPolicy::Deadline:
        if (a.finish_s != b.finish_s) return a.finish_s < b.finish_s;
        if (a.cost != b.cost) return a.cost < b.cost;
        break;
      case BrokerPolicy::Locality:
        // Data gravity first, then finish, then cost.
        if (a.transfer_s != b.transfer_s) return a.transfer_s < b.transfer_s;
        if (a.finish_s != b.finish_s) return a.finish_s < b.finish_s;
        if (a.cost != b.cost) return a.cost < b.cost;
        break;
    }
    return a.view->name < b.view->name;
  };
  const Candidate* best = &fits.front();
  for (const Candidate& c : fits) {
    if (better(c, *best)) best = &c;
  }

  Placement p;
  p.placed = true;
  p.cluster = best->view->name;
  p.est_finish_s = best->finish_s;
  p.est_cost = best->cost;
  return p;
}

void Broker::noteScheduled(const std::string& cluster, int cpus, double est_cpu_seconds) {
  auto it = views_.find(cluster);
  if (it == views_.end()) return;
  ClusterView& v = it->second;
  if (v.free_slots >= cpus) {
    v.free_slots -= cpus;
  } else {
    v.free_slots = 0;
    v.queue_depth += 1;
  }
  if (v.slots > 0) v.backlog_s += est_cpu_seconds / v.slots;
}

void Broker::noteDown(const std::string& cluster) {
  auto it = views_.find(cluster);
  if (it != views_.end()) it->second.alive = false;
}

}  // namespace mg::econ
