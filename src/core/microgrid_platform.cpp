#include "core/microgrid_platform.h"

#include <algorithm>

#include "obs/sampler.h"
#include "sim/telemetry.h"
#include "util/log.h"

namespace mg::core {

// ---------------------------------------------------------------- sockets --

class MicroGridPlatform::MgSocket : public vos::StreamSocket {
 public:
  MgSocket(MicroGridPlatform& p, std::shared_ptr<net::TcpConnection> conn)
      : p_(p), conn_(std::move(conn)) {}

  void send(const void* data, std::size_t n) override { conn_->send(data, n); }
  std::size_t recv(void* buf, std::size_t max) override { return conn_->recv(buf, max); }
  void close() override { conn_->close(); }
  std::string peerHost() const override {
    return p_.mapper_.byNode(conn_->remoteNode()).hostname;
  }

 private:
  MicroGridPlatform& p_;
  std::shared_ptr<net::TcpConnection> conn_;
};

class MicroGridPlatform::MgListener : public vos::Listener {
 public:
  MgListener(MicroGridPlatform& p, std::shared_ptr<net::TcpListener> listener)
      : p_(p), listener_(std::move(listener)) {}

  std::shared_ptr<vos::StreamSocket> accept() override {
    return std::make_shared<MgSocket>(p_, listener_->accept());
  }
  std::shared_ptr<vos::StreamSocket> acceptFor(double virtual_seconds) override {
    auto conn = listener_->acceptFor(p_.vt_->toKernel(virtual_seconds));
    if (!conn) return nullptr;
    return std::make_shared<MgSocket>(p_, std::move(conn));
  }
  void close() override { listener_->close(); }

 private:
  MicroGridPlatform& p_;
  std::shared_ptr<net::TcpListener> listener_;
};

// Hybrid mode: a port must accept both escalated (TCP) and fluid
// connections. Both feed one unified backlog — the flow listener delivers
// straight into it, and a pump daemon drains the TCP listener's handshake
// output into it. Pure packet mode never comes through here, so its accept
// path (and event stream) is untouched.
class MicroGridPlatform::HybridListener : public vos::Listener {
 public:
  HybridListener(MicroGridPlatform& p, HostRt& rt, std::uint16_t port)
      : p_(p),
        unified_(std::make_shared<sim::Channel<std::shared_ptr<vos::StreamSocket>>>(p.sim_)) {
    tcp_ = rt.stack->tcp().listen(port);
    flow_ = p.flow_table_->listen(rt.info->node, port,
                                  [ch = unified_](std::shared_ptr<vos::StreamSocket> s) {
                                    if (!ch->closed()) ch->send(std::move(s));
                                  });
    // The pump owns shared refs so it can outlive this listener object
    // (processes are only reaped at kernel safe points).
    p.sim_.spawn("hybrid-accept-pump", [&p, tcp = tcp_, ch = unified_] {
      try {
        while (true) {
          auto conn = tcp->accept();
          if (!conn) break;
          ch->send(std::make_shared<MgSocket>(p, std::move(conn)));
        }
      } catch (const sim::ChannelClosed&) {
        // Listener or backlog closed: orderly pump shutdown.
      }
    });
  }

  ~HybridListener() override { close(); }

  std::shared_ptr<vos::StreamSocket> accept() override { return unified_->recv(); }

  std::shared_ptr<vos::StreamSocket> acceptFor(double virtual_seconds) override {
    auto v = unified_->recvFor(p_.vt_->toKernel(virtual_seconds));
    return v ? std::move(*v) : nullptr;
  }

  void close() override {
    tcp_->close();
    flow_->close();
    unified_->close();
  }

 private:
  MicroGridPlatform& p_;
  std::shared_ptr<net::TcpListener> tcp_;
  std::shared_ptr<FlowListener> flow_;
  std::shared_ptr<sim::Channel<std::shared_ptr<vos::StreamSocket>>> unified_;
};

// ---------------------------------------------------------------- context --

class MicroGridPlatform::MgContext : public vos::HostContext {
 public:
  MgContext(MicroGridPlatform& p, HostRt& rt, const std::string& name)
      : p_(p), rt_(rt), name_(name) {
    mem_proc_ = rt_.mem->registerProcess(name);
  }

  ~MgContext() override {
    rt_.mem->releaseProcess(mem_proc_);
    if (task_ >= 0) {
      auto& ts = rt_.tasks;
      ts.erase(std::remove(ts.begin(), ts.end(), task_), ts.end());
      rt_.sched->removeTask(task_);
      p_.refraction(rt_);
    }
  }

  const vos::VirtualHostInfo& host() const override { return *rt_.info; }

  double wallTime() const override { return p_.vt_->toVirtualSeconds(p_.sim_.now()); }

  void sleep(double s) override { p_.sim_.delay(p_.vt_->toKernel(s)); }

  void compute(double ops) override {
    if (ops < 0) throw mg::UsageError("negative compute");
    ensureTask();
    // `ops` execute on the physical CPU; the scheduler's fraction allocation
    // and the virtual-time rescaling together make the virtual host appear
    // to run them at its own speed.
    rt_.sched->compute(task_, ops);
  }

  void allocateMemory(std::int64_t bytes) override { rt_.mem->allocate(mem_proc_, bytes); }
  void freeMemory(std::int64_t bytes) override { rt_.mem->free(mem_proc_, bytes); }

  const vos::HostMapper& mapper() const override { return p_.mapper_; }

  std::shared_ptr<vos::Listener> listen(std::uint16_t port) override {
    switch (p_.opts_.netmodel) {
      case net::NetModelKind::Packet:
        return std::make_shared<MgListener>(p_, rt_.stack->tcp().listen(port));
      case net::NetModelKind::Flow:
        return p_.flow_table_->listen(rt_.info->node, port);
      case net::NetModelKind::Hybrid:
        return std::make_shared<HybridListener>(p_, rt_, port);
    }
    throw UsageError("unknown netmodel");
  }

  std::shared_ptr<vos::StreamSocket> connect(const std::string& host_or_ip,
                                             std::uint16_t port) override {
    const vos::VirtualHostInfo& target = p_.mapper_.resolve(host_or_ip);
    // The connector decides the path; hybrid escalation is symmetric in
    // (src, dst), so both ends of a detail conversation agree on it.
    if (p_.opts_.netmodel == net::NetModelKind::Packet ||
        (p_.opts_.netmodel == net::NetModelKind::Hybrid &&
         p_.net_->escalate(rt_.info->node, target.node, port))) {
      return std::make_shared<MgSocket>(p_, rt_.stack->tcp().connect(target.node, port));
    }
    return p_.flow_table_->connect(rt_.info->node, target.node, port);
  }

  sim::Process& spawnProcess(const std::string& name,
                             std::function<void(vos::HostContext&)> body) override {
    return p_.spawnOn(rt_.info->hostname, name, std::move(body));
  }

  sim::Simulator& simulator() override { return p_.sim_; }

 private:
  void ensureTask() {
    if (task_ >= 0) return;
    // Lazily created: only CPU-using processes join the fraction division
    // (socket daemons and the like consume no modeled CPU).
    // Quantum spans land on the virtual host's track, not the process name.
    task_ = rt_.sched->addTask(name_, std::max(rt_.host_fraction, 1e-6), rt_.info->hostname);
    rt_.tasks.push_back(task_);
    p_.refraction(rt_);
  }

  MicroGridPlatform& p_;
  HostRt& rt_;
  std::string name_;
  vos::MemoryManager::ProcessId mem_proc_;
  vos::CpuScheduler::TaskId task_ = -1;
};

// --------------------------------------------------------------- platform --

MicroGridPlatform::MicroGridPlatform(const VirtualGridConfig& cfg, MicroGridOptions opts)
    : mapper_(cfg.mapper()), physicals_(cfg.physicalMachines()), opts_(opts) {
  if (opts_.rate_override > 0) {
    rate_ = opts_.rate_override;
  } else {
    const SimulationRate sr = SimulationRate::compute(cfg);
    rate_ = sr.max_feasible * opts_.utilization / opts_.slowdown;
  }
  if (rate_ <= 0) throw ConfigError("non-positive simulation rate");
  vt_ = std::make_unique<vos::VirtualTime>(rate_);

  net::PacketNetworkOptions nopts;
  nopts.time_scale = vt_->kernelPerVirtual();
  nopts.seed = opts_.seed;
  switch (opts_.netmodel) {
    case net::NetModelKind::Packet: {
      auto pn = std::make_unique<net::PacketNetwork>(sim_, cfg.topology(), nopts);
      packet_ = pn.get();
      net_ = std::move(pn);
      break;
    }
    case net::NetModelKind::Flow: {
      net::FlowNetworkOptions fopts = opts_.flow;
      fopts.time_scale = vt_->kernelPerVirtual();
      net_ = std::make_unique<net::FlowNetwork>(sim_, cfg.topology(), fopts);
      break;
    }
    case net::NetModelKind::Hybrid: {
      net::HybridNetworkOptions hopts;
      hopts.packet = nopts;
      hopts.flow = opts_.flow;
      hopts.detail = opts_.netmodel_detail;
      auto hn = std::make_unique<net::HybridNetwork>(sim_, cfg.topology(), hopts);
      packet_ = hn.get();
      net_ = std::move(hn);
      break;
    }
  }
  if (opts_.netmodel != net::NetModelKind::Packet) {
    flow_table_ = std::make_unique<FlowEndpointTable>(
        *net_, [this](net::NodeId n) { return mapper_.byNode(n).hostname; },
        [this](double s) { return vt_->toKernel(s); });
  }

  if (opts_.parallel_workers >= 1 && opts_.netmodel != net::NetModelKind::Packet) {
    // Fluid flows are global state (one shared max-min computation), so flow
    // and hybrid mode run the lane engine single-laned: parallel_workers
    // stays a valid knob everywhere, and pure packet mode — the one with
    // per-link locality — is the one that shards the wire.
    sim_.configureParallel(1, opts_.parallel_workers, 1);
    MG_LOG_INFO("core") << "parallel: " << net::netModelKindName(opts_.netmodel)
                        << " netmodel runs single-laned";
  } else if (opts_.parallel_workers >= 1) {
    // Shard the wire along the topology's latency cut. The plan — and so the
    // lane layout — depends only on the topology and max_partitions, never
    // on the worker count: that is what makes parallel_workers a pure speed
    // knob. When the topology has no usable cut (or the cut funds no
    // positive lookahead) the engine still runs, single-laned, so every
    // worker count exercises the same code path.
    const net::PartitionPlan plan = net::planPartitions(cfg.topology(), opts_.max_partitions);
    const sim::SimTime lookahead =
        plan.partitions > 1
            ? net_->scaleDuration(std::min(nopts.host_stack_delay, plan.cut_latency))
            : 0;
    if (plan.partitions > 1 && lookahead > 0) {
      sim_.configureParallel(plan.partitions + 1, opts_.parallel_workers, lookahead);
      net_->setPartitionPlan(plan);
      MG_LOG_INFO("core") << "parallel: " << plan.partitions << " wire partitions + process lane, "
                          << opts_.parallel_workers << " workers, lookahead "
                          << sim::toSeconds(lookahead) * 1e6 << " us";
    } else {
      sim_.configureParallel(1, opts_.parallel_workers, 1);
      MG_LOG_INFO("core") << "parallel: no usable topology cut, running single-laned";
    }
  }

  std::uint64_t seed = opts_.seed;
  for (const auto& p : physicals_) {
    schedulers_.emplace(p.name, std::make_unique<vos::CpuScheduler>(
                                    sim_, p.cpu_ops, opts_.quantum, opts_.competition, ++seed));
  }

  for (const auto& host : mapper_.hosts()) {
    HostRt rt;
    rt.info = &host;
    // Transport stacks exist only where packets can arrive; pure flow mode
    // has no per-segment machinery at all.
    if (packet_ != nullptr) rt.stack = std::make_unique<net::HostStack>(*net_, host.node, opts_.tcp);
    rt.mem = std::make_unique<vos::MemoryManager>(host.memory_bytes, &sim_.metrics());
    rt.sched = schedulers_.at(host.physical_host).get();
    const double phys_ops = cfg.physical(host.physical_host).cpu_ops;
    rt.host_fraction = std::min(1.0, rate_ * host.cpu_ops / phys_ops);
    hosts_.emplace(host.hostname, std::move(rt));
  }

  MG_LOG_INFO("core") << "MicroGrid rate " << rate_ << " (quantum "
                      << sim::toSeconds(opts_.quantum) * 1e3 << " ms)";
}

MicroGridPlatform::~MicroGridPlatform() { sim_.shutdown(); }

MicroGridPlatform::HostRt& MicroGridPlatform::hostRt(const std::string& hostname) {
  auto it = hosts_.find(hostname);
  if (it == hosts_.end()) throw vos::UnknownHost(hostname);
  return it->second;
}

void MicroGridPlatform::refraction(HostRt& rt) {
  if (rt.tasks.empty()) return;
  // "This CPU fraction is then divided across each process on a virtual
  // host" (paper §2.4.1). cpu_factor < 1 models a brownout.
  const double f = std::max(
      1e-9, rt.host_fraction * rt.cpu_factor / static_cast<double>(rt.tasks.size()));
  for (auto id : rt.tasks) rt.sched->setFraction(id, std::min(1.0, f));
}

void MicroGridPlatform::crashHost(const std::string& hostname) {
  HostRt& rt = hostRt(hostname);
  if (!rt.alive) return;
  rt.alive = false;
  MG_LOG_INFO("core") << "crash " << hostname;
  // Close the host's open spans before killing anything: the dying processes'
  // ScopedSpan destructors only end still-open spans, so the `aborted` marks
  // set here survive the unwind.
  sim_.spans().abortTrack(hostname, "host_crash");
  // RSTs to peers are scheduled while the node is still up, so they escape
  // onto the wire before the blackhole closes behind them. Flow-mode
  // connections get the same dying gasp: every socket touching the node
  // resets immediately.
  if (rt.stack) rt.stack->tcp().abortAll("host " + hostname + " crashed");
  if (flow_table_) flow_table_->crashNode(rt.info->node);
  // Kill every process; each unwinds synchronously, releasing its memory
  // lease and scheduler slot. Finished (possibly reaped) ids are no-ops.
  std::vector<std::uint64_t> procs;
  procs.swap(rt.procs);
  for (std::uint64_t id : procs) sim_.killProcessById(id);
  net_->setNodeUp(rt.info->node, false);
  if (rt.stack) {
    net_->attachHost(rt.info->node, nullptr);  // the stack is about to die
    rt.stack.reset();
  }
}

void MicroGridPlatform::restartHost(const std::string& hostname) {
  HostRt& rt = hostRt(hostname);
  if (rt.alive) return;
  if (packet_ != nullptr) rt.stack = std::make_unique<net::HostStack>(*net_, rt.info->node, opts_.tcp);
  net_->setNodeUp(rt.info->node, true);
  rt.alive = true;
  MG_LOG_INFO("core") << "restart " << hostname;
}

bool MicroGridPlatform::hostAlive(const std::string& hostname) { return hostRt(hostname).alive; }

void MicroGridPlatform::setHostCpuFactor(const std::string& hostname, double factor) {
  if (factor <= 0 || factor > 1.0) throw UsageError("cpu factor must be in (0, 1]");
  HostRt& rt = hostRt(hostname);
  rt.cpu_factor = factor;
  refraction(rt);
}

net::PacketNetwork& MicroGridPlatform::packetNetwork() {
  if (packet_ == nullptr) {
    throw UsageError("no packet machinery under --netmodel=" +
                     std::string(net::netModelKindName(opts_.netmodel)));
  }
  return *packet_;
}

vos::CpuScheduler& MicroGridPlatform::schedulerFor(const std::string& physical_name) {
  return *schedulers_.at(physical_name);
}

void MicroGridPlatform::registerTelemetry(obs::TelemetrySampler& sampler) {
  sim::registerKernelProbes(sampler, sim_);
  net_->registerTelemetry(sampler);
  // schedulers_ is name-ordered, so probe registration order (and with it
  // the recorded series set) is independent of construction order.
  for (auto& [name, sched] : schedulers_) {
    sched->registerTelemetry(sampler, name);
  }
  sampler.addLevel("grid.batch.depth", [this](std::int64_t) {
    return sim_.metrics().gaugeValue("grid.batch.depth");
  });
}

void MicroGridPlatform::registerStateCapture(obs::StateCaptureRegistry& reg) {
  reg.add("sim", [this](obs::StateWriter& w) { sim_.saveState(w); });
  // The metrics snapshot is already canonical (sorted names, round-trip
  // double formatting), so folding its JSON form keeps every layer's
  // counters in the digest without a second enumeration surface.
  reg.add("obs.metrics", [this](obs::StateWriter& w) {
    w.str("json", sim_.metrics().snapshotJson());
  });
  reg.add("net", [this](obs::StateWriter& w) { net_->saveState(w); });
  for (auto& [name, sched] : schedulers_) {
    reg.add("vos.sched." + name,
            [s = sched.get()](obs::StateWriter& w) { s->saveState(w); });
  }
  reg.add("core.hosts", [this](obs::StateWriter& w) {
    w.u64("hosts", hosts_.size());
    for (const auto& [name, rt] : hosts_) {
      w.str("host", name);
      w.boolean("alive", rt.alive);
      w.f64("cpu_factor", rt.cpu_factor);
      w.f64("host_fraction", rt.host_fraction);
      w.u64("tasks", rt.tasks.size());
      if (rt.mem) {
        w.i64("mem_used", rt.mem->used());
      }
      if (rt.stack) rt.stack->tcp().saveState(w);
    }
  });
}

std::size_t MicroGridPlatform::openTcpConnections() {
  std::size_t n = 0;
  for (const auto& [name, rt] : hosts_) {
    if (rt.stack) n += rt.stack->tcp().openConnections();
  }
  return n;
}

int MicroGridPlatform::partitionOf(const std::string& host_or_ip) const {
  return net_->partitionPlan().partitionOf(mapper_.resolve(host_or_ip).node);
}

sim::Process& MicroGridPlatform::spawnOn(const std::string& host_or_ip,
                                         const std::string& process_name,
                                         std::function<void(vos::HostContext&)> body) {
  const vos::VirtualHostInfo& info = mapper_.resolve(host_or_ip);
  HostRt& host = hostRt(info.hostname);
  if (!host.alive) throw mg::Error("cannot spawn on crashed host " + info.hostname);
  sim::Process& p =
      sim_.spawn(process_name, [this, hostname = info.hostname, process_name, body = std::move(body)] {
        HostRt& rt = hostRt(hostname);
        MgContext ctx(*this, rt, process_name);
        body(ctx);
      });
  host.procs.push_back(p.id());
  return p;
}

}  // namespace mg::core
