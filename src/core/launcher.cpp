#include "core/launcher.h"

#include <memory>

#include "util/log.h"

namespace mg::core {

Launcher::Launcher(Platform& platform, const grid::ExecutableRegistry& registry)
    : platform_(platform), registry_(registry) {}

void Launcher::startServices(const VirtualGridConfig* publish, const std::string& config_name,
                             const std::string& gis_host) {
  if (services_started_) throw mg::UsageError("services already started");
  services_started_ = true;
  const auto& hosts = platform_.mapper().hosts();
  if (hosts.empty()) throw ConfigError("virtual grid has no hosts");
  gis_host_ = gis_host.empty() ? hosts.front().hostname : gis_host;

  if (publish != nullptr) {
    publish->toGis(directory_, gis::Dn::parse("ou=MicroGrid, o=Grid"), config_name);
  }

  platform_.spawnOn(gis_host_, "gis-server", [this](vos::HostContext& ctx) {
    gis::serveDirectory(ctx, directory_);
  });
  for (const auto& host : hosts) {
    platform_.spawnOn(host.hostname, "gatekeeper." + host.hostname,
                      [this](vos::HostContext& ctx) { grid::serveGatekeeper(ctx, registry_); });
  }
}

LaunchResult Launcher::run(const std::string& executable, const std::string& arguments,
                           const std::vector<grid::AllocationPart>& parts,
                           const std::map<std::string, std::string>& extra_env,
                           const std::string& client_host,
                           std::function<void()> on_complete) {
  if (!services_started_) throw mg::UsageError("call startServices() first");
  if (parts.empty()) throw mg::UsageError("job needs at least one allocation part");
  const std::string client = client_host.empty() ? parts.front().host : client_host;

  auto result = std::make_shared<LaunchResult>();
  platform_.spawnOn(client, "globusrun." + executable,
                    [result, executable, arguments, parts, extra_env,
                     on_complete = std::move(on_complete)](vos::HostContext& ctx) {
                      grid::Coallocator co(ctx);
                      result->submitted_at = ctx.wallTime();
                      try {
                        const grid::CoallocationResult cr =
                            co.run(executable, arguments, parts, extra_env);
                        result->ok = cr.ok;
                        result->exit_code = cr.exit_code;
                        result->error = cr.error;
                      } catch (const mg::Error& e) {
                        result->ok = false;
                        result->error = e.what();
                      }
                      result->completed_at = ctx.wallTime();
                      result->virtual_seconds = result->completed_at - result->submitted_at;
                      if (on_complete) on_complete();
                    });
  platform_.run();
  return *result;
}

}  // namespace mg::core
