#include "core/launcher.h"

#include <algorithm>
#include <memory>

#include "obs/span.h"
#include "util/log.h"
#include "util/strings.h"

namespace mg::core {

namespace {

constexpr const char* kGisBase = "ou=MicroGrid, o=Grid";

/// Re-place parts whose hosts the GIS no longer lists (their records expired
/// when they crashed). Runs in the client process between attempts; on any
/// GIS trouble the parts are left alone — the resubmission may still succeed
/// if the original host restarted.
void replaceDeadParts(vos::HostContext& ctx, const std::string& gis_host,
                      std::vector<grid::AllocationPart>& parts) {
  try {
    gis::GisClient gc(ctx, gis_host);
    std::vector<std::string> live;
    for (const auto& rec :
         gc.search(kGisBase, gis::Scope::Subtree, "(objectclass=GridComputeResource)")) {
      const std::string h = rec.get("hostName", "");
      if (!h.empty()) live.push_back(h);
    }
    gc.close();
    auto isLive = [&](const std::string& h) {
      return std::find(live.begin(), live.end(), h) != live.end();
    };
    auto inUse = [&](const std::string& h) {
      return std::any_of(parts.begin(), parts.end(),
                         [&](const grid::AllocationPart& p) { return p.host == h; });
    };
    for (auto& p : parts) {
      if (isLive(p.host)) continue;
      for (const auto& h : live) {
        if (inUse(h)) continue;
        MG_LOG_INFO("launcher") << "re-placing part from dead " << p.host << " onto " << h;
        p.host = h;
        break;
      }
    }
  } catch (const mg::Error& e) {
    MG_LOG_INFO("launcher") << "GIS re-placement skipped: " << e.what();
  }
}

}  // namespace

Launcher::Launcher(Platform& platform, const grid::ExecutableRegistry& registry)
    : platform_(platform), registry_(registry) {}

void Launcher::startServices(const VirtualGridConfig* publish, const std::string& config_name,
                             const std::string& gis_host) {
  if (services_started_) throw mg::UsageError("services already started");
  services_started_ = true;
  const auto& hosts = platform_.mapper().hosts();
  if (hosts.empty()) throw ConfigError("virtual grid has no hosts");
  gis_host_ = gis_host.empty() ? hosts.front().hostname : gis_host;

  if (publish != nullptr) {
    publish->toGis(directory_, gis::Dn::parse(kGisBase), config_name);
  }

  platform_.spawnOn(gis_host_, "gis-server", [this](vos::HostContext& ctx) {
    gis::serveDirectory(ctx, directory_);
  });
  for (const auto& host : hosts) {
    // Placement → partition assignment: which event lane this host's wire
    // traffic runs on under parallel execution (0 = unsharded platform).
    MG_LOG_DEBUG("launcher") << "placement: " << host.hostname << " -> partition "
                             << platform_.partitionOf(host.hostname);
    platform_.spawnOn(host.hostname, "gatekeeper." + host.hostname, [this](vos::HostContext& ctx) {
      grid::serveGatekeeper(ctx, registry_, gk_opts_);
    });
  }
}

std::shared_ptr<LaunchResult> Launcher::submitAsync(
    const std::string& executable, const std::string& arguments,
    const std::vector<grid::AllocationPart>& parts,
    const std::map<std::string, std::string>& extra_env, const std::string& client_host,
    std::function<void()> on_complete) {
  if (!services_started_) throw mg::UsageError("call startServices() first");
  if (parts.empty()) throw mg::UsageError("job needs at least one allocation part");
  const std::string client = client_host.empty() ? parts.front().host : client_host;

  auto result = std::make_shared<LaunchResult>();
  platform_.spawnOn(
      client, "globusrun." + executable,
      [result, executable, arguments, parts, extra_env, opts = opts_, gis_host = gis_host_,
       on_complete = std::move(on_complete)](vos::HostContext& ctx) {
        // Root of the job's causal chain: everything downstream — GRAM
        // requests, jobmanagers, ranks, vmpi traffic, TCP segments, packet
        // hops, scheduler quanta — parents back to this span.
        obs::ScopedSpan job_span(ctx.simulator().spans(), "core.launcher", "job",
                                 ctx.hostname());
        if (job_span.active()) job_span.annotate("executable", executable);
        grid::Coallocator co(ctx);
        co.client().setRetryPolicy(opts.retry);
        result->submitted_at = ctx.wallTime();
        std::vector<grid::AllocationPart> cur = parts;
        double backoff = opts.backoff_seconds;
        for (int attempt = 0;; ++attempt) {
          std::map<std::string, std::string> env = extra_env;
          // Fresh port block per attempt: ranks of a failed attempt may
          // still hold their listeners while they drain.
          env["MG_PORT_BASE"] = std::to_string(grid::kVmpiPortBase + attempt * 64);
          // Carry the causal context to the server side through the RSL
          // environment (adopted by the jobmanager).
          if (job_span.active()) env["MG_TRACE_CTX"] = std::to_string(job_span.id());
          try {
            const grid::CoallocationResult cr = co.run(executable, arguments, cur, env);
            result->ok = cr.ok;
            result->exit_code = cr.exit_code;
            result->error = cr.error;
          } catch (const mg::Error& e) {
            result->ok = false;
            result->error = e.what();
          }
          if (result->ok || attempt >= opts.max_resubmits) break;
          result->attempt_errors.push_back(result->error);
          ++result->resubmits;
          MG_LOG_INFO("launcher") << "attempt " << attempt + 1 << " failed (" << result->error
                                  << "); resubmitting after " << backoff << "s";
          ctx.sleep(backoff);
          backoff *= 2;
          if (opts.replace_dead_hosts) replaceDeadParts(ctx, gis_host, cur);
        }
        result->completed_at = ctx.wallTime();
        result->virtual_seconds = result->completed_at - result->submitted_at;
        if (on_complete) on_complete();
      });
  return result;
}

LaunchResult Launcher::run(const std::string& executable, const std::string& arguments,
                           const std::vector<grid::AllocationPart>& parts,
                           const std::map<std::string, std::string>& extra_env,
                           const std::string& client_host,
                           std::function<void()> on_complete) {
  auto result = submitAsync(executable, arguments, parts, extra_env, client_host,
                            std::move(on_complete));
  platform_.run();
  if (result->completed_at == 0 && !result->ok) {
    // The simulation drained while the client was still blocked: deadlock.
    const auto stuck = platform_.simulator().suspendedProcessNames();
    std::string names;
    for (const auto& n : stuck) names += " " + n;
    MG_LOG_WARN("launcher") << "simulation drained with " << stuck.size()
                            << " suspended process(es):" << names;
    if (result->error.empty()) result->error = "simulation deadlocked (see launcher warnings)";
  }
  return *result;
}

void Launcher::registerStateCapture(obs::StateCaptureRegistry& reg) {
  reg.add("grid.gis", [this](obs::StateWriter& w) {
    // toLdif is insertion-ordered and stable under deterministic replay.
    w.str("ldif", directory_.toLdif());
    w.str("gis_host", gis_host_);
  });
}

void Launcher::markHostDown(const std::string& hostname) {
  const gis::Dn dn = gis::Dn::parse(kGisBase).child("hn", hostname);
  if (const gis::Record* r = directory_.find(dn)) {
    gis::Record copy = *r;
    copy.set(gis::kAttrExpires, util::format("%.9g", platform_.virtualNow()));
    directory_.upsert(std::move(copy));
  }
}

void Launcher::markHostUp(const std::string& hostname) {
  const gis::Dn dn = gis::Dn::parse(kGisBase).child("hn", hostname);
  if (const gis::Record* r = directory_.find(dn)) {
    gis::Record copy = *r;
    copy.unset(gis::kAttrExpires);
    directory_.upsert(std::move(copy));
  }
  // The restarted host comes back cold: re-run its middleware daemons.
  if (services_started_) {
    if (hostname == gis_host_) {
      platform_.spawnOn(gis_host_, "gis-server", [this](vos::HostContext& ctx) {
        gis::serveDirectory(ctx, directory_);
      });
    }
    platform_.spawnOn(hostname, "gatekeeper." + hostname, [this](vos::HostContext& ctx) {
      grid::serveGatekeeper(ctx, registry_, gk_opts_);
    });
  }
}

}  // namespace mg::core
