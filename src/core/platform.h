// The platform abstraction: something that can run virtual-Grid processes.
//
// Two implementations exist (DESIGN.md §2):
//  * ReferencePlatform  — the "physical grid" model: exact compute timing
//    and a flow-level network; plays the role of the real clusters the
//    paper validated against.
//  * MicroGridPlatform  — the emulated Grid: quantum CPU scheduler, packet-
//    level network, and virtual-time rescaling.
//
// Applications only ever see vos::HostContext, so the same program runs on
// both — the reproduction's analogue of "unmodified Globus applications".
#pragma once

#include <functional>
#include <string>

#include "sim/simulator.h"
#include "vos/context.h"
#include "vos/virtual_host.h"

namespace mg::core {

class Platform {
 public:
  virtual ~Platform() = default;

  virtual sim::Simulator& simulator() = 0;
  virtual const vos::HostMapper& mapper() const = 0;

  /// Start a process on the named virtual host (hostname or virtual IP).
  /// The body receives that process's HostContext. Returns the simulator
  /// process so owners can killProcess() stragglers (fault teardown).
  virtual sim::Process& spawnOn(const std::string& host_or_ip, const std::string& process_name,
                                std::function<void(vos::HostContext&)> body) = 0;

  /// Current virtual time in seconds.
  virtual double virtualNow() const = 0;

  /// The wire partition the named host's node belongs to — 0 when the
  /// platform runs unsharded. Launchers use this to annotate placement
  /// (parts co-located in one partition share a lane; cross-partition
  /// traffic pays the cut-link latency that funds the engine's lookahead).
  virtual int partitionOf(const std::string& host_or_ip) const {
    (void)host_or_ip;
    return 0;
  }

  /// Run the simulation until no work remains (daemons stay suspended);
  /// returns the final virtual time in seconds.
  double run() {
    simulator().run();
    return virtualNow();
  }

  /// Tear down all processes (daemons included).
  void shutdown() { simulator().shutdown(); }
};

}  // namespace mg::core
