// The "physical grid" reference platform.
//
// Plays the role of the real testbed in the paper's validation experiments:
// compute on a host with speed V takes exactly ops/V seconds, and messages
// travel through the max-min fair flow-level network model — the same
// FlowNetwork/FlowSocket stack MicroGridPlatform uses under --netmodel=flow,
// so there is exactly one fluid wiring in the tree. Virtual time equals
// kernel time (rate 1). See DESIGN.md §2 for why this substitution preserves
// the comparisons.
#pragma once

#include <map>
#include <memory>

#include "core/flow_socket.h"
#include "core/platform.h"
#include "core/virtual_grid.h"
#include "net/flow_network.h"
#include "vos/memory.h"

namespace mg::core {

struct ReferenceOptions {
  net::FlowNetworkOptions network;
  /// Extra virtual seconds charged for a connection handshake, on top of
  /// one network round trip.
  double connect_overhead_seconds = 100e-6;
};

class ReferencePlatform : public Platform {
 public:
  explicit ReferencePlatform(const VirtualGridConfig& cfg, ReferenceOptions opts = {});
  ~ReferencePlatform() override;

  sim::Simulator& simulator() override { return sim_; }
  const vos::HostMapper& mapper() const override { return mapper_; }
  double virtualNow() const override { return sim::toSeconds(sim_.now()); }

  sim::Process& spawnOn(const std::string& host_or_ip, const std::string& process_name,
                        std::function<void(vos::HostContext&)> body) override;

  net::FlowNetwork& network() { return *flow_; }

 private:
  friend class RefContext;
  class RefContext;

  vos::MemoryManager& memoryFor(const std::string& hostname);

  sim::Simulator sim_;
  vos::HostMapper mapper_;
  ReferenceOptions opts_;
  std::unique_ptr<net::FlowNetwork> flow_;
  std::unique_ptr<FlowEndpointTable> table_;
  std::map<std::string, std::unique_ptr<vos::MemoryManager>> memory_;
};

}  // namespace mg::core
