#include "core/topologies.h"

#include "util/strings.h"

namespace mg::core::topologies {

namespace {
constexpr double kAlphaOps = 533e6;   // DEC 21164 533 MHz
constexpr double kPentiumOps = 300e6; // Pentium II 300 MHz
}  // namespace

VirtualGridConfig alphaCluster(const AlphaClusterParams& p) {
  VirtualGridConfig cfg;
  cfg.addRouter("switch0");
  for (int i = 0; i < p.hosts; ++i) {
    const std::string phys = util::format("alpha%d", i);
    const std::string host = util::format("vm%d.ucsd.edu", i);
    cfg.addPhysical(phys, kAlphaOps);
    cfg.addHost(host, util::format("1.11.11.%d", i + 1), kAlphaOps * p.cpu_scale, p.memory_bytes,
                phys);
    cfg.addLink(util::format("eth%d", i), host, "switch0", p.bandwidth_bps, p.latency_seconds);
  }
  return cfg;
}

VirtualGridConfig hpvm(int hosts) {
  VirtualGridConfig cfg;
  cfg.addRouter("myrinet-sw");
  for (int i = 0; i < hosts; ++i) {
    // Emulated on the Alpha cluster: the physical machines stay Alphas.
    const std::string phys = util::format("alpha%d", i);
    const std::string host = util::format("hpvm%d.ucsd.edu", i);
    cfg.addPhysical(phys, kAlphaOps);
    cfg.addHost(host, util::format("1.22.22.%d", i + 1), kPentiumOps, 512ll << 20, phys);
    // Myrinet: 1.2 Gb/s links, ~10 us port-to-port.
    cfg.addLink(util::format("myri%d", i), host, "myrinet-sw", 1.2e9, 5e-6);
  }
  return cfg;
}

VirtualGridConfig vbns(const VbnsParams& p) {
  VirtualGridConfig cfg;
  // Campus LANs.
  cfg.addRouter("ucsd-sw");
  cfg.addRouter("uiuc-sw");
  // Campus border routers and two backbone routers (Fig 13's "several
  // routers" on the path).
  cfg.addRouter("ucsd-gw");
  cfg.addRouter("la-core");
  cfg.addRouter("chi-core");
  cfg.addRouter("uiuc-gw");

  int phys_idx = 0;
  auto addSite = [&](const std::string& site, const std::string& sw, const std::string& ip_prefix) {
    for (int i = 0; i < p.hosts_per_site; ++i) {
      const std::string phys = util::format("phys%d", phys_idx++);
      const std::string host = util::format("%s%d.%s.edu", site.c_str(), i, site.c_str());
      cfg.addPhysical(phys, kAlphaOps);
      cfg.addHost(host, util::format("%s.%d", ip_prefix.c_str(), i + 1), kAlphaOps, 1ll << 30,
                  phys);
      cfg.addLink(util::format("%s-eth%d", site.c_str(), i), host, sw, 100e6, 50e-6);
    }
  };
  addSite("ucsd", "ucsd-sw", "1.11.11");
  addSite("uiuc", "uiuc-sw", "1.33.33");

  // Campus uplinks: OC3 (155 Mb/s).
  cfg.addLink("ucsd-uplink", "ucsd-sw", "ucsd-gw", 155e6, 0.2e-3);
  cfg.addLink("uiuc-uplink", "uiuc-sw", "uiuc-gw", 155e6, 0.2e-3);
  // Backbone: OC12 segments; the middle one is the swept bottleneck. The
  // WAN latency is split across the three wide-area hops.
  const double leg = p.wan_latency_seconds / 3.0;
  cfg.addLink("ucsd-la", "ucsd-gw", "la-core", 622e6, leg);
  cfg.addLink("la-chi", "la-core", "chi-core", p.bottleneck_bps, leg);
  cfg.addLink("chi-uiuc", "chi-core", "uiuc-gw", 622e6, leg);
  return cfg;
}

}  // namespace mg::core::topologies
