#include "core/virtual_grid.h"

#include <cmath>
#include <limits>

#include "gis/schema.h"
#include "util/strings.h"

namespace mg::core {

void VirtualGridConfig::addPhysical(const std::string& name, double cpu_ops) {
  if (cpu_ops <= 0) throw ConfigError("physical machine '" + name + "' needs positive CPU speed");
  if (physical_index_.count(name) != 0) {
    throw ConfigError("duplicate physical machine '" + name + "'");
  }
  physical_index_.emplace(name, physical_.size());
  physical_.push_back(PhysicalMachine{name, cpu_ops});
}

const PhysicalMachine& VirtualGridConfig::physical(const std::string& name) const {
  auto it = physical_index_.find(name);
  if (it == physical_index_.end()) {
    throw ConfigError("unknown physical machine '" + name + "'");
  }
  return physical_[it->second];
}

net::NodeId VirtualGridConfig::addHost(const std::string& hostname, const std::string& ip,
                                       double cpu_ops, std::int64_t memory_bytes,
                                       const std::string& physical_name) {
  if (cpu_ops <= 0) throw ConfigError("virtual host '" + hostname + "' needs positive CPU speed");
  physical(physical_name);  // validate
  const net::NodeId node = topology_.addHost(hostname);
  vos::VirtualHostInfo info;
  info.hostname = hostname;
  info.virtual_ip = ip;
  info.cpu_ops = cpu_ops;
  info.memory_bytes = memory_bytes;
  info.physical_host = physical_name;
  info.node = node;
  mapper_.add(std::move(info));
  virtual_ops_[physical_name] += cpu_ops;
  return node;
}

net::NodeId VirtualGridConfig::addRouter(const std::string& name) {
  return topology_.addRouter(name);
}

net::NodeId VirtualGridConfig::nodeByName(const std::string& name) const {
  const net::NodeId direct = topology_.findNode(name);
  if (direct != net::kNoNode) return direct;
  if (mapper_.contains(name)) return mapper_.resolve(name).node;
  throw ConfigError("unknown node '" + name + "'");
}

net::LinkId VirtualGridConfig::addLink(const std::string& name, const std::string& a,
                                       const std::string& b, double bandwidth_bps,
                                       double latency_seconds, std::int64_t queue_bytes,
                                       double loss_rate) {
  return topology_.addLink(name, nodeByName(a), nodeByName(b), bandwidth_bps,
                           sim::fromSeconds(latency_seconds), queue_bytes, loss_rate);
}

VirtualGridConfig VirtualGridConfig::fromConfig(const util::Config& cfg) {
  VirtualGridConfig out;
  for (const auto* sec : cfg.sectionsOfType("physical")) {
    out.addPhysical(sec->name(), sec->getComputeRate("cpu"));
  }
  for (const auto* sec : cfg.sectionsOfType("host")) {
    out.addHost(sec->name(), sec->getString("ip", ""), sec->getComputeRate("cpu"),
                sec->getSize("memory"), sec->getString("map"));
  }
  for (const auto* sec : cfg.sectionsOfType("node")) {
    const std::string kind = util::toLower(sec->getString("kind", "router"));
    if (kind != "router") throw ConfigError("[node] sections must be routers");
    out.addRouter(sec->name());
  }
  for (const auto* sec : cfg.sectionsOfType("link")) {
    out.addLink(sec->name(), sec->getString("a"), sec->getString("b"),
                sec->getBandwidth("bandwidth"), sec->getTime("latency"),
                sec->has("queue") ? sec->getSize("queue") : 256 * 1024,
                sec->getDouble("loss", 0.0));
  }
  return out;
}

void VirtualGridConfig::toGis(gis::Directory& dir, const gis::Dn& base,
                              const std::string& config_name) const {
  for (const auto& host : mapper_.hosts()) {
    dir.upsert(gis::makeVirtualHostRecord(base, host, config_name));
  }
  for (int l = 0; l < topology_.linkCount(); ++l) {
    const net::Link& link = topology_.link(l);
    gis::Record rec = gis::makeVirtualNetworkRecord(
        base, link.name, config_name, "LAN", link.bandwidth_bps, sim::toSeconds(link.latency));
    // Extension by addition (paper §2.2.2): endpoints and queueing are extra
    // attributes on the standard network record.
    rec.add("nwEndpointA", topology_.node(link.a).name);
    rec.add("nwEndpointB", topology_.node(link.b).name);
    rec.add("nwQueueBytes", std::to_string(link.queue_bytes));
    dir.upsert(std::move(rec));
  }
}

double VirtualGridConfig::virtualOpsOn(const std::string& physical_name) const {
  auto it = virtual_ops_.find(physical_name);
  return it == virtual_ops_.end() ? 0.0 : it->second;
}

SimulationRate SimulationRate::compute(const VirtualGridConfig& cfg) {
  SimulationRate rate;
  rate.max_feasible = std::numeric_limits<double>::infinity();
  for (const auto& p : cfg.physicalMachines()) {
    const double virt = cfg.virtualOpsOn(p.name);
    // A machine with no mapped virtual hosts imposes no constraint.
    const double sr = (virt > 0) ? p.cpu_ops / virt : std::numeric_limits<double>::infinity();
    rate.per_machine.push_back(sr);
    rate.max_feasible = std::min(rate.max_feasible, sr);
  }
  if (rate.per_machine.empty() || !std::isfinite(rate.max_feasible)) {
    throw ConfigError("simulation rate undefined: no virtual hosts mapped");
  }
  return rate;
}

}  // namespace mg::core
