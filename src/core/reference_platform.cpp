#include "core/reference_platform.h"

#include "util/log.h"

namespace mg::core {

// ---------------------------------------------------------------- context --

class ReferencePlatform::RefContext : public vos::HostContext {
 public:
  RefContext(ReferencePlatform& p, const vos::VirtualHostInfo& info, const std::string& name)
      : p_(p), info_(info), mem_(p.memoryFor(info.hostname)) {
    mem_proc_ = mem_.registerProcess(name);
  }
  ~RefContext() override { mem_.releaseProcess(mem_proc_); }

  const vos::VirtualHostInfo& host() const override { return info_; }
  double wallTime() const override { return sim::toSeconds(p_.sim_.now()); }
  void sleep(double s) override { p_.sim_.delay(sim::fromSeconds(s)); }

  void compute(double ops) override {
    if (ops < 0) throw mg::UsageError("negative compute");
    // Reference semantics: exact execution time, no quantization.
    p_.sim_.delay(sim::fromSeconds(ops / info_.cpu_ops));
  }

  void allocateMemory(std::int64_t bytes) override { mem_.allocate(mem_proc_, bytes); }
  void freeMemory(std::int64_t bytes) override { mem_.free(mem_proc_, bytes); }

  const vos::HostMapper& mapper() const override { return p_.mapper_; }

  std::shared_ptr<vos::Listener> listen(std::uint16_t port) override {
    return p_.table_->listen(info_.node, port);
  }

  std::shared_ptr<vos::StreamSocket> connect(const std::string& host_or_ip,
                                             std::uint16_t port) override {
    const vos::VirtualHostInfo& target = p_.mapper_.resolve(host_or_ip);
    return p_.table_->connect(info_.node, target.node, port);
  }

  sim::Process& spawnProcess(const std::string& name,
                             std::function<void(vos::HostContext&)> body) override {
    return p_.spawnOn(info_.hostname, name, std::move(body));
  }

  sim::Simulator& simulator() override { return p_.sim_; }

 private:
  ReferencePlatform& p_;
  const vos::VirtualHostInfo& info_;
  vos::MemoryManager& mem_;
  vos::MemoryManager::ProcessId mem_proc_;
};

// --------------------------------------------------------------- platform --

ReferencePlatform::ReferencePlatform(const VirtualGridConfig& cfg, ReferenceOptions opts)
    : mapper_(cfg.mapper()), opts_(opts) {
  flow_ = std::make_unique<net::FlowNetwork>(sim_, cfg.topology(), opts_.network);
  FlowEndpointOptions fopts;
  fopts.connect_overhead = sim::fromSeconds(opts_.connect_overhead_seconds);
  table_ = std::make_unique<FlowEndpointTable>(
      *flow_, [this](net::NodeId n) { return mapper_.byNode(n).hostname; },
      [](double s) { return sim::fromSeconds(s); }, fopts);
}

ReferencePlatform::~ReferencePlatform() { sim_.shutdown(); }

vos::MemoryManager& ReferencePlatform::memoryFor(const std::string& hostname) {
  auto it = memory_.find(hostname);
  if (it == memory_.end()) {
    const auto& info = mapper_.resolve(hostname);
    it = memory_.emplace(hostname, std::make_unique<vos::MemoryManager>(info.memory_bytes, &sim_.metrics())).first;
  }
  return *it->second;
}

sim::Process& ReferencePlatform::spawnOn(const std::string& host_or_ip,
                                         const std::string& process_name,
                                         std::function<void(vos::HostContext&)> body) {
  const vos::VirtualHostInfo& info = mapper_.resolve(host_or_ip);
  return sim_.spawn(process_name, [this, &info, process_name, body = std::move(body)] {
    RefContext ctx(*this, info, process_name);
    body(ctx);
  });
}

}  // namespace mg::core
