#include "core/reference_platform.h"

#include <algorithm>
#include <cstring>

#include "util/log.h"

namespace mg::core {

// ---------------------------------------------------------------- sockets --

class ReferencePlatform::RefSocket : public vos::StreamSocket,
                                     public std::enable_shared_from_this<RefSocket> {
 public:
  /// Per-connection in-flight cap, mirroring a TCP window: senders block
  /// once this many bytes are reserved but undelivered.
  static constexpr std::int64_t kWindow = 1 << 20;

  RefSocket(ReferencePlatform& p, net::NodeId local, std::string local_host, net::NodeId remote,
            std::string remote_host)
      : p_(p),
        local_(local),
        remote_(remote),
        local_host_(std::move(local_host)),
        remote_host_(std::move(remote_host)),
        readable_(p.sim_),
        writable_(p.sim_) {}

  static void pair(const std::shared_ptr<RefSocket>& a, const std::shared_ptr<RefSocket>& b) {
    a->peer_ = b;
    b->peer_ = a;
  }

  void send(const void* data, std::size_t n) override {
    auto self = shared_from_this();
    const auto* src = static_cast<const std::uint8_t*>(data);
    std::size_t remaining = n;
    while (remaining > 0) {
      if (closed_) throw mg::UsageError("send after close");
      auto peer = peer_.lock();
      if (!peer || peer->closed_) throw mg::Error("connection reset by peer");
      if (in_flight_ >= kWindow) {
        writable_.wait();
        continue;
      }
      const std::size_t chunk =
          std::min(remaining, static_cast<std::size_t>(kWindow - in_flight_));
      in_flight_ += static_cast<std::int64_t>(chunk);
      auto buf = std::make_shared<std::vector<std::uint8_t>>(src, src + chunk);
      const sim::SimTime at =
          p_.flow_->reserveTransfer(local_, remote_, static_cast<std::int64_t>(chunk));
      p_.sim_.scheduleAt(at, [self, peer, buf] {
        self->in_flight_ -= static_cast<std::int64_t>(buf->size());
        self->writable_.notifyAll();
        if (!peer->closed_) {
          peer->recv_buf_.insert(peer->recv_buf_.end(), buf->begin(), buf->end());
          peer->readable_.notifyAll();
        }
      });
      src += chunk;
      remaining -= chunk;
    }
  }

  std::size_t recv(void* buf, std::size_t max) override {
    if (closed_) throw mg::UsageError("recv on closed socket");
    if (max == 0) return 0;
    while (recv_buf_.empty()) {
      if (remote_closed_) return 0;
      readable_.wait();
      if (closed_) throw mg::UsageError("socket closed during recv");
    }
    const std::size_t n = std::min(max, recv_buf_.size());
    std::copy_n(recv_buf_.begin(), n, static_cast<std::uint8_t*>(buf));
    recv_buf_.erase(recv_buf_.begin(), recv_buf_.begin() + static_cast<std::ptrdiff_t>(n));
    return n;
  }

  void close() override {
    if (closed_) return;
    closed_ = true;
    readable_.notifyAll();
    writable_.notifyAll();
    auto peer = peer_.lock();
    if (peer && local_ != net::kNoNode) {
      // Deliver EOF in order: the zero-byte reservation queues behind every
      // pending send on the same path.
      const sim::SimTime at = p_.flow_->reserveTransfer(local_, remote_, 0);
      p_.sim_.scheduleAt(at, [peer] {
        peer->remote_closed_ = true;
        peer->readable_.notifyAll();
      });
    }
  }

  std::string peerHost() const override { return remote_host_; }

 private:
  ReferencePlatform& p_;
  net::NodeId local_;
  net::NodeId remote_;
  std::string local_host_;
  std::string remote_host_;
  std::weak_ptr<RefSocket> peer_;
  std::deque<std::uint8_t> recv_buf_;
  std::int64_t in_flight_ = 0;
  bool closed_ = false;
  bool remote_closed_ = false;
  sim::Condition readable_;
  sim::Condition writable_;
};

class ReferencePlatform::RefListener : public vos::Listener {
 public:
  RefListener(ReferencePlatform& p, net::NodeId node, std::uint16_t port)
      : p_(p), node_(node), port_(port), backlog_(p.sim_) {
    const auto key = std::make_pair(node_, port_);
    if (p_.listeners_.count(key)) throw mg::UsageError("port already listening");
    p_.listeners_[key] = this;
  }
  ~RefListener() override { close(); }

  std::shared_ptr<vos::StreamSocket> accept() override {
    try {
      return backlog_.recv();
    } catch (const sim::ChannelClosed&) {
      throw mg::UsageError("accept on closed listener");
    }
  }

  std::shared_ptr<vos::StreamSocket> acceptFor(double virtual_seconds) override {
    try {
      auto got = backlog_.recvFor(sim::fromSeconds(virtual_seconds));
      return got ? *got : nullptr;
    } catch (const sim::ChannelClosed&) {
      throw mg::UsageError("accept on closed listener");
    }
  }

  void close() override {
    if (closed_) return;
    closed_ = true;
    p_.listeners_.erase(std::make_pair(node_, port_));
    backlog_.close();
  }

  bool push(std::shared_ptr<RefSocket> sock) { return backlog_.trySend(std::move(sock)); }

 private:
  ReferencePlatform& p_;
  net::NodeId node_;
  std::uint16_t port_;
  bool closed_ = false;
  sim::Channel<std::shared_ptr<vos::StreamSocket>> backlog_;
};

// ---------------------------------------------------------------- context --

class ReferencePlatform::RefContext : public vos::HostContext {
 public:
  RefContext(ReferencePlatform& p, const vos::VirtualHostInfo& info, const std::string& name)
      : p_(p), info_(info), mem_(p.memoryFor(info.hostname)) {
    mem_proc_ = mem_.registerProcess(name);
  }
  ~RefContext() override { mem_.releaseProcess(mem_proc_); }

  const vos::VirtualHostInfo& host() const override { return info_; }
  double wallTime() const override { return sim::toSeconds(p_.sim_.now()); }
  void sleep(double s) override { p_.sim_.delay(sim::fromSeconds(s)); }

  void compute(double ops) override {
    if (ops < 0) throw mg::UsageError("negative compute");
    // Reference semantics: exact execution time, no quantization.
    p_.sim_.delay(sim::fromSeconds(ops / info_.cpu_ops));
  }

  void allocateMemory(std::int64_t bytes) override { mem_.allocate(mem_proc_, bytes); }
  void freeMemory(std::int64_t bytes) override { mem_.free(mem_proc_, bytes); }

  const vos::HostMapper& mapper() const override { return p_.mapper_; }

  std::shared_ptr<vos::Listener> listen(std::uint16_t port) override {
    return std::make_shared<RefListener>(p_, info_.node, port);
  }

  std::shared_ptr<vos::StreamSocket> connect(const std::string& host_or_ip,
                                             std::uint16_t port) override {
    const vos::VirtualHostInfo& target = p_.mapper_.resolve(host_or_ip);
    // Handshake: one round trip plus fixed software cost.
    const double rtt =
        2.0 * sim::toSeconds(p_.flow_->estimate(info_.node, target.node, 0));
    p_.sim_.delay(sim::fromSeconds(rtt + p_.opts_.connect_overhead_seconds));
    auto it = p_.listeners_.find(std::make_pair(target.node, port));
    if (it == p_.listeners_.end()) {
      throw mg::Error("connection refused: " + target.hostname + ":" + std::to_string(port));
    }
    auto local = std::make_shared<RefSocket>(p_, info_.node, info_.hostname, target.node,
                                             target.hostname);
    auto remote = std::make_shared<RefSocket>(p_, target.node, target.hostname, info_.node,
                                              info_.hostname);
    RefSocket::pair(local, remote);
    it->second->push(std::move(remote));
    return local;
  }

  sim::Process& spawnProcess(const std::string& name,
                             std::function<void(vos::HostContext&)> body) override {
    return p_.spawnOn(info_.hostname, name, std::move(body));
  }

  sim::Simulator& simulator() override { return p_.sim_; }

 private:
  ReferencePlatform& p_;
  const vos::VirtualHostInfo& info_;
  vos::MemoryManager& mem_;
  vos::MemoryManager::ProcessId mem_proc_;
};

// --------------------------------------------------------------- platform --

ReferencePlatform::ReferencePlatform(const VirtualGridConfig& cfg, ReferenceOptions opts)
    : mapper_(cfg.mapper()), opts_(opts) {
  flow_ = std::make_unique<net::FlowNetwork>(sim_, cfg.topology(), opts_.network);
}

ReferencePlatform::~ReferencePlatform() { sim_.shutdown(); }

vos::MemoryManager& ReferencePlatform::memoryFor(const std::string& hostname) {
  auto it = memory_.find(hostname);
  if (it == memory_.end()) {
    const auto& info = mapper_.resolve(hostname);
    it = memory_.emplace(hostname, std::make_unique<vos::MemoryManager>(info.memory_bytes, &sim_.metrics())).first;
  }
  return *it->second;
}

sim::Process& ReferencePlatform::spawnOn(const std::string& host_or_ip,
                                         const std::string& process_name,
                                         std::function<void(vos::HostContext&)> body) {
  const vos::VirtualHostInfo& info = mapper_.resolve(host_or_ip);
  return sim_.spawn(process_name, [this, &info, process_name, body = std::move(body)] {
    RefContext ctx(*this, info, process_name);
    body(ctx);
  });
}

}  // namespace mg::core
