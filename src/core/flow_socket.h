// Socket semantics over the fluid flow model.
//
// When a platform runs with --netmodel=flow (or for the non-escalated side
// of --netmodel=hybrid) there is no TCP state machine: a connection is a
// pair of FlowSocket endpoints and every send() becomes one max-min fair
// flow on the FlowEngine — one kernel event per message instead of one per
// segment per hop. Semantics kept from the TCP path:
//   - connect() costs a handshake round-trip plus setup overhead and
//     refuses when no listener is bound or the host is down;
//   - send() is pipelined behind a TCP-style window: chunks of at most
//     chunk_bytes are queued and flow one at a time (chained at drain
//     boundaries so stream order is preserved), and the sender blocks only
//     once window_bytes are in flight undelivered — so back-to-back small
//     sends pay the latency + overhead tail once, not per call, while
//     senders still feel contention through flow rates;
//   - recv() is a byte stream with orderly EOF after close();
//   - a host crash resets every connection touching it (the dying-gasp
//     visibility the fault harness tests rely on), and faults that abort an
//     in-flight flow surface as ConnectionReset at the blocked sender.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/flow_network.h"
#include "net/tcp.h"
#include "sim/channel.h"
#include "sim/condition.h"
#include "vos/context.h"

namespace mg::core {

class FlowSocket;
class FlowListener;

struct FlowEndpointOptions {
  /// Connection setup cost beyond the handshake RTT (network time).
  sim::SimTime connect_overhead = 100 * sim::kMicrosecond;
  /// One flow models at most this many payload bytes, so long streams
  /// re-enter the fair-share computation periodically instead of locking in
  /// one rate for the whole transfer.
  std::size_t chunk_bytes = 1 << 20;
  /// Per-connection in-flight cap, mirroring a TCP window: senders block
  /// once this many bytes are queued or flowing but undelivered.
  std::size_t window_bytes = 1 << 20;
};

/// Per-platform registry of flow-mode listeners and live sockets.
class FlowEndpointTable {
 public:
  /// Resolves a node id to its virtual hostname (peerHost()).
  using HostnameFn = std::function<std::string(net::NodeId)>;
  /// Converts virtual seconds to kernel time (acceptFor()).
  using ToKernelFn = std::function<sim::SimTime(double)>;
  /// Where a listener delivers accepted sockets; hybrid mode points this at
  /// a backlog shared with the TCP listener.
  using AcceptSink = std::function<void(std::shared_ptr<vos::StreamSocket>)>;

  FlowEndpointTable(net::NetworkModel& net, HostnameFn hostname, ToKernelFn to_kernel,
                    FlowEndpointOptions opts = {});
  FlowEndpointTable(const FlowEndpointTable&) = delete;
  FlowEndpointTable& operator=(const FlowEndpointTable&) = delete;

  /// Bind a listener; throws UsageError if (node, port) is taken.
  std::shared_ptr<FlowListener> listen(net::NodeId node, std::uint16_t port,
                                       AcceptSink sink = {});

  /// Blocking active open (process context). Throws ConnectionRefused when
  /// nothing is listening or the target host is down.
  std::shared_ptr<vos::StreamSocket> connect(net::NodeId src, net::NodeId dst,
                                             std::uint16_t port);

  /// Host crash: error every socket touching `node` (blocked senders and
  /// receivers unwind with ConnectionReset) and close its listeners.
  void crashNode(net::NodeId node);

  net::FlowEngine& engine() { return engine_; }

 private:
  friend class FlowSocket;
  friend class FlowListener;

  void unlisten(net::NodeId node, std::uint16_t port);
  void track(const std::shared_ptr<FlowSocket>& sock);

  net::NetworkModel& net_;
  net::FlowEngine& engine_;
  sim::Simulator& sim_;
  HostnameFn hostname_;
  ToKernelFn to_kernel_;
  FlowEndpointOptions opts_;
  std::map<std::pair<net::NodeId, std::uint16_t>, FlowListener*> listeners_;
  // Live sockets by endpoint node, for crashNode; pruned opportunistically.
  std::map<net::NodeId, std::vector<std::weak_ptr<FlowSocket>>> by_node_;
};

/// One endpoint of a flow-mode connection.
class FlowSocket : public vos::StreamSocket, public std::enable_shared_from_this<FlowSocket> {
 public:
  void send(const void* data, std::size_t n) override;
  std::size_t recv(void* buf, std::size_t max) override;
  void close() override;
  std::string peerHost() const override;

  net::NodeId localNode() const { return local_; }
  net::NodeId remoteNode() const { return remote_; }

 private:
  friend class FlowEndpointTable;
  FlowSocket(FlowEndpointTable& table, net::NodeId local, net::NodeId remote);

  struct SendChunk {
    std::vector<std::uint8_t> bytes;
    bool eof = false;
  };

  void onDeliver(std::vector<std::uint8_t> bytes);
  void onPeerEof();
  void enterError(const std::string& what);
  /// Start the next queued chunk's flow if none is active.
  void pump();

  FlowEndpointTable& table_;
  net::NodeId local_;
  net::NodeId remote_;
  std::weak_ptr<FlowSocket> peer_;

  std::deque<std::uint8_t> recv_buf_;
  std::deque<SendChunk> send_queue_;
  std::int64_t in_flight_ = 0;  // queued or flowing, undelivered payload bytes
  bool flow_active_ = false;
  bool peer_eof_ = false;
  bool error_ = false;
  std::string error_what_;
  bool local_closed_ = false;

  sim::Condition readable_;
  sim::Condition writable_;
};

/// A passive flow-mode socket; accept() yields connections in connect order.
class FlowListener : public vos::Listener {
 public:
  ~FlowListener() override;
  std::shared_ptr<vos::StreamSocket> accept() override;
  std::shared_ptr<vos::StreamSocket> acceptFor(double virtual_seconds) override;
  void close() override;

  std::uint16_t port() const { return port_; }

 private:
  friend class FlowEndpointTable;
  FlowListener(FlowEndpointTable& table, net::NodeId node, std::uint16_t port,
               FlowEndpointTable::AcceptSink sink);

  void deliver(std::shared_ptr<vos::StreamSocket> sock);

  FlowEndpointTable& table_;
  net::NodeId node_;
  std::uint16_t port_;
  bool closed_ = false;
  FlowEndpointTable::AcceptSink sink_;
  std::unique_ptr<sim::Channel<std::shared_ptr<vos::StreamSocket>>> backlog_;
};

}  // namespace mg::core
