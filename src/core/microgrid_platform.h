// The MicroGrid emulation platform.
//
// Assembles the paper's three mechanisms: virtualization (HostContext over
// the mapping table), global coordination (SimulationRate + VirtualTime),
// and resource simulation (per-physical-machine CPU schedulers, per-host
// memory managers, and the packet-level network running at 1/rate).
//
// The kernel clock is the *emulation wall clock* (the physical machines'
// timeline); every virtual-time observable is rescaled by the simulation
// rate, so running the emulation slower (Fig 15) leaves virtual results
// unchanged up to quantum granularity.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/flow_socket.h"
#include "core/platform.h"
#include "core/virtual_grid.h"
#include "net/host_stack.h"
#include "net/hybrid_network.h"
#include "net/packet_network.h"
#include "vos/cpu_scheduler.h"
#include "vos/memory.h"
#include "vos/virtual_time.h"

namespace mg::core {

struct MicroGridOptions {
  /// Scheduler quantum (paper default: 10 ms Linux timeslice; Fig 11 sweeps).
  sim::SimTime quantum = 10 * sim::kMillisecond;
  /// Background load on the physical machines (paper §3.2.2).
  vos::CompetitionProfile competition = vos::CompetitionProfile::none();
  /// Headroom below the maximum feasible rate, accounting for scheduler and
  /// OS overhead on the physical machines.
  double utilization = 0.9;
  /// Run the emulation N times slower than feasible (Fig 15's knob).
  double slowdown = 1.0;
  /// When positive, use exactly this simulation rate (virtual seconds per
  /// emulation second) instead of deriving one.
  double rate_override = 0;
  /// Transport tuning for the virtual network.
  net::TcpOptions tcp;
  /// Which model backs the virtual wire (DESIGN.md §8): full packet
  /// simulation, max-min fair fluid flows, or hybrid (fluid by default,
  /// packet detail for traffic matching `netmodel_detail`).
  net::NetModelKind netmodel = net::NetModelKind::Packet;
  /// Hybrid escalation patterns (see net::DetailSelector).
  std::vector<std::string> netmodel_detail;
  /// Fluid-path tuning for flow/hybrid mode; its time_scale is derived from
  /// the simulation rate, not taken from here.
  net::FlowNetworkOptions flow;
  std::uint64_t seed = 42;
  /// Parallel execution: worker threads driving the event lanes. 0 = the
  /// classic sequential kernel. Any N >= 1 engages the lane engine; the
  /// partition count is a pure function of the topology (never of N), so
  /// every N produces byte-identical metrics, spans, and traces — N only
  /// changes wall-clock speed (DESIGN.md §7).
  int parallel_workers = 0;
  /// Upper bound on wire partitions when parallel execution is enabled.
  int max_partitions = 8;
};

class MicroGridPlatform : public Platform {
 public:
  explicit MicroGridPlatform(const VirtualGridConfig& cfg, MicroGridOptions opts = {});
  ~MicroGridPlatform() override;

  sim::Simulator& simulator() override { return sim_; }
  const vos::HostMapper& mapper() const override { return mapper_; }
  double virtualNow() const override { return vt_->toVirtualSeconds(sim_.now()); }

  sim::Process& spawnOn(const std::string& host_or_ip, const std::string& process_name,
                        std::function<void(vos::HostContext&)> body) override;

  /// The chosen simulation rate (virtual seconds per emulation second).
  double rate() const { return rate_; }
  int partitionOf(const std::string& host_or_ip) const override;
  const vos::VirtualTime& virtualTime() const { return *vt_; }
  /// The network model behind the virtual wire (packet, flow, or hybrid).
  net::NetworkModel& network() { return *net_; }
  /// The packet machinery, when the active model has one (packet or hybrid
  /// mode); throws UsageError under --netmodel=flow.
  net::PacketNetwork& packetNetwork();
  net::NetModelKind netModel() const { return opts_.netmodel; }
  vos::CpuScheduler& schedulerFor(const std::string& physical_name);

  /// Emulation wall-clock seconds consumed so far (the cost side of the
  /// Fig 15 trade-off).
  double emulationNow() const { return sim::toSeconds(sim_.now()); }

  /// Register the platform's full time-resolved probe set (DESIGN.md §10)
  /// on a sampler: kernel rates (sim.*), the network model's per-link and
  /// throughput series (net.*), every physical machine's CPU scheduler
  /// (vos.cpu.util.<machine>, vos.runq.<machine>), and the batch jobmanager
  /// depth (grid.batch.depth) when one is active. Call after construction,
  /// before sampler.start().
  void registerTelemetry(obs::TelemetrySampler& sampler);

  /// Register the platform's full state-capture set (DESIGN.md §11) on
  /// `reg`: the kernel's lanes/heap/process table ("sim"), the metrics
  /// registry snapshot ("obs.metrics"), the network model with its queues,
  /// RNG streams and flows ("net"), every physical machine's CPU scheduler
  /// ("vos.sched.<machine>"), and every virtual host's runtime — aliveness,
  /// CPU factor, memory accounting, TCP endpoint table ("core.hosts").
  /// The snapshot/explorer machinery folds these into one canonical digest
  /// per decision point. Call after construction; read-only at capture time.
  void registerStateCapture(obs::StateCaptureRegistry& reg);

  /// TCP connections still open (neither fully closed nor reset), summed
  /// over every live host stack. A crashed host's stack died with its
  /// connections (they were reset), so it contributes zero — this is the
  /// "all sockets closed or reset" invariant surface.
  std::size_t openTcpConnections();

  // --- fault-injection surface (src/fault drives these) ---

  /// Crash a virtual host: RST every TCP peer (the dying kernel's last
  /// gasp), kill every process on the host (each unwinds, releasing memory
  /// and scheduler slots in O(active processes)), then blackhole the node.
  /// Idempotent.
  void crashHost(const std::string& hostname);

  /// Bring a crashed host back with a cold stack: no processes, no
  /// listeners, no directory presence — those are the launcher's job.
  /// Idempotent.
  void restartHost(const std::string& hostname);

  bool hostAlive(const std::string& hostname);

  /// CPU brownout: scale the host's CPU allocation by `factor` in (0, 1].
  /// 1.0 restores full speed.
  void setHostCpuFactor(const std::string& hostname, double factor);

 private:
  friend class MgContext;
  class MgContext;
  class MgSocket;
  class MgListener;
  class HybridListener;

  struct HostRt {
    const vos::VirtualHostInfo* info = nullptr;
    std::unique_ptr<net::HostStack> stack;
    std::unique_ptr<vos::MemoryManager> mem;
    vos::CpuScheduler* sched = nullptr;
    double host_fraction = 0;  // of the physical CPU, for all its processes
    double cpu_factor = 1.0;   // brownout multiplier on host_fraction
    bool alive = true;
    std::vector<vos::CpuScheduler::TaskId> tasks;  // live CPU-using processes
    // Every process ever spawned on this host, by id. Ids (not Process*)
    // because the kernel reaps finished Process objects at safe points;
    // killProcessById is a no-op for finished or reaped ids, so stale
    // entries are harmless.
    std::vector<std::uint64_t> procs;
  };

  HostRt& hostRt(const std::string& hostname);
  void refraction(HostRt& rt);

  sim::Simulator sim_;
  vos::HostMapper mapper_;
  std::vector<PhysicalMachine> physicals_;
  MicroGridOptions opts_;
  double rate_ = 0;
  std::unique_ptr<vos::VirtualTime> vt_;
  std::unique_ptr<net::NetworkModel> net_;
  net::PacketNetwork* packet_ = nullptr;  // non-null in packet/hybrid mode
  std::unique_ptr<FlowEndpointTable> flow_table_;  // non-null in flow/hybrid mode
  std::map<std::string, std::unique_ptr<vos::CpuScheduler>> schedulers_;
  std::map<std::string, HostRt> hosts_;
};

}  // namespace mg::core
