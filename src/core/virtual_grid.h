// The virtual grid description: virtual hosts (with identities, CPU speeds,
// memory, physical placement), the virtual network topology, and the
// physical machines the grid is emulated on.
//
// Config file form:
//
//   [physical phys0]
//   cpu = 533MHz
//
//   [host vm0.ucsd.edu]
//   ip = 1.11.11.1
//   cpu = 533MHz
//   memory = 1GB
//   map = phys0
//
//   [node switch0]
//   kind = router
//
//   [link l0]
//   a = vm0.ucsd.edu
//   b = switch0
//   bandwidth = 100Mbps
//   latency = 0.1ms
//
// The same description can be round-tripped through GIS records using the
// Fig 3 schema (toGis/fromGis) — the paper's MicroGrid builds the NSE input
// from the virtual network information in the GIS.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "gis/directory.h"
#include "net/topology.h"
#include "util/config.h"
#include "vos/virtual_host.h"

namespace mg::core {

struct PhysicalMachine {
  std::string name;
  double cpu_ops = 0;
};

class VirtualGridConfig {
 public:
  /// Add a physical machine hosting virtual resources.
  void addPhysical(const std::string& name, double cpu_ops);

  /// Add a virtual host (creates its topology node). `physical` must name a
  /// machine added with addPhysical.
  net::NodeId addHost(const std::string& hostname, const std::string& ip, double cpu_ops,
                      std::int64_t memory_bytes, const std::string& physical);

  /// Add a router/switch node to the virtual topology.
  net::NodeId addRouter(const std::string& name);

  /// Connect two named nodes (virtual hosts or routers).
  net::LinkId addLink(const std::string& name, const std::string& a, const std::string& b,
                      double bandwidth_bps, double latency_seconds,
                      std::int64_t queue_bytes = 256 * 1024, double loss_rate = 0.0);

  const vos::HostMapper& mapper() const { return mapper_; }
  const net::Topology& topology() const { return topology_; }
  const std::vector<PhysicalMachine>& physicalMachines() const { return physical_; }
  const PhysicalMachine& physical(const std::string& name) const;

  /// Parse the config-file form above.
  static VirtualGridConfig fromConfig(const util::Config& cfg);

  /// Emit Fig 3 virtual host / network records grouped under `config_name`.
  void toGis(gis::Directory& dir, const gis::Dn& base, const std::string& config_name) const;

  /// Sum of virtual CPU speeds mapped onto a physical machine.
  double virtualOpsOn(const std::string& physical) const;

 private:
  net::NodeId nodeByName(const std::string& name) const;

  vos::HostMapper mapper_;
  net::Topology topology_;
  std::vector<PhysicalMachine> physical_;
  // name → physical_ position, and the running per-machine virtual-ops sum:
  // generated grids look both up once per addHost, and the simulation-rate
  // calculation reads the sums once per machine — linear scans made both
  // quadratic at 100k hosts.
  std::unordered_map<std::string, std::size_t> physical_index_;
  std::unordered_map<std::string, double> virtual_ops_;
};

/// Simulation-rate calculation (paper §2.3). SR_r = physical spec / virtual
/// spec; the feasible emulation rate is bounded by the most constrained
/// resource (the minimum SR; see DESIGN.md §1 on the paper's min/max
/// wording).
struct SimulationRate {
  /// Per-physical-machine SR values, in machine order.
  std::vector<double> per_machine;
  /// min over machines; virtual seconds per emulation wall-clock second.
  double max_feasible = 0;

  static SimulationRate compute(const VirtualGridConfig& cfg);
};

}  // namespace mg::core
