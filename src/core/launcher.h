// The Launcher ties the middleware to a platform: it starts the GIS server
// and a gatekeeper on every virtual host, publishes the virtual grid's
// Fig 3 records, and runs co-allocated jobs end-to-end through the GRAM
// submission path — the paper's "jobs are submitted to virtual servers
// through the virtual Grid resource's gatekeeper".
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/platform.h"
#include "core/virtual_grid.h"
#include "gis/service.h"
#include "grid/coallocator.h"
#include "grid/gram.h"
#include "grid/registry.h"

namespace mg::core {

struct LaunchResult {
  bool ok = false;
  int exit_code = 0;
  std::string error;
  /// Virtual seconds from submission to completion of all parts.
  double virtual_seconds = 0;
  double submitted_at = 0;
  double completed_at = 0;
  /// Times the whole job was resubmitted after a failed attempt.
  int resubmits = 0;
  /// The error of each failed attempt, in order.
  std::vector<std::string> attempt_errors;
};

/// Resilience knobs for Launcher::run. With max_resubmits > 0 a failed job
/// is resubmitted (after a doubling virtual-time backoff), optionally
/// re-placing parts whose hosts have dropped out of the GIS.
struct LaunchOptions {
  int max_resubmits = 0;
  double backoff_seconds = 1.0;    // virtual; doubles per resubmission
  bool replace_dead_hosts = true;  // re-place failed parts via a GIS search
  grid::GramRetryPolicy retry;
};

class Launcher {
 public:
  /// The registry must outlive the Launcher (services hold references).
  Launcher(Platform& platform, const grid::ExecutableRegistry& registry);

  /// Start the GIS server (on `gis_host`, default: the first virtual host)
  /// and one gatekeeper per virtual host. When `publish` is given, its
  /// virtual host/network records are loaded into the GIS under
  /// `config_name`. Call once.
  void startServices(const VirtualGridConfig* publish = nullptr,
                     const std::string& config_name = "default",
                     const std::string& gis_host = "");

  /// Submit `executable` across `parts` from a client process on
  /// `client_host` (default: the first part's host), run the simulation
  /// until it completes, and return the outcome. `on_complete`, when given,
  /// runs in the client process right after the job finishes — use it to
  /// stop periodic daemons (e.g. an Autopilot sampler) so the simulation
  /// can drain.
  LaunchResult run(const std::string& executable, const std::string& arguments,
                   const std::vector<grid::AllocationPart>& parts,
                   const std::map<std::string, std::string>& extra_env = {},
                   const std::string& client_host = "",
                   std::function<void()> on_complete = nullptr);

  /// The non-blocking half of run(): spawn the client process and return a
  /// handle to its (eventual) result without driving the simulation. The
  /// caller owns stepping — sim.runUntil()/run() — which is what the
  /// snapshot/explorer machinery needs to pause at fault decision points.
  /// `completed_at` stays 0 until the job finishes; if the simulation
  /// drains while it is still 0, the job deadlocked or was lost.
  std::shared_ptr<LaunchResult> submitAsync(
      const std::string& executable, const std::string& arguments,
      const std::vector<grid::AllocationPart>& parts,
      const std::map<std::string, std::string>& extra_env = {},
      const std::string& client_host = "",
      std::function<void()> on_complete = nullptr);

  const std::string& gisHost() const { return gis_host_; }
  gis::Directory& directory() { return directory_; }

  void setLaunchOptions(const LaunchOptions& opts) { opts_ = opts; }
  const LaunchOptions& launchOptions() const { return opts_; }

  /// Options for every gatekeeper the launcher spawns (including respawns
  /// after a restart). Set before startServices(); enables e.g. the batch
  /// jobmanager mode on all hosts.
  void setGatekeeperOptions(const grid::GatekeeperOptions& opts) { gk_opts_ = opts; }
  const grid::GatekeeperOptions& gatekeeperOptions() const { return gk_opts_; }

  /// Fault wiring: stamp the host's GIS record as expired *now*, so
  /// placement searches stop seeing it. Called when a host crashes.
  void markHostDown(const std::string& hostname);

  /// Fault wiring: refresh the host's GIS record and respawn its gatekeeper
  /// (and the GIS server, if it lived there). Called when a host restarts.
  void markHostUp(const std::string& hostname);

  /// Register the middleware's state capture (DESIGN.md §11): the GIS
  /// directory's canonical LDIF dump under "grid.gis".
  void registerStateCapture(obs::StateCaptureRegistry& reg);

 private:
  Platform& platform_;
  const grid::ExecutableRegistry& registry_;
  gis::Directory directory_;
  std::string gis_host_;
  LaunchOptions opts_;
  grid::GatekeeperOptions gk_opts_;
  bool services_started_ = false;
};

}  // namespace mg::core
