// Named virtual-grid presets matching the paper's experimental setups:
//
//  * alphaCluster — Fig 9 row 1: 4 x DEC 21164 533 MHz, 100 Mb Ethernet,
//    1 GB memory each, self-hosted (each virtual Alpha maps to a physical
//    Alpha). Parameters let Fig 12 scale the virtual CPUs and pinch the
//    network.
//  * hpvm — Fig 9 row 2: 4 x Pentium II 300 MHz on 1.2 Gb Myrinet, emulated
//    on the Alpha cluster.
//  * vbns — Fig 13: two campus clusters (UCSD, UIUC) joined across a vBNS
//    backbone of OC3/OC12 links and several routers; Fig 14 pinches the
//    bottleneck WAN link (622 / 155 / 10 Mb/s).
#pragma once

#include "core/virtual_grid.h"

namespace mg::core::topologies {

struct AlphaClusterParams {
  int hosts = 4;
  double cpu_scale = 1.0;       // Fig 12: 1x / 2x / 4x / 8x virtual CPUs
  double bandwidth_bps = 100e6; // Fig 12 pins this to 1 Mbps
  double latency_seconds = 50e-6;  // per host-switch link
  std::int64_t memory_bytes = 1ll << 30;
};

VirtualGridConfig alphaCluster(const AlphaClusterParams& params = {});

VirtualGridConfig hpvm(int hosts = 4);

struct VbnsParams {
  int hosts_per_site = 2;
  double bottleneck_bps = 622e6;  // the varied WAN link (Fig 14)
  double wan_latency_seconds = 50e-3;  // one-way UCSD<->UIUC total
};

VirtualGridConfig vbns(const VbnsParams& params = {});

}  // namespace mg::core::topologies
