#include "core/flow_socket.h"

#include <algorithm>

#include "util/error.h"

namespace mg::core {

// ------------------------------------------------------------------ table --

FlowEndpointTable::FlowEndpointTable(net::NetworkModel& net, HostnameFn hostname,
                                     ToKernelFn to_kernel, FlowEndpointOptions opts)
    : net_(net),
      engine_(*[&net] {
        net::FlowEngine* e = net.flows();
        if (e == nullptr) throw UsageError("FlowEndpointTable requires a model with a flow engine");
        return e;
      }()),
      sim_(net.simulator()),
      hostname_(std::move(hostname)),
      to_kernel_(std::move(to_kernel)),
      opts_(opts) {
  if (opts_.chunk_bytes == 0) throw UsageError("chunk_bytes must be >= 1");
  if (opts_.window_bytes == 0) throw UsageError("window_bytes must be >= 1");
}

std::shared_ptr<FlowListener> FlowEndpointTable::listen(net::NodeId node, std::uint16_t port,
                                                        AcceptSink sink) {
  const auto key = std::make_pair(node, port);
  if (listeners_.contains(key)) {
    throw UsageError("port " + std::to_string(port) + " already listening");
  }
  auto l = std::shared_ptr<FlowListener>(new FlowListener(*this, node, port, std::move(sink)));
  listeners_.emplace(key, l.get());
  return l;
}

void FlowEndpointTable::unlisten(net::NodeId node, std::uint16_t port) {
  listeners_.erase(std::make_pair(node, port));
}

void FlowEndpointTable::track(const std::shared_ptr<FlowSocket>& sock) {
  auto& v = by_node_[sock->localNode()];
  if (v.size() > 32) {
    std::erase_if(v, [](const std::weak_ptr<FlowSocket>& w) { return w.expired(); });
  }
  v.push_back(sock);
}

std::shared_ptr<vos::StreamSocket> FlowEndpointTable::connect(net::NodeId src, net::NodeId dst,
                                                              std::uint16_t port) {
  // Handshake: SYN out, SYN-ACK back, plus connection setup overhead.
  sim::SimTime rtt;
  try {
    rtt = 2 * engine_.estimate(src, dst, 0) + opts_.connect_overhead;
  } catch (const ConfigError&) {
    throw net::ConnectionRefused("no route to " + hostname_(dst));
  }
  sim_.delay(net_.scaleDuration(rtt));

  auto it = listeners_.find(std::make_pair(dst, port));
  if (it == listeners_.end() || !net_.nodeUp(dst)) {
    throw net::ConnectionRefused(hostname_(dst) + ":" + std::to_string(port));
  }

  auto client = std::shared_ptr<FlowSocket>(new FlowSocket(*this, src, dst));
  auto server = std::shared_ptr<FlowSocket>(new FlowSocket(*this, dst, src));
  client->peer_ = server;
  server->peer_ = client;
  track(client);
  track(server);
  it->second->deliver(server);
  return client;
}

void FlowEndpointTable::crashNode(net::NodeId node) {
  std::vector<FlowListener*> to_close;
  for (const auto& [key, l] : listeners_) {
    if (key.first == node) to_close.push_back(l);
  }
  for (FlowListener* l : to_close) l->close();

  auto it = by_node_.find(node);
  if (it == by_node_.end()) return;
  std::vector<std::weak_ptr<FlowSocket>> socks = std::move(it->second);
  by_node_.erase(it);
  const std::string what = "host " + hostname_(node) + " crashed";
  for (const std::weak_ptr<FlowSocket>& w : socks) {
    if (auto s = w.lock()) {
      s->enterError(what);
      if (auto p = s->peer_.lock()) p->enterError(what);
    }
  }
}

// ----------------------------------------------------------------- socket --

FlowSocket::FlowSocket(FlowEndpointTable& table, net::NodeId local, net::NodeId remote)
    : table_(table), local_(local), remote_(remote), readable_(table.sim_),
      writable_(table.sim_) {}

void FlowSocket::send(const void* data, std::size_t n) {
  if (local_closed_) throw UsageError("send on closed socket");
  const auto* p = static_cast<const std::uint8_t*>(data);
  const auto window = static_cast<std::int64_t>(table_.opts_.window_bytes);
  std::size_t off = 0;
  while (off < n) {
    if (error_) throw net::ConnectionReset(error_what_);
    if (in_flight_ >= window) {
      writable_.wait();
      continue;
    }
    const std::size_t m = std::min({n - off, table_.opts_.chunk_bytes,
                                    static_cast<std::size_t>(window - in_flight_)});
    in_flight_ += static_cast<std::int64_t>(m);
    send_queue_.push_back(SendChunk{std::vector<std::uint8_t>(p + off, p + off + m), false});
    pump();
    off += m;
  }
}

void FlowSocket::pump() {
  if (flow_active_ || error_ || send_queue_.empty()) return;
  flow_active_ = true;
  SendChunk chunk = std::move(send_queue_.front());
  send_queue_.pop_front();
  const auto m = static_cast<std::int64_t>(chunk.bytes.size());
  // Callbacks fire in event context after the sending process may already
  // have moved on, been killed, or dropped its socket reference. They hold
  // a strong self so the queued pipeline (later chunks, the EOF) survives
  // until it drains; the peer stays weak — a destroyed receiver just drops
  // the bytes, as a closed real socket would.
  std::shared_ptr<FlowSocket> self = shared_from_this();
  std::weak_ptr<FlowSocket> peer = peer_;
  try {
    table_.engine_.start(
        local_, remote_, m,
        [self, peer, m, eof = chunk.eof, bytes = std::move(chunk.bytes)]() mutable {
          if (auto ps = peer.lock()) {
            if (eof) {
              ps->onPeerEof();
            } else {
              ps->onDeliver(std::move(bytes));
            }
          }
          self->in_flight_ -= m;
          self->writable_.notifyAll();
        },
        [self](const std::string& why) {
          const std::string what = "flow " + (why.empty() ? "aborted" : why);
          if (auto ps = self->peer_.lock()) ps->enterError(what);
          self->enterError(what);
        },
        [self] {
          self->flow_active_ = false;
          self->pump();
        });
  } catch (const ConfigError&) {
    // No route. A lost FIN is silent (as on a real partition); data sends
    // reset the connection.
    flow_active_ = false;
    if (!chunk.eof) enterError("no route to " + peerHost());
  }
}

std::size_t FlowSocket::recv(void* buf, std::size_t max) {
  if (max == 0) return 0;
  while (recv_buf_.empty()) {
    if (error_) throw net::ConnectionReset(error_what_);
    if (peer_eof_) return 0;
    readable_.wait();
  }
  const std::size_t n = std::min(max, recv_buf_.size());
  auto* out = static_cast<std::uint8_t*>(buf);
  std::copy_n(recv_buf_.begin(), n, out);
  recv_buf_.erase(recv_buf_.begin(), recv_buf_.begin() + static_cast<std::ptrdiff_t>(n));
  return n;
}

void FlowSocket::close() {
  if (local_closed_) return;
  local_closed_ = true;
  if (error_) return;
  // Orderly EOF: a zero-byte chunk through the same queue, so the FIN
  // arrives after every pending send. A partitioned network loses it,
  // exactly as it would lose a real one.
  send_queue_.push_back(SendChunk{{}, true});
  pump();
}

std::string FlowSocket::peerHost() const { return table_.hostname_(remote_); }

void FlowSocket::onDeliver(std::vector<std::uint8_t> bytes) {
  if (error_) return;
  recv_buf_.insert(recv_buf_.end(), bytes.begin(), bytes.end());
  readable_.notifyAll();
}

void FlowSocket::onPeerEof() {
  peer_eof_ = true;
  readable_.notifyAll();
}

void FlowSocket::enterError(const std::string& what) {
  if (error_) return;
  error_ = true;
  error_what_ = what;
  send_queue_.clear();
  readable_.notifyAll();
  writable_.notifyAll();
}

// --------------------------------------------------------------- listener --

FlowListener::FlowListener(FlowEndpointTable& table, net::NodeId node, std::uint16_t port,
                           FlowEndpointTable::AcceptSink sink)
    : table_(table),
      node_(node),
      port_(port),
      sink_(std::move(sink)),
      backlog_(std::make_unique<sim::Channel<std::shared_ptr<vos::StreamSocket>>>(table.sim_)) {}

FlowListener::~FlowListener() { close(); }

void FlowListener::deliver(std::shared_ptr<vos::StreamSocket> sock) {
  if (closed_) return;
  if (sink_) {
    sink_(std::move(sock));
    return;
  }
  backlog_->send(std::move(sock));
}

std::shared_ptr<vos::StreamSocket> FlowListener::accept() {
  if (sink_) throw UsageError("listener delivers through its accept sink");
  return backlog_->recv();
}

std::shared_ptr<vos::StreamSocket> FlowListener::acceptFor(double virtual_seconds) {
  if (sink_) throw UsageError("listener delivers through its accept sink");
  auto v = backlog_->recvFor(table_.to_kernel_(virtual_seconds));
  return v ? std::move(*v) : nullptr;
}

void FlowListener::close() {
  if (closed_) return;
  closed_ = true;
  table_.unlisten(node_, port_);
  backlog_->close();
}

}  // namespace mg::core
