#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace mg::util {

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> splitTrim(std::string_view s, char delim) {
  std::vector<std::string> out = split(s, delim);
  for (auto& f : out) f = std::string(trim(f));
  return out;
}

std::vector<std::string> splitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string toLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool endsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool globMatch(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer matcher with backtracking over the last '*'.
  size_t p = 0, t = 0;
  size_t star = std::string_view::npos, match = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace mg::util
