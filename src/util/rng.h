// Deterministic random number generation.
//
// Every stochastic element of the simulation draws from a seeded generator so
// that a (configuration, seed) pair reproduces a run bit-for-bit — the
// "scientific and repeatable experimentation" goal of the paper.
//
// Two generators are provided:
//  * Xoshiro256** — general-purpose simulation randomness (quantum jitter,
//    competition noise, workload synthesis).
//  * NpbRandom    — the NAS Parallel Benchmarks linear congruential generator
//    (x_{k+1} = a·x_k mod 2^46, a = 5^13), used by the EP and IS kernels so
//    their numerics follow the published benchmark definition.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

namespace mg::util {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialize state from a 64-bit seed via SplitMix64 expansion.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Standard normal via Marsaglia polar method.
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Lognormal: exp(normal(mu, sigma)) — mu/sigma are the parameters of the
  /// underlying normal (mean of the lognormal is exp(mu + sigma^2/2)).
  /// The standard heavy-ish-tailed model for job runtimes and file sizes.
  double lognormal(double mu, double sigma);

  /// Pareto (type I) with scale xm > 0 and shape alpha > 0: support
  /// [xm, inf), P(X > x) = (xm/x)^alpha. Mean xm*alpha/(alpha-1) for
  /// alpha > 1; infinite-variance heavy tail for alpha <= 2 — the classic
  /// model for bursty interarrivals and elephant transfers.
  double pareto(double xm, double alpha);

  /// Fork a statistically independent child stream (used to give each
  /// simulated entity its own stream regardless of creation order).
  Rng split();

  /// The complete generator state — the four xoshiro words plus the cached
  /// Marsaglia spare — for canonical state digests (obs::StateWriter). Two
  /// Rngs with equal fingerprints produce identical draw sequences.
  std::array<std::uint64_t, 6> fingerprint() const {
    return {s_[0], s_[1], s_[2], s_[3], have_spare_ ? 1ull : 0ull,
            std::bit_cast<std::uint64_t>(spare_)};
  }

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0;
};

/// The NPB pseudorandom generator: x_{k+1} = a * x_k (mod 2^46), a = 5^13.
/// Returns uniform doubles in (0, 1). Supports O(log k) jump-ahead, which the
/// EP benchmark uses to give each rank an independent subsequence.
class NpbRandom {
 public:
  static constexpr double kDefaultSeed = 271828183.0;

  explicit NpbRandom(double seed = kDefaultSeed) : x_(seed) {}

  /// Next uniform double in (0, 1).
  double next();

  /// Current state.
  double state() const { return x_; }

  /// Skip ahead k steps from seed s: sets state to a^k * s mod 2^46.
  void jump(double seed, std::uint64_t k);

 private:
  double x_;
};

}  // namespace mg::util
