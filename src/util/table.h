// ASCII table and CSV emission for the experiment harnesses. Every bench
// binary prints its figure/table in this format so EXPERIMENTS.md rows can be
// regenerated mechanically.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mg::util {

/// A simple column-aligned table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add a row; must have the same arity as the header.
  void addRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with %.4g, keeps strings as-is.
  class RowBuilder {
   public:
    RowBuilder(Table& table) : table_(table) {}
    RowBuilder& operator<<(const std::string& s);
    RowBuilder& operator<<(const char* s);
    RowBuilder& operator<<(double v);
    RowBuilder& operator<<(int v);
    RowBuilder& operator<<(long long v);
    ~RowBuilder();

   private:
    Table& table_;
    std::vector<std::string> cells_;
  };
  RowBuilder row() { return RowBuilder(*this); }

  size_t rowCount() const { return rows_.size(); }

  /// Render with column alignment and a header rule.
  std::string render() const;

  /// Render as CSV (no escaping beyond quoting fields containing commas).
  std::string renderCsv() const;

  /// Print render() to the stream with an optional title line.
  void print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mg::util
