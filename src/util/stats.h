// Statistics helpers for the validation experiments: running moments,
// histograms (Fig 7), and the paper's trace "skew" metric (Fig 17: root mean
// square percentage difference between two sampled time series).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace mg::util {

/// Welford-style running mean / variance / extrema accumulator.
class RunningStats {
 public:
  void add(double x);

  std::int64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double sum_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width-bin histogram over [lo, hi); out-of-range samples are clamped
/// into the first/last bin so nothing is silently dropped. A degenerate
/// lo == hi range is allowed (all mass in bin 0) so callers profiling
/// constant-valued populations need no special case.
class Histogram {
 public:
  Histogram(double lo, double hi, int bins);

  void add(double x);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int bins() const { return static_cast<int>(counts_.size()); }
  std::int64_t count(int bin) const { return counts_.at(static_cast<size_t>(bin)); }
  /// Total number of samples (alias kept alongside per-bin count(int)).
  std::int64_t count() const { return total_; }
  std::int64_t total() const { return total_; }
  /// Sum of all added sample values (exact, not binned).
  double sum() const { return sum_; }
  /// Center of the given bin.
  double binCenter(int bin) const;
  /// Fraction of all samples in the given bin (0 if empty histogram).
  double frequency(int bin) const;
  /// Approximate q-quantile (q in [0, 1]) by linear interpolation within the
  /// bin holding the q*total()-th sample. Returns lo() for an empty or
  /// degenerate (lo == hi) histogram; quantile(0)/quantile(1) are the edges
  /// of the first/last populated bin.
  double quantile(double q) const;

  /// Add another histogram's mass into this one, bin by bin. Both must have
  /// identical lo/hi/bins (UsageError otherwise) — merging is meant for
  /// shards of one population, e.g. lane-local histograms combined at a
  /// barrier, where all shards were created from the same spec. Integer bin
  /// counts make the merge exact and order-independent.
  void merge(const Histogram& other);

 private:
  double lo_, hi_;
  std::vector<std::int64_t> counts_;
  std::int64_t total_ = 0;
  double sum_ = 0;
};

/// A sampled time series: (time, value) pairs with non-decreasing times.
using Trace = std::vector<std::pair<double, double>>;

/// Value of the trace at time t by zero-order hold (last sample at or before
/// t; the first value before the first sample). Requires a non-empty trace.
double sampleTrace(const Trace& trace, double t);

/// The paper's internal-validation metric (Section 3.6): both traces are
/// normalized to their own duration, resampled at `samples` common points,
/// and compared as root-mean-square percentage difference relative to the
/// reference trace's value range. Returns a percentage.
double rmsPercentSkew(const Trace& reference, const Trace& measured, int samples = 200);

/// Percentage difference of `measured` relative to `reference`.
double percentError(double reference, double measured);

}  // namespace mg::util
