// Parsing and formatting of physical units used in virtual-grid descriptions:
// bandwidths ("100Mbps"), times ("50ms"), sizes ("1GB"), and compute rates
// ("533MHz", "200MIPS", "150Mops").
//
// The GIS records of the paper (Fig 3) carry values such as
//   CpuSpeed=10         (relative units)
//   MemorySize=100MBytes
//   speed=100Mbps 50ms
// so the parsers here accept both bare numbers and suffixed quantities.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace mg::util {

/// Parse a bandwidth like "100Mbps", "622Mb/s", "1.2Gbps", "9600bps".
/// Decimal prefixes (k = 1e3) as is conventional for link rates.
/// Returns bits per second.
double parseBandwidth(std::string_view s);

/// Parse a duration like "50ms", "10us", "1.5s", "200ns", "2min".
/// Returns seconds.
double parseTime(std::string_view s);

/// Parse a byte size like "100MBytes", "1GB", "64KB", "512B", "1MiB".
/// Binary prefixes (K = 1024) as is conventional for memory capacities.
/// Returns bytes.
std::int64_t parseSize(std::string_view s);

/// Parse a compute rate like "533MHz", "200MIPS", "150Mops", "1.5Gops".
/// Returns operations per second. MHz is treated as Mops: the paper's CPU
/// model is a single speed scalar per host.
double parseComputeRate(std::string_view s);

/// Format helpers for report output.
std::string formatBandwidth(double bits_per_sec);
std::string formatTime(double seconds);
std::string formatSize(std::int64_t bytes);

}  // namespace mg::util
