#include "util/config.h"

#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/strings.h"
#include "util/units.h"

namespace mg::util {

bool ConfigSection::has(std::string_view key) const { return find(key) != nullptr; }

const std::string* ConfigSection::find(std::string_view key) const {
  const std::string lowered = toLower(key);
  for (const auto& [k, v] : entries_) {
    if (k == lowered) return &v;
  }
  return nullptr;
}

const std::string& ConfigSection::getString(std::string_view key) const {
  const std::string* v = find(key);
  if (!v) {
    throw ConfigError("missing key '" + std::string(key) + "' in section [" + type_ + " " + name_ + "]");
  }
  return *v;
}

double ConfigSection::getDouble(std::string_view key) const {
  const std::string& s = getString(key);
  try {
    size_t pos = 0;
    double v = std::stod(s, &pos);
    if (trim(std::string_view(s).substr(pos)).empty()) return v;
  } catch (const std::exception&) {
  }
  throw ConfigError("key '" + std::string(key) + "' = '" + s + "' is not a number");
}

std::int64_t ConfigSection::getInt(std::string_view key) const {
  const std::string& s = getString(key);
  try {
    size_t pos = 0;
    long long v = std::stoll(s, &pos);
    if (trim(std::string_view(s).substr(pos)).empty()) return v;
  } catch (const std::exception&) {
  }
  throw ConfigError("key '" + std::string(key) + "' = '" + s + "' is not an integer");
}

bool ConfigSection::getBool(std::string_view key) const {
  const std::string s = toLower(getString(key));
  if (s == "true" || s == "yes" || s == "on" || s == "1") return true;
  if (s == "false" || s == "no" || s == "off" || s == "0") return false;
  throw ConfigError("key '" + std::string(key) + "' = '" + s + "' is not a boolean");
}

double ConfigSection::getBandwidth(std::string_view key) const {
  return parseBandwidth(getString(key));
}
double ConfigSection::getTime(std::string_view key) const { return parseTime(getString(key)); }
std::int64_t ConfigSection::getSize(std::string_view key) const {
  return parseSize(getString(key));
}
double ConfigSection::getComputeRate(std::string_view key) const {
  return parseComputeRate(getString(key));
}

std::string ConfigSection::getString(std::string_view key, std::string_view fallback) const {
  const std::string* v = find(key);
  return v ? *v : std::string(fallback);
}
double ConfigSection::getDouble(std::string_view key, double fallback) const {
  return has(key) ? getDouble(key) : fallback;
}
std::int64_t ConfigSection::getInt(std::string_view key, std::int64_t fallback) const {
  return has(key) ? getInt(key) : fallback;
}
bool ConfigSection::getBool(std::string_view key, bool fallback) const {
  return has(key) ? getBool(key) : fallback;
}

std::vector<std::string> ConfigSection::keys() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, v] : entries_) out.push_back(k);
  return out;
}

void ConfigSection::set(std::string_view key, std::string_view value) {
  const std::string lowered = toLower(key);
  for (const auto& [k, v] : entries_) {
    if (k == lowered) {
      throw ConfigError("duplicate key '" + lowered + "' in section [" + type_ + " " + name_ + "]");
    }
  }
  entries_.emplace_back(lowered, std::string(value));
}

Config Config::parse(std::string_view text) {
  Config cfg;
  ConfigSection* current = nullptr;
  int lineno = 0;
  std::istringstream in{std::string(text)};
  std::string raw;
  while (std::getline(in, raw)) {
    ++lineno;
    std::string_view line = raw;
    // Strip comments (not inside values: this format has no quoting).
    if (size_t pos = line.find_first_of("#;"); pos != std::string_view::npos) {
      line = line.substr(0, pos);
    }
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') {
        throw ParseError(format("line %d: unterminated section header", lineno));
      }
      auto inner = trim(line.substr(1, line.size() - 2));
      auto parts = splitWhitespace(inner);
      if (parts.empty() || parts.size() > 2) {
        throw ParseError(format("line %d: section header must be [type] or [type name]", lineno));
      }
      std::string type = toLower(parts[0]);
      std::string name = parts.size() == 2 ? parts[1] : "";
      current = &cfg.addSection(std::move(type), std::move(name));
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw ParseError(format("line %d: expected key = value", lineno));
    }
    if (!current) {
      throw ParseError(format("line %d: key outside any section", lineno));
    }
    auto key = trim(line.substr(0, eq));
    auto value = trim(line.substr(eq + 1));
    if (key.empty()) throw ParseError(format("line %d: empty key", lineno));
    current->set(key, value);
  }
  return cfg;
}

Config Config::parseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open config file '" + path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

std::vector<const ConfigSection*> Config::sectionsOfType(std::string_view type) const {
  std::vector<const ConfigSection*> out;
  const std::string lowered = toLower(type);
  for (const auto& s : sections_) {
    if (s.type() == lowered) out.push_back(&s);
  }
  return out;
}

const ConfigSection& Config::section(std::string_view type, std::string_view name) const {
  const ConfigSection* s = findSection(type, name);
  if (!s) {
    throw ConfigError("no section [" + std::string(type) + " " + std::string(name) + "]");
  }
  return *s;
}

const ConfigSection* Config::findSection(std::string_view type, std::string_view name) const {
  const std::string lowered = toLower(type);
  for (const auto& s : sections_) {
    if (s.type() == lowered && s.name() == name) return &s;
  }
  return nullptr;
}

ConfigSection& Config::addSection(std::string type, std::string name) {
  for (const auto& s : sections_) {
    if (s.type() == type && s.name() == name && !name.empty()) {
      throw ConfigError("duplicate section [" + type + " " + name + "]");
    }
  }
  sections_.emplace_back(std::move(type), std::move(name));
  return sections_.back();
}

}  // namespace mg::util
