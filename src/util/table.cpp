#include "util/table.h"

#include <algorithm>
#include <ostream>

#include "util/error.h"
#include "util/strings.h"

namespace mg::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw UsageError("table needs at least one column");
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw UsageError(format("table row has %zu cells, expected %zu", cells.size(), headers_.size()));
  }
  rows_.push_back(std::move(cells));
}

Table::RowBuilder& Table::RowBuilder::operator<<(const std::string& s) {
  cells_.push_back(s);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(const char* s) {
  cells_.emplace_back(s);
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(double v) {
  cells_.push_back(format("%.4g", v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(int v) {
  cells_.push_back(format("%d", v));
  return *this;
}
Table::RowBuilder& Table::RowBuilder::operator<<(long long v) {
  cells_.push_back(format("%lld", v));
  return *this;
}
Table::RowBuilder::~RowBuilder() { table_.addRow(std::move(cells_)); }

std::string Table::render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto renderRow = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      if (c + 1 < row.size()) line += std::string(widths[c] - row[c].size() + 2, ' ');
    }
    line += '\n';
    return line;
  };
  std::string out = renderRow(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  out += std::string(total, '-') + "\n";
  for (const auto& row : rows_) out += renderRow(row);
  return out;
}

std::string Table::renderCsv() const {
  auto field = [](const std::string& s) {
    if (s.find(',') != std::string::npos) return "\"" + s + "\"";
    return s;
  };
  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += field(headers_[c]);
    if (c + 1 < headers_.size()) out += ',';
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += field(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  }
  return out;
}

void Table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << "== " << title << " ==\n";
  os << render() << "\n";
}

}  // namespace mg::util
