#include "util/units.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "util/error.h"
#include "util/strings.h"

namespace mg::util {

namespace {

// Split "12.5Mbps" into value 12.5 and suffix "Mbps".
struct Quantity {
  double value = 0;
  std::string suffix;
};

Quantity parseQuantity(std::string_view s, std::string_view what) {
  std::string_view t = trim(s);
  if (t.empty()) throw ParseError("empty " + std::string(what) + " string");
  std::string text(t);
  char* end = nullptr;
  double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) {
    throw ParseError("no numeric value in " + std::string(what) + " '" + text + "'");
  }
  std::string suffix(trim(std::string_view(end)));
  return {v, suffix};
}

double decimalPrefix(char c) {
  switch (std::tolower(static_cast<unsigned char>(c))) {
    case 'k': return 1e3;
    case 'm': return 1e6;
    case 'g': return 1e9;
    case 't': return 1e12;
    default: return 0;
  }
}

}  // namespace

double parseBandwidth(std::string_view s) {
  Quantity q = parseQuantity(s, "bandwidth");
  std::string suf = toLower(q.suffix);
  // Normalize "b/s" to "bps".
  if (endsWith(suf, "b/s")) suf = suf.substr(0, suf.size() - 3) + "bps";
  if (suf.empty() || suf == "bps" || suf == "b") return q.value;
  double mult = decimalPrefix(suf[0]);
  if (mult > 0) {
    std::string rest = suf.substr(1);
    if (rest.empty() || rest == "bps" || rest == "b" || rest == "bit" || rest == "bits") {
      return q.value * mult;
    }
    if (rest == "bytes/s" || rest == "b/s" || rest == "bps8") {
      return q.value * mult * 8;
    }
  }
  throw ParseError("unrecognized bandwidth unit '" + q.suffix + "'");
}

double parseTime(std::string_view s) {
  Quantity q = parseQuantity(s, "time");
  std::string suf = toLower(q.suffix);
  if (suf.empty() || suf == "s" || suf == "sec" || suf == "secs" || suf == "seconds") {
    return q.value;
  }
  if (suf == "ms" || suf == "msec") return q.value * 1e-3;
  if (suf == "us" || suf == "usec") return q.value * 1e-6;
  if (suf == "ns" || suf == "nsec") return q.value * 1e-9;
  if (suf == "min" || suf == "m") return q.value * 60.0;
  if (suf == "h" || suf == "hr" || suf == "hours") return q.value * 3600.0;
  throw ParseError("unrecognized time unit '" + q.suffix + "'");
}

std::int64_t parseSize(std::string_view s) {
  Quantity q = parseQuantity(s, "size");
  std::string suf = toLower(q.suffix);
  if (suf.empty() || suf == "b" || suf == "byte" || suf == "bytes") {
    return static_cast<std::int64_t>(std::llround(q.value));
  }
  double mult = 0;
  char prefix = suf[0];
  switch (prefix) {
    case 'k': mult = 1024.0; break;
    case 'm': mult = 1024.0 * 1024; break;
    case 'g': mult = 1024.0 * 1024 * 1024; break;
    case 't': mult = 1024.0 * 1024 * 1024 * 1024; break;
    default: mult = 0; break;
  }
  if (mult > 0) {
    std::string rest = suf.substr(1);
    if (rest == "ib") rest = "b";  // "MiB" et al.: same binary meaning here
    if (rest.empty() || rest == "b" || rest == "byte" || rest == "bytes") {
      return static_cast<std::int64_t>(std::llround(q.value * mult));
    }
  }
  throw ParseError("unrecognized size unit '" + q.suffix + "'");
}

double parseComputeRate(std::string_view s) {
  Quantity q = parseQuantity(s, "compute rate");
  std::string suf = toLower(q.suffix);
  if (suf.empty()) return q.value;
  if (suf == "hz" || suf == "ops" || suf == "ips" || suf == "flops") return q.value;
  double mult = decimalPrefix(suf[0]);
  if (mult > 0) {
    std::string rest = suf.substr(1);
    if (rest == "hz" || rest == "ops" || rest == "ips" || rest == "flops") {
      return q.value * mult;
    }
  }
  // "MIPS" spelled out.
  if (suf == "mips") return q.value * 1e6;
  throw ParseError("unrecognized compute-rate unit '" + q.suffix + "'");
}

std::string formatBandwidth(double bps) {
  if (bps >= 1e9) return format("%.3gGbps", bps / 1e9);
  if (bps >= 1e6) return format("%.3gMbps", bps / 1e6);
  if (bps >= 1e3) return format("%.3gKbps", bps / 1e3);
  return format("%.3gbps", bps);
}

std::string formatTime(double seconds) {
  double a = std::fabs(seconds);
  if (a >= 1.0 || a == 0.0) return format("%.4gs", seconds);
  if (a >= 1e-3) return format("%.4gms", seconds * 1e3);
  if (a >= 1e-6) return format("%.4gus", seconds * 1e6);
  return format("%.4gns", seconds * 1e9);
}

std::string formatSize(std::int64_t bytes) {
  double b = static_cast<double>(bytes);
  if (b >= 1024.0 * 1024 * 1024) return format("%.3gGB", b / (1024.0 * 1024 * 1024));
  if (b >= 1024.0 * 1024) return format("%.3gMB", b / (1024.0 * 1024));
  if (b >= 1024.0) return format("%.3gKB", b / 1024.0);
  return format("%lldB", static_cast<long long>(bytes));
}

}  // namespace mg::util
