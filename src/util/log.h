// Leveled logging. Default level is Warn so tests and benches stay quiet;
// set MG_LOG=debug (or trace/info/warn/error/off) to see more.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace mg::util {

enum class LogLevel { Trace = 0, Debug, Info, Warn, Error, Off };

/// Current global level (initialized once from the MG_LOG environment variable).
LogLevel logLevel();

/// Override the level programmatically (benches use this to silence modules).
void setLogLevel(LogLevel level);

/// Emit one line to stderr; used via the MG_LOG_* macros below.
void logLine(LogLevel level, const char* component, const std::string& message);

/// Install a simulation-time source (current time in nanoseconds). While one
/// is installed every log line is prefixed with the sim time, so interleaved
/// component logs are orderable; without one, lines keep the plain format.
/// Returns false (and installs nothing) if a source is already installed —
/// sim::Simulator installs this automatically, first simulator wins.
bool setLogSimTimeSource(std::function<std::int64_t()> source);

/// Remove the installed source (no-op when none is installed).
void clearLogSimTimeSource();

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, const char* component) : level_(level), component_(component) {}
  ~LogStream() { logLine(level_, component_, ss_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    ss_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream ss_;
};
}  // namespace detail

}  // namespace mg::util

// Component is a short tag, e.g. MG_LOG_DEBUG("net") << "packet " << id;
#define MG_LOG_AT(level, component)                      \
  if (::mg::util::logLevel() > (level)) {                \
  } else                                                 \
    ::mg::util::detail::LogStream(level, component)

#define MG_LOG_TRACE(component) MG_LOG_AT(::mg::util::LogLevel::Trace, component)
#define MG_LOG_DEBUG(component) MG_LOG_AT(::mg::util::LogLevel::Debug, component)
#define MG_LOG_INFO(component) MG_LOG_AT(::mg::util::LogLevel::Info, component)
#define MG_LOG_WARN(component) MG_LOG_AT(::mg::util::LogLevel::Warn, component)
#define MG_LOG_ERROR(component) MG_LOG_AT(::mg::util::LogLevel::Error, component)
