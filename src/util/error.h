// Error types shared across the MicroGrid libraries.
//
// The MicroGrid is a simulation framework: configuration mistakes and protocol
// violations are programmer-facing errors, reported via exceptions (per the
// C++ Core Guidelines E.2: throw to signal that a function can't do its job).
// Simulated failures (dropped packets, job failures) are *values*, never
// exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace mg {

/// Root of the MicroGrid exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed configuration file, RSL string, GIS filter, unit string, ...
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// An inconsistent virtual-grid description (unknown host, unmapped resource, ...).
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

/// Misuse of a simulation API (blocking call outside a process, reuse of a
/// finished socket, ...).
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error("usage error: " + what) {}
};

/// A snapshot restore diverged from the captured state (mc/snapshot.h): the
/// scenario factory was not a pure function of its fault plan.
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error("state error: " + what) {}
};

}  // namespace mg
