#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace mg::util {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  if (!(hi >= lo) || bins <= 0) throw UsageError("invalid histogram bounds/bins");
  counts_.assign(static_cast<size_t>(bins), 0);
}

void Histogram::add(double x) {
  std::int64_t bin = 0;
  if (hi_ > lo_) {
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    bin = static_cast<std::int64_t>(std::floor((x - lo_) / w));
    bin = std::clamp<std::int64_t>(bin, 0, static_cast<std::int64_t>(counts_.size()) - 1);
  }
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
  sum_ += x;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ || counts_.size() != other.counts_.size()) {
    throw UsageError("Histogram::merge wants identical lo/hi/bins");
  }
  for (std::size_t b = 0; b < counts_.size(); ++b) counts_[b] += other.counts_[b];
  total_ += other.total_;
  sum_ += other.sum_;
}

double Histogram::binCenter(int bin) const {
  if (hi_ == lo_) return lo_;
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (bin + 0.5) * w;
}

double Histogram::quantile(double q) const {
  if (!(q >= 0.0) || !(q <= 1.0)) throw UsageError("quantile wants q in [0, 1]");
  if (total_ == 0 || hi_ == lo_) return lo_;
  const double target = q * static_cast<double>(total_);
  const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  double cum = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double c = static_cast<double>(counts_[b]);
    if (c == 0) continue;
    if (cum + c >= target) {
      const double frac = (target - cum) / c;
      const double v = lo_ + (static_cast<double>(b) + frac) * w;
      return std::clamp(v, lo_, hi_);
    }
    cum += c;
  }
  // q == 1 (or floating-point shortfall): the upper edge of the last
  // populated bin.
  for (std::size_t b = counts_.size(); b-- > 0;) {
    if (counts_[b] != 0) return std::min(lo_ + static_cast<double>(b + 1) * w, hi_);
  }
  return hi_;
}

double Histogram::frequency(int bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(count(bin)) / static_cast<double>(total_);
}

double sampleTrace(const Trace& trace, double t) {
  if (trace.empty()) throw UsageError("sampleTrace on empty trace");
  if (t <= trace.front().first) return trace.front().second;
  // Last element with time <= t.
  auto it = std::upper_bound(
      trace.begin(), trace.end(), t,
      [](double v, const std::pair<double, double>& s) { return v < s.first; });
  return std::prev(it)->second;
}

double rmsPercentSkew(const Trace& reference, const Trace& measured, int samples) {
  if (reference.empty() || measured.empty()) {
    throw UsageError("rmsPercentSkew on empty trace");
  }
  const double ref_t0 = reference.front().first;
  const double ref_t1 = reference.back().first;
  const double mea_t0 = measured.front().first;
  const double mea_t1 = measured.back().first;
  // Value range of the reference, for normalization: percentage errors of a
  // near-zero-valued sample would otherwise blow up.
  double vmin = reference.front().second, vmax = vmin;
  for (const auto& [t, v] : reference) {
    vmin = std::min(vmin, v);
    vmax = std::max(vmax, v);
  }
  double range = vmax - vmin;
  if (range == 0.0) range = (vmax == 0.0) ? 1.0 : std::fabs(vmax);

  double sumsq = 0;
  for (int i = 0; i < samples; ++i) {
    const double f = (samples == 1) ? 0.0 : static_cast<double>(i) / (samples - 1);
    const double rv = sampleTrace(reference, ref_t0 + f * (ref_t1 - ref_t0));
    const double mv = sampleTrace(measured, mea_t0 + f * (mea_t1 - mea_t0));
    const double pct = 100.0 * (mv - rv) / range;
    sumsq += pct * pct;
  }
  return std::sqrt(sumsq / samples);
}

double percentError(double reference, double measured) {
  if (reference == 0.0) return measured == 0.0 ? 0.0 : 100.0;
  return 100.0 * (measured - reference) / reference;
}

}  // namespace mg::util
