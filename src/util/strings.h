// Small string helpers used throughout the MicroGrid code base.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mg::util {

/// Remove leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on a delimiter character. Empty fields are preserved:
/// split("a,,b", ',') -> {"a", "", "b"}. split("", ',') -> {""}.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on a delimiter and trim each field.
std::vector<std::string> splitTrim(std::string_view s, char delim);

/// Split on arbitrary runs of whitespace; no empty fields are produced.
std::vector<std::string> splitWhitespace(std::string_view s);

/// ASCII lower-case copy.
std::string toLower(std::string_view s);

/// Case-insensitive ASCII comparison.
bool iequals(std::string_view a, std::string_view b);

bool startsWith(std::string_view s, std::string_view prefix);
bool endsWith(std::string_view s, std::string_view suffix);

/// Join the elements of `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Shell-style glob match supporting only '*' (any run of characters).
/// Used by the GIS filter language, e.g. "(hn=vm*.ucsd.edu)".
bool globMatch(std::string_view pattern, std::string_view text);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace mg::util
