#include "util/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "util/strings.h"

namespace mg::util {

namespace {

LogLevel levelFromEnv() {
  const char* env = std::getenv("MG_LOG");
  if (!env) return LogLevel::Warn;
  const std::string s = toLower(env);
  if (s == "trace") return LogLevel::Trace;
  if (s == "debug") return LogLevel::Debug;
  if (s == "info") return LogLevel::Info;
  if (s == "warn") return LogLevel::Warn;
  if (s == "error") return LogLevel::Error;
  if (s == "off") return LogLevel::Off;
  return LogLevel::Warn;
}

std::atomic<LogLevel> g_level{levelFromEnv()};

// Installed/cleared only while the simulation is quiescent; emitting threads
// (process threads, parallel-engine workers) call it concurrently but never
// mutate it, and g_log_mutex below keeps the emitted lines whole.
std::function<std::int64_t()> g_sim_time_source;

// Parallel-engine workers may log concurrently; serialize whole lines.
std::mutex g_log_mutex;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

LogLevel logLevel() { return g_level.load(std::memory_order_relaxed); }

void setLogLevel(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void logLine(LogLevel level, const char* component, const std::string& message) {
  const std::lock_guard<std::mutex> lk(g_log_mutex);
  if (g_sim_time_source) {
    const double t = static_cast<double>(g_sim_time_source()) * 1e-9;
    std::fprintf(stderr, "[%-5s] %-10s [t=%.6fs] %s\n", levelName(level), component, t,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[%-5s] %-10s %s\n", levelName(level), component, message.c_str());
  }
}

bool setLogSimTimeSource(std::function<std::int64_t()> source) {
  if (g_sim_time_source) return false;
  g_sim_time_source = std::move(source);
  return true;
}

void clearLogSimTimeSource() { g_sim_time_source = nullptr; }

}  // namespace mg::util
