// A small INI-style configuration format for virtual-grid descriptions.
//
// Sections are typed and named:
//
//   [host vm0]
//   ip    = 1.11.11.1
//   cpu   = 533MHz
//   memory = 1GB
//   map   = phys0
//
//   [link lan0]
//   from = vm0
//   to   = switch0
//   bandwidth = 100Mbps
//   latency   = 0.1ms
//
// '#' and ';' start comments. Keys are case-insensitive; values keep case.
// Duplicate keys within a section are an error (configs are hand-written and
// silent last-wins would hide mistakes).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mg::util {

/// One typed, named section of a config file.
class ConfigSection {
 public:
  ConfigSection(std::string type, std::string name) : type_(std::move(type)), name_(std::move(name)) {}

  const std::string& type() const { return type_; }
  const std::string& name() const { return name_; }

  bool has(std::string_view key) const;

  /// Required accessors throw ConfigError when the key is missing or the
  /// value does not parse.
  const std::string& getString(std::string_view key) const;
  double getDouble(std::string_view key) const;
  std::int64_t getInt(std::string_view key) const;
  bool getBool(std::string_view key) const;
  double getBandwidth(std::string_view key) const;  // bits/sec
  double getTime(std::string_view key) const;       // seconds
  std::int64_t getSize(std::string_view key) const; // bytes
  double getComputeRate(std::string_view key) const;  // ops/sec

  /// Optional accessors return the fallback when the key is missing.
  std::string getString(std::string_view key, std::string_view fallback) const;
  double getDouble(std::string_view key, double fallback) const;
  std::int64_t getInt(std::string_view key, std::int64_t fallback) const;
  bool getBool(std::string_view key, bool fallback) const;

  /// All keys in file order.
  std::vector<std::string> keys() const;

  void set(std::string_view key, std::string_view value);

 private:
  const std::string* find(std::string_view key) const;

  std::string type_;
  std::string name_;
  std::vector<std::pair<std::string, std::string>> entries_;  // key (lowered), value
};

/// A parsed configuration: an ordered list of sections.
class Config {
 public:
  Config() = default;

  /// Parse from text. Throws ParseError / ConfigError on malformed input.
  static Config parse(std::string_view text);

  /// Parse the file at `path`. Throws on I/O failure.
  static Config parseFile(const std::string& path);

  /// All sections, in file order.
  const std::vector<ConfigSection>& sections() const { return sections_; }

  /// All sections of the given type, in file order.
  std::vector<const ConfigSection*> sectionsOfType(std::string_view type) const;

  /// The unique section with this type and name; throws if absent.
  const ConfigSection& section(std::string_view type, std::string_view name) const;

  /// The unique section with this type and name, or nullptr.
  const ConfigSection* findSection(std::string_view type, std::string_view name) const;

  /// Append a section (used by programmatic construction in tests/examples).
  ConfigSection& addSection(std::string type, std::string name);

 private:
  std::vector<ConfigSection> sections_;
};

}  // namespace mg::util
