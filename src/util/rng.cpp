#include "util/rng.h"

#include <cmath>

namespace mg::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  have_spare_ = false;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::normal() {
  if (have_spare_) {
    have_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  have_spare_ = true;
  return u * m;
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) { return -std::log(1.0 - uniform()) / rate; }

double Rng::lognormal(double mu, double sigma) { return std::exp(normal(mu, sigma)); }

double Rng::pareto(double xm, double alpha) {
  // Inverse CDF: xm * (1-u)^(-1/alpha); uniform() < 1 so the pow is finite.
  return xm * std::pow(1.0 - uniform(), -1.0 / alpha);
}

Rng Rng::split() {
  Rng child(0);
  std::uint64_t sm = next();
  for (auto& s : child.s_) s = splitmix64(sm);
  return child;
}

// ---------------------------------------------------------------------------
// NPB generator. All arithmetic is exact in doubles: operands stay below 2^46
// and partial products below 2^52, the NPB trick.
// ---------------------------------------------------------------------------

namespace {

constexpr double kR23 = 0x1.0p-23;
constexpr double kR46 = 0x1.0p-46;
constexpr double kT23 = 0x1.0p23;
constexpr double kT46 = 0x1.0p46;
constexpr double kNpbA = 1220703125.0;  // 5^13

// One LCG step: returns a*x mod 2^46, exactly, using double arithmetic.
double lcgStep(double a, double x) {
  const double a1 = std::floor(kR23 * a);
  const double a2 = a - kT23 * a1;
  const double x1 = std::floor(kR23 * x);
  const double x2 = x - kT23 * x1;
  const double t1 = a1 * x2 + a2 * x1;
  const double t2 = std::floor(kR23 * t1);
  const double z = t1 - kT23 * t2;
  const double t3 = kT23 * z + a2 * x2;
  const double t4 = std::floor(kR46 * t3);
  return t3 - kT46 * t4;
}

}  // namespace

double NpbRandom::next() {
  x_ = lcgStep(kNpbA, x_);
  return kR46 * x_;
}

void NpbRandom::jump(double seed, std::uint64_t k) {
  // Compute a^k mod 2^46 by binary exponentiation, then multiply onto seed.
  double b = kNpbA;
  double t = seed;
  while (k != 0) {
    if (k & 1) t = lcgStep(b, t);
    b = lcgStep(b, b);
    k >>= 1;
  }
  x_ = t;
}

}  // namespace mg::util
