#include "mc/snapshot.h"

#include "util/error.h"
#include "util/strings.h"

namespace mg::mc {

Snapshot capture(const ScenarioRun& run, double at, const fault::FaultPlan& plan) {
  Snapshot s;
  s.at = at;
  s.digest = run.digest();
  s.plan = plan;
  return s;
}

std::unique_ptr<ScenarioRun> restore(const ScenarioFactory& make, const Snapshot& snap) {
  std::unique_ptr<ScenarioRun> run = make(snap.plan);
  run->runTo(snap.at);
  const std::uint64_t got = run->digest();
  if (got == snap.digest) return run;

  // Diverged: the transcript names the first field that differs, which is
  // worth far more than two 64-bit numbers.
  std::string msg = util::format(
      "restore diverged at t=%.9gvs: digest %016llx, snapshot %016llx",
      snap.at, static_cast<unsigned long long>(got),
      static_cast<unsigned long long>(snap.digest));
  const std::vector<std::string> lines = run->transcript();
  if (!lines.empty()) {
    msg += util::format(" (replayed state has %zu fields; diff the transcripts "
                        "of both runs to locate the leak)",
                        lines.size());
  }
  throw StateError(msg);
}

}  // namespace mg::mc
