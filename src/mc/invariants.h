// The invariant surface the explorer checks after every schedule
// (DESIGN.md §11). Each invariant is a property that must hold at the end
// of ANY fault schedule composed from valid events — a violation is a bug
// in the simulator or middleware, not a property of the schedule:
//
//   workload.lost        every submitted work unit reached a terminal state
//   workload.error       the scenario's own health probe reports clean
//   fault.availability   the availability report agrees with the platform
//                        (a host reported down-at-horizon IS down, and vice
//                        versa; downtime bounded by elapsed time)
//   sim.pending_events   the drained kernel holds no pending events (a
//                        leaked timer would re-animate a "finished" run)
//   net.open_sockets     every TCP connection is closed or reset (a crashed
//                        host's stack died with its connections; survivors
//                        must have unwound theirs)
#pragma once

#include <string>
#include <vector>

#include "mc/scenario.h"

namespace mg::mc {

struct Violation {
  std::string invariant;  // e.g. "fault.availability"
  std::string detail;     // human-readable evidence
};

/// Check every invariant against a drained run (call after runToEnd()).
/// Returns the violations found, in a deterministic order; empty = clean.
std::vector<Violation> checkInvariants(ScenarioRun& run);

/// Render violations as "invariant: detail" lines, one per violation.
std::string renderViolations(const std::vector<Violation>& vs);

}  // namespace mg::mc
