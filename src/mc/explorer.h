// Exhaustive fault-schedule exploration — model checking, lite
// (DESIGN.md §11).
//
// Given a scenario factory and a set of *candidate* faults, each with a
// menu of injection times, the explorer enumerates every schedule (one time
// choice — or skip — per candidate, times every firing order of same-time
// groups), replays each schedule from scratch through the deterministic
// factory, and checks the invariant surface (mc/invariants.h) at the end.
// Two reductions keep the enumeration honest but affordable:
//
//   causal-order reduction   same-time events whose touched topology-node
//       sets are disjoint commute; of each equivalence class of orderings,
//       only the representative with no adjacent out-of-order independent
//       pair is run (partitions and heals touch the whole fabric, so they
//       conservatively depend on everything).
//
//   state-hash pruning       while replaying, the platform digest is taken
//       after each decision time; if (digest, remaining suffix) was already
//       explored, this schedule's future is byte-identical to one already
//       checked and the replay stops early.
//
// On a violation, the explorer greedily delta-debugs the schedule down to a
// minimal reproducing FaultPlan and serializes it as INI — feed it back
// through `mgrun --faults` (or the FaultInjector directly) to replay the
// bug outside the explorer.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "fault/fault_plan.h"
#include "mc/invariants.h"
#include "mc/scenario.h"
#include "util/config.h"

namespace mg::mc {

/// One explorable fault: an event template (its `at` is the nominal time)
/// plus the candidate injection times the explorer may choose from.
struct CandidateFault {
  fault::FaultEvent event;
  std::vector<double> times;  // candidate times; empty means {event.at}
  bool optional = true;       // the explorer may also leave it out entirely
};

struct ExploreOptions {
  /// Stop after this many schedules enumerated (run + pruned); 0 = no cap.
  int budget = 0;
  bool hash_pruning = true;
  bool causal_reduction = true;
  /// Keep exploring after the first violation (all violations are counted;
  /// only the first is minimized).
  bool stop_at_first_violation = false;
  /// Delta-debug the first violating schedule down to a minimal plan.
  bool minimize = true;
  /// Fixed faults injected in every schedule, on top of the candidates.
  fault::FaultPlan base;
};

struct ExploreStats {
  std::int64_t enumerated = 0;     // schedules visited (runs + pruned)
  std::int64_t runs = 0;           // schedules replayed to the end
  std::int64_t pruned_hash = 0;    // stopped early by (digest, suffix) memo
  std::int64_t pruned_causal = 0;  // orderings cut by independence
  std::int64_t violations = 0;
};

struct ExploreResult {
  ExploreStats stats;
  /// One deterministic line per schedule: index, signature, outcome, digest.
  /// Byte-identical across runs — the explorer's own determinism gate.
  std::vector<std::string> branch_log;
  bool violation_found = false;
  std::string first_violation;      // "invariant: detail" of the first hit
  fault::FaultPlan violating_plan;  // the full first violating schedule
  fault::FaultPlan minimal_plan;    // its delta-debugged reproduction
  std::string renderStats() const;
};

class Explorer {
 public:
  Explorer(ScenarioFactory factory, std::vector<CandidateFault> candidates,
           ExploreOptions opts = {});

  /// Enumerate, replay, check. Deterministic: equal inputs give equal
  /// results, branch logs included.
  ExploreResult explore();

  /// The [explore] + [candidate ...] dialect (examples/grids/*explore*.ini):
  ///
  ///   [explore]
  ///   budget = 200              # optional; 0 = unlimited
  ///   hash_pruning = true
  ///   causal_reduction = true
  ///
  ///   [candidate crash]
  ///   at = 1s                   # nominal time (used when `times` is absent)
  ///   kind = host_crash
  ///   target = vm3.ucsd.edu
  ///   times = 0.5s, 1s, 2s      # the menu the explorer chooses from
  ///   optional = true           # may also be skipped entirely
  ///
  /// Candidate sections take every key their fault kind accepts, plus
  /// `times` and `optional`; unknown keys are rejected like [fault] ones.
  struct Spec {
    ExploreOptions options;
    std::vector<CandidateFault> candidates;
  };
  static Spec parseSpec(const util::Config& cfg);

 private:
  struct Touch {
    bool universal = false;       // depends on everything (partition, heal)
    std::set<std::string> nodes;  // topology node names touched
  };

  void resolveTouches();
  bool independent(int a, int b) const;
  /// Keep exactly the orderings with no adjacent out-of-order independent
  /// pair (one representative per commutation class).
  std::vector<std::vector<int>> orderings(const std::vector<int>& group,
                                          ExploreStats& stats) const;
  void assignTimes(std::size_t idx, std::vector<double>& chosen,
                   std::vector<bool>& present, ExploreResult& out);
  void enumerateOrders(const std::map<double, std::vector<int>>& groups,
                       std::map<double, std::vector<int>>::const_iterator it,
                       std::vector<fault::FaultEvent>& firing, ExploreResult& out);
  void runSchedule(const std::vector<fault::FaultEvent>& firing, ExploreResult& out);
  bool violates(const fault::FaultPlan& plan);
  fault::FaultPlan minimize(const fault::FaultPlan& bad);
  fault::FaultPlan planFor(const std::vector<fault::FaultEvent>& events) const;

  ScenarioFactory factory_;
  std::vector<CandidateFault> candidates_;
  ExploreOptions opts_;
  std::vector<Touch> touches_;
  std::set<std::pair<std::uint64_t, std::string>> memo_;  // (digest, suffix)
  bool stop_ = false;
};

}  // namespace mg::mc
