// Model-checking scenarios (DESIGN.md §11).
//
// A ScenarioRun is one fully-armed simulation instance: a MicroGridPlatform
// with a workload submitted (but not yet driven) and a FaultInjector armed
// with some FaultPlan. The explorer owns the stepping — runTo() pauses at
// fault decision points to capture state digests, runToEnd() drains the
// run so the invariant checker can inspect the terminal state.
//
// Because simulated processes are OS threads, a snapshot cannot byte-copy
// stacks; a scenario is therefore a *factory* — a pure function from a
// FaultPlan to a fresh, deterministic instance. "Restoring" a snapshot means
// rebuilding via the factory, replaying to the capture time, and verifying
// the state digest (see mc/snapshot.h). That makes determinism of the
// factory a hard requirement: two instances built from equal plans must be
// byte-identical at every virtual time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/launcher.h"
#include "core/microgrid_platform.h"
#include "fault/fault_injector.h"
#include "obs/state_capture.h"

namespace mg::mc {

struct ScenarioRun {
  /// Opaque keep-alive (executable registries, result sinks, byte counters).
  /// Declared first so it outlives the platform and its threads.
  std::shared_ptr<void> context;

  std::unique_ptr<core::MicroGridPlatform> platform;
  std::unique_ptr<core::Launcher> launcher;  // null for raw-process scenarios
  std::unique_ptr<fault::FaultInjector> injector;
  obs::StateCaptureRegistry capture;

  /// Work accounting for the no-lost-jobs invariant: after runToEnd(),
  /// units_completed() must equal units_expected.
  std::int64_t units_expected = 0;
  std::function<std::int64_t()> units_completed;
  /// Extra workload-health probe; returns "" while healthy. Consulted by the
  /// invariant checker after the run drains.
  std::function<std::string()> workload_error;

  /// Drive the simulation to virtual time `virtual_s` (armed fault events in
  /// (last, virtual_s] fire inside). Returns the new virtual time.
  double runTo(double virtual_s);

  /// Drain the simulation (daemons stay suspended); returns the final
  /// virtual time. The platform stays alive for invariant inspection.
  double runToEnd();

  /// Canonical digest of the full platform state at the current pause point.
  std::uint64_t digest() const { return capture.digest(); }
  /// The field-by-field transcript of digest() — the diff surface when a
  /// restore does not reproduce the captured state.
  std::vector<std::string> transcript() const { return capture.transcript(); }

  ScenarioRun() = default;
  ScenarioRun(const ScenarioRun&) = delete;
  ScenarioRun& operator=(const ScenarioRun&) = delete;
  ~ScenarioRun();
};

/// A deterministic builder: equal plans must produce byte-identical runs.
using ScenarioFactory =
    std::function<std::unique_ptr<ScenarioRun>(const fault::FaultPlan&)>;

/// The canonical light scenario: the 4-host Alpha cluster moving one 256 KiB
/// TCP transfer vm1 -> vm0 (client connects at t=1ms). No middleware, a few
/// thousand kernel events — cheap enough to replay hundreds of schedules.
/// Transient link faults and crash/restart of the bystander hosts vm2/vm3
/// leave the transfer completable, so the standard invariants hold on every
/// schedule unless something is genuinely broken.
ScenarioFactory transferScenario();

/// A launcher-driven scenario: GIS + gatekeepers up, one job submitted via
/// Launcher::submitAsync (the non-blocking half of run(), so the explorer
/// keeps control of stepping).
struct LauncherScenarioSpec {
  core::VirtualGridConfig grid;
  std::string config_name = "mc";
  std::string executable;
  std::string arguments;
  std::vector<grid::AllocationPart> parts;
  std::string client_host;  // default: the first part's host
  int max_resubmits = 3;
  core::MicroGridOptions platform;
  /// Registers the executables each fresh instance may run. Must be
  /// deterministic; sinks it captures are shared across instances.
  std::function<void(grid::ExecutableRegistry&)> registrar;
};
ScenarioFactory launcherScenario(LauncherScenarioSpec spec);

}  // namespace mg::mc
