#include "mc/invariants.h"

#include "util/strings.h"

namespace mg::mc {

std::vector<Violation> checkInvariants(ScenarioRun& run) {
  std::vector<Violation> out;
  core::MicroGridPlatform& p = *run.platform;

  if (run.units_completed) {
    const std::int64_t done = run.units_completed();
    if (done != run.units_expected) {
      out.push_back({"workload.lost",
                     util::format("%lld of %lld work units reached a terminal state",
                                  static_cast<long long>(done),
                                  static_cast<long long>(run.units_expected))});
    }
  }
  if (run.workload_error) {
    const std::string err = run.workload_error();
    if (!err.empty()) out.push_back({"workload.error", err});
  }

  if (run.injector) {
    const double elapsed = p.virtualNow();
    for (const auto& r : run.injector->report(elapsed)) {
      const bool alive = p.hostAlive(r.host);
      if (r.down_at_horizon == alive) {
        out.push_back(
            {"fault.availability",
             "host " + r.host + " reported " +
                 (r.down_at_horizon ? "down" : "up") + " at the horizon but is " +
                 (alive ? "alive" : "dead")});
      }
      if (r.downtime_seconds < -1e-9 || r.downtime_seconds > elapsed + 1e-9) {
        out.push_back({"fault.availability",
                       util::format("host %s downtime %.9g outside [0, %.9g]",
                                    r.host.c_str(), r.downtime_seconds, elapsed)});
      }
    }
  }

  const std::size_t pending = p.simulator().pendingEventCount();
  if (pending != 0) {
    out.push_back({"sim.pending_events",
                   util::format("%zu events still pending after drain", pending)});
  }

  const std::size_t open = p.openTcpConnections();
  if (open != 0) {
    out.push_back({"net.open_sockets",
                   util::format("%zu TCP connections neither closed nor reset", open)});
  }
  return out;
}

std::string renderViolations(const std::vector<Violation>& vs) {
  std::string out;
  for (const auto& v : vs) {
    if (!out.empty()) out += "\n";
    out += v.invariant + ": " + v.detail;
  }
  return out;
}

}  // namespace mg::mc
