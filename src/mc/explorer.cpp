#include "mc/explorer.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/error.h"
#include "util/strings.h"
#include "util/units.h"

namespace mg::mc {

namespace {

std::string signatureOf(const std::vector<fault::FaultEvent>& firing) {
  if (firing.empty()) return "(none)";
  std::string sig;
  for (const auto& ev : firing) {
    if (!sig.empty()) sig += ",";
    sig += ev.name + "@" + obs::formatDouble(ev.at);
  }
  return sig;
}

std::string hex64(std::uint64_t v) {
  return util::format("%016llx", static_cast<unsigned long long>(v));
}

}  // namespace

Explorer::Explorer(ScenarioFactory factory, std::vector<CandidateFault> candidates,
                   ExploreOptions opts)
    : factory_(std::move(factory)), candidates_(std::move(candidates)),
      opts_(std::move(opts)) {
  for (auto& c : candidates_) {
    if (c.times.empty()) c.times = {c.event.at};
    std::sort(c.times.begin(), c.times.end());
    c.times.erase(std::unique(c.times.begin(), c.times.end()), c.times.end());
    for (double t : c.times) {
      if (t < 0) throw ConfigError("candidate '" + c.event.name + "' has a negative time");
    }
  }
}

void Explorer::resolveTouches() {
  // One probe instance resolves every candidate's touched topology nodes
  // (and validates targets before the enumeration invests any work).
  const std::unique_ptr<ScenarioRun> probe = factory_(opts_.base);
  const net::Topology& topo = probe->platform->network().topology();
  touches_.clear();
  for (const auto& c : candidates_) {
    Touch t;
    switch (c.event.kind) {
      case fault::FaultKind::LinkDown:
      case fault::FaultKind::LinkUp:
      case fault::FaultKind::LinkDegrade: {
        const net::LinkId lid = topo.findLink(c.event.target);
        if (lid == net::kNoLink) {
          throw ConfigError("candidate '" + c.event.name + "': unknown link '" +
                            c.event.target + "'");
        }
        t.nodes.insert(topo.node(topo.link(lid).a).name);
        t.nodes.insert(topo.node(topo.link(lid).b).name);
        break;
      }
      case fault::FaultKind::HostCrash:
      case fault::FaultKind::HostRestart:
      case fault::FaultKind::CpuBrownout: {
        if (topo.findNode(c.event.target) == net::kNoNode) {
          throw ConfigError("candidate '" + c.event.name + "': unknown host '" +
                            c.event.target + "'");
        }
        t.nodes.insert(c.event.target);
        break;
      }
      case fault::FaultKind::Partition:
      case fault::FaultKind::Heal:
        // A partition's cut (and what a heal mends) depends on current link
        // state, so these conservatively depend on everything.
        t.universal = true;
        break;
    }
    touches_.push_back(std::move(t));
  }
}

bool Explorer::independent(int a, int b) const {
  const Touch& ta = touches_[static_cast<std::size_t>(a)];
  const Touch& tb = touches_[static_cast<std::size_t>(b)];
  if (ta.universal || tb.universal) return false;
  for (const auto& n : ta.nodes) {
    if (tb.nodes.count(n) > 0) return false;
  }
  return true;
}

std::vector<std::vector<int>> Explorer::orderings(const std::vector<int>& group,
                                                  ExploreStats& stats) const {
  if (group.size() <= 1) return {group};
  std::vector<int> perm = group;  // candidate order = ascending indices
  std::sort(perm.begin(), perm.end());
  std::vector<std::vector<int>> keep;
  do {
    // One representative per commutation class: reject any ordering with an
    // adjacent independent pair out of canonical (index) order — swapping
    // that pair yields an equivalent, already-kept ordering.
    bool canonical = true;
    for (std::size_t i = 0; i + 1 < perm.size(); ++i) {
      if (perm[i] > perm[i + 1] && independent(perm[i], perm[i + 1])) {
        canonical = false;
        break;
      }
    }
    if (canonical && opts_.causal_reduction) {
      keep.push_back(perm);
    } else if (!opts_.causal_reduction) {
      keep.push_back(perm);
    } else {
      ++stats.pruned_causal;
    }
  } while (std::next_permutation(perm.begin(), perm.end()));
  return keep;
}

fault::FaultPlan Explorer::planFor(const std::vector<fault::FaultEvent>& events) const {
  fault::FaultPlan plan = opts_.base;
  // add() stable-sorts by time, so appending in firing order realizes the
  // chosen same-time ordering (ties keep insertion order).
  for (const auto& ev : events) plan.add(ev);
  return plan;
}

void Explorer::runSchedule(const std::vector<fault::FaultEvent>& firing,
                           ExploreResult& out) {
  if (stop_) return;
  if (opts_.budget > 0 && out.stats.enumerated >= opts_.budget) {
    stop_ = true;
    return;
  }
  const std::int64_t idx = ++out.stats.enumerated;
  const std::string sig = "[" + signatureOf(firing) + "]";
  auto log = [&](const std::string& line) {
    out.branch_log.push_back(util::format("#%lld ", static_cast<long long>(idx)) + line);
  };

  fault::FaultPlan plan = planFor(firing);
  std::unique_ptr<ScenarioRun> run;
  try {
    run = factory_(plan);
  } catch (const mg::Error& e) {
    // E.g. a heal whose partition was skipped this schedule: not a bug,
    // just an inconsistent combination — logged and skipped.
    log(sig + " invalid: " + e.what());
    return;
  }

  // Step decision point by decision point; at each, the digest plus the
  // yet-to-fire suffix identify this branch's entire future.
  std::vector<double> decisions;
  for (const auto& ev : firing) decisions.push_back(ev.at);
  std::sort(decisions.begin(), decisions.end());
  decisions.erase(std::unique(decisions.begin(), decisions.end()), decisions.end());
  for (double t : decisions) {
    run->runTo(t);
    if (!opts_.hash_pruning) continue;
    const std::uint64_t d = run->digest();
    std::string suffix;
    for (const auto& ev : firing) {
      if (ev.at <= t) continue;
      suffix += ev.name + "@" + obs::formatDouble(ev.at) + "|";
    }
    if (!memo_.insert({d, suffix}).second) {
      ++out.stats.pruned_hash;
      log(sig + " pruned@" + obs::formatDouble(t) + " digest=" + hex64(d));
      return;
    }
  }

  const double end = run->runToEnd();
  ++out.stats.runs;
  const std::vector<Violation> vs = checkInvariants(*run);
  const std::uint64_t final_digest = run->digest();
  if (vs.empty()) {
    log(sig + " ok end=" + obs::formatDouble(end) + " digest=" + hex64(final_digest));
    return;
  }
  ++out.stats.violations;
  log(sig + " VIOLATION " + vs.front().invariant + ": " + vs.front().detail +
      " digest=" + hex64(final_digest));
  if (!out.violation_found) {
    out.violation_found = true;
    out.first_violation = vs.front().invariant + ": " + vs.front().detail;
    out.violating_plan = plan;
  }
  if (opts_.stop_at_first_violation) stop_ = true;
}

void Explorer::enumerateOrders(const std::map<double, std::vector<int>>& groups,
                               std::map<double, std::vector<int>>::const_iterator it,
                               std::vector<fault::FaultEvent>& firing,
                               ExploreResult& out) {
  if (stop_) return;
  if (it == groups.end()) {
    runSchedule(firing, out);
    return;
  }
  const double at = it->first;
  auto next = std::next(it);
  for (const std::vector<int>& order : orderings(it->second, out.stats)) {
    const std::size_t mark = firing.size();
    for (int c : order) {
      fault::FaultEvent ev = candidates_[static_cast<std::size_t>(c)].event;
      ev.at = at;
      firing.push_back(std::move(ev));
    }
    enumerateOrders(groups, next, firing, out);
    firing.resize(mark);
    if (stop_) return;
  }
}

void Explorer::assignTimes(std::size_t idx, std::vector<double>& chosen,
                           std::vector<bool>& present, ExploreResult& out) {
  if (stop_) return;
  if (idx == candidates_.size()) {
    std::map<double, std::vector<int>> groups;  // time -> candidates, index order
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      if (present[i]) groups[chosen[i]].push_back(static_cast<int>(i));
    }
    std::vector<fault::FaultEvent> firing;
    enumerateOrders(groups, groups.begin(), firing, out);
    return;
  }
  for (double t : candidates_[idx].times) {
    chosen[idx] = t;
    present[idx] = true;
    assignTimes(idx + 1, chosen, present, out);
    if (stop_) return;
  }
  if (candidates_[idx].optional) {
    present[idx] = false;
    assignTimes(idx + 1, chosen, present, out);
  }
}

ExploreResult Explorer::explore() {
  ExploreResult out;
  memo_.clear();
  stop_ = false;
  resolveTouches();
  std::vector<double> chosen(candidates_.size(), 0);
  std::vector<bool> present(candidates_.size(), false);
  assignTimes(0, chosen, present, out);
  if (out.violation_found && opts_.minimize) {
    out.minimal_plan = minimize(out.violating_plan);
  }
  return out;
}

bool Explorer::violates(const fault::FaultPlan& plan) {
  try {
    const std::unique_ptr<ScenarioRun> run = factory_(plan);
    run->runToEnd();
    return !checkInvariants(*run).empty();
  } catch (const mg::Error&) {
    return false;  // an invalid trimmed plan cannot reproduce the bug
  }
}

fault::FaultPlan Explorer::minimize(const fault::FaultPlan& bad) {
  // Greedy delta-debugging: repeatedly drop any event whose removal keeps
  // the violation alive, until no single removal does.
  std::vector<fault::FaultEvent> events = bad.events();
  bool changed = true;
  while (changed && events.size() > 1) {
    changed = false;
    for (std::size_t i = events.size(); i-- > 0;) {
      std::vector<fault::FaultEvent> trial = events;
      trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
      fault::FaultPlan p;
      for (const auto& ev : trial) p.add(ev);
      if (violates(p)) {
        events = std::move(trial);
        changed = true;
      }
    }
  }
  fault::FaultPlan minimal;
  for (const auto& ev : events) minimal.add(ev);
  return minimal;
}

std::string ExploreResult::renderStats() const {
  std::string out;
  out += util::format("schedules enumerated:       %lld\n",
                      static_cast<long long>(stats.enumerated));
  out += util::format("schedules replayed:         %lld\n",
                      static_cast<long long>(stats.runs));
  out += util::format("pruned (state hash):        %lld\n",
                      static_cast<long long>(stats.pruned_hash));
  out += util::format("orderings pruned (causal):  %lld\n",
                      static_cast<long long>(stats.pruned_causal));
  out += util::format("violations:                 %lld\n",
                      static_cast<long long>(stats.violations));
  return out;
}

Explorer::Spec Explorer::parseSpec(const util::Config& cfg) {
  Spec spec;
  const auto explore_secs = cfg.sectionsOfType("explore");
  if (explore_secs.size() > 1) throw ConfigError("multiple [explore] sections");
  if (!explore_secs.empty()) {
    const util::ConfigSection& sec = *explore_secs.front();
    spec.options.budget = static_cast<int>(sec.getInt("budget", 0));
    if (spec.options.budget < 0) throw ConfigError("[explore] budget must be >= 0");
    spec.options.hash_pruning = sec.getBool("hash_pruning", true);
    spec.options.causal_reduction = sec.getBool("causal_reduction", true);
    spec.options.stop_at_first_violation = sec.getBool("stop_at_first_violation", false);
    spec.options.minimize = sec.getBool("minimize", true);
    for (const std::string& key : sec.keys()) {
      if (key != "budget" && key != "hash_pruning" && key != "causal_reduction" &&
          key != "stop_at_first_violation" && key != "minimize") {
        throw ConfigError("[explore]: unknown key '" + key + "'");
      }
    }
  }
  std::set<std::string> names;
  for (const auto* sec : cfg.sectionsOfType("candidate")) {
    CandidateFault c;
    c.event = fault::FaultPlan::parseEvent(*sec, {"times", "optional"});
    if (!names.insert(c.event.name).second) {
      throw ConfigError("duplicate candidate '" + c.event.name + "'");
    }
    if (sec->has("times")) {
      for (const auto& t : util::splitTrim(sec->getString("times"), ',')) {
        c.times.push_back(util::parseTime(t));
      }
      if (c.times.empty()) {
        throw ConfigError("candidate '" + c.event.name + "' has an empty times list");
      }
    }
    c.optional = sec->getBool("optional", true);
    spec.candidates.push_back(std::move(c));
  }
  if (spec.candidates.empty()) {
    throw ConfigError("explore spec has no [candidate ...] sections");
  }
  return spec;
}

}  // namespace mg::mc
