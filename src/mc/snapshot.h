// Snapshot/restore by deterministic replay (DESIGN.md §11).
//
// Simulated processes are OS threads, so the kernel cannot byte-copy their
// stacks, and fork() is off the table for a multi-threaded simulator. A
// snapshot is therefore a *replay recipe*, the stateless-model-checking
// construction: {virtual time, canonical state digest, the FaultPlan the
// instance was built with}. Restoring rebuilds a fresh instance through the
// same ScenarioFactory, replays it to the capture time, and verifies the
// digest — byte-identical state, bought with determinism instead of memcpy.
//
// A digest mismatch on restore means the factory is NOT a pure function of
// its plan (hidden global state, wall-clock leakage, unseeded randomness) —
// exactly the bug class that would silently invalidate every explorer
// result, surfaced loudly with a transcript diff.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fault/fault_plan.h"
#include "mc/scenario.h"

namespace mg::mc {

struct Snapshot {
  double at = 0;              // virtual time of the capture
  std::uint64_t digest = 0;   // canonical state digest at `at`
  fault::FaultPlan plan;      // the replay recipe, with the factory
};

/// Capture the current pause point of `run` (which was built from `plan`).
Snapshot capture(const ScenarioRun& run, double at, const fault::FaultPlan& plan);

/// Rebuild via `make`, replay to `snap.at`, and verify the digest. Throws
/// mg::StateError on a mismatch, with the first diverging transcript lines
/// in the message. The returned run is paused exactly at snap.at.
std::unique_ptr<ScenarioRun> restore(const ScenarioFactory& make, const Snapshot& snap);

}  // namespace mg::mc
