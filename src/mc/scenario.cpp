#include "mc/scenario.h"

#include <vector>

#include "core/topologies.h"

namespace mg::mc {

double ScenarioRun::runTo(double virtual_s) {
  sim::Simulator& sim = platform->simulator();
  sim.runUntil(platform->virtualTime().toKernel(virtual_s));
  return platform->virtualNow();
}

double ScenarioRun::runToEnd() {
  platform->simulator().run();
  return platform->virtualNow();
}

ScenarioRun::~ScenarioRun() {
  // Join every process thread before members start dying under them.
  if (platform) platform->shutdown();
}

ScenarioFactory transferScenario() {
  return [](const fault::FaultPlan& plan) {
    auto run = std::make_unique<ScenarioRun>();
    const auto cfg = core::topologies::alphaCluster();
    run->platform = std::make_unique<core::MicroGridPlatform>(cfg);
    core::MicroGridPlatform& p = *run->platform;
    run->injector = std::make_unique<fault::FaultInjector>(p, plan);
    run->injector->arm();

    constexpr std::size_t kBytes = 256 * 1024;
    auto received = std::make_shared<std::size_t>(0);
    p.spawnOn("vm0.ucsd.edu", "rx", [received](vos::HostContext& ctx) {
      auto listener = ctx.listen(80);
      auto sock = listener->accept();
      std::vector<std::uint8_t> buf(1 << 16);
      for (;;) {
        const std::size_t n = sock->recv(buf.data(), buf.size());
        if (n == 0) break;
        *received += n;
      }
      // Unwind cleanly: the net.open_sockets invariant requires every
      // survivor's connections closed or reset at the end of any schedule.
      sock->close();
    });
    p.spawnOn("vm1.ucsd.edu", "tx", [](vos::HostContext& ctx) {
      ctx.sleep(0.001);
      auto sock = ctx.connect("vm0.ucsd.edu", 80);
      std::vector<std::uint8_t> msg(kBytes, 0x5a);
      sock->send(msg.data(), msg.size());
      sock->close();
    });

    run->context = received;
    run->units_expected = 1;
    run->units_completed = [received] {
      return *received == kBytes ? std::int64_t{1} : std::int64_t{0};
    };
    p.registerStateCapture(run->capture);
    run->injector->registerStateCapture(run->capture);
    return run;
  };
}

ScenarioFactory launcherScenario(LauncherScenarioSpec spec) {
  auto shared = std::make_shared<const LauncherScenarioSpec>(std::move(spec));
  return [shared](const fault::FaultPlan& plan) {
    struct Ctx {
      grid::ExecutableRegistry registry;
      std::shared_ptr<core::LaunchResult> result;
    };
    auto ctx = std::make_shared<Ctx>();
    if (shared->registrar) shared->registrar(ctx->registry);

    auto run = std::make_unique<ScenarioRun>();
    run->platform =
        std::make_unique<core::MicroGridPlatform>(shared->grid, shared->platform);
    run->launcher = std::make_unique<core::Launcher>(*run->platform, ctx->registry);
    run->launcher->startServices(&shared->grid, shared->config_name);
    core::LaunchOptions lopts;
    lopts.max_resubmits = shared->max_resubmits;
    run->launcher->setLaunchOptions(lopts);

    run->injector = std::make_unique<fault::FaultInjector>(*run->platform, plan);
    core::Launcher* launcher = run->launcher.get();
    run->injector->onHostCrash(
        [launcher](const std::string& h) { launcher->markHostDown(h); });
    run->injector->onHostRestart(
        [launcher](const std::string& h) { launcher->markHostUp(h); });
    run->injector->arm();

    ctx->result = run->launcher->submitAsync(shared->executable, shared->arguments,
                                             shared->parts, {}, shared->client_host);
    run->context = ctx;
    run->units_expected = 1;
    run->units_completed = [ctx] {
      // A terminal state — success OR a reported failure — counts; only a
      // job that silently never finishes (lost/deadlocked) is a violation.
      return ctx->result->completed_at != 0 ? std::int64_t{1} : std::int64_t{0};
    };
    run->workload_error = [ctx]() -> std::string {
      if (ctx->result->completed_at == 0) {
        return "job never reached a terminal state (lost or deadlocked)";
      }
      return "";
    };
    run->platform->registerStateCapture(run->capture);
    run->launcher->registerStateCapture(run->capture);
    run->injector->registerStateCapture(run->capture);
    return run;
  };
}

}  // namespace mg::mc
