// Virtual time (paper §2.3, "Virtualizing Time").
//
// Programs monitor progress with gettimeofday(); the MicroGrid returns
// "appropriately adjusted times ... to provide the illusion of a virtual
// machine at full speed". VirtualTime maps the kernel (emulation wall-clock)
// timeline to the virtual timeline by the chosen simulation rate:
//
//     virtual_seconds = rate * kernel_seconds
//
// A rate of 0.04 (paper Fig 17) means one virtual second takes 25 emulation
// seconds.
#pragma once

#include "sim/time.h"
#include "util/error.h"

namespace mg::vos {

class VirtualTime {
 public:
  /// `rate` is virtual seconds per kernel second; must be positive.
  explicit VirtualTime(double rate) : rate_(rate) {
    if (rate <= 0) throw ConfigError("simulation rate must be positive");
  }

  double rate() const { return rate_; }

  /// The virtualized gettimeofday(): kernel clock -> virtual seconds.
  double toVirtualSeconds(sim::SimTime kernel_time) const {
    return sim::toSeconds(kernel_time) * rate_;
  }

  /// Virtual seconds -> kernel clock duration.
  sim::SimTime toKernel(double virtual_seconds) const {
    return sim::fromSeconds(virtual_seconds / rate_);
  }

  /// Kernel duration per unit of virtual duration (the network time_scale).
  double kernelPerVirtual() const { return 1.0 / rate_; }

 private:
  double rate_;
};

}  // namespace mg::vos
