// Virtual host descriptors and the virtual->physical mapping table.
//
// Paper §2.2.1: "each virtual host is mapped to a physical machine using a
// mapping table from virtual IP address to physical IP address. All relevant
// library calls are intercepted and mapped from virtual to physical space."
// HostMapper is that table; resolve() is the interposed gethostbyname().
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/topology.h"
#include "util/error.h"

namespace mg::vos {

/// One virtual host: identity, resources, and its physical placement.
struct VirtualHostInfo {
  std::string hostname;       // e.g. "vm0.ucsd.edu"
  std::string virtual_ip;     // e.g. "1.11.11.1"
  double cpu_ops = 0;         // virtual CPU speed, operations/second
  std::int64_t memory_bytes = 0;
  std::string physical_host;  // name of the physical machine it maps to
  net::NodeId node = net::kNoNode;  // this host's node in the virtual topology
};

/// Unknown hostname / IP passed to a name-resolution call.
class UnknownHost : public mg::Error {
 public:
  explicit UnknownHost(const std::string& name) : mg::Error("unknown virtual host: " + name) {}
};

class HostMapper {
 public:
  /// Register a virtual host. Hostname and IP must be unique.
  void add(VirtualHostInfo info);

  /// Resolve a hostname or virtual IP; throws UnknownHost.
  const VirtualHostInfo& resolve(const std::string& name_or_ip) const;

  /// Lookup by topology node; throws UnknownHost.
  const VirtualHostInfo& byNode(net::NodeId node) const;

  bool contains(const std::string& name_or_ip) const;

  const std::vector<VirtualHostInfo>& hosts() const { return hosts_; }

  /// All virtual hosts mapped onto the given physical machine.
  std::vector<const VirtualHostInfo*> hostsOnPhysical(const std::string& physical) const;

  /// Distinct physical machine names, in first-use order.
  std::vector<std::string> physicalHosts() const;

 private:
  std::vector<VirtualHostInfo> hosts_;
  // Name/IP/node lookup indexes (values are hosts_ positions; the vector
  // reallocates, so no pointers). Generated 100k-host grids resolve names
  // once per host and per connection — linear scans made setup quadratic.
  std::unordered_map<std::string, std::size_t> by_name_;
  std::unordered_map<net::NodeId, std::size_t> by_node_;
};

}  // namespace mg::vos
