// Virtual-host memory capacity enforcement (paper §3.2.1, Fig 5).
//
// The scheduler enforces a per-virtual-host memory limit; each process costs
// a fixed bookkeeping overhead (the paper measured "about 1KB less than the
// specified memory limitation ... due to memory overhead for the process").
// Allocation is accounting-only: the simulation never actually reserves the
// bytes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "util/error.h"

namespace mg::vos {

/// Thrown when an allocation would exceed the virtual host's capacity.
class OutOfMemoryError : public mg::Error {
 public:
  explicit OutOfMemoryError(const std::string& what) : mg::Error("out of memory: " + what) {}
};

class MemoryManager {
 public:
  /// Per-process bookkeeping overhead, matching the paper's ~1 KB.
  static constexpr std::int64_t kProcessOverhead = 1024;

  /// With a registry (the platforms pass their simulator's), accounting is
  /// mirrored into the `vos.mem.*` instruments; nullptr keeps the manager
  /// standalone (unit tests).
  explicit MemoryManager(std::int64_t capacity_bytes, obs::MetricsRegistry* registry = nullptr);

  using ProcessId = std::int32_t;

  /// Register a process; charges kProcessOverhead. Throws OutOfMemoryError
  /// if even the overhead does not fit.
  ProcessId registerProcess(const std::string& name);

  /// Release a process and everything it allocated.
  void releaseProcess(ProcessId id);

  /// Account `bytes` to the process; throws OutOfMemoryError when the host
  /// capacity would be exceeded (the process survives; the caller decides).
  void allocate(ProcessId id, std::int64_t bytes);

  /// Return previously allocated bytes. Freeing more than allocated throws.
  void free(ProcessId id, std::int64_t bytes);

  std::int64_t capacity() const { return capacity_; }
  std::int64_t used() const { return used_; }
  std::int64_t available() const { return capacity_ - used_; }
  std::int64_t processUsage(ProcessId id) const;

 private:
  struct Proc {
    std::string name;
    std::int64_t used = 0;
    bool live = false;
  };
  Proc& liveProc(ProcessId id);
  const Proc& liveProc(ProcessId id) const;

  std::int64_t capacity_;
  std::int64_t used_ = 0;
  // Optional vos.mem.* instruments (shared across hosts on one simulator).
  obs::Counter* c_allocs_ = nullptr;
  obs::Counter* c_oom_ = nullptr;
  obs::Gauge* g_used_ = nullptr;
  std::vector<Proc> procs_;
};

}  // namespace mg::vos
