#include "vos/wire.h"

#include "util/error.h"

namespace mg::vos {

void StreamSocket::recvExact(void* buf, std::size_t n) {
  auto* out = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const std::size_t r = recv(out + got, n - got);
    if (r == 0) throw mg::Error("stream ended mid-message");
    got += r;
  }
}

void sendFrame(StreamSocket& sock, const std::string& payload) {
  if (payload.size() > kMaxFrameBytes) throw mg::UsageError("frame too large");
  const auto len = static_cast<std::uint32_t>(payload.size());
  const std::uint8_t hdr[4] = {
      static_cast<std::uint8_t>(len >> 24),
      static_cast<std::uint8_t>(len >> 16),
      static_cast<std::uint8_t>(len >> 8),
      static_cast<std::uint8_t>(len),
  };
  sock.send(hdr, 4);
  if (!payload.empty()) sock.send(payload.data(), payload.size());
}

std::string recvFrame(StreamSocket& sock) {
  std::uint8_t hdr[4];
  sock.recvExact(hdr, 4);
  const std::uint32_t len = (static_cast<std::uint32_t>(hdr[0]) << 24) |
                            (static_cast<std::uint32_t>(hdr[1]) << 16) |
                            (static_cast<std::uint32_t>(hdr[2]) << 8) |
                            static_cast<std::uint32_t>(hdr[3]);
  if (len > kMaxFrameBytes) throw mg::Error("oversized frame");
  std::string payload(len, '\0');
  if (len > 0) sock.recvExact(payload.data(), len);
  return payload;
}

void sendFrame(StreamSocket& sock, const std::string& payload, obs::MetricsRegistry& metrics) {
  sendFrame(sock, payload);
  metrics.counter("vos.wire.frames_sent").inc();
  metrics.counter("vos.wire.bytes_sent").inc(static_cast<std::int64_t>(payload.size()) + 4);
}

std::string recvFrame(StreamSocket& sock, obs::MetricsRegistry& metrics) {
  std::string payload = recvFrame(sock);
  metrics.counter("vos.wire.frames_received").inc();
  metrics.counter("vos.wire.bytes_received").inc(static_cast<std::int64_t>(payload.size()) + 4);
  return payload;
}

}  // namespace mg::vos
