#include "vos/memory.h"

namespace mg::vos {

MemoryManager::MemoryManager(std::int64_t capacity_bytes, obs::MetricsRegistry* registry)
    : capacity_(capacity_bytes) {
  if (capacity_bytes < 0) throw ConfigError("negative memory capacity");
  if (registry != nullptr) {
    c_allocs_ = &registry->counter("vos.mem.allocations");
    c_oom_ = &registry->counter("vos.mem.oom_errors");
    g_used_ = &registry->gauge("vos.mem.used_bytes");
  }
}

MemoryManager::Proc& MemoryManager::liveProc(ProcessId id) {
  if (id < 0 || static_cast<size_t>(id) >= procs_.size() || !procs_[static_cast<size_t>(id)].live) {
    throw UsageError("unknown memory process id");
  }
  return procs_[static_cast<size_t>(id)];
}

const MemoryManager::Proc& MemoryManager::liveProc(ProcessId id) const {
  return const_cast<MemoryManager*>(this)->liveProc(id);
}

MemoryManager::ProcessId MemoryManager::registerProcess(const std::string& name) {
  if (used_ + kProcessOverhead > capacity_) {
    if (c_oom_ != nullptr) c_oom_->inc();
    throw OutOfMemoryError("process overhead for '" + name + "' exceeds capacity");
  }
  used_ += kProcessOverhead;
  if (g_used_ != nullptr) g_used_->add(static_cast<double>(kProcessOverhead));
  procs_.push_back(Proc{name, kProcessOverhead, true});
  return static_cast<ProcessId>(procs_.size() - 1);
}

void MemoryManager::releaseProcess(ProcessId id) {
  Proc& p = liveProc(id);
  used_ -= p.used;
  if (g_used_ != nullptr) g_used_->add(-static_cast<double>(p.used));
  p.used = 0;
  p.live = false;
}

void MemoryManager::allocate(ProcessId id, std::int64_t bytes) {
  if (bytes < 0) throw UsageError("negative allocation");
  Proc& p = liveProc(id);
  if (used_ + bytes > capacity_) {
    if (c_oom_ != nullptr) c_oom_->inc();
    throw OutOfMemoryError(p.name + " requested " + std::to_string(bytes) + " bytes, " +
                           std::to_string(available()) + " available");
  }
  used_ += bytes;
  p.used += bytes;
  if (c_allocs_ != nullptr) c_allocs_->inc();
  if (g_used_ != nullptr) g_used_->add(static_cast<double>(bytes));
}

void MemoryManager::free(ProcessId id, std::int64_t bytes) {
  if (bytes < 0) throw UsageError("negative free");
  Proc& p = liveProc(id);
  if (bytes > p.used - kProcessOverhead) throw UsageError("freeing more than allocated");
  used_ -= bytes;
  p.used -= bytes;
  if (g_used_ != nullptr) g_used_->add(-static_cast<double>(bytes));
}

std::int64_t MemoryManager::processUsage(ProcessId id) const { return liveProc(id).used; }

}  // namespace mg::vos
