#include "vos/cpu_scheduler.h"

#include <algorithm>
#include <cmath>

#include "obs/sampler.h"

namespace mg::vos {

namespace {
constexpr double kEps = 1e-12;
}

CpuScheduler::CpuScheduler(sim::Simulator& sim, double physical_ops, sim::SimTime quantum,
                           CompetitionProfile competition, std::uint64_t seed)
    : sim_(sim),
      physical_ops_(physical_ops),
      quantum_(quantum),
      competition_(competition),
      c_quanta_(sim.metrics().counter("vos.sched.quanta")),
      c_tasks_added_(sim.metrics().counter("vos.sched.tasks_added")),
      g_cpu_seconds_(sim.metrics().gauge("vos.sched.cpu_seconds_delivered")),
      // Fig 7's normalized quantum-length distribution, registry edition.
      h_quantum_norm_(sim.metrics().histogram("vos.sched.quantum_norm", 0.8, 1.2, 40)),
      trace_(sim.traceBus().channel("vos.sched")),
      rng_(seed) {
  if (physical_ops <= 0) throw ConfigError("physical CPU speed must be positive");
  if (quantum <= 0) throw ConfigError("scheduler quantum must be positive");
  if (competition.capacity_cap <= 0 || competition.capacity_cap > 1.0) {
    throw ConfigError("competition capacity cap must be in (0, 1]");
  }
}

CpuScheduler::Task& CpuScheduler::liveTask(TaskId id) {
  if (id < 0 || static_cast<size_t>(id) >= tasks_.size() || !tasks_[static_cast<size_t>(id)].live) {
    throw UsageError("unknown scheduler task");
  }
  return tasks_[static_cast<size_t>(id)];
}

CpuScheduler::TaskId CpuScheduler::addTask(std::string name, double fraction, std::string track) {
  // Partition safety: all scheduling state lives on the process lane. A wire
  // lane reaching in during a parallel phase would race every field below.
  sim_.requireProcessLane("CpuScheduler::addTask");
  if (fraction <= 0 || fraction > 1.0) throw UsageError("task fraction must be in (0, 1]");
  Task t;
  t.name = std::move(name);
  t.track = std::move(track);
  t.fraction = fraction;
  t.start_time = sim_.now();
  t.live = true;
  tasks_.push_back(std::move(t));
  c_tasks_added_.inc();
  return static_cast<TaskId>(tasks_.size() - 1);
}

void CpuScheduler::removeTask(TaskId id) {
  // Forgiving teardown: a process killed mid-compute (host crash, shutdown)
  // unwinds through here with demand still pending, possibly from inside a
  // destructor — throwing would terminate. Dropping the demand and waiter is
  // the correct semantics: the process is gone, nobody will be woken.
  Task& t = liveTask(id);
  t.live = false;
  t.demand = 0;
  t.waiter = nullptr;
}

void CpuScheduler::setFraction(TaskId id, double fraction) {
  if (fraction <= 0 || fraction > 1.0) throw UsageError("task fraction must be in (0, 1]");
  Task& t = liveTask(id);
  // Re-baseline the Fig 4 accounting so the new fraction applies from now:
  // a task that was starved (or overfed) under the old fraction should not
  // carry that history into the new allocation.
  t.start_time = sim_.now();
  t.used_cpu = 0;
  t.fraction = fraction;
}

void CpuScheduler::compute(TaskId id, double ops) {
  if (ops < 0) throw UsageError("negative compute demand");
  computeSeconds(id, ops / physical_ops_);
}

void CpuScheduler::computeSeconds(TaskId id, double cpu_seconds) {
  sim_.requireProcessLane("CpuScheduler::compute");
  if (cpu_seconds < 0) throw UsageError("negative compute demand");
  Task& t = liveTask(id);
  if (t.waiter != nullptr) throw UsageError("task already has a pending compute request");
  if (cpu_seconds == 0) return;
  // Cap banked credit at one quantum. The literal Fig 4 guard accrues
  // credit for the task's whole lifetime, which would let a task that just
  // waited on a message burn through a long compute at full physical speed
  // — destroying the rate invariance of Fig 15 for alternating workloads.
  const double max_credit = sim::toSeconds(quantum_);
  const double credit =
      t.fraction * sim::toSeconds(sim_.now() - t.start_time) - t.used_cpu;
  if (credit > max_credit) {
    t.start_time = sim_.now() - sim::fromSeconds((t.used_cpu + max_credit) / t.fraction);
  }
  t.demand = cpu_seconds;
  t.waiter = &sim_.currentProcess();
  t.span = sim_.spans().current();
  scheduleNext();
  while (t.demand > kEps) sim_.suspend();
  t.waiter = nullptr;
  t.demand = 0;
}

double CpuScheduler::usedCpuSeconds(TaskId id) const {
  return const_cast<CpuScheduler*>(this)->liveTask(id).used_cpu;
}

sim::SimTime CpuScheduler::eligibleAt(const Task& t) const {
  // Fig 4 guard: run while fraction * elapsed >= used. Eligible again when
  // elapsed = used / fraction.
  const double elapsed_needed = t.used_cpu / t.fraction;
  return t.start_time + sim::fromSeconds(elapsed_needed);
}

void CpuScheduler::scheduleNext() {
  if (running_) return;
  if (wake_event_ != 0) {
    sim_.cancel(wake_event_);
    wake_event_ = 0;
  }

  // Round-robin scan for a demanding, eligible task.
  const std::size_t n = tasks_.size();
  const sim::SimTime now = sim_.now();
  std::size_t chosen = n;
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t i = (rr_next_ + k) % n;
    const Task& t = tasks_[i];
    if (!t.live || t.demand <= kEps) continue;
    if (eligibleAt(t) <= now) {
      chosen = i;
      break;
    }
  }

  if (chosen == n) {
    // Nobody is eligible; sleep until the earliest eligibility.
    sim::SimTime earliest = -1;
    for (const Task& t : tasks_) {
      if (!t.live || t.demand <= kEps) continue;
      const sim::SimTime e = eligibleAt(t);
      if (earliest < 0 || e < earliest) earliest = e;
    }
    if (earliest < 0) return;  // fully idle
    wake_event_ = sim_.scheduleAt(std::max(earliest, now), [this] {
      wake_event_ = 0;
      scheduleNext();
    });
    return;
  }

  Task& t = tasks_[chosen];
  rr_next_ = (chosen + 1) % n;
  running_ = true;

  // Delivered quantum: nominal, jittered by competition. Competition also
  // stretches the wall time needed to obtain the CPU (the Linux timesharing
  // scheduler splits the machine between the MicroGrid and the hogs).
  const double jitter =
      std::clamp(rng_.normal(competition_.quantum_jitter_mean, competition_.quantum_jitter_dev),
                 0.05, 4.0);
  const double nominal = sim::toSeconds(quantum_);
  const double full_quantum = nominal * jitter;
  const double cpu_slice = std::min(full_quantum, t.demand);
  quanta_log_.push_back(full_quantum / nominal);
  c_quanta_.inc();
  g_cpu_seconds_.add(cpu_slice);
  h_quantum_norm_.add(full_quantum / nominal);
  if (trace_.enabled()) trace_.record(sim_.now(), "quantum", full_quantum / nominal, t.name);
  const double cap = competition_.capacity_cap;
  busy_start_ = sim_.now();
  busy_until_ = busy_start_ + sim::fromSeconds(full_quantum / cap);

  // Each granted quantum becomes a span parented to the compute request that
  // demanded it, on the requester's host track — the Fig 4 slice made
  // visible in the causal trace.
  obs::SpanId qspan = 0;
  if (sim_.spans().enabled()) {
    qspan = sim_.spans().beginChildOf(t.span, "vos.sched", "quantum",
                                      t.track.empty() ? t.name : t.track);
    sim_.spans().annotate(qspan, "task", t.name);
  }

  // The task's pending demand is satisfied partway through the slice...
  sim_.scheduleAfter(sim::fromSeconds(cpu_slice / cap), [this, chosen, cpu_slice] {
    Task& task = tasks_[chosen];
    if (!task.live) return;  // removed mid-quantum (crash teardown)
    task.demand -= cpu_slice;
    if (task.demand <= kEps) {
      task.demand = 0;
      if (task.waiter != nullptr) sim_.wake(*task.waiter);
    }
  });
  // ...but the Fig 4 daemon sleeps one quantum between start/stop signals,
  // so the slice occupies its full wall length and usage is metered as the
  // whole quantum. This boundary-granularity effect is the modeling error
  // the paper's Fig 11 quantum sweep measures.
  //
  // Even when the task died mid-quantum the CPU stays occupied to the slice
  // boundary and `running_` must reset, or the scheduler would stall; the
  // usage charge is simply not booked to the dead task, so no credit leaks
  // into a later task reusing the slot.
  sim_.scheduleAfter(sim::fromSeconds(full_quantum / cap), [this, chosen, full_quantum, qspan] {
    sim_.spans().end(qspan);  // no-op for 0 and for crash-aborted spans
    if (tasks_[chosen].live) tasks_[chosen].used_cpu += full_quantum;
    busy_wall_s_ += full_quantum / competition_.capacity_cap;
    running_ = false;
    scheduleNext();
  });
}

void CpuScheduler::registerTelemetry(obs::TelemetrySampler& sampler, const std::string& label) {
  sampler.addRate("vos.cpu.util." + label, [this](std::int64_t t) {
    double busy = busy_wall_s_;
    if (running_) {
      // Open slice, closed against the sampler's clock (clamped: under
      // --parallel the quantum may have started past the tick time within
      // the epoch).
      const sim::SimTime end = std::min<sim::SimTime>(t, busy_until_);
      if (end > busy_start_) busy += sim::toSeconds(end - busy_start_);
    }
    return busy;
  });
  sampler.addLevel("vos.runq." + label, [this](std::int64_t) {
    double n = 0;
    for (const Task& task : tasks_) {
      if (task.live && task.demand > kEps) ++n;
    }
    return n;
  });
}

void CpuScheduler::saveState(obs::StateWriter& w) const {
  w.u64("vos.sched.tasks", tasks_.size());
  for (const Task& t : tasks_) {
    w.str("task", t.name);
    w.boolean("live", t.live);
    w.f64("fraction", t.fraction);
    w.f64("used_cpu", t.used_cpu);
    w.f64("demand", t.demand);
    w.boolean("waiting", t.waiter != nullptr);
  }
  w.u64("rr_next", rr_next_);
  w.boolean("running", running_);
  w.f64("busy_wall_s", busy_wall_s_);
  w.i64("busy_start", busy_start_);
  w.i64("busy_until", busy_until_);
  for (std::uint64_t word : rng_.fingerprint()) w.u64("rng", word);
}

}  // namespace mg::vos
