// Length-prefixed message framing over StreamSocket, shared by the GIS and
// GRAM wire protocols. Frames are a 4-byte big-endian length followed by the
// payload.
#pragma once

#include <cstdint>
#include <string>

#include "vos/context.h"

namespace mg::vos {

/// Frames larger than this are rejected (wire-protocol sanity bound).
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Send one framed message.
void sendFrame(StreamSocket& sock, const std::string& payload);

/// Receive one framed message; throws mg::Error on EOF mid-frame or
/// oversized frames.
std::string recvFrame(StreamSocket& sock);

}  // namespace mg::vos
