// Length-prefixed message framing over StreamSocket, shared by the GIS and
// GRAM wire protocols. Frames are a 4-byte big-endian length followed by the
// payload.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "vos/context.h"

namespace mg::vos {

/// Frames larger than this are rejected (wire-protocol sanity bound).
constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Send one framed message.
void sendFrame(StreamSocket& sock, const std::string& payload);

/// Receive one framed message; throws mg::Error on EOF mid-frame or
/// oversized frames.
std::string recvFrame(StreamSocket& sock);

/// Metrics-aware variants: also bump the `vos.wire.frames_{sent,received}`
/// and `vos.wire.bytes_{sent,received}` counters. Control-plane traffic only
/// (GIS/GRAM), so the per-frame name lookup is not a hot path.
void sendFrame(StreamSocket& sock, const std::string& payload, obs::MetricsRegistry& metrics);
std::string recvFrame(StreamSocket& sock, obs::MetricsRegistry& metrics);

}  // namespace mg::vos
