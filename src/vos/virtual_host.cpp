#include "vos/virtual_host.h"

#include <algorithm>

namespace mg::vos {

void HostMapper::add(VirtualHostInfo info) {
  if (info.hostname.empty()) throw ConfigError("virtual host needs a hostname");
  if (contains(info.hostname) || (!info.virtual_ip.empty() && contains(info.virtual_ip))) {
    throw ConfigError("duplicate virtual host '" + info.hostname + "'");
  }
  const std::size_t pos = hosts_.size();
  hosts_.push_back(std::move(info));
  const VirtualHostInfo& h = hosts_.back();
  by_name_.emplace(h.hostname, pos);
  if (!h.virtual_ip.empty()) by_name_.emplace(h.virtual_ip, pos);
  by_node_.emplace(h.node, pos);
}

const VirtualHostInfo& HostMapper::resolve(const std::string& name_or_ip) const {
  auto it = by_name_.find(name_or_ip);
  if (it == by_name_.end()) throw UnknownHost(name_or_ip);
  return hosts_[it->second];
}

const VirtualHostInfo& HostMapper::byNode(net::NodeId node) const {
  auto it = by_node_.find(node);
  if (it == by_node_.end()) throw UnknownHost("node " + std::to_string(node));
  return hosts_[it->second];
}

bool HostMapper::contains(const std::string& name_or_ip) const {
  return by_name_.find(name_or_ip) != by_name_.end();
}

std::vector<const VirtualHostInfo*> HostMapper::hostsOnPhysical(const std::string& physical) const {
  std::vector<const VirtualHostInfo*> out;
  for (const auto& h : hosts_) {
    if (h.physical_host == physical) out.push_back(&h);
  }
  return out;
}

std::vector<std::string> HostMapper::physicalHosts() const {
  std::vector<std::string> out;
  for (const auto& h : hosts_) {
    if (std::find(out.begin(), out.end(), h.physical_host) == out.end()) {
      out.push_back(h.physical_host);
    }
  }
  return out;
}

}  // namespace mg::vos
