#include "vos/virtual_host.h"

#include <algorithm>

namespace mg::vos {

void HostMapper::add(VirtualHostInfo info) {
  if (info.hostname.empty()) throw ConfigError("virtual host needs a hostname");
  if (contains(info.hostname) || (!info.virtual_ip.empty() && contains(info.virtual_ip))) {
    throw ConfigError("duplicate virtual host '" + info.hostname + "'");
  }
  hosts_.push_back(std::move(info));
}

const VirtualHostInfo& HostMapper::resolve(const std::string& name_or_ip) const {
  for (const auto& h : hosts_) {
    if (h.hostname == name_or_ip || h.virtual_ip == name_or_ip) return h;
  }
  throw UnknownHost(name_or_ip);
}

const VirtualHostInfo& HostMapper::byNode(net::NodeId node) const {
  for (const auto& h : hosts_) {
    if (h.node == node) return h;
  }
  throw UnknownHost("node " + std::to_string(node));
}

bool HostMapper::contains(const std::string& name_or_ip) const {
  return std::any_of(hosts_.begin(), hosts_.end(), [&](const VirtualHostInfo& h) {
    return h.hostname == name_or_ip || h.virtual_ip == name_or_ip;
  });
}

std::vector<const VirtualHostInfo*> HostMapper::hostsOnPhysical(const std::string& physical) const {
  std::vector<const VirtualHostInfo*> out;
  for (const auto& h : hosts_) {
    if (h.physical_host == physical) out.push_back(&h);
  }
  return out;
}

std::vector<std::string> HostMapper::physicalHosts() const {
  std::vector<std::string> out;
  for (const auto& h : hosts_) {
    if (std::find(out.begin(), out.end(), h.physical_host) == out.end()) {
      out.push_back(h.physical_host);
    }
  }
  return out;
}

}  // namespace mg::vos
