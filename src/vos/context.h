// The application-facing virtual OS interface.
//
// This is the MicroGrid's interposition surface (paper §2.2): applications
// written against HostContext use only virtual identities — hostnames,
// virtual IPs, virtual time, abstract compute — and therefore run unmodified
// on any platform that implements the interface:
//
//   * core::MicroGridPlatform — the emulated Grid (CPU scheduler, packet
//     network, rescaled virtual time);
//   * core::ReferencePlatform — the "physical grid" model used as ground
//     truth in the validation experiments.
//
// One HostContext exists per simulated process; siblings on the same virtual
// host share its CPU allocation and memory capacity.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "sim/simulator.h"
#include "vos/virtual_host.h"

namespace mg::vos {

/// A connected, reliable, ordered byte stream between two virtual hosts
/// (the virtualized socket interface; paper: "we can run any socket-based
/// application on the virtual Grid").
class StreamSocket {
 public:
  virtual ~StreamSocket() = default;

  /// Blocking send of exactly n bytes.
  virtual void send(const void* data, std::size_t n) = 0;

  /// Blocking receive of 1..max bytes; 0 at orderly EOF.
  virtual std::size_t recv(void* buf, std::size_t max) = 0;

  /// Blocking receive of exactly n bytes; throws on early EOF.
  void recvExact(void* buf, std::size_t n);

  /// Orderly close; idempotent.
  virtual void close() = 0;

  /// Virtual hostname of the peer endpoint.
  virtual std::string peerHost() const = 0;
};

/// A passive socket accepting StreamSocket connections.
class Listener {
 public:
  virtual ~Listener() = default;
  /// Block until a connection arrives.
  virtual std::shared_ptr<StreamSocket> accept() = 0;
  /// Accept with a timeout in virtual seconds; nullptr on expiry.
  virtual std::shared_ptr<StreamSocket> acceptFor(double virtual_seconds) = 0;
  virtual void close() = 0;
};

class HostContext {
 public:
  virtual ~HostContext() = default;

  /// The virtual host this process runs on.
  virtual const VirtualHostInfo& host() const = 0;
  std::string hostname() const { return host().hostname; }

  /// The virtualized gettimeofday(), in virtual seconds.
  virtual double wallTime() const = 0;

  /// Sleep for virtual seconds.
  virtual void sleep(double virtual_seconds) = 0;

  /// Execute `ops` abstract operations on this host's CPU. On the MicroGrid
  /// platform this goes through the quantum scheduler; on the reference
  /// platform it takes exactly ops / host().cpu_ops virtual seconds.
  virtual void compute(double ops) = 0;

  /// Account memory to this process; throws OutOfMemoryError beyond the
  /// virtual host's capacity.
  virtual void allocateMemory(std::int64_t bytes) = 0;
  virtual void freeMemory(std::int64_t bytes) = 0;

  /// The virtual name service (the interposed gethostbyname()).
  virtual const HostMapper& mapper() const = 0;

  /// Listen on a port of this virtual host.
  virtual std::shared_ptr<Listener> listen(std::uint16_t port) = 0;

  /// Connect to a virtual hostname or virtual IP.
  virtual std::shared_ptr<StreamSocket> connect(const std::string& host_or_ip,
                                                std::uint16_t port) = 0;

  /// Create another process on this same virtual host. It shares the host's
  /// CPU allocation and memory but gets its own HostContext. Returns the
  /// simulator process so the spawner can killProcess() it during teardown.
  virtual sim::Process& spawnProcess(const std::string& name,
                                     std::function<void(HostContext&)> body) = 0;

  /// The underlying kernel (for advanced composition; most apps never
  /// touch it).
  virtual sim::Simulator& simulator() = 0;
};

/// RAII memory accounting against a HostContext.
class MemoryLease {
 public:
  MemoryLease(HostContext& ctx, std::int64_t bytes) : ctx_(&ctx), bytes_(bytes) {
    ctx.allocateMemory(bytes);
  }
  ~MemoryLease() {
    if (ctx_) ctx_->freeMemory(bytes_);
  }
  MemoryLease(MemoryLease&& o) noexcept : ctx_(o.ctx_), bytes_(o.bytes_) { o.ctx_ = nullptr; }
  MemoryLease& operator=(MemoryLease&&) = delete;
  MemoryLease(const MemoryLease&) = delete;
  MemoryLease& operator=(const MemoryLease&) = delete;

 private:
  HostContext* ctx_;
  std::int64_t bytes_;
};

}  // namespace mg::vos
