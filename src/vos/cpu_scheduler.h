// The local MicroGrid CPU scheduler (paper §2.4.1, Fig 4).
//
// One scheduler per physical machine. Each local MicroGrid task (a process
// on a virtual host) is assigned a CPU fraction; the scheduler hands out
// round-robin quanta, running a task only while
//
//     myUsedTime <= cpu_Fraction * presentTime        (Fig 4's loop guard)
//
// so each task's long-run CPU rate converges to its fraction. The quantum
// length (10 ms by default, "as supported by the Linux timesharing
// scheduler") is configurable — Fig 11 sweeps it.
//
// Competition from other processes on the physical machine (paper §3.2.2) is
// modeled by a CompetitionProfile: a cap on the total CPU the scheduler can
// obtain, and jitter on delivered quantum lengths (Fig 7 measures exactly
// this distribution).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "util/rng.h"

namespace mg::obs {
class TelemetrySampler;
}

namespace mg::vos {

/// Background load on the physical machine hosting the scheduler.
struct CompetitionProfile {
  /// Fraction of the physical CPU the MicroGrid scheduler can obtain in
  /// total (OS + competitor overhead takes the rest).
  double capacity_cap = 0.95;
  /// Delivered quantum length is nominal * N(mean, dev), truncated positive.
  double quantum_jitter_mean = 1.0;
  double quantum_jitter_dev = 0.002;

  /// Scheduler alone on the machine (paper: dev 0.002).
  static CompetitionProfile none() { return {0.95, 1.0, 0.002}; }
  /// A floating-point-division hog runs in parallel (paper: mean 1.01,
  /// dev 0.015; delivered fraction plateaus near 45%).
  static CompetitionProfile cpuBound() { return {0.47, 1.01, 0.015}; }
  /// A 1MB-buffer-flushing IO hog runs in parallel (paper: mean 0.978,
  /// dev 0.027).
  static CompetitionProfile ioBound() { return {0.52, 0.978, 0.027}; }
};

class CpuScheduler {
 public:
  using TaskId = std::int32_t;

  /// `physical_ops` is the physical machine's speed in operations/second.
  CpuScheduler(sim::Simulator& sim, double physical_ops,
               sim::SimTime quantum = 10 * sim::kMillisecond,
               CompetitionProfile competition = CompetitionProfile::none(),
               std::uint64_t seed = 0x5EED);
  CpuScheduler(const CpuScheduler&) = delete;
  CpuScheduler& operator=(const CpuScheduler&) = delete;

  /// Register a task with a CPU fraction in (0, 1]. `track` is the span
  /// track (virtual hostname) quanta are attributed to when tracing is on;
  /// empty falls back to the task name.
  TaskId addTask(std::string name, double fraction, std::string track = {});

  /// Unregister in O(1). Pending demand (a process killed mid-compute) is
  /// dropped: the slot goes dead, in-flight quantum events skip it, and no
  /// CPU credit is charged to or leaked from the dead task.
  void removeTask(TaskId id);

  /// Adjust a task's fraction (used when processes join/leave a virtual
  /// host and the host's allocation is re-divided).
  void setFraction(TaskId id, double fraction);

  /// Blocking (process context): consume `ops` operations' worth of
  /// physical CPU, scheduled in quanta. One outstanding request per task.
  void compute(TaskId id, double ops);

  /// Blocking: consume the given amount of physical CPU seconds.
  void computeSeconds(TaskId id, double cpu_seconds);

  double physicalOps() const { return physical_ops_; }
  sim::SimTime quantum() const { return quantum_; }
  double usedCpuSeconds(TaskId id) const;

  /// Normalized delivered quantum lengths (Fig 7's samples). Only full
  /// quanta are logged; demand-truncated final slices are excluded.
  const std::vector<double>& quantaLog() const { return quanta_log_; }
  void clearQuantaLog() { quanta_log_.clear(); }

  /// Time-resolved probes (DESIGN.md §10): vos.cpu.util.<label> — fraction
  /// of wall time this scheduler's physical CPU spent occupied by quanta —
  /// and vos.runq.<label>, live tasks with pending demand. All state is
  /// process-lane-owned; probe reads happen at sampler ticks/barriers where
  /// lane 0 is quiescent.
  void registerTelemetry(obs::TelemetrySampler& sampler, const std::string& label);

  /// Fold the scheduler's dynamic state into `w` (DESIGN.md §11): the task
  /// table in slot order (name, fraction, consumed CPU, pending demand,
  /// liveness), the round-robin cursor, the jitter RNG stream, and the
  /// busy-time accrual. Read-only.
  void saveState(obs::StateWriter& w) const;

 private:
  struct Task {
    std::string name;
    std::string track;            // span track (hostname) for quantum spans
    double fraction = 0;
    double used_cpu = 0;          // seconds of CPU consumed
    sim::SimTime start_time = 0;  // when the task registered
    double demand = 0;            // pending cpu-seconds
    sim::Process* waiter = nullptr;
    // Requester's span context, captured at computeSeconds: granted quanta
    // parent to the compute call that demanded them.
    obs::SpanId span = 0;
    bool live = false;
  };

  Task& liveTask(TaskId id);
  void scheduleNext();
  /// Earliest time the task is eligible under the Fig 4 guard.
  sim::SimTime eligibleAt(const Task& t) const;

  sim::Simulator& sim_;
  double physical_ops_;
  sim::SimTime quantum_;
  CompetitionProfile competition_;
  // vos.sched.* instruments (aggregated across schedulers on one simulator).
  obs::Counter& c_quanta_;
  obs::Counter& c_tasks_added_;
  obs::Gauge& g_cpu_seconds_;
  util::Histogram& h_quantum_norm_;
  obs::TraceBus::Channel& trace_;
  util::Rng rng_;

  // deque: addTask while other tasks hold references across suspension.
  std::deque<Task> tasks_;
  std::size_t rr_next_ = 0;  // round-robin cursor
  bool running_ = false;     // a quantum is in progress
  sim::EventId wake_event_ = 0;  // pending eligibility wake
  std::vector<double> quanta_log_;
  // Busy-time accrual for the vos.cpu.util probe: closed quantum spans sum
  // into busy_wall_s_ at the slice boundary; the open slice is reconstructed
  // from busy_start_/busy_until_ against the sampler's clock.
  double busy_wall_s_ = 0;
  sim::SimTime busy_start_ = 0;
  sim::SimTime busy_until_ = 0;
};

}  // namespace mg::vos
