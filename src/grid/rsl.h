// RSL (Resource Specification Language) — the Globus job description
// format the gatekeeper consumes, e.g.
//
//   &(executable=npb.ep)(count=4)(arguments=classA trace)
//    (maxMemory=100MBytes)(environment=(MG_JOB_SIZE 4)(MG_RANK_BASE 0))
//
// Supported grammar (the subset GRAM 1.x jobs actually used):
//   request     := '&' relation*        | '+' request+        (multi-request)
//   relation    := '(' attr '=' value ')'
//   value       := plain text up to the closing ')',
//                  or a list of '(' word ' ' text ')' pairs (environment)
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/error.h"

namespace mg::grid {

class Rsl {
 public:
  /// Parse a single '&' request. Throws ParseError.
  static Rsl parse(const std::string& text);

  /// Parse a '+' multi-request (a '&' request parses as a single element).
  static std::vector<Rsl> parseMulti(const std::string& text);

  bool has(const std::string& attr) const;
  const std::string& get(const std::string& attr) const;
  std::string get(const std::string& attr, const std::string& fallback) const;
  std::int64_t getInt(const std::string& attr, std::int64_t fallback) const;

  void set(const std::string& attr, const std::string& value);

  /// The (environment=(K v)(K2 v2)) pairs; empty map if absent.
  const std::map<std::string, std::string>& environment() const { return environment_; }
  void setEnv(const std::string& key, const std::string& value);

  /// arguments split on whitespace.
  std::vector<std::string> arguments() const;

  /// Canonical textual form (parses back to an equal Rsl).
  std::string str() const;

  // Common accessors.
  std::string executable() const { return get("executable"); }
  int count() const { return static_cast<int>(getInt("count", 1)); }

 private:
  std::map<std::string, std::string> attrs_;  // keys lower-cased
  std::map<std::string, std::string> environment_;
};

}  // namespace mg::grid
