// The executable registry: the virtual Grid's "filesystem" of installed
// programs. A GRAM job names an executable; the jobmanager resolves it here
// and runs it as a simulated process. This replaces fork/exec of real
// binaries while preserving the submission path.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/error.h"
#include "vos/context.h"

namespace mg::grid {

/// Everything a launched job process sees: its virtual OS handle, argv, and
/// the environment assembled by the jobmanager (rank bootstrap, user vars).
struct JobContext {
  vos::HostContext& os;
  std::vector<std::string> args;
  std::map<std::string, std::string> env;

  const std::string& envOr(const std::string& key, const std::string& fallback) const {
    auto it = env.find(key);
    return it == env.end() ? fallback : it->second;
  }
  int envInt(const std::string& key) const {
    auto it = env.find(key);
    if (it == env.end()) throw mg::Error("missing environment variable " + key);
    return std::stoi(it->second);
  }
};

/// A registered program: returns a process exit code.
using Executable = std::function<int(JobContext&)>;

class ExecutableRegistry {
 public:
  /// Register under a name; re-registering a name throws.
  void add(const std::string& name, Executable fn);

  bool contains(const std::string& name) const { return table_.count(name) > 0; }

  const Executable& lookup(const std::string& name) const;

  std::vector<std::string> names() const;

 private:
  std::map<std::string, Executable> table_;
};

inline void ExecutableRegistry::add(const std::string& name, Executable fn) {
  if (name.empty()) throw mg::UsageError("executable needs a name");
  if (!table_.emplace(name, std::move(fn)).second) {
    throw mg::UsageError("executable '" + name + "' already registered");
  }
}

inline const Executable& ExecutableRegistry::lookup(const std::string& name) const {
  auto it = table_.find(name);
  if (it == table_.end()) throw mg::Error("no such executable: " + name);
  return it->second;
}

inline std::vector<std::string> ExecutableRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [k, v] : table_) out.push_back(k);
  return out;
}

}  // namespace mg::grid
