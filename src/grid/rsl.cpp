#include "grid/rsl.h"

#include "util/strings.h"

namespace mg::grid {

namespace {

void skipSpace(const std::string& s, std::size_t& pos) {
  while (pos < s.size() && std::isspace(static_cast<unsigned char>(s[pos]))) ++pos;
}

// Parse one (attr=value) relation into the Rsl; pos sits at '('.
void parseRelation(const std::string& text, std::size_t& pos, Rsl& rsl) {
  if (text[pos] != '(') throw ParseError("expected '(' in RSL");
  ++pos;
  const std::size_t eq = text.find('=', pos);
  if (eq == std::string::npos) throw ParseError("missing '=' in RSL relation");
  const std::string attr = util::toLower(std::string(util::trim(text.substr(pos, eq - pos))));
  if (attr.empty()) throw ParseError("empty attribute in RSL relation");
  pos = eq + 1;
  skipSpace(text, pos);

  if (attr == "environment") {
    // A list of (KEY value) pairs.
    while (pos < text.size() && text[pos] == '(') {
      ++pos;
      skipSpace(text, pos);
      std::size_t key_end = pos;
      while (key_end < text.size() && !std::isspace(static_cast<unsigned char>(text[key_end])) &&
             text[key_end] != ')') {
        ++key_end;
      }
      const std::string key = text.substr(pos, key_end - pos);
      if (key.empty()) throw ParseError("empty environment key in RSL");
      pos = key_end;
      skipSpace(text, pos);
      const std::size_t close = text.find(')', pos);
      if (close == std::string::npos) throw ParseError("unterminated environment pair in RSL");
      const std::string value(util::trim(text.substr(pos, close - pos)));
      rsl.setEnv(key, value);
      pos = close + 1;
      skipSpace(text, pos);
    }
    if (pos >= text.size() || text[pos] != ')') {
      throw ParseError("unterminated environment list in RSL");
    }
    ++pos;
    return;
  }

  const std::size_t close = text.find(')', pos);
  if (close == std::string::npos) throw ParseError("unterminated RSL relation");
  rsl.set(attr, std::string(util::trim(text.substr(pos, close - pos))));
  pos = close + 1;
}

Rsl parseRequest(const std::string& text, std::size_t& pos) {
  skipSpace(text, pos);
  if (pos >= text.size() || text[pos] != '&') throw ParseError("RSL request must start with '&'");
  ++pos;
  Rsl rsl;
  skipSpace(text, pos);
  while (pos < text.size() && text[pos] == '(') {
    parseRelation(text, pos, rsl);
    skipSpace(text, pos);
  }
  return rsl;
}

}  // namespace

Rsl Rsl::parse(const std::string& text) {
  std::size_t pos = 0;
  Rsl rsl = parseRequest(text, pos);
  skipSpace(text, pos);
  if (pos != text.size()) throw ParseError("trailing characters in RSL '" + text + "'");
  return rsl;
}

std::vector<Rsl> Rsl::parseMulti(const std::string& text) {
  std::size_t pos = 0;
  skipSpace(text, pos);
  std::vector<Rsl> out;
  if (pos < text.size() && text[pos] == '+') {
    ++pos;
    skipSpace(text, pos);
    while (pos < text.size() && text[pos] == '&') {
      out.push_back(parseRequest(text, pos));
      skipSpace(text, pos);
    }
    if (out.empty()) throw ParseError("empty RSL multi-request");
    if (pos != text.size()) throw ParseError("trailing characters in RSL multi-request");
  } else {
    out.push_back(parse(text));
  }
  return out;
}

bool Rsl::has(const std::string& attr) const { return attrs_.count(util::toLower(attr)) > 0; }

const std::string& Rsl::get(const std::string& attr) const {
  auto it = attrs_.find(util::toLower(attr));
  if (it == attrs_.end()) throw mg::Error("RSL has no attribute '" + attr + "'");
  return it->second;
}

std::string Rsl::get(const std::string& attr, const std::string& fallback) const {
  auto it = attrs_.find(util::toLower(attr));
  return it == attrs_.end() ? fallback : it->second;
}

std::int64_t Rsl::getInt(const std::string& attr, std::int64_t fallback) const {
  auto it = attrs_.find(util::toLower(attr));
  if (it == attrs_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw ParseError("RSL attribute '" + attr + "' = '" + it->second + "' is not an integer");
  }
}

void Rsl::set(const std::string& attr, const std::string& value) {
  attrs_[util::toLower(attr)] = value;
}

void Rsl::setEnv(const std::string& key, const std::string& value) { environment_[key] = value; }

std::vector<std::string> Rsl::arguments() const {
  return util::splitWhitespace(get("arguments", ""));
}

std::string Rsl::str() const {
  std::string out = "&";
  for (const auto& [k, v] : attrs_) out += "(" + k + "=" + v + ")";
  if (!environment_.empty()) {
    out += "(environment=";
    for (const auto& [k, v] : environment_) out += "(" + k + " " + v + ")";
    out += ")";
  }
  return out;
}

}  // namespace mg::grid
