#include "grid/coallocator.h"

#include "util/strings.h"

namespace mg::grid {

std::string formatJobHosts(const std::vector<AllocationPart>& parts) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += ",";
    out += parts[i].host + ":" + std::to_string(parts[i].count);
  }
  return out;
}

std::vector<AllocationPart> parseJobHosts(const std::string& value) {
  std::vector<AllocationPart> out;
  for (const auto& item : util::splitTrim(value, ',')) {
    if (item.empty()) continue;
    const auto colon = item.rfind(':');
    if (colon == std::string::npos) throw ParseError("bad MG_JOB_HOSTS entry '" + item + "'");
    AllocationPart p;
    p.host = item.substr(0, colon);
    p.count = std::stoi(item.substr(colon + 1));
    if (p.host.empty() || p.count < 1) throw ParseError("bad MG_JOB_HOSTS entry '" + item + "'");
    out.push_back(std::move(p));
  }
  if (out.empty()) throw ParseError("empty MG_JOB_HOSTS");
  return out;
}

CoallocationResult Coallocator::run(const std::string& executable, const std::string& arguments,
                                    const std::vector<AllocationPart>& parts,
                                    const std::map<std::string, std::string>& extra_env) {
  if (parts.empty()) throw mg::UsageError("co-allocation needs at least one part");
  int total = 0;
  for (const auto& p : parts) total += p.count;

  CoallocationResult result;
  result.ok = true;
  std::vector<std::string> contacts;
  int rank_base = 0;
  for (const auto& p : parts) {
    Rsl rsl;
    rsl.set("executable", executable);
    rsl.set("count", std::to_string(p.count));
    if (!arguments.empty()) rsl.set("arguments", arguments);
    rsl.setEnv("MG_JOB_SIZE", std::to_string(total));
    rsl.setEnv("MG_JOB_HOSTS", formatJobHosts(parts));
    rsl.setEnv("MG_RANK_BASE", std::to_string(rank_base));
    rsl.setEnv("MG_PORT_BASE", std::to_string(kVmpiPortBase));
    for (const auto& [k, v] : extra_env) rsl.setEnv(k, v);
    try {
      contacts.push_back(client_.submit(p.host, rsl));
    } catch (const mg::Error& e) {
      JobStatus st;
      st.state = JobState::Failed;
      st.error = "submit to " + p.host + " failed: " + e.what();
      result.parts.push_back(st);
      result.ok = false;
      if (result.error.empty()) result.error = st.error;
    }
    rank_base += p.count;
  }

  for (const auto& contact : contacts) {
    JobStatus st;
    try {
      st = client_.wait(contact);
    } catch (const mg::Error& e) {
      // The gatekeeper died (or restarted and forgot the job) while we
      // waited; the part is lost, not the whole run() call.
      st.state = JobState::Failed;
      st.error = "wait on " + contact + " failed: " + e.what();
    }
    result.parts.push_back(st);
    if (st.state == JobState::Failed) {
      result.ok = false;
      if (result.error.empty()) result.error = st.error;
    } else if (st.state == JobState::Done && st.exit_code != 0 && result.exit_code == 0) {
      result.exit_code = st.exit_code;
      result.ok = false;
    } else if (st.state == JobState::Cancelled) {
      result.ok = false;
      if (result.error.empty()) result.error = "part cancelled";
    }
  }
  return result;
}

}  // namespace mg::grid
