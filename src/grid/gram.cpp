#include "grid/gram.h"

#include <cstdlib>
#include <map>
#include <optional>

#include "econ/batch_queue.h"

#include "net/tcp.h"
#include "obs/span.h"
#include "sim/condition.h"
#include "util/log.h"
#include "util/strings.h"
#include "util/units.h"
#include "vos/memory.h"
#include "vos/wire.h"

namespace mg::grid {

std::string jobStateName(JobState s) {
  switch (s) {
    case JobState::Pending: return "PENDING";
    case JobState::Active: return "ACTIVE";
    case JobState::Done: return "DONE";
    case JobState::Failed: return "FAILED";
    case JobState::Cancelled: return "CANCELLED";
  }
  return "?";
}

namespace {

struct JobRecord {
  JobStatus status;
  bool cancel_requested = false;
};

struct GkState {
  explicit GkState(sim::Simulator& sim) : done(sim) {}
  std::map<int, JobRecord> jobs;
  int next_id = 1;
  sim::Condition done;  // notified on every terminal transition
  // Batch jobmanager mode (GatekeeperOptions::batch.enabled).
  std::optional<econ::BatchQueue> batch;
  std::map<int, Rsl> queued;  // RSLs of jobs waiting for dispatch
};

bool isTerminal(JobState s) {
  return s == JobState::Done || s == JobState::Failed || s == JobState::Cancelled;
}

std::string statusBody(const JobStatus& st) {
  switch (st.state) {
    case JobState::Done:
      return "DONE " + std::to_string(st.exit_code);
    case JobState::Failed:
      return "FAILED " + st.error;
    default:
      return jobStateName(st.state);
  }
}

void runJobManager(vos::HostContext& ctx, const ExecutableRegistry& registry,
                   std::shared_ptr<GkState> state, GatekeeperOptions opts, int job_id, Rsl rsl);

/// Batch mode: start every queued job the policy allows right now.
void pumpBatch(vos::HostContext& ctx, const ExecutableRegistry& registry,
               std::shared_ptr<GkState> state, const GatekeeperOptions& opts) {
  if (!state->batch) return;
  auto& metrics = ctx.simulator().metrics();
  const double now = ctx.wallTime();
  for (const econ::StartedJob& s : state->batch->dispatch(now)) {
    const int id = static_cast<int>(s.job.id);
    auto rit = state->queued.find(id);
    if (rit == state->queued.end()) {  // cancelled between dispatch rounds
      state->batch->finish(id);
      continue;
    }
    const Rsl rsl = rit->second;
    state->queued.erase(rit);
    metrics.counter("grid.batch.started").inc();
    if (s.backfilled) metrics.counter("grid.batch.backfilled").inc();
    metrics.histogram("grid.batch.wait_s", 0, 3600, 360).add(now - s.job.submit_s);
    ctx.spawnProcess("jobmanager." + std::to_string(id),
                     [&registry, state, opts, id, rsl](vos::HostContext& jmctx) {
                       runJobManager(jmctx, registry, state, opts, id, rsl);
                     });
  }
  metrics.gauge("grid.batch.depth").set(state->batch->depth());
  metrics.gauge("grid.batch.used_slots").set(state->batch->usedSlots());
}

/// Terminal transition of a dispatched batch job: free its slots, start
/// whatever now fits.
void finishBatchJob(vos::HostContext& ctx, const ExecutableRegistry& registry,
                    std::shared_ptr<GkState> state, const GatekeeperOptions& opts, int job_id) {
  if (!state->batch) return;
  if (state->batch->finish(job_id)) pumpBatch(ctx, registry, state, opts);
}

void runJobManager(vos::HostContext& ctx, const ExecutableRegistry& registry,
                   std::shared_ptr<GkState> state, GatekeeperOptions opts, int job_id, Rsl rsl) {
  JobRecord& job = state->jobs.at(job_id);

  // Adopt the submitter's causal context, carried through the RSL environment
  // by the launcher. This stitches the server-side half of the job onto the
  // client's span tree across hosts without touching the wire protocol.
  const auto& env = rsl.environment();
  if (auto it = env.find("MG_TRACE_CTX"); it != env.end()) {
    ctx.simulator().spans().setCurrent(std::strtoull(it->second.c_str(), nullptr, 10));
  }
  obs::ScopedSpan jm_span(ctx.simulator().spans(), "grid.gram", "jobmanager", ctx.hostname());
  if (jm_span.active()) jm_span.annotate("job", std::to_string(job_id));

  auto fail = [&](const std::string& why) {
    job.status.state = JobState::Failed;
    job.status.error = why;
    state->done.notifyAll();
    finishBatchJob(ctx, registry, state, opts, job_id);
  };

  // Jobmanager startup cost (fork/exec, RSL evaluation in real Globus).
  ctx.compute(opts.jobmanager_startup_ops);

  if (job.cancel_requested) {
    job.status.state = JobState::Cancelled;
    state->done.notifyAll();
    finishBatchJob(ctx, registry, state, opts, job_id);
    return;
  }

  const std::string exe_name = rsl.get("executable", "");
  if (exe_name.empty() || !registry.contains(exe_name)) {
    fail("no such executable: " + exe_name);
    return;
  }
  const int count = rsl.count();
  if (count < 1) {
    fail("count must be >= 1");
    return;
  }
  std::int64_t max_memory = 0;
  if (rsl.has("maxmemory")) {
    try {
      max_memory = util::parseSize(rsl.get("maxmemory"));
    } catch (const mg::Error& e) {
      fail(e.what());
      return;
    }
  }

  job.status.state = JobState::Active;
  // Shared completion accounting across the job's processes.
  auto remaining = std::make_shared<int>(count);

  for (int i = 0; i < count; ++i) {
    ctx.spawnProcess(
        exe_name + "." + std::to_string(job_id) + "." + std::to_string(i),
        [&registry, state, opts, job_id, rsl, exe_name, max_memory, i,
         remaining](vos::HostContext& pctx) {
          JobRecord& jr = state->jobs.at(job_id);
          obs::ScopedSpan rank_span(pctx.simulator().spans(), "grid.job", "rank",
                                    pctx.hostname());
          if (rank_span.active()) {
            rank_span.annotate("exe", exe_name);
            rank_span.annotate("local_index", std::to_string(i));
          }
          int code = 0;
          std::string error;
          try {
            std::optional<vos::MemoryLease> lease;
            if (max_memory > 0) lease.emplace(pctx, max_memory);
            JobContext jc{pctx, rsl.arguments(), rsl.environment()};
            jc.env["MG_LOCAL_INDEX"] = std::to_string(i);
            code = registry.lookup(exe_name)(jc);
          } catch (const std::exception& e) {
            error = e.what();
          }
          if (!error.empty()) {
            jr.status.state = JobState::Failed;
            if (jr.status.error.empty()) jr.status.error = error;
          } else if (code != 0 && jr.status.exit_code == 0) {
            jr.status.exit_code = code;
          }
          if (--*remaining == 0) {
            if (jr.status.state == JobState::Active) jr.status.state = JobState::Done;
            state->done.notifyAll();
            finishBatchJob(pctx, registry, state, opts, job_id);
          }
        });
  }
}

std::string handleRequest(vos::HostContext& ctx, const ExecutableRegistry& registry,
                          std::shared_ptr<GkState> state, const GatekeeperOptions& opts,
                          const std::string& request) {
  const auto lines = util::split(request, '\n');
  const std::string& verb = lines[0];

  if (verb == "SUBMIT") {
    if (lines.size() < 3) return "ERR\nSUBMIT needs subject and RSL";
    const std::string& subject = lines[1];
    std::string rsl_text = lines[2];
    for (std::size_t i = 3; i < lines.size(); ++i) rsl_text += "\n" + lines[i];
    // Authentication (GSI stand-in) costs CPU on the gatekeeper host.
    ctx.compute(opts.auth_ops);
    if (!opts.required_subject.empty() && subject != opts.required_subject) {
      return "ERR\nauthentication failed for subject '" + subject + "'";
    }
    Rsl rsl;
    try {
      rsl = Rsl::parse(rsl_text);
    } catch (const mg::Error& e) {
      return std::string("ERR\n") + e.what();
    }
    const int id = state->next_id++;
    state->jobs.emplace(id, JobRecord{});
    if (state->batch) {
      // Batch mode: queue rather than launch. Submission still succeeds —
      // infeasible jobs land in the Failed state the client polls for, the
      // same way a real scheduler rejects at queue time, not submit time.
      JobRecord& job = state->jobs.at(id);
      const int width = rsl.count();
      if (width < 1) {
        job.status.state = JobState::Failed;
        job.status.error = "count must be >= 1";
        state->done.notifyAll();
      } else if (width > state->batch->maxWidth()) {
        job.status.state = JobState::Failed;
        job.status.error = "count " + std::to_string(width) + " exceeds queue capacity " +
                           std::to_string(state->batch->maxWidth());
        state->done.notifyAll();
      } else {
        double est = opts.batch.default_est_seconds;
        if (rsl.has("maxwalltime")) {
          try {
            est = util::parseTime(rsl.get("maxwalltime"));
          } catch (const mg::Error&) {
            // unparsable estimate: keep the default, don't reject the job
          }
        }
        const double now = ctx.wallTime();
        state->queued.emplace(id, rsl);
        state->batch->submit(econ::QueuedJob{id, width, est, now}, now);
        pumpBatch(ctx, registry, state, opts);
      }
      return "OK\n" + std::to_string(id);
    }
    ctx.spawnProcess("jobmanager." + std::to_string(id),
                     [&registry, state, opts, id, rsl](vos::HostContext& jmctx) {
                       runJobManager(jmctx, registry, state, opts, id, rsl);
                     });
    return "OK\n" + std::to_string(id);
  }

  auto findJob = [&](const std::string& arg) -> JobRecord* {
    try {
      auto it = state->jobs.find(std::stoi(arg));
      return it == state->jobs.end() ? nullptr : &it->second;
    } catch (const std::exception&) {
      return nullptr;
    }
  };

  if (verb == "STATUS" || verb == "WAIT") {
    if (lines.size() < 2) return "ERR\nmissing job id";
    JobRecord* job = findJob(lines[1]);
    if (!job) return "ERR\nno such job " + lines[1];
    if (verb == "WAIT") {
      while (!isTerminal(job->status.state)) state->done.wait();
    }
    return "OK\n" + statusBody(job->status);
  }

  if (verb == "CANCEL") {
    if (lines.size() < 2) return "ERR\nmissing job id";
    int id = -1;
    try {
      id = std::stoi(lines[1]);
    } catch (const std::exception&) {
    }
    auto it = state->jobs.find(id);
    if (it == state->jobs.end()) return "ERR\nno such job " + lines[1];
    JobRecord& job = it->second;
    if (job.status.state == JobState::Pending) {
      // A job still sitting in the batch queue leaves it immediately; one
      // whose jobmanager is already spinning up is cancelled at startup.
      if (state->batch && state->batch->cancel(id)) {
        state->queued.erase(id);
        job.status.state = JobState::Cancelled;
        state->done.notifyAll();
        ctx.simulator().metrics().counter("grid.batch.cancelled_queued").inc();
        return "OK\n";
      }
      job.cancel_requested = true;
      return "OK\n";
    }
    return "ERR\ncannot cancel " + jobStateName(job.status.state) + " job";
  }

  return "ERR\nunknown verb '" + verb + "'";
}

}  // namespace

void serveGatekeeper(vos::HostContext& ctx, const ExecutableRegistry& registry,
                     GatekeeperOptions opts) {
  auto state = std::make_shared<GkState>(ctx.simulator());
  if (opts.batch.enabled) state->batch.emplace(opts.batch.queue);
  auto listener = ctx.listen(kGatekeeperPort);
  MG_LOG_INFO("gram") << "gatekeeper listening on " << ctx.hostname() << ":" << kGatekeeperPort;
  for (;;) {
    auto sock = listener->accept();
    ctx.spawnProcess("gk-handler", [sock, &registry, state, opts](vos::HostContext& hctx) {
      try {
        for (;;) {
          const std::string request = vos::recvFrame(*sock, hctx.simulator().metrics());
          vos::sendFrame(*sock, handleRequest(hctx, registry, state, opts, request),
                         hctx.simulator().metrics());
        }
      } catch (const mg::Error&) {
        // client hung up
      }
      sock->close();
    });
  }
}

// ----------------------------------------------------------------- client --

GramClient::GramClient(vos::HostContext& ctx, std::string subject)
    : ctx_(ctx),
      subject_(std::move(subject)),
      c_retries_(ctx.simulator().metrics().counter("grid.gram.retries")) {}

std::string GramClient::request(const std::string& host, const std::string& payload,
                                bool idempotent) {
  obs::ScopedSpan span(ctx_.simulator().spans(), "grid.gram", "request", ctx_.hostname());
  if (span.active()) {
    const auto nl = payload.find('\n');
    span.annotate("verb", nl == std::string::npos ? payload : payload.substr(0, nl));
    span.annotate("host", host);
  }
  double backoff = retry_.backoff_seconds;
  for (int attempt = 1;; ++attempt) {
    try {
      auto sock = ctx_.connect(host, kGatekeeperPort);
      vos::sendFrame(*sock, payload, ctx_.simulator().metrics());
      const std::string reply = vos::recvFrame(*sock, ctx_.simulator().metrics());
      sock->close();
      const auto nl = reply.find('\n');
      const std::string status = (nl == std::string::npos) ? reply : reply.substr(0, nl);
      const std::string body = (nl == std::string::npos) ? "" : reply.substr(nl + 1);
      // A gatekeeper that answered is healthy; ERR is a real answer and is
      // never retried.
      if (status != "OK") throw mg::Error("GRAM: " + body);
      return body;
    } catch (const net::ConnectionRefused& e) {
      // Connect-phase failure: the request never reached the gatekeeper, so
      // retrying is always safe (including for SUBMIT).
      if (attempt >= retry_.attempts) throw;
      MG_LOG_TRACE("gram") << "retrying " << host << " after: " << e.what();
    } catch (const net::ConnectionReset& e) {
      // Mid-exchange failure: the gatekeeper may have acted on the request.
      if (!idempotent || attempt >= retry_.attempts) throw;
      MG_LOG_TRACE("gram") << "retrying " << host << " after: " << e.what();
    }
    c_retries_.inc();
    ctx_.sleep(backoff);
    backoff *= retry_.multiplier;
  }
}

std::string GramClient::submit(const std::string& host, const Rsl& rsl) {
  const std::string id = request(host, "SUBMIT\n" + subject_ + "\n" + rsl.str(), false);
  return host + "#" + id;
}

JobStatus GramClient::parseStatus(const std::string& body) const {
  JobStatus st;
  const auto parts = util::splitWhitespace(body);
  if (parts.empty()) throw mg::Error("empty GRAM status");
  if (parts[0] == "DONE") {
    st.state = JobState::Done;
    st.exit_code = parts.size() > 1 ? std::stoi(parts[1]) : 0;
  } else if (parts[0] == "FAILED") {
    st.state = JobState::Failed;
    st.error = body.substr(std::min(body.size(), std::string("FAILED ").size()));
  } else if (parts[0] == "ACTIVE") {
    st.state = JobState::Active;
  } else if (parts[0] == "PENDING") {
    st.state = JobState::Pending;
  } else if (parts[0] == "CANCELLED") {
    st.state = JobState::Cancelled;
  } else {
    throw mg::Error("unknown GRAM status '" + body + "'");
  }
  return st;
}

namespace {
std::pair<std::string, std::string> splitContact(const std::string& contact) {
  const auto hash = contact.find('#');
  if (hash == std::string::npos) throw mg::UsageError("bad job contact '" + contact + "'");
  return {contact.substr(0, hash), contact.substr(hash + 1)};
}
}  // namespace

JobStatus GramClient::status(const std::string& contact) {
  auto [host, id] = splitContact(contact);
  return parseStatus(request(host, "STATUS\n" + id, true));
}

JobStatus GramClient::wait(const std::string& contact) {
  auto [host, id] = splitContact(contact);
  return parseStatus(request(host, "WAIT\n" + id, true));
}

void GramClient::cancel(const std::string& contact) {
  auto [host, id] = splitContact(contact);
  request(host, "CANCEL\n" + id, true);
}

}  // namespace mg::grid
