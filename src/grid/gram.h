// GRAM: the gatekeeper / jobmanager resource-management services and the
// submission client.
//
// Paper §2.2.1: "our current solution is to run all gatekeeper, jobmanager
// and client processes on virtual hosts. Thus jobs are submitted to virtual
// servers through the virtual Grid resource's gatekeeper."
//
// Wire protocol (framed, see vos/wire.h):
//   SUBMIT\n<subject>\n<rsl>       -> OK\n<jobid>        | ERR\n<msg>
//   STATUS\n<jobid>                -> OK\nPENDING|ACTIVE|DONE <code>|FAILED <msg>
//   WAIT\n<jobid>                  -> OK\nDONE <code>|FAILED <msg>   (blocks)
//   CANCEL\n<jobid>                -> OK\n                | ERR\n<msg>
//
// Each virtual host runs one gatekeeper on port 2119. A SUBMIT spawns a
// jobmanager process which launches `count` copies of the named executable
// on that host, merges their exit codes, and records the result.
#pragma once

#include <memory>
#include <string>

#include "econ/batch_queue.h"
#include "grid/registry.h"
#include "grid/rsl.h"
#include "vos/context.h"

namespace mg::grid {

inline constexpr std::uint16_t kGatekeeperPort = 2119;

enum class JobState { Pending, Active, Done, Failed, Cancelled };
std::string jobStateName(JobState s);

struct JobStatus {
  JobState state = JobState::Pending;
  int exit_code = 0;     // meaningful when Done
  std::string error;     // meaningful when Failed
};

struct GatekeeperOptions {
  /// When non-empty, SUBMIT requests must present this subject (a stand-in
  /// for GSI credential checking).
  std::string required_subject;
  /// Modeled cost of authentication + jobmanager startup, in operations on
  /// the gatekeeper's host CPU.
  double auth_ops = 2e6;
  double jobmanager_startup_ops = 5e6;
  /// Batch jobmanager mode. When enabled, SUBMIT enqueues the job into an
  /// econ::BatchQueue (slots = `queue.slots` cores; RSL `count` is the
  /// job's width) instead of launching immediately: jobs *queue* when the
  /// host is busy rather than oversubscribing it. Jobs still report
  /// PENDING until dispatch; CANCEL of a queued job removes it
  /// immediately. Queue wait/depth land under `grid.batch.*` metrics.
  struct BatchMode {
    bool enabled = false;
    econ::BatchQueue::Options queue;
    /// Runtime estimate (seconds) used for EASY reservations when the RSL
    /// carries no `maxwalltime` attribute.
    double default_est_seconds = 60;
  } batch;
};

/// Serve the gatekeeper on ctx's host. Blocks forever; spawn as a process.
void serveGatekeeper(vos::HostContext& ctx, const ExecutableRegistry& registry,
                     GatekeeperOptions opts = {});

/// Client-side resilience: how requests to an unreachable gatekeeper are
/// retried. Backoff sleeps are in virtual seconds and double each attempt.
struct GramRetryPolicy {
  int attempts = 4;              // total tries per request
  double backoff_seconds = 0.5;  // sleep before the first retry
  double multiplier = 2.0;
};

/// The globusrun-style client.
class GramClient {
 public:
  explicit GramClient(vos::HostContext& ctx, std::string subject = "anonymous");

  /// Submit to a host's gatekeeper; returns a job contact "host#id".
  /// Retried only on connect-phase failures (nothing reached the
  /// gatekeeper, so no double submission).
  std::string submit(const std::string& host, const Rsl& rsl);

  /// Poll a job.
  JobStatus status(const std::string& contact);

  /// Block until the job reaches a terminal state.
  JobStatus wait(const std::string& contact);

  /// Request cancellation of a pending/active job.
  void cancel(const std::string& contact);

  void setRetryPolicy(const GramRetryPolicy& p) { retry_ = p; }
  const GramRetryPolicy& retryPolicy() const { return retry_; }

 private:
  JobStatus parseStatus(const std::string& body) const;
  /// One framed exchange with exponential-backoff retries. Idempotent verbs
  /// (STATUS/WAIT/CANCEL) also retry after a mid-exchange reset; SUBMIT does
  /// not. "ERR" replies are never retried.
  std::string request(const std::string& host, const std::string& payload, bool idempotent);

  vos::HostContext& ctx_;
  std::string subject_;
  GramRetryPolicy retry_;
  obs::Counter& c_retries_;
};

}  // namespace mg::grid
