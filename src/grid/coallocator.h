// DUROC-style co-allocation: run one parallel program across several
// virtual hosts by submitting a coordinated GRAM job to each gatekeeper.
//
// The co-allocator assembles the rank-bootstrap environment that vmpi::init
// consumes:
//   MG_JOB_SIZE   total number of ranks
//   MG_JOB_HOSTS  "host0:count0,host1:count1,..."
//   MG_RANK_BASE  first global rank of the local allocation part
//   MG_PORT_BASE  vmpi listening-port base
//   MG_LOCAL_INDEX (added per process by the jobmanager)
#pragma once

#include <map>
#include <string>
#include <vector>

#include "grid/gram.h"

namespace mg::grid {

inline constexpr std::uint16_t kVmpiPortBase = 5000;

struct AllocationPart {
  std::string host;
  int count = 1;
};

struct CoallocationResult {
  bool ok = false;
  int exit_code = 0;
  std::string error;
  std::vector<JobStatus> parts;
};

class Coallocator {
 public:
  explicit Coallocator(vos::HostContext& ctx, std::string subject = "anonymous")
      : client_(ctx, std::move(subject)) {}

  /// Submit the executable to every part's gatekeeper and wait for all of
  /// them. `extra_env` is merged into the bootstrap environment. A part
  /// whose gatekeeper is unreachable (even after the client's retries)
  /// becomes a Failed part in the result instead of an exception, so one
  /// dead host cannot take down the whole submission loop.
  CoallocationResult run(const std::string& executable, const std::string& arguments,
                         const std::vector<AllocationPart>& parts,
                         const std::map<std::string, std::string>& extra_env = {});

  /// The underlying GRAM client (retry-policy tuning).
  GramClient& client() { return client_; }

 private:
  GramClient client_;
};

/// Render the MG_JOB_HOSTS value for a set of parts.
std::string formatJobHosts(const std::vector<AllocationPart>& parts);

/// Parse an MG_JOB_HOSTS value back into parts.
std::vector<AllocationPart> parseJobHosts(const std::string& value);

}  // namespace mg::grid
