// Deterministic time-series recording (DESIGN.md §10 "Time-resolved
// telemetry").
//
// A TimeSeriesRecorder holds named series of fixed-capacity, multi-resolution
// bucket rings: each bucket aggregates the samples that fell inside one
// window of `width` nanoseconds as {count, min, max, sum, last}. When a new
// sample lands past the last bucket the ring would hold, the series *widens*
// — the bucket width doubles and adjacent bucket pairs merge — so memory
// stays O(capacity) per series for arbitrarily long runs while the recorded
// aggregates remain an exact function of the sample stream (power-of-two
// widening keeps every original bucket boundary aligned to some later
// boundary, so no sample ever straddles two buckets retroactively).
//
// Determinism contract: add() order defines the "last" aggregate, so the
// recorder follows the same lane discipline as SpanRecorder/TraceBus
// (obs/lane.h): lane 0 records directly into the canonical series, worker
// lanes journal {lane, time, series, value} into per-lane buffers, and
// commitParallelPhase() merges journals sorted by (time, lane, journal
// order) at each barrier — all quantities fixed by the configuration, never
// the worker count, so csv()/json() are byte-identical for any --parallel=N.
//
// Exports: csv() (one row per populated bucket, series sorted by name,
// integer nanosecond bounds, formatDouble values) and json() (same data as
// one document). Both are byte-stable across identical runs.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mg::obs {

class TimeSeriesRecorder {
 public:
  struct Bucket {
    std::int64_t count = 0;
    double min = 0;
    double max = 0;
    double sum = 0;
    double last = 0;
  };

  struct Series {
    std::string name;
    std::int64_t origin = 0;    // start of bucket 0, set by the first sample
    std::int64_t width = 0;     // current bucket width (ns), doubles on widen
    std::int64_t widenings = 0; // times the resolution halved
    bool started = false;
    std::vector<Bucket> buckets;
  };

  struct Options {
    /// Buckets per series; the time span covered is capacity * width, so a
    /// run twice as long as the current span halves the resolution once.
    std::size_t capacity = 512;
    /// Initial bucket width in nanoseconds (callers usually match the
    /// sampler interval so early buckets hold exactly one sample).
    std::int64_t base_width_ns = 100'000'000;  // 100 ms
    /// New series past this cap are dropped (counted in droppedSeries()) —
    /// a guard against per-link registration on 10k+-link topologies.
    std::size_t max_series = 4096;
  };

  TimeSeriesRecorder() : TimeSeriesRecorder(Options{}) {}
  explicit TimeSeriesRecorder(Options opts);
  TimeSeriesRecorder(const TimeSeriesRecorder&) = delete;
  TimeSeriesRecorder& operator=(const TimeSeriesRecorder&) = delete;

  /// Reset the initial bucket width. Affects series created afterwards;
  /// callers set it before sampling starts (mgrun --timeline-interval).
  void setBaseWidth(std::int64_t width_ns);

  /// Record value `v` for `series` at simulation time `t` (ns). Lane 0
  /// records directly; worker lanes journal for the next barrier commit.
  void add(std::string_view series, std::int64_t t, double v);

  /// Lookup (nullptr when absent). The pointer is stable for the recorder's
  /// lifetime (series live in a deque).
  const Series* find(std::string_view series) const;

  /// Every series in sorted name order (the exporters' iteration order).
  std::vector<const Series*> seriesSorted() const;

  std::size_t seriesCount() const { return index_.size(); }
  std::int64_t sampleCount() const { return samples_; }
  std::int64_t droppedSeries() const { return dropped_series_; }

  /// Size the per-lane journals (sim::Simulator::configureParallel).
  void configureLanes(int lanes);

  /// Merge worker-lane journals into the canonical series, sorted by
  /// (time, lane, journal order). Called at each barrier, workers idle.
  void commitParallelPhase();

  /// One header + one row per populated bucket:
  ///   series,bucket_start_ns,bucket_end_ns,samples,min,max,mean,last
  /// Series in sorted name order; empty buckets are skipped.
  std::string csv() const;

  /// {"series":[{"name":..,"origin_ns":..,"width_ns":..,"widenings":..,
  ///   "buckets":[[start_ns,count,min,max,mean,last],..]},..]} — series in
  /// sorted name order, values via formatDouble.
  std::string json() const;

 private:
  struct JournalEntry {
    std::int64_t time;
    std::string series;
    double value;
  };

  Series& getOrCreate(std::string_view name);
  void addDirect(std::string_view series, std::int64_t t, double v);
  static void widen(Series& s);

  Options opts_;
  std::deque<Series> series_;               // stable addresses
  std::map<std::string, Series*, std::less<>> index_;
  std::int64_t samples_ = 0;
  std::int64_t dropped_series_ = 0;
  // Per-lane journals (entry 0 unused): written only by the lane's drainer
  // thread during a phase, merged only at the barrier — the phase separation
  // is the synchronization (same model as TraceBus).
  std::vector<std::vector<JournalEntry>> lane_journals_;
};

}  // namespace mg::obs
