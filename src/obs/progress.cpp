#include "obs/progress.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "obs/metrics.h"
#include "util/error.h"

namespace mg::obs {

namespace {

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

/// 1234567 -> "1.23M", 4200 -> "4.20k" — heartbeat lines are for humans.
std::string human(double v) {
  if (v >= 1e9) return fmt("%.2f", v / 1e9) + "G";
  if (v >= 1e6) return fmt("%.2f", v / 1e6) + "M";
  if (v >= 1e3) return fmt("%.2f", v / 1e3) + "k";
  return fmt("%.0f", v);
}

}  // namespace

std::int64_t RunPulse::simNow() const {
  const int n = std::min(lanes(), kMaxLanes);
  std::int64_t best = 0;
  for (int i = 0; i < n; ++i) best = std::max(best, laneNow(i));
  return best;
}

ProgressMonitor::ProgressMonitor(const RunPulse& pulse, ProgressOptions opts)
    : pulse_(pulse), opts_(std::move(opts)) {
  if (opts_.interval_s <= 0) throw UsageError("ProgressMonitor wants interval > 0");
  if (opts_.stall_s <= 0) throw UsageError("ProgressMonitor wants stall threshold > 0");
}

ProgressMonitor::~ProgressMonitor() { stop(); }

void ProgressMonitor::start() {
  std::lock_guard<std::mutex> lk(m_);
  if (running_) throw UsageError("ProgressMonitor::start called twice");
  running_ = true;
  stop_requested_ = false;
  thread_ = std::thread([this] { loop(); });
}

void ProgressMonitor::stop() {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (!running_) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lk(m_);
  running_ = false;
}

void ProgressMonitor::loop() {
  using clock = std::chrono::steady_clock;
  std::ostream& out = opts_.sink != nullptr ? *opts_.sink : std::cerr;
  const auto t0 = clock::now();
  auto last_commit_change = t0;
  std::uint64_t last_commits = pulse_.commits();
  bool stall_reported = false;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait_for(lk, std::chrono::duration<double>(opts_.interval_s),
                   [&] { return stop_requested_; });
      if (stop_requested_) return;
    }
    const auto now = clock::now();
    const double wall_s = std::chrono::duration<double>(now - t0).count();
    const std::uint64_t commits = pulse_.commits();
    if (commits != last_commits) {
      last_commits = commits;
      last_commit_change = now;
      stall_reported = false;
    }
    heartbeat(out, wall_s);
    const double quiet_s = std::chrono::duration<double>(now - last_commit_change).count();
    if (quiet_s >= opts_.stall_s && !stall_reported) {
      stallDump(out, quiet_s);
      stall_reported = true;  // once per stall episode, not every interval
    }
  }
}

void ProgressMonitor::heartbeat(std::ostream& out, double wall_s) {
  const double sim_s = static_cast<double>(pulse_.simNow()) * 1e-9;
  std::string line = opts_.label + ": sim " + fmt("%.3f", sim_s) + "s | wall " +
                     fmt("%.1f", wall_s) + "s | " + fmt("%.2f", sim_s / std::max(wall_s, 1e-9)) +
                     "x";
  if (opts_.events != nullptr) {
    const double ev = static_cast<double>(opts_.events->value());
    line += " | " + human(ev) + " ev (" + human(ev / std::max(wall_s, 1e-9)) + "/s)";
  }
  std::int64_t pending = 0;
  const int lanes = std::min(pulse_.lanes(), RunPulse::kMaxLanes);
  for (int i = 0; i < lanes; ++i) pending += pulse_.lanePending(i);
  line += " | pending " + std::to_string(pending);
  if (pulse_.epochs() > 0) line += " | epochs " + std::to_string(pulse_.epochs());
  if (opts_.fraction) {
    const double f = opts_.fraction();
    if (f >= 0) {
      line += " | " + fmt("%.1f", std::min(f, 1.0) * 100.0) + "%";
      if (f > 1e-6 && f < 1.0) {
        line += " eta " + fmt("%.0f", wall_s * (1.0 - f) / f) + "s";
      }
    }
  }
  out << line << "\n" << std::flush;
  heartbeats_.fetch_add(1, std::memory_order_relaxed);
}

void ProgressMonitor::stallDump(std::ostream& out, double quiet_s) {
  out << opts_.label << ": STALL no event commit for " << fmt("%.1f", quiet_s)
      << "s wall; per-lane state (t = last dispatched event's clock):\n";
  const int lanes = std::min(pulse_.lanes(), RunPulse::kMaxLanes);
  for (int i = 0; i < lanes; ++i) {
    out << "  lane " << i << ": t=" << fmt("%.6f", static_cast<double>(pulse_.laneNow(i)) * 1e-9)
        << "s pending=" << pulse_.lanePending(i) << "\n";
  }
  out << "  commits=" << pulse_.commits() << " epochs=" << pulse_.epochs() << "\n" << std::flush;
  stall_dumps_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mg::obs
