// The unified cross-layer metrics registry (DESIGN.md "Observability").
//
// Every layer that used to keep ad-hoc counters (PacketNetworkStats,
// scheduler quanta, vmpi byte counts, GIS query counts, ...) registers named
// instruments here instead. Names follow `layer.component.counter`, e.g.
// "net.packet.sent" or "vos.sched.quanta".
//
// Hot-path cost is one pointer-indirected integer increment: components
// resolve `Counter&` handles once at construction and bump them directly.
// Handles are stable for the registry's lifetime (instruments live in a
// deque and are never removed). Snapshots render as util::Table or JSON,
// in sorted name order, so two identical runs produce byte-identical output.
//
// A registry belongs to one sim::Simulator (sim::Simulator::metrics()), so
// independent simulations never share state and same-seed runs stay
// deterministic.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "util/stats.h"
#include "util/table.h"

namespace mg::obs {

/// Shortest double formatting that still round-trips exactly — the shared
/// currency of every byte-stable JSON/table snapshot in this layer.
std::string formatDouble(double v);

/// Minimal JSON string escaping (quotes, backslashes, newlines).
std::string jsonEscape(const std::string& s);

/// A monotonically increasing integer instrument. Increments are relaxed
/// atomics so event lanes on worker threads can bump shared counters
/// directly: addition commutes, so the final totals — the only thing
/// snapshots expose — are independent of thread interleaving and the
/// parallel worker count.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// A double-valued instrument: settable (level) or accumulating (total).
/// add() commutes like Counter::inc (up to FP rounding order — callers that
/// need byte-stable totals across worker counts must add from one lane, as
/// every current caller does); set() is last-writer and should stay lane-0.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Create-or-get by name. The returned reference stays valid for the
  /// registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Create-or-get; lo/hi/bins apply only on creation (a later lookup with
  /// different bounds returns the existing histogram unchanged).
  util::Histogram& histogram(const std::string& name, double lo, double hi, int bins);

  /// Fast existence/read-only queries (0 / nullptr when absent).
  std::int64_t counterValue(const std::string& name) const;
  double gaugeValue(const std::string& name) const;
  const util::Histogram* findHistogram(const std::string& name) const;

  /// One row per instrument, sorted by name: (metric, type, value).
  /// Histograms report their total sample count; per-bin data is in JSON.
  util::Table snapshotTable() const;

  /// {"counters": {...}, "gauges": {...}, "histograms": {name: {"lo": ..,
  /// "hi": .., "total": .., "bins": [..]}}} with sorted keys — byte-stable
  /// across identical runs.
  std::string snapshotJson() const;

  /// "metric,type,value" header + one row per instrument in the same merged
  /// name-sorted order as snapshotTable() — the spreadsheet/plot-pipeline
  /// form (mgrun --metrics=csv). Counters render as integers, gauges via
  /// formatDouble, histograms as their total sample count.
  std::string snapshotCsv() const;

 private:
  // Instruments live in deques (stable addresses); maps index by name.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<util::Histogram> histograms_;
  std::map<std::string, Counter*> counter_index_;
  std::map<std::string, Gauge*> gauge_index_;
  std::map<std::string, util::Histogram*> histogram_index_;
};

}  // namespace mg::obs
