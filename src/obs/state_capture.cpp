#include "obs/state_capture.h"

#include <cstring>

#include "obs/metrics.h"

namespace mg::obs {

void StateWriter::bytes(const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    hash_ ^= p[i];
    hash_ *= 0x100000001b3ull;  // FNV-1a prime
  }
}

void StateWriter::note(std::string_view name, std::string value) {
  if (!keep_transcript_) return;
  std::string line(name);
  line += "=";
  line += value;
  transcript_.push_back(std::move(line));
}

void StateWriter::key(std::string_view name) {
  bytes(name.data(), name.size());
  // A separator byte keeps ("ab","c") distinct from ("a","bc").
  const unsigned char sep = 0xff;
  bytes(&sep, 1);
}

void StateWriter::u64(std::string_view name, std::uint64_t v) {
  key(name);
  bytes(&v, sizeof v);
  note(name, std::to_string(v));
}

void StateWriter::i64(std::string_view name, std::int64_t v) {
  key(name);
  bytes(&v, sizeof v);
  note(name, std::to_string(v));
}

void StateWriter::f64(std::string_view name, double v) {
  key(name);
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  bytes(&bits, sizeof bits);
  note(name, formatDouble(v));
}

void StateWriter::boolean(std::string_view name, bool v) {
  u64(name, v ? 1 : 0);
}

void StateWriter::str(std::string_view name, std::string_view v) {
  key(name);
  bytes(v.data(), v.size());
  const unsigned char sep = 0xfe;
  bytes(&sep, 1);
  note(name, std::string(v));
}

void StateCaptureRegistry::add(std::string name, CaptureFn fn) {
  captures_[std::move(name)] = std::move(fn);
}

std::uint64_t StateCaptureRegistry::digest() const {
  StateWriter w;
  for (const auto& [name, fn] : captures_) {
    w.key(name);
    fn(w);
  }
  return w.digest();
}

std::vector<std::string> StateCaptureRegistry::transcript() const {
  std::vector<std::string> out;
  for (const auto& [name, fn] : captures_) {
    StateWriter w(/*keep_transcript=*/true);
    fn(w);
    for (const auto& line : w.transcript()) out.push_back(name + "/" + line);
  }
  return out;
}

}  // namespace mg::obs
