// Sim-time profiler: attributes virtual time to (track, layer.operation)
// buckets from the recorded span forest (mgrun --profile=table|json).
//
// Where the metrics registry answers "how many", this answers "where did the
// virtual time go" — per host, per layer: scheduler quanta, TCP segment
// transit, vmpi sends and waits, whole-rank runtimes. Each bucket reports
// count, total virtual time, and p50/p95/p99 quantiles computed through
// util::Histogram::quantile(), and both renderings are byte-stable for
// same-seed runs (sorted bucket order, round-trippable number formatting).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.h"
#include "util/table.h"

namespace mg::obs {

class SimProfiler {
 public:
  struct Bucket {
    std::string track;  // hostname, or "kernel"
    std::string span;   // component.name, e.g. "vos.sched.quantum"
    std::int64_t count = 0;
    std::int64_t total_ns = 0;
    double p50_ns = 0;
    double p95_ns = 0;
    double p99_ns = 0;
  };

  /// Aggregates the recorder's completed spans (instants and still-open
  /// spans carry no duration and are skipped). Bucket order is sorted by
  /// (track, span).
  explicit SimProfiler(const SpanRecorder& rec);

  const std::vector<Bucket>& buckets() const { return buckets_; }

  /// Column-aligned report (times in ms/us for readability).
  util::Table table() const;

  /// {"buckets":[{"track":..,"span":..,"count":..,"total_ns":..,
  /// "p50_ns":..,"p95_ns":..,"p99_ns":..}]} — byte-stable.
  std::string json() const;

 private:
  std::vector<Bucket> buckets_;
};

}  // namespace mg::obs
