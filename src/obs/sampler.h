// Event-driven periodic sampling of gauges and counters-as-rates into a
// TimeSeriesRecorder (DESIGN.md §10).
//
// The sampler schedules itself as a recurring simulation event on lane 0 at
// a fixed interval, reads every registered probe, and records one sample per
// probe per tick. It is deliberately decoupled from sim::Simulator (obs is a
// lower layer): the kernel surface arrives as a Host struct of callables,
// bound by sim::telemetryHost().
//
// Determinism under --parallel=N: a sample event fires while worker lanes
// may still be mid-phase, so reading cross-lane state (link occupancy,
// counters being bumped by wire lanes) directly would be racy *and*
// timing-dependent. Instead, when the host reports an active parallel phase
// the tick defers both the probe reads and the next-tick scheduling decision
// to host.run_at_barrier — the barrier is a deterministic point (the epoch
// structure is a function of the configuration, never the worker count), the
// workers are idle there, and barrier ops run in a deterministic order. In
// sequential/single-lane runs the tick collects immediately. Either way the
// recorded (time, value) stream is byte-identical for any worker count.
//
// Probes take the sample timestamp explicitly so resources can close open
// busy-intervals against the sampler's clock instead of reading their own
// lane clock (which may sit anywhere inside the epoch window at a barrier).
//
// The sampler reschedules only while host.pending_events() > 0, so it never
// keeps Simulator::run() (which runs until all queues drain) alive on its
// own, and the final tick lands at the last real event's epoch. finish()
// takes one closing sample so rate probes account the tail interval.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/timeline.h"

namespace mg::obs {

class Counter;

class TelemetrySampler {
 public:
  /// The kernel surface the sampler runs against (see sim::telemetryHost).
  struct Host {
    /// Current simulation time (ns), lane-0 clock.
    std::function<std::int64_t()> now;
    /// Schedule a callable at absolute sim time t (>= now) on lane 0.
    std::function<void(std::int64_t, std::function<void()>)> schedule_at;
    /// True while worker threads may be executing a parallel phase.
    std::function<bool()> in_parallel_phase;
    /// Run a callable at the next barrier (immediately when no phase).
    std::function<void(std::function<void()>)> run_at_barrier;
    /// Events currently scheduled across all lanes (safe at barriers).
    std::function<std::size_t()> pending_events;
  };

  struct Options {
    std::int64_t interval_ns = 100'000'000;  // 100 ms
    /// Probes registered past this cap are ignored (droppedProbes() counts
    /// them) — per-link registration on huge topologies stays bounded.
    std::size_t max_probes = 4096;
  };

  TelemetrySampler(TimeSeriesRecorder& recorder, Host host)
      : TelemetrySampler(recorder, std::move(host), Options{}) {}
  TelemetrySampler(TimeSeriesRecorder& recorder, Host host, Options opts);

  /// Sample the probe's value at time t. Recorded as-is (a level).
  void addLevel(std::string series, std::function<double(std::int64_t)> read);

  /// `cumulative` returns a non-decreasing total (e.g. busy-seconds, bytes);
  /// the recorded sample is its per-second rate over the last interval —
  /// utilization when the total is busy-seconds. The baseline is taken at
  /// start(), so the first tick covers [start, first tick].
  void addRate(std::string series, std::function<double(std::int64_t)> cumulative);

  /// Rate of a registry counter (events/sec, packets/sec, ...).
  void addCounterRate(std::string series, const Counter& counter);

  /// Take the t=now baseline sample and schedule the recurring tick. Call
  /// once, after probes are registered and before the run.
  void start();

  /// Take a final closing sample at host.now() unless one already landed
  /// there. Call after the run returns.
  void finish();

  std::int64_t ticks() const { return ticks_; }
  std::int64_t droppedProbes() const { return dropped_probes_; }
  std::int64_t intervalNs() const { return opts_.interval_ns; }

 private:
  struct Probe {
    std::string series;
    std::function<double(std::int64_t)> read;
    bool rate = false;
    double prev = 0;  // cumulative value at the previous tick (rate probes)
  };

  void addProbe(Probe p);
  /// The recurring tick, fired at its scheduled time t.
  void fire(std::int64_t t);
  /// Read every probe at time t and record the samples.
  void collect(std::int64_t t);
  /// Schedule the next tick if the run still has events to execute.
  void scheduleNext(std::int64_t t);

  TimeSeriesRecorder& recorder_;
  Host host_;
  Options opts_;
  std::vector<Probe> probes_;
  bool started_ = false;
  std::int64_t last_tick_ = -1;  // time of the previous collect, -1 before start
  std::int64_t ticks_ = 0;
  std::int64_t dropped_probes_ = 0;
};

}  // namespace mg::obs
