#include "obs/sim_profiler.h"

#include <algorithm>
#include <map>
#include <utility>

#include "util/stats.h"

namespace mg::obs {

namespace {
constexpr int kQuantileBins = 64;
}  // namespace

SimProfiler::SimProfiler(const SpanRecorder& rec) {
  std::map<std::pair<std::string, std::string>, std::vector<std::int64_t>> durations;
  for (const auto& s : rec.spans()) {
    if (s.instant || s.end < 0) continue;
    const std::string track = s.track.empty() ? "kernel" : s.track;
    durations[{track, s.component + "." + s.name}].push_back(s.end - s.start);
  }
  buckets_.reserve(durations.size());
  for (auto& [key, ds] : durations) {
    Bucket b;
    b.track = key.first;
    b.span = key.second;
    b.count = static_cast<std::int64_t>(ds.size());
    const auto [mn, mx] = std::minmax_element(ds.begin(), ds.end());
    // lo == hi when every sample is equal — the degenerate single-bin case
    // Histogram supports precisely for this caller.
    util::Histogram h(static_cast<double>(*mn), static_cast<double>(*mx), kQuantileBins);
    for (const std::int64_t d : ds) {
      b.total_ns += d;
      h.add(static_cast<double>(d));
    }
    b.p50_ns = h.quantile(0.50);
    b.p95_ns = h.quantile(0.95);
    b.p99_ns = h.quantile(0.99);
    buckets_.push_back(std::move(b));
  }
}

util::Table SimProfiler::table() const {
  util::Table t({"track", "span", "count", "total_ms", "p50_us", "p95_us", "p99_us"});
  for (const Bucket& b : buckets_) {
    t.addRow({b.track, b.span, std::to_string(b.count),
              formatDouble(static_cast<double>(b.total_ns) / 1e6), formatDouble(b.p50_ns / 1e3),
              formatDouble(b.p95_ns / 1e3), formatDouble(b.p99_ns / 1e3)});
  }
  return t;
}

std::string SimProfiler::json() const {
  std::string out = "{\"buckets\":[";
  bool first = true;
  for (const Bucket& b : buckets_) {
    if (!first) out += ',';
    first = false;
    out += "{\"track\":\"" + jsonEscape(b.track) + "\",\"span\":\"" + jsonEscape(b.span) +
           "\",\"count\":" + std::to_string(b.count) +
           ",\"total_ns\":" + std::to_string(b.total_ns) + ",\"p50_ns\":" + formatDouble(b.p50_ns) +
           ",\"p95_ns\":" + formatDouble(b.p95_ns) + ",\"p99_ns\":" + formatDouble(b.p99_ns) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace mg::obs
