#include "obs/metrics.h"

#include <cstdio>

namespace mg::obs {

/// Shortest round-trippable formatting for doubles, so snapshots are
/// byte-stable and lossless.
std::string formatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Prefer the shortest representation that round-trips.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    double back = 0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  auto it = counter_index_.find(name);
  if (it != counter_index_.end()) return *it->second;
  counters_.emplace_back();
  counter_index_.emplace(name, &counters_.back());
  return counters_.back();
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  auto it = gauge_index_.find(name);
  if (it != gauge_index_.end()) return *it->second;
  gauges_.emplace_back();
  gauge_index_.emplace(name, &gauges_.back());
  return gauges_.back();
}

util::Histogram& MetricsRegistry::histogram(const std::string& name, double lo, double hi,
                                            int bins) {
  auto it = histogram_index_.find(name);
  if (it != histogram_index_.end()) return *it->second;
  histograms_.emplace_back(lo, hi, bins);
  histogram_index_.emplace(name, &histograms_.back());
  return histograms_.back();
}

std::int64_t MetricsRegistry::counterValue(const std::string& name) const {
  auto it = counter_index_.find(name);
  return it == counter_index_.end() ? 0 : it->second->value();
}

double MetricsRegistry::gaugeValue(const std::string& name) const {
  auto it = gauge_index_.find(name);
  return it == gauge_index_.end() ? 0.0 : it->second->value();
}

const util::Histogram* MetricsRegistry::findHistogram(const std::string& name) const {
  auto it = histogram_index_.find(name);
  return it == histogram_index_.end() ? nullptr : it->second;
}

util::Table MetricsRegistry::snapshotTable() const {
  // One merged, name-sorted view; the maps are already sorted, so a
  // three-way merge keeps the overall ordering deterministic.
  util::Table t({"metric", "type", "value"});
  auto ci = counter_index_.begin();
  auto gi = gauge_index_.begin();
  auto hi = histogram_index_.begin();
  while (ci != counter_index_.end() || gi != gauge_index_.end() || hi != histogram_index_.end()) {
    const std::string* cn = ci != counter_index_.end() ? &ci->first : nullptr;
    const std::string* gn = gi != gauge_index_.end() ? &gi->first : nullptr;
    const std::string* hn = hi != histogram_index_.end() ? &hi->first : nullptr;
    const std::string* least = cn;
    if (gn && (!least || *gn < *least)) least = gn;
    if (hn && (!least || *hn < *least)) least = hn;
    if (least == cn) {
      t.row() << ci->first << "counter" << static_cast<long long>(ci->second->value());
      ++ci;
    } else if (least == gn) {
      t.row() << gi->first << "gauge" << formatDouble(gi->second->value());
      ++gi;
    } else {
      t.row() << hi->first << "histogram"
              << (std::to_string(hi->second->total()) + " samples");
      ++hi;
    }
  }
  return t;
}

std::string MetricsRegistry::snapshotCsv() const {
  // Same three-way name-sorted merge as snapshotTable, in CSV dress.
  // Instrument names never contain commas or quotes, so no field escaping.
  std::string out = "metric,type,value\n";
  auto ci = counter_index_.begin();
  auto gi = gauge_index_.begin();
  auto hi = histogram_index_.begin();
  while (ci != counter_index_.end() || gi != gauge_index_.end() || hi != histogram_index_.end()) {
    const std::string* cn = ci != counter_index_.end() ? &ci->first : nullptr;
    const std::string* gn = gi != gauge_index_.end() ? &gi->first : nullptr;
    const std::string* hn = hi != histogram_index_.end() ? &hi->first : nullptr;
    const std::string* least = cn;
    if (gn && (!least || *gn < *least)) least = gn;
    if (hn && (!least || *hn < *least)) least = hn;
    if (least == cn) {
      out += ci->first + ",counter," + std::to_string(ci->second->value()) + "\n";
      ++ci;
    } else if (least == gn) {
      out += gi->first + ",gauge," + formatDouble(gi->second->value()) + "\n";
      ++gi;
    } else {
      out += hi->first + ",histogram," + std::to_string(hi->second->total()) + "\n";
      ++hi;
    }
  }
  return out;
}

std::string MetricsRegistry::snapshotJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counter_index_) {
    if (!first) out += ',';
    first = false;
    out += '"' + jsonEscape(name) + "\":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauge_index_) {
    if (!first) out += ',';
    first = false;
    out += '"' + jsonEscape(name) + "\":" + formatDouble(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histogram_index_) {
    if (!first) out += ',';
    first = false;
    out += '"' + jsonEscape(name) + "\":{\"lo\":" + formatDouble(h->lo()) +
           ",\"hi\":" + formatDouble(h->hi()) + ",\"total\":" + std::to_string(h->total()) +
           ",\"bins\":[";
    for (int b = 0; b < h->bins(); ++b) {
      if (b) out += ',';
      out += std::to_string(h->count(b));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace mg::obs
