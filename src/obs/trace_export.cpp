#include "obs/trace_export.h"

#include <cstdio>
#include <map>
#include <string>

namespace mg::obs {

namespace {

/// Nanoseconds -> microseconds with 3 fractional digits, via integer math
/// only (ts/dur are conventionally microseconds in the trace_event format).
std::string micros(std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%lld.%03lld", static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  return buf;
}

void appendArgs(std::string& out, const SpanRecorder::Span& s) {
  out += "\"args\":{\"span\":" + std::to_string(s.id) + ",\"parent\":" + std::to_string(s.parent);
  for (const auto& [k, v] : s.attrs) {
    out += ",\"" + jsonEscape(k) + "\":\"" + jsonEscape(v) + "\"";
  }
  out += "}";
}

}  // namespace

std::string chromeTraceJson(const SpanRecorder& rec, const TimeSeriesRecorder* timeline) {
  // Tracks in sorted name order -> deterministic tid assignment.
  std::map<std::string, int> tids;
  for (const auto& s : rec.spans()) tids.emplace(s.track, 0);
  tids.emplace(std::string(), 0);  // the kernel lane always exists
  int next_tid = 0;
  for (auto& [name, tid] : tids) tid = next_tid++;

  std::string out = "{\"traceEvents\":[";
  out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
         "\"args\":{\"name\":\"microgrid\"}}";
  for (const auto& [name, tid] : tids) {
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
           jsonEscape(name.empty() ? "kernel" : name) + "\"}}";
  }

  for (const auto& s : rec.spans()) {
    const int tid = tids.at(s.track);
    out += ",\n{\"name\":\"" + jsonEscape(s.name) + "\",\"cat\":\"" + jsonEscape(s.component) +
           "\",\"pid\":1,\"tid\":" + std::to_string(tid) + ",\"ts\":" + micros(s.start);
    if (s.instant) {
      out += ",\"ph\":\"i\",\"s\":\"t\",";
    } else {
      // A span still open at export time (a daemon parked past the end of
      // the run) renders with zero duration rather than a bogus one.
      const std::int64_t dur = s.end >= s.start ? s.end - s.start : 0;
      out += ",\"ph\":\"X\",\"dur\":" + micros(dur) + ",";
    }
    appendArgs(out, s);
    out += "}";
  }

  if (timeline != nullptr) {
    // Telemetry series as counter tracks: one "C" event per populated
    // bucket, stamped at the bucket start, carrying the bucket mean. The
    // viewer draws each distinctly-named track as its own step graph under
    // the process, beside the span lanes.
    for (const TimeSeriesRecorder::Series* series : timeline->seriesSorted()) {
      for (std::size_t i = 0; i < series->buckets.size(); ++i) {
        const TimeSeriesRecorder::Bucket& b = series->buckets[i];
        if (b.count == 0) continue;
        const std::int64_t start = series->origin + static_cast<std::int64_t>(i) * series->width;
        out += ",\n{\"ph\":\"C\",\"pid\":1,\"name\":\"" + jsonEscape(series->name) +
               "\",\"ts\":" + micros(start) + ",\"args\":{\"value\":" +
               formatDouble(b.sum / static_cast<double>(b.count)) + "}}";
      }
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace mg::obs
