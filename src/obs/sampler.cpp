#include "obs/sampler.h"

#include "obs/metrics.h"
#include "util/error.h"

namespace mg::obs {

TelemetrySampler::TelemetrySampler(TimeSeriesRecorder& recorder, Host host, Options opts)
    : recorder_(recorder), host_(std::move(host)), opts_(opts) {
  if (opts_.interval_ns <= 0) throw UsageError("TelemetrySampler wants interval > 0");
  if (!host_.now || !host_.schedule_at || !host_.in_parallel_phase || !host_.run_at_barrier ||
      !host_.pending_events) {
    throw UsageError("TelemetrySampler host is missing a callable");
  }
}

void TelemetrySampler::addProbe(Probe p) {
  if (started_) throw UsageError("TelemetrySampler probes must be registered before start()");
  if (probes_.size() >= opts_.max_probes) {
    ++dropped_probes_;
    return;
  }
  probes_.push_back(std::move(p));
}

void TelemetrySampler::addLevel(std::string series, std::function<double(std::int64_t)> read) {
  addProbe(Probe{std::move(series), std::move(read), /*rate=*/false, 0});
}

void TelemetrySampler::addRate(std::string series,
                               std::function<double(std::int64_t)> cumulative) {
  addProbe(Probe{std::move(series), std::move(cumulative), /*rate=*/true, 0});
}

void TelemetrySampler::addCounterRate(std::string series, const Counter& counter) {
  addRate(std::move(series),
          [&counter](std::int64_t) { return static_cast<double>(counter.value()); });
}

void TelemetrySampler::start() {
  if (started_) throw UsageError("TelemetrySampler::start called twice");
  started_ = true;
  const std::int64_t t0 = host_.now();
  // The t0 tick records every level at its initial value and primes the
  // rate baselines (a rate's first recorded sample covers [t0, t0+interval]).
  collect(t0);
  scheduleNext(t0);
}

void TelemetrySampler::fire(std::int64_t t) {
  if (host_.in_parallel_phase()) {
    // Worker lanes may still be executing: defer both the probe reads and
    // the reschedule decision to the barrier, where the workers are idle and
    // the op order is deterministic (see the header).
    host_.run_at_barrier([this, t] {
      collect(t);
      scheduleNext(t);
    });
    return;
  }
  collect(t);
  scheduleNext(t);
}

void TelemetrySampler::collect(std::int64_t t) {
  if (t == last_tick_) return;  // finish() colliding with the final tick
  const double dt_s = last_tick_ < 0 ? 0.0 : static_cast<double>(t - last_tick_) * 1e-9;
  for (Probe& p : probes_) {
    const double v = p.read(t);
    if (p.rate) {
      if (last_tick_ >= 0 && dt_s > 0) recorder_.add(p.series, t, (v - p.prev) / dt_s);
      p.prev = v;
    } else {
      recorder_.add(p.series, t, v);
    }
  }
  last_tick_ = t;
  ++ticks_;
}

void TelemetrySampler::scheduleNext(std::int64_t t) {
  // Without pending events the run is over (Simulator::run drains to empty);
  // rescheduling would keep it alive forever.
  if (host_.pending_events() == 0) return;
  std::int64_t next = t + opts_.interval_ns;
  // At a barrier lane 0's clock may already have passed t + interval (the
  // epoch ran ahead); the clamp keeps schedule_at legal and is deterministic
  // because barrier-time clocks are functions of the configuration alone.
  const std::int64_t now = host_.now();
  if (next < now) next = now;
  host_.schedule_at(next, [this, next] { fire(next); });
}

void TelemetrySampler::finish() {
  if (!started_) return;
  collect(host_.now());
}

}  // namespace mg::obs
