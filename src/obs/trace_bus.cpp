#include "obs/trace_bus.h"

#include <algorithm>
#include <cstdio>

#include "obs/lane.h"

namespace mg::obs {

void TraceBus::Channel::record(std::int64_t time, std::string_view kind, double value,
                               std::string_view detail) {
  if (!enabled_) return;
  const int lane = obs::currentLane();
  if (lane != 0 && static_cast<std::size_t>(lane) < bus_.lane_journals_.size()) {
    bus_.lane_journals_[static_cast<std::size_t>(lane)].push_back(
        Event{time, name_, std::string(kind), value, std::string(detail)});
    return;
  }
  bus_.events_.push_back(Event{time, name_, std::string(kind), value, std::string(detail)});
}

void TraceBus::configureLanes(int lanes) {
  if (lanes < 1) lanes = 1;
  lane_journals_.assign(static_cast<std::size_t>(lanes), {});
}

void TraceBus::commitParallelPhase() {
  struct Ref {
    std::int64_t time;
    int lane;
    const Event* ev;
  };
  std::vector<Ref> refs;
  for (std::size_t lane = 1; lane < lane_journals_.size(); ++lane) {
    for (const Event& e : lane_journals_[lane]) {
      refs.push_back(Ref{e.time, static_cast<int>(lane), &e});
    }
  }
  if (refs.empty()) return;
  std::stable_sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.lane < b.lane;
  });
  for (const Ref& r : refs) events_.push_back(*r.ev);
  for (std::size_t lane = 1; lane < lane_journals_.size(); ++lane) {
    lane_journals_[lane].clear();
  }
}

TraceBus::Channel& TraceBus::channel(const std::string& component) {
  auto it = index_.find(component);
  if (it != index_.end()) return *it->second;
  channels_.push_back(Channel(*this, component));
  Channel& ch = channels_.back();
  index_.emplace(component, &ch);
  for (const auto& [prefix, on] : masks_) {
    if (prefixMatches(prefix, component)) ch.enabled_ = on;
  }
  return ch;
}

bool TraceBus::prefixMatches(const std::string& prefix, const std::string& name) {
  if (prefix.empty() || prefix == name) return true;
  return name.size() > prefix.size() && name.compare(0, prefix.size(), prefix) == 0 &&
         name[prefix.size()] == '.';
}

void TraceBus::setEnabled(const std::string& component_prefix, bool on) {
  masks_.emplace_back(component_prefix, on);
  for (auto& ch : channels_) {
    if (prefixMatches(component_prefix, ch.name_)) ch.enabled_ = on;
  }
}

util::Trace TraceBus::asTrace(std::string_view component, std::string_view kind) const {
  util::Trace out;
  for (const Event& e : events_) {
    if (e.component == component && e.kind == kind) {
      out.emplace_back(static_cast<double>(e.time) * 1e-9, e.value);
    }
  }
  return out;
}

std::string TraceBus::serialize() const {
  std::string out;
  char buf[64];
  for (const Event& e : events_) {
    std::snprintf(buf, sizeof(buf), "%lld ", static_cast<long long>(e.time));
    out += buf;
    out += e.component;
    out += ' ';
    out += e.kind;
    // Fixed %.9g: enough precision for every value the bus records (times in
    // ns, rates, fractions) without the %.17g trailing-digit noise that
    // differs between libm/libc versions. snprintf always renders '.' here
    // because the process never calls setlocale(), so the stream is
    // locale-stable too; serialize(parse(serialize(x))) is byte-identical.
    std::snprintf(buf, sizeof(buf), " %.9g", e.value);
    out += buf;
    if (!e.detail.empty()) {
      out += ' ';
      out += e.detail;
    }
    out += '\n';
  }
  return out;
}

}  // namespace mg::obs
