#include "obs/span.h"

#include <cstdio>

namespace mg::obs {

SpanRecorder::SpanRecorder(MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    c_begun_ = &metrics->counter("obs.span.begun");
    c_completed_ = &metrics->counter("obs.span.completed");
    c_aborted_ = &metrics->counter("obs.span.aborted");
    c_instants_ = &metrics->counter("obs.span.instants");
  }
}

SpanId SpanRecorder::record(SpanId parent, std::string_view component, std::string_view name,
                            std::string_view track, bool instant) {
  Span s;
  s.id = static_cast<SpanId>(spans_.size()) + 1;
  s.parent = parent;
  s.component.assign(component);
  s.name.assign(name);
  s.track.assign(track);
  s.start = nowNs();
  s.instant = instant;
  if (instant) s.end = s.start;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

SpanId SpanRecorder::begin(std::string_view component, std::string_view name,
                           std::string_view track) {
  if (!enabled_) return 0;
  if (c_begun_) c_begun_->inc();
  return record(current_, component, name, track, /*instant=*/false);
}

SpanId SpanRecorder::beginChildOf(SpanId parent, std::string_view component, std::string_view name,
                                  std::string_view track) {
  if (!enabled_) return 0;
  if (c_begun_) c_begun_->inc();
  return record(parent, component, name, track, /*instant=*/false);
}

void SpanRecorder::end(SpanId id) {
  Span* s = mutableFind(id);
  if (s == nullptr || !s->open()) return;
  s->end = nowNs();
  if (c_completed_) c_completed_->inc();
}

void SpanRecorder::endWith(SpanId id, std::string_view key, std::string_view value) {
  Span* s = mutableFind(id);
  if (s == nullptr || !s->open()) return;
  s->attrs.emplace_back(std::string(key), std::string(value));
  s->end = nowNs();
  if (c_completed_) c_completed_->inc();
}

void SpanRecorder::annotate(SpanId id, std::string_view key, std::string_view value) {
  Span* s = mutableFind(id);
  if (s == nullptr) return;
  s->attrs.emplace_back(std::string(key), std::string(value));
}

SpanId SpanRecorder::instant(std::string_view component, std::string_view name,
                             std::string_view track) {
  if (!enabled_) return 0;
  if (c_instants_) c_instants_->inc();
  return record(current_, component, name, track, /*instant=*/true);
}

void SpanRecorder::abortTrack(std::string_view track, std::string_view reason) {
  const std::int64_t t = nowNs();
  for (Span& s : spans_) {
    if (!s.open() || s.track != track) continue;
    s.attrs.emplace_back("aborted", std::string(reason));
    s.end = t;
    if (c_aborted_) c_aborted_->inc();
  }
}

const SpanRecorder::Span* SpanRecorder::find(SpanId id) const {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[static_cast<std::size_t>(id - 1)];
}

SpanRecorder::Span* SpanRecorder::mutableFind(SpanId id) {
  if (id == 0 || id > spans_.size()) return nullptr;
  return &spans_[static_cast<std::size_t>(id - 1)];
}

std::size_t SpanRecorder::openCount() const {
  std::size_t n = 0;
  for (const Span& s : spans_) {
    if (s.open()) ++n;
  }
  return n;
}

std::string SpanRecorder::serializeTree() const {
  std::string out;
  char buf[64];
  for (const Span& s : spans_) {
    std::snprintf(buf, sizeof(buf), "#%llu parent=%llu ", static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent));
    out += buf;
    out += s.component;
    out += '.';
    out += s.name;
    out += " track=";
    out += s.track.empty() ? "kernel" : s.track;
    std::snprintf(buf, sizeof(buf), " start=%lld", static_cast<long long>(s.start));
    out += buf;
    if (s.instant) {
      out += " instant";
    } else if (s.end < 0) {
      out += " open";
    } else {
      std::snprintf(buf, sizeof(buf), " end=%lld", static_cast<long long>(s.end));
      out += buf;
    }
    for (const auto& [k, v] : s.attrs) {
      out += ' ';
      out += k;
      out += '=';
      out += v;
    }
    out += '\n';
  }
  return out;
}

}  // namespace mg::obs
