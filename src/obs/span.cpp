#include "obs/span.h"

#include <algorithm>
#include <cstdio>

namespace mg::obs {

SpanRecorder::SpanRecorder(MetricsRegistry* metrics) {
  if (metrics != nullptr) {
    c_begun_ = &metrics->counter("obs.span.begun");
    c_completed_ = &metrics->counter("obs.span.completed");
    c_aborted_ = &metrics->counter("obs.span.aborted");
    c_instants_ = &metrics->counter("obs.span.instants");
  }
}

void SpanRecorder::configureLanes(int lanes) {
  if (lanes < 1) lanes = 1;
  current_lanes_.assign(static_cast<std::size_t>(lanes), 0);
  lane_journals_.assign(static_cast<std::size_t>(lanes), {});
  lane_next_local_.assign(static_cast<std::size_t>(lanes), 0);
}

SpanId SpanRecorder::canonical(SpanId id) const {
  if (!namespaced(id)) return id;
  const auto it = remap_.find(id);
  return it == remap_.end() ? 0 : it->second;
}

SpanId SpanRecorder::record(SpanId parent, std::string_view component, std::string_view name,
                            std::string_view track, bool instant, std::int64_t at) {
  Span s;
  s.id = static_cast<SpanId>(spans_.size()) + 1;
  s.parent = parent;
  s.component.assign(component);
  s.name.assign(name);
  s.track.assign(track);
  s.start = at;
  s.instant = instant;
  if (instant) s.end = s.start;
  spans_.push_back(std::move(s));
  return spans_.back().id;
}

SpanId SpanRecorder::begin(std::string_view component, std::string_view name,
                           std::string_view track) {
  if (!enabled_) return 0;
  const int lane = obs::currentLane();
  if (lane != 0 && static_cast<std::size_t>(lane) < lane_journals_.size()) {
    const SpanId id = laneId(lane, ++lane_next_local_[static_cast<std::size_t>(lane)]);
    lane_journals_[static_cast<std::size_t>(lane)].push_back(
        SpanOp{SpanOp::kBegin, nowNs(), id, current(), std::string(component), std::string(name),
               std::string(track), {}, {}});
    return id;
  }
  if (c_begun_) c_begun_->inc();
  return record(canonical(current()), component, name, track, /*instant=*/false, nowNs());
}

SpanId SpanRecorder::beginChildOf(SpanId parent, std::string_view component, std::string_view name,
                                  std::string_view track) {
  if (!enabled_) return 0;
  const int lane = obs::currentLane();
  if (lane != 0 && static_cast<std::size_t>(lane) < lane_journals_.size()) {
    const SpanId id = laneId(lane, ++lane_next_local_[static_cast<std::size_t>(lane)]);
    lane_journals_[static_cast<std::size_t>(lane)].push_back(
        SpanOp{SpanOp::kBegin, nowNs(), id, parent, std::string(component), std::string(name),
               std::string(track), {}, {}});
    return id;
  }
  if (c_begun_) c_begun_->inc();
  return record(canonical(parent), component, name, track, /*instant=*/false, nowNs());
}

void SpanRecorder::end(SpanId id) {
  if (id == 0) return;
  const int lane = obs::currentLane();
  if (lane != 0 && static_cast<std::size_t>(lane) < lane_journals_.size()) {
    lane_journals_[static_cast<std::size_t>(lane)].push_back(
        SpanOp{SpanOp::kEnd, nowNs(), id, 0, {}, {}, {}, {}, {}});
    return;
  }
  Span* s = mutableFind(id);
  if (s == nullptr || !s->open()) return;
  s->end = nowNs();
  if (c_completed_) c_completed_->inc();
}

void SpanRecorder::endWith(SpanId id, std::string_view key, std::string_view value) {
  if (id == 0) return;
  const int lane = obs::currentLane();
  if (lane != 0 && static_cast<std::size_t>(lane) < lane_journals_.size()) {
    lane_journals_[static_cast<std::size_t>(lane)].push_back(SpanOp{
        SpanOp::kEndWith, nowNs(), id, 0, {}, {}, {}, std::string(key), std::string(value)});
    return;
  }
  Span* s = mutableFind(id);
  if (s == nullptr || !s->open()) return;
  s->attrs.emplace_back(std::string(key), std::string(value));
  s->end = nowNs();
  if (c_completed_) c_completed_->inc();
}

void SpanRecorder::annotate(SpanId id, std::string_view key, std::string_view value) {
  if (id == 0) return;
  const int lane = obs::currentLane();
  if (lane != 0 && static_cast<std::size_t>(lane) < lane_journals_.size()) {
    lane_journals_[static_cast<std::size_t>(lane)].push_back(SpanOp{
        SpanOp::kAnnotate, nowNs(), id, 0, {}, {}, {}, std::string(key), std::string(value)});
    return;
  }
  Span* s = mutableFind(id);
  if (s == nullptr) return;
  s->attrs.emplace_back(std::string(key), std::string(value));
}

SpanId SpanRecorder::instant(std::string_view component, std::string_view name,
                             std::string_view track) {
  if (!enabled_) return 0;
  const int lane = obs::currentLane();
  if (lane != 0 && static_cast<std::size_t>(lane) < lane_journals_.size()) {
    const SpanId id = laneId(lane, ++lane_next_local_[static_cast<std::size_t>(lane)]);
    lane_journals_[static_cast<std::size_t>(lane)].push_back(
        SpanOp{SpanOp::kInstant, nowNs(), id, current(), std::string(component), std::string(name),
               std::string(track), {}, {}});
    return id;
  }
  if (c_instants_) c_instants_->inc();
  return record(canonical(current()), component, name, track, /*instant=*/true, nowNs());
}

void SpanRecorder::abortTrack(std::string_view track, std::string_view reason) {
  // Lane-0 only (host crashes run on the process lane). Spans journaled by
  // wire lanes in the current phase are not yet visible here; they commit at
  // the barrier and close normally — deterministically so, for any worker
  // count, because commit order never depends on the thread schedule.
  const std::int64_t t = nowNs();
  for (Span& s : spans_) {
    if (!s.open() || s.track != track) continue;
    s.attrs.emplace_back("aborted", std::string(reason));
    s.end = t;
    if (c_aborted_) c_aborted_->inc();
  }
}

void SpanRecorder::applyOp(int lane, const SpanOp& op) {
  switch (op.kind) {
    case SpanOp::kBegin:
    case SpanOp::kInstant: {
      if (c_begun_ && op.kind == SpanOp::kBegin) c_begun_->inc();
      if (c_instants_ && op.kind == SpanOp::kInstant) c_instants_->inc();
      const SpanId dense = record(canonical(op.parent), op.component, op.name, op.track,
                                  op.kind == SpanOp::kInstant, op.time);
      remap_[op.id] = dense;
      break;
    }
    case SpanOp::kEnd: {
      Span* s = mutableFind(op.id);
      if (s == nullptr || !s->open()) return;
      s->end = op.time;
      if (c_completed_) c_completed_->inc();
      break;
    }
    case SpanOp::kEndWith: {
      Span* s = mutableFind(op.id);
      if (s == nullptr || !s->open()) return;
      s->attrs.emplace_back(op.key, op.value);
      s->end = op.time;
      if (c_completed_) c_completed_->inc();
      break;
    }
    case SpanOp::kAnnotate: {
      Span* s = mutableFind(op.id);
      if (s == nullptr) return;
      s->attrs.emplace_back(op.key, op.value);
      break;
    }
  }
  (void)lane;
}

void SpanRecorder::commitParallelPhase() {
  struct Ref {
    std::int64_t time;
    int lane;
    const SpanOp* op;
  };
  std::vector<Ref> refs;
  for (std::size_t lane = 1; lane < lane_journals_.size(); ++lane) {
    for (const SpanOp& op : lane_journals_[lane]) {
      refs.push_back(Ref{op.time, static_cast<int>(lane), &op});
    }
  }
  if (refs.empty()) return;
  // (time, lane) with journal order preserved inside each (time, lane) pair
  // by the stable sort — the deterministic merge rule.
  std::stable_sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.lane < b.lane;
  });
  for (const Ref& r : refs) applyOp(r.lane, *r.op);
  for (std::size_t lane = 1; lane < lane_journals_.size(); ++lane) {
    lane_journals_[lane].clear();
  }
}

const SpanRecorder::Span* SpanRecorder::find(SpanId id) const {
  const SpanId dense = canonical(id);
  if (dense == 0 || dense > spans_.size()) return nullptr;
  return &spans_[static_cast<std::size_t>(dense - 1)];
}

SpanRecorder::Span* SpanRecorder::mutableFind(SpanId id) {
  const SpanId dense = canonical(id);
  if (dense == 0 || dense > spans_.size()) return nullptr;
  return &spans_[static_cast<std::size_t>(dense - 1)];
}

std::size_t SpanRecorder::openCount() const {
  std::size_t n = 0;
  for (const Span& s : spans_) {
    if (s.open()) ++n;
  }
  return n;
}

std::string SpanRecorder::serializeTree() const {
  std::string out;
  char buf[64];
  for (const Span& s : spans_) {
    std::snprintf(buf, sizeof(buf), "#%llu parent=%llu ", static_cast<unsigned long long>(s.id),
                  static_cast<unsigned long long>(s.parent));
    out += buf;
    out += s.component;
    out += '.';
    out += s.name;
    out += " track=";
    out += s.track.empty() ? "kernel" : s.track;
    std::snprintf(buf, sizeof(buf), " start=%lld", static_cast<long long>(s.start));
    out += buf;
    if (s.instant) {
      out += " instant";
    } else if (s.end < 0) {
      out += " open";
    } else {
      std::snprintf(buf, sizeof(buf), " end=%lld", static_cast<long long>(s.end));
      out += buf;
    }
    for (const auto& [k, v] : s.attrs) {
      out += ' ';
      out += k;
      out += '=';
      out += v;
    }
    out += '\n';
  }
  return out;
}

}  // namespace mg::obs
