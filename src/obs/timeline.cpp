#include "obs/timeline.h"

#include <algorithm>

#include "obs/lane.h"
#include "obs/metrics.h"
#include "util/error.h"

namespace mg::obs {

namespace {

TimeSeriesRecorder::Bucket mergePair(const TimeSeriesRecorder::Bucket& a,
                                     const TimeSeriesRecorder::Bucket& b) {
  if (a.count == 0) return b;
  if (b.count == 0) return a;
  TimeSeriesRecorder::Bucket m;
  m.count = a.count + b.count;
  m.min = std::min(a.min, b.min);
  m.max = std::max(a.max, b.max);
  m.sum = a.sum + b.sum;
  m.last = b.last;  // b covers the later window
  return m;
}

}  // namespace

TimeSeriesRecorder::TimeSeriesRecorder(Options opts) : opts_(opts) {
  if (opts_.capacity < 2) throw UsageError("TimeSeriesRecorder wants capacity >= 2");
  if (opts_.base_width_ns <= 0) throw UsageError("TimeSeriesRecorder wants base_width > 0");
}

void TimeSeriesRecorder::setBaseWidth(std::int64_t width_ns) {
  if (width_ns <= 0) throw UsageError("TimeSeriesRecorder wants base_width > 0");
  opts_.base_width_ns = width_ns;
}

TimeSeriesRecorder::Series& TimeSeriesRecorder::getOrCreate(std::string_view name) {
  auto it = index_.find(name);
  if (it != index_.end()) return *it->second;
  series_.emplace_back();
  Series& s = series_.back();
  s.name = std::string(name);
  s.width = opts_.base_width_ns;
  index_.emplace(s.name, &s);
  return s;
}

void TimeSeriesRecorder::add(std::string_view series, std::int64_t t, double v) {
  const int lane = currentLane();
  if (lane > 0 && static_cast<std::size_t>(lane) < lane_journals_.size()) {
    lane_journals_[static_cast<std::size_t>(lane)].push_back(
        JournalEntry{t, std::string(series), v});
    return;
  }
  addDirect(series, t, v);
}

void TimeSeriesRecorder::addDirect(std::string_view name, std::int64_t t, double v) {
  if (index_.size() >= opts_.max_series && index_.find(name) == index_.end()) {
    ++dropped_series_;
    return;
  }
  Series& s = getOrCreate(name);
  if (!s.started) {
    // Anchor bucket 0 on the first sample, aligned down to the width grid so
    // bucket bounds are round multiples (and widening keeps them so).
    s.origin = t - (t % s.width);
    if (s.origin > t) s.origin -= s.width;  // negative-time defensive floor
    s.started = true;
  }
  std::int64_t idx = t < s.origin ? 0 : (t - s.origin) / s.width;
  while (idx >= static_cast<std::int64_t>(opts_.capacity)) {
    widen(s);
    idx = (t - s.origin) / s.width;
  }
  if (static_cast<std::size_t>(idx) >= s.buckets.size()) {
    s.buckets.resize(static_cast<std::size_t>(idx) + 1);
  }
  Bucket& b = s.buckets[static_cast<std::size_t>(idx)];
  if (b.count == 0) {
    b.min = b.max = b.sum = v;
    b.count = 1;
  } else {
    b.min = std::min(b.min, v);
    b.max = std::max(b.max, v);
    b.sum += v;
    ++b.count;
  }
  b.last = v;
  ++samples_;
}

void TimeSeriesRecorder::widen(Series& s) {
  // Double the bucket width in place: pairs (2j, 2j+1) — exact halves of the
  // new window [origin + j*2w, origin + (j+1)*2w) — merge into bucket j. The
  // origin stays, so every new boundary was already a boundary before and no
  // recorded aggregate is ever split.
  const std::size_t n = s.buckets.size();
  const std::size_t merged = (n + 1) / 2;
  for (std::size_t j = 0; j < merged; ++j) {
    const Bucket& a = s.buckets[2 * j];
    s.buckets[j] = (2 * j + 1 < n) ? mergePair(a, s.buckets[2 * j + 1]) : a;
  }
  s.buckets.resize(merged);
  s.width *= 2;
  ++s.widenings;
}

const TimeSeriesRecorder::Series* TimeSeriesRecorder::find(std::string_view series) const {
  auto it = index_.find(series);
  return it == index_.end() ? nullptr : it->second;
}

std::vector<const TimeSeriesRecorder::Series*> TimeSeriesRecorder::seriesSorted() const {
  std::vector<const Series*> out;
  out.reserve(index_.size());
  for (const auto& [name, s] : index_) out.push_back(s);
  return out;
}

void TimeSeriesRecorder::configureLanes(int lanes) {
  lane_journals_.resize(static_cast<std::size_t>(lanes));
}

void TimeSeriesRecorder::commitParallelPhase() {
  struct Ref {
    std::int64_t time;
    int lane;
    const JournalEntry* e;
  };
  std::vector<Ref> refs;
  for (std::size_t lane = 1; lane < lane_journals_.size(); ++lane) {
    for (const JournalEntry& e : lane_journals_[lane]) {
      refs.push_back(Ref{e.time, static_cast<int>(lane), &e});
    }
  }
  if (refs.empty()) return;
  std::stable_sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.lane < b.lane;
  });
  for (const Ref& r : refs) addDirect(r.e->series, r.e->time, r.e->value);
  for (std::size_t lane = 1; lane < lane_journals_.size(); ++lane) {
    lane_journals_[lane].clear();
  }
}

std::string TimeSeriesRecorder::csv() const {
  std::string out = "series,bucket_start_ns,bucket_end_ns,samples,min,max,mean,last\n";
  for (const auto& [name, s] : index_) {
    for (std::size_t i = 0; i < s->buckets.size(); ++i) {
      const Bucket& b = s->buckets[i];
      if (b.count == 0) continue;
      const std::int64_t start = s->origin + static_cast<std::int64_t>(i) * s->width;
      out += name;
      out += ',' + std::to_string(start);
      out += ',' + std::to_string(start + s->width);
      out += ',' + std::to_string(b.count);
      out += ',' + formatDouble(b.min);
      out += ',' + formatDouble(b.max);
      out += ',' + formatDouble(b.sum / static_cast<double>(b.count));
      out += ',' + formatDouble(b.last);
      out += '\n';
    }
  }
  return out;
}

std::string TimeSeriesRecorder::json() const {
  std::string out = "{\"series\":[";
  bool first_series = true;
  for (const auto& [name, s] : index_) {
    if (!first_series) out += ',';
    first_series = false;
    out += "{\"name\":\"" + jsonEscape(name) + "\",\"origin_ns\":" + std::to_string(s->origin) +
           ",\"width_ns\":" + std::to_string(s->width) +
           ",\"widenings\":" + std::to_string(s->widenings) + ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t i = 0; i < s->buckets.size(); ++i) {
      const Bucket& b = s->buckets[i];
      if (b.count == 0) continue;
      if (!first_bucket) out += ',';
      first_bucket = false;
      const std::int64_t start = s->origin + static_cast<std::int64_t>(i) * s->width;
      out += '[' + std::to_string(start) + ',' + std::to_string(b.count) + ',' +
             formatDouble(b.min) + ',' + formatDouble(b.max) + ',' +
             formatDouble(b.sum / static_cast<double>(b.count)) + ',' + formatDouble(b.last) +
             ']';
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace mg::obs
