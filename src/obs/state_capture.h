// Canonical state capture for snapshot/restore and the fault-schedule
// explorer (DESIGN.md §11).
//
// A StateWriter folds a layer's observable state into a single 64-bit
// digest (streaming FNV-1a over a canonical byte encoding). Layers expose
// `saveState(StateWriter&)` methods — the state-side sibling of the
// `registerTelemetry` pattern — and a StateCaptureRegistry collects named
// capture functions so a whole platform's state folds into one digest in a
// canonical (name-sorted) order, independent of registration order.
//
// The digest is the snapshot's identity: processes are OS threads, so the
// simulator cannot byte-copy stacks; instead a snapshot is {virtual time,
// digest, replay recipe} and restore replays deterministically, verifying
// the digest at the target time. Capturing must therefore be strictly
// read-only and itself deterministic: iterate containers in sorted order,
// fold doubles by bit pattern, never by formatted text.
//
// Digests are conservative: two states with equal digests are treated as
// equal by the explorer's pruning, which is sound because every folded field
// is part of the deterministic replay state — a collision can only merge
// branches whose observable futures were already identical (or, with
// 2^-64 probability, a hash collision, the standard stateless-model-checking
// trade-off).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace mg::obs {

/// Streams typed fields into an FNV-1a-64 digest. Optionally keeps a
/// human-readable transcript of every field (key + value) so a digest
/// mismatch on restore can be diagnosed by diffing two transcripts.
class StateWriter {
 public:
  explicit StateWriter(bool keep_transcript = false)
      : keep_transcript_(keep_transcript) {}

  /// Open a named field or section. Keys are folded into the digest, so two
  /// captures agree only when their key sequences agree too.
  void key(std::string_view name);

  void u64(std::string_view name, std::uint64_t v);
  void i64(std::string_view name, std::int64_t v);
  void f64(std::string_view name, double v);  // folded by bit pattern
  void boolean(std::string_view name, bool v);
  void str(std::string_view name, std::string_view v);

  std::uint64_t digest() const { return hash_; }

  /// One "key=value" line per field, in capture order; empty unless
  /// constructed with keep_transcript = true.
  const std::vector<std::string>& transcript() const { return transcript_; }

 private:
  void bytes(const void* data, std::size_t n);
  void note(std::string_view name, std::string value);

  std::uint64_t hash_ = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  bool keep_transcript_ = false;
  std::vector<std::string> transcript_;
};

/// Named capture functions, folded in name-sorted order. The platform and
/// its layers register here once (registerStateCapture), then the explorer
/// calls digest() as often as it likes.
class StateCaptureRegistry {
 public:
  using CaptureFn = std::function<void(StateWriter&)>;

  /// Register `fn` under `name`. Names must be unique; registering a
  /// duplicate replaces the previous function (a restarted component may
  /// legitimately re-register).
  void add(std::string name, CaptureFn fn);

  bool empty() const { return captures_.empty(); }
  std::size_t size() const { return captures_.size(); }

  /// Fold every registered capture, sorted by name, into one digest.
  std::uint64_t digest() const;

  /// The transcript form of digest(): every field of every capture as
  /// "section/key=value" lines — the diff surface for restore mismatches.
  std::vector<std::string> transcript() const;

 private:
  std::map<std::string, CaptureFn> captures_;
};

}  // namespace mg::obs
