// The deterministic trace bus (DESIGN.md "Observability").
//
// Components publish typed events (sim_time, component, kind, value, detail)
// onto per-component channels instead of printf-style tracing. Channels are
// resolved once at construction; a disabled channel costs one boolean test
// per would-be event. Recording is fully deterministic — events are ordered
// by the simulation itself, and serialize() renders a byte-stable text
// stream, so same-seed runs can be diffed for equality (the repo's
// internal-validation analogue of the paper's §3.6 skew checks).
//
// Under parallel execution, lane 0 records directly while worker lanes
// journal into per-lane buffers; commitParallelPhase() merges them into the
// canonical stream sorted by (time, lane, journal order) at each barrier —
// quantities fixed by the configuration, never by the worker count, so the
// serialized stream is byte-identical for any `--parallel=N`.
//
// Numeric event values double as samples: asTrace() extracts a
// util::Trace (time-in-seconds, value) series for one (component, kind),
// ready for util::rmsPercentSkew.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.h"

namespace mg::obs {

class TraceBus {
 public:
  struct Event {
    std::int64_t time = 0;  // sim::SimTime (nanoseconds)
    std::string component;
    std::string kind;
    double value = 0;
    std::string detail;
  };

  /// One component's publishing handle. Obtain via TraceBus::channel().
  class Channel {
   public:
    bool enabled() const { return enabled_; }
    const std::string& name() const { return name_; }
    /// Record an event (no-op while the channel is disabled). `time` is the
    /// current simulation time in nanoseconds.
    void record(std::int64_t time, std::string_view kind, double value,
                std::string_view detail = {});

   private:
    friend class TraceBus;
    Channel(TraceBus& bus, std::string name) : bus_(bus), name_(std::move(name)) {}
    TraceBus& bus_;
    std::string name_;
    bool enabled_ = false;
  };

  TraceBus() = default;
  TraceBus(const TraceBus&) = delete;
  TraceBus& operator=(const TraceBus&) = delete;

  /// Create-or-get a channel; the reference stays valid for the bus's
  /// lifetime. New channels honour any enable mask already set for them.
  Channel& channel(const std::string& component);

  /// Enable/disable by component name or dotted prefix: "net" matches
  /// "net.packet" and "net.flow"; "" matches everything. Applies to existing
  /// channels and to channels created later.
  void setEnabled(const std::string& component_prefix, bool on);

  const std::vector<Event>& events() const { return events_; }
  void clear() { events_.clear(); }

  /// Size the per-lane journals (sim::Simulator::configureParallel).
  void configureLanes(int lanes);

  /// Merge worker-lane journals into the canonical stream, sorted by
  /// (time, lane, journal order). Called at each barrier, workers idle.
  void commitParallelPhase();

  /// (seconds, value) series of every event on one (component, kind).
  util::Trace asTrace(std::string_view component, std::string_view kind) const;

  /// Byte-stable text rendering: one "<time_ns> <component> <kind> <value>
  /// [detail]" line per event.
  std::string serialize() const;

 private:
  friend class Channel;
  static bool prefixMatches(const std::string& prefix, const std::string& name);

  std::deque<Channel> channels_;
  std::map<std::string, Channel*> index_;
  // Enable masks, applied to late-created channels too (insertion order;
  // later entries win so enable-then-disable behaves intuitively).
  std::vector<std::pair<std::string, bool>> masks_;
  std::vector<Event> events_;
  // Per-lane journals (entry 0 unused): written only by the lane's drainer
  // thread during a phase, merged only at the barrier — the phase separation
  // is the synchronization.
  std::vector<std::vector<Event>> lane_journals_;
};

}  // namespace mg::obs
