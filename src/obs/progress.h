// Wall-clock live run monitoring (mgrun --progress; DESIGN.md §10).
//
// The simulation kernel is single-minded: once run() starts, nothing else
// happens on its threads until the queues drain. RunPulse is the one-way
// window out — a lock-free board of relaxed atomics the kernel publishes to
// (per-event lane clock + pending count, a global commit counter, barrier
// epochs) and a ProgressMonitor thread reads from. The monitor owns all
// formatting and timing; the kernel's cost when --progress is off is a
// single relaxed bool load per event, and when on, three relaxed stores.
//
// Everything the monitor prints goes to its sink (stderr by default) and is
// wall-clock flavored, hence nondeterministic — stdout and every recorded
// observable stream stay byte-identical with the monitor on or off (CI-
// enforced). Heartbeats show sim time, sim-seconds per wall-second,
// events/sec, pending events, and an ETA when a progress-fraction callback
// is provided. A stall watchdog fires when the commit counter stops moving
// for `stall_s` wall seconds and dumps the per-lane board — the
// tell-a-human-where-it-hangs view for deadlocked or runaway scenarios.
//
// Thread-safety contract: the fraction callback runs on the monitor thread
// and must only read atomics (registry counters/gauges qualify).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <thread>

namespace mg::obs {

class Counter;

/// The kernel-side publication board. Owned by sim::Simulator; disabled
/// (and costing one relaxed load per event) unless enable(true) is called.
class RunPulse {
 public:
  static constexpr int kMaxLanes = 64;  // matches the kernel's 6 lane bits

  void enable(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void configureLanes(int lanes) { lanes_.store(lanes, std::memory_order_relaxed); }
  int lanes() const { return lanes_.load(std::memory_order_relaxed); }

  /// One event dispatched on `lane`, whose clock is now `now_ns` with
  /// `pending` events left in its heap. Kernel hot path — relaxed stores.
  void beatLane(int lane, std::int64_t now_ns, std::int64_t pending) {
    if (lane < 0 || lane >= kMaxLanes) return;
    lane_now_[lane].ns.store(now_ns, std::memory_order_relaxed);
    lane_pending_[lane].ns.store(pending, std::memory_order_relaxed);
    commits_.fetch_add(1, std::memory_order_relaxed);
  }

  /// One parallel barrier crossed (epoch boundary).
  void noteBarrier() { epochs_.fetch_add(1, std::memory_order_relaxed); }

  std::uint64_t commits() const { return commits_.load(std::memory_order_relaxed); }
  std::uint64_t epochs() const { return epochs_.load(std::memory_order_relaxed); }
  std::int64_t laneNow(int lane) const {
    return lane_now_[lane].ns.load(std::memory_order_relaxed);
  }
  std::int64_t lanePending(int lane) const {
    return lane_pending_[lane].ns.load(std::memory_order_relaxed);
  }
  /// Max lane clock: the front of the simulation.
  std::int64_t simNow() const;

 private:
  // Cache-line padding keeps one lane's per-event stores from false-sharing
  // its neighbours while worker threads drain lanes concurrently.
  struct alignas(64) Slot {
    std::atomic<std::int64_t> ns{0};
  };
  std::atomic<bool> enabled_{false};
  std::atomic<int> lanes_{1};
  std::atomic<std::uint64_t> commits_{0};
  std::atomic<std::uint64_t> epochs_{0};
  Slot lane_now_[kMaxLanes];
  Slot lane_pending_[kMaxLanes];
};

struct ProgressOptions {
  /// Wall seconds between heartbeats.
  double interval_s = 2.0;
  /// Wall seconds of commit silence before the stall watchdog dumps state.
  double stall_s = 30.0;
  /// Output stream; nullptr means std::cerr. Never stdout: recorded streams
  /// must stay byte-identical with the monitor on or off.
  std::ostream* sink = nullptr;
  /// Events-executed counter for throughput lines (optional).
  const Counter* events = nullptr;
  /// Fraction of the run complete in [0, 1] for ETA lines; return a negative
  /// value for "unknown". Runs on the monitor thread: read atomics only.
  std::function<double()> fraction;
  std::string label = "progress";
};

/// The watcher thread. start() spawns it, stop() (or destruction) joins it;
/// between the two it prints a heartbeat every interval and a stall dump
/// when the pulse goes quiet.
class ProgressMonitor {
 public:
  explicit ProgressMonitor(const RunPulse& pulse, ProgressOptions opts = {});
  ~ProgressMonitor();
  ProgressMonitor(const ProgressMonitor&) = delete;
  ProgressMonitor& operator=(const ProgressMonitor&) = delete;

  void start();
  void stop();

  std::int64_t heartbeats() const { return heartbeats_.load(std::memory_order_relaxed); }
  std::int64_t stallDumps() const { return stall_dumps_.load(std::memory_order_relaxed); }

 private:
  void loop();
  void heartbeat(std::ostream& out, double wall_s);
  void stallDump(std::ostream& out, double quiet_s);

  const RunPulse& pulse_;
  ProgressOptions opts_;
  std::thread thread_;
  std::mutex m_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool running_ = false;
  std::atomic<std::int64_t> heartbeats_{0};
  std::atomic<std::int64_t> stall_dumps_{0};
};

}  // namespace mg::obs
