// Per-thread lane context for the observability layer.
//
// During a parallel phase each worker thread drains one event lane at a
// time (sim/parallel.h) and tags itself with that lane's index. The span
// recorder and trace bus consult it on every entry point: lane 0 records
// directly into the canonical streams, nonzero lanes journal into per-lane
// buffers that the barrier commits in a deterministic order. Outside
// parallel execution every thread reads lane 0, which makes the sequential
// paths bit-identical to the pre-parallel kernel.
#pragma once

namespace mg::obs {

namespace detail {
inline thread_local int t_current_lane = 0;
}

/// The event lane the calling thread is draining (0 when not a worker).
inline int currentLane() { return detail::t_current_lane; }

/// Set by the parallel engine around lane drains; 0 restores the default.
inline void setCurrentLane(int lane) { detail::t_current_lane = lane; }

}  // namespace mg::obs
