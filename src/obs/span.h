// Causal span tracing (DESIGN.md "Observability").
//
// A Span is one attributed interval of simulated time: {id, parent,
// component, name, track, start/end sim-time, attrs}. Spans form a forest
// linked by parent ids, so one GRAM job can be followed end-to-end — submit,
// co-allocation, vmpi sends, TCP segments, per-hop packet forwarding,
// scheduler quanta — as a single causal chain. `track` is the rendering lane
// (usually a hostname; "" renders as "kernel").
//
// Ids are deterministic: they are assigned sequentially from 1 in creation
// order, and creation order is fixed because the simulation itself is
// deterministic (single-threaded event dispatch, total (time, seq) event
// order, seeded RNGs). Same-seed runs therefore produce byte-identical span
// trees and exported traces.
//
// Parallel execution (sim/parallel.h) keeps that guarantee with per-lane
// journaling: lane 0 records directly, while a worker draining lane k > 0
// appends operations to a per-lane journal and hands out *namespaced* ids
// (high bit set, lane in bits 48..62, a per-lane sequence below). At each
// barrier commitParallelPhase() replays the journals sorted by (time, lane,
// journal order) — all deterministic quantities — assigning dense sequential
// ids and remembering the namespaced->dense remap so later end()/annotate()
// calls (from any lane, e.g. a packet span ended at delivery) resolve. The
// exported tree only ever contains dense ids, byte-identical for any worker
// count.
//
// Context propagation is cooperative: the recorder holds a "current" span id
// that sim::Simulator saves/restores around event dispatch and process
// slices, spawn() inherits it, and net::Packet carries it across hosts.
// Recording is off by default; when disabled, every entry point is one
// boolean test (the kernel benches must stay within 2% of the untraced
// numbers in BENCH_kernel_perf.json).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/lane.h"
#include "obs/metrics.h"

namespace mg::obs {

/// Identifies one recorded span. 0 means "no span" everywhere.
using SpanId = std::uint64_t;

class SpanRecorder {
 public:
  struct Span {
    SpanId id = 0;
    SpanId parent = 0;
    std::string component;  // layer, e.g. "net.tcp"
    std::string name;       // operation, e.g. "segment"
    std::string track;      // rendering lane, usually a hostname
    std::int64_t start = 0;
    std::int64_t end = -1;  // -1 while still open
    std::vector<std::pair<std::string, std::string>> attrs;
    bool instant = false;

    bool open() const { return end < 0 && !instant; }
  };

  /// Counters (obs.span.*) are registered eagerly so the metrics schema does
  /// not depend on whether tracing was enabled. `metrics` may be null in
  /// standalone tests.
  explicit SpanRecorder(MetricsRegistry* metrics = nullptr);
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  /// Install the sim-time source (sim::Simulator points this at its clock).
  void setTimeSource(std::function<std::int64_t()> now) { now_ = std::move(now); }

  void setEnabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Open a span parented to current(). Returns 0 (and records nothing)
  /// while disabled. Does not change current(); ScopedSpan does.
  SpanId begin(std::string_view component, std::string_view name, std::string_view track = {});

  /// Open a span with an explicit parent — for causality that crosses
  /// contexts (a packet hop parents to the packet's span, not to whatever
  /// event happens to be dispatching).
  SpanId beginChildOf(SpanId parent, std::string_view component, std::string_view name,
                      std::string_view track = {});

  /// Close an open span at the current time. Idempotent: closing again (or
  /// closing after abortTrack already did) is a no-op, which is what lets
  /// RAII unwinding and crash-abort coexist.
  void end(SpanId id);

  /// end() plus one attribute, recorded only if the span was still open.
  void endWith(SpanId id, std::string_view key, std::string_view value);

  /// Append an attribute to a recorded span (no-op for id 0).
  void annotate(SpanId id, std::string_view key, std::string_view value);

  /// Record a zero-duration marker (fault injections) parented to current().
  SpanId instant(std::string_view component, std::string_view name, std::string_view track = {});

  /// The ambient span new spans parent to. Saved/restored by the simulator
  /// around event dispatch and process slices. One slot per event lane: the
  /// context a worker manipulates while draining lane k is lane k's alone.
  SpanId current() const { return current_lanes_[laneSlot()]; }
  void setCurrent(SpanId id) { current_lanes_[laneSlot()] = id; }

  /// Close every span still open on `track` with attr aborted=<reason>.
  /// Called by host crash before the victim processes are killed, so the
  /// ProcessKilled unwind's end() calls find the spans already closed.
  void abortTrack(std::string_view track, std::string_view reason = "host-crash");

  const std::deque<Span>& spans() const { return spans_; }
  const Span* find(SpanId id) const;
  std::size_t size() const { return spans_.size(); }
  std::size_t openCount() const;

  /// Byte-stable one-line-per-span rendering of the whole forest, in id
  /// order — the determinism-test currency (diff two same-seed runs).
  std::string serializeTree() const;

  // --- parallel-lane support (called by sim::Simulator / ParallelEngine) ---

  /// Size the per-lane journals and current-span slots. Lanes default to 1.
  void configureLanes(int lanes);

  /// Replay every lane journal sorted by (time, lane, journal order),
  /// assigning dense ids and extending the namespaced->dense remap. Called
  /// at each barrier with all workers idle.
  void commitParallelPhase();

  /// Dense id for a (possibly namespaced) id; 0 when unknown. Namespaced
  /// ids resolve only after the barrier that committed their Begin.
  SpanId canonical(SpanId id) const;

 private:
  // Journaled operation from a worker lane, replayed at the barrier.
  struct SpanOp {
    enum Kind : std::uint8_t { kBegin, kInstant, kEnd, kEndWith, kAnnotate };
    Kind kind;
    std::int64_t time;
    SpanId id = 0;      // namespaced id assigned at call for Begin/Instant
    SpanId parent = 0;  // Begin/Instant
    std::string component, name, track;  // Begin/Instant
    std::string key, value;              // EndWith/Annotate
  };

  // Namespaced worker-lane ids: high bit | lane << 48 | per-lane sequence.
  static constexpr SpanId kLaneBit = SpanId{1} << 63;
  static bool namespaced(SpanId id) { return (id & kLaneBit) != 0; }
  static SpanId laneId(int lane, std::uint64_t seq) {
    return kLaneBit | (static_cast<SpanId>(lane) << 48) | seq;
  }

  std::size_t laneSlot() const {
    const int lane = obs::currentLane();
    return static_cast<std::size_t>(lane) < current_lanes_.size()
               ? static_cast<std::size_t>(lane)
               : 0;
  }
  Span* mutableFind(SpanId id);
  std::int64_t nowNs() const { return now_ ? now_() : 0; }
  SpanId record(SpanId parent, std::string_view component, std::string_view name,
                std::string_view track, bool instant, std::int64_t at);
  void applyOp(int lane, const SpanOp& op);

  bool enabled_ = false;
  std::vector<SpanId> current_lanes_{0};
  std::function<std::int64_t()> now_;
  std::deque<Span> spans_;  // spans_[id - 1]; deque keeps addresses stable

  // Worker-lane journaling state, all indexed by lane (entry 0 unused).
  std::vector<std::vector<SpanOp>> lane_journals_;
  std::vector<std::uint64_t> lane_next_local_;
  std::unordered_map<SpanId, SpanId> remap_;  // namespaced -> dense

  Counter* c_begun_ = nullptr;
  Counter* c_completed_ = nullptr;
  Counter* c_aborted_ = nullptr;
  Counter* c_instants_ = nullptr;
};

/// RAII span handle: opens on construction (when the recorder is enabled),
/// makes itself the current span, and on destruction closes and restores the
/// previous current span. Inert (all no-ops) when tracing is disabled.
class ScopedSpan {
 public:
  ScopedSpan(SpanRecorder& rec, std::string_view component, std::string_view name,
             std::string_view track = {})
      : rec_(rec) {
    if (rec_.enabled()) {
      prev_ = rec_.current();
      id_ = rec_.begin(component, name, track);
      rec_.setCurrent(id_);
    }
  }
  ~ScopedSpan() {
    if (id_ != 0) {
      rec_.end(id_);
      rec_.setCurrent(prev_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// True when a span was actually opened — guard attr-building work.
  bool active() const { return id_ != 0; }
  SpanId id() const { return id_; }
  void annotate(std::string_view key, std::string_view value) {
    if (id_ != 0) rec_.annotate(id_, key, value);
  }

 private:
  SpanRecorder& rec_;
  SpanId id_ = 0;
  SpanId prev_ = 0;
};

}  // namespace mg::obs
