// Chrome/Perfetto trace_event JSON export of a recorded span forest
// (mgrun --trace-out=FILE; load in ui.perfetto.dev or chrome://tracing).
//
// Rendering rules:
//  - every track (hostname, "" = "kernel") becomes one named thread lane
//    under a single "microgrid" process, tids assigned in sorted-name order;
//  - spans render as "X" complete events with microsecond ts/dur;
//  - instant spans (fault injections) render as "i" instant events;
//  - span id / parent id / attrs ride in "args", preserving causality that
//    the viewer's stack-nesting heuristic cannot express;
//  - with a TimeSeriesRecorder attached, every telemetry series becomes a
//    "C" counter track (one sample per populated bucket, bucket mean), so
//    utilization timelines render beside the span forest.
//
// Timestamps are rendered by integer division of the ns clock; counter
// values go through formatDouble — both byte-stable, so same-seed runs
// export byte-identical files.
#pragma once

#include <string>

#include "obs/span.h"
#include "obs/timeline.h"

namespace mg::obs {

/// The whole recorder as one JSON document ("traceEvents" array form).
/// `timeline` (optional) appends one counter track per telemetry series.
std::string chromeTraceJson(const SpanRecorder& rec,
                            const TimeSeriesRecorder* timeline = nullptr);

}  // namespace mg::obs
