// Chrome/Perfetto trace_event JSON export of a recorded span forest
// (mgrun --trace-out=FILE; load in ui.perfetto.dev or chrome://tracing).
//
// Rendering rules:
//  - every track (hostname, "" = "kernel") becomes one named thread lane
//    under a single "microgrid" process, tids assigned in sorted-name order;
//  - spans render as "X" complete events with microsecond ts/dur;
//  - instant spans (fault injections) render as "i" instant events;
//  - span id / parent id / attrs ride in "args", preserving causality that
//    the viewer's stack-nesting heuristic cannot express.
//
// Timestamps are rendered by integer division of the ns clock (no double
// formatting anywhere), so same-seed runs export byte-identical files.
#pragma once

#include <string>

#include "obs/span.h"

namespace mg::obs {

/// The whole recorder as one JSON document ("traceEvents" array form).
std::string chromeTraceJson(const SpanRecorder& rec);

}  // namespace mg::obs
