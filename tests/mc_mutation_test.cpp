// The explorer's end-to-end bug-finding check, in its own process.
//
// MG_MC_MUTATION=1 arms a seeded bug in the fault injector: a host restart
// arriving less than 2 virtual seconds after the crash "forgets" to close
// the downtime interval, so the availability report claims the host is down
// at the horizon while the platform says it is alive. The injector reads the
// flag once (static), so this test sets it before the first restart fires —
// that is why it cannot share a binary with mc_test.
//
// The explorer must find the bug among schedules where nothing else is
// wrong, minimize the reproduction to the single guilty crash event, and
// emit a plan that replays the violation outside the explorer.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "fault/fault_plan.h"
#include "mc/explorer.h"
#include "mc/invariants.h"
#include "mc/scenario.h"
#include "util/config.h"

#include "test_scenarios.h"

using namespace mg;

TEST(McMutation, ExplorerFindsMinimizesAndReplaysTheSeededBug) {
  ::setenv("MG_MC_MUTATION", "1", 1);

  const auto factory = mc::transferScenario();
  std::vector<mc::CandidateFault> cands;

  // The guilty candidate: crash + auto-restart 0.5 vs later — inside the
  // mutation's < 2 vs window, so every schedule that fires it violates
  // fault.availability.
  mc::CandidateFault crash;
  crash.event = mgtest::simpleEvent(fault::FaultKind::HostCrash, "vm3.ucsd.edu", 0.01, 0.5);
  crash.event.name = "crash-vm3";
  crash.times = {0.005, 0.01};
  cands.push_back(crash);

  // An innocent bystander fault the minimizer must strip away.
  mc::CandidateFault drop;
  drop.event = mgtest::simpleEvent(fault::FaultKind::LinkDown, "eth1", 0.01, 0.02);
  drop.event.name = "drop-eth1";
  drop.times = {0.005, 0.01};
  cands.push_back(drop);

  mc::Explorer ex(factory, cands);
  const mc::ExploreResult r = ex.explore();

  ASSERT_TRUE(r.violation_found);
  EXPECT_GT(r.stats.violations, 0);
  EXPECT_NE(r.first_violation.find("fault.availability"), std::string::npos)
      << r.first_violation;

  // Delta-debugging stripped the schedule to the single guilty event.
  ASSERT_EQ(r.minimal_plan.size(), 1u);
  EXPECT_EQ(r.minimal_plan.events()[0].kind, fault::FaultKind::HostCrash);
  EXPECT_EQ(r.minimal_plan.events()[0].target, "vm3.ucsd.edu");

  // The minimal plan replays the violation outside the explorer...
  auto replay = factory(r.minimal_plan);
  replay->runToEnd();
  const auto vs = mc::checkInvariants(*replay);
  ASSERT_FALSE(vs.empty());
  EXPECT_EQ(vs[0].invariant, "fault.availability");

  // ...and survives the INI round trip mgrun's --faults flag would take.
  const auto reparsed =
      fault::FaultPlan::fromConfig(util::Config::parse(r.minimal_plan.toIni()));
  EXPECT_EQ(reparsed.events(), r.minimal_plan.events());
}

TEST(McMutation, SchedulesWithoutTheRestartWindowStayClean) {
  // Same process (mutation armed), but no crash candidate: the link fault
  // alone violates nothing, proving the detector keys on the seeded bug and
  // not on exploration noise.
  const auto factory = mc::transferScenario();
  std::vector<mc::CandidateFault> cands;
  mc::CandidateFault drop;
  drop.event = mgtest::simpleEvent(fault::FaultKind::LinkDown, "eth1", 0.01, 0.02);
  drop.event.name = "drop-eth1";
  drop.times = {0.005, 0.01};
  cands.push_back(drop);

  mc::Explorer ex(factory, cands);
  const mc::ExploreResult r = ex.explore();
  EXPECT_EQ(r.stats.violations, 0);
  EXPECT_FALSE(r.violation_found);
}
