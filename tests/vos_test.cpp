// Tests for the virtual-OS layer: host mapping, memory capacity enforcement,
// the Fig 4 CPU scheduler, and virtual time.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "util/stats.h"
#include "vos/cpu_scheduler.h"
#include "vos/memory.h"
#include "vos/virtual_host.h"
#include "vos/virtual_time.h"

using namespace mg::vos;
namespace st = mg::sim;
using mg::sim::Simulator;

// ------------------------------------------------------------- HostMapper --

namespace {
VirtualHostInfo vm(const std::string& name, const std::string& ip, const std::string& phys,
                   mg::net::NodeId node = 0) {
  VirtualHostInfo h;
  h.hostname = name;
  h.virtual_ip = ip;
  h.cpu_ops = 100e6;
  h.memory_bytes = 1 << 30;
  h.physical_host = phys;
  h.node = node;
  return h;
}
}  // namespace

TEST(HostMapper, ResolvesByNameAndIp) {
  HostMapper m;
  m.add(vm("vm0.ucsd.edu", "1.11.11.1", "phys0", 0));
  m.add(vm("vm1.ucsd.edu", "1.11.11.2", "phys1", 1));
  EXPECT_EQ(m.resolve("vm0.ucsd.edu").virtual_ip, "1.11.11.1");
  EXPECT_EQ(m.resolve("1.11.11.2").hostname, "vm1.ucsd.edu");
  EXPECT_EQ(m.byNode(1).hostname, "vm1.ucsd.edu");
  EXPECT_TRUE(m.contains("vm0.ucsd.edu"));
  EXPECT_FALSE(m.contains("nope"));
}

TEST(HostMapper, UnknownHostThrows) {
  HostMapper m;
  m.add(vm("a", "1.1.1.1", "p"));
  EXPECT_THROW(m.resolve("b"), UnknownHost);
  EXPECT_THROW(m.byNode(42), UnknownHost);
}

TEST(HostMapper, DuplicateThrows) {
  HostMapper m;
  m.add(vm("a", "1.1.1.1", "p"));
  EXPECT_THROW(m.add(vm("a", "2.2.2.2", "p")), mg::ConfigError);
  EXPECT_THROW(m.add(vm("b", "1.1.1.1", "p")), mg::ConfigError);
}

TEST(HostMapper, PhysicalGrouping) {
  HostMapper m;
  m.add(vm("a", "1.1.1.1", "p0", 0));
  m.add(vm("b", "1.1.1.2", "p1", 1));
  m.add(vm("c", "1.1.1.3", "p0", 2));
  EXPECT_EQ(m.hostsOnPhysical("p0").size(), 2u);
  EXPECT_EQ(m.hostsOnPhysical("p1").size(), 1u);
  EXPECT_EQ(m.physicalHosts(), (std::vector<std::string>{"p0", "p1"}));
}

// ----------------------------------------------------------------- Memory --

TEST(Memory, ProcessOverheadCharged) {
  MemoryManager mm(10 * 1024);
  auto p = mm.registerProcess("test");
  EXPECT_EQ(mm.used(), MemoryManager::kProcessOverhead);
  EXPECT_EQ(mm.processUsage(p), 1024);
}

TEST(Memory, AllocateUpToCapacityMinusOverhead) {
  // The Fig 5 relationship: max allocatable = limit - ~1KB process overhead.
  const std::int64_t limit = 100 * 1024;
  MemoryManager mm(limit);
  auto p = mm.registerProcess("memhog");
  std::int64_t allocated = 0;
  const std::int64_t chunk = 1024;
  for (;;) {
    try {
      mm.allocate(p, chunk);
      allocated += chunk;
    } catch (const OutOfMemoryError&) {
      break;
    }
  }
  EXPECT_EQ(allocated, limit - MemoryManager::kProcessOverhead);
}

TEST(Memory, FreeRestoresCapacity) {
  MemoryManager mm(10 * 1024);
  auto p = mm.registerProcess("t");
  mm.allocate(p, 4096);
  EXPECT_EQ(mm.available(), 10 * 1024 - 1024 - 4096);
  mm.free(p, 4096);
  EXPECT_EQ(mm.available(), 10 * 1024 - 1024);
}

TEST(Memory, OverFreeThrows) {
  MemoryManager mm(10 * 1024);
  auto p = mm.registerProcess("t");
  mm.allocate(p, 100);
  EXPECT_THROW(mm.free(p, 200), mg::UsageError);
}

TEST(Memory, ReleaseProcessFreesEverything) {
  MemoryManager mm(10 * 1024);
  auto p = mm.registerProcess("t");
  mm.allocate(p, 2048);
  mm.releaseProcess(p);
  EXPECT_EQ(mm.used(), 0);
  EXPECT_THROW(mm.allocate(p, 1), mg::UsageError);
}

TEST(Memory, TwoProcessesShareHostCapacity) {
  MemoryManager mm(8 * 1024);
  auto p1 = mm.registerProcess("a");
  auto p2 = mm.registerProcess("b");
  mm.allocate(p1, 3 * 1024);
  EXPECT_THROW(mm.allocate(p2, 4 * 1024), OutOfMemoryError);
  mm.allocate(p2, 3 * 1024);  // fits
}

TEST(Memory, TinyCapacityRejectsProcess) {
  MemoryManager mm(512);
  EXPECT_THROW(mm.registerProcess("t"), OutOfMemoryError);
}

// -------------------------------------------------------------- Scheduler --

namespace {

/// Run a fixed CPU-seconds reference workload on a task with the given
/// fraction; return the delivered CPU fraction (cpu / wall), Fig 6's metric.
double deliveredFraction(double fraction, CompetitionProfile prof,
                         double cpu_seconds = 2.0,
                         st::SimTime quantum = 10 * st::kMillisecond) {
  Simulator sim;
  CpuScheduler sched(sim, 100e6, quantum, prof);
  double wall = 0;
  sim.spawn("ref", [&] {
    auto t = sched.addTask("ref", fraction);
    const st::SimTime t0 = sim.now();
    sched.computeSeconds(t, cpu_seconds);
    wall = st::toSeconds(sim.now() - t0);
    sched.removeTask(t);
  });
  sim.run();
  return cpu_seconds / wall;
}

}  // namespace

TEST(Scheduler, SingleTaskGetsItsFraction) {
  // Fig 6, no competition: delivered tracks specified across a wide range.
  for (double f : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double d = deliveredFraction(f, CompetitionProfile::none());
    EXPECT_NEAR(d, f, f * 0.03) << "fraction " << f;
  }
}

TEST(Scheduler, CapLimitsHighFractions) {
  // Fig 6: above the competition cap the virtual machine cannot deliver.
  const double d = deliveredFraction(0.8, CompetitionProfile::cpuBound());
  EXPECT_NEAR(d, 0.47, 0.03);
  const double low = deliveredFraction(0.3, CompetitionProfile::cpuBound());
  EXPECT_NEAR(low, 0.3, 0.02);  // below the cap, still accurate
}

TEST(Scheduler, NoCompetitionCapsNear95Percent) {
  const double d = deliveredFraction(1.0, CompetitionProfile::none());
  EXPECT_NEAR(d, 0.95, 0.02);
}

TEST(Scheduler, ComputeScalesWithOps) {
  Simulator sim;
  CpuScheduler sched(sim, 100e6);  // 100 Mops physical
  double wall1 = 0, wall2 = 0;
  sim.spawn("p", [&] {
    auto t = sched.addTask("p", 1.0);
    st::SimTime t0 = sim.now();
    sched.compute(t, 50e6);  // 0.5 physical cpu-seconds
    wall1 = st::toSeconds(sim.now() - t0);
    t0 = sim.now();
    sched.compute(t, 100e6);  // 1.0 physical cpu-seconds
    wall2 = st::toSeconds(sim.now() - t0);
  });
  sim.run();
  EXPECT_NEAR(wall2 / wall1, 2.0, 0.05);
}

TEST(Scheduler, TwoTasksShareByFraction) {
  Simulator sim;
  CpuScheduler sched(sim, 100e6, 10 * st::kMillisecond, {1.0, 1.0, 0.0});
  double wall_a = 0, wall_b = 0;
  sim.spawn("a", [&] {
    auto t = sched.addTask("a", 0.5);
    const st::SimTime t0 = sim.now();
    sched.computeSeconds(t, 1.0);
    wall_a = st::toSeconds(sim.now() - t0);
  });
  sim.spawn("b", [&] {
    auto t = sched.addTask("b", 0.25);
    const st::SimTime t0 = sim.now();
    sched.computeSeconds(t, 1.0);
    wall_b = st::toSeconds(sim.now() - t0);
  });
  sim.run();
  EXPECT_NEAR(wall_a, 2.0, 0.1);  // 1 cpu-second at 50%
  EXPECT_NEAR(wall_b, 4.0, 0.2);  // 1 cpu-second at 25%
}

TEST(Scheduler, QuantaLogMatchesCompetitionProfile) {
  // Fig 7: quanta distributions (normalized mean ~1, profile-specific dev).
  for (auto [prof, mean, dev] :
       {std::tuple{CompetitionProfile::none(), 1.0, 0.002},
        std::tuple{CompetitionProfile::cpuBound(), 1.01, 0.015},
        std::tuple{CompetitionProfile::ioBound(), 0.978, 0.027}}) {
    Simulator sim;
    CpuScheduler sched(sim, 100e6, 10 * st::kMillisecond, prof);
    sim.spawn("p", [&] {
      auto t = sched.addTask("p", 1.0);
      sched.computeSeconds(t, 90.0);  // ~9000 quanta, as in the paper
    });
    sim.run();
    mg::util::RunningStats s;
    for (double q : sched.quantaLog()) s.add(q);
    EXPECT_GT(s.count(), 8000);
    EXPECT_NEAR(s.mean(), mean, 0.002);
    EXPECT_NEAR(s.stddev(), dev, dev * 0.15 + 0.0005);
  }
}

TEST(Scheduler, SmallerQuantumMeansFinerGranularity) {
  // The mechanism behind Fig 11: completion times round up to quantum
  // boundaries, so a small compute on a big quantum overshoots.
  auto wallFor = [](st::SimTime quantum) {
    Simulator sim;
    CpuScheduler sched(sim, 100e6, quantum, {1.0, 1.0, 0.0});
    double wall = 0;
    sim.spawn("p", [&] {
      auto t = sched.addTask("p", 0.5);
      const st::SimTime t0 = sim.now();
      for (int i = 0; i < 20; ++i) sched.computeSeconds(t, 0.001);  // 1 ms bursts
      wall = st::toSeconds(sim.now() - t0);
    });
    sim.run();
    return wall;
  };
  const double fine = wallFor(st::kMillisecond / 2);
  const double coarse = wallFor(30 * st::kMillisecond);
  // Ideal wall time at 50% fraction = 40 ms.
  EXPECT_NEAR(fine, 0.040, 0.01);
  EXPECT_GT(coarse, fine);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  auto run = [] {
    Simulator sim;
    CpuScheduler sched(sim, 100e6, 10 * st::kMillisecond, CompetitionProfile::ioBound(), 77);
    st::SimTime end = 0;
    sim.spawn("p", [&] {
      auto t = sched.addTask("p", 0.7);
      sched.computeSeconds(t, 3.0);
      end = sim.now();
    });
    sim.run();
    return end;
  };
  EXPECT_EQ(run(), run());
}

TEST(Scheduler, RejectsInvalidArguments) {
  Simulator sim;
  EXPECT_THROW(CpuScheduler(sim, 0), mg::ConfigError);
  EXPECT_THROW(CpuScheduler(sim, 1e6, 0), mg::ConfigError);
  CpuScheduler sched(sim, 100e6);
  EXPECT_THROW(sched.addTask("x", 0.0), mg::UsageError);
  EXPECT_THROW(sched.addTask("x", 1.5), mg::UsageError);
  auto t = sched.addTask("ok", 0.5);
  EXPECT_THROW(sched.setFraction(t, -1), mg::UsageError);
  EXPECT_THROW(sched.usedCpuSeconds(99), mg::UsageError);
}

TEST(Scheduler, SetFractionTakesEffect) {
  Simulator sim;
  CpuScheduler sched(sim, 100e6, st::kMillisecond, {1.0, 1.0, 0.0});
  double wall_fast = 0, wall_slow = 0;
  sim.spawn("p", [&] {
    auto t = sched.addTask("p", 1.0);
    st::SimTime t0 = sim.now();
    sched.computeSeconds(t, 0.2);
    wall_fast = st::toSeconds(sim.now() - t0);
    sched.setFraction(t, 0.2);
    t0 = sim.now();
    sched.computeSeconds(t, 0.2);
    wall_slow = st::toSeconds(sim.now() - t0);
  });
  sim.run();
  EXPECT_NEAR(wall_fast, 0.2, 0.01);
  EXPECT_NEAR(wall_slow, 1.0, 0.05);
}

TEST(Scheduler, UsedCpuAccounting) {
  Simulator sim;
  CpuScheduler sched(sim, 100e6, 10 * st::kMillisecond, {1.0, 1.0, 0.0});
  sim.spawn("p", [&] {
    auto t = sched.addTask("p", 0.5);
    sched.computeSeconds(t, 0.75);
    EXPECT_NEAR(sched.usedCpuSeconds(t), 0.75, 0.02);
  });
  sim.run();
}

// ------------------------------------------------------------ VirtualTime --

TEST(VirtualTime, MapsKernelToVirtual) {
  VirtualTime vt(0.04);  // the paper's Fig 17 rate
  EXPECT_DOUBLE_EQ(vt.toVirtualSeconds(st::fromSeconds(25.0)), 1.0);
  EXPECT_EQ(vt.toKernel(1.0), st::fromSeconds(25.0));
  EXPECT_DOUBLE_EQ(vt.kernelPerVirtual(), 25.0);
}

TEST(VirtualTime, FullSpeedIdentity) {
  VirtualTime vt(1.0);
  EXPECT_DOUBLE_EQ(vt.toVirtualSeconds(st::kSecond), 1.0);
}

TEST(VirtualTime, InvalidRateThrows) {
  EXPECT_THROW(VirtualTime(0.0), mg::ConfigError);
  EXPECT_THROW(VirtualTime(-1.0), mg::ConfigError);
}
